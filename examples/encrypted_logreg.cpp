/**
 * Encrypted logistic regression — a miniature of the paper's HELR
 * workload (§5): train a binary classifier by gradient descent where
 * the *data stays encrypted* end to end. Features are packed into
 * CKKS slots; the inner products use rotate-and-sum; the sigmoid is
 * the same degree-3 polynomial approximation HELR uses
 * (σ(t) ≈ 0.5 + 0.15t − 0.0015t³ → here 0.5 + 0.197t − 0.004t³).
 *
 * The model weights live in plaintext on the client side here (the
 * server computes encrypted predictions and encrypted gradients), so
 * few multiplicative levels are needed per iteration and the demo
 * runs at N = 1024 without bootstrapping.
 */
#include <cmath>
#include <cstdio>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/random.h"

using namespace neo;
using namespace neo::ckks;

namespace {

/// Rotate-and-sum over a power-of-two block: every slot of a block
/// ends up holding the block's sum.
Ciphertext
block_sum(const Evaluator &ev, const EvalKeyBundle &keys, Ciphertext ct,
          size_t block)
{
    for (size_t step = 1; step < block; step <<= 1)
        ct = ev.add(ct, ev.rotate(ct, static_cast<i64>(step), keys));
    return ct;
}

} // namespace

int
main()
{
    // --- Synthetic 2-feature dataset (two Gaussian blobs). -----------
    const size_t features = 2, samples = 64, block = 4; // slots/sample
    Rng rng(2024);
    std::vector<double> xs(samples * features), ys(samples);
    for (size_t i = 0; i < samples; ++i) {
        const double label = (i % 2 == 0) ? 1.0 : -1.0;
        ys[i] = label;
        for (size_t f = 0; f < features; ++f) {
            xs[i * features + f] =
                0.35 * label + 0.15 * (2 * rng.uniform_real() - 1);
        }
    }

    // --- FHE setup. ----------------------------------------------------
    CkksParams params = CkksParams::test_params(1024, 9, 2);
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 7);
    SecretKey sk = keygen.secret_key();
    PublicKey pk = keygen.public_key(sk);
    EvalKeyBundle keys = keygen.eval_key_bundle(sk, {1, 2});
    Encryptor enc(ctx);
    Decryptor dec(ctx, sk, keygen);
    Evaluator ev(ctx);

    // Pack sample i's features into slots [i*block, i*block+features).
    const size_t slots = ctx.encoder().slot_count();
    std::vector<Complex> packed(slots, Complex(0, 0));
    std::vector<Complex> labels(slots, Complex(0, 0));
    for (size_t i = 0; i < samples; ++i) {
        for (size_t f = 0; f < features; ++f)
            packed[i * block + f] = xs[i * features + f];
        for (size_t f = 0; f < block; ++f)
            labels[i * block + f] = ys[i];
    }
    const size_t top = ctx.max_level();
    Ciphertext cx = enc.encrypt(ctx.encode(packed, top), pk);
    Ciphertext cy = enc.encrypt(ctx.encode(labels, top), pk);

    // --- Training loop (weights plaintext, data encrypted). ------------
    std::vector<double> w(features, 0.0);
    const double lr = 1.0;
    const int iters = 6;
    for (int it = 0; it < iters; ++it) {
        // z_i = <w, x_i> broadcast across each sample's block.
        std::vector<Complex> wslots(slots, Complex(0, 0));
        for (size_t i = 0; i < samples; ++i)
            for (size_t f = 0; f < features; ++f)
                wslots[i * block + f] = w[f];
        Ciphertext z = ev.rescale(
            ev.mul_plain(cx, ctx.encode(wslots, cx.level)));
        z = block_sum(ev, keys, z, block);

        // Degree-3 sigmoid-gradient core: y * (0.5 - 0.197(yz) +
        // 0.004(yz)^3) — using y in {-1,1} so y² = 1.
        Ciphertext ylev = ev.mod_switch_to(cy, z.level);
        Ciphertext yz = ev.rescale(ev.mul(z, ylev, keys));
        Ciphertext yz2 = ev.rescale(ev.mul(yz, yz, keys));
        Ciphertext yz3 = ev.rescale(
            ev.mul(yz2, ev.mod_switch_to(yz, yz2.level), keys));
        // g_scalar = 0.5 - 0.197*yz + 0.004*yz^3 (per slot), times y.
        std::vector<Complex> c1(slots, Complex(-0.197, 0));
        std::vector<Complex> c3(slots, Complex(0.004, 0));
        Ciphertext t3 = ev.rescale(
            ev.mul_plain(yz3, ctx.encode(c3, yz3.level, params.delta())));
        // Encode the linear coefficient at exactly the scale that
        // brings t1 onto t3's scale after one rescale — the standard
        // CKKS scale-alignment trick for adding mixed-depth terms.
        const double q_dropped =
            static_cast<double>(ctx.q_basis()[yz.level].value());
        const double align_scale = t3.scale * q_dropped / yz.scale;
        Ciphertext t1 = ev.rescale(
            ev.mul_plain(yz, ctx.encode(c1, yz.level, align_scale)));
        t1 = ev.mod_switch_to(t1, t3.level);
        t1.scale = t3.scale; // exact up to FP bookkeeping error
        Ciphertext g = ev.add(t1, t3);
        std::vector<Complex> half(slots, Complex(0.5, 0));
        g = ev.add_plain(g, ctx.encode(half, g.level, g.scale));
        g = ev.rescale(
            ev.mul(g, ev.mod_switch_to(ylev, g.level), keys));
        // gradient contribution per feature: sum_i g_i * x_{i,f}.
        Ciphertext gx = ev.rescale(
            ev.mul(g, ev.mod_switch_to(cx, g.level), keys));

        // Decrypt the per-slot gradient (client-side step) and update.
        auto grad = dec.decrypt_decode(gx);
        std::vector<double> gw(features, 0.0);
        for (size_t i = 0; i < samples; ++i)
            for (size_t f = 0; f < features; ++f)
                gw[f] += grad[i * block + f].real();
        for (size_t f = 0; f < features; ++f)
            w[f] += lr * gw[f] / static_cast<double>(samples);

        // Report plaintext training accuracy.
        int correct = 0;
        for (size_t i = 0; i < samples; ++i) {
            double zz = 0;
            for (size_t f = 0; f < features; ++f)
                zz += w[f] * xs[i * features + f];
            correct += ((zz > 0 ? 1.0 : -1.0) == ys[i]);
        }
        std::printf("iter %d: w = (%+.4f, %+.4f), accuracy = %2d/%zu\n",
                    it, w[0], w[1], correct, samples);
    }

    std::printf("\nEvery prediction and gradient above was computed on "
                "encrypted data.\n");
    return 0;
}
