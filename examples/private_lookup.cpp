/**
 * Private database lookup: the server holds a plaintext table and
 * answers an *encrypted* query index without learning it — a
 * LinearTransform with the table as the matrix, applied to an
 * encrypted one-hot selector. Demonstrates the homomorphic
 * matrix-vector machinery that CoeffToSlot/SlotToCoeff (and any
 * encrypted embedding/attention layer) is built from.
 */
#include <cstdio>

#include "ckks/encryptor.h"
#include "ckks/linear_transform.h"
#include "common/random.h"

using namespace neo;
using namespace neo::ckks;

int
main()
{
    CkksParams params = CkksParams::test_params(256, 5, 2);
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 55);
    SecretKey sk = keygen.secret_key();
    PublicKey pk = keygen.public_key(sk);
    const size_t slots = ctx.encoder().slot_count();

    // Galois keys for the transform's BSGS rotations.
    size_t g = 1;
    while (g * g < slots)
        g <<= 1;
    std::vector<i64> steps;
    for (size_t j = 1; j < g; ++j)
        steps.push_back(static_cast<i64>(j));
    for (size_t i = 1; i * g < slots; ++i)
        steps.push_back(static_cast<i64>(i * g));
    EvalKeyBundle keys = keygen.eval_key_bundle(sk, steps);

    // Server-side table: record r = feature vector spread across the
    // matrix row (here a deterministic "salary/score/rating" triple
    // packed into the first columns).
    std::vector<Complex> table(slots * slots, Complex(0, 0));
    for (size_t r = 0; r < slots; ++r) {
        table[r * slots + r] = 0.001 * static_cast<double>(r) + 0.1;
    }
    // Transpose convention: y = M z with z the one-hot query; column
    // q of M is record q. Fill M accordingly.
    std::vector<Complex> m(slots * slots, Complex(0, 0));
    for (size_t q = 0; q < slots; ++q) {
        const double record = 0.001 * static_cast<double>(q) + 0.1;
        for (size_t out = 0; out < 3; ++out)
            m[out * slots + q] =
                record * (1.0 + 0.5 * static_cast<double>(out));
    }
    LinearTransform lt(m, slots);

    // Client: encrypt a one-hot query for record 42.
    const size_t query = 42;
    std::vector<Complex> onehot(slots, Complex(0, 0));
    onehot[query] = Complex(1, 0);
    Encryptor enc(ctx);
    Decryptor dec(ctx, sk, keygen);
    Evaluator ev(ctx);
    Ciphertext ct = enc.encrypt(ctx.encode(onehot, 5), pk);

    // Server: answer without decrypting.
    Ciphertext answer = lt.apply_bsgs(ev, ctx, ct, keys);

    // Client: decrypt the three response slots.
    auto got = dec.decrypt_decode(answer);
    const double record = 0.001 * static_cast<double>(query) + 0.1;
    std::printf("private lookup of record %zu:\n", query);
    for (size_t out = 0; out < 3; ++out) {
        const double want = record * (1.0 + 0.5 * static_cast<double>(out));
        std::printf("  field %zu: %.6f (expected %.6f)\n", out,
                    got[out].real(), want);
    }
    std::printf("\nThe server executed %zu rotations + %zu diagonal "
                "multiplies without ever seeing the query index.\n",
                lt.required_rotations_bsgs().size(), slots);
    return 0;
}
