/**
 * Quickstart: the full CKKS round trip with Neo's library —
 * encode → encrypt → add / multiply / rotate (with both key-switch
 * methods) → rescale → decrypt.
 *
 * Uses a reduced ring degree (N = 1024) so it runs in well under a
 * second; every API call is identical at production sizes.
 */
#include <cstdio>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"

using namespace neo;
using namespace neo::ckks;

int
main()
{
    // 1. Parameters: N = 1024, 6 levels of 36-bit primes, d_num = 2,
    //    KLSS auxiliary base at WordSize_T = 48.
    CkksParams params = CkksParams::test_params(1024, 5, 2);
    CkksContext ctx(params);
    std::printf("Context: N=%zu, L=%zu, WordSize=%d, alpha=%zu, "
                "alpha'=%zu\n",
                ctx.n(), ctx.max_level(), params.word_size,
                params.alpha(), ctx.alpha_prime());

    // 2. Keys: one bundle carries the relin key, its KLSS form, and
    //    the Galois key for step 1.
    KeyGenerator keygen(ctx, /*seed=*/42);
    SecretKey sk = keygen.secret_key();
    PublicKey pk = keygen.public_key(sk);
    EvalKeyBundle keys =
        keygen.eval_key_bundle(sk, {1}, /*conjugate=*/false,
                               /*with_klss=*/true);

    // 3. Encode and encrypt two vectors.
    std::vector<Complex> x(ctx.encoder().slot_count());
    std::vector<Complex> y(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
        x[i] = Complex(0.01 * static_cast<double>(i % 50), 0);
        y[i] = Complex(0.5, 0);
    }
    Encryptor enc(ctx);
    Decryptor dec(ctx, sk, keygen);
    Ciphertext cx = enc.encrypt(ctx.encode(x, ctx.max_level()), pk);
    Ciphertext cy = enc.encrypt(ctx.encode(y, ctx.max_level()), pk);

    // 4. Homomorphic ops.
    Evaluator hybrid(ctx, KeySwitchMethod::hybrid);
    Evaluator klss(ctx, KeySwitchMethod::klss);

    Ciphertext sum = hybrid.add(cx, cy);
    Ciphertext prod_h = hybrid.rescale(hybrid.mul(cx, cy, keys));
    Ciphertext prod_k = klss.rescale(klss.mul(cx, cy, keys));
    Ciphertext rot = hybrid.rotate(cx, 1, keys);

    // 5. Decrypt and check slot 7.
    auto show = [&](const char *label, const Ciphertext &ct,
                    Complex expect) {
        Complex got = dec.decrypt_decode(ct)[7];
        std::printf("%-22s slot[7] = %+.6f%+.6fi (expect %+.4f), "
                    "level %zu\n",
                    label, got.real(), got.imag(), expect.real(),
                    ct.level);
    };
    show("x + y", sum, x[7] + y[7]);
    show("x * y (hybrid KS)", prod_h, x[7] * y[7]);
    show("x * y (KLSS KS)", prod_k, x[7] * y[7]);
    show("rotate(x, 1)", rot, x[8]);

    std::printf("\nBoth key-switch methods decrypt to the same product — "
                "the equivalence Neo's KLSS pipeline relies on.\n");
    std::printf("Tip: rerun with NEO_TRACE=summary (or NEO_TRACE=json) "
                "for per-kernel counters and a Perfetto trace.\n");
    return 0;
}
