/**
 * Encrypted analytics: mean, variance and a dot product over an
 * encrypted data vector — the data-analysis workload class the CKKS
 * background section motivates. Shows rotate-and-sum reductions and
 * the HROTATE/PMULT/HMULT primitives on realistic slot packing.
 */
#include <cmath>
#include <cstdio>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/random.h"

using namespace neo;
using namespace neo::ckks;

int
main()
{
    CkksParams params = CkksParams::test_params(1024, 5, 2);
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 99);
    SecretKey sk = keygen.secret_key();
    PublicKey pk = keygen.public_key(sk);
    Encryptor enc(ctx);
    Decryptor dec(ctx, sk, keygen);
    Evaluator ev(ctx);

    const size_t n = 256; // data points, packed into the first slots
    const size_t slots = ctx.encoder().slot_count();
    std::vector<i64> steps;
    for (size_t s = 1; s < n; s <<= 1)
        steps.push_back(static_cast<i64>(s));
    EvalKeyBundle keys = keygen.eval_key_bundle(sk, steps);

    // Synthetic measurements in [0, 1).
    Rng rng(5);
    std::vector<Complex> data(slots, Complex(0, 0)), weights(slots,
                                                             Complex(0, 0));
    double true_mean = 0;
    for (size_t i = 0; i < n; ++i) {
        data[i] = rng.uniform_real();
        weights[i] = 1.0 / (1.0 + static_cast<double>(i));
        true_mean += data[i].real();
    }
    true_mean /= static_cast<double>(n);
    double true_var = 0, true_dot = 0;
    for (size_t i = 0; i < n; ++i) {
        true_var += (data[i].real() - true_mean) *
                    (data[i].real() - true_mean);
        true_dot += data[i].real() * weights[i].real();
    }
    true_var /= static_cast<double>(n);

    const size_t top = ctx.max_level();
    Ciphertext cx = enc.encrypt(ctx.encode(data, top), pk);

    // Rotate-and-sum: slot 0 accumulates the total.
    auto reduce = [&](Ciphertext ct) {
        for (size_t s = 1; s < n; s <<= 1)
            ct = ev.add(ct, ev.rotate(ct, static_cast<i64>(s), keys));
        return ct;
    };

    // mean = sum / n (scaling folded into a plaintext multiply).
    std::vector<Complex> inv_n(slots, Complex(1.0 / n, 0));
    Ciphertext mean_ct = ev.rescale(
        ev.mul_plain(reduce(cx), ctx.encode(inv_n, top)));
    const double mean = dec.decrypt_decode(mean_ct)[0].real();

    // variance = E[x^2] - mean^2 : square homomorphically, reduce.
    Ciphertext x2 = ev.rescale(ev.mul(cx, cx, keys));
    Ciphertext ex2 = ev.rescale(ev.mul_plain(
        reduce(x2), ctx.encode(inv_n, x2.level)));
    const double var =
        dec.decrypt_decode(ex2)[0].real() - mean * mean;

    // weighted dot product <x, w> with plaintext weights.
    Ciphertext dot_ct =
        reduce(ev.rescale(ev.mul_plain(cx, ctx.encode(weights, top))));
    const double dot = dec.decrypt_decode(dot_ct)[0].real();

    std::printf("n = %zu encrypted samples\n", n);
    std::printf("mean     : %.6f (plaintext %.6f, err %.2e)\n", mean,
                true_mean, std::abs(mean - true_mean));
    std::printf("variance : %.6f (plaintext %.6f, err %.2e)\n", var,
                true_var, std::abs(var - true_var));
    std::printf("<x, w>   : %.6f (plaintext %.6f, err %.2e)\n", dot,
                true_dot, std::abs(dot - true_dot));
    return 0;
}
