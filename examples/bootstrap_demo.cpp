/**
 * Bootstrapping demo: exhaust a ciphertext's level budget with real
 * homomorphic work, then refresh it with PackBootstrap-style
 * bootstrapping and keep computing — the capability all three of the
 * paper's applications depend on.
 */
#include <cmath>
#include <cstdio>

#include "boot/bootstrapper.h"
#include "ckks/encryptor.h"
#include "common/random.h"

using namespace neo;
using namespace neo::boot;
using namespace neo::ckks;

int
main()
{
    // N = 256, 14 levels, sparse secret (|I| must stay within the
    // sine range, exactly as production bootstraps require h << N).
    CkksParams params = CkksParams::test_params(256, 14, 3);
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 21);
    SecretKey sk = keygen.secret_key_sparse(8);
    PublicKey pk = keygen.public_key(sk);
    EvalKeyBundle keys = keygen.eval_key_bundle(
        sk, Bootstrapper::required_rotations(ctx), /*conjugate=*/true);
    Encryptor enc(ctx);
    Decryptor dec(ctx, sk, keygen);
    Evaluator ev(ctx);
    Bootstrapper boot(ctx, ev, keys);

    std::printf("Ring degree %zu, %zu levels, bootstrap depth %zu\n\n",
                ctx.n(), ctx.max_level() + 1, boot.depth());

    // A ciphertext arriving from a long computation: level 0, no
    // multiplicative budget left.
    Rng rng(3);
    const size_t slots = ctx.encoder().slot_count();
    std::vector<Complex> z(slots);
    for (auto &x : z)
        x = Complex(0.04 * (2 * rng.uniform_real() - 1), 0);
    Ciphertext ct = enc.encrypt(ctx.encode(z, 0), pk);
    std::vector<Complex> expect = z;
    std::printf("exhausted ciphertext    : level %zu — no further "
                "multiplication possible\n\n",
                ct.level);

    // Refresh. (Bootstrap expects the input at level 0.)
    Ciphertext refreshed = boot.bootstrap(ct);
    std::printf("after bootstrap         : level %zu (refreshed!)\n",
                refreshed.level);

    // Verify the message survived, then spend a regained level.
    auto got = dec.decrypt_decode(refreshed);
    double err = 0;
    for (size_t i = 0; i < slots; ++i)
        err = std::max(err, std::abs(got[i] - expect[i]));
    std::printf("message error after refresh: %.2e\n", err);

    Ciphertext more = ev.rescale(ev.mul(refreshed, refreshed, keys));
    for (auto &x : expect)
        x *= x;
    auto got2 = dec.decrypt_decode(more);
    double err2 = 0;
    for (size_t i = 0; i < slots; ++i)
        err2 = std::max(err2, std::abs(got2[i] - expect[i]));
    std::printf("after one more squaring : level %zu, error %.2e\n",
                more.level, err2);
    return 0;
}
