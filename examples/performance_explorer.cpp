/**
 * Performance explorer: uses the A100 device model the way a
 * deployment engineer would — pick a parameter set, see where the
 * time goes (per kernel, per operation, per application), and compare
 * the backend designs before writing a single CUDA kernel.
 */
#include <cstdio>

#include "apps/schedules.h"
#include "baselines/backends.h"
#include "common/table.h"

using namespace neo;

int
main(int argc, char **argv)
{
    const char set = argc > 1 ? argv[1][0] : 'C';
    auto backend = baselines::make_neo(set);
    auto m = backend.model();
    const auto &p = backend.params;
    const auto &dev = backend.cfg.device;

    std::printf("Backend: %s on %s\n", backend.name.c_str(), dev.name);
    std::printf("N=%zu L=%zu WordSize=%d d_num=%zu batch=%zu", p.n,
                p.max_level, p.word_size, p.d_num, p.batch);
    if (p.klss.enabled()) {
        std::printf(" | KLSS: WordSize_T=%d alpha~=%zu alpha'=%zu",
                    p.klss.word_size_t, p.klss.alpha_tilde,
                    p.klss_alpha_prime());
    }
    std::printf("\n\n");

    // Where one KeySwitch spends its time.
    std::printf("KeySwitch kernel walk at l = %zu:\n", p.max_level);
    TextTable kt;
    kt.header({"#", "cuda", "tcu", "mem", "kernel time"});
    auto kernels = m.keyswitch_kernels(p.max_level);
    int idx = 0;
    for (const auto &k : kernels) {
        kt.row({strfmt("%d", idx++), format_time(k.cuda_time(dev)),
                format_time(k.tcu_time(dev)),
                format_time(k.mem_time(dev)),
                format_time(k.time(dev, true))});
    }
    kt.print();
    std::printf("KeySwitch total (amortized per batched ct): %s\n\n",
                format_time(m.keyswitch_time(p.max_level)).c_str());

    // Operation costs across levels.
    std::printf("Operation costs by level:\n");
    TextTable ot;
    ot.header({"l", "HMULT", "HROTATE", "PMULT", "Rescale"});
    for (i64 l = static_cast<i64>(p.max_level); l >= 5; l -= 10) {
        ot.row({strfmt("%lld", static_cast<long long>(l)), format_time(m.hmult_time(l)),
                format_time(m.hrotate_time(l)),
                format_time(m.pmult_time(l)),
                format_time(m.rescale_time(l))});
    }
    ot.print();

    // Application projections.
    std::printf("\nApplication projections:\n");
    TextTable at;
    at.header({"app", "projected time"});
    at.row({"PackBootstrap",
            format_time(apps::run_schedule(apps::pack_bootstrap(p), m))});
    at.row({"HELR iteration",
            format_time(apps::run_schedule(apps::helr_iteration(p), m))});
    at.row({"ResNet-20",
            format_time(apps::run_schedule(apps::resnet(p, 20), m))});
    at.print();
    std::printf("\nTry: %s D   (60-bit Set-D parameters)\n",
                argc > 0 ? argv[0] : "performance_explorer");
    return 0;
}
