#include "obs/obs.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include "common/json.h"
#include "common/table.h"
#include "common/workspace.h"

namespace neo::obs {

namespace detail {
std::atomic<Registry *> g_current{nullptr};
} // namespace detail

static i64
steady_ns()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

u32
thread_index()
{
    static std::atomic<u32> next{0};
    thread_local u32 idx = next.fetch_add(1, std::memory_order_relaxed);
    return idx;
}

// ---------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------

i32
HistogramSnapshot::bucket_index(double v)
{
    // NaN, negatives and everything below 1 share the underflow
    // bucket; latencies/byte counts recorded by the built-in probes
    // are integers ≥ 0, so only zeros land here in practice.
    if (!(v >= 1.0))
        return 0;
    int e = std::ilogb(v); // floor(log2 v); exact for finite doubles
    if (e > kMaxExp)
        return kNumBuckets - 1;
    // Mantissa in [1, 2); ldexp is exact, so sub-bucket placement is
    // bit-deterministic.
    const double m = std::ldexp(v, -e);
    int j = static_cast<int>((m - 1.0) * kSubBuckets);
    if (j > kSubBuckets - 1)
        j = kSubBuckets - 1;
    return 1 + e * kSubBuckets + j;
}

double
HistogramSnapshot::bucket_lower(i32 idx)
{
    if (idx <= 0)
        return 0.0;
    const i32 k = idx - 1;
    const int e = k / kSubBuckets;
    const int j = k % kSubBuckets;
    return std::ldexp(1.0 + 0.25 * j, e);
}

double
HistogramSnapshot::bucket_upper(i32 idx)
{
    if (idx < 0)
        return 0.0;
    if (idx == 0)
        return 1.0;
    if (idx >= kNumBuckets - 1)
        return std::ldexp(1.0, kMaxExp + 1); // 2^64
    return bucket_lower(idx + 1);
}

double
HistogramSnapshot::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    if (p <= 0.0)
        return min;
    if (p >= 1.0)
        return max;
    u64 rank = static_cast<u64>(
        std::ceil(p * static_cast<double>(count)));
    rank = std::max<u64>(1, std::min(rank, count));
    u64 cum = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        cum += buckets[i].second;
        if (cum >= rank) {
            // The top populated bucket reports the exact max (the
            // rank-th observation can be no larger).
            if (i + 1 == buckets.size())
                return max;
            return bucket_upper(buckets[i].first);
        }
    }
    return max; // unreachable when invariants hold
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (other.count == 0)
        return;
    std::map<i32, u64> merged(buckets.begin(), buckets.end());
    for (const auto &[idx, c] : other.buckets)
        merged[idx] += c;
    buckets.assign(merged.begin(), merged.end());
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

Registry::Registry() : Registry(Options{}) {}

Registry::Registry(Options opts) : opts_(opts), epoch_ns_(steady_ns()) {}

i64
Registry::now_ns() const
{
    return steady_ns() - epoch_ns_;
}

void
Registry::add(std::string_view name, u64 delta)
{
    LockGuard lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        counters_.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void
Registry::add_value(std::string_view name, double delta)
{
    LockGuard lock(mu_);
    auto it = values_.find(name);
    if (it == values_.end())
        values_.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void
Registry::max_value(std::string_view name, double v)
{
    LockGuard lock(mu_);
    auto it = values_.find(name);
    if (it == values_.end())
        values_.emplace(std::string(name), v);
    else
        it->second = std::max(it->second, v);
}

void
Registry::observe_locked(std::string_view name, double v)
{
    auto it = hists_.find(name);
    if (it == hists_.end())
        it = hists_.emplace(std::string(name), Hist{}).first;
    Hist &h = it->second;
    h.buckets[HistogramSnapshot::bucket_index(v)] += 1;
    if (h.count == 0) {
        h.min = v;
        h.max = v;
    } else {
        h.min = std::min(h.min, v);
        h.max = std::max(h.max, v);
    }
    ++h.count;
    h.sum += v;
}

void
Registry::observe(std::string_view name, double v)
{
    LockGuard lock(mu_);
    observe_locked(name, v);
}

void
Registry::set_gauge(std::string_view name, double v)
{
    LockGuard lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(std::string(name), Gauge{}).first;
    it->second.current = v;
    it->second.high_water = std::max(it->second.high_water, v);
}

void
Registry::add_gauge(std::string_view name, double delta)
{
    LockGuard lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(std::string(name), Gauge{}).first;
    it->second.current += delta;
    it->second.high_water =
        std::max(it->second.high_water, it->second.current);
}

void
Registry::max_gauge(std::string_view name, double v)
{
    LockGuard lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(std::string(name), Gauge{}).first;
    it->second.current = std::max(it->second.current, v);
    it->second.high_water =
        std::max(it->second.high_water, it->second.current);
}

void
Registry::add_gemm(size_t m, size_t n, size_t k)
{
    const u64 flops = 2ull * m * n * k;
    LockGuard lock(mu_);
    counters_["gemm.calls"] += 1;
    counters_["gemm.flops"] += flops;
    gemm_shapes_[GemmShape{m, n, k}] += 1;
    // Work histogram: per-call FLOP distribution. Deterministic across
    // thread counts (depends only on the call mix, not timing).
    observe_locked("work.gemm.flops", static_cast<double>(flops));
}

void
Registry::add_modeled_cost(std::string_view kernel, double total_s,
                           double compute_s, double memory_s,
                           double launch_s, double bytes, u64 invocations)
{
    const std::string base = "modeled.kernel." + std::string(kernel);
    LockGuard lock(mu_);
    values_[base + ".s"] += total_s;
    values_[base + ".compute.s"] += compute_s;
    values_[base + ".memory.s"] += memory_s;
    values_[base + ".launch.s"] += launch_s;
    values_[base + ".bytes"] += bytes;
    counters_[base + ".calls"] += invocations;
}

void
Registry::record_event(std::string_view name, const char *cat, u32 tid,
                       i64 ts_ns, i64 dur_ns)
{
    LockGuard lock(mu_);
    {
        std::string key = "span.";
        key += cat;
        counters_[key] += 1;
        key += ".ns";
        key.replace(0, 4, "wall");
        values_[key] += static_cast<double>(dur_ns);
    }
    {
        // Latency histograms: one per category, plus one per span
        // name for the coarse-grained op/stage categories (kernel
        // categories have too many call sites for per-name series).
        std::string key = "lat.";
        key += cat;
        key += ".ns";
        observe_locked(key, static_cast<double>(dur_ns));
        if (std::strcmp(cat, cat::op) == 0 ||
            std::strcmp(cat, cat::stage) == 0) {
            std::string named = "lat.";
            named += cat;
            named += '.';
            named += name;
            named += ".ns";
            observe_locked(named, static_cast<double>(dur_ns));
        }
    }
    if (!opts_.record_events)
        return;
    if (events_.size() >= opts_.max_events) {
        ++dropped_;
        return;
    }
    events_.push_back(TraceEvent{std::string(name), cat, tid, ts_ns, dur_ns});
}

u64
Registry::counter(std::string_view name) const
{
    LockGuard lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
Registry::value(std::string_view name) const
{
    LockGuard lock(mu_);
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

std::map<std::string, u64, std::less<>>
Registry::counters() const
{
    LockGuard lock(mu_);
    return counters_;
}

std::map<std::string, double, std::less<>>
Registry::values() const
{
    LockGuard lock(mu_);
    return values_;
}

Registry::Gauge
Registry::gauge(std::string_view name) const
{
    LockGuard lock(mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? Gauge{} : it->second;
}

std::map<std::string, Registry::Gauge, std::less<>>
Registry::gauges() const
{
    LockGuard lock(mu_);
    return gauges_;
}

/// Snapshot conversion (caller holds no lock; `h` is a stable copy).
static HistogramSnapshot
snapshot_hist(const std::map<i32, u64> &buckets, u64 count, double sum,
              double min, double max)
{
    HistogramSnapshot s;
    s.buckets.assign(buckets.begin(), buckets.end());
    s.count = count;
    s.sum = sum;
    s.min = min;
    s.max = max;
    return s;
}

HistogramSnapshot
Registry::histogram(std::string_view name) const
{
    LockGuard lock(mu_);
    auto it = hists_.find(name);
    if (it == hists_.end())
        return HistogramSnapshot{};
    const Hist &h = it->second;
    return snapshot_hist(h.buckets, h.count, h.sum, h.min, h.max);
}

std::map<std::string, HistogramSnapshot, std::less<>>
Registry::histograms() const
{
    LockGuard lock(mu_);
    std::map<std::string, HistogramSnapshot, std::less<>> out;
    for (const auto &[name, h] : hists_)
        out.emplace(name,
                    snapshot_hist(h.buckets, h.count, h.sum, h.min, h.max));
    return out;
}

void
Registry::merge_from(const Registry &other)
{
    if (&other == this)
        return;
    // Snapshot `other` under its own lock first, then lock ourselves:
    // no thread ever holds both locks, so merges cannot deadlock.
    const auto counters = other.counters();
    const auto values = other.values();
    const auto gauges = other.gauges();
    const auto hists = other.histograms();
    const auto shapes = other.gemm_shapes();
    const auto events = other.events();
    const u64 dropped = other.dropped_events();
    // Both epochs come from the same steady clock, so this shift
    // re-bases `other`'s event timestamps onto our epoch exactly.
    const i64 shift = other.epoch_ns_ - epoch_ns_;

    LockGuard lock(mu_);
    for (const auto &[name, v] : counters)
        counters_[name] += v;
    for (const auto &[name, v] : values)
        values_[name] += v;
    for (const auto &[name, g] : gauges) {
        Gauge &dst = gauges_[name];
        dst.current = g.current; // the newer reading wins
        dst.high_water = std::max(dst.high_water, g.high_water);
    }
    for (const auto &[name, s] : hists) {
        Hist &h = hists_[name];
        for (const auto &[idx, c] : s.buckets)
            h.buckets[idx] += c;
        if (h.count == 0) {
            h.min = s.min;
            h.max = s.max;
        } else if (s.count != 0) {
            h.min = std::min(h.min, s.min);
            h.max = std::max(h.max, s.max);
        }
        h.count += s.count;
        h.sum += s.sum;
    }
    for (const auto &[shape, c] : shapes)
        gemm_shapes_[shape] += c;
    dropped_ += dropped;
    if (opts_.record_events) {
        for (const TraceEvent &e : events) {
            if (events_.size() >= opts_.max_events) {
                ++dropped_;
                continue;
            }
            TraceEvent copy = e;
            copy.ts_ns += shift;
            events_.push_back(std::move(copy));
        }
    }
}

std::map<GemmShape, u64>
Registry::gemm_shapes() const
{
    LockGuard lock(mu_);
    return gemm_shapes_;
}

std::vector<TraceEvent>
Registry::events() const
{
    LockGuard lock(mu_);
    return events_;
}

u64
Registry::dropped_events() const
{
    LockGuard lock(mu_);
    return dropped_;
}

// ---------------------------------------------------------------------
// Activation
// ---------------------------------------------------------------------

Activate::Activate(Registry *r)
{
    if (r == nullptr)
        return;
    prev_ = detail::g_current.exchange(r, std::memory_order_acq_rel);
    active_ = true;
}

Activate::~Activate()
{
    if (active_)
        detail::g_current.store(prev_, std::memory_order_release);
}

Scope::Scope() : Scope(Options{}) {}

Scope::Scope(Options opts) : reg_(opts.registry)
{
    if (!opts.activate)
        return;
    prev_ = detail::g_current.exchange(&reg_, std::memory_order_acq_rel);
    active_ = true;
}

Scope::~Scope()
{
    if (active_)
        detail::g_current.store(prev_, std::memory_order_release);
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

/// JSON string escape (control chars, quote, backslash).
static void
json_escape(std::ostream &out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
        case '"':
            out << "\\\"";
            break;
        case '\\':
            out << "\\\\";
            break;
        case '\n':
            out << "\\n";
            break;
        case '\t':
            out << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out << strfmt("\\u%04x", c);
            else
                out << c;
        }
    }
}

void
export_chrome_json(const Registry &reg, std::ostream &out)
{
    auto events = reg.events();
    // Sort by (tid, ts, name): thread-index assignment order races
    // with the first span's timestamp, so a ts-major order is not
    // byte-stable across runs at fixed inputs — a tid-major order is
    // (each lane's events are totally ordered by its own clock).
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.ts_ns != b.ts_ns)
                      return a.ts_ns < b.ts_ns;
                  if (a.name != b.name)
                      return a.name < b.name;
                  return a.dur_ns < b.dur_ns;
              });
    out << "{\"traceEvents\":[";
    bool first = true;
    for (const auto &e : events) {
        if (!first)
            out << ",";
        first = false;
        out << "\n{\"name\":\"";
        json_escape(out, e.name);
        out << "\",\"cat\":\"" << e.cat << "\",\"ph\":\"X\",\"pid\":1"
            << ",\"tid\":" << e.tid
            << strfmt(",\"ts\":%.3f,\"dur\":%.3f}",
                      static_cast<double>(e.ts_ns) / 1e3,
                      static_cast<double>(e.dur_ns) / 1e3);
    }
    out << "\n],\n\"displayTimeUnit\":\"ns\",\n\"neoCounters\":{";
    first = true;
    for (const auto &[name, v] : reg.counters()) {
        if (!first)
            out << ",";
        first = false;
        out << "\n\"";
        json_escape(out, name);
        out << "\":" << v;
    }
    out << "},\n\"neoValues\":{";
    first = true;
    for (const auto &[name, v] : reg.values()) {
        if (!first)
            out << ",";
        first = false;
        out << "\n\"";
        json_escape(out, name);
        out << strfmt("\":%.6g", v);
    }
    out << "},\n\"neoGemmShapes\":{";
    first = true;
    for (const auto &[shape, count] : reg.gemm_shapes()) {
        if (!first)
            out << ",";
        first = false;
        out << strfmt("\n\"%llux%llux%llu\":%llu",
                      static_cast<unsigned long long>(shape.m),
                      static_cast<unsigned long long>(shape.n),
                      static_cast<unsigned long long>(shape.k),
                      static_cast<unsigned long long>(count));
    }
    out << strfmt("},\n\"neoDroppedEvents\":%llu\n}\n",
                  static_cast<unsigned long long>(reg.dropped_events()));
}

void
export_summary(const Registry &reg, std::ostream &out)
{
    out << "== neo::obs summary ==\n";
    TextTable counters;
    counters.header({"counter", "total"});
    for (const auto &[name, v] : reg.counters())
        counters.row({name, strfmt("%llu", static_cast<unsigned long long>(v))});
    out << counters.str();

    auto values = reg.values();
    if (!values.empty()) {
        TextTable vt;
        vt.header({"value", "total"});
        for (const auto &[name, v] : values) {
            std::string shown;
            if (name.size() > 3 && name.compare(name.size() - 3, 3, ".ns") == 0)
                shown = format_time(v / 1e9);
            else if (name.find("bytes") != std::string::npos)
                shown = format_bytes(v);
            else if (name.size() > 2 &&
                     name.compare(name.size() - 2, 2, ".s") == 0)
                shown = format_time(v);
            else
                shown = strfmt("%.6g", v);
            vt.row({name, shown});
        }
        out << "\n" << vt.str();
    }

    /// Human-readable metric value: time for .ns/.s series, bytes for
    /// byte series, %.6g otherwise.
    const auto shown_metric = [](const std::string &name, double v) {
        if (name.size() > 3 && name.compare(name.size() - 3, 3, ".ns") == 0)
            return format_time(v / 1e9);
        if (name.find("bytes") != std::string::npos)
            return format_bytes(v);
        if (name.size() > 2 && name.compare(name.size() - 2, 2, ".s") == 0)
            return format_time(v);
        return strfmt("%.6g", v);
    };

    auto gauges = reg.gauges();
    if (!gauges.empty()) {
        TextTable gt;
        gt.header({"gauge", "current", "high water"});
        for (const auto &[name, g] : gauges)
            gt.row({name, shown_metric(name, g.current),
                    shown_metric(name, g.high_water)});
        out << "\n" << gt.str();
    }

    auto hists = reg.histograms();
    if (!hists.empty()) {
        TextTable ht;
        ht.header({"histogram", "count", "p50", "p95", "p99", "max"});
        for (const auto &[name, h] : hists)
            ht.row({name,
                    strfmt("%llu", static_cast<unsigned long long>(h.count)),
                    shown_metric(name, h.percentile(0.50)),
                    shown_metric(name, h.percentile(0.95)),
                    shown_metric(name, h.percentile(0.99)),
                    shown_metric(name, h.max)});
        out << "\n" << ht.str();
    }

    auto shapes = reg.gemm_shapes();
    if (!shapes.empty()) {
        TextTable st;
        st.header({"gemm shape (MxNxK)", "calls"});
        for (const auto &[shape, count] : shapes)
            st.row({strfmt("%llux%llux%llu",
                           static_cast<unsigned long long>(shape.m),
                           static_cast<unsigned long long>(shape.n),
                           static_cast<unsigned long long>(shape.k)),
                    strfmt("%llu", static_cast<unsigned long long>(count))});
        out << "\n" << st.str();
    }
    if (reg.dropped_events() != 0)
        out << strfmt("\ndropped events: %llu\n",
                      static_cast<unsigned long long>(reg.dropped_events()));
}

// ---------------------------------------------------------------------
// OpenMetrics exposition
// ---------------------------------------------------------------------

/// `neo_` + name with every non-[a-zA-Z0-9_] byte mapped to '_'.
static std::string
om_name(std::string_view raw)
{
    std::string out = "neo_";
    for (char c : raw) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

void
export_openmetrics(const Registry &reg, std::ostream &out)
{
    const auto type_line = [&out](const std::string &n, const char *type) {
        out << "# TYPE " << n << ' ' << type << '\n';
    };

    for (const auto &[name, v] : reg.counters()) {
        const std::string n = om_name(name);
        type_line(n, "counter");
        out << n << "_total " << v << '\n';
    }
    for (const auto &[name, v] : reg.values()) {
        const std::string n = om_name(name);
        type_line(n, "gauge");
        out << n << ' ' << json::number_to_string(v) << '\n';
    }
    for (const auto &[name, g] : reg.gauges()) {
        const std::string n = om_name(name);
        type_line(n, "gauge");
        out << n << ' ' << json::number_to_string(g.current) << '\n';
        type_line(n + "_high_water", "gauge");
        out << n << "_high_water "
            << json::number_to_string(g.high_water) << '\n';
    }
    for (const auto &[name, h] : reg.histograms()) {
        const std::string n = om_name(name);
        type_line(n, "histogram");
        u64 cum = 0;
        for (const auto &[idx, c] : h.buckets) {
            cum += c;
            out << n << "_bucket{le=\""
                << json::number_to_string(
                       HistogramSnapshot::bucket_upper(idx))
                << "\"} " << cum << '\n';
        }
        out << n << "_bucket{le=\"+Inf\"} " << h.count << '\n';
        out << n << "_sum " << json::number_to_string(h.sum) << '\n';
        out << n << "_count " << h.count << '\n';
        static constexpr struct {
            const char *suffix;
            double p;
        } kQuantiles[] = {{"_p50", 0.50},
                          {"_p95", 0.95},
                          {"_p99", 0.99},
                          {"_max", 1.0}};
        for (const auto &q : kQuantiles) {
            type_line(n + q.suffix, "gauge");
            out << n << q.suffix << ' '
                << json::number_to_string(h.percentile(q.p)) << '\n';
        }
    }
    if (reg.dropped_events() != 0) {
        type_line("neo_obs_dropped_events", "counter");
        out << "neo_obs_dropped_events_total " << reg.dropped_events()
            << '\n';
    }
    out << "# EOF\n";
}

// ---------------------------------------------------------------------
// Collapsed-stack flamegraph
// ---------------------------------------------------------------------

void
export_flamegraph(const Registry &reg, std::ostream &out)
{
    auto events = reg.events();
    // Per-lane processing order: parents start no later than their
    // children and outlive them, so (ts asc, dur desc) visits each
    // parent before its children on the same tid.
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.ts_ns != b.ts_ns)
                      return a.ts_ns < b.ts_ns;
                  if (a.dur_ns != b.dur_ns)
                      return a.dur_ns > b.dur_ns;
                  return a.name < b.name;
              });

    struct Frame {
        const TraceEvent *e;
        i64 end_ns;
        i64 child_ns = 0;
    };
    std::map<std::string, i64> flame; // stack path -> exclusive ns
    std::vector<Frame> stack;
    const auto pop_top = [&flame, &stack]() {
        const Frame f = stack.back();
        stack.pop_back();
        const i64 self = f.e->dur_ns - f.child_ns;
        if (self > 0) {
            std::string path;
            for (const Frame &g : stack) {
                path += g.e->name;
                path += ';';
            }
            path += f.e->name;
            flame[path] += self;
        }
        if (!stack.empty())
            stack.back().child_ns += f.e->dur_ns;
    };

    for (size_t i = 0; i < events.size(); ++i) {
        if (i > 0 && events[i].tid != events[i - 1].tid)
            while (!stack.empty())
                pop_top();
        const TraceEvent &e = events[i];
        while (!stack.empty() && stack.back().end_ns <= e.ts_ns)
            pop_top();
        stack.push_back(Frame{&e, e.ts_ns + e.dur_ns, 0});
    }
    while (!stack.empty())
        pop_top();

    for (const auto &[path, self_ns] : flame)
        out << path << ' ' << self_ns << '\n';
}

// ---------------------------------------------------------------------
// NEO_TRACE bootstrap
// ---------------------------------------------------------------------

namespace {

enum class TraceMode { off, summary, json, openmetrics, flamegraph };

struct GlobalTrace {
    TraceMode mode = TraceMode::off;
    std::string path;         // empty: summary→stderr, json→neo_trace.json
    Registry *registry = nullptr; // leaked: must outlive atexit handlers
};

GlobalTrace &
global_trace()
{
    // Magic-static init is thread-safe; mutation is confined to
    // process start/exit paths. neo-lint: allow(thread-unsafe-static)
    static GlobalTrace g;
    return g;
}

void
export_global_at_exit()
{
    auto &g = global_trace();
    if (g.registry == nullptr || g.mode == TraceMode::off)
        return;
    if (g.mode == TraceMode::json || g.mode == TraceMode::openmetrics ||
        g.mode == TraceMode::flamegraph) {
        const char *fallback = g.mode == TraceMode::json ? "neo_trace.json"
                               : g.mode == TraceMode::openmetrics
                                   ? "neo_metrics.txt"
                                   : "neo_flame.txt";
        const char *what = g.mode == TraceMode::json ? "chrome trace"
                           : g.mode == TraceMode::openmetrics
                               ? "OpenMetrics exposition"
                               : "collapsed-stack flamegraph";
        std::string path = g.path.empty() ? fallback : g.path;
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "neo::obs: cannot write %s to %s\n", what,
                         path.c_str());
            return;
        }
        if (g.mode == TraceMode::json)
            export_chrome_json(*g.registry, out);
        else if (g.mode == TraceMode::openmetrics)
            export_openmetrics(*g.registry, out);
        else
            export_flamegraph(*g.registry, out);
        std::fprintf(stderr, "neo::obs: wrote %s to %s\n", what,
                     path.c_str());
    } else if (g.path.empty()) {
        std::ostringstream out;
        export_summary(*g.registry, out);
        std::fputs(out.str().c_str(), stderr);
    } else {
        std::ofstream out(g.path);
        if (out)
            export_summary(*g.registry, out);
        else
            std::fprintf(stderr, "neo::obs: cannot write summary to %s\n",
                         g.path.c_str());
    }
}

/// Workspace arena stats sink (common/ cannot link obs, so the arena
/// reports through a function-pointer hook installed here).
void
workspace_stats(size_t reused, size_t fresh, size_t high_water)
{
    Registry *r = current();
    if (r == nullptr)
        return;
    if (reused != 0)
        r->add_value("ws.bytes_reused", static_cast<double>(reused));
    if (fresh != 0)
        r->add_value("ws.fresh_bytes", static_cast<double>(fresh));
    if (high_water != 0) {
        r->max_value("ws.high_water_bytes", static_cast<double>(high_water));
        // Arena gauges: aggregate peak across arenas plus one lane
        // per thread index (arenas are thread-local, so the per-lane
        // series is the per-thread peak the tid maps to).
        const double hw = static_cast<double>(high_water);
        r->max_gauge("ws.arena.peak_bytes", hw);
        r->max_gauge("ws.arena.peak_bytes.t" +
                         std::to_string(thread_index()),
                     hw);
    }
}

/// Runs init_from_env() before main() so NEO_TRACE needs no code hook.
struct EnvBootstrap {
    EnvBootstrap()
    {
        set_workspace_stats_hook(&workspace_stats);
        init_from_env();
    }
} env_bootstrap;

} // namespace

void
init_from_env()
{
#ifdef NEO_OBS_DISABLE
    return;
#else
    // init_from_env runs at process start, before any worker threads
    // exist. neo-lint: allow(thread-unsafe-static)
    static bool done = false;
    if (done)
        return;
    done = true;

    const char *spec = std::getenv("NEO_TRACE");
    if (spec == nullptr || *spec == '\0')
        return;
    std::string s(spec);
    auto &g = global_trace();
    std::string mode = s;
    auto colon = s.find(':');
    if (colon != std::string::npos) {
        mode = s.substr(0, colon);
        g.path = s.substr(colon + 1);
    }
    if (const char *f = std::getenv("NEO_TRACE_FILE"); f != nullptr && *f)
        g.path = f;

    if (mode == "summary")
        g.mode = TraceMode::summary;
    else if (mode == "json")
        g.mode = TraceMode::json;
    else if (mode == "openmetrics")
        g.mode = TraceMode::openmetrics;
    else if (mode == "flamegraph")
        g.mode = TraceMode::flamegraph;
    else {
        std::fprintf(stderr,
                     "neo::obs: unknown NEO_TRACE mode '%s' "
                     "(want summary|json|openmetrics|flamegraph[:path])\n",
                     mode.c_str());
        return;
    }

    Registry::Options opts;
    opts.record_events =
        (g.mode == TraceMode::json || g.mode == TraceMode::flamegraph);
    // Leaked by design (see GlobalTrace). neo-lint: allow(naked-new)
    g.registry = new Registry(opts);
    detail::g_current.store(g.registry, std::memory_order_release);
    std::atexit(export_global_at_exit);
#endif
}

} // namespace neo::obs
