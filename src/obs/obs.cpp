#include "obs/obs.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include "common/table.h"
#include "common/workspace.h"

namespace neo::obs {

namespace detail {
std::atomic<Registry *> g_current{nullptr};
} // namespace detail

static i64
steady_ns()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

u32
thread_index()
{
    static std::atomic<u32> next{0};
    thread_local u32 idx = next.fetch_add(1, std::memory_order_relaxed);
    return idx;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

Registry::Registry() : Registry(Options{}) {}

Registry::Registry(Options opts) : opts_(opts), epoch_ns_(steady_ns()) {}

i64
Registry::now_ns() const
{
    return steady_ns() - epoch_ns_;
}

void
Registry::add(std::string_view name, u64 delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        counters_.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void
Registry::add_value(std::string_view name, double delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = values_.find(name);
    if (it == values_.end())
        values_.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void
Registry::max_value(std::string_view name, double v)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = values_.find(name);
    if (it == values_.end())
        values_.emplace(std::string(name), v);
    else
        it->second = std::max(it->second, v);
}

void
Registry::add_gemm(size_t m, size_t n, size_t k)
{
    const u64 flops = 2ull * m * n * k;
    std::lock_guard<std::mutex> lock(mu_);
    counters_["gemm.calls"] += 1;
    counters_["gemm.flops"] += flops;
    gemm_shapes_[GemmShape{m, n, k}] += 1;
}

void
Registry::add_modeled_cost(std::string_view kernel, double total_s,
                           double compute_s, double memory_s,
                           double launch_s, double bytes, u64 invocations)
{
    const std::string base = "modeled.kernel." + std::string(kernel);
    std::lock_guard<std::mutex> lock(mu_);
    values_[base + ".s"] += total_s;
    values_[base + ".compute.s"] += compute_s;
    values_[base + ".memory.s"] += memory_s;
    values_[base + ".launch.s"] += launch_s;
    values_[base + ".bytes"] += bytes;
    counters_[base + ".calls"] += invocations;
}

void
Registry::record_event(std::string_view name, const char *cat, u32 tid,
                       i64 ts_ns, i64 dur_ns)
{
    std::lock_guard<std::mutex> lock(mu_);
    {
        std::string key = "span.";
        key += cat;
        counters_[key] += 1;
        key += ".ns";
        key.replace(0, 4, "wall");
        values_[key] += static_cast<double>(dur_ns);
    }
    if (!opts_.record_events)
        return;
    if (events_.size() >= opts_.max_events) {
        ++dropped_;
        return;
    }
    events_.push_back(TraceEvent{std::string(name), cat, tid, ts_ns, dur_ns});
}

u64
Registry::counter(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
Registry::value(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

std::map<std::string, u64, std::less<>>
Registry::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

std::map<std::string, double, std::less<>>
Registry::values() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return values_;
}

std::map<GemmShape, u64>
Registry::gemm_shapes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return gemm_shapes_;
}

std::vector<TraceEvent>
Registry::events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

u64
Registry::dropped_events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

// ---------------------------------------------------------------------
// Activation
// ---------------------------------------------------------------------

Activate::Activate(Registry *r)
{
    if (r == nullptr)
        return;
    prev_ = detail::g_current.exchange(r, std::memory_order_acq_rel);
    active_ = true;
}

Activate::~Activate()
{
    if (active_)
        detail::g_current.store(prev_, std::memory_order_release);
}

Scope::Scope() : Scope(Options{}) {}

Scope::Scope(Options opts) : reg_(opts.registry)
{
    if (!opts.activate)
        return;
    prev_ = detail::g_current.exchange(&reg_, std::memory_order_acq_rel);
    active_ = true;
}

Scope::~Scope()
{
    if (active_)
        detail::g_current.store(prev_, std::memory_order_release);
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

/// JSON string escape (control chars, quote, backslash).
static void
json_escape(std::ostream &out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
        case '"':
            out << "\\\"";
            break;
        case '\\':
            out << "\\\\";
            break;
        case '\n':
            out << "\\n";
            break;
        case '\t':
            out << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out << strfmt("\\u%04x", c);
            else
                out << c;
        }
    }
}

void
export_chrome_json(const Registry &reg, std::ostream &out)
{
    auto events = reg.events();
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.ts_ns != b.ts_ns)
                      return a.ts_ns < b.ts_ns;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.name < b.name;
              });
    out << "{\"traceEvents\":[";
    bool first = true;
    for (const auto &e : events) {
        if (!first)
            out << ",";
        first = false;
        out << "\n{\"name\":\"";
        json_escape(out, e.name);
        out << "\",\"cat\":\"" << e.cat << "\",\"ph\":\"X\",\"pid\":1"
            << ",\"tid\":" << e.tid
            << strfmt(",\"ts\":%.3f,\"dur\":%.3f}",
                      static_cast<double>(e.ts_ns) / 1e3,
                      static_cast<double>(e.dur_ns) / 1e3);
    }
    out << "\n],\n\"displayTimeUnit\":\"ns\",\n\"neoCounters\":{";
    first = true;
    for (const auto &[name, v] : reg.counters()) {
        if (!first)
            out << ",";
        first = false;
        out << "\n\"";
        json_escape(out, name);
        out << "\":" << v;
    }
    out << "},\n\"neoValues\":{";
    first = true;
    for (const auto &[name, v] : reg.values()) {
        if (!first)
            out << ",";
        first = false;
        out << "\n\"";
        json_escape(out, name);
        out << strfmt("\":%.6g", v);
    }
    out << "},\n\"neoGemmShapes\":{";
    first = true;
    for (const auto &[shape, count] : reg.gemm_shapes()) {
        if (!first)
            out << ",";
        first = false;
        out << strfmt("\n\"%llux%llux%llu\":%llu",
                      static_cast<unsigned long long>(shape.m),
                      static_cast<unsigned long long>(shape.n),
                      static_cast<unsigned long long>(shape.k),
                      static_cast<unsigned long long>(count));
    }
    out << strfmt("},\n\"neoDroppedEvents\":%llu\n}\n",
                  static_cast<unsigned long long>(reg.dropped_events()));
}

void
export_summary(const Registry &reg, std::ostream &out)
{
    out << "== neo::obs summary ==\n";
    TextTable counters;
    counters.header({"counter", "total"});
    for (const auto &[name, v] : reg.counters())
        counters.row({name, strfmt("%llu", static_cast<unsigned long long>(v))});
    out << counters.str();

    auto values = reg.values();
    if (!values.empty()) {
        TextTable vt;
        vt.header({"value", "total"});
        for (const auto &[name, v] : values) {
            std::string shown;
            if (name.size() > 3 && name.compare(name.size() - 3, 3, ".ns") == 0)
                shown = format_time(v / 1e9);
            else if (name.find("bytes") != std::string::npos)
                shown = format_bytes(v);
            else if (name.size() > 2 &&
                     name.compare(name.size() - 2, 2, ".s") == 0)
                shown = format_time(v);
            else
                shown = strfmt("%.6g", v);
            vt.row({name, shown});
        }
        out << "\n" << vt.str();
    }

    auto shapes = reg.gemm_shapes();
    if (!shapes.empty()) {
        TextTable st;
        st.header({"gemm shape (MxNxK)", "calls"});
        for (const auto &[shape, count] : shapes)
            st.row({strfmt("%llux%llux%llu",
                           static_cast<unsigned long long>(shape.m),
                           static_cast<unsigned long long>(shape.n),
                           static_cast<unsigned long long>(shape.k)),
                    strfmt("%llu", static_cast<unsigned long long>(count))});
        out << "\n" << st.str();
    }
    if (reg.dropped_events() != 0)
        out << strfmt("\ndropped events: %llu\n",
                      static_cast<unsigned long long>(reg.dropped_events()));
}

// ---------------------------------------------------------------------
// NEO_TRACE bootstrap
// ---------------------------------------------------------------------

namespace {

enum class TraceMode { off, summary, json };

struct GlobalTrace {
    TraceMode mode = TraceMode::off;
    std::string path;         // empty: summary→stderr, json→neo_trace.json
    Registry *registry = nullptr; // leaked: must outlive atexit handlers
};

GlobalTrace &
global_trace()
{
    // Magic-static init is thread-safe; mutation is confined to
    // process start/exit paths. neo-lint: allow(thread-unsafe-static)
    static GlobalTrace g;
    return g;
}

void
export_global_at_exit()
{
    auto &g = global_trace();
    if (g.registry == nullptr || g.mode == TraceMode::off)
        return;
    if (g.mode == TraceMode::json) {
        std::string path = g.path.empty() ? "neo_trace.json" : g.path;
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "neo::obs: cannot write trace to %s\n",
                         path.c_str());
            return;
        }
        export_chrome_json(*g.registry, out);
        std::fprintf(stderr, "neo::obs: wrote chrome trace to %s\n",
                     path.c_str());
    } else if (g.path.empty()) {
        std::ostringstream out;
        export_summary(*g.registry, out);
        std::fputs(out.str().c_str(), stderr);
    } else {
        std::ofstream out(g.path);
        if (out)
            export_summary(*g.registry, out);
        else
            std::fprintf(stderr, "neo::obs: cannot write summary to %s\n",
                         g.path.c_str());
    }
}

/// Workspace arena stats sink (common/ cannot link obs, so the arena
/// reports through a function-pointer hook installed here).
void
workspace_stats(size_t reused, size_t fresh, size_t high_water)
{
    Registry *r = current();
    if (r == nullptr)
        return;
    if (reused != 0)
        r->add_value("ws.bytes_reused", static_cast<double>(reused));
    if (fresh != 0)
        r->add_value("ws.fresh_bytes", static_cast<double>(fresh));
    if (high_water != 0)
        r->max_value("ws.high_water_bytes", static_cast<double>(high_water));
}

/// Runs init_from_env() before main() so NEO_TRACE needs no code hook.
struct EnvBootstrap {
    EnvBootstrap()
    {
        set_workspace_stats_hook(&workspace_stats);
        init_from_env();
    }
} env_bootstrap;

} // namespace

void
init_from_env()
{
#ifdef NEO_OBS_DISABLE
    return;
#else
    // init_from_env runs at process start, before any worker threads
    // exist. neo-lint: allow(thread-unsafe-static)
    static bool done = false;
    if (done)
        return;
    done = true;

    const char *spec = std::getenv("NEO_TRACE");
    if (spec == nullptr || *spec == '\0')
        return;
    std::string s(spec);
    auto &g = global_trace();
    std::string mode = s;
    auto colon = s.find(':');
    if (colon != std::string::npos) {
        mode = s.substr(0, colon);
        g.path = s.substr(colon + 1);
    }
    if (const char *f = std::getenv("NEO_TRACE_FILE"); f != nullptr && *f)
        g.path = f;

    if (mode == "summary")
        g.mode = TraceMode::summary;
    else if (mode == "json")
        g.mode = TraceMode::json;
    else {
        std::fprintf(stderr,
                     "neo::obs: unknown NEO_TRACE mode '%s' "
                     "(want summary|json[:path])\n",
                     mode.c_str());
        return;
    }

    Registry::Options opts;
    opts.record_events = (g.mode == TraceMode::json);
    // Leaked by design (see GlobalTrace). neo-lint: allow(naked-new)
    g.registry = new Registry(opts);
    detail::g_current.store(g.registry, std::memory_order_release);
    std::atexit(export_global_at_exit);
#endif
}

} // namespace neo::obs
