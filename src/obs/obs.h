#pragma once
/**
 * neo::obs — low-overhead tracing + metrics layer.
 *
 * The layer is built around a Registry: a sink for named monotonic
 * counters, accumulated values (bytes, modeled seconds), deterministic
 * log-bucketed latency/work histograms, gauges with high-water marks,
 * a GEMM shape histogram and (optionally) timestamped trace events. A
 * process-wide "current" registry pointer selects the active sink:
 *
 *  - When no registry is installed (the default), every probe —
 *    Span construction, counter adds, observe()/set_gauge() — reduces
 *    to one relaxed atomic load and a branch, so instrumented hot
 *    paths run at full speed.
 *  - `NEO_TRACE=summary|json|openmetrics|flamegraph[:path]` installs a
 *    process-global registry at startup and exports it at exit
 *    (plain-text summary table, chrome://tracing JSON loadable in
 *    Perfetto, OpenMetrics text exposition, or a collapsed-stack
 *    flamegraph loadable in speedscope).
 *  - Tests install a Scope, which owns a private registry, makes it
 *    current for the scope's lifetime and restores the previous sink
 *    on destruction, so counter assertions stay deterministic even
 *    when the suite runs under an ambient NEO_TRACE.
 *
 * Counter totals are deterministic across thread counts: every probe
 * increments exactly once per kernel invocation and addition is
 * commutative, so `NEO_NUM_THREADS` only reorders, never changes,
 * the totals. Trace-event ordering is not deterministic (events carry
 * wall-clock timestamps); exporters sort by timestamp.
 *
 * Activation (Scope construction / Activate) is a process-global
 * switch intended for top-level phases — install from the driving
 * thread before fanning out, not concurrently from workers. Worker
 * threads only read the pointer.
 *
 * Compile-time kill switch: configure with -DNEO_OBS=OFF to define
 * NEO_OBS_DISABLE, which turns every probe into a no-op (current()
 * returns nullptr unconditionally).
 */
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"

namespace neo::obs {

/// Span categories used by the built-in instrumentation. Exporters
/// and tests key on these strings; keep them in sync with DESIGN.md.
namespace cat {
inline constexpr const char *gemm = "gemm";   ///< one modular GEMM call
inline constexpr const char *ntt = "ntt";     ///< one per-limb (I)NTT
inline constexpr const char *bconv = "bconv"; ///< one BConv kernel/convert
inline constexpr const char *ip = "ip";       ///< one inner-product kernel
inline constexpr const char *stage = "stage"; ///< pipeline/keyswitch stage
inline constexpr const char *op = "op";       ///< CKKS evaluator operation
} // namespace cat

/// One completed span, chrome://tracing "X" (complete) event.
struct TraceEvent {
    std::string name;
    const char *cat; ///< static string, one of obs::cat::*
    u32 tid;         ///< small per-thread index (0 = first thread seen)
    i64 ts_ns;       ///< start, ns since the registry's epoch
    i64 dur_ns;
};

/// GEMM shape key for the shape histogram.
struct GemmShape {
    u64 m, n, k;
    bool
    operator<(const GemmShape &o) const
    {
        if (m != o.m)
            return m < o.m;
        if (n != o.n)
            return n < o.n;
        return k < o.k;
    }
};

/**
 * Snapshot of a deterministic log-bucketed value histogram.
 *
 * Bucket boundaries are fixed at compile time: every power-of-two
 * octave [2^e, 2^(e+1)) is split into four log-linear sub-buckets
 * with edges 2^e·{1, 1.25, 1.5, 1.75} for e in [0, 63]; everything
 * below 1 (including 0 and negatives) lands in bucket 0 and anything
 * at or above 2^64 in the top bucket. All edges are exactly
 * representable doubles, so bucket placement is bit-deterministic.
 *
 * Because bucket placement depends only on the observed value — never
 * on arrival order or thread — per-bucket counts, count, min and max
 * are identical across thread counts, and two snapshots merge by
 * adding counts. `sum` is an FP accumulation: exact (hence
 * order-independent) for integer observations totalling < 2^53, which
 * covers the integer-ns latency and integer work/byte series recorded
 * by the built-in probes.
 */
struct HistogramSnapshot {
    /// Per-octave sub-buckets; boundary ratio ≤ 1.25 between edges.
    static constexpr int kSubBuckets = 4;
    /// Highest octave exponent; values ≥ 2^(kMaxExp+1) clamp to the
    /// top bucket.
    static constexpr int kMaxExp = 63;
    /// Total addressable buckets (index 0 is the underflow bucket).
    static constexpr i32 kNumBuckets = 1 + kSubBuckets * (kMaxExp + 1);

    /// (bucket index, count), ascending by index, zero counts omitted.
    std::vector<std::pair<i32, u64>> buckets;
    u64 count = 0;
    double sum = 0;
    double min = 0; ///< exact smallest observation (valid when count>0)
    double max = 0; ///< exact largest observation (valid when count>0)

    /// Bucket index for value v (0 ≤ index < kNumBuckets).
    static i32 bucket_index(double v);
    /// Inclusive lower edge of bucket `idx` (bucket 0 → 0).
    static double bucket_lower(i32 idx);
    /// Exclusive upper edge of bucket `idx` (top bucket → 2^64).
    static double bucket_upper(i32 idx);

    /**
     * Deterministic quantile: the upper edge of the bucket holding
     * the ceil(p·count)-th smallest observation — except that the
     * highest populated bucket reports the exact max, so p≥1 returns
     * max; p≤0 returns the exact min. Relative overestimate is
     * bounded by the ≤1.25 edge ratio. Returns 0 when empty.
     */
    double percentile(double p) const;

    /// Fold `other` into this snapshot (bucket-wise count addition).
    void merge(const HistogramSnapshot &other);
};

/**
 * Metrics + trace sink. All mutating methods are thread-safe; reads
 * taken while workers are still recording see a consistent snapshot.
 */
class Registry
{
  public:
    struct Options {
        /// Record TraceEvents (timeline). Counters are always on.
        bool record_events = false;
        /// Cap on stored events; overflow increments dropped_events().
        size_t max_events = 1u << 20;
    };

    /// Instantaneous level with a high-water mark (resident bytes,
    /// cache occupancy). Unlike counters/values, a gauge can go down.
    struct Gauge {
        double current = 0;
        double high_water = 0;
    };

    Registry();
    explicit Registry(Options opts);

    // -- recording -----------------------------------------------------
    void add(std::string_view name, u64 delta = 1);
    void add_value(std::string_view name, double delta);
    /// Record one observation into the named log-bucketed histogram
    /// (see HistogramSnapshot for the bucket scheme).
    void observe(std::string_view name, double v);
    /// Set a gauge to an absolute level (high-water mark keeps max).
    void set_gauge(std::string_view name, double v);
    /// Adjust a gauge by a (possibly negative) delta.
    void add_gauge(std::string_view name, double delta);
    /// Raise a gauge to at least `v` (for peak-only reporters).
    void max_gauge(std::string_view name, double v);
    /// Keep the maximum of @p v and the stored value (for high-water
    /// marks). Max is commutative/associative, so totals stay
    /// deterministic across thread counts like the sum counters.
    void max_value(std::string_view name, double v);
    /// One modular GEMM call of shape m×n×k: bumps gemm.calls,
    /// gemm.flops (2mnk) and the shape histogram.
    void add_gemm(size_t m, size_t n, size_t k);
    /**
     * Roofline attribution of one modeled kernel (or one aggregated
     * kernel row): accumulates
     *   modeled.kernel.<name>.s            max(compute,memory)+launch
     *   modeled.kernel.<name>.compute.s
     *   modeled.kernel.<name>.memory.s
     *   modeled.kernel.<name>.launch.s
     *   modeled.kernel.<name>.bytes
     * plus the counter modeled.kernel.<name>.calls. Takes plain
     * doubles (not a gpusim type) so obs stays below gpusim in the
     * layering; callers pass CostBreakdown / KernelAttribution fields.
     */
    void add_modeled_cost(std::string_view kernel, double total_s,
                          double compute_s, double memory_s,
                          double launch_s, double bytes,
                          u64 invocations = 1);
    /// Record a finished span: bumps `span.<cat>` and `wall.<cat>.ns`,
    /// feeds the `lat.<cat>.ns` latency histogram (per-name
    /// `lat.<cat>.<name>.ns` for op/stage spans) and (when events are
    /// on) appends a TraceEvent. Exposed so the golden-file test can
    /// inject fixed-timestamp events.
    void record_event(std::string_view name, const char *cat, u32 tid,
                      i64 ts_ns, i64 dur_ns);

    /**
     * Fold a snapshot of `other` into this registry: counters, values
     * and histograms add; gauges take `other`'s current level (the
     * newer reading) and the max of the high-water marks; trace events
     * are appended with timestamps re-based onto this registry's epoch
     * (both epochs come from the same steady clock). Used by neo-prof
     * to publish a scoped profiling run into the ambient NEO_TRACE
     * sink. Not an event re-record: span counters are merged from
     * `other`'s counters, not re-derived.
     */
    void merge_from(const Registry &other);

    // -- reading -------------------------------------------------------
    u64 counter(std::string_view name) const;
    double value(std::string_view name) const;
    Gauge gauge(std::string_view name) const;
    HistogramSnapshot histogram(std::string_view name) const;
    std::map<std::string, u64, std::less<>> counters() const;
    std::map<std::string, double, std::less<>> values() const;
    std::map<std::string, Gauge, std::less<>> gauges() const;
    std::map<std::string, HistogramSnapshot, std::less<>> histograms() const;
    std::map<GemmShape, u64> gemm_shapes() const;
    std::vector<TraceEvent> events() const;
    u64 dropped_events() const;
    bool
    recording_events() const
    {
        return opts_.record_events;
    }

    /// ns since this registry's construction (steady clock).
    i64 now_ns() const;

  private:
    /// Internal histogram accumulator (sparse bucket map).
    struct Hist {
        std::map<i32, u64> buckets;
        u64 count = 0;
        double sum = 0;
        double min = 0;
        double max = 0;
    };

    /// Record one observation; caller already holds mu_ (the batch
    /// recorders fold several observations under one acquisition).
    void observe_locked(std::string_view name, double v) NEO_REQUIRES(mu_);

    Options opts_;
    const i64 epoch_ns_; ///< steady_clock ns at construction
    mutable Mutex mu_;
    std::map<std::string, u64, std::less<>> counters_ NEO_GUARDED_BY(mu_);
    std::map<std::string, double, std::less<>> values_ NEO_GUARDED_BY(mu_);
    std::map<std::string, Gauge, std::less<>> gauges_ NEO_GUARDED_BY(mu_);
    std::map<std::string, Hist, std::less<>> hists_ NEO_GUARDED_BY(mu_);
    std::map<GemmShape, u64> gemm_shapes_ NEO_GUARDED_BY(mu_);
    std::vector<TraceEvent> events_ NEO_GUARDED_BY(mu_);
    u64 dropped_ NEO_GUARDED_BY(mu_) = 0;
};

namespace detail {
extern std::atomic<Registry *> g_current;
} // namespace detail

/// The active sink, or nullptr when observability is off. This is the
/// only check on the hot path.
inline Registry *
current()
{
#ifdef NEO_OBS_DISABLE
    return nullptr;
#else
    return detail::g_current.load(std::memory_order_acquire);
#endif
}

/// Small dense index for the calling thread (0 = first thread that
/// asked). Used as the chrome-trace tid so lanes stay readable.
u32 thread_index();

/**
 * RAII: make `r` the current sink, restore the previous one on
 * destruction. Activate(nullptr) is a no-op (keeps the ambient sink).
 */
class Activate
{
  public:
    explicit Activate(Registry *r);
    ~Activate();
    Activate(const Activate &) = delete;
    Activate &operator=(const Activate &) = delete;

  private:
    Registry *prev_ = nullptr;
    bool active_ = false;
};

/**
 * RAII test/phase sink: owns a Registry and (by default) installs it
 * as current for the scope's lifetime. Destroying a Scope restores
 * whatever sink was current before, so scopes nest.
 */
class Scope
{
  public:
    struct Options {
        Registry::Options registry;
        bool activate = true;
    };

    Scope();
    explicit Scope(Options opts);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

    Registry &
    registry()
    {
        return reg_;
    }
    const Registry &
    registry() const
    {
        return reg_;
    }
    u64
    counter(std::string_view name) const
    {
        return reg_.counter(name);
    }

  private:
    Registry reg_;
    Registry *prev_ = nullptr;
    bool active_ = false;
};

/**
 * RAII timed span. Captures the current sink at construction so the
 * record goes to the sink that was active when the work started, even
 * if a nested Scope is installed meanwhile. `name` and `cat` must be
 * string literals (stored by pointer until the span closes).
 */
class Span
{
  public:
    Span(const char *name, const char *cat)
        : reg_(current()), name_(name), cat_(cat)
    {
        if (reg_ != nullptr)
            start_ns_ = reg_->now_ns();
    }
    ~Span()
    {
        if (reg_ != nullptr)
            reg_->record_event(name_, cat_, thread_index(), start_ns_,
                               reg_->now_ns() - start_ns_);
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    Registry *reg_;
    const char *name_;
    const char *cat_;
    i64 start_ns_ = 0;
};

// -- hot-path convenience probes ---------------------------------------
// Each reduces to one relaxed atomic load and a branch when no
// registry is installed.

/// Record one histogram observation into the current sink (if any).
inline void
observe(std::string_view name, double v)
{
    if (Registry *r = current())
        r->observe(name, v);
}

/// Set a gauge level in the current sink (if any).
inline void
set_gauge(std::string_view name, double v)
{
    if (Registry *r = current())
        r->set_gauge(name, v);
}

/// Adjust a gauge in the current sink (if any).
inline void
add_gauge(std::string_view name, double delta)
{
    if (Registry *r = current())
        r->add_gauge(name, delta);
}

/// Raise a gauge to at least `v` in the current sink (if any).
inline void
max_gauge(std::string_view name, double v)
{
    if (Registry *r = current())
        r->max_gauge(name, v);
}

// -- exporters ---------------------------------------------------------

/// chrome://tracing JSON (object form). Extra top-level keys carry the
/// counters/values/shape histogram; Perfetto ignores them. Events are
/// sorted by (tid, ts, name, dur) so the export is byte-stable at
/// fixed inputs regardless of thread-index assignment order.
void export_chrome_json(const Registry &reg, std::ostream &out);
/// Plain-text summary table: counters, values, gauges, histogram
/// percentiles, GEMM shape histogram.
void export_summary(const Registry &reg, std::ostream &out);
/**
 * OpenMetrics/Prometheus text exposition: counters as `<name>_total`,
 * values and gauges as gauges (`<name>_high_water` for marks),
 * histograms as cumulative `_bucket{le="..."}` series plus
 * `_sum`/`_count` and derived `_p50/_p95/_p99/_max` gauges.
 * Metric names are `neo_` + the registry name with every
 * non-[a-zA-Z0-9_] byte mapped to '_'. Terminated by `# EOF`.
 */
void export_openmetrics(const Registry &reg, std::ostream &out);
/**
 * Collapsed-stack flamegraph (Brendan Gregg / speedscope format):
 * one `root;frame;...;leaf <self_ns>` line per stack, sorted
 * lexicographically. Stacks are reconstructed per thread from the
 * span parent chain (an event is a child of the enclosing event on
 * the same tid); values are exclusive nanoseconds. Requires the
 * registry to record events.
 */
void export_flamegraph(const Registry &reg, std::ostream &out);

/// Parse NEO_TRACE ("summary", "json", "openmetrics", "flamegraph",
/// each optionally ":PATH"), install a process-global registry and
/// register an atexit exporter. Called once from a static
/// initializer; safe to call again (no-op). NEO_TRACE_FILE overrides
/// the output path (defaults: stderr for summary, neo_trace.json,
/// neo_metrics.txt, neo_flame.txt).
void init_from_env();

} // namespace neo::obs
