#pragma once
/**
 * neo::obs — low-overhead tracing + metrics layer.
 *
 * The layer is built around a Registry: a sink for named monotonic
 * counters, accumulated values (bytes, modeled seconds), a GEMM shape
 * histogram and (optionally) timestamped trace events. A process-wide
 * "current" registry pointer selects the active sink:
 *
 *  - When no registry is installed (the default), every probe —
 *    Span construction, counter adds — reduces to one relaxed atomic
 *    load and a branch, so instrumented hot paths run at full speed.
 *  - `NEO_TRACE=summary|json[:path]` installs a process-global
 *    registry at startup and exports it at exit (plain-text summary
 *    table or chrome://tracing JSON loadable in Perfetto).
 *  - Tests install a Scope, which owns a private registry, makes it
 *    current for the scope's lifetime and restores the previous sink
 *    on destruction, so counter assertions stay deterministic even
 *    when the suite runs under an ambient NEO_TRACE.
 *
 * Counter totals are deterministic across thread counts: every probe
 * increments exactly once per kernel invocation and addition is
 * commutative, so `NEO_NUM_THREADS` only reorders, never changes,
 * the totals. Trace-event ordering is not deterministic (events carry
 * wall-clock timestamps); exporters sort by timestamp.
 *
 * Activation (Scope construction / Activate) is a process-global
 * switch intended for top-level phases — install from the driving
 * thread before fanning out, not concurrently from workers. Worker
 * threads only read the pointer.
 *
 * Compile-time kill switch: configure with -DNEO_OBS=OFF to define
 * NEO_OBS_DISABLE, which turns every probe into a no-op (current()
 * returns nullptr unconditionally).
 */
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace neo::obs {

/// Span categories used by the built-in instrumentation. Exporters
/// and tests key on these strings; keep them in sync with DESIGN.md.
namespace cat {
inline constexpr const char *gemm = "gemm";   ///< one modular GEMM call
inline constexpr const char *ntt = "ntt";     ///< one per-limb (I)NTT
inline constexpr const char *bconv = "bconv"; ///< one BConv kernel/convert
inline constexpr const char *ip = "ip";       ///< one inner-product kernel
inline constexpr const char *stage = "stage"; ///< pipeline/keyswitch stage
inline constexpr const char *op = "op";       ///< CKKS evaluator operation
} // namespace cat

/// One completed span, chrome://tracing "X" (complete) event.
struct TraceEvent {
    std::string name;
    const char *cat; ///< static string, one of obs::cat::*
    u32 tid;         ///< small per-thread index (0 = first thread seen)
    i64 ts_ns;       ///< start, ns since the registry's epoch
    i64 dur_ns;
};

/// GEMM shape key for the shape histogram.
struct GemmShape {
    u64 m, n, k;
    bool
    operator<(const GemmShape &o) const
    {
        if (m != o.m)
            return m < o.m;
        if (n != o.n)
            return n < o.n;
        return k < o.k;
    }
};

/**
 * Metrics + trace sink. All mutating methods are thread-safe; reads
 * taken while workers are still recording see a consistent snapshot.
 */
class Registry
{
  public:
    struct Options {
        /// Record TraceEvents (timeline). Counters are always on.
        bool record_events = false;
        /// Cap on stored events; overflow increments dropped_events().
        size_t max_events = 1u << 20;
    };

    Registry();
    explicit Registry(Options opts);

    // -- recording -----------------------------------------------------
    void add(std::string_view name, u64 delta = 1);
    void add_value(std::string_view name, double delta);
    /// Keep the maximum of @p v and the stored value (for high-water
    /// marks). Max is commutative/associative, so totals stay
    /// deterministic across thread counts like the sum counters.
    void max_value(std::string_view name, double v);
    /// One modular GEMM call of shape m×n×k: bumps gemm.calls,
    /// gemm.flops (2mnk) and the shape histogram.
    void add_gemm(size_t m, size_t n, size_t k);
    /**
     * Roofline attribution of one modeled kernel (or one aggregated
     * kernel row): accumulates
     *   modeled.kernel.<name>.s            max(compute,memory)+launch
     *   modeled.kernel.<name>.compute.s
     *   modeled.kernel.<name>.memory.s
     *   modeled.kernel.<name>.launch.s
     *   modeled.kernel.<name>.bytes
     * plus the counter modeled.kernel.<name>.calls. Takes plain
     * doubles (not a gpusim type) so obs stays below gpusim in the
     * layering; callers pass CostBreakdown / KernelAttribution fields.
     */
    void add_modeled_cost(std::string_view kernel, double total_s,
                          double compute_s, double memory_s,
                          double launch_s, double bytes,
                          u64 invocations = 1);
    /// Record a finished span: bumps `span.<cat>` and `wall.<cat>.ns`
    /// and (when events are on) appends a TraceEvent. Exposed so the
    /// golden-file test can inject fixed-timestamp events.
    void record_event(std::string_view name, const char *cat, u32 tid,
                      i64 ts_ns, i64 dur_ns);

    // -- reading -------------------------------------------------------
    u64 counter(std::string_view name) const;
    double value(std::string_view name) const;
    std::map<std::string, u64, std::less<>> counters() const;
    std::map<std::string, double, std::less<>> values() const;
    std::map<GemmShape, u64> gemm_shapes() const;
    std::vector<TraceEvent> events() const;
    u64 dropped_events() const;
    bool
    recording_events() const
    {
        return opts_.record_events;
    }

    /// ns since this registry's construction (steady clock).
    i64 now_ns() const;

  private:
    Options opts_;
    i64 epoch_ns_; ///< steady_clock ns at construction
    mutable std::mutex mu_;
    std::map<std::string, u64, std::less<>> counters_;
    std::map<std::string, double, std::less<>> values_;
    std::map<GemmShape, u64> gemm_shapes_;
    std::vector<TraceEvent> events_;
    u64 dropped_ = 0;
};

namespace detail {
extern std::atomic<Registry *> g_current;
} // namespace detail

/// The active sink, or nullptr when observability is off. This is the
/// only check on the hot path.
inline Registry *
current()
{
#ifdef NEO_OBS_DISABLE
    return nullptr;
#else
    return detail::g_current.load(std::memory_order_acquire);
#endif
}

/// Small dense index for the calling thread (0 = first thread that
/// asked). Used as the chrome-trace tid so lanes stay readable.
u32 thread_index();

/**
 * RAII: make `r` the current sink, restore the previous one on
 * destruction. Activate(nullptr) is a no-op (keeps the ambient sink).
 */
class Activate
{
  public:
    explicit Activate(Registry *r);
    ~Activate();
    Activate(const Activate &) = delete;
    Activate &operator=(const Activate &) = delete;

  private:
    Registry *prev_ = nullptr;
    bool active_ = false;
};

/**
 * RAII test/phase sink: owns a Registry and (by default) installs it
 * as current for the scope's lifetime. Destroying a Scope restores
 * whatever sink was current before, so scopes nest.
 */
class Scope
{
  public:
    struct Options {
        Registry::Options registry;
        bool activate = true;
    };

    Scope();
    explicit Scope(Options opts);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

    Registry &
    registry()
    {
        return reg_;
    }
    const Registry &
    registry() const
    {
        return reg_;
    }
    u64
    counter(std::string_view name) const
    {
        return reg_.counter(name);
    }

  private:
    Registry reg_;
    Registry *prev_ = nullptr;
    bool active_ = false;
};

/**
 * RAII timed span. Captures the current sink at construction so the
 * record goes to the sink that was active when the work started, even
 * if a nested Scope is installed meanwhile. `name` and `cat` must be
 * string literals (stored by pointer until the span closes).
 */
class Span
{
  public:
    Span(const char *name, const char *cat)
        : reg_(current()), name_(name), cat_(cat)
    {
        if (reg_ != nullptr)
            start_ns_ = reg_->now_ns();
    }
    ~Span()
    {
        if (reg_ != nullptr)
            reg_->record_event(name_, cat_, thread_index(), start_ns_,
                               reg_->now_ns() - start_ns_);
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    Registry *reg_;
    const char *name_;
    const char *cat_;
    i64 start_ns_ = 0;
};

// -- exporters ---------------------------------------------------------

/// chrome://tracing JSON (object form). Extra top-level keys carry the
/// counters/values/shape histogram; Perfetto ignores them.
void export_chrome_json(const Registry &reg, std::ostream &out);
/// Plain-text summary table: counters, values, GEMM shape histogram.
void export_summary(const Registry &reg, std::ostream &out);

/// Parse NEO_TRACE ("summary", "json", "summary:PATH", "json:PATH"),
/// install a process-global registry and register an atexit exporter.
/// Called once from a static initializer; safe to call again (no-op).
/// NEO_TRACE_FILE overrides the output path (default: stderr for
/// summary, neo_trace.json for json).
void init_from_env();

} // namespace neo::obs
