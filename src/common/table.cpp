#include "common/table.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace neo {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<size_t> width;
    auto widen = [&](const std::vector<std::string> &cells) {
        if (width.size() < cells.size())
            width.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(width[i] - cells[i].size() + 2, ' ');
        }
        os << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : width)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[512];
    vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return std::string(buf);
}

std::string
format_time(double seconds)
{
    if (seconds < 1e-6)
        return strfmt("%.1f ns", seconds * 1e9);
    if (seconds < 1e-3)
        return strfmt("%.2f us", seconds * 1e6);
    if (seconds < 1.0)
        return strfmt("%.2f ms", seconds * 1e3);
    return strfmt("%.3f s", seconds);
}

std::string
format_bytes(double bytes)
{
    if (bytes < 1024.0)
        return strfmt("%.0f B", bytes);
    if (bytes < 1024.0 * 1024)
        return strfmt("%.1f KB", bytes / 1024.0);
    if (bytes < 1024.0 * 1024 * 1024)
        return strfmt("%.1f MB", bytes / (1024.0 * 1024));
    return strfmt("%.2f GB", bytes / (1024.0 * 1024 * 1024));
}

} // namespace neo
