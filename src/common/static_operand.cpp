#include "common/static_operand.h"

#include <atomic>
#include <map>

#include "common/mutex.h"

namespace neo {

namespace {

struct Range
{
    size_t bytes = 0;
    u64 gen = 0;
};

struct Registry
{
    mutable SharedMutex mu;
    /// Pinned ranges keyed by start address.
    std::map<uintptr_t, Range> ranges NEO_GUARDED_BY(mu);
    std::atomic<u64> next_gen{1};
    std::atomic<size_t> count{0};
};

Registry &
reg()
{
    // Intentionally leaked: StaticPins live inside static-lifetime
    // caches (pipeline kernel registry, pinned key operands) whose
    // destructors run during exit in an unspecified order relative to
    // this TU's statics. A heap registry that is never destroyed keeps
    // pin/unpin/generation safe at any point of shutdown.
    // neo-lint: allow(thread-unsafe-static, naked-new) — see above.
    static Registry *r = new Registry;
    return *r;
}

} // namespace

StaticOperands &
StaticOperands::instance()
{
    // Magic-static init; StaticOperands itself locks internally.
    // neo-lint: allow(thread-unsafe-static)
    static StaticOperands s;
    return s;
}

u64
StaticOperands::pin(const void *p, size_t bytes)
{
    if (p == nullptr || bytes == 0)
        return 0;
    Registry &r = reg();
    const u64 gen = r.next_gen.fetch_add(1, std::memory_order_relaxed);
    WriterLock lock(r.mu);
    auto [it, inserted] = r.ranges.insert_or_assign(
        reinterpret_cast<uintptr_t>(p), Range{bytes, gen});
    (void)it;
    if (inserted)
        r.count.fetch_add(1, std::memory_order_relaxed);
    return gen;
}

void
StaticOperands::unpin(const void *p)
{
    if (p == nullptr)
        return;
    Registry &r = reg();
    WriterLock lock(r.mu);
    if (r.ranges.erase(reinterpret_cast<uintptr_t>(p)) > 0)
        r.count.fetch_sub(1, std::memory_order_relaxed);
}

u64
StaticOperands::generation(const void *p) const
{
    Registry &r = reg();
    if (r.count.load(std::memory_order_relaxed) == 0)
        return 0;
    const uintptr_t addr = reinterpret_cast<uintptr_t>(p);
    ReaderLock lock(r.mu);
    auto it = r.ranges.upper_bound(addr);
    if (it == r.ranges.begin())
        return 0;
    --it;
    return addr < it->first + it->second.bytes ? it->second.gen : 0;
}

size_t
StaticOperands::pins() const
{
    return reg().count.load(std::memory_order_relaxed);
}

} // namespace neo
