#include "common/workspace.h"

#include <algorithm>
#include <atomic>

namespace neo {

namespace {

constexpr size_t kAlign = 64;
constexpr size_t kMinBlock = 1u << 16; // 64 KiB

std::atomic<WorkspaceStatsFn> g_stats{nullptr};

size_t
align_up(size_t v)
{
    return (v + (kAlign - 1)) & ~(kAlign - 1);
}

} // namespace

void
set_workspace_stats_hook(WorkspaceStatsFn fn)
{
    g_stats.store(fn, std::memory_order_release);
}

Workspace &
Workspace::tls()
{
    thread_local Workspace ws;
    return ws;
}

void *
Workspace::raw_alloc(size_t bytes)
{
    const size_t need = align_up(std::max<size_t>(bytes, 1));
    size_t reused = 0, fresh = 0;
    // First block whose tail fits the request. Blocks past active_ are
    // fully free (release() rewound them), so only active_'s partial
    // tail can be skipped — at most one partial region is wasted per
    // nesting level, reclaimed when the frame closes.
    size_t b = active_;
    while (b < blocks_.size() && blocks_[b].size - blocks_[b].used < need)
        ++b;
    if (b == blocks_.size()) {
        Block blk;
        blk.size = std::max({need, kMinBlock, capacity_});
        blk.data = std::make_unique<unsigned char[]>(blk.size);
        capacity_ += blk.size;
        blocks_.push_back(std::move(blk));
        fresh = need;
    } else {
        reused = need;
    }
    active_ = b;
    Block &blk = blocks_[b];
    void *p = blk.data.get() + blk.used;
    blk.used += need;
    live_ += need;
    const size_t hw = std::max(high_water_, live_);
    const bool new_high = hw > high_water_;
    high_water_ = hw;
    if (auto *fn = g_stats.load(std::memory_order_acquire))
        fn(reused, fresh, new_high ? hw : 0);
    return p;
}

Workspace::Frame::Mark
Workspace::mark() const
{
    return {active_, blocks_.empty() ? 0 : blocks_[active_].used, live_};
}

void
Workspace::release(const Frame::Mark &m)
{
    for (size_t b = m.block + 1; b <= active_ && b < blocks_.size(); ++b)
        blocks_[b].used = 0;
    if (m.block < blocks_.size())
        blocks_[m.block].used = m.used;
    active_ = std::min(m.block, blocks_.empty() ? 0 : blocks_.size() - 1);
    live_ = m.live;
}

} // namespace neo
