/**
 * @file
 * neo::Workspace — per-thread bump-allocated scratch memory for the
 * hot kernels.
 *
 * Every GEMM / BConv / NTT / KeySwitch invocation used to heap-allocate
 * its scratch (`std::vector` plane buffers, reorder buffers, overflow
 * tables) and free it on return, so steady-state evaluation spent a
 * measurable slice of its time in the allocator and touched cold pages
 * every call. The Workspace replaces that with a per-thread arena:
 *
 *   Workspace::Frame f;                  // mark
 *   double *ap = f.alloc<double>(m * k); // bump
 *   ...                                  // frame dtor rewinds the mark
 *
 * Frames are strictly LIFO per thread (enforced by scoping them as
 * locals) and the arena's blocks are retained across frames, so after
 * the first call at a given size every allocation is a pointer bump
 * into warm memory.
 *
 * Thread-safety model: the arena is `thread_local`. Kernel call sites
 * open a Frame on the thread that runs the kernel body; `parallel_for`
 * workers that need scratch open their own Frame inside the loop body,
 * so arenas are never shared. A frame's memory may be *written* by
 * worker threads (e.g. row tiles of a GEMM scratch buffer allocated by
 * the submitting thread) — that is safe because the frame outlives the
 * parallel_for join. Because nothing here is cross-thread-shared,
 * the arena deliberately has no lock and no NEO_GUARDED_BY
 * annotations (common/annotations.h): `thread_local` *is* its
 * thread-safety mechanism, and adding a mutex would only hide that.
 *
 * Allocation requirements: T must be trivially copyable and trivially
 * destructible (the arena never runs constructors or destructors), and
 * returned memory is uninitialised — callers must fully overwrite it,
 * exactly as they had to with the `std::vector` + overwrite pattern
 * this replaces. All allocations are 64-byte aligned.
 *
 * Observability: `ws.bytes_reused` counts bytes served from already-
 * allocated blocks (the steady-state win), `ws.fresh_bytes` counts
 * bytes that required a new block, and `ws.high_water_bytes` records
 * the arena's live-byte high-water mark (max semantics).
 */
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace neo {

/**
 * Stats sink for arena activity, installed by the obs layer (common/
 * cannot link obs). Arguments are (bytes served from existing blocks,
 * bytes that required a new block, new live-byte high-water mark or 0
 * if unchanged). Called on the allocating thread.
 */
using WorkspaceStatsFn = void (*)(size_t reused_bytes, size_t fresh_bytes,
                                  size_t high_water_bytes);
void set_workspace_stats_hook(WorkspaceStatsFn fn);

class Workspace
{
  public:
    /// This thread's arena (created on first use, lives for the
    /// thread's lifetime).
    static Workspace &tls();

    /// Total bytes of blocks held by this arena.
    size_t capacity() const { return capacity_; }
    /// Largest number of simultaneously live bytes ever reached.
    size_t high_water() const { return high_water_; }

    /**
     * RAII allocation scope. All memory obtained through a Frame is
     * reclaimed (made reusable, not freed) when the Frame is
     * destroyed. Frames nest; destroy in reverse order of creation
     * (automatic for block-scoped locals).
     */
    class Frame
    {
      public:
        Frame() : ws_(tls()), mark_(ws_.mark()) {}
        ~Frame() { ws_.release(mark_); }
        Frame(const Frame &) = delete;
        Frame &operator=(const Frame &) = delete;

        /// Uninitialised storage for @p count objects of T.
        template <class T>
        T *
        alloc(size_t count)
        {
            static_assert(std::is_trivially_copyable_v<T> &&
                              std::is_trivially_destructible_v<T>,
                          "Workspace only holds trivial types");
            return static_cast<T *>(ws_.raw_alloc(count * sizeof(T)));
        }

      private:
        struct Mark
        {
            size_t block;
            size_t used;
            size_t live;
        };

        Workspace &ws_;
        Mark mark_;
        friend class Workspace;
    };

  private:
    struct Block
    {
        std::unique_ptr<unsigned char[]> data;
        size_t size = 0;
        size_t used = 0;
    };

    void *raw_alloc(size_t bytes);
    Frame::Mark mark() const;
    void release(const Frame::Mark &m);

    std::vector<Block> blocks_;
    size_t active_ = 0;     ///< block currently being bumped
    size_t live_ = 0;       ///< live bytes across all frames
    size_t capacity_ = 0;   ///< sum of block sizes
    size_t high_water_ = 0; ///< max of live_
};

} // namespace neo
