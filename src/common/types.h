/**
 * @file
 * Fixed-width integer aliases used throughout Neo.
 *
 * FHE moduli in this project are up to 64 bits wide, so modular
 * multiplication requires a 128-bit intermediate; we rely on the GCC /
 * Clang `__int128` extension (enabled via CMAKE_CXX_EXTENSIONS).
 */
#pragma once

#include <cstdint>

namespace neo {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using i32 = std::int32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;
using u128 = unsigned __int128;
using i128 = __int128;

} // namespace neo
