/**
 * @file
 * Minimal aligned-column table printer used by the benchmark binaries
 * to emit the rows of each paper table / figure series.
 */
#pragma once

#include <string>
#include <vector>

namespace neo {

/** Accumulates rows of strings and prints them with aligned columns. */
class TextTable
{
  public:
    /// Set the header row.
    void header(std::vector<std::string> cells);

    /// Append one data row.
    void row(std::vector<std::string> cells);

    /// Render to a string with column alignment and a separator rule.
    std::string str() const;

    /// Render and write to stdout.
    void print() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/// Format seconds with an auto-selected unit (ns/us/ms/s).
std::string format_time(double seconds);

/// Format a byte count with an auto-selected unit (B/KB/MB/GB).
std::string format_bytes(double bytes);

} // namespace neo
