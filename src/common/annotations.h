/**
 * @file
 * Clang Thread Safety Analysis annotation macros.
 *
 * Neo's core invariant — bit-identical results at any thread/device
 * count — is enforced dynamically by the TSan legs and the determinism
 * suites, and *statically* by these annotations: every shared-state
 * module (ThreadPool, PlaneCache, KeySwitchPrecomp, StaticOperands,
 * obs::Registry, pipeline kernel caches) declares which capability
 * (lock) guards which member, and the clang `-Wthread-safety
 * -Wthread-safety-beta -Werror` CI leg rejects any access that the
 * analysis cannot prove is protected. Under gcc (or any non-clang
 * compiler) every macro expands to nothing, so the annotations are
 * free documentation.
 *
 * Conventions (see DESIGN.md "Thread-safety annotations & determinism
 * rules" for the full write-up):
 *
 *  - Mutex members use the annotated wrappers in common/mutex.h
 *    (`neo::Mutex`, `neo::SharedMutex`), never raw std types — the
 *    neo-lint `unannotated-mutex` rule enforces this tree-wide.
 *  - Every mutable member shared across threads carries
 *    `NEO_GUARDED_BY(mu)` naming its lock, or is a `std::atomic`.
 *  - Locks are taken through the RAII guards (`neo::LockGuard`,
 *    `neo::ReaderLock`, `neo::WriterLock`); naked `.lock()` /
 *    `.unlock()` calls are rejected by the `lock-discipline` rule.
 *  - Internal helpers that expect the caller to hold a lock are
 *    annotated `NEO_REQUIRES(mu)` instead of re-locking.
 *  - The few deliberate exceptions (leaked singletons and magic
 *    statics whose guarding lock is function-local and therefore not
 *    nameable in an attribute) carry
 *    `NEO_NO_THREAD_SAFETY_ANALYSIS` plus a comment stating the
 *    invariant that makes them safe.
 */
#pragma once

// clang's -Wthread-safety implements the capability attributes; other
// compilers (gcc builds in this repo) see empty expansions. The
// __has_attribute probe keeps very old clangs working too.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define NEO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef NEO_THREAD_ANNOTATION
#define NEO_THREAD_ANNOTATION(x) // no-op off clang
#endif

/// Marks a type as a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex", "shared_mutex").
#define NEO_CAPABILITY(x) NEO_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability (std::lock_guard shape).
#define NEO_SCOPED_CAPABILITY NEO_THREAD_ANNOTATION(scoped_lockable)

/// Member `x` may only be read or written while holding the named
/// capability (exclusively for writes, at least shared for reads).
#define NEO_GUARDED_BY(x) NEO_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member `x`: the *pointee* is guarded by the capability.
#define NEO_PT_GUARDED_BY(x) NEO_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the capabilities
/// exclusively; it neither acquires nor releases them.
#define NEO_REQUIRES(...) \
    NEO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared-ownership variant of NEO_REQUIRES (reader paths).
#define NEO_REQUIRES_SHARED(...) \
    NEO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capabilities exclusively and holds them
/// on return (Mutex::lock, guard constructors).
#define NEO_ACQUIRE(...) \
    NEO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Shared-acquisition variant of NEO_ACQUIRE (reader locks).
#define NEO_ACQUIRE_SHARED(...) \
    NEO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases capabilities the caller holds (Mutex::unlock,
/// guard destructors; releases either ownership mode).
#define NEO_RELEASE(...) \
    NEO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Shared-release variant of NEO_RELEASE.
#define NEO_RELEASE_SHARED(...) \
    NEO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function must NOT be called while holding the capabilities
/// (it acquires them itself; prevents self-deadlock).
#define NEO_EXCLUDES(...) \
    NEO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the named capability (lock
/// accessors).
#define NEO_RETURN_CAPABILITY(x) NEO_THREAD_ANNOTATION(lock_returned(x))

/// try_lock shape: acquires the capability iff the return value equals
/// the first argument.
#define NEO_TRY_ACQUIRE(...) \
    NEO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/**
 * Opt this function out of the analysis entirely. Reserved for the
 * documented exceptions — leaked singletons and magic statics guarded
 * by function-local locks the attribute grammar cannot name. Every use
 * must carry a comment stating the invariant that makes it safe,
 * mirroring the 13 documented `neo-lint: allow(...)` exceptions.
 */
#define NEO_NO_THREAD_SAFETY_ANALYSIS \
    NEO_THREAD_ANNOTATION(no_thread_safety_analysis)
