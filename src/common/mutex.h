/**
 * @file
 * Annotated mutex wrappers: `neo::Mutex`, `neo::SharedMutex`, the RAII
 * guards (`neo::LockGuard`, `neo::ReaderLock`, `neo::WriterLock`) and
 * `neo::CondVar`.
 *
 * These are zero-cost veneers over the std synchronization primitives
 * whose only job is to carry the Clang Thread Safety Analysis
 * attributes (common/annotations.h): a `neo::Mutex` is a capability,
 * the guards are scoped capabilities, and `CondVar::wait` requires the
 * capability it re-acquires before returning. Every shared-state
 * module in the tree declares its locks with these types — the
 * neo-lint `unannotated-mutex` rule rejects raw `std::mutex` /
 * `std::shared_mutex` members, and `lock-discipline` rejects naked
 * `.lock()` / `.unlock()` calls outside this wrapper.
 *
 * CondVar wraps std::condition_variable_any so it can block on the
 * annotated Mutex directly (no escape hatch back to the raw std type
 * is needed, which would blind the analysis). Waits are written as
 * explicit predicate loops at the call site:
 *
 *   neo::LockGuard l(mu_);
 *   while (!ready)           // guarded reads, visibly under mu_
 *       cv_.wait(mu_);
 *
 * rather than the lambda-predicate overload — the analysis treats a
 * lambda body as a separate function that holds nothing, so guarded
 * reads inside a predicate lambda would be (correctly) rejected.
 */
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/annotations.h"

namespace neo {

/**
 * Exclusive mutex carrying the capability annotation. Prefer the RAII
 * LockGuard; the raw lock()/unlock() surface exists for the guards and
 * CondVar (and is off-limits elsewhere per the lock-discipline rule).
 */
class NEO_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    // neo-lint: allow(lock-discipline) — the wrapper is the one place
    // that talks to the raw std primitive.
    void lock() NEO_ACQUIRE() { mu_.lock(); }
    // neo-lint: allow(lock-discipline)
    void unlock() NEO_RELEASE() { mu_.unlock(); }
    bool try_lock() NEO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_; // neo-lint: allow(unannotated-mutex) — the wrapper
};

/**
 * Reader/writer mutex carrying the capability annotation. Writers use
 * WriterLock (exclusive), readers ReaderLock (shared).
 */
class NEO_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    // neo-lint: allow(lock-discipline) — wrapper-internal raw calls.
    void lock() NEO_ACQUIRE() { mu_.lock(); }
    // neo-lint: allow(lock-discipline)
    void unlock() NEO_RELEASE() { mu_.unlock(); }
    // neo-lint: allow(lock-discipline)
    void lock_shared() NEO_ACQUIRE_SHARED() { mu_.lock_shared(); }
    // neo-lint: allow(lock-discipline)
    void unlock_shared() NEO_RELEASE_SHARED() { mu_.unlock_shared(); }

  private:
    // neo-lint: allow(unannotated-mutex) — the wrapper itself.
    std::shared_mutex mu_;
};

/// RAII exclusive lock over a neo::Mutex (std::lock_guard shape).
class NEO_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mu) NEO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~LockGuard() NEO_RELEASE() { mu_.unlock(); }
    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mu_;
};

/// RAII exclusive lock over a neo::SharedMutex (writer side).
class NEO_SCOPED_CAPABILITY WriterLock
{
  public:
    explicit WriterLock(SharedMutex &mu) NEO_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~WriterLock() NEO_RELEASE() { mu_.unlock(); }
    WriterLock(const WriterLock &) = delete;
    WriterLock &operator=(const WriterLock &) = delete;

  private:
    SharedMutex &mu_;
};

/// RAII shared lock over a neo::SharedMutex (reader side).
class NEO_SCOPED_CAPABILITY ReaderLock
{
  public:
    explicit ReaderLock(SharedMutex &mu) NEO_ACQUIRE_SHARED(mu) : mu_(mu)
    {
        mu_.lock_shared();
    }
    ~ReaderLock() NEO_RELEASE() { mu_.unlock_shared(); }
    ReaderLock(const ReaderLock &) = delete;
    ReaderLock &operator=(const ReaderLock &) = delete;

  private:
    SharedMutex &mu_;
};

/**
 * Condition variable that blocks on a neo::Mutex. wait() releases the
 * mutex, blocks, and re-acquires before returning — from the analysis'
 * point of view the capability is held across the call, which is
 * exactly the guarantee the caller's predicate loop relies on.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /// Atomically release @p mu and block; re-acquires @p mu before
    /// returning. Spurious wakeups possible — always loop on the
    /// predicate.
    void
    wait(Mutex &mu) NEO_REQUIRES(mu)
    {
        cv_.wait(mu);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

} // namespace neo
