/**
 * @file
 * Deterministic pseudo-random generation for key material, noise and
 * test data.
 *
 * Uses xoshiro256** — fast, seedable, and reproducible across
 * platforms, which matters for regression tests. This is NOT a CSPRNG;
 * a production deployment would swap in a proper DRBG behind the same
 * interface. For a performance-reproduction study the statistical
 * quality is what matters.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace neo {

/** xoshiro256**-based generator with FHE-oriented sampling helpers. */
class Rng
{
  public:
    /// Seed with splitmix64 expansion of @p seed.
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL);

    /// Next raw 64-bit value.
    u64 next();

    /// Uniform value in [0, bound). @p bound must be nonzero.
    u64 uniform(u64 bound);

    /// Uniform double in [0, 1).
    double uniform_real();

    /**
     * Ternary secret coefficient in {-1, 0, 1} represented mod q.
     * Probability 1/4 for each of ±1, 1/2 for 0 (HEAAN-style).
     */
    u64 ternary(u64 q);

    /**
     * Centered discrete Gaussian with standard deviation @p sigma
     * (default 3.2, the usual RLWE error width), reduced mod q.
     */
    u64 gaussian(u64 q, double sigma = 3.2);

    /// Centered binomial-ish small signed error (for tests).
    i64 small_signed(int bound);

    /// Vector of n uniform residues mod q.
    std::vector<u64> uniform_vec(std::size_t n, u64 q);

  private:
    u64 state_[4];
};

} // namespace neo
