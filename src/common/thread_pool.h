/**
 * @file
 * neo::ThreadPool — the host-side parallel execution engine.
 *
 * The paper's speedups come from running the KLSS kernels (BConv, NTT,
 * IP) on wide parallel hardware; this pool is the CPU reproduction's
 * analogue. Every hot path (per-limb batch NTT/INTT, GEMM row tiles,
 * BConv columns, per-digit Recover Limbs) funnels through
 * `parallel_for`, which splits an index range into fixed chunks and
 * executes them on a persistent worker pool.
 *
 * Determinism contract (the repo's strongest invariant is bit-exactness
 * against the reference KeySwitch):
 *
 *  - `parallel_for` bodies receive *half-open index ranges* and must
 *    write only to locations derived from those indices — all
 *    parallelism in this codebase is over disjoint output tiles.
 *  - Any accumulation happens *inside* a single chunk in the same
 *    order as the sequential code (fixed-order per-tile accumulation);
 *    chunk boundaries never split a reduction.
 *  - Hence results are bit-identical for every thread count, including
 *    the degenerate 1-thread (inline) execution.
 *
 * Thread count comes from the NEO_NUM_THREADS environment variable
 * (default: hardware concurrency). Nested `parallel_for` calls run
 * inline on the calling worker, so recursive kernels (radix-16 NTT
 * inside a per-digit fan-out) cannot deadlock the pool.
 *
 * Bodies must not throw: an exception escaping a worker thread would
 * terminate the process. Validate preconditions before going parallel.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace neo {

class ThreadPool
{
  public:
    /// Body of a parallel loop: operates on indices [begin, end).
    using RangeFn = std::function<void(size_t begin, size_t end)>;

    /**
     * Create a pool with @p threads total executors (the submitting
     * thread counts as one; @p threads - 1 workers are spawned).
     * 0 means "read NEO_NUM_THREADS / hardware concurrency".
     */
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /// Total executor count (submitter + workers), >= 1.
    size_t threads() const { return n_threads_; }

    /**
     * Execute @p body over [begin, end) split into chunks of at least
     * @p grain indices. Blocks until every chunk has completed. Runs
     * inline (single call covering the whole range) when the pool has
     * one executor, the range is at most @p grain, or the caller is
     * itself a pool worker (nested parallelism).
     */
    void parallel_for(size_t begin, size_t end, size_t grain,
                      const RangeFn &body);

    /// The process-wide pool used by the kernel call sites.
    static ThreadPool &global();

    /**
     * Resize the process-wide pool (joins the old workers first).
     * @p threads = 0 re-reads NEO_NUM_THREADS. Not safe to call while
     * parallel work is in flight.
     */
    static void set_global_threads(size_t threads);

    /// NEO_NUM_THREADS if set to a positive integer, else
    /// std::thread::hardware_concurrency() (at least 1).
    static size_t env_threads();

    /// True when a parallel_for on the global pool would actually fan
    /// out (more than one executor and not already inside a worker).
    /// Call sites use it to keep the sequential loop shape — and its
    /// exact operation order — when parallelism is unavailable.
    static bool parallel_active();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_; // null when n_threads_ == 1
    size_t n_threads_;
};

/**
 * parallel_for over the global pool. @p grain is the minimum number of
 * indices per chunk — size it so one chunk amortises the dispatch cost
 * (a few microseconds) and never splits an accumulation.
 */
void parallel_for(size_t begin, size_t end, const ThreadPool::RangeFn &body,
                  size_t grain = 1);

/**
 * Grain for row-parallel GEMM-like loops over @p rows rows of
 * @p work_per_row operations each. Guarantees at least @p min_work
 * operations per chunk and at most ~4 chunks per pool executor; a
 * 1-executor pool gets exactly one chunk (zero chunking overhead).
 * Chunk boundaries split disjoint output rows only — every element's
 * accumulation lives inside one chunk — so the grain affects
 * scheduling, never results.
 */
inline size_t
row_chunk_grain(size_t rows, size_t work_per_row, size_t min_work = 16384)
{
    const size_t per_row = work_per_row == 0 ? 1 : work_per_row;
    const size_t grain = min_work / per_row == 0 ? 1 : min_work / per_row;
    const size_t threads = ThreadPool::global().threads();
    if (threads <= 1)
        return grain > rows ? grain : (rows == 0 ? 1 : rows);
    const size_t cap = (rows + 4 * threads - 1) / (4 * threads);
    const size_t lo = cap == 0 ? 1 : cap;
    return grain > lo ? grain : lo;
}

} // namespace neo
