/**
 * @file
 * Minimal JSON support shared by the bench harness, the profiler and
 * their tests: a streaming writer for emitting schema-versioned
 * artifacts (`BENCH_*.json`, trace exports) and a small
 * recursive-descent reader for loading them back (baseline compare,
 * golden-file tests).
 *
 * Deliberately tiny — objects, arrays, strings, numbers, booleans,
 * null. Numbers round-trip via std::to_chars (shortest form that
 * parses back to the same double), so artifacts diff cleanly and
 * golden files are stable across runs.
 */
#pragma once

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace neo::json {

/// Shortest decimal string that parses back to exactly `v`.
std::string number_to_string(double v);

/// JSON string literal (quotes + escapes) for `s`.
std::string escape(std::string_view s);

/**
 * Streaming JSON writer. Produces pretty-printed (2-space indented)
 * output; nesting is tracked so commas and indentation are automatic:
 *
 *   Writer w;
 *   w.begin_object();
 *   w.key("schema").value("neo.bench/1");
 *   w.key("kernels").begin_array();
 *   ... w.end_array();
 *   w.end_object();
 *   w.str();  // or w.write_file(path)
 *
 * Misuse (value without a key inside an object, unbalanced end_*)
 * throws std::logic_error via NEO_ASSERT.
 */
class Writer
{
  public:
    Writer &begin_object();
    Writer &end_object();
    Writer &begin_array();
    Writer &end_array();
    /// Start a key/value pair inside an object.
    Writer &key(std::string_view k);

    Writer &value(std::string_view v);
    Writer &value(const char *v) { return value(std::string_view(v)); }
    Writer &value(double v);
    Writer &value(u64 v);
    Writer &value(int v) { return value(static_cast<u64>(v)); }
    Writer &value(bool v);
    Writer &null();

    /// The finished document; asserts all containers are closed.
    std::string str() const;
    /// Write the finished document (plus trailing newline) to `path`.
    void write_file(const std::string &path) const;

  private:
    enum class Ctx { object, array };
    void before_item(bool is_key);
    void indent();

    std::ostringstream out_;
    std::vector<Ctx> stack_;
    std::vector<bool> first_;  // first item at each nesting level?
    bool key_pending_ = false; // key() emitted, awaiting its value
};

/** Parsed JSON value (tree form). */
class Value
{
  public:
    enum class Type { null, boolean, number, string, array, object };

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::null; }
    bool is_object() const { return type_ == Type::object; }
    bool is_array() const { return type_ == Type::array; }
    bool is_number() const { return type_ == Type::number; }
    bool is_string() const { return type_ == Type::string; }

    /// Throws NEO_CHECK failure on type mismatch.
    bool as_bool() const;
    double as_number() const;
    const std::string &as_string() const;
    const std::vector<Value> &as_array() const;
    /// Key order of the source document is preserved.
    const std::vector<std::pair<std::string, Value>> &as_object() const;

    /// Object member lookup; nullptr when absent or not an object.
    const Value *find(std::string_view key) const;
    /// Object member lookup; throws when absent.
    const Value &at(std::string_view key) const;

    /// `find` chained through a dotted path ("totals.modeled_s").
    const Value *find_path(std::string_view dotted) const;

    /**
     * Parse a complete JSON document. Throws std::invalid_argument
     * (via NEO_CHECK) on syntax errors, with byte offset.
     */
    static Value parse(std::string_view text);
    /// Parse the contents of `path`; throws if unreadable.
    static Value parse_file(const std::string &path);

    // -- construction (used by parse; handy in tests) ----------------
    Value() = default;
    static Value make_bool(bool b);
    static Value make_number(double n);
    static Value make_string(std::string s);
    static Value make_array(std::vector<Value> v);
    static Value make_object(std::vector<std::pair<std::string, Value>> m);

  private:
    Type type_ = Type::null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

} // namespace neo::json
