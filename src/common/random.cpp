#include "common/random.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace neo {

namespace {

u64
splitmix64(u64 &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(u64 seed)
{
    u64 s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

u64
Rng::next()
{
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

u64
Rng::uniform(u64 bound)
{
    NEO_CHECK(bound != 0, "uniform bound must be nonzero");
    // Rejection sampling to remove modulo bias.
    const u64 threshold = (0 - bound) % bound;
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform_real()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

u64
Rng::ternary(u64 q)
{
    switch (next() & 3) {
      case 0:
        return 1;
      case 1:
        return q - 1;
      default:
        return 0;
    }
}

u64
Rng::gaussian(u64 q, double sigma)
{
    // Box-Muller; rounding a continuous Gaussian is fine for a
    // reproduction study (not constant-time / not CSPRNG).
    double u1 = uniform_real();
    double u2 = uniform_real();
    if (u1 < 1e-300)
        u1 = 1e-300;
    double g = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2) * sigma;
    return from_centered(static_cast<i64>(std::llround(g)), q);
}

i64
Rng::small_signed(int bound)
{
    return static_cast<i64>(uniform(2 * bound + 1)) - bound;
}

std::vector<u64>
Rng::uniform_vec(std::size_t n, u64 q)
{
    std::vector<u64> v(n);
    for (auto &x : v)
        x = uniform(q);
    return v;
}

} // namespace neo
