/**
 * @file
 * Small integer-math helpers: powers of two, bit reversal, ceiling
 * division, and exact 64-bit modular arithmetic on 128-bit
 * intermediates.
 */
#pragma once

#include <bit>
#include <cstddef>

#include "common/check.h"
#include "common/types.h"

namespace neo {

/// True iff @p x is a power of two (zero is not).
constexpr bool
is_pow2(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/// Exact log2 of a power of two.
constexpr int
log2_exact(u64 x)
{
    return std::countr_zero(x);
}

/// Ceiling of a/b for positive integers.
constexpr u64
ceil_div(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

/// Number of bits needed to represent @p x (bit_width).
constexpr int
bit_size(u64 x)
{
    return static_cast<int>(std::bit_width(x));
}

/// Reverse the low @p bits bits of @p x.
constexpr u64
reverse_bits(u64 x, int bits)
{
    u64 r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | ((x >> i) & 1);
    }
    return r;
}

/// (a + b) mod q, assuming a,b < q < 2^63.
constexpr u64
add_mod(u64 a, u64 b, u64 q)
{
    u64 s = a + b;
    return s >= q ? s - q : s;
}

/// (a - b) mod q, assuming a,b < q.
constexpr u64
sub_mod(u64 a, u64 b, u64 q)
{
    return a >= b ? a - b : a + q - b;
}

/// (a * b) mod q via 128-bit intermediate.
constexpr u64
mul_mod(u64 a, u64 b, u64 q)
{
    return static_cast<u64>((static_cast<u128>(a) * b) % q);
}

/// a^e mod q (binary exponentiation).
constexpr u64
pow_mod(u64 a, u64 e, u64 q)
{
    u64 r = 1 % q;
    a %= q;
    while (e > 0) {
        if (e & 1)
            r = mul_mod(r, a, q);
        a = mul_mod(a, a, q);
        e >>= 1;
    }
    return r;
}

/// Multiplicative inverse of a mod prime q (Fermat).
constexpr u64
inv_mod(u64 a, u64 q)
{
    return pow_mod(a, q - 2, q);
}

/// Map a residue in [0,q) to its centered representative in (-q/2, q/2].
constexpr i64
to_centered(u64 x, u64 q)
{
    return x > q / 2 ? static_cast<i64>(x) - static_cast<i64>(q)
                     : static_cast<i64>(x);
}

/// Map a signed value to its residue in [0,q).
constexpr u64
from_centered(i64 x, u64 q)
{
    i64 r = x % static_cast<i64>(q);
    if (r < 0)
        r += static_cast<i64>(q);
    return static_cast<u64>(r);
}

} // namespace neo
