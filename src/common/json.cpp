#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace neo::json {

std::string
number_to_string(double v)
{
    NEO_CHECK(std::isfinite(v), "JSON cannot represent NaN/Inf");
    // Integers up to 2^53 print without an exponent so counters stay
    // human-readable; everything else uses the shortest round-trip
    // form from std::to_chars.
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        return buf;
    }
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
    NEO_ASSERT(ec == std::errc{}, "to_chars failed");
    return std::string(buf, ptr);
}

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

// --------------------------------------------------------------- Writer

void
Writer::indent()
{
    out_ << '\n';
    for (size_t i = 0; i < stack_.size(); ++i)
        out_ << "  ";
}

void
Writer::before_item(bool is_key)
{
    if (key_pending_) {
        NEO_ASSERT(!is_key, "json::Writer: key() after key()");
        key_pending_ = false;
        return; // value follows "key": on the same line
    }
    if (!stack_.empty()) {
        NEO_ASSERT(is_key == (stack_.back() == Ctx::object),
                   "json::Writer: bare value in object / key in array");
        if (!first_.back())
            out_ << ',';
        first_.back() = false;
        indent();
    } else {
        NEO_ASSERT(out_.tellp() == 0,
                   "json::Writer: multiple top-level values");
    }
}

Writer &
Writer::begin_object()
{
    before_item(false);
    out_ << '{';
    stack_.push_back(Ctx::object);
    first_.push_back(true);
    return *this;
}

Writer &
Writer::end_object()
{
    NEO_ASSERT(!stack_.empty() && stack_.back() == Ctx::object &&
                   !key_pending_,
               "json::Writer: mismatched end_object");
    bool empty = first_.back();
    stack_.pop_back();
    first_.pop_back();
    if (!empty)
        indent();
    out_ << '}';
    return *this;
}

Writer &
Writer::begin_array()
{
    before_item(false);
    out_ << '[';
    stack_.push_back(Ctx::array);
    first_.push_back(true);
    return *this;
}

Writer &
Writer::end_array()
{
    NEO_ASSERT(!stack_.empty() && stack_.back() == Ctx::array,
               "json::Writer: mismatched end_array");
    bool empty = first_.back();
    stack_.pop_back();
    first_.pop_back();
    if (!empty)
        indent();
    out_ << ']';
    return *this;
}

Writer &
Writer::key(std::string_view k)
{
    NEO_ASSERT(!stack_.empty() && stack_.back() == Ctx::object,
               "json::Writer: key() outside object");
    before_item(true);
    out_ << escape(k) << ": ";
    key_pending_ = true;
    return *this;
}

Writer &
Writer::value(std::string_view v)
{
    before_item(false);
    out_ << escape(v);
    return *this;
}

Writer &
Writer::value(double v)
{
    before_item(false);
    out_ << number_to_string(v);
    return *this;
}

Writer &
Writer::value(u64 v)
{
    before_item(false);
    out_ << v;
    return *this;
}

Writer &
Writer::value(bool v)
{
    before_item(false);
    out_ << (v ? "true" : "false");
    return *this;
}

Writer &
Writer::null()
{
    before_item(false);
    out_ << "null";
    return *this;
}

std::string
Writer::str() const
{
    NEO_ASSERT(stack_.empty() && !key_pending_,
               "json::Writer: document not closed");
    return out_.str();
}

void
Writer::write_file(const std::string &path) const
{
    std::ofstream f(path);
    NEO_CHECK(f.good(), "cannot open " + path + " for writing");
    f << str() << '\n';
}

// ---------------------------------------------------------------- Value

Value
Value::make_bool(bool b)
{
    Value v;
    v.type_ = Type::boolean;
    v.bool_ = b;
    return v;
}

Value
Value::make_number(double n)
{
    Value v;
    v.type_ = Type::number;
    v.num_ = n;
    return v;
}

Value
Value::make_string(std::string s)
{
    Value v;
    v.type_ = Type::string;
    v.str_ = std::move(s);
    return v;
}

Value
Value::make_array(std::vector<Value> a)
{
    Value v;
    v.type_ = Type::array;
    v.arr_ = std::move(a);
    return v;
}

Value
Value::make_object(std::vector<std::pair<std::string, Value>> m)
{
    Value v;
    v.type_ = Type::object;
    v.obj_ = std::move(m);
    return v;
}

bool
Value::as_bool() const
{
    NEO_CHECK(type_ == Type::boolean, "JSON value is not a boolean");
    return bool_;
}

double
Value::as_number() const
{
    NEO_CHECK(type_ == Type::number, "JSON value is not a number");
    return num_;
}

const std::string &
Value::as_string() const
{
    NEO_CHECK(type_ == Type::string, "JSON value is not a string");
    return str_;
}

const std::vector<Value> &
Value::as_array() const
{
    NEO_CHECK(type_ == Type::array, "JSON value is not an array");
    return arr_;
}

const std::vector<std::pair<std::string, Value>> &
Value::as_object() const
{
    NEO_CHECK(type_ == Type::object, "JSON value is not an object");
    return obj_;
}

const Value *
Value::find(std::string_view key) const
{
    if (type_ != Type::object)
        return nullptr;
    for (const auto &[k, v] : obj_)
        if (k == key)
            return &v;
    return nullptr;
}

const Value &
Value::at(std::string_view key) const
{
    const Value *v = find(key);
    NEO_CHECK(v != nullptr, "missing JSON key: " + std::string(key));
    return *v;
}

const Value *
Value::find_path(std::string_view dotted) const
{
    const Value *cur = this;
    while (cur) {
        size_t dot = dotted.find('.');
        if (dot == std::string_view::npos)
            return cur->find(dotted);
        cur = cur->find(dotted.substr(0, dot));
        dotted.remove_prefix(dot + 1);
    }
    return nullptr;
}

namespace {

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parse_document()
    {
        Value v = parse_value();
        skip_ws();
        NEO_CHECK(pos_ == text_.size(),
                  "trailing characters after JSON document at byte " +
                      std::to_string(pos_));
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what)
    {
        NEO_CHECK(false,
                  "JSON parse error at byte " + std::to_string(pos_) + ": " +
                      what);
        std::abort(); // unreachable; NEO_CHECK(false) throws
    }

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    Value parse_value()
    {
        skip_ws();
        switch (peek()) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': return Value::make_string(parse_string());
        case 't':
            if (consume_literal("true"))
                return Value::make_bool(true);
            fail("bad literal");
        case 'f':
            if (consume_literal("false"))
                return Value::make_bool(false);
            fail("bad literal");
        case 'n':
            if (consume_literal("null"))
                return Value();
            fail("bad literal");
        default: return parse_number();
        }
    }

    Value parse_object()
    {
        expect('{');
        std::vector<std::pair<std::string, Value>> members;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return Value::make_object(std::move(members));
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            members.emplace_back(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return Value::make_object(std::move(members));
        }
    }

    Value parse_array()
    {
        expect('[');
        std::vector<Value> items;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return Value::make_array(std::move(items));
        }
        while (true) {
            items.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return Value::make_array(std::move(items));
        }
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = peek();
            ++pos_;
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            char esc = peek();
            ++pos_;
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                auto [p, ec] = std::from_chars(
                    text_.data() + pos_, text_.data() + pos_ + 4, cp, 16);
                if (ec != std::errc{} || p != text_.data() + pos_ + 4)
                    fail("bad \\u escape");
                pos_ += 4;
                // Artifacts we emit only escape control chars; encode
                // the BMP code point as UTF-8 (no surrogate pairing).
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                }
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    Value parse_number()
    {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        double v = 0;
        auto [p, ec] =
            std::from_chars(text_.data() + start, text_.data() + pos_, v);
        if (ec != std::errc{} || p != text_.data() + pos_ || pos_ == start)
            fail("bad number");
        return Value::make_number(v);
    }

    std::string_view text_;
    size_t pos_ = 0;
};

} // namespace

Value
Value::parse(std::string_view text)
{
    return Parser(text).parse_document();
}

Value
Value::parse_file(const std::string &path)
{
    std::ifstream f(path);
    NEO_CHECK(f.good(), "cannot open " + path);
    std::ostringstream ss;
    ss << f.rdbuf();
    return parse(ss.str());
}

} // namespace neo::json
