#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace neo {

namespace {

/// Set for pool workers (permanently) and for a submitting thread
/// while it participates in chunk execution: any parallel_for issued
/// from such a thread runs inline instead of re-entering the pool.
thread_local bool tls_inside_pool = false;

} // namespace

struct ThreadPool::Impl
{
    /// One parallel_for invocation. Lives on the submitter's stack;
    /// workers must never touch it after leaving (tracked by
    /// `active`), because the submitter frees it on return.
    struct Task
    {
        const RangeFn *body = nullptr;
        size_t begin = 0;
        size_t end = 0;
        size_t chunk = 0;   // indices per chunk
        size_t nchunks = 0; // total chunks
        std::atomic<size_t> next{0}; // next chunk to claim
        std::atomic<size_t> done{0}; // chunks completed
    };

    std::vector<std::thread> workers;
    Mutex m;
    CondVar cv_work; // workers wait for a task
    CondVar cv_done; // submitter waits for completion
    Task *task NEO_GUARDED_BY(m) = nullptr;
    std::uint64_t generation NEO_GUARDED_BY(m) = 0; // bumped per task
    size_t active NEO_GUARDED_BY(m) = 0; // workers currently inside task
    bool stop NEO_GUARDED_BY(m) = false;
    Mutex submit_m; // serialises concurrent external submitters

    void
    worker_loop()
    {
        tls_inside_pool = true;
        std::uint64_t seen = 0;
        for (;;) {
            Task *t = nullptr;
            {
                LockGuard l(m);
                // Explicit predicate loop (not the lambda-predicate
                // wait): the guarded reads stay visibly under m for
                // the thread-safety analysis.
                while (!stop &&
                       (task == nullptr || generation == seen))
                    cv_work.wait(m);
                if (stop)
                    return;
                seen = generation;
                t = task;
                ++active;
            }
            run_chunks(*t);
            {
                LockGuard l(m);
                --active;
                if (active == 0)
                    cv_done.notify_all();
            }
        }
    }

    /// Claim and execute chunks until none remain. Chunk boundaries
    /// are fixed by (begin, end, chunk) alone, so which thread runs a
    /// chunk never affects the result.
    void
    run_chunks(Task &t)
    {
        for (;;) {
            const size_t i = t.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= t.nchunks)
                return;
            const size_t b = t.begin + i * t.chunk;
            const size_t e = std::min(t.end, b + t.chunk);
            (*t.body)(b, e);
            t.done.fetch_add(1, std::memory_order_release);
        }
    }
};

ThreadPool::ThreadPool(size_t threads)
    : n_threads_(threads == 0 ? env_threads() : threads)
{
    if (n_threads_ < 1)
        n_threads_ = 1;
    if (n_threads_ == 1)
        return;
    impl_ = std::make_unique<Impl>();
    impl_->workers.reserve(n_threads_ - 1);
    for (size_t i = 0; i + 1 < n_threads_; ++i)
        impl_->workers.emplace_back([p = impl_.get()] { p->worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    if (!impl_)
        return;
    {
        LockGuard l(impl_->m);
        impl_->stop = true;
    }
    impl_->cv_work.notify_all();
    for (auto &w : impl_->workers)
        w.join();
}

void
ThreadPool::parallel_for(size_t begin, size_t end, size_t grain,
                         const RangeFn &body)
{
    if (end <= begin)
        return;
    const size_t range = end - begin;
    if (grain == 0)
        grain = 1;
    if (!impl_ || tls_inside_pool || range <= grain) {
        body(begin, end);
        return;
    }

    // Chunk count: enough for load balance (4 per executor), capped so
    // chunks stay at least `grain` long.
    size_t nchunks = std::min(range / grain, n_threads_ * 4);
    if (nchunks <= 1) {
        body(begin, end);
        return;
    }
    const size_t chunk = (range + nchunks - 1) / nchunks;
    nchunks = (range + chunk - 1) / chunk;

    Impl::Task t;
    t.body = &body;
    t.begin = begin;
    t.end = end;
    t.chunk = chunk;
    t.nchunks = nchunks;

    LockGuard submit(impl_->submit_m);
    {
        LockGuard l(impl_->m);
        impl_->task = &t;
        ++impl_->generation;
    }
    impl_->cv_work.notify_all();

    // The submitter works too; nested parallel_for from inside the
    // body runs inline.
    tls_inside_pool = true;
    impl_->run_chunks(t);
    tls_inside_pool = false;

    // Wait until every chunk ran AND every worker has left the task —
    // only then may the stack-allocated Task be destroyed. Worker
    // writes are published by the mutex they release on exit.
    LockGuard l(impl_->m);
    while (impl_->active != 0 ||
           t.done.load(std::memory_order_acquire) != t.nchunks)
        impl_->cv_done.wait(impl_->m);
    impl_->task = nullptr;
}

// Magic-static singleton: g_pool is guarded by the function-local g_m,
// which the attribute grammar cannot name from a member declaration —
// one of the documented NEO_NO_THREAD_SAFETY_ANALYSIS exceptions.
ThreadPool &
ThreadPool::global() NEO_NO_THREAD_SAFETY_ANALYSIS
{
    static Mutex g_m;
    // neo-lint: allow(thread-unsafe-static) — guarded by g_m.
    static std::unique_ptr<ThreadPool> g_pool;
    LockGuard l(g_m);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(0);
    return *g_pool;
}

// Invariant: callers never resize while parallel work is in flight
// (documented on the declaration), so the impl_/n_threads_ swap below
// races with nothing; g_m only serialises concurrent resizers. The
// function-local lock is not nameable in attributes — documented
// exception, like global().
void
ThreadPool::set_global_threads(size_t threads) NEO_NO_THREAD_SAFETY_ANALYSIS
{
    static Mutex g_m; // distinct lock: guards the swap below
    LockGuard l(g_m);
    ThreadPool &g = global();
    const size_t want = threads == 0 ? env_threads() : threads;
    if (g.n_threads_ == want)
        return;
    // Rebuild in place: join old workers, spawn the new complement.
    ThreadPool fresh(want);
    std::swap(g.impl_, fresh.impl_);
    std::swap(g.n_threads_, fresh.n_threads_);
}

size_t
ThreadPool::env_threads()
{
    if (const char *env = std::getenv("NEO_NUM_THREADS")) {
        char *endp = nullptr;
        const long v = std::strtol(env, &endp, 10);
        if (endp != env && *endp == '\0' && v > 0)
            return std::min<long>(v, 1024);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

bool
ThreadPool::parallel_active()
{
    return !tls_inside_pool && global().threads() > 1;
}

void
parallel_for(size_t begin, size_t end, const ThreadPool::RangeFn &body,
             size_t grain)
{
    ThreadPool::global().parallel_for(begin, end, grain, body);
}

} // namespace neo
