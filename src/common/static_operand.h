/**
 * @file
 * Registry of long-lived ("static") GEMM operands.
 *
 * The hot-path caches (tensor/plane_cache.h) may precompute derived
 * forms of an operand — bit-sliced FP64/INT8 planes, pow2 recombine
 * tables, bit-width scans — but only when the operand's storage is
 * guaranteed stable and its contents immutable for the lifetime of the
 * cache entry. Owners of such operands (BConv factor matrices, NTT
 * twiddle matrices, evaluation-key buffers) declare that guarantee by
 * *pinning* the byte range here, normally through the RAII StaticPin.
 *
 * Every pin carries a monotonically increasing generation id. Cache
 * entries record the generation they were built under; when a range is
 * unpinned and later re-pinned (e.g. the allocator reuses the address
 * for a new object), the generation changes and stale entries miss
 * instead of returning another object's data. Lookups on unpinned
 * addresses return generation 0, so transient operands are never
 * cached.
 *
 * This registry lives in common/ (below both poly/ and tensor/) so any
 * layer can pin without creating dependency cycles; only the cache
 * itself needs the tensor layer.
 */
#pragma once

#include <cstddef>

#include "common/types.h"

namespace neo {

class StaticOperands
{
  public:
    /// The process-wide registry.
    static StaticOperands &instance();

    /**
     * Declare [p, p+bytes) stable and immutable until unpin(p).
     * Returns the generation id of the new pin. Re-pinning a live
     * range replaces it under a fresh generation.
     */
    u64 pin(const void *p, size_t bytes);

    /// Remove the pin starting at @p p (no-op if absent or null).
    void unpin(const void *p);

    /**
     * Generation of the pinned range *containing* @p p (interior
     * pointers resolve to their enclosing pin), or 0 when no pin
     * covers it. The containment rule lets a cache key on a slice of a
     * larger pinned buffer (e.g. one site of a reordered key tensor).
     */
    u64 generation(const void *p) const;

    /// Live pin count — a zero fast-path for cache lookups.
    size_t pins() const;
};

/**
 * RAII pin: registers the range on construction, unpins on
 * destruction. Movable (the moved-from handle becomes empty) so owners
 * can live in containers; not copyable.
 */
class StaticPin
{
  public:
    StaticPin() = default;
    StaticPin(const void *p, size_t bytes)
        : ptr_(bytes > 0 ? p : nullptr)
    {
        if (ptr_ != nullptr)
            StaticOperands::instance().pin(ptr_, bytes);
    }
    ~StaticPin() { reset(); }
    StaticPin(StaticPin &&o) noexcept : ptr_(o.ptr_) { o.ptr_ = nullptr; }
    StaticPin &
    operator=(StaticPin &&o) noexcept
    {
        if (this != &o) {
            reset();
            ptr_ = o.ptr_;
            o.ptr_ = nullptr;
        }
        return *this;
    }
    StaticPin(const StaticPin &) = delete;
    StaticPin &operator=(const StaticPin &) = delete;

    void
    reset()
    {
        if (ptr_ != nullptr) {
            StaticOperands::instance().unpin(ptr_);
            ptr_ = nullptr;
        }
    }

  private:
    const void *ptr_ = nullptr;
};

} // namespace neo
