/**
 * @file
 * Error-reporting helpers.
 *
 * Following the gem5 fatal()/panic() distinction:
 *  - NEO_CHECK reports a *user*-caused error (bad parameters, unmet
 *    preconditions of the public API) and throws std::invalid_argument.
 *  - NEO_ASSERT reports an *internal* invariant violation (a bug in
 *    Neo itself) and throws std::logic_error.
 *
 * Both are always on (they guard cryptographic correctness); hot inner
 * loops use plain assert() instead.
 */
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace neo {

namespace detail {

[[noreturn]] inline void
throw_check_failure(const char *kind, const char *expr, const char *file,
                    int line, const std::string &msg)
{
    std::ostringstream os;
    os << kind << " failed: (" << expr << ") at " << file << ":" << line;
    if (!msg.empty())
        os << " — " << msg;
    if (kind[0] == 'N' && kind[4] == 'C') // NEO_CHECK
        throw std::invalid_argument(os.str());
    throw std::logic_error(os.str());
}

} // namespace detail

/// Validate a user-facing precondition; throws std::invalid_argument.
#define NEO_CHECK(cond, msg)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::neo::detail::throw_check_failure("NEO_CHECK", #cond, __FILE__, \
                                               __LINE__, (msg));             \
        }                                                                    \
    } while (0)

/// Validate an internal invariant; throws std::logic_error.
#define NEO_ASSERT(cond, msg)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::neo::detail::throw_check_failure("NEO_ASSERT", #cond,          \
                                               __FILE__, __LINE__, (msg));   \
        }                                                                    \
    } while (0)

} // namespace neo
