/**
 * @file
 * Negacyclic number-theoretic transform over Z_q[X]/(X^n + 1).
 *
 * Convention used across the whole library (reference radix-2,
 * four-step, and radix-16 implementations all agree on it):
 *
 *   forward:  X[k] = a(ψ^{2k+1}) = Σ_i (a_i ψ^i) ω^{ik},  ω = ψ²,
 *             output in natural order of k;
 *   inverse:  the exact inverse map.
 *
 * Point-wise products in this domain therefore realise negacyclic
 * convolution. The ψ-twist is the "twisting factor" multiplication
 * the paper's Fig 9 shows between the matrix-multiplication stages.
 */
#pragma once

#include <vector>

#include "rns/modulus.h"

namespace neo {

/** Precomputed twiddle tables for one (n, q) pair. */
class NttTables
{
  public:
    /**
     * Build tables for ring degree @p n (power of two) and modulus
     * @p q with q ≡ 1 (mod 2n).
     */
    NttTables(size_t n, const Modulus &q);

    size_t n() const { return n_; }
    const Modulus &modulus() const { return q_; }

    /// ψ — a primitive 2n-th root of unity mod q.
    u64 psi() const { return psi_; }

    /// ψ^i (0 ≤ i < n).
    u64 psi_pow(size_t i) const { return psi_pow_[i]; }
    /// ψ^{-i}.
    u64 psi_inv_pow(size_t i) const { return psi_inv_pow_[i]; }
    /// ω^i = ψ^{2i}.
    u64 omega_pow(size_t i) const { return w_pow_[i]; }
    /// ω^{-i}.
    u64 omega_inv_pow(size_t i) const { return w_inv_pow_[i]; }
    /// n^{-1} mod q.
    u64 n_inv() const { return n_inv_; }

    /// In-place forward negacyclic NTT of @p a (n values < q).
    void forward(u64 *a) const;

    /// In-place inverse negacyclic NTT.
    void inverse(u64 *a) const;

    /// Forward cyclic NTT (no ψ twist) — building block for four-step.
    void forward_cyclic(u64 *a) const;

    /// Inverse cyclic NTT without the 1/n scaling.
    void inverse_cyclic_unscaled(u64 *a) const;

  private:
    size_t n_;
    Modulus q_;
    u64 psi_;
    u64 n_inv_;
    std::vector<u64> psi_pow_, psi_pow_shoup_;
    std::vector<u64> psi_inv_pow_, psi_inv_pow_shoup_;
    std::vector<u64> w_pow_, w_pow_shoup_;
    std::vector<u64> w_inv_pow_, w_inv_pow_shoup_;
    std::vector<u32> bitrev_;
};

/**
 * Reference negacyclic convolution in O(n²) — ground truth for NTT
 * tests: c = a ⊛ b in Z_q[X]/(X^n + 1).
 */
std::vector<u64> negacyclic_convolve(const std::vector<u64> &a,
                                     const std::vector<u64> &b,
                                     const Modulus &q);

} // namespace neo
