#include "poly/rns_poly.h"

#include "common/check.h"
#include "common/thread_pool.h"

namespace neo {

RnsPoly::RnsPoly(size_t n, std::vector<Modulus> mods, PolyForm form)
    : n_(n), mods_(std::move(mods)), data_(n * mods_.size(), 0), form_(form)
{
    NEO_CHECK(is_pow2(n), "degree must be a power of two");
}

bool
RnsPoly::same_shape(const RnsPoly &o) const
{
    if (n_ != o.n_ || mods_.size() != o.mods_.size())
        return false;
    for (size_t i = 0; i < mods_.size(); ++i) {
        if (mods_[i].value() != o.mods_[i].value())
            return false;
    }
    return true;
}

void
RnsPoly::add_inplace(const RnsPoly &o)
{
    NEO_ASSERT(same_shape(o) && form_ == o.form_, "shape/form mismatch");
    for (size_t i = 0; i < mods_.size(); ++i) {
        const u64 q = mods_[i].value();
        u64 *a = limb(i);
        const u64 *b = o.limb(i);
        for (size_t l = 0; l < n_; ++l)
            a[l] = add_mod(a[l], b[l], q);
    }
}

void
RnsPoly::sub_inplace(const RnsPoly &o)
{
    NEO_ASSERT(same_shape(o) && form_ == o.form_, "shape/form mismatch");
    for (size_t i = 0; i < mods_.size(); ++i) {
        const u64 q = mods_[i].value();
        u64 *a = limb(i);
        const u64 *b = o.limb(i);
        for (size_t l = 0; l < n_; ++l)
            a[l] = sub_mod(a[l], b[l], q);
    }
}

void
RnsPoly::negate_inplace()
{
    for (size_t i = 0; i < mods_.size(); ++i) {
        const u64 q = mods_[i].value();
        u64 *a = limb(i);
        for (size_t l = 0; l < n_; ++l)
            a[l] = a[l] == 0 ? 0 : q - a[l];
    }
}

void
RnsPoly::mul_inplace(const RnsPoly &o)
{
    NEO_ASSERT(same_shape(o), "shape mismatch");
    NEO_ASSERT(form_ == PolyForm::eval && o.form_ == PolyForm::eval,
               "point-wise multiply requires eval form");
    for (size_t i = 0; i < mods_.size(); ++i) {
        const Modulus &m = mods_[i];
        u64 *a = limb(i);
        const u64 *b = o.limb(i);
        for (size_t l = 0; l < n_; ++l)
            a[l] = m.mul(a[l], b[l]);
    }
}

void
RnsPoly::scalar_mul_inplace(const std::vector<u64> &scalars)
{
    NEO_ASSERT(scalars.size() == mods_.size(), "scalar count mismatch");
    for (size_t i = 0; i < mods_.size(); ++i) {
        const u64 q = mods_[i].value();
        const u64 w = scalars[i];
        const u64 ws = shoup_precompute(w, q);
        u64 *a = limb(i);
        for (size_t l = 0; l < n_; ++l)
            a[l] = mul_shoup(a[l], w, ws, q);
    }
}

void
RnsPoly::add_product(const RnsPoly &b, const RnsPoly &c)
{
    NEO_ASSERT(same_shape(b) && same_shape(c), "shape mismatch");
    NEO_ASSERT(form_ == PolyForm::eval && b.form_ == PolyForm::eval &&
                   c.form_ == PolyForm::eval,
               "add_product requires eval form");
    for (size_t i = 0; i < mods_.size(); ++i) {
        const Modulus &m = mods_[i];
        u64 *a = limb(i);
        const u64 *x = b.limb(i);
        const u64 *y = c.limb(i);
        for (size_t l = 0; l < n_; ++l)
            a[l] = m.add(a[l], m.mul(x[l], y[l]));
    }
}

void
RnsPoly::drop_limbs_to(size_t count)
{
    NEO_ASSERT(count <= mods_.size(), "cannot grow via drop_limbs_to");
    mods_.resize(count);
    data_.resize(count * n_);
}

NttTableSet::NttTableSet(size_t n, const std::vector<Modulus> &mods)
{
    tables_.reserve(mods.size());
    for (const auto &m : mods)
        tables_.emplace_back(n, m);
}

const NttTables &
NttTableSet::for_modulus(const Modulus &q) const
{
    for (const auto &t : tables_) {
        if (t.modulus().value() == q.value())
            return t;
    }
    NEO_ASSERT(false, "no NTT tables for modulus");
    return tables_.front();
}

void
NttTableSet::to_eval(RnsPoly &p) const
{
    if (p.form() == PolyForm::eval)
        return;
    // Per-limb batch NTT: limbs are independent transforms over
    // disjoint storage.
    parallel_for(
        0, p.limbs(),
        [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i)
                for_modulus(p.modulus(i)).forward(p.limb(i));
        },
        1);
    p.set_form(PolyForm::eval);
}

void
NttTableSet::to_coeff(RnsPoly &p) const
{
    if (p.form() == PolyForm::coeff)
        return;
    // Per-limb batch INTT, same disjointness as to_eval.
    parallel_for(
        0, p.limbs(),
        [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i)
                for_modulus(p.modulus(i)).inverse(p.limb(i));
        },
        1);
    p.set_form(PolyForm::coeff);
}

void
automorphism_coeff(const u64 *in, u64 *out, size_t n, u64 g,
                   const Modulus &q)
{
    NEO_CHECK(g % 2 == 1, "Galois element must be odd");
    const u64 two_n = 2 * n;
    for (size_t i = 0; i < n; ++i) {
        u64 j = (static_cast<u128>(i) * g) % two_n;
        if (j < n) {
            out[j] = in[i];
        } else {
            out[j - n] = in[i] == 0 ? 0 : q.value() - in[i];
        }
    }
}

void
automorphism_eval(const u64 *in, u64 *out, size_t n, u64 g,
                  const Modulus &)
{
    NEO_CHECK(g % 2 == 1, "Galois element must be odd");
    const u64 two_n = 2 * n;
    // Slot k holds the evaluation at ψ^{2k+1}; the automorphism sends
    // it to the evaluation at ψ^{(2k+1)g mod 2n}.
    for (size_t k = 0; k < n; ++k) {
        u64 e = (static_cast<u128>(2 * k + 1) * g) % two_n;
        size_t src = static_cast<size_t>((e - 1) / 2);
        out[k] = in[src];
    }
}

RnsPoly
automorphism(const RnsPoly &p, u64 g)
{
    RnsPoly out(p.n(), p.mods(), p.form());
    for (size_t i = 0; i < p.limbs(); ++i) {
        if (p.form() == PolyForm::coeff) {
            automorphism_coeff(p.limb(i), out.limb(i), p.n(), g,
                               p.modulus(i));
        } else {
            automorphism_eval(p.limb(i), out.limb(i), p.n(), g,
                              p.modulus(i));
        }
    }
    return out;
}

} // namespace neo
