#include "poly/matrix_ntt.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "common/workspace.h"
#include "obs/obs.h"

namespace neo {

MatrixNtt::MatrixNtt(const NttTables &tables, size_t radix)
    : tables_(tables), radix_(radix)
{
    NEO_CHECK(is_pow2(radix) && radix >= 2, "radix must be a power of two");
    NEO_CHECK(radix <= tables.n(), "radix exceeds transform length");
    const int log_radix = log2_exact(radix);
    w_fwd_.resize(log_radix + 1);
    w_inv_.resize(log_radix + 1);
    const size_t nfull = tables_.n();
    for (int lg = 1; lg <= log_radix; ++lg) {
        const size_t len = 1ULL << lg;
        const size_t step = nfull / len;
        auto &wf = w_fwd_[lg];
        auto &wi = w_inv_[lg];
        wf.resize(len * len);
        wi.resize(len * len);
        for (size_t c = 0; c < len; ++c) {
            for (size_t k = 0; k < len; ++k) {
                size_t e = (c * k % len) * step;
                wf[c * len + k] = tables_.omega_pow(e);
                wi[c * len + k] = tables_.omega_inv_pow(e);
            }
        }
        pins_.emplace_back(wf.data(), wf.size() * sizeof(u64));
        pins_.emplace_back(wi.data(), wi.size() * sizeof(u64));
    }
}

const std::vector<u64> &
MatrixNtt::twiddle_matrix(size_t len, bool inverse) const
{
    const int lg = log2_exact(len);
    return inverse ? w_inv_[lg] : w_fwd_[lg];
}

void
MatrixNtt::cyclic_batch(u64 *a, size_t rows, size_t len, bool inverse,
                        const ModMatMulFn &mm, TopTwist top) const
{
    const Modulus &q = tables_.modulus();
    NEO_ASSERT(top == TopTwist::none || (rows == 1 && len > radix_),
               "fused twists apply to the top-level call only");
    if (len <= radix_) {
        // Base case: one (rows × len) · (len × len) matrix product.
        const auto &w = twiddle_matrix(len, inverse);
        Workspace::Frame frame;
        u64 *out = frame.alloc<u64>(rows * len);
        mm(a, w.data(), out, rows, len, len, q);
        std::copy(out, out + rows * len, a);
        return;
    }

    const size_t n1 = radix_;
    const size_t n2 = len / n1;
    const size_t nfull = tables_.n();
    const size_t step = nfull / len; // ω_len = ω_full^step
    const u64 qv = q.value();

    const auto &w1 = twiddle_matrix(n1, inverse);

    // Rows are independent length-len transforms over disjoint slices
    // of `a`; each chunk carries its own scratch. A nested pool call
    // (from the recursion or from `mm`) runs inline on the worker.
    parallel_for(
        0, rows,
        [&](size_t row_begin, size_t row_end) {
            // Worker-local arena frame: scratch comes from the
            // executing thread's Workspace, so chunks never share
            // buffers and repeat calls reuse warm blocks.
            Workspace::Frame frame;
            u64 *at = frame.alloc<u64>(len);  // n1 × n2 gathered matrix
            u64 *out = frame.alloc<u64>(len); // n1 × n2 left-matmul result
            for (size_t row = row_begin; row < row_end; ++row) {
                u64 *x = a + row * len;
                // Step 1: gather A[r][c] = x[r + n1*c]. At the fused
                // top level the ψ pre-twist rides in the gather:
                // element x[i] is multiplied by ψ^i exactly as the
                // standalone pass would, just at its new address.
                if (top == TopTwist::psi_fwd) {
                    for (size_t r = 0; r < n1; ++r)
                        for (size_t c = 0; c < n2; ++c)
                            at[r * n2 + c] =
                                mul_mod(x[r + n1 * c],
                                        tables_.psi_pow(r + n1 * c), qv);
                } else {
                    for (size_t r = 0; r < n1; ++r)
                        for (size_t c = 0; c < n2; ++c)
                            at[r * n2 + c] = x[r + n1 * c];
                }
                // Step 2: length-n2 transforms on the n1 rows
                // (recursive).
                cyclic_batch(at, n1, n2, inverse, mm);
                // Step 3: twisting factors ω_len^{r*k2}.
                for (size_t r = 1; r < n1; ++r) {
                    for (size_t k2 = 0; k2 < n2; ++k2) {
                        size_t e = (r * k2 % len) * step;
                        u64 w = inverse ? tables_.omega_inv_pow(e)
                                        : tables_.omega_pow(e);
                        at[r * n2 + k2] = mul_mod(at[r * n2 + k2], w, qv);
                    }
                }
                // Step 4: left-multiply by the n1×n1 twiddle matrix.
                mm(w1.data(), at, out, n1, n2, n1, q);
                // Rows land in natural order:
                // X[k1*n2 + k2] = out[k1][k2]. At the fused inverse
                // top level the n⁻¹·ψ⁻¹ scaling rides in the
                // writeback — same two mul_mods per element, same
                // order, as the standalone pass.
                if (top == TopTwist::psi_inv) {
                    const u64 ninv = tables_.n_inv();
                    for (size_t k = 0; k < len; ++k) {
                        const u64 v = mul_mod(out[k], ninv, qv);
                        x[k] = mul_mod(v, tables_.psi_inv_pow(k), qv);
                    }
                } else {
                    std::copy(out, out + len, x);
                }
            }
        },
        1);
}

namespace {

/// Fusion accounting: one tick per standalone twist pass executed
/// ("pass.*") or folded into a neighbour ("fuse.*") — the counters
/// tests/fusion_test.cpp uses to prove fused runs issue fewer
/// element-wise kernels.
void
twist_count(const char *name)
{
    if (auto *r = obs::current())
        r->add(name);
}

} // namespace

void
MatrixNtt::forward(u64 *a, const ModMatMulFn &mm, bool fuse) const
{
    obs::Span span("mntt_fwd", obs::cat::ntt);
    const size_t n = tables_.n();
    const u64 qv = tables_.modulus().value();
    if (fuse && n > radix_) {
        twist_count("fuse.ntt_twist");
        cyclic_batch(a, 1, n, false, mm, TopTwist::psi_fwd);
        return;
    }
    {
        obs::Span twist("ntt_twist", obs::cat::stage);
        twist_count("pass.ntt_twist");
        parallel_for(
            0, n,
            [&](size_t b, size_t e) {
                for (size_t i = b; i < e; ++i)
                    a[i] = mul_mod(a[i], tables_.psi_pow(i), qv);
            },
            4096);
    }
    cyclic_batch(a, 1, n, false, mm);
}

void
MatrixNtt::inverse(u64 *a, const ModMatMulFn &mm, bool fuse) const
{
    obs::Span span("mntt_inv", obs::cat::ntt);
    const size_t n = tables_.n();
    const Modulus &q = tables_.modulus();
    const u64 qv = q.value();
    if (fuse && n > radix_) {
        twist_count("fuse.ntt_twist");
        cyclic_batch(a, 1, n, true, mm, TopTwist::psi_inv);
        return;
    }
    cyclic_batch(a, 1, n, true, mm);
    obs::Span twist("ntt_twist", obs::cat::stage);
    twist_count("pass.ntt_twist");
    parallel_for(
        0, n,
        [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i) {
                u64 x = mul_mod(a[i], tables_.n_inv(), qv);
                a[i] = mul_mod(x, tables_.psi_inv_pow(i), qv);
            }
        },
        4096);
}

void
MatrixNtt::accumulate(Complexity &c, size_t rows, size_t len, size_t radix)
{
    if (len <= radix) {
        c.matmul_macs += rows * len * len;
        c.matmul_stages += 1;
        return;
    }
    const size_t n1 = radix;
    const size_t n2 = len / n1;
    // Gather + writeback.
    c.reorder_elems += rows * 2 * len;
    // Recursive row transforms (batched across rows of all calls).
    accumulate(c, rows * n1, n2, radix);
    // Twists.
    c.twist_muls += rows * (n1 - 1) * n2;
    // Left matmul.
    c.matmul_macs += rows * n1 * n2 * n1;
    c.matmul_stages += 1;
}

MatrixNtt::Complexity
MatrixNtt::complexity() const
{
    return complexity_for(tables_.n(), radix_);
}

MatrixNtt::Complexity
MatrixNtt::complexity_for(size_t n, size_t radix)
{
    Complexity c;
    accumulate(c, 1, n, radix);
    // ψ twist at entry.
    c.twist_muls += n;
    return c;
}

namespace {

u64
matmul_calls_rec(u64 rows, size_t len, size_t radix)
{
    if (len <= radix)
        return 1;
    return rows * (matmul_calls_rec(radix, len / radix, radix) + 1);
}

} // namespace

u64
MatrixNtt::matmul_calls_for(size_t n, size_t radix)
{
    return matmul_calls_rec(1, n, radix);
}

} // namespace neo
