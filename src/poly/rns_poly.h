/**
 * @file
 * RnsPoly — an element of R_Q = Z_Q[X]/(X^n + 1) in double-CRT form:
 * one "limb" (residue polynomial) per prime of the RNS basis, each
 * limb either in coefficient or in NTT (evaluation) representation.
 *
 * Storage is limb-major: limb i occupies [i*n, (i+1)*n). This is the
 * "original" layout of the paper's Fig 6; the tensor module provides
 * the reorders to/from the matmul-friendly layouts.
 */
#pragma once

#include <vector>

#include "poly/ntt.h"
#include "rns/modulus.h"

namespace neo {

/** Representation of a residue polynomial vector. */
enum class PolyForm { coeff, eval };

/** Polynomial over an RNS modulus chain. */
class RnsPoly
{
  public:
    RnsPoly() = default;

    /// Zero polynomial of degree @p n over @p mods.
    RnsPoly(size_t n, std::vector<Modulus> mods,
            PolyForm form = PolyForm::coeff);

    size_t n() const { return n_; }
    size_t limbs() const { return mods_.size(); }
    PolyForm form() const { return form_; }
    void set_form(PolyForm f) { form_ = f; }

    const std::vector<Modulus> &mods() const { return mods_; }
    const Modulus &modulus(size_t i) const { return mods_[i]; }

    /// Mutable limb i (n coefficients).
    u64 *limb(size_t i) { return data_.data() + i * n_; }
    const u64 *limb(size_t i) const { return data_.data() + i * n_; }

    u64 *data() { return data_.data(); }
    const u64 *data() const { return data_.data(); }

    /// Element-wise addition (forms and moduli must match).
    void add_inplace(const RnsPoly &o);
    /// Element-wise subtraction.
    void sub_inplace(const RnsPoly &o);
    /// Negate all residues.
    void negate_inplace();
    /// Point-wise (Hadamard) multiplication; both must be in eval form.
    void mul_inplace(const RnsPoly &o);
    /// Multiply every limb by a per-limb scalar (scalars[i] < q_i).
    void scalar_mul_inplace(const std::vector<u64> &scalars);
    /// Fused a += b * c (eval form).
    void add_product(const RnsPoly &b, const RnsPoly &c);

    /// Keep only the first @p count limbs.
    void drop_limbs_to(size_t count);

    bool same_shape(const RnsPoly &o) const;

  private:
    size_t n_ = 0;
    std::vector<Modulus> mods_;
    std::vector<u64> data_;
    PolyForm form_ = PolyForm::coeff;
};

/** NTT table set for a modulus chain, shared by all polys of a context. */
class NttTableSet
{
  public:
    NttTableSet() = default;

    /// Build tables for each modulus in @p mods at degree @p n.
    NttTableSet(size_t n, const std::vector<Modulus> &mods);

    /// Tables for the chain's i-th modulus.
    const NttTables &operator[](size_t i) const { return tables_[i]; }

    /// Find tables by modulus value (must exist).
    const NttTables &for_modulus(const Modulus &q) const;

    /// Transform every limb of @p p to eval form (no-op if already).
    void to_eval(RnsPoly &p) const;

    /// Transform every limb of @p p to coefficient form.
    void to_coeff(RnsPoly &p) const;

  private:
    std::vector<NttTables> tables_;
};

/**
 * AUTO kernel: the Galois automorphism X -> X^g (g odd) of Fig 4.
 *
 * Coefficient domain: out[ig mod 2n] = ±in[i] with sign flip on wrap
 * past n (X^n = -1). Evaluation domain: a permutation of the slots.
 */
void automorphism_coeff(const u64 *in, u64 *out, size_t n, u64 g,
                        const Modulus &q);
void automorphism_eval(const u64 *in, u64 *out, size_t n, u64 g,
                       const Modulus &q);

/// Apply the automorphism to every limb of @p p (any form).
RnsPoly automorphism(const RnsPoly &p, u64 g);

} // namespace neo
