#include "poly/ntt.h"

#include "common/check.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "obs/obs.h"
#include "rns/primes.h"

namespace neo {

NttTables::NttTables(size_t n, const Modulus &q) : n_(n), q_(q)
{
    NEO_CHECK(is_pow2(n), "ring degree must be a power of two");
    NEO_CHECK((q.value() - 1) % (2 * n) == 0, "q != 1 mod 2n");
    psi_ = find_primitive_root(q.value(), 2 * n);
    const u64 qv = q.value();
    const u64 psi_inv = q.inv(psi_);
    const u64 w = q.mul(psi_, psi_);
    const u64 w_inv = q.inv(w);
    n_inv_ = q.inv(q.reduce(n));

    auto fill = [&](std::vector<u64> &pow, std::vector<u64> &shoup, u64 base) {
        pow.resize(n);
        shoup.resize(n);
        u64 cur = 1;
        for (size_t i = 0; i < n; ++i) {
            pow[i] = cur;
            shoup[i] = shoup_precompute(cur, qv);
            cur = q_.mul(cur, base);
        }
    };
    fill(psi_pow_, psi_pow_shoup_, psi_);
    fill(psi_inv_pow_, psi_inv_pow_shoup_, psi_inv);
    fill(w_pow_, w_pow_shoup_, w);
    fill(w_inv_pow_, w_inv_pow_shoup_, w_inv);

    const int logn = log2_exact(n);
    bitrev_.resize(n);
    for (size_t i = 0; i < n; ++i)
        bitrev_[i] = static_cast<u32>(reverse_bits(i, logn));
}

namespace {

/// Minimum transform size before a stage is worth fanning out.
constexpr size_t kParallelNttThreshold = 1 << 12;

/// Iterative Cooley-Tukey over precomputed ω^i tables. Large
/// transforms run each butterfly stage through the thread pool (the
/// stage's butterflies touch disjoint index pairs, so any execution
/// order produces the sequential result bit-for-bit; parallel_for is
/// the inter-stage barrier).
void
cyclic_transform(u64 *a, size_t n, const Modulus &q,
                 const std::vector<u64> &w_pow,
                 const std::vector<u64> &w_shoup,
                 const std::vector<u32> &bitrev)
{
    const u64 qv = q.value();
    const bool fan_out =
        n >= kParallelNttThreshold && ThreadPool::parallel_active();
    // Bit-reversal: iteration i swaps (i, bitrev[i]) only when
    // i < bitrev[i], so each pair is touched by exactly one iteration.
    if (fan_out) {
        parallel_for(
            0, n,
            [&](size_t b, size_t e) {
                for (size_t i = b; i < e; ++i) {
                    u32 j = bitrev[i];
                    if (i < j)
                        std::swap(a[i], a[j]);
                }
            },
            4096);
    } else {
        for (size_t i = 0; i < n; ++i) {
            u32 j = bitrev[i];
            if (i < j)
                std::swap(a[i], a[j]);
        }
    }
    for (size_t len = 2; len <= n; len <<= 1) {
        const size_t half = len >> 1;
        const size_t step = n / len;
        if (fan_out) {
            // Flatten the (block, j) butterfly grid of this stage.
            parallel_for(
                0, n >> 1,
                [&](size_t b, size_t e) {
                    for (size_t idx = b; idx < e; ++idx) {
                        const size_t blk = idx / half;
                        const size_t j = idx - blk * half;
                        const size_t start = blk * len;
                        const size_t tw = step * j;
                        u64 u = a[start + j];
                        u64 v = mul_shoup(a[start + j + half], w_pow[tw],
                                          w_shoup[tw], qv);
                        a[start + j] = add_mod(u, v, qv);
                        a[start + j + half] = sub_mod(u, v, qv);
                    }
                },
                2048);
            continue;
        }
        for (size_t start = 0; start < n; start += len) {
            for (size_t j = 0; j < half; ++j) {
                const size_t tw = step * j;
                u64 u = a[start + j];
                u64 v = mul_shoup(a[start + j + half], w_pow[tw],
                                  w_shoup[tw], qv);
                a[start + j] = add_mod(u, v, qv);
                a[start + j + half] = sub_mod(u, v, qv);
            }
        }
    }
}

} // namespace

void
NttTables::forward_cyclic(u64 *a) const
{
    cyclic_transform(a, n_, q_, w_pow_, w_pow_shoup_, bitrev_);
}

void
NttTables::inverse_cyclic_unscaled(u64 *a) const
{
    cyclic_transform(a, n_, q_, w_inv_pow_, w_inv_pow_shoup_, bitrev_);
}

void
NttTables::forward(u64 *a) const
{
    obs::Span span("ntt_r2_fwd", obs::cat::ntt);
    const u64 qv = q_.value();
    parallel_for(
        0, n_,
        [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i)
                a[i] = mul_shoup(a[i], psi_pow_[i], psi_pow_shoup_[i], qv);
        },
        4096);
    forward_cyclic(a);
}

void
NttTables::inverse(u64 *a) const
{
    obs::Span span("ntt_r2_inv", obs::cat::ntt);
    const u64 qv = q_.value();
    inverse_cyclic_unscaled(a);
    const u64 ninv_shoup = shoup_precompute(n_inv_, qv);
    parallel_for(
        0, n_,
        [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i) {
                u64 x = mul_shoup(a[i], n_inv_, ninv_shoup, qv);
                a[i] = mul_shoup(x, psi_inv_pow_[i], psi_inv_pow_shoup_[i],
                                 qv);
            }
        },
        4096);
}

std::vector<u64>
negacyclic_convolve(const std::vector<u64> &a, const std::vector<u64> &b,
                    const Modulus &q)
{
    const size_t n = a.size();
    NEO_CHECK(b.size() == n, "size mismatch");
    std::vector<u64> c(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (a[i] == 0)
            continue;
        for (size_t j = 0; j < n; ++j) {
            u64 p = q.mul(a[i], b[j]);
            size_t k = i + j;
            if (k < n) {
                c[k] = q.add(c[k], p);
            } else {
                c[k - n] = q.sub(c[k - n], p);
            }
        }
    }
    return c;
}

} // namespace neo
