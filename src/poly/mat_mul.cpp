#include "poly/mat_mul.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "obs/obs.h"

namespace neo {

void
scalar_mod_matmul(const u64 *a, const u64 *b, u64 *c, size_t m, size_t n,
                  size_t k, const Modulus &q)
{
    obs::Span span("scalar_gemm", obs::cat::gemm);
    if (auto *r = obs::current())
        r->add_gemm(m, n, k);
    // Row tiles of C are independent; the k-accumulation (and its
    // fold points) stays inside one tile, so results are identical
    // for any thread count. Columns are register-tiled in groups of
    // kNR with the same per-element t order and fold cadence as the
    // naive loop, so the tiling is bit-transparent too.
    constexpr size_t kNR = 4;
    parallel_for(
        0, m,
        [&](size_t rb, size_t re) {
            for (size_t i = rb; i < re; ++i) {
                size_t j = 0;
                for (; j + kNR <= n; j += kNR) {
                    u128 acc[kNR] = {};
                    // Each product is < 2^126 (q < 2^63); folding
                    // every other iteration keeps the accumulator
                    // below 2^128.
                    for (size_t t = 0; t < k; ++t) {
                        const u128 av = a[i * k + t];
                        for (size_t jj = 0; jj < kNR; ++jj)
                            acc[jj] += av * b[t * n + j + jj];
                        if (t & 1)
                            for (size_t jj = 0; jj < kNR; ++jj)
                                acc[jj] = q.reduce128(acc[jj]);
                    }
                    for (size_t jj = 0; jj < kNR; ++jj)
                        c[i * n + j + jj] = q.reduce128(acc[jj]);
                }
                for (; j < n; ++j) {
                    u128 acc = 0;
                    for (size_t t = 0; t < k; ++t) {
                        acc += static_cast<u128>(a[i * k + t]) *
                               b[t * n + j];
                        if (t & 1)
                            acc = q.reduce128(acc);
                    }
                    c[i * n + j] = q.reduce128(acc);
                }
            }
        },
        row_chunk_grain(m, n * k));
}

const ModMatMulFn &
default_mat_mul()
{
    static const ModMatMulFn fn = scalar_mod_matmul;
    return fn;
}

} // namespace neo
