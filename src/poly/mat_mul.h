/**
 * @file
 * Modular matrix-multiplication interface.
 *
 * Every kernel the paper maps onto the Tensor Core (NTT stages, BConv,
 * IP) funnels its matrix products through this signature, so the
 * backend can be swapped between:
 *   - the scalar reference (CUDA-core analogue),
 *   - the FP64 bit-sliced emulation of the TCU datapath (tensor/),
 *   - the INT8 bit-sliced emulation.
 * All backends must be bit-exact; tests enforce it.
 */
#pragma once

#include <cstddef>
#include <functional>

#include "rns/modulus.h"

namespace neo {

/**
 * C = A · B (mod q); A is M×K, B is K×N, C is M×N, all row-major,
 * entries reduced mod q.
 */
using ModMatMulFn =
    std::function<void(const u64 *a, const u64 *b, u64 *c, size_t m,
                       size_t n, size_t k, const Modulus &q)>;

/// Reference triple-loop implementation with 128-bit accumulation.
void scalar_mod_matmul(const u64 *a, const u64 *b, u64 *c, size_t m,
                       size_t n, size_t k, const Modulus &q);

/// The default ModMatMulFn wrapping scalar_mod_matmul.
const ModMatMulFn &default_mat_mul();

} // namespace neo
