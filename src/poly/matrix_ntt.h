/**
 * @file
 * Matrix-form NTT: the four-step and radix-16 ("ten-step")
 * decompositions of §4.4 / Fig 9.
 *
 * The length-n cyclic DFT is factored as n = n1 · n2:
 *   1. view the input as an n1×n2 matrix A[r][c] = x[r + n1·c]
 *      (a transpose-gather),
 *   2. transform each row (length n2) — recursively, until the length
 *      reaches the radix, where it becomes a (rows × n2) · (n2 × n2)
 *      matrix multiplication with the twiddle matrix,
 *   3. multiply element (r, k2) by the twisting factor ω^{r·k2}
 *      ("Mul & Trans" in Fig 9),
 *   4. multiply by the n1×n1 twiddle matrix on the left.
 * The result lands in natural order.
 *
 * radix = n1 = √n  reproduces the classic four-step NTT; radix = 16
 * reproduces SHARP/Neo's radix-16 NTT, whose matrix products are all
 * 16×16 — the shape that maps onto TCU fragments (Fig 10). All matrix
 * products go through a ModMatMulFn so the TCU emulation can be
 * substituted.
 */
#pragma once

#include <vector>

#include "common/static_operand.h"
#include "poly/mat_mul.h"
#include "poly/ntt.h"

namespace neo {

/** Four-step / radix-r matrix NTT over one modulus. */
class MatrixNtt
{
  public:
    /**
     * @param tables  base NTT tables (provides ψ/ω powers).
     * @param radix   decomposition base; the transform bottoms out in
     *                radix×radix twiddle matmuls. Use radix == √n for
     *                the classic four-step, 16 for radix-16.
     */
    MatrixNtt(const NttTables &tables, size_t radix);

    size_t n() const { return tables_.n(); }
    size_t radix() const { return radix_; }

    /**
     * Forward negacyclic NTT; same convention as NttTables::forward.
     * With @p fuse set, the ψ pre-twist pass is folded into the
     * top-level transpose-gather (one streaming pass less — the GPU
     * mapping's "twiddle-scale into NTT prologue" fusion). The fused
     * and unfused paths apply the same mul_mod to every element in
     * the same per-element order, so outputs are bit-identical.
     */
    void forward(u64 *a, const ModMatMulFn &mm = default_mat_mul(),
                 bool fuse = false) const;

    /// Inverse negacyclic NTT. With @p fuse set, the n⁻¹·ψ⁻¹ scaling
    /// pass is folded into the top-level writeback (bit-identical).
    void inverse(u64 *a, const ModMatMulFn &mm = default_mat_mul(),
                 bool fuse = false) const;

    /** Work counts for the performance model. */
    struct Complexity
    {
        u64 matmul_macs = 0;      ///< multiply-accumulates inside matmuls
        u64 twist_muls = 0;       ///< scalar twiddle multiplications
        u64 reorder_elems = 0;    ///< elements moved by gather/transpose
        u64 matmul_stages = 0;    ///< number of matmul stages
    };

    /// Analytical complexity of one transform of length n.
    Complexity complexity() const;

    /// Same computation without building tables (for cost models).
    static Complexity complexity_for(size_t n, size_t radix);

    /**
     * Number of ModMatMulFn invocations one transform actually makes.
     * Differs from complexity().matmul_stages, which models the
     * batched (per-stage) execution a GPU would launch: the CPU
     * recursion issues one matmul per row at each level, i.e.
     * calls(rows, len) = 1 if len ≤ radix, else
     * rows · (calls(radix, len/radix) + 1). This is the number of
     * `gemm` spans a traced run records per transform.
     */
    static u64 matmul_calls_for(size_t n, size_t radix);

  private:
    /// Element-wise pass folded into the top-level call (never into
    /// the recursion) when the caller asked for fusion.
    enum class TopTwist {
        none,     ///< plain cyclic transform
        psi_fwd,  ///< ψ pre-twist fused into the gather
        psi_inv,  ///< n⁻¹·ψ⁻¹ scaling fused into the writeback
    };

    /// Transform @p rows contiguous vectors of length @p len in place.
    void cyclic_batch(u64 *a, size_t rows, size_t len, bool inverse,
                      const ModMatMulFn &mm,
                      TopTwist top = TopTwist::none) const;

    /// Twiddle matrix W[c][k] = ω_len^{ck} (or inverse) for len ≤ radix.
    const std::vector<u64> &twiddle_matrix(size_t len, bool inverse) const;

    static void accumulate(Complexity &c, size_t rows, size_t len,
                           size_t radix);

    const NttTables &tables_;
    size_t radix_;
    // Precomputed twiddle matrices for all lengths 2..radix (powers of
    // two), forward and inverse.
    mutable std::vector<std::vector<u64>> w_fwd_, w_inv_;
    // The twiddle matrices are static GEMM operands: pinning them lets
    // the sliced engines cache their plane decompositions. Makes the
    // class move-only (moving a vector keeps its heap buffer, so pins
    // survive moves).
    std::vector<StaticPin> pins_;
};

} // namespace neo
