#include "apps/schedules.h"

#include <algorithm>

#include "common/check.h"

namespace neo::apps {

namespace {

/// Clamp a level into the valid [1, L] range of the parameter set.
size_t
lvl(const ckks::CkksParams &p, i64 level)
{
    return static_cast<size_t>(
        std::clamp<i64>(level, 1, static_cast<i64>(p.max_level)));
}

void
push(Schedule &s, OpKind op, size_t level, double count)
{
    if (count > 0)
        s.ops.push_back({op, level, count});
}

} // namespace

double
Schedule::total(OpKind k) const
{
    double c = 0;
    for (const auto &o : ops) {
        if (o.op == k)
            c += o.count;
    }
    return c;
}

Schedule
pack_bootstrap(const ckks::CkksParams &p)
{
    Schedule s;
    s.name = "PackBootstrap";
    const i64 top = static_cast<i64>(p.max_level);

    // CoeffToSlot: 3 BSGS stages of the factored DFT. Each stage has
    // ~63 plaintext diagonals: 2·√63 ≈ 16 rotations (8 giant + 8
    // baby), 63 PMULT/HADD, one rescale. One conjugation splits
    // real/imag parts at the end.
    for (int stage = 0; stage < 3; ++stage) {
        const size_t at = lvl(p, top - stage);
        push(s, OpKind::hrotate, at, 16);
        push(s, OpKind::pmult, at, 63);
        push(s, OpKind::hadd, at, 63);
        push(s, OpKind::rescale, at, 1);
    }
    push(s, OpKind::hrotate, lvl(p, top - 3), 1); // conjugation

    // EvalMod: degree-63 Chebyshev of the scaled sine plus 2
    // double-angle steps — 12 non-scalar multiplications and their
    // rescales (Double Rescale keeps precision at WordSize 36, §2.1).
    const bool use_ds = p.word_size < 40;
    for (int m = 0; m < 12; ++m) {
        const size_t at = lvl(p, top - 4 - m);
        push(s, OpKind::hmult, at, 1);
        push(s, use_ds && m % 2 == 0 ? OpKind::double_rescale
                                     : OpKind::rescale,
             at, 1);
    }
    push(s, OpKind::pmult, lvl(p, top - 8), 26);
    push(s, OpKind::padd, lvl(p, top - 8), 26);
    push(s, OpKind::hadd, lvl(p, top - 8), 12);

    // SlotToCoeff: 3 more BSGS stages at the lower levels.
    for (int stage = 0; stage < 3; ++stage) {
        const size_t at = lvl(p, top - 17 - stage);
        push(s, OpKind::hrotate, at, 16);
        push(s, OpKind::pmult, at, 63);
        push(s, OpKind::hadd, at, 63);
        push(s, OpKind::rescale, at, 1);
    }
    return s;
}

Schedule
helr_iteration(const ckks::CkksParams &p)
{
    Schedule s;
    s.name = "HELR";
    const i64 top = static_cast<i64>(p.max_level);

    // X·w: rotate-and-sum over the 196-feature dimension packed into
    // slot groups (log2(256) = 8 rotations), one PMULT per block.
    push(s, OpKind::hrotate, lvl(p, top), 8);
    push(s, OpKind::pmult, lvl(p, top), 4);
    push(s, OpKind::hmult, lvl(p, top), 2);
    push(s, OpKind::rescale, lvl(p, top), 2);

    // Degree-3 sigmoid approximation.
    push(s, OpKind::hmult, lvl(p, top - 1), 2);
    push(s, OpKind::rescale, lvl(p, top - 1), 2);
    push(s, OpKind::pmult, lvl(p, top - 1), 3);
    push(s, OpKind::padd, lvl(p, top - 1), 3);

    // Gradient: X^T·(σ(z) - y) by rotate-and-sum, then the update.
    push(s, OpKind::hrotate, lvl(p, top - 2), 8);
    push(s, OpKind::hmult, lvl(p, top - 2), 1);
    push(s, OpKind::rescale, lvl(p, top - 2), 1);
    push(s, OpKind::pmult, lvl(p, top - 3), 2);
    push(s, OpKind::hadd, lvl(p, top - 3), 4);

    // One refresh bootstrap per iteration keeps the budget positive
    // across the 32 training iterations.
    s.bootstraps = 1;
    return s;
}

Schedule
resnet(const ckks::CkksParams &p, int layers)
{
    NEO_CHECK(layers == 20 || layers == 32 || layers == 56,
              "ResNet variant must be 20/32/56");
    Schedule s;
    s.name = "ResNet-" + std::to_string(layers);
    const i64 top = static_cast<i64>(p.max_level);

    // Per convolutional layer (multiplexed packing, Lee et al.):
    // 3×3 kernel -> 9 shifted copies, channel rotations and packing
    // moves; then a degree-27 polynomial ReLU (8 non-scalar mults via
    // BSGS), and one bootstrap to refresh the budget. The three
    // ResNet stages (16/32/64 channels, halving spatial size) shift
    // work from spatial shifts to channel packing as depth grows.
    const double relu_mult = 8;
    for (int layer = 0; layer < layers; ++layer) {
        const int stage = layer / std::max(1, layers / 3); // 0,1,2
        const double conv_rot = 28.0 + 6.0 * std::min(stage, 2);
        const double conv_pmult = 30.0 + 6.0 * std::min(stage, 2);
        const size_t at = lvl(p, top - (layer % 6));
        push(s, OpKind::hrotate, at, conv_rot);
        push(s, OpKind::pmult, at, conv_pmult);
        push(s, OpKind::hadd, at, conv_pmult);
        push(s, OpKind::rescale, at, 2);
        push(s, OpKind::hmult, lvl(p, at - 1), relu_mult);
        push(s, OpKind::rescale, lvl(p, at - 1), relu_mult);
    }
    // Final average-pool + fully connected layer.
    push(s, OpKind::hrotate, lvl(p, 4), 16);
    push(s, OpKind::pmult, lvl(p, 4), 10);
    push(s, OpKind::hadd, lvl(p, 4), 16);

    s.bootstraps = layers; // one refresh per layer block
    return s;
}

double
run_schedule(const Schedule &s, const model::KernelModel &m)
{
    double t = 0;
    for (const auto &o : s.ops) {
        double per = 0;
        switch (o.op) {
          case OpKind::hmult:
            per = m.hmult_time(o.level);
            break;
          case OpKind::hrotate:
            per = m.hrotate_time(o.level);
            break;
          case OpKind::pmult:
            per = m.pmult_time(o.level);
            break;
          case OpKind::hadd:
            per = m.hadd_time(o.level);
            break;
          case OpKind::padd:
            per = m.padd_time(o.level);
            break;
          case OpKind::rescale:
            per = m.rescale_time(o.level);
            break;
          case OpKind::double_rescale:
            per = m.double_rescale_time(o.level);
            break;
        }
        t += per * o.count;
    }
    if (s.bootstraps > 0) {
        const Schedule bs = pack_bootstrap(m.params());
        t += s.bootstraps * run_schedule(bs, m);
    }
    return t;
}

} // namespace neo::apps
