/**
 * @file
 * FHE workload schedules for the paper's three applications (§5).
 *
 * A schedule is the sequence of primitive CKKS operations (with their
 * levels and multiplicities) that one run of the application
 * executes. The FHE cost of an application depends only on this
 * schedule — not on the underlying data — so synthetic inputs with
 * the paper's dimensions reproduce the performance faithfully
 * (DESIGN.md, substitution table).
 *
 * Schedules are *structural*: they are generated from the published
 * algorithm shapes —
 *  - PackBootstrap: ModRaise → CoeffToSlot (3 BSGS stages) → EvalMod
 *    (degree-63 Chebyshev sine with double-angle) → SlotToCoeff
 *    (3 stages), as in Lattigo/ARK-style bootstrapping;
 *  - HELR: one logistic-regression iteration on 1024 packed 14×14
 *    MNIST images (196 features): X·w inner products by rotate-and-
 *    sum, degree-3 sigmoid, gradient and update, plus one refresh
 *    bootstrap;
 *  - ResNet-20/32/56: per-layer multiplexed-packing convolution
 *    (Lee et al.), degree-27 polynomial ReLU, one bootstrap per
 *    layer block — cost scales linearly in layer count, matching the
 *    20/32/56 ratios of Table 5.
 */
#pragma once

#include <string>
#include <vector>

#include "ckks/params.h"
#include "neo/kernel_model.h"

namespace neo::apps {

/** Primitive operation kinds a schedule is made of. */
enum class OpKind
{
    hmult,
    hrotate,
    pmult,
    hadd,
    padd,
    rescale,
    double_rescale,
};

/** One schedule entry: @p count ops of kind @p op at level @p level. */
struct OpCount
{
    OpKind op;
    size_t level;
    double count;
};

/** A full application trace. */
struct Schedule
{
    std::string name;
    std::vector<OpCount> ops;
    double bootstraps = 0; ///< embedded PackBootstrap invocations

    /// Total count of one op kind (for reporting).
    double total(OpKind k) const;
};

/// Bootstrapping of one batch of ciphertexts.
Schedule pack_bootstrap(const ckks::CkksParams &params);

/// One HELR training iteration (1024 images, 196 features).
Schedule helr_iteration(const ckks::CkksParams &params);

/// ResNet-L CIFAR-10 inference, L ∈ {20, 32, 56}.
Schedule resnet(const ckks::CkksParams &params, int layers);

/// Wall time of @p s under @p m (embedded bootstraps included).
double run_schedule(const Schedule &s, const model::KernelModel &m);

} // namespace neo::apps
