#include "gpusim/memory_model.h"

#include "obs/obs.h"

namespace neo::gpusim {

double
MemoryModel::ciphertext_bytes(size_t level) const
{
    return 2.0 * (level + 1) * limb_bytes();
}

double
MemoryModel::hybrid_key_bytes() const
{
    const size_t ext = params_.max_level + 1 + params_.special_primes();
    return 2.0 * params_.beta(params_.max_level) * ext * limb_bytes();
}

double
MemoryModel::klss_key_bytes() const
{
    if (!params_.klss.enabled())
        return 0.0;
    return 2.0 * params_.beta(params_.max_level) *
           params_.beta_tilde(params_.max_level) *
           params_.klss_alpha_prime() * limb_bytes();
}

double
MemoryModel::keyswitch_working_set(size_t level) const
{
    const double batch = static_cast<double>(params_.batch);
    const size_t beta = params_.beta(level);
    const size_t ext = level + 1 + params_.special_primes();
    double ct_side;
    if (params_.klss.enabled()) {
        const size_t ap = params_.klss_alpha_prime();
        const size_t bt = params_.beta_tilde(level);
        // digits over T + accumulators + raised output over Q·P.
        ct_side = (beta * ap + 2.0 * bt * ap + 2.0 * ext) * limb_bytes();
    } else {
        // β raised digits over Q·P + two accumulators.
        ct_side = (beta + 2.0) * ext * limb_bytes();
    }
    const double keys = params_.klss.enabled() ? klss_key_bytes()
                                               : hybrid_key_bytes();
    return batch * (ciphertext_bytes(level) + ct_side) + keys;
}

size_t
MemoryModel::max_batch(const DeviceSpec &dev,
                       double reserve_fraction) const
{
    const double budget = dev.vram_bytes * (1.0 - reserve_fraction);
    ckks::CkksParams p = params_;
    size_t best = 0;
    for (size_t bs = 1; bs <= 4096; bs <<= 1) {
        p.batch = bs;
        MemoryModel m(p);
        if (m.keyswitch_working_set(p.max_level) <= budget)
            best = bs;
    }
    return best;
}

void
MemoryModel::record_gauges(size_t level) const
{
    obs::Registry *r = obs::current();
    if (r == nullptr)
        return;
    r->set_gauge("hbm.modeled.working_set_bytes",
                 keyswitch_working_set(level));
    r->set_gauge("hbm.modeled.key_bytes", params_.klss.enabled()
                                              ? klss_key_bytes()
                                              : hybrid_key_bytes());
    r->set_gauge("hbm.modeled.ciphertext_bytes", ciphertext_bytes(level));
}

} // namespace neo::gpusim
