#include "gpusim/event_sim.h"

#include <algorithm>
#include <array>
#include <limits>

#include "common/check.h"

namespace neo::gpusim {

namespace {

/// Per-resource seconds-of-service a kernel demands at full rate.
/// Resources: CUDA cores, tensor cores, DRAM, interconnect link.
std::array<double, 4>
demands(const SimKernel &k, const DeviceSpec &d)
{
    return {k.cost.cuda_time(d), k.cost.tcu_time(d),
            k.cost.mem_time(d), k.link_s};
}

} // namespace

EventSimulator::Result
EventSimulator::run(const std::vector<SimKernel> &kernels) const
{
    const size_t n = kernels.size();
    Result res;
    res.finish.assign(n, 0.0);
    if (n == 0)
        return res;

    // Remaining service per resource, plus fixed launch latency served
    // before the kernel's work begins.
    std::vector<std::array<double, 4>> remaining(n);
    std::vector<double> launch_left(n);
    for (size_t i = 0; i < n; ++i) {
        remaining[i] = demands(kernels[i], dev_);
        launch_left[i] = kernels[i].cost.launches * dev_.kernel_launch_s;
    }

    std::vector<bool> done(n, false);
    double now = 0.0;

    auto ready = [&](size_t i) {
        if (done[i])
            return false;
        // Stream order: all earlier kernels of the same stream done.
        for (size_t j = 0; j < i; ++j) {
            if (kernels[j].stream == kernels[i].stream && !done[j])
                return false;
        }
        for (size_t dep : kernels[i].deps) {
            NEO_CHECK(dep < n, "dependency index out of range");
            if (!done[dep])
                return false;
        }
        return true;
    };

    size_t completed = 0;
    size_t guard = 0;
    while (completed < n) {
        NEO_CHECK(++guard <= 4 * n + 16, "simulation failed to progress");
        // Active set.
        std::vector<size_t> active;
        for (size_t i = 0; i < n; ++i) {
            if (ready(i))
                active.push_back(i);
        }
        NEO_ASSERT(!active.empty(), "deadlock in kernel dependencies");

        // Resource shares: each resource splits evenly among active
        // kernels that still demand it.
        std::array<int, 4> users{0, 0, 0, 0};
        for (size_t i : active) {
            for (int r = 0; r < 4; ++r) {
                if (remaining[i][r] > 0)
                    ++users[r];
            }
        }

        // Completion horizon for each active kernel under the current
        // shares: launch latency first, then the slowest resource.
        double dt = std::numeric_limits<double>::infinity();
        for (size_t i : active) {
            double t = launch_left[i];
            for (int r = 0; r < 4; ++r) {
                if (remaining[i][r] > 0)
                    t = std::max(t, launch_left[i] +
                                        remaining[i][r] * users[r]);
            }
            dt = std::min(dt, std::max(t, 1e-15));
        }

        // Advance by dt, serving every active kernel.
        for (size_t i : active) {
            double served = dt;
            double l = std::min(launch_left[i], served);
            launch_left[i] -= l;
            served -= l;
            if (served <= 0)
                continue;
            for (int r = 0; r < 4; ++r) {
                if (remaining[i][r] > 0) {
                    remaining[i][r] -= served / users[r];
                    if (remaining[i][r] < 1e-15)
                        remaining[i][r] = 0;
                }
            }
        }
        now += dt;

        // Retire finished kernels.
        for (size_t i : active) {
            bool fin = launch_left[i] <= 0;
            for (int r = 0; r < 4 && fin; ++r)
                fin = remaining[i][r] <= 0;
            if (fin) {
                done[i] = true;
                res.finish[i] = now;
                ++completed;
            }
        }
    }
    res.makespan = now;
    return res;
}

EventSimulator::Result
EventSimulator::run_queues(
    const std::vector<std::vector<KernelCost>> &queues) const
{
    std::vector<SimKernel> flat;
    for (size_t q = 0; q < queues.size(); ++q) {
        for (const auto &k : queues[q])
            flat.push_back({k, static_cast<int>(q), {}, 0.0});
    }
    return run(flat);
}

} // namespace neo::gpusim
