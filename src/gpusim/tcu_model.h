/**
 * @file
 * Model of Tensor Core fragment geometry and wide-word GEMM emulation
 * cost (§3.4, Figs 3, 11, 12).
 *
 * TCUs execute GEMMs in fixed fragment shapes:
 *   FP64 : 8×8×4 (the only shape),
 *   INT8 : 16×16×16, 32×8×16, 8×32×16.
 * A logical M×N×K product is padded up to fragment multiples; the
 * valid proportion M·N·K / padded is what Fig 12 plots. Wide operands
 * additionally require plane splitting (tensor/bitslice.h); the number
 * of plane-pair products is the "Booth complexity" of Fig 3.
 */
#pragma once

#include <cstddef>

#include "gpusim/device_spec.h"
#include "tensor/bitslice.h"

namespace neo::gpusim {

/** One supported fragment geometry. */
struct FragmentShape
{
    size_t m, n, k;
};

inline constexpr FragmentShape kFp64Fragment{8, 8, 4};
inline constexpr FragmentShape kInt8Fragments[] = {
    {16, 16, 16}, {32, 8, 16}, {8, 32, 16}};

/** Cost/geometry calculator for TCU-mapped integer GEMMs. */
class TcuModel
{
  public:
    explicit TcuModel(const DeviceSpec &spec) : spec_(spec) {}

    /// Padded MAC count of an M×N×K GEMM under fragment @p f.
    static u64 padded_macs(size_t m, size_t n, size_t k,
                           const FragmentShape &f);

    /// Valid proportion under FP64 fragments (Fig 12's y-axis).
    static double valid_proportion_fp64(size_t m, size_t n, size_t k);

    /// Best valid proportion over the INT8 fragment shapes.
    static double valid_proportion_int8(size_t m, size_t n, size_t k);

    /**
     * Time of one integer GEMM (M×N×K, wa-bit × wb-bit operands)
     * executed on the FP64 pipes, including the plane-split
     * multiplier. Excludes the CUDA-core split/merge pre/post passes,
     * which the kernel models account as their own steps.
     */
    double fp64_gemm_time(size_t m, size_t n, size_t k, int wa,
                          int wb) const;

    /// Same through the INT8 pipes.
    double int8_gemm_time(size_t m, size_t n, size_t k, int wa,
                          int wb) const;

    /**
     * Time of the same GEMM on CUDA cores (modular multiply-adds) —
     * the fallback mapping used by IP when the valid proportion is
     * below the 80% threshold (§4.5.3).
     */
    double cuda_gemm_time(size_t m, size_t n, size_t k) const;

    const DeviceSpec &spec() const { return spec_; }

  private:
    DeviceSpec spec_;
};

} // namespace neo::gpusim
