/**
 * @file
 * Roofline cost of one GPU kernel and schedule-level composition.
 *
 * A kernel is summarised by the work it places on each device
 * resource: CUDA-core modular ops, TCU MACs (already padded and
 * split-multiplied), and DRAM traffic. Its execution time is
 *
 *   time = max(mem_time, compute_time) + launches * launch_overhead
 *
 * where compute_time is the sum of CUDA and TCU phase times for an
 * ordinary kernel, or their max when the multi-stream optimization
 * (§4.6) lets another stream's CUDA work fill TCU stalls.
 *
 * This is the same first-order model the paper itself reasons with in
 * §3 (memory-transfer proportions, component throughputs, Booth/
 * padding multipliers), so shapes of the evaluation figures follow
 * from the modelled algorithms rather than from per-figure tuning.
 */
#pragma once

#include <vector>

#include "gpusim/device_spec.h"

namespace neo::gpusim {

/** Work placed on each GPU resource by one kernel (or fused kernel). */
struct KernelCost
{
    double cuda_modmul = 0;  ///< 64-bit modular multiplies on CUDA cores
    double cuda_modadd = 0;  ///< 64-bit modular adds/subs on CUDA cores
    double cuda_int_ops = 0; ///< plain INT32 ops (splits/merges/reorders)
    double tcu_fp64_macs = 0; ///< padded+split FP64 TCU MACs
    double tcu_int8_macs = 0; ///< padded+split INT8 TCU MACs
    double bytes_read = 0;    ///< DRAM bytes read
    double bytes_written = 0; ///< DRAM bytes written
    double launches = 1;      ///< kernel launches (0 for fused-away steps)

    double bytes() const { return bytes_read + bytes_written; }

    /// Accumulate another kernel's work (used by kernel fusion, which
    /// also removes the fused kernel's launch and intermediate
    /// traffic at the call site).
    KernelCost &operator+=(const KernelCost &o);
    friend KernelCost operator+(KernelCost a, const KernelCost &b)
    {
        a += b;
        return a;
    }

    /// Time of the CUDA-core phase alone.
    double cuda_time(const DeviceSpec &d) const;
    /// Time of the TCU phase alone.
    double tcu_time(const DeviceSpec &d) const;
    /// Time of the memory phase alone.
    double mem_time(const DeviceSpec &d) const;

    /**
     * Kernel execution time.
     * @param overlap_components  true when multi-stream execution
     *        overlaps the CUDA and TCU phases (§4.6).
     */
    double time(const DeviceSpec &d, bool overlap_components = false) const;
};

/** Totals for a sequence of kernels forming one FHE operation. */
struct ScheduleResult
{
    double seconds = 0;
    double bytes = 0;
    double launches = 0;
};

/**
 * Execute a kernel sequence under the device model.
 * @param multistream  overlap CUDA/TCU phases within and across
 *        kernels (the §4.6 multi-stream optimization).
 */
ScheduleResult run_schedule(const std::vector<KernelCost> &kernels,
                            const DeviceSpec &d, bool multistream);

} // namespace neo::gpusim
