/**
 * @file
 * Roofline cost of one GPU kernel and schedule-level composition.
 *
 * A kernel is summarised by the work it places on each device
 * resource: CUDA-core modular ops, TCU MACs (already padded and
 * split-multiplied), and DRAM traffic. Its execution time is
 *
 *   time = max(memory_s, compute_s) + launch_s
 *
 * where compute_s is the sum of CUDA and TCU phase times for an
 * ordinary kernel, or their max when the multi-stream optimization
 * (§4.6) lets another stream's CUDA work fill TCU stalls, and
 * launch_s = launches * launch_overhead. The full decomposition —
 * not just the scalar total — is exposed as a CostBreakdown so
 * profilers can attribute every kernel to its bottleneck resource
 * (compute / memory / launch bound, the Fig 13 lens).
 *
 * This is the same first-order model the paper itself reasons with in
 * §3 (memory-transfer proportions, component throughputs, Booth/
 * padding multipliers), so shapes of the evaluation figures follow
 * from the modelled algorithms rather than from per-figure tuning.
 */
#pragma once

#include <vector>

#include "gpusim/device_spec.h"

namespace neo::gpusim {

/** Which roofline term bounds a kernel's execution time. */
enum class Bound { compute, memory, launch };

/// Stable lowercase name ("compute" / "memory" / "launch") for
/// reports and JSON artifacts.
const char *bound_name(Bound b);

/**
 * Full roofline decomposition of one kernel (or one schedule) under a
 * DeviceSpec. All fields are non-negative; the invariant
 *
 *   total_s() == max(compute_s, memory_s) + launch_s
 *
 * holds by construction and is locked in tests/gpusim_cost_test.cpp.
 */
struct CostBreakdown
{
    double compute_s = 0; ///< CUDA + TCU phase seconds (max if overlapped)
    double memory_s = 0;  ///< DRAM transfer seconds
    double launch_s = 0;  ///< launches * per-launch overhead
    double bytes = 0;     ///< DRAM bytes moved (read + written)
    double macs = 0;      ///< TCU MACs (FP64 + INT8, padded + split)
    double mod_ops = 0;   ///< CUDA-core modular mul/add limb ops
    double int_ops = 0;   ///< plain INT32 ops (splits/merges/reorders)

    /// Kernel execution time under the roofline identity.
    double total_s() const
    {
        return (compute_s > memory_s ? compute_s : memory_s) + launch_s;
    }

    /**
     * The resource that bounds total_s(): `launch` when the fixed
     * overhead exceeds both roofline terms, else whichever of
     * compute/memory forms the max (ties break to compute).
     */
    Bound bound() const;
};

/** Work placed on each GPU resource by one kernel (or fused kernel). */
struct KernelCost
{
    double cuda_modmul = 0;  ///< 64-bit modular multiplies on CUDA cores
    double cuda_modadd = 0;  ///< 64-bit modular adds/subs on CUDA cores
    double cuda_int_ops = 0; ///< plain INT32 ops (splits/merges/reorders)
    double tcu_fp64_macs = 0; ///< padded+split FP64 TCU MACs
    double tcu_int8_macs = 0; ///< padded+split INT8 TCU MACs
    double bytes_read = 0;    ///< DRAM bytes read
    double bytes_written = 0; ///< DRAM bytes written
    double launches = 1;      ///< kernel launches (0 for fused-away steps)

    double bytes() const { return bytes_read + bytes_written; }

    /// Accumulate another kernel's work (used by kernel fusion, which
    /// also removes the fused kernel's launch and intermediate
    /// traffic at the call site).
    KernelCost &operator+=(const KernelCost &o);
    friend KernelCost operator+(KernelCost a, const KernelCost &b)
    {
        a += b;
        return a;
    }

    /// Time of the CUDA-core phase alone.
    double cuda_time(const DeviceSpec &d) const;
    /// Time of the TCU phase alone.
    double tcu_time(const DeviceSpec &d) const;
    /// Time of the memory phase alone.
    double mem_time(const DeviceSpec &d) const;

    /**
     * Full roofline decomposition. Negative work fields (a modelling
     * bug) are clamped to zero so downstream attribution stays sane;
     * the clamp is observable via the non-negativity tests.
     * @param overlap_components  true when multi-stream execution
     *        overlaps the CUDA and TCU phases (§4.6).
     */
    CostBreakdown breakdown(const DeviceSpec &d,
                            bool overlap_components = false) const;

    /**
     * Kernel execution time; exactly breakdown().total_s(), so the
     * scalar and the decomposition can never disagree.
     */
    double time(const DeviceSpec &d, bool overlap_components = false) const;
};

/**
 * How a kernel sequence is dispatched.
 *  - multistream: overlap CUDA/TCU phases within and across kernels
 *    (the §4.6 multi-stream optimization).
 *  - graph_capture: the whole sequence is captured as a CUDA-graph-
 *    style DAG once and replayed with a single host dispatch; the
 *    per-kernel launch overheads collapse to
 *    DeviceSpec::graph_launch_s (replay + amortized capture).
 */
struct SchedulePolicy
{
    bool multistream = false;
    bool graph_capture = false;
};

/** Totals for a sequence of kernels forming one FHE operation. */
struct ScheduleResult
{
    double seconds = 0;
    double bytes = 0;
    /// Host-side dispatches: per-kernel launches, or 1 graph replay
    /// when the schedule ran captured (0 for an empty schedule).
    double launches = 0;
    /// Graph replays issued (1 under graph capture, else 0).
    double graph_launches = 0;
    /// Kernel launches folded into the captured graph (0 when graph
    /// capture is off; equals the per-kernel launch sum when on).
    double captured_launches = 0;
    /**
     * Phase attribution of `seconds`. Under multistream scheduling
     * the roofline identity seconds == max(compute_s, memory_s) +
     * launch_s holds for the schedule as a whole; under serial
     * scheduling it holds per kernel and the fields below are the
     * per-phase sums (sum-of-max >= max-of-sum, so seconds >=
     * max(compute_s, memory_s) + launch_s).
     */
    double compute_s = 0;
    double memory_s = 0;
    double launch_s = 0;

    /// Dominant resource across the schedule (same rule as
    /// CostBreakdown::bound()).
    Bound bound() const;
};

/** Execute a kernel sequence under the device model. */
ScheduleResult run_schedule(const std::vector<KernelCost> &kernels,
                            const DeviceSpec &d,
                            const SchedulePolicy &policy);

/// Back-compat shim: @p multistream only, graph capture off.
inline ScheduleResult
run_schedule(const std::vector<KernelCost> &kernels, const DeviceSpec &d,
             bool multistream)
{
    return run_schedule(kernels, d, SchedulePolicy{multistream, false});
}

} // namespace neo::gpusim
