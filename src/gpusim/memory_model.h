/**
 * @file
 * VRAM footprint model: how much device memory a batched FHE workload
 * needs, and hence the largest feasible BatchSize — the paper's
 * stated reason for capping BatchSize at 128 on the A100-40GB
 * (§6.3 / Fig 17) and TensorFHE's noted VRAM-capacity constraint.
 */
#pragma once

#include "ckks/params.h"
#include "gpusim/device_spec.h"

namespace neo::gpusim {

/** Byte accounting for one parameter set. */
class MemoryModel
{
  public:
    explicit MemoryModel(const ckks::CkksParams &params)
        : params_(params)
    {
    }

    /// Bytes of one ciphertext at level l (2 polys, l+1 limbs).
    double ciphertext_bytes(size_t level) const;

    /// Bytes of one hybrid key-switching key (β digits over Q·P).
    double hybrid_key_bytes() const;

    /// Bytes of one KLSS key (2·β·β̃·α' limbs over T).
    double klss_key_bytes() const;

    /// Working set of one batched KeySwitch at level l: input +
    /// ModUp/IP intermediates + keys.
    double keyswitch_working_set(size_t level) const;

    /**
     * Largest power-of-two BatchSize whose KeySwitch working set fits
     * the device (with @p reserve_fraction held back for the
     * framework and twiddles).
     */
    size_t max_batch(const DeviceSpec &dev,
                     double reserve_fraction = 0.1) const;

    /**
     * Publish the modeled HBM footprint of a level-`level` keyswitch
     * into the current obs sink (no-op when none is installed):
     * `hbm.modeled.working_set_bytes`, `hbm.modeled.key_bytes` and
     * `hbm.modeled.ciphertext_bytes` gauges. The pipeline calls this
     * per run so serving-side exporters can track modeled device
     * memory pressure next to the measured host-side gauges.
     */
    void record_gauges(size_t level) const;

  private:
    double limb_bytes() const
    {
        return static_cast<double>(params_.n) * 8.0;
    }

    ckks::CkksParams params_;
};

} // namespace neo::gpusim
