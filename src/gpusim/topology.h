/**
 * @file
 * Multi-device topology and collective-communication cost model.
 *
 * The single-device model (device_spec.h / kernel_cost.h) prices
 * kernels against one A100. Scaling keyswitch past one device shards
 * limbs and digits across N identical GPUs joined by an interconnect,
 * and the question Fig 2's bandwidth argument raises is *whether the
 * collective traffic the shards exchange costs less than the DRAM
 * passes they save*. This header models the fabric: a Topology is N
 * DeviceSpecs plus per-link bandwidth/latency constants and a shape
 * (ring or fully connected), and a CollectiveModel prices all-gather,
 * reduce-scatter, and all-to-all on it with the classic α–β model —
 * per-step time = link latency α plus bytes over link bandwidth —
 * optionally pipelined over chunks so latency and bandwidth terms
 * amortize (the FlagCX AlgoTimeEstimator style). The formulas are
 * closed-form and cross-checked by tests/gpusim_comm_test.cpp the
 * same way gpusim_cost checks the kernel model.
 */
#pragma once

#include <cstddef>
#include <string>

#include "gpusim/device_spec.h"

namespace neo::gpusim {

/** One directed inter-device link. */
struct LinkSpec
{
    double bandwidth = 0;  ///< bytes/second per direction
    double latency_s = 0;  ///< per-message (α) latency, seconds
};

/** How the devices are wired. */
enum class TopologyShape
{
    ring,            ///< each device talks to two neighbours
    fully_connected, ///< every pair has a direct link
};

/** Interconnect preset selector (CLI-facing). */
enum class Interconnect
{
    nvlink, ///< NVSwitch-style all-to-all fabric
    pcie,   ///< PCIe ring through the host
};

const char *interconnect_name(Interconnect ic);
/// Parse "nvlink" / "pcie"; returns false on anything else.
bool parse_interconnect(const std::string &s, Interconnect *out);

/** N identical devices plus the fabric joining them. */
struct Topology
{
    DeviceSpec device;  ///< every device is this spec
    size_t devices = 1;
    TopologyShape shape = TopologyShape::fully_connected;
    LinkSpec link;

    /// Directed links the shape provides (ring: n, FC: n·(n−1)).
    size_t num_links() const
    {
        if (devices <= 1)
            return 0;
        return shape == TopologyShape::ring
                   ? devices
                   : devices * (devices - 1);
    }

    /**
     * NVSwitch-style fabric: every device owns 300 GB/s of egress
     * (A100 NVLink3 aggregate, one direction), split evenly across
     * its n−1 peers, with a short switch-hop latency.
     */
    static Topology nvlink(size_t devices,
                           const DeviceSpec &dev = DeviceSpec::a100());

    /**
     * PCIe 4.0 x16 ring through the host: one 25 GB/s pipe per
     * device and a longer per-message latency.
     */
    static Topology pcie(size_t devices,
                         const DeviceSpec &dev = DeviceSpec::a100());

    /// Degenerate single-device topology (all collectives are free).
    static Topology single(const DeviceSpec &dev = DeviceSpec::a100());

    static Topology preset(Interconnect ic, size_t devices,
                           const DeviceSpec &dev = DeviceSpec::a100());
};

/** Priced collective: time plus the byte accounting behind it. */
struct CollectiveCost
{
    double time_s = 0;         ///< modeled wall time of the collective
    size_t steps = 0;          ///< serial communication steps
    double bytes_per_link = 0; ///< bytes crossing the busiest link
    double total_bytes = 0;    ///< bytes crossing the whole fabric
};

/**
 * Prices collectives on a Topology. All three collectives take the
 * *per-device shard size* in bytes (the m in the α–β literature):
 * after an all-gather every device holds devices·m bytes; a
 * reduce-scatter starts from devices·m bytes per device and leaves m.
 * With chunking C, a steps-deep schedule pipelines as
 *   time = (steps + C − 1) · (α + per_step_bytes / (C · bandwidth)),
 * the standard pipelined-collective amortization.
 */
class CollectiveModel
{
  public:
    explicit CollectiveModel(const Topology &topo) : topo_(topo) {}

    CollectiveCost all_gather(double shard_bytes, size_t chunks = 1) const;
    CollectiveCost reduce_scatter(double shard_bytes,
                                  size_t chunks = 1) const;
    /// @p pair_bytes is what each device sends to each *other* device.
    CollectiveCost all_to_all(double pair_bytes, size_t chunks = 1) const;

    /// Chunk count (power of two ≤ 64) minimizing all-gather time.
    size_t best_chunks(double shard_bytes) const;

    const Topology &topology() const { return topo_; }

  private:
    CollectiveCost priced(size_t steps, double per_step_bytes,
                          double bytes_per_link, double total_bytes,
                          size_t chunks) const;

    Topology topo_;
};

} // namespace neo::gpusim
