#include "gpusim/tcu_model.h"

#include <algorithm>

#include "common/math_util.h"

namespace neo::gpusim {

u64
TcuModel::padded_macs(size_t m, size_t n, size_t k, const FragmentShape &f)
{
    const u64 pm = ceil_div(m, f.m) * f.m;
    const u64 pn = ceil_div(n, f.n) * f.n;
    const u64 pk = ceil_div(k, f.k) * f.k;
    return pm * pn * pk;
}

double
TcuModel::valid_proportion_fp64(size_t m, size_t n, size_t k)
{
    return static_cast<double>(m) * n * k /
           static_cast<double>(padded_macs(m, n, k, kFp64Fragment));
}

double
TcuModel::valid_proportion_int8(size_t m, size_t n, size_t k)
{
    double best = 0.0;
    for (const auto &f : kInt8Fragments) {
        best = std::max(best, static_cast<double>(m) * n * k /
                                  static_cast<double>(
                                      padded_macs(m, n, k, f)));
    }
    return best;
}

double
TcuModel::fp64_gemm_time(size_t m, size_t n, size_t k, int wa, int wb) const
{
    const SplitPlan plan = choose_fp64_split(wa, wb, k);
    const u64 macs = padded_macs(m, n, k, kFp64Fragment);
    return static_cast<double>(macs) * plan.products() /
           spec_.tcu_fp64_fma_rate();
}

double
TcuModel::int8_gemm_time(size_t m, size_t n, size_t k, int wa, int wb) const
{
    const SplitPlan plan = choose_int8_split(wa, wb, k);
    u64 best = ~0ULL;
    for (const auto &f : kInt8Fragments)
        best = std::min(best, padded_macs(m, n, k, f));
    return static_cast<double>(best) * plan.products() /
           spec_.tcu_int8_mac_rate();
}

double
TcuModel::cuda_gemm_time(size_t m, size_t n, size_t k) const
{
    return static_cast<double>(m) * n * k / spec_.modmul_rate();
}

} // namespace neo::gpusim
