#include "gpusim/topology.h"

#include <algorithm>

#include "common/check.h"

namespace neo::gpusim {

const char *
interconnect_name(Interconnect ic)
{
    return ic == Interconnect::nvlink ? "nvlink" : "pcie";
}

bool
parse_interconnect(const std::string &s, Interconnect *out)
{
    if (s == "nvlink") {
        *out = Interconnect::nvlink;
        return true;
    }
    if (s == "pcie") {
        *out = Interconnect::pcie;
        return true;
    }
    return false;
}

Topology
Topology::nvlink(size_t devices, const DeviceSpec &dev)
{
    NEO_CHECK(devices >= 1, "topology needs at least one device");
    Topology t;
    t.device = dev;
    t.devices = devices;
    t.shape = TopologyShape::fully_connected;
    // 300 GB/s egress per device (NVLink3, one direction), split
    // evenly across the n−1 peer links of the full mesh.
    const double egress = 300e9;
    const size_t peers = devices > 1 ? devices - 1 : 1;
    t.link.bandwidth = egress / static_cast<double>(peers);
    t.link.latency_s = 2e-6;
    return t;
}

Topology
Topology::pcie(size_t devices, const DeviceSpec &dev)
{
    NEO_CHECK(devices >= 1, "topology needs at least one device");
    Topology t;
    t.device = dev;
    t.devices = devices;
    t.shape = TopologyShape::ring;
    t.link.bandwidth = 25e9; // PCIe 4.0 x16 effective
    t.link.latency_s = 5e-6;
    return t;
}

Topology
Topology::single(const DeviceSpec &dev)
{
    Topology t;
    t.device = dev;
    t.devices = 1;
    t.shape = TopologyShape::fully_connected;
    t.link.bandwidth = 0;
    t.link.latency_s = 0;
    return t;
}

Topology
Topology::preset(Interconnect ic, size_t devices, const DeviceSpec &dev)
{
    return ic == Interconnect::nvlink ? nvlink(devices, dev)
                                      : pcie(devices, dev);
}

CollectiveCost
CollectiveModel::priced(size_t steps, double per_step_bytes,
                        double bytes_per_link, double total_bytes,
                        size_t chunks) const
{
    NEO_CHECK(chunks >= 1, "chunk count must be positive");
    CollectiveCost c;
    c.steps = steps;
    c.bytes_per_link = bytes_per_link;
    c.total_bytes = total_bytes;
    if (topo_.devices <= 1 || steps == 0) {
        c.steps = 0;
        c.bytes_per_link = 0;
        c.total_bytes = 0;
        return c;
    }
    NEO_CHECK(topo_.link.bandwidth > 0, "link bandwidth must be positive");
    const double cd = static_cast<double>(chunks);
    const double sd = static_cast<double>(steps);
    // Pipelined α–β: the chunked schedule has steps + C − 1 rounds,
    // each paying one α and moving per_step/C bytes over the link.
    c.time_s = (sd + cd - 1.0) *
               (topo_.link.latency_s +
                per_step_bytes / (cd * topo_.link.bandwidth));
    return c;
}

CollectiveCost
CollectiveModel::all_gather(double shard_bytes, size_t chunks) const
{
    const size_t n = topo_.devices;
    if (n <= 1)
        return priced(0, 0, 0, 0, chunks);
    const double m = shard_bytes;
    const double nd = static_cast<double>(n);
    if (topo_.shape == TopologyShape::ring) {
        // Ring all-gather: n−1 steps, each device forwards one shard
        // per step; every directed link carries n−1 shards in total.
        return priced(n - 1, m, (nd - 1.0) * m, nd * (nd - 1.0) * m,
                      chunks);
    }
    // Fully connected: one step, every device broadcasts its shard to
    // the other n−1 peers over dedicated links.
    return priced(1, m, m, nd * (nd - 1.0) * m, chunks);
}

CollectiveCost
CollectiveModel::reduce_scatter(double shard_bytes, size_t chunks) const
{
    // Byte-flow dual of all-gather: same steps, same per-link and
    // total traffic, partial sums flowing toward the shard owner.
    return all_gather(shard_bytes, chunks);
}

CollectiveCost
CollectiveModel::all_to_all(double pair_bytes, size_t chunks) const
{
    const size_t n = topo_.devices;
    if (n <= 1)
        return priced(0, 0, 0, 0, chunks);
    const double p = pair_bytes;
    const double nd = static_cast<double>(n);
    const double total = nd * (nd - 1.0) * p;
    if (topo_.shape == TopologyShape::ring) {
        // Ring all-to-all: n−1 steps; at each step a link relays the
        // pairwise payloads still in transit — on average n/2 of them.
        const double per_step = p * nd / 2.0;
        return priced(n - 1, per_step,
                      per_step * (nd - 1.0), total, chunks);
    }
    // Fully connected: every pair exchanges directly in one step.
    return priced(1, p, p, total, chunks);
}

size_t
CollectiveModel::best_chunks(double shard_bytes) const
{
    size_t best = 1;
    double best_t = all_gather(shard_bytes, 1).time_s;
    for (size_t c = 2; c <= 64; c *= 2) {
        const double t = all_gather(shard_bytes, c).time_s;
        if (t < best_t) {
            best_t = t;
            best = c;
        }
    }
    return best;
}

} // namespace neo::gpusim
