/**
 * @file
 * Performance model of the evaluation platform — an NVIDIA A100-40GB
 * (Table 3 of the paper). This stands in for the physical GPU: every
 * backend (Neo, TensorFHE, HEonGPU, CPU) prices its kernels against
 * the *same* device numbers, so cross-backend ratios are produced by
 * algorithmic and mapping differences only.
 *
 * Peak numbers are the A100 datasheet values quoted in §2.3. The
 * efficiency factors below are the achieved fraction of peak assumed
 * for well-tuned kernels; they are deliberately coarse, fixed once,
 * and never tuned per experiment (see DESIGN.md "calibration").
 */
#pragma once

#include "common/types.h"

namespace neo::gpusim {

/** Datasheet throughputs and fixed model constants for one GPGPU. */
struct DeviceSpec
{
    const char *name = "NVIDIA A100-40GB";

    // --- Datasheet peaks (§2.3) -------------------------------------
    double fp64_cuda_flops = 9.7e12;  ///< CUDA-core FP64 peak
    double fp64_tcu_flops = 19.5e12;  ///< Tensor-core FP64 peak
    double int8_tcu_ops = 624e12;     ///< Tensor-core INT8 peak
    double int32_cuda_ops = 19.5e12;  ///< CUDA-core INT32 peak
    double hbm_bandwidth = 1555e9;    ///< HBM2e bytes/second
    int num_sms = 108;
    double vram_bytes = 40e9;

    // --- Achieved-fraction model constants ---------------------------
    double eff_mem = 0.80;      ///< fraction of peak DRAM bandwidth
    double eff_cuda = 0.60;     ///< fraction of peak CUDA-core rate
    double eff_tcu = 0.30;      ///< achieved fraction of FP64 TCU peak
    /// Achieved fraction of INT8 TCU peak (per-fragment the INT8
    /// pipes are fast — §3.4: "INT8 performs one matrix
    /// multiplication much faster"; they lose on plane count and
    /// merge cost, not on per-GEMM efficiency).
    double eff_tcu_int8 = 0.15;
    double kernel_launch_s = 3e-6; ///< per-launch host+dispatch latency

    // --- CUDA-graph capture/replay model ------------------------------
    /**
     * Replaying a captured kernel DAG costs one dispatch of this
     * latency regardless of how many kernel nodes the graph holds —
     * the whole point of graph launch: the per-kernel host round
     * trips disappear.
     */
    double graph_replay_s = 0.5e-6;
    /**
     * One-time capture/instantiation cost per kernel node of the DAG
     * (stream capture + graph node creation), amortized over
     * graph_amortize_replays steady-state replays (an FHE keyswitch
     * replays thousands of times per application, so the steady-state
     * share is small). Chosen so that graph launch is never slower
     * than per-kernel launch for any node count under either
     * scheduling mode:
     *   graph_replay_s + n * capture/amortize < n * 0.5 * kernel_launch_s
     * for all n >= 1.
     */
    double graph_capture_per_kernel_s = 10e-6;
    /// Steady-state replays the capture cost amortizes over.
    double graph_amortize_replays = 500.0;

    /// Amortized host-side cost of one graph replay of a DAG with
    /// @p kernel_launches kernel nodes.
    double graph_launch_s(double kernel_launches) const
    {
        return graph_replay_s + kernel_launches *
                                    graph_capture_per_kernel_s /
                                    graph_amortize_replays;
    }

    /**
     * INT32-op cost of merging one element of one partial product
     * (shift-scaled accumulation with periodic modular reduction) —
     * the "merge" step of Fig 3.
     */
    double int_ops_per_merge = 12.0;

    /**
     * Occupancy model for batched pipelines: kernels whose grid is
     * sized by the ciphertext batch achieve utilisation
     * batch/(batch + occupancy_half_batch) — the Fig 17 sensitivity.
     */
    double occupancy_half_batch = 16.0;

    /**
     * INT32-op cost of one 64-bit modular multiply on CUDA cores
     * (three 32x32 partial products for mul.lo, mul.hi, plus the
     * Barrett/Shoup correction sequence; an IMAD counts as 2 ops).
     */
    double int_ops_per_modmul = 20.0;
    /// INT32-op cost of one 64-bit modular add/sub.
    double int_ops_per_modadd = 4.0;

    // --- Derived rates ------------------------------------------------
    /// Achieved 64-bit modular multiplies per second on CUDA cores.
    double modmul_rate() const
    {
        return int32_cuda_ops * eff_cuda / int_ops_per_modmul;
    }

    /// Achieved 64-bit modular adds per second on CUDA cores.
    double modadd_rate() const
    {
        return int32_cuda_ops * eff_cuda / int_ops_per_modadd;
    }

    /// Achieved FP64 TCU fused multiply-adds per second.
    double tcu_fp64_fma_rate() const
    {
        return fp64_tcu_flops * eff_tcu / 2.0;
    }

    /// Achieved INT8 TCU multiply-adds per second.
    double tcu_int8_mac_rate() const
    {
        return int8_tcu_ops * eff_tcu_int8 / 2.0;
    }

    /// Achieved plain INT32 ops per second (splits, merges, reorders).
    double int_op_rate() const { return int32_cuda_ops * eff_cuda; }

    /// Achieved DRAM bytes per second.
    double mem_rate() const { return hbm_bandwidth * eff_mem; }

    /// The device used throughout the paper's evaluation.
    static DeviceSpec a100() { return DeviceSpec{}; }
};

} // namespace neo::gpusim
