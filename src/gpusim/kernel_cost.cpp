#include "gpusim/kernel_cost.h"

#include <algorithm>

namespace neo::gpusim {

const char *
bound_name(Bound b)
{
    switch (b) {
    case Bound::compute: return "compute";
    case Bound::memory: return "memory";
    case Bound::launch: return "launch";
    }
    return "?";
}

Bound
CostBreakdown::bound() const
{
    const double roof = std::max(compute_s, memory_s);
    if (launch_s > roof)
        return Bound::launch;
    return compute_s >= memory_s ? Bound::compute : Bound::memory;
}

KernelCost &
KernelCost::operator+=(const KernelCost &o)
{
    cuda_modmul += o.cuda_modmul;
    cuda_modadd += o.cuda_modadd;
    cuda_int_ops += o.cuda_int_ops;
    tcu_fp64_macs += o.tcu_fp64_macs;
    tcu_int8_macs += o.tcu_int8_macs;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    launches += o.launches;
    return *this;
}

namespace {
double
clamp0(double v)
{
    return v > 0 ? v : 0;
}
} // namespace

double
KernelCost::cuda_time(const DeviceSpec &d) const
{
    return clamp0(cuda_modmul) / d.modmul_rate() +
           clamp0(cuda_modadd) / d.modadd_rate() +
           clamp0(cuda_int_ops) / d.int_op_rate();
}

double
KernelCost::tcu_time(const DeviceSpec &d) const
{
    return clamp0(tcu_fp64_macs) / d.tcu_fp64_fma_rate() +
           clamp0(tcu_int8_macs) / d.tcu_int8_mac_rate();
}

double
KernelCost::mem_time(const DeviceSpec &d) const
{
    return (clamp0(bytes_read) + clamp0(bytes_written)) / d.mem_rate();
}

CostBreakdown
KernelCost::breakdown(const DeviceSpec &d, bool overlap_components) const
{
    const double cuda = cuda_time(d);
    const double tcu = tcu_time(d);
    CostBreakdown b;
    b.compute_s = overlap_components ? std::max(cuda, tcu) : cuda + tcu;
    b.memory_s = mem_time(d);
    b.launch_s = clamp0(launches) * d.kernel_launch_s;
    b.bytes = clamp0(bytes_read) + clamp0(bytes_written);
    b.macs = clamp0(tcu_fp64_macs) + clamp0(tcu_int8_macs);
    b.mod_ops = clamp0(cuda_modmul) + clamp0(cuda_modadd);
    b.int_ops = clamp0(cuda_int_ops);
    return b;
}

double
KernelCost::time(const DeviceSpec &d, bool overlap_components) const
{
    return breakdown(d, overlap_components).total_s();
}

Bound
ScheduleResult::bound() const
{
    const double roof = std::max(compute_s, memory_s);
    if (launch_s > roof)
        return Bound::launch;
    return compute_s >= memory_s ? Bound::compute : Bound::memory;
}

ScheduleResult
run_schedule(const std::vector<KernelCost> &kernels, const DeviceSpec &d,
             const SchedulePolicy &policy)
{
    ScheduleResult r;
    if (policy.multistream) {
        // Streams decouple the component pipelines: total time is set
        // by the busiest resource, each kernel still pays max(mem,
        // compute) locally. We model this as resource-major
        // accumulation with per-kernel launch overhead amortised
        // across concurrent streams (factor 1/2).
        double cuda = 0, tcu = 0, mem = 0;
        for (const auto &k : kernels) {
            cuda += k.cuda_time(d);
            tcu += k.tcu_time(d);
            mem += k.mem_time(d);
            r.bytes += k.bytes();
            r.launches += k.launches;
        }
        r.compute_s = cuda + tcu == 0 ? 0 : std::max(cuda, tcu);
        r.memory_s = mem;
        r.launch_s = r.launches * d.kernel_launch_s * 0.5;
        r.seconds = std::max(r.compute_s, r.memory_s) + r.launch_s;
    } else {
        for (const auto &k : kernels) {
            const CostBreakdown b = k.breakdown(d, false);
            r.seconds += b.total_s();
            r.bytes += k.bytes();
            r.launches += k.launches;
            r.compute_s += b.compute_s;
            r.memory_s += b.memory_s;
            r.launch_s += b.launch_s;
        }
    }
    if (policy.graph_capture && r.launches > 0) {
        // The whole sequence replays as one captured DAG: the
        // per-kernel dispatch sum is replaced by a single replay plus
        // the amortized one-time capture of every kernel node. The
        // compute/memory phases are untouched — the graph changes who
        // issues the kernels, not what they do.
        r.captured_launches = r.launches;
        const double graph_l = d.graph_launch_s(r.captured_launches);
        r.seconds += graph_l - r.launch_s;
        r.launch_s = graph_l;
        r.launches = 1;
        r.graph_launches = 1;
    }
    return r;
}

} // namespace neo::gpusim
