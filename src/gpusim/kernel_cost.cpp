#include "gpusim/kernel_cost.h"

#include <algorithm>

namespace neo::gpusim {

KernelCost &
KernelCost::operator+=(const KernelCost &o)
{
    cuda_modmul += o.cuda_modmul;
    cuda_modadd += o.cuda_modadd;
    cuda_int_ops += o.cuda_int_ops;
    tcu_fp64_macs += o.tcu_fp64_macs;
    tcu_int8_macs += o.tcu_int8_macs;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    launches += o.launches;
    return *this;
}

double
KernelCost::cuda_time(const DeviceSpec &d) const
{
    return cuda_modmul / d.modmul_rate() + cuda_modadd / d.modadd_rate() +
           cuda_int_ops / d.int_op_rate();
}

double
KernelCost::tcu_time(const DeviceSpec &d) const
{
    return tcu_fp64_macs / d.tcu_fp64_fma_rate() +
           tcu_int8_macs / d.tcu_int8_mac_rate();
}

double
KernelCost::mem_time(const DeviceSpec &d) const
{
    return bytes() / d.mem_rate();
}

double
KernelCost::time(const DeviceSpec &d, bool overlap_components) const
{
    const double cuda = cuda_time(d);
    const double tcu = tcu_time(d);
    const double compute =
        overlap_components ? std::max(cuda, tcu) : cuda + tcu;
    return std::max(mem_time(d), compute) + launches * d.kernel_launch_s;
}

ScheduleResult
run_schedule(const std::vector<KernelCost> &kernels, const DeviceSpec &d,
             bool multistream)
{
    ScheduleResult r;
    if (multistream) {
        // Streams decouple the component pipelines: total time is set
        // by the busiest resource, each kernel still pays max(mem,
        // compute) locally. We model this as resource-major
        // accumulation with per-kernel launch overhead amortised
        // across concurrent streams (factor 1/2).
        double cuda = 0, tcu = 0, mem = 0;
        for (const auto &k : kernels) {
            cuda += k.cuda_time(d);
            tcu += k.tcu_time(d);
            mem += k.mem_time(d);
            r.bytes += k.bytes();
            r.launches += k.launches;
        }
        r.seconds = std::max({cuda + tcu == 0 ? 0 : std::max(cuda, tcu),
                              mem}) +
                    r.launches * d.kernel_launch_s * 0.5;
    } else {
        for (const auto &k : kernels) {
            r.seconds += k.time(d, false);
            r.bytes += k.bytes();
            r.launches += k.launches;
        }
    }
    return r;
}

} // namespace neo::gpusim
