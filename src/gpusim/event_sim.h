/**
 * @file
 * Fluid event-driven simulation of multi-stream kernel execution.
 *
 * The aggregate model in kernel_cost.h bounds multi-stream execution
 * by the busiest resource; this simulator computes the makespan
 * explicitly: kernels are issued in-order per stream (with optional
 * cross-stream dependencies), concurrently-active kernels time-share
 * each device resource (CUDA cores, tensor cores, DRAM), and the
 * simulation advances from kernel-completion event to event. A
 * kernel finishes when its *slowest* resource demand has been served.
 *
 * Used to validate the §4.6 multi-stream claim: interleaving
 * TCU-heavy and CUDA-heavy kernels across streams hides one behind
 * the other, and the aggregate model's estimate falls between the
 * serial and fluid results.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "gpusim/kernel_cost.h"

namespace neo::gpusim {

/** A kernel instance scheduled on a stream. */
struct SimKernel
{
    KernelCost cost;
    int stream = 0;
    /// Indices of kernels (in submission order) that must complete
    /// before this one may start, in addition to stream order.
    std::vector<size_t> deps;
    /**
     * Seconds of interconnect service this entry demands (a fourth
     * resource alongside CUDA/TCU/DRAM). Collectives priced by
     * gpusim::CollectiveModel enter the simulation as entries with
     * link_s set and an empty KernelCost, so communication overlaps
     * compute exactly the way concurrent kernels share the device.
     */
    double link_s = 0;
};

/** Fluid-rate event simulator. */
class EventSimulator
{
  public:
    explicit EventSimulator(const DeviceSpec &dev) : dev_(dev) {}

    /** Result of a simulation run. */
    struct Result
    {
        double makespan = 0;        ///< total seconds
        std::vector<double> finish; ///< per-kernel completion time
    };

    /// Simulate the kernel set to completion.
    Result run(const std::vector<SimKernel> &kernels) const;

    /**
     * Convenience wrapper: each queue is one in-order stream (queue
     * index = stream id, no cross-stream dependencies). Replaces the
     * hand-rolled stream-assignment loops callers used to write.
     */
    Result run_queues(
        const std::vector<std::vector<KernelCost>> &queues) const;

  private:
    DeviceSpec dev_;
};

} // namespace neo::gpusim
