/**
 * @file
 * Backend definitions: Neo and the systems it is compared against.
 *
 * Every backend is (parameter set, ModelConfig, device). All GPU
 * backends share the A100 device model; differences in results come
 * only from each system's algorithm and mapping choices:
 *
 *  - Neo        : KLSS, matmul dataflow, radix-16 NTT, FP64 TCU,
 *                 fusion + multi-stream (§4).
 *  - TensorFHE  : Hybrid KS, four-step NTT on the INT8 TCU pipes,
 *                 element-wise BConv/IP, kernel fusion, batched.
 *  - HEonGPU    : Hybrid KS, butterfly NTT on CUDA cores only,
 *                 element-wise kernels, unbatched (Set-E).
 *  - CPU        : scalar reference machine (Set-H), as in 100x /
 *                 CraterLake's software baseline.
 */
#pragma once

#include <string>

#include "ckks/paper_params.h"
#include "neo/kernel_model.h"

namespace neo::baselines {

/** A named system under evaluation. */
struct Backend
{
    std::string name;
    ckks::CkksParams params;
    model::ModelConfig cfg;

    model::KernelModel model() const
    {
        return model::KernelModel(params, cfg);
    }
};

/// Neo with every optimization on (default Set-C; 'D' also valid).
Backend make_neo(char set = 'C');

/// Neo with single-scaling parameters (Set-G, L = 23).
Backend make_neo_ss();

/// TensorFHE with DS integrated, at Set-A/B/C parameters.
Backend make_tensorfhe(char set = 'A');

/// TensorFHE with single scaling (Set-F).
Backend make_tensorfhe_ss();

/// HEonGPU (CUDA cores only, Set-E).
Backend make_heongpu();

/// CPU software baseline (Set-H).
Backend make_cpu();

/// The ablation ladder of Fig 14: TensorFHE-like start, then +KLSS,
/// +dataflow, +ten-step NTT, +FP64 TCU (== the paper's Neo), then the
/// two post-paper launch-elimination rungs: +kernel fusion
/// (elementwise) and +graph capture.
std::vector<Backend> ablation_ladder();

/// A CPU-like DeviceSpec (no TCU, host memory bandwidth).
gpusim::DeviceSpec cpu_device();

} // namespace neo::baselines
