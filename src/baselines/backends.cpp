#include "baselines/backends.h"

namespace neo::baselines {

using model::MatMulEngine;
using model::ModelConfig;

namespace {

ModelConfig
neo_config()
{
    ModelConfig cfg;
    cfg.use_klss = true;
    cfg.matmul_dataflow = true;
    cfg.radix16_ntt = true;
    cfg.tcu_ntt = true;
    cfg.engine = MatMulEngine::tcu_fp64;
    cfg.kernel_fusion = true;
    cfg.multistream = true;
    return cfg;
}

ModelConfig
tensorfhe_config()
{
    ModelConfig cfg;
    cfg.use_klss = false;
    cfg.matmul_dataflow = false; // element-wise BConv / IP
    cfg.radix16_ntt = false;     // four-step 256x256
    cfg.tcu_ntt = true;
    cfg.engine = MatMulEngine::tcu_int8;
    cfg.kernel_fusion = true;
    cfg.multistream = false;
    return cfg;
}

} // namespace

Backend
make_neo(char set)
{
    return Backend{std::string("Neo/Set-") + set, ckks::paper_set(set),
                   neo_config()};
}

Backend
make_neo_ss()
{
    return Backend{"Neo_SS/Set-G", ckks::paper_set('G'), neo_config()};
}

Backend
make_tensorfhe(char set)
{
    return Backend{std::string("TensorFHE/Set-") + set,
                   ckks::paper_set(set), tensorfhe_config()};
}

Backend
make_tensorfhe_ss()
{
    return Backend{"TensorFHE_SS/Set-F", ckks::paper_set('F'),
                   tensorfhe_config()};
}

Backend
make_heongpu()
{
    ModelConfig cfg;
    cfg.use_klss = false;
    cfg.matmul_dataflow = false;
    cfg.radix16_ntt = false;
    cfg.tcu_ntt = false; // butterfly NTT on CUDA cores
    cfg.engine = MatMulEngine::cuda_cores;
    cfg.kernel_fusion = true;
    cfg.multistream = false;
    cfg.batched_pipeline = false; // parallelises within one ciphertext
    return Backend{"HEonGPU/Set-E", ckks::paper_set('E'), cfg};
}

gpusim::DeviceSpec
cpu_device()
{
    // The CPU rows of Tables 5/6 come from CraterLake's / 100x's
    // software baseline, which is effectively a single-threaded
    // Lattigo/SEAL-style run — so the device model is one fast core,
    // not the whole 32-core socket.
    gpusim::DeviceSpec d;
    d.name = "Hygon C86 7285 (software baseline)";
    d.fp64_cuda_flops = 0.05e12;
    d.fp64_tcu_flops = 0;
    d.int8_tcu_ops = 0;
    d.int32_cuda_ops = 0.03e12;
    d.hbm_bandwidth = 20e9;
    d.num_sms = 1;
    d.vram_bytes = 512e9;
    d.eff_mem = 0.6;
    d.eff_cuda = 0.5;
    d.kernel_launch_s = 0.2e-6; // a function call, not a GPU launch
    return d;
}

Backend
make_cpu()
{
    ModelConfig cfg;
    cfg.device = cpu_device();
    cfg.use_klss = false;
    cfg.matmul_dataflow = false;
    cfg.radix16_ntt = false;
    cfg.tcu_ntt = false;
    cfg.engine = MatMulEngine::cuda_cores;
    cfg.kernel_fusion = true;
    cfg.multistream = false;
    cfg.batched_pipeline = false;
    return Backend{"CPU/Set-H", ckks::paper_set('H'), cfg};
}

std::vector<Backend>
ablation_ladder()
{
    std::vector<Backend> ladder;

    // Rung 0: TensorFHE's mapping at Set-C parameters, so the +KLSS
    // rung isolates the method switch at fixed d_num (the Table 5
    // "TensorFHE Set-C" row).
    ladder.push_back(make_tensorfhe('C'));

    // Rung 1: +KLSS — switch the KeySwitch method; kernels still
    // element-wise, NTT still four-step INT8.
    {
        Backend b = make_tensorfhe('C');
        b.name = "+KLSS";
        b.cfg.use_klss = true;
        ladder.push_back(b);
    }
    // Rung 2: +dataflow — BConv and IP become matrix multiplications
    // with the optimized layouts (still INT8 engine).
    {
        Backend b = ladder.back();
        b.name = "+dataflow opted";
        b.cfg.matmul_dataflow = true;
        ladder.push_back(b);
    }
    // Rung 3: +ten-step NTT.
    {
        Backend b = ladder.back();
        b.name = "+ten-step NTT";
        b.cfg.radix16_ntt = true;
        ladder.push_back(b);
    }
    // Rung 4: +FP64 TCU — the paper's final Neo configuration.
    {
        Backend b = ladder.back();
        b.name = "+FP64 TCU";
        b.cfg.engine = MatMulEngine::tcu_fp64;
        b.cfg.multistream = true;
        ladder.push_back(b);
    }
    // Rung 5: +element-wise fusion — fold the ModDown fix and NTT
    // twiddle passes into their neighbouring kernels (PR 6 layer;
    // beyond the paper's Fig 14 axes).
    {
        Backend b = ladder.back();
        b.name = "+kernel fusion (elementwise)";
        b.cfg.fuse_elementwise = true;
        ladder.push_back(b);
    }
    // Rung 6: +graph capture — the whole kernel DAG replays with one
    // amortized launch.
    {
        Backend b = ladder.back();
        b.name = "+graph capture";
        b.cfg.graph_capture = true;
        ladder.push_back(b);
    }
    return ladder;
}

} // namespace neo::baselines
