/**
 * @file
 * The CKKS evaluator: the primitive operations of §2.1 (HADD, PADD,
 * HMULT, PMULT, HROTATE, Rescale, Double Rescale) built on either
 * key-switch method.
 *
 * Key material flows in as an EvalKeyBundle (relin key + optional
 * KLSS form + Galois keys); work counts flow out through neo::obs
 * counters (`ks.*`, `op.*`).
 */
#pragma once

#include <functional>
#include <utility>

#include "ckks/context.h"
#include "ckks/keys.h"
#include "ckks/keyswitch.h"

namespace neo::obs {
class Scope;
} // namespace neo::obs

namespace neo::ckks {

/** Which KeySwitch implementation the evaluator routes through. */
enum class KeySwitchMethod { hybrid, klss };

/** Homomorphic-operation engine. */
class Evaluator
{
  public:
    /**
     * @param scope  optional observability sink: when set, every
     *               operation on this evaluator records its spans and
     *               counters into @p scope's registry (activated for
     *               the duration of the call) instead of the ambient
     *               one. The scope must outlive the evaluator's use.
     */
    Evaluator(const CkksContext &ctx,
              KeySwitchMethod method = KeySwitchMethod::hybrid,
              obs::Scope *scope = nullptr);

    KeySwitchMethod method() const { return method_; }

    /**
     * Pluggable KLSS key-switch implementation. When set, every KLSS
     * key switch issued by this evaluator (mul / rotate / conjugate)
     * routes through @p fn instead of ckks::keyswitch_klss — e.g.
     * neo::keyswitch_klss_pipeline with a chosen GEMM engine, which
     * is bit-exact with the reference and exercises the hot-path
     * caches. Pass an empty function to restore the default.
     */
    using KlssKeySwitchFn = std::function<std::pair<RnsPoly, RnsPoly>(
        const RnsPoly &, const KlssEvalKey &, const CkksContext &)>;
    void set_klss_keyswitch(KlssKeySwitchFn fn)
    {
        klss_keyswitch_ = std::move(fn);
    }

    /// HADD: ciphertext + ciphertext (matching level and scale).
    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;

    /// Ciphertext - ciphertext.
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;

    /// Negation.
    Ciphertext negate(const Ciphertext &a) const;

    /// PADD: ciphertext + plaintext.
    Ciphertext add_plain(const Ciphertext &a, const Plaintext &pt) const;

    /// PMULT: ciphertext × plaintext (scale multiplies; no key switch).
    Ciphertext mul_plain(const Ciphertext &a, const Plaintext &pt) const;

    /**
     * HMULT: ciphertext × ciphertext with relinearization via the
     * configured KeySwitch (`keys.klss_rlk` must be set for a KLSS
     * evaluator). Does NOT rescale; callers follow with rescale()
     * (or double_rescale), as in Fig 5.
     */
    Ciphertext mul(const Ciphertext &a, const Ciphertext &b,
                   const EvalKeyBundle &keys) const;

    /// HROTATE by @p steps slots (Galois key required for the element).
    Ciphertext rotate(const Ciphertext &a, i64 steps,
                      const EvalKeyBundle &keys) const;

    /// Complex conjugation of all slots.
    Ciphertext conjugate(const Ciphertext &a,
                         const EvalKeyBundle &keys) const;

    /// Rescale: drop the last prime, dividing the scale by it.
    Ciphertext rescale(const Ciphertext &a) const;

    /// Double Rescale (DS): drop the last two primes in one step.
    Ciphertext double_rescale(const Ciphertext &a) const;

    /// Drop to @p level without rescaling (modulus switch).
    Ciphertext mod_switch_to(const Ciphertext &a, size_t level) const;

  private:
    std::pair<RnsPoly, RnsPoly>
    keyswitch(const RnsPoly &d2, const EvalKey *evk,
              const KlssEvalKey *kevk) const;

    Ciphertext mul_impl(const Ciphertext &a, const Ciphertext &b,
                        const EvalKey *rlk,
                        const KlssEvalKey *klss_rlk) const;
    Ciphertext rotate_impl(const Ciphertext &a, i64 steps,
                           const GaloisKeys &gk) const;
    Ciphertext conjugate_impl(const Ciphertext &a,
                              const GaloisKeys &gk) const;

    Ciphertext rescale_by(const Ciphertext &a, size_t count) const;

    const CkksContext &ctx_;
    KeySwitchMethod method_;
    obs::Scope *scope_;
    KlssKeySwitchFn klss_keyswitch_;
};

} // namespace neo::ckks
