/**
 * @file
 * Noise measurement — the quantity Rescale/DS manage and the reason
 * SHARP (and hence Neo) insists on WordSize ≥ 36.
 *
 * Given the secret key, the exact noise of a ciphertext against its
 * intended message is measurable: decrypt, subtract the encoding of
 * the expected values at the ciphertext's scale, and take the largest
 * centered coefficient. Tests use this to verify that noise grows as
 * predicted across operations and that both key-switch methods add
 * comparable noise.
 */
#pragma once

#include "ckks/encryptor.h"

namespace neo::ckks {

/** Secret-key-holding noise probe (testing/diagnostics only). */
class NoiseInspector
{
  public:
    NoiseInspector(const CkksContext &ctx, const SecretKey &sk,
                   const KeyGenerator &keygen);

    /**
     * log2 of the largest noise coefficient of @p ct relative to the
     * exact encoding of @p expected at the ciphertext's scale.
     * Returns -inf-ish (< 0) for a noiseless ciphertext.
     */
    double noise_bits(const Ciphertext &ct,
                      const std::vector<Complex> &expected) const;

    /**
     * Remaining budget in bits: log2(q_active / 2) - log2(scale) -
     * noise_bits. Positive budget ⇒ the message is still recoverable.
     */
    double budget_bits(const Ciphertext &ct,
                       const std::vector<Complex> &expected) const;

  private:
    const CkksContext &ctx_;
    Decryptor dec_;
};

} // namespace neo::ckks
