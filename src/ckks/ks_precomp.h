/**
 * @file
 * ckks::KeySwitchPrecomp — per-context cache of everything the
 * key-switch hot path used to rebuild on every call.
 *
 * keyswitch_hybrid / keyswitch_klss / mod_down are invariant in
 * everything but the ciphertext: the active and extended modulus
 * lists, the RnsBasis objects for the active chain and each digit
 * group, every BaseConverter (digit→rest for hybrid ModUp, digit→T
 * for KLSS ModUp, T→single-prime for Recover Limbs, P→Q for ModDown)
 * and the P^{-1} mod q_i constants depend only on (context, level).
 * Constructing a BaseConverter is O(|from|·|to|) modular
 * exponentiations — doing it per keyswitch dominated small-ring runs.
 *
 * One KeySwitchPrecomp is owned by each CkksContext; levels are built
 * lazily (first keyswitch at a level pays the construction once) and
 * returned by stable reference, guarded by a mutex so concurrent
 * evaluators share one copy.
 */
#pragma once

#include <memory>
#include <vector>

#include "common/mutex.h"
#include "rns/base_convert.h"
#include "rns/basis.h"
#include "rns/partition.h"

namespace neo::ckks {

class CkksContext;

class KeySwitchPrecomp
{
  public:
    /** Per-(level, ciphertext-digit) invariants. */
    struct Digit
    {
        RnsBasis basis; ///< this digit's q primes
        /// Hybrid ModUp: digit → (extended \ digit).
        std::unique_ptr<BaseConverter> to_other;
        /// KLSS ModUp: digit → T (null when KLSS is disabled).
        std::unique_ptr<BaseConverter> to_t;
    };

    /** Everything invariant at one ciphertext level. */
    struct Level
    {
        std::vector<Modulus> active;   ///< q_0..q_l
        std::vector<Modulus> extended; ///< q_0..q_l, P
        RnsBasis q_active;
        /// ModDown: P → active q chain.
        std::unique_ptr<BaseConverter> p_to_q;
        /// P^{-1} mod q_i and Shoup companions, one per active limb.
        std::vector<u64> p_inv, p_inv_shoup;
        std::vector<DigitGroup> groups; ///< ciphertext digit partition
        std::vector<Digit> digits;      ///< one per group
        size_t beta_tilde = 0; ///< KLSS key digits touched at this level
    };

    explicit KeySwitchPrecomp(const CkksContext &ctx);
    ~KeySwitchPrecomp();
    KeySwitchPrecomp(const KeySwitchPrecomp &) = delete;
    KeySwitchPrecomp &operator=(const KeySwitchPrecomp &) = delete;

    /// The (lazily built) invariants for @p level; stable reference.
    const Level &level(size_t level) const;

    /**
     * Recover-Limbs converter T → {pq_ordered_mod(idx)} (KLSS only).
     * Level-independent: the [P, Q] ordering never changes.
     */
    const BaseConverter &t_to_pq(size_t idx) const;

  private:
    const CkksContext &ctx_;
    mutable Mutex mu_;
    /// Lazily built per-level invariants; the unique_ptr slots are
    /// guarded, the pointed-to Levels are immutable once published
    /// (which is what makes the stable-reference contract safe).
    mutable std::vector<std::unique_ptr<Level>> levels_ NEO_GUARDED_BY(mu_);
    mutable std::vector<std::unique_ptr<BaseConverter>> t_single_
        NEO_GUARDED_BY(mu_);
};

} // namespace neo::ckks
