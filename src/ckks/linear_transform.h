/**
 * @file
 * Homomorphic slot-wise linear transforms — the machinery behind
 * CoeffToSlot / SlotToCoeff and any matrix-vector product on packed
 * ciphertexts.
 *
 * For a matrix M over the slot space, y = M·z is evaluated with the
 * diagonal method:  y = Σ_d diag_d(M) ⊙ rot(z, d), optionally
 * organised baby-step/giant-step so only ~2√D rotations are needed
 * for D non-zero diagonals (the rotation counts the bootstrap
 * schedule in apps/schedules.cpp assumes).
 */
#pragma once

#include <vector>

#include "ckks/evaluator.h"

namespace neo::ckks {

/** A dense complex matrix acting on the slot vector. */
class LinearTransform
{
  public:
    /**
     * @param matrix  row-major slots×slots complex matrix.
     * @param slots   dimension (must equal the context's slot count).
     */
    LinearTransform(std::vector<Complex> matrix, size_t slots);

    size_t slots() const { return slots_; }

    /// diag_d(M)[i] = M[i][(i+d) mod slots].
    std::vector<Complex> diagonal(size_t d) const;

    /// Rotation steps whose Galois keys apply() needs (naive method).
    std::vector<i64> required_rotations() const;

    /// Rotation steps needed by apply_bsgs().
    std::vector<i64> required_rotations_bsgs() const;

    /**
     * y = M·z homomorphically, one rotation per non-zero diagonal.
     * The result is rescaled once (consumes one level).
     * @p keys must hold Galois keys for required_rotations().
     */
    Ciphertext apply(const Evaluator &ev, const CkksContext &ctx,
                     const Ciphertext &ct,
                     const EvalKeyBundle &keys) const;

    /**
     * Baby-step/giant-step variant (~2√D rotations).
     * @param hoist  compute the baby rotations with one shared ModUp
     *        (ckks/hoisting.h); requires hybrid Galois keys.
     */
    Ciphertext apply_bsgs(const Evaluator &ev, const CkksContext &ctx,
                          const Ciphertext &ct, const EvalKeyBundle &keys,
                          bool hoist = false) const;

    /// Plaintext reference for tests: y = M·z.
    std::vector<Complex> apply_plain(const std::vector<Complex> &z) const;

  private:
    bool diagonal_nonzero(size_t d) const;

    std::vector<Complex> m_;
    size_t slots_;
    size_t giant_; // BSGS giant-step size
};

} // namespace neo::ckks
