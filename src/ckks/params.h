/**
 * @file
 * CKKS parameter sets (Table 1 / Table 4 symbols).
 *
 * A parameter set fixes the ring degree N, the modulus chain (L+1
 * primes of WordSize bits plus K special primes), the key-switch
 * digit count d_num (α = ceil((L+1)/d_num) primes per digit, and K =
 * α special primes), and — when the KLSS method is used — the
 * auxiliary base T (α' primes of WordSize_T bits) and the key-digit
 * width α̃.
 */
#pragma once

#include <cstddef>
#include <string>

#include "common/types.h"

namespace neo::ckks {

/** KLSS-specific parameters (§2.2). */
struct KlssParams
{
    int word_size_t = 48; ///< bit width of the t_i primes (WordSize_T)
    size_t alpha_tilde = 5; ///< key-digit group width α̃

    bool enabled() const { return alpha_tilde != 0; }
};

/** Full CKKS parameter set. */
struct CkksParams
{
    std::string name = "custom";
    size_t n = 1 << 16;     ///< polynomial degree N
    size_t max_level = 35;  ///< L: ciphertext starts with L+1 primes
    int word_size = 36;     ///< bit width of the q_i / p_i primes
    size_t d_num = 9;       ///< digit count of the gadget decomposition
    double scale = 0;       ///< Δ; defaults to 2^(word_size - 1)
    KlssParams klss;        ///< auxiliary-base parameters (optional)
    size_t batch = 128;     ///< ciphertexts batched per kernel (BatchSize)

    /// α = ceil((L+1)/d_num): primes per ciphertext digit, and the
    /// number of special primes K.
    size_t alpha() const { return (max_level + 1 + d_num - 1) / d_num; }

    /// Number of special primes (K = α for the hybrid method).
    size_t special_primes() const { return alpha(); }

    /// β at level l: number of ciphertext digits.
    size_t beta(size_t level) const
    {
        return (level + 1 + alpha() - 1) / alpha();
    }

    /// β̃ at level l: ceil((l + α + 1)/α̃) key digits (KLSS).
    size_t beta_tilde(size_t level) const
    {
        return (level + alpha() + 1 + klss.alpha_tilde - 1) /
               klss.alpha_tilde;
    }

    /// Effective scale Δ.
    double delta() const;

    /**
     * α': the number of T primes needed so the KLSS inner product is
     * an exact integer: T/2 must exceed N·β·(Q_digit/2)·(G_key/2)
     * summed over β terms (the Eq. 4 bound, computed from our exact
     * operand bounds at the worst level).
     */
    size_t klss_alpha_prime() const;

    /// Validate invariants; throws on inconsistency.
    void validate() const;

    /// Small parameters for functional tests (fast, still 36-bit).
    static CkksParams test_params(size_t n = 1 << 10, size_t levels = 5,
                                  size_t d_num = 2);
};

} // namespace neo::ckks
