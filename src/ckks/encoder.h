/**
 * @file
 * CKKS encoder: the canonical embedding between C^{N/2} slot vectors
 * and integer polynomial coefficients.
 *
 * A plaintext m(X) evaluated at the odd powers of the primitive 2N-th
 * complex root ζ gives N values; the N/2 "slots" sit at the exponents
 * 5^j mod 2N and the other half are their conjugates. Evaluation at
 * all odd exponents is a twisted (negacyclic) complex FFT of size N,
 * which is how both encode and decode are implemented — O(N log N),
 * mirroring the NTT structure used on the modular side.
 */
#pragma once

#include <complex>
#include <vector>

#include "common/types.h"

namespace neo::ckks {

using Complex = std::complex<double>;

/** Canonical-embedding encoder for ring degree n. */
class Encoder
{
  public:
    /// Precompute root powers and the rotation-group slot map.
    explicit Encoder(size_t n);

    size_t n() const { return n_; }
    /// Number of complex slots (N/2).
    size_t slot_count() const { return n_ / 2; }

    /**
     * Encode up to slot_count() complex values (missing slots are
     * zero) into N scaled integer coefficients: round(scale * m_i).
     */
    std::vector<i64> encode(const std::vector<Complex> &slots,
                            double scale) const;

    /// Inverse of encode given real-valued (centered) coefficients.
    std::vector<Complex> decode(const std::vector<double> &coeffs,
                                double scale) const;

    /**
     * encode without integer rounding: the exact real coefficient
     * targets at any scale (diagnostics — noise measurement against
     * products whose scale exceeds the i64 encode range).
     */
    std::vector<double> encode_real(const std::vector<Complex> &slots,
                                    double scale) const;

    /**
     * Galois element for a rotation by @p steps slots: 5^steps mod 2N
     * (negative steps rotate the other way). steps = 0 with conjugate
     * = true yields the conjugation element 2N-1.
     */
    u64 galois_element(i64 steps, bool conjugate = false) const;

  private:
    /// In-place complex FFT with ω = e^{±2πi/n}; sign +1 evaluates.
    void fft(std::vector<Complex> &a, int sign) const;

    size_t n_;
    std::vector<Complex> zeta_pow_;  // ζ^i, i < 2n
    std::vector<size_t> slot_to_point_; // slot j -> FFT index of 5^j
    std::vector<u32> bitrev_;
};

} // namespace neo::ckks
