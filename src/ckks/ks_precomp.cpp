#include "ckks/ks_precomp.h"

#include "ckks/context.h"
#include "common/check.h"
#include "obs/obs.h"

namespace neo::ckks {

KeySwitchPrecomp::KeySwitchPrecomp(const CkksContext &ctx)
    : ctx_(ctx), levels_(ctx.max_level() + 1)
{
    if (ctx.params().klss.enabled())
        t_single_.resize(ctx.pq_ordered_size());
}

KeySwitchPrecomp::~KeySwitchPrecomp() = default;

const KeySwitchPrecomp::Level &
KeySwitchPrecomp::level(size_t level) const
{
    LockGuard lock(mu_);
    // Size check under the lock: levels_ is sized once in the
    // constructor, but the analysis (rightly) has no way to know that.
    NEO_CHECK(level < levels_.size(), "level out of range");
    auto &slot = levels_[level];
    if (slot != nullptr)
        return *slot;

    auto lv = std::make_unique<Level>();
    lv->active = ctx_.active_mods(level);
    lv->extended = ctx_.extended_mods(level);
    std::vector<u64> active_primes;
    active_primes.reserve(lv->active.size());
    for (const auto &m : lv->active)
        active_primes.push_back(m.value());
    lv->q_active = RnsBasis(active_primes);
    lv->p_to_q = std::make_unique<BaseConverter>(ctx_.p_basis(),
                                                 lv->q_active);
    lv->p_inv.resize(level + 1);
    lv->p_inv_shoup.resize(level + 1);
    for (size_t i = 0; i <= level; ++i) {
        const Modulus &qi = lv->active[i];
        lv->p_inv[i] = qi.inv(ctx_.p_basis().product_mod(qi));
        lv->p_inv_shoup[i] = shoup_precompute(lv->p_inv[i], qi.value());
    }

    lv->groups = ctx_.digit_partition(level);
    const bool klss = ctx_.params().klss.enabled();
    if (klss) {
        const size_t k_special = ctx_.p_basis().size();
        const size_t alpha_tilde = ctx_.params().klss.alpha_tilde;
        lv->beta_tilde =
            (level + 1 + k_special + alpha_tilde - 1) / alpha_tilde;
    }
    lv->digits.reserve(lv->groups.size());
    for (const auto &g : lv->groups) {
        Digit d;
        d.basis = ctx_.q_basis().slice(g.first, g.count);
        std::vector<u64> other_primes;
        for (size_t t = 0; t < lv->extended.size(); ++t) {
            if (t < g.first || t >= g.first + g.count)
                other_primes.push_back(lv->extended[t].value());
        }
        d.to_other = std::make_unique<BaseConverter>(
            d.basis, RnsBasis(other_primes));
        if (klss)
            d.to_t =
                std::make_unique<BaseConverter>(d.basis, ctx_.t_basis());
        lv->digits.push_back(std::move(d));
    }

    slot = std::move(lv);
    // Occupancy telemetry: total levels built across contexts (each
    // level is built at most once per context, so the gauge's
    // high-water mark is the peak precomp population).
    obs::add_gauge("ks.precomp.levels", 1.0);
    return *slot;
}

const BaseConverter &
KeySwitchPrecomp::t_to_pq(size_t idx) const
{
    LockGuard lock(mu_);
    NEO_CHECK(idx < t_single_.size(), "pq index out of range");
    auto &slot = t_single_[idx];
    if (slot == nullptr)
        slot = std::make_unique<BaseConverter>(
            ctx_.t_basis(),
            RnsBasis({ctx_.pq_ordered_mod(idx).value()}));
    return *slot;
}

} // namespace neo::ckks
