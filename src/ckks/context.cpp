#include "ckks/context.h"

#include <algorithm>
#include <atomic>

#include "ckks/ks_precomp.h"
#include "common/check.h"
#include "rns/primes.h"

namespace neo::ckks {

namespace {

/// Non-NTT primes for the exact decode lift (just below 2^60).
std::vector<u64>
generate_decode_primes(int count, const std::vector<u64> &avoid)
{
    std::vector<u64> out;
    u64 candidate = (1ULL << 60) - 1;
    while (static_cast<int>(out.size()) < count) {
        if (is_prime(candidate) &&
            std::find(avoid.begin(), avoid.end(), candidate) ==
                avoid.end()) {
            out.push_back(candidate);
        }
        candidate -= 2;
    }
    return out;
}

} // namespace

CkksContext::CkksContext(const CkksParams &params)
    : params_(params), encoder_(params.n)
{
    params_.validate();
    const size_t n = params_.n;
    const size_t levels = params_.max_level + 1;
    const size_t k_special = params_.special_primes();

    auto q_primes = generate_ntt_primes(params_.word_size,
                                        static_cast<int>(levels), n);
    auto p_primes = generate_ntt_primes(
        params_.word_size, static_cast<int>(k_special), n, q_primes);
    q_basis_ = RnsBasis(q_primes);
    p_basis_ = RnsBasis(p_primes);

    std::vector<Modulus> all_mods = q_basis_.mods();
    for (const auto &m : p_basis_.mods())
        all_mods.push_back(m);
    tables_ = NttTableSet(n, all_mods);

    std::vector<u64> avoid = q_primes;
    avoid.insert(avoid.end(), p_primes.begin(), p_primes.end());

    if (params_.klss.enabled()) {
        alpha_prime_ = params_.klss_alpha_prime();
        auto t_primes = generate_ntt_primes(params_.klss.word_size_t,
                                            static_cast<int>(alpha_prime_),
                                            n, avoid);
        t_basis_ = RnsBasis(t_primes);
        t_tables_ = NttTableSet(n, t_basis_.mods());
        avoid.insert(avoid.end(), t_primes.begin(), t_primes.end());
        klss_key_partition_ =
            make_partition(pq_ordered_size(), params_.klss.alpha_tilde);
    }

    decode_basis_ = RnsBasis(generate_decode_primes(2, avoid));

    static std::atomic<u64> next_uid{1};
    uid_ = next_uid.fetch_add(1, std::memory_order_relaxed);
    precomp_ = std::make_unique<KeySwitchPrecomp>(*this);
}

CkksContext::~CkksContext() = default;

const RnsBasis &
CkksContext::t_basis() const
{
    NEO_CHECK(params_.klss.enabled(), "KLSS not configured");
    return t_basis_;
}

const NttTableSet &
CkksContext::t_tables() const
{
    NEO_CHECK(params_.klss.enabled(), "KLSS not configured");
    return t_tables_;
}

std::vector<Modulus>
CkksContext::active_mods(size_t level) const
{
    NEO_CHECK(level <= params_.max_level, "level out of range");
    std::vector<Modulus> mods;
    mods.reserve(level + 1);
    for (size_t i = 0; i <= level; ++i)
        mods.push_back(q_basis_[i]);
    return mods;
}

std::vector<Modulus>
CkksContext::extended_mods(size_t level) const
{
    auto mods = active_mods(level);
    for (const auto &m : p_basis_.mods())
        mods.push_back(m);
    return mods;
}

std::vector<DigitGroup>
CkksContext::digit_partition(size_t level) const
{
    return make_partition(level + 1, params_.alpha());
}

const std::vector<DigitGroup> &
CkksContext::klss_key_partition() const
{
    NEO_CHECK(params_.klss.enabled(), "KLSS not configured");
    return klss_key_partition_;
}

const Modulus &
CkksContext::pq_ordered_mod(size_t idx) const
{
    const size_t k_special = p_basis_.size();
    NEO_ASSERT(idx < pq_ordered_size(), "index out of range");
    return idx < k_special ? p_basis_[idx] : q_basis_[idx - k_special];
}

Plaintext
CkksContext::encode(const std::vector<Complex> &slots, size_t level,
                    double scale) const
{
    const double s = scale > 0 ? scale : params_.delta();
    auto coeffs = encoder_.encode(slots, s);
    Plaintext pt{poly_from_signed(coeffs, active_mods(level)), s};
    tables_.to_eval(pt.poly);
    return pt;
}

std::vector<Complex>
CkksContext::decode(const Plaintext &pt) const
{
    RnsPoly poly = pt.poly;
    tables_.to_coeff(poly);
    return encoder_.decode(lift_centered(poly), pt.scale);
}

std::vector<double>
CkksContext::lift_centered(const RnsPoly &poly) const
{
    NEO_CHECK(poly.form() == PolyForm::coeff,
              "lift_centered requires coefficient form");
    const size_t n = poly.n();
    RnsBasis src(
        [&] {
            std::vector<u64> v(poly.limbs());
            for (size_t i = 0; i < poly.limbs(); ++i)
                v[i] = poly.modulus(i).value();
            return v;
        }());
    BaseConverter conv(src, decode_basis_);
    std::vector<u64> out(2 * n);
    conv.convert_exact(poly.data(), n, out.data());

    // CRT-combine the two 60-bit residues into a centered i128.
    const u64 d0 = decode_basis_[0].value();
    const u64 d1 = decode_basis_[1].value();
    const u128 prod = static_cast<u128>(d0) * d1;
    const u64 d0_inv_mod_d1 = decode_basis_[1].inv(d0 % d1);
    std::vector<double> vals(n);
    for (size_t l = 0; l < n; ++l) {
        u64 r0 = out[l];
        u64 r1 = out[n + l];
        // x = r0 + d0 * ((r1 - r0) * d0^{-1} mod d1)
        u64 diff = sub_mod(r1 % d1, r0 % d1, d1);
        u64 m = mul_mod(diff, d0_inv_mod_d1, d1);
        u128 x = static_cast<u128>(r0) + static_cast<u128>(d0) * m;
        i128 centered = x > prod / 2
                            ? static_cast<i128>(x) - static_cast<i128>(prod)
                            : static_cast<i128>(x);
        vals[l] = static_cast<double>(centered);
    }
    return vals;
}

RnsPoly
CkksContext::poly_from_signed(const std::vector<i64> &coeffs,
                              const std::vector<Modulus> &mods) const
{
    NEO_CHECK(coeffs.size() == params_.n, "coefficient count mismatch");
    RnsPoly poly(params_.n, mods, PolyForm::coeff);
    for (size_t i = 0; i < mods.size(); ++i) {
        const u64 q = mods[i].value();
        u64 *dst = poly.limb(i);
        for (size_t l = 0; l < coeffs.size(); ++l)
            dst[l] = from_centered(coeffs[l], q);
    }
    return poly;
}

} // namespace neo::ckks
