/**
 * @file
 * Binary serialization of polynomials, ciphertexts and key material —
 * what a deployment needs to ship evaluation keys to the GPU server
 * and ciphertexts between client and server.
 *
 * Format: little-endian, a 4-byte magic + version per object, with
 * the modulus chain embedded so a load against a mismatched context
 * fails loudly instead of corrupting silently.
 */
#pragma once

#include <iosfwd>

#include "ckks/context.h"
#include "ckks/keys.h"

namespace neo::ckks {

void save(std::ostream &os, const RnsPoly &poly);
RnsPoly load_poly(std::istream &is);

void save(std::ostream &os, const Ciphertext &ct);
Ciphertext load_ciphertext(std::istream &is);

void save(std::ostream &os, const SecretKey &sk);
SecretKey load_secret_key(std::istream &is);

void save(std::ostream &os, const EvalKey &evk);
EvalKey load_eval_key(std::istream &is);

/**
 * Validate that @p poly's modulus chain is a prefix of (or equal to)
 * the context's chains; throws std::invalid_argument otherwise.
 * Called by users after loading material from untrusted storage.
 */
void validate_against(const CkksContext &ctx, const RnsPoly &poly);

} // namespace neo::ckks
