/**
 * @file
 * Encryption and decryption (Eq. 1 of the paper, with the
 * m ≈ c0 + c1·s decryption convention).
 */
#pragma once

#include "ckks/context.h"
#include "ckks/keygen.h"
#include "ckks/keys.h"

namespace neo::ckks {

/**
 * A compressed symmetric ciphertext: c1 is a uniform polynomial fully
 * determined by a PRNG seed, so only (c0, seed) travels — half the
 * bytes of a full fresh ciphertext. The receiver re-expands c1.
 */
struct SeededCiphertext
{
    RnsPoly c0;
    u64 seed = 0;
    size_t level = 0;
    double scale = 1.0;
};

/** Public- and secret-key encryption. */
class Encryptor
{
  public:
    Encryptor(const CkksContext &ctx, u64 seed = 2);

    /// Public-key encryption of @p pt at @p pt's level.
    Ciphertext encrypt(const Plaintext &pt, const PublicKey &pk);

    /// Symmetric encryption (smaller noise; used by tests).
    Ciphertext encrypt_symmetric(const Plaintext &pt, const SecretKey &sk,
                                 const KeyGenerator &keygen);

    /// Symmetric encryption in seeded (compressed) form.
    SeededCiphertext encrypt_symmetric_seeded(const Plaintext &pt,
                                              const SecretKey &sk,
                                              const KeyGenerator &keygen,
                                              u64 a_seed);

    /// Re-expand a seeded ciphertext into a full one.
    Ciphertext expand(const SeededCiphertext &sct) const;

  private:
    /// Deterministic uniform eval-form polynomial from a seed.
    RnsPoly seeded_uniform(const std::vector<Modulus> &mods,
                           u64 seed) const;

    const CkksContext &ctx_;
    Rng rng_;
};

/** Decryption back to a plaintext. */
class Decryptor
{
  public:
    Decryptor(const CkksContext &ctx, const SecretKey &sk,
              const KeyGenerator &keygen);

    /// m = c0 + c1·s at the ciphertext's level.
    Plaintext decrypt(const Ciphertext &ct) const;

    /// Convenience: decrypt and decode to complex slots.
    std::vector<Complex> decrypt_decode(const Ciphertext &ct) const;

  private:
    const CkksContext &ctx_;
    const SecretKey &sk_;
    const KeyGenerator &keygen_;
};

} // namespace neo::ckks
