#include "ckks/keyswitch.h"

#include <algorithm>

#include "ckks/ks_precomp.h"
#include "common/check.h"
#include "common/workspace.h"
#include "obs/obs.h"
#include "rns/partition.h"

namespace neo::ckks {

namespace {

/// Copy the level-l active limbs (q_0..q_l, then P) out of a key part
/// stored over the full extended basis [q_0..q_L, p_0..p_{K-1}].
RnsPoly
slice_key_part(const RnsPoly &full, size_t level, size_t max_level,
               const std::vector<Modulus> &ext_mods)
{
    const size_t n = full.n();
    const size_t k_special = ext_mods.size() - (level + 1);
    RnsPoly out(n, ext_mods, PolyForm::eval);
    for (size_t i = 0; i <= level; ++i)
        std::copy(full.limb(i), full.limb(i) + n, out.limb(i));
    for (size_t k = 0; k < k_special; ++k) {
        std::copy(full.limb(max_level + 1 + k),
                  full.limb(max_level + 1 + k) + n,
                  out.limb(level + 1 + k));
    }
    return out;
}

/// Table 2 accounting counter ("ks.*" namespace): one relaxed load
/// when observability is off.
void
ks_count(std::string_view name, u64 delta)
{
    if (auto *r = obs::current())
        r->add(name, delta);
}

} // namespace

RnsPoly
mod_down(const RnsPoly &ext_poly, size_t level, const CkksContext &ctx,
         bool fuse, size_t devices)
{
    NEO_ASSERT(devices >= 1, "mod_down needs at least one device");
    NEO_ASSERT(ext_poly.form() == PolyForm::coeff,
               "mod_down expects coefficient form");
    obs::Span span("mod_down", obs::cat::stage);
    const size_t n = ext_poly.n();
    const size_t k_special = ctx.p_basis().size();
    NEO_ASSERT(ext_poly.limbs() == level + 1 + k_special,
               "mod_down shape mismatch");
    const auto &lv = ctx.precomp().level(level);

    // BConv the P-part down to the q primes (cached converter).
    Workspace::Frame frame;
    u64 *p_part = frame.alloc<u64>(k_special * n);
    for (size_t k = 0; k < k_special; ++k)
        std::copy(ext_poly.limb(level + 1 + k),
                  ext_poly.limb(level + 1 + k) + n, p_part + k * n);
    RnsPoly out(n, lv.active, PolyForm::coeff);

    if (fuse) {
        // Fused kernel: the (c - corr)·P⁻¹ fix rides in the BConv
        // epilogue. Per element this is convert_approx's accumulation
        // verbatim, followed immediately by the unfused fix's exact
        // operation sequence — the correction never touches DRAM and
        // the standalone fix pass (and its launch) disappears.
        obs::Span fused_span("moddown_fused", obs::cat::bconv);
        const BaseConverter &conv = *lv.p_to_q;
        if (auto *r = obs::current()) {
            r->add("bconv.converts");
            r->add("bconv.products",
                   static_cast<u64>(k_special) * (level + 1));
            r->add_value("bconv.bytes",
                         static_cast<double>((k_special + level + 1) * n) *
                             sizeof(u64));
            r->add("fuse.moddown_fix");
        }
        u64 *scaled = frame.alloc<u64>(k_special * n);
        conv.scale_inputs(p_part, n, scaled);
        // Device-major over the per-device Q-limb shards; identical
        // per-limb work in identical order within each limb.
        for (const auto &shard : make_even_partition(level + 1, devices)) {
        for (size_t j = shard.first; j < shard.first + shard.count; ++j) {
            const Modulus &tj = conv.to()[j];
            const Modulus &qj = lv.active[j];
            const u64 p_inv = lv.p_inv[j];
            const u64 ps = lv.p_inv_shoup[j];
            const u64 *src = ext_poly.limb(j);
            u64 *dst = out.limb(j);
            for (size_t l = 0; l < n; ++l) {
                u128 acc = 0;
                for (size_t i = 0; i < k_special; ++i) {
                    acc +=
                        static_cast<u128>(tj.reduce(scaled[i * n + l])) *
                        conv.factor(i, j);
                    acc = tj.reduce128(acc);
                }
                dst[l] = mul_shoup(qj.sub(src[l], static_cast<u64>(acc)),
                                   p_inv, ps, qj.value());
            }
        }
        }
        ks_count("ks.moddown_products", k_special * (level + 1));
        if (devices > 1)
            ks_count("ks.moddown.shards", devices);
        return out;
    }

    u64 *corr = frame.alloc<u64>((level + 1) * n);
    lv.p_to_q->convert_approx(p_part, n, corr);
    ks_count("ks.moddown_products", k_special * (level + 1));

    // (c - corr) * P^{-1} mod q_i — a standalone element-wise kernel
    // in the unfused mapping, hence its own span and pass counter.
    obs::Span fix_span("moddown_fix", obs::cat::stage);
    if (auto *r = obs::current())
        r->add("pass.moddown_fix");
    if (devices > 1)
        ks_count("ks.moddown.shards", devices);
    for (const auto &shard : make_even_partition(level + 1, devices)) {
    for (size_t i = shard.first; i < shard.first + shard.count; ++i) {
        const Modulus &qi = lv.active[i];
        const u64 p_inv = lv.p_inv[i];
        const u64 ps = lv.p_inv_shoup[i];
        const u64 *src = ext_poly.limb(i);
        const u64 *cr = corr + i * n;
        u64 *dst = out.limb(i);
        for (size_t l = 0; l < n; ++l)
            dst[l] = mul_shoup(qi.sub(src[l], cr[l]), p_inv, ps,
                               qi.value());
    }
    }
    return out;
}

std::pair<RnsPoly, RnsPoly>
keyswitch_hybrid(const RnsPoly &d2, const EvalKey &evk,
                 const CkksContext &ctx)
{
    NEO_ASSERT(d2.form() == PolyForm::eval, "expects eval form");
    obs::Span span("keyswitch_hybrid", obs::cat::op);
    const size_t n = d2.n();
    const size_t level = d2.limbs() - 1;
    obs::observe("work.keyswitch.limbs", static_cast<double>(level + 1));
    const auto &lv = ctx.precomp().level(level);
    const auto &ext_mods = lv.extended;
    const auto &groups = lv.groups;
    NEO_CHECK(groups.size() <= evk.digit_count(),
              "evaluation key has too few digits");

    // Level-restricted key parts, sliced once per (key, level).
    const auto &slices = evk.level_slices().get(level, [&] {
        EvalKey::LevelSlices s;
        s.parts.reserve(groups.size());
        for (size_t j = 0; j < groups.size(); ++j)
            s.parts.push_back(
                {slice_key_part(evk.parts[j][0], level, ctx.max_level(),
                                ext_mods),
                 slice_key_part(evk.parts[j][1], level, ctx.max_level(),
                                ext_mods)});
        return s;
    });

    RnsPoly d2c = d2;
    ctx.tables().to_coeff(d2c);
    ks_count("ks.intt_limbs", level + 1);

    RnsPoly acc0(n, ext_mods, PolyForm::eval);
    RnsPoly acc1(n, ext_mods, PolyForm::eval);

    for (size_t j = 0; j < groups.size(); ++j) {
        const auto &g = groups[j];
        // --- ModUp: approximate BConv of digit j to the other primes.
        // Per-digit frame so every digit reuses the same scratch block.
        Workspace::Frame frame;
        const size_t other_count = ext_mods.size() - g.count;
        u64 *converted = frame.alloc<u64>(other_count * n);
        lv.digits[j].to_other->convert_approx(d2c.limb(g.first), n,
                                              converted);
        ks_count("ks.bconv_products", g.count * other_count);

        RnsPoly up(n, ext_mods, PolyForm::coeff);
        size_t src = 0;
        for (size_t t = 0; t < ext_mods.size(); ++t) {
            if (t >= g.first && t < g.first + g.count) {
                std::copy(d2c.limb(t), d2c.limb(t) + n, up.limb(t));
            } else {
                std::copy(converted + src * n, converted + (src + 1) * n,
                          up.limb(t));
                ++src;
            }
        }
        ctx.tables().to_eval(up);
        ks_count("ks.ntt_limbs", ext_mods.size());

        // --- Inner product with this digit's (cached) key slice.
        acc0.add_product(up, slices.parts[j][0]);
        acc1.add_product(up, slices.parts[j][1]);
        ks_count("ks.ip_mul_limbs", 2 * ext_mods.size());
    }

    // --- ModDown.
    ctx.tables().to_coeff(acc0);
    ctx.tables().to_coeff(acc1);
    ks_count("ks.intt_limbs", 2 * ext_mods.size());
    RnsPoly k0 = mod_down(acc0, level, ctx);
    RnsPoly k1 = mod_down(acc1, level, ctx);
    ctx.tables().to_eval(k0);
    ctx.tables().to_eval(k1);
    ks_count("ks.ntt_limbs", 2 * (level + 1));
    return {std::move(k0), std::move(k1)};
}

std::pair<RnsPoly, RnsPoly>
keyswitch_klss(const RnsPoly &d2, const KlssEvalKey &evk,
               const CkksContext &ctx)
{
    NEO_ASSERT(d2.form() == PolyForm::eval, "expects eval form");
    obs::Span span("keyswitch_klss", obs::cat::op);
    const size_t n = d2.n();
    const size_t level = d2.limbs() - 1;
    obs::observe("work.keyswitch.limbs", static_cast<double>(level + 1));
    const size_t k_special = ctx.p_basis().size();
    const size_t alpha_p = ctx.alpha_prime();
    const auto &lv = ctx.precomp().level(level);
    const auto &ext_mods = lv.extended;
    const auto &groups = lv.groups;
    const auto &key_partition = ctx.klss_key_partition();
    // Key digits covering the active [P, q_0..q_l] prefix.
    const size_t beta_tilde = lv.beta_tilde;
    NEO_ASSERT(beta_tilde <= evk.beta_tilde_max, "key digit overflow");
    NEO_CHECK(groups.size() <= evk.beta_max,
              "evaluation key has too few digits");

    RnsPoly d2c = d2;
    ctx.tables().to_coeff(d2c);
    ks_count("ks.intt_limbs", level + 1);

    // --- Mod Up: exact lift of each ciphertext digit into T.
    std::vector<RnsPoly> digits_t;
    digits_t.reserve(groups.size());
    for (size_t j = 0; j < groups.size(); ++j) {
        const auto &g = groups[j];
        RnsPoly dt(n, ctx.t_basis().mods(), PolyForm::coeff);
        lv.digits[j].to_t->convert_exact(d2c.limb(g.first), n,
                                         dt.data());
        ks_count("ks.bconv_products", g.count * alpha_p);
        // --- NTT over T.
        ctx.t_tables().to_eval(dt);
        ks_count("ks.ntt_limbs", alpha_p);
        digits_t.push_back(std::move(dt));
    }

    // --- IP: S_i[c] = Σ_j digit_j * key[i][j][c] over R_T.
    std::vector<std::array<RnsPoly, 2>> s(beta_tilde);
    for (size_t i = 0; i < beta_tilde; ++i) {
        for (size_t c = 0; c < 2; ++c) {
            s[i][c] = RnsPoly(n, ctx.t_basis().mods(), PolyForm::eval);
            for (size_t j = 0; j < groups.size(); ++j) {
                s[i][c].add_product(digits_t[j], evk.part(i, j, c));
                ks_count("ks.ip_mul_limbs", alpha_p);
            }
        }
    }

    // --- INTT over T.
    for (size_t i = 0; i < beta_tilde; ++i) {
        for (size_t c = 0; c < 2; ++c) {
            ctx.t_tables().to_coeff(s[i][c]);
            ks_count("ks.intt_limbs", alpha_p);
        }
    }

    // --- Recover Limbs: each output prime reads its own key-digit
    // group's accumulator (the RNS gadget is 1 there, 0 elsewhere).
    RnsPoly acc0(n, ext_mods, PolyForm::coeff);
    RnsPoly acc1(n, ext_mods, PolyForm::coeff);
    for (size_t pq_idx = 0; pq_idx < level + 1 + k_special; ++pq_idx) {
        // Storage index in [q_0..q_l, P] layout.
        const size_t store_idx = pq_idx < k_special
                                     ? level + 1 + pq_idx
                                     : pq_idx - k_special;
        const size_t grp = group_of(key_partition, pq_idx);
        NEO_ASSERT(grp < beta_tilde, "recover group out of range");
        const BaseConverter &conv = ctx.precomp().t_to_pq(pq_idx);
        conv.convert_exact(s[grp][0].data(), n, acc0.limb(store_idx));
        conv.convert_exact(s[grp][1].data(), n, acc1.limb(store_idx));
        ks_count("ks.recover_products", 2 * alpha_p);
    }

    // --- NTT over Q·P, then ModDown (shared with hybrid).
    RnsPoly k0 = mod_down(acc0, level, ctx);
    RnsPoly k1 = mod_down(acc1, level, ctx);
    ctx.tables().to_eval(k0);
    ctx.tables().to_eval(k1);
    ks_count("ks.ntt_limbs", 2 * (level + 1));
    return {std::move(k0), std::move(k1)};
}

} // namespace neo::ckks
