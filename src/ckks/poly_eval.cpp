#include "ckks/poly_eval.h"

#include <cmath>
#include <functional>
#include <map>

#include "common/check.h"
#include "common/math_util.h"

namespace neo::ckks {

PolyEvaluator::PolyEvaluator(const CkksContext &ctx, const Evaluator &ev,
                             const EvalKeyBundle &keys)
    : ctx_(ctx), ev_(ev), keys_(keys)
{
    // Nominal scale ≈ the prime size, so scale²/q ≈ scale and the
    // post-rescale snap absorbs only the prime's distance from 2^w.
    nominal_scale_ = static_cast<double>(ctx.q_basis()[1].value());
}

Ciphertext
PolyEvaluator::mul_stable(const Ciphertext &a, const Ciphertext &b) const
{
    const size_t level = std::min(a.level, b.level);
    Ciphertext x = ev_.mod_switch_to(a, level);
    Ciphertext y = ev_.mod_switch_to(b, level);
    Ciphertext p = ev_.rescale(ev_.mul(x, y, keys_));
    p.scale = nominal_scale_;
    return p;
}

Ciphertext
PolyEvaluator::combine(std::vector<Ciphertext> terms,
                       const std::vector<double> &weights,
                       double constant) const
{
    NEO_ASSERT(terms.size() == weights.size(), "weight count mismatch");
    // Weight each term, then align levels and sum.
    std::vector<Ciphertext> weighted;
    const size_t slots = ctx_.encoder().slot_count();
    for (size_t i = 0; i < terms.size(); ++i) {
        if (std::abs(weights[i]) < 1e-13)
            continue;
        std::vector<Complex> w(slots, Complex(weights[i], 0));
        Ciphertext t = ev_.rescale(ev_.mul_plain(
            terms[i], ctx_.encode(w, terms[i].level, nominal_scale_)));
        t.scale = nominal_scale_;
        weighted.push_back(std::move(t));
    }
    NEO_CHECK(!weighted.empty(), "polynomial has no non-constant terms");
    size_t min_level = weighted.front().level;
    for (const auto &t : weighted)
        min_level = std::min(min_level, t.level);
    Ciphertext acc = ev_.mod_switch_to(weighted.front(), min_level);
    for (size_t i = 1; i < weighted.size(); ++i)
        acc = ev_.add(acc, ev_.mod_switch_to(weighted[i], min_level));
    if (std::abs(constant) > 1e-13) {
        std::vector<Complex> c(slots, Complex(constant, 0));
        acc = ev_.add_plain(acc, ctx_.encode(c, acc.level, acc.scale));
    }
    return acc;
}

Ciphertext
PolyEvaluator::evaluate_power(const Ciphertext &x,
                              const std::vector<double> &coeffs) const
{
    NEO_CHECK(coeffs.size() >= 2, "need degree >= 1");
    const size_t deg = coeffs.size() - 1;

    // Build x^k for every k via the balanced binary split
    // x^k = x^hi · x^{k-hi} (hi = largest power of two below k), which
    // keeps the multiplicative depth at ceil(log2 deg).
    std::map<size_t, Ciphertext> pw;
    pw.emplace(1, x);
    pw.at(1).scale = nominal_scale_;
    for (size_t k = 2; k <= deg; ++k) {
        size_t hi = 1;
        while (hi * 2 < k)
            hi <<= 1;
        pw.emplace(k, mul_stable(pw.at(hi), pw.at(k - hi)));
    }

    std::vector<Ciphertext> terms;
    std::vector<double> weights;
    for (size_t k = 1; k <= deg; ++k) {
        if (std::abs(coeffs[k]) >= 1e-13) {
            terms.push_back(pw.at(k));
            weights.push_back(coeffs[k]);
        }
    }
    return combine(std::move(terms), weights, coeffs[0]);
}

Ciphertext
PolyEvaluator::evaluate_chebyshev(const Ciphertext &x,
                                  const std::vector<double> &coeffs) const
{
    NEO_CHECK(coeffs.size() >= 2, "need degree >= 1");
    const size_t deg = coeffs.size() - 1;
    const size_t slots = ctx_.encoder().slot_count();

    std::map<size_t, Ciphertext> cheb;
    cheb.emplace(1, x);
    cheb.at(1).scale = nominal_scale_;

    // T_{a+b} = 2 T_a T_b - T_{a-b}, built for every needed index.
    std::function<const Ciphertext &(size_t)> get =
        [&](size_t k) -> const Ciphertext & {
        auto it = cheb.find(k);
        if (it != cheb.end())
            return it->second;
        const size_t a = (k + 1) / 2;
        const size_t b = k / 2;
        const Ciphertext &ta = get(a);
        const Ciphertext &tb = get(b);
        Ciphertext prod = mul_stable(ta, tb);
        Ciphertext two = ev_.add(prod, prod);
        if (a == b) {
            // T_{2a} = 2 T_a² - T_0, T_0 = 1.
            std::vector<Complex> one(slots, Complex(1, 0));
            two = ev_.add_plain(
                two, [&] {
                    Plaintext p =
                        ctx_.encode(one, two.level, two.scale);
                    p.poly.negate_inplace();
                    return p;
                }());
        } else {
            // a - b = 1: subtract T_1 = x.
            Ciphertext x1 = ev_.mod_switch_to(cheb.at(1), two.level);
            x1.scale = two.scale;
            two = ev_.sub(two, x1);
        }
        return cheb.emplace(k, std::move(two)).first->second;
    };

    std::vector<Ciphertext> terms;
    std::vector<double> weights;
    for (size_t k = 1; k <= deg; ++k) {
        if (std::abs(coeffs[k]) >= 1e-13) {
            terms.push_back(get(k));
            weights.push_back(coeffs[k]);
        }
    }
    return combine(std::move(terms), weights, coeffs[0]);
}

std::vector<double>
PolyEvaluator::chebyshev_fit(double (*f)(double, void *), void *arg,
                             int degree)
{
    const int m = degree + 1;
    std::vector<double> fx(m);
    for (int k = 0; k < m; ++k) {
        double theta = M_PI * (k + 0.5) / m;
        fx[k] = f(std::cos(theta), arg);
    }
    std::vector<double> c(m);
    for (int j = 0; j < m; ++j) {
        double s = 0;
        for (int k = 0; k < m; ++k)
            s += fx[k] * std::cos(M_PI * j * (k + 0.5) / m);
        c[j] = (j == 0 ? 1.0 : 2.0) * s / m;
    }
    return c;
}

} // namespace neo::ckks
