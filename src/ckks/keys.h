/**
 * @file
 * Key material and ciphertext types.
 *
 * Decryption convention: m ≈ c0 + c1·s. A hybrid evaluation key for a
 * target key s' is the digit vector evk_j = (b_j, a_j) over the
 * extended basis Q·P with b_j = -a_j·s + e_j + [P]·g_j·s', where the
 * RNS gadget g_j is 1 on the primes of digit group j and 0 elsewhere.
 *
 * A KLSS evaluation key is the same material further decomposed into
 * β̃ key digits over the [P, Q] prime ordering and lifted exactly into
 * the auxiliary base T (§2.2) — two sets of β·β̃·α' polynomial limbs,
 * stored NTT-transformed over T, exactly as the paper describes the
 * IP operand layout.
 */
#pragma once

#include <array>
#include <map>
#include <optional>
#include <vector>

#include "common/mutex.h"
#include "common/static_operand.h"
#include "poly/rns_poly.h"

namespace neo::ckks {

namespace detail {

/**
 * Thread-safe lazy map level → V with stable references (std::map
 * nodes never move). Copying a key copies its material but not the
 * cache — the copy rebuilds lazily, which keeps serialization
 * round-trips and container reallocation correct for free.
 */
template <class V> class PerLevelCache
{
  public:
    PerLevelCache() = default;
    PerLevelCache(const PerLevelCache &) {}
    PerLevelCache &operator=(const PerLevelCache &) { return *this; }

    /// Return the cached value for @p level, building it on first use.
    template <class Build>
    const V &
    get(size_t level, Build &&build) const
    {
        LockGuard lock(mu_);
        auto it = map_.find(level);
        if (it == map_.end())
            it = map_.emplace(level, build()).first;
        return it->second;
    }

  private:
    mutable Mutex mu_;
    /// Node handles are stable, so the reference returned by get()
    /// stays valid after the lock drops; published values are
    /// immutable.
    mutable std::map<size_t, V> map_ NEO_GUARDED_BY(mu_);
};

} // namespace detail

/** Ternary secret key, stored as signed integer coefficients. */
struct SecretKey
{
    std::vector<i64> coeffs;
};

/** Encryption key (b, a) = (-a·s + e, a) over the full Q chain. */
struct PublicKey
{
    RnsPoly b, a;
};

/** Hybrid key-switching key: β_max digit pairs over Q·P, eval form. */
struct EvalKey
{
    std::vector<std::array<RnsPoly, 2>> parts;

    size_t digit_count() const { return parts.size(); }

    /// Key parts restricted to the limbs active at one level, one
    /// pair per ciphertext digit. Built once per (key, level) by the
    /// key-switch path instead of copied out on every call.
    struct LevelSlices
    {
        std::vector<std::array<RnsPoly, 2>> parts;
    };

    detail::PerLevelCache<LevelSlices> &
    level_slices() const
    {
        return slices_;
    }

  private:
    mutable detail::PerLevelCache<LevelSlices> slices_;
};

/** KLSS key-switching key: key digits lifted into R_T (NTT form). */
struct KlssEvalKey
{
    size_t beta_max = 0;       ///< ciphertext digits covered (j index)
    size_t beta_tilde_max = 0; ///< key digits (i index)
    /// parts[(i*beta_max + j)*2 + c], each an RnsPoly over T.
    std::vector<RnsPoly> parts;

    const RnsPoly &
    part(size_t i, size_t j, size_t c) const
    {
        return parts[(i * beta_max + j) * 2 + c];
    }

    RnsPoly &
    part(size_t i, size_t j, size_t c)
    {
        return parts[(i * beta_max + j) * 2 + c];
    }

    /// Flattened, reordered IP key tensors for one level — the exact
    /// B-operand layout the pipeline's IpKernel consumes. Pinned as
    /// static operands so the GEMM plane cache may slice them once.
    struct IpOperands
    {
        size_t beta = 0;       ///< ciphertext digits at this level
        size_t beta_tilde = 0; ///< key digits at this level
        /// reordered[c]: [k][l][i][j] over (T limb, coeff, i, j).
        std::array<std::vector<u64>, 2> reordered;
        std::array<StaticPin, 2> pins;
    };

    detail::PerLevelCache<IpOperands> &
    ip_operands() const
    {
        return ip_cache_;
    }

  private:
    mutable detail::PerLevelCache<IpOperands> ip_cache_;
};

/** Rotation / conjugation keys indexed by Galois element. */
struct GaloisKeys
{
    std::map<u64, EvalKey> hybrid;
    std::map<u64, KlssEvalKey> klss;
};

/**
 * All evaluation-key material one Evaluator needs, owned together:
 * the relinearization key, its optional KLSS form, and the Galois
 * keys. Evaluator::mul/rotate/conjugate take this bundle instead of
 * loose (rlk, klss_rlk*, gk) arguments, so the KLSS pointer plumbing
 * disappears and key ownership has one home. Build one with
 * KeyGenerator::eval_key_bundle.
 */
struct EvalKeyBundle
{
    EvalKey rlk;                        ///< relinearization key
    std::optional<KlssEvalKey> klss_rlk;///< set when KLSS mul is wanted
    GaloisKeys galois;                  ///< rotation/conjugation keys

    /// KLSS relin key or nullptr, in the pointer form keyswitch takes.
    const KlssEvalKey *
    klss() const
    {
        return klss_rlk.has_value() ? &*klss_rlk : nullptr;
    }
};

/** A CKKS ciphertext (c0, c1) in eval form over q_0..q_level. */
struct Ciphertext
{
    RnsPoly c0, c1;
    size_t level = 0;
    double scale = 1.0;
};

} // namespace neo::ckks
