#include "ckks/linear_transform.h"

#include "ckks/hoisting.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace neo::ckks {

LinearTransform::LinearTransform(std::vector<Complex> matrix, size_t slots)
    : m_(std::move(matrix)), slots_(slots)
{
    NEO_CHECK(m_.size() == slots * slots, "matrix shape mismatch");
    giant_ = 1;
    while (giant_ * giant_ < slots_)
        giant_ <<= 1;
}

std::vector<Complex>
LinearTransform::diagonal(size_t d) const
{
    std::vector<Complex> v(slots_);
    for (size_t i = 0; i < slots_; ++i)
        v[i] = m_[i * slots_ + (i + d) % slots_];
    return v;
}

bool
LinearTransform::diagonal_nonzero(size_t d) const
{
    for (size_t i = 0; i < slots_; ++i) {
        if (std::abs(m_[i * slots_ + (i + d) % slots_]) > 1e-12)
            return true;
    }
    return false;
}

std::vector<i64>
LinearTransform::required_rotations() const
{
    std::vector<i64> rots;
    for (size_t d = 1; d < slots_; ++d) {
        if (diagonal_nonzero(d))
            rots.push_back(static_cast<i64>(d));
    }
    return rots;
}

std::vector<i64>
LinearTransform::required_rotations_bsgs() const
{
    std::vector<i64> rots;
    for (size_t j = 1; j < giant_; ++j)
        rots.push_back(static_cast<i64>(j));
    for (size_t i = 1; i * giant_ < slots_; ++i)
        rots.push_back(static_cast<i64>(i * giant_));
    return rots;
}

Ciphertext
LinearTransform::apply(const Evaluator &ev, const CkksContext &ctx,
                       const Ciphertext &ct, const EvalKeyBundle &keys) const
{
    NEO_CHECK(slots_ == ctx.encoder().slot_count(), "slot count mismatch");
    Ciphertext acc;
    bool first = true;
    for (size_t d = 0; d < slots_; ++d) {
        if (!diagonal_nonzero(d))
            continue;
        Ciphertext rotated =
            d == 0 ? ct : ev.rotate(ct, static_cast<i64>(d), keys);
        Plaintext diag = ctx.encode(diagonal(d), ct.level);
        Ciphertext term = ev.mul_plain(rotated, diag);
        if (first) {
            acc = std::move(term);
            first = false;
        } else {
            acc = ev.add(acc, term);
        }
    }
    NEO_CHECK(!first, "zero matrix");
    return ev.rescale(acc);
}

Ciphertext
LinearTransform::apply_bsgs(const Evaluator &ev, const CkksContext &ctx,
                            const Ciphertext &ct, const EvalKeyBundle &keys,
                            bool hoist) const
{
    NEO_CHECK(slots_ == ctx.encoder().slot_count(), "slot count mismatch");
    const size_t g = giant_;
    const size_t n1 = ceil_div(slots_, g);

    // Baby rotations, computed once — optionally with a single shared
    // ModUp (Halevi-Shoup hoisting).
    std::vector<Ciphertext> baby(g);
    baby[0] = ct;
    if (hoist && g > 1) {
        std::vector<i64> steps;
        for (size_t j = 1; j < g; ++j)
            steps.push_back(static_cast<i64>(j));
        auto rotated = rotate_hoisted(ct, steps, keys.galois, ctx);
        for (size_t j = 1; j < g; ++j)
            baby[j] = std::move(rotated[j - 1]);
    } else {
        for (size_t j = 1; j < g; ++j)
            baby[j] = ev.rotate(ct, static_cast<i64>(j), keys);
    }

    Ciphertext acc;
    bool first = true;
    for (size_t i = 0; i < n1; ++i) {
        // Inner sum over baby steps with pre-rotated diagonals.
        Ciphertext inner;
        bool inner_first = true;
        for (size_t j = 0; j < g; ++j) {
            const size_t d = i * g + j;
            if (d >= slots_ || !diagonal_nonzero(d))
                continue;
            auto diag = diagonal(d);
            // rot_{-i*g}: diag'[m] = diag[(m - i*g) mod slots].
            std::vector<Complex> shifted(slots_);
            for (size_t mpos = 0; mpos < slots_; ++mpos)
                shifted[mpos] =
                    diag[(mpos + slots_ - (i * g) % slots_) % slots_];
            Ciphertext term = ev.mul_plain(
                baby[j], ctx.encode(shifted, ct.level));
            if (inner_first) {
                inner = std::move(term);
                inner_first = false;
            } else {
                inner = ev.add(inner, term);
            }
        }
        if (inner_first)
            continue;
        if (i != 0)
            inner = ev.rotate(inner, static_cast<i64>(i * g), keys);
        if (first) {
            acc = std::move(inner);
            first = false;
        } else {
            acc = ev.add(acc, inner);
        }
    }
    NEO_CHECK(!first, "zero matrix");
    return ev.rescale(acc);
}

std::vector<Complex>
LinearTransform::apply_plain(const std::vector<Complex> &z) const
{
    NEO_CHECK(z.size() == slots_, "vector size mismatch");
    std::vector<Complex> y(slots_, Complex(0, 0));
    for (size_t i = 0; i < slots_; ++i)
        for (size_t j = 0; j < slots_; ++j)
            y[i] += m_[i * slots_ + j] * z[j];
    return y;
}

} // namespace neo::ckks
