/**
 * @file
 * RLWE security estimation for Table 4's λ column.
 *
 * Uses the homomorphicencryption.org standard's maximum ciphertext
 * modulus widths for 128-bit classical security with ternary secrets,
 * linearly interpolated/extrapolated in log Q — the same first-order
 * rule of thumb parameter tables are built from. λ scales roughly
 * inversely with log(Q·P) at fixed N.
 */
#pragma once

#include "ckks/params.h"

namespace neo::ckks {

/// Total modulus width (bits) of Q·P for a parameter set.
double total_modulus_bits(const CkksParams &params);

/**
 * Maximum log2(Q·P) giving 128-bit classical security at ring degree
 * @p n (ternary secret), per the HE standard table.
 */
double max_modulus_bits_128(size_t n);

/// Estimated security level λ for a parameter set.
double estimate_security(const CkksParams &params);

} // namespace neo::ckks
