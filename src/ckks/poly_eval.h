/**
 * @file
 * Homomorphic polynomial evaluation with logarithmic multiplicative
 * depth — the engine behind EvalMod (bootstrapping's sine
 * approximation) and polynomial activation functions (the ResNet
 * ReLU and HELR sigmoid workloads).
 *
 * Power basis:      x^{a+b} = x^a · x^b        (binary decomposition)
 * Chebyshev basis:  T_{a+b} = 2·T_a·T_b − T_{a−b}  (stable recurrence)
 *
 * Scale management uses the "stable scale" discipline: the nominal
 * scale Δ is a prime-sized power of two and every rescale is followed
 * by snapping the bookkeeping scale back to Δ; because the chain's
 * primes are within ~10⁻⁵ of 2^WordSize, the absorbed relative error
 * is negligible next to the approximation error being evaluated.
 */
#pragma once

#include <vector>

#include "ckks/evaluator.h"

namespace neo::ckks {

/** Fit and evaluate polynomials on ciphertexts. */
class PolyEvaluator
{
  public:
    /**
     * @param keys bundle whose relin key (and KLSS form, when the
     *        evaluator's method is KeySwitchMethod::klss) backs every
     *        ciphertext-ciphertext multiply. Must outlive this object.
     */
    PolyEvaluator(const CkksContext &ctx, const Evaluator &ev,
                  const EvalKeyBundle &keys);

    /**
     * Evaluate Σ_k coeffs[k] · x^k. Multiplicative depth is
     * ceil(log2(deg)) + 1; the input's scale must be the nominal
     * scale (fresh encodings qualify).
     */
    Ciphertext evaluate_power(const Ciphertext &x,
                              const std::vector<double> &coeffs) const;

    /**
     * Evaluate Σ_k coeffs[k] · T_k(x) for |x| ≤ 1 via the Chebyshev
     * product recurrence (numerically stable at high degree).
     */
    Ciphertext evaluate_chebyshev(const Ciphertext &x,
                                  const std::vector<double> &coeffs) const;

    /**
     * Chebyshev interpolation coefficients of f on [-1, 1] at degree
     * @p degree (Clenshaw–Curtis style fit, numeric).
     */
    static std::vector<double> chebyshev_fit(double (*f)(double, void *),
                                             void *arg, int degree);

  private:
    /// x*y, rescaled, with the scale snapped back to nominal.
    Ciphertext mul_stable(const Ciphertext &a, const Ciphertext &b) const;
    /// Match levels of a set of ciphertexts and sum scaled terms.
    Ciphertext combine(std::vector<Ciphertext> terms,
                       const std::vector<double> &weights,
                       double constant) const;

    const CkksContext &ctx_;
    const Evaluator &ev_;
    const EvalKeyBundle &keys_;
    double nominal_scale_;
};

} // namespace neo::ckks
