#include "ckks/keygen.h"

#include <algorithm>

#include "common/check.h"

namespace neo::ckks {

KeyGenerator::KeyGenerator(const CkksContext &ctx, u64 seed)
    : ctx_(ctx), rng_(seed)
{
}

SecretKey
KeyGenerator::secret_key()
{
    SecretKey sk;
    sk.coeffs.resize(ctx_.n());
    for (auto &c : sk.coeffs) {
        switch (rng_.next() & 3) {
          case 0:
            c = 1;
            break;
          case 1:
            c = -1;
            break;
          default:
            c = 0;
        }
    }
    return sk;
}

SecretKey
KeyGenerator::secret_key_sparse(size_t h)
{
    NEO_CHECK(h > 0 && h <= ctx_.n(), "bad Hamming weight");
    SecretKey sk;
    sk.coeffs.assign(ctx_.n(), 0);
    size_t placed = 0;
    while (placed < h) {
        size_t pos = rng_.uniform(ctx_.n());
        if (sk.coeffs[pos] != 0)
            continue;
        sk.coeffs[pos] = (rng_.next() & 1) ? 1 : -1;
        ++placed;
    }
    return sk;
}

RnsPoly
KeyGenerator::expand_secret(const SecretKey &sk,
                            const std::vector<Modulus> &mods) const
{
    RnsPoly s = ctx_.poly_from_signed(sk.coeffs, mods);
    ctx_.tables().to_eval(s);
    return s;
}

namespace {

/// Uniform polynomial over @p mods directly in eval form.
RnsPoly
uniform_poly(size_t n, const std::vector<Modulus> &mods, Rng &rng)
{
    RnsPoly a(n, mods, PolyForm::eval);
    for (size_t i = 0; i < mods.size(); ++i) {
        u64 *dst = a.limb(i);
        for (size_t l = 0; l < n; ++l)
            dst[l] = rng.uniform(mods[i].value());
    }
    return a;
}

} // namespace

PublicKey
KeyGenerator::public_key(const SecretKey &sk)
{
    const auto mods = ctx_.active_mods(ctx_.max_level());
    RnsPoly s = expand_secret(sk, mods);
    RnsPoly a = uniform_poly(ctx_.n(), mods, rng_);

    // e in coefficient form, then NTT.
    std::vector<i64> e(ctx_.n());
    for (auto &x : e)
        x = to_centered(rng_.gaussian(1ULL << 40), 1ULL << 40);
    RnsPoly ep = ctx_.poly_from_signed(e, mods);
    ctx_.tables().to_eval(ep);

    // b = -a*s + e.
    RnsPoly b = a;
    b.mul_inplace(s);
    b.negate_inplace();
    b.add_inplace(ep);
    return PublicKey{std::move(b), std::move(a)};
}

EvalKey
KeyGenerator::make_eval_key(const SecretKey &sk, const RnsPoly &s_prime)
{
    const size_t top = ctx_.max_level();
    const auto ext_mods = ctx_.extended_mods(top);
    const size_t n = ctx_.n();
    RnsPoly s = expand_secret(sk, ext_mods);

    const auto groups = ctx_.digit_partition(top);
    EvalKey evk;
    evk.parts.reserve(groups.size());
    for (const auto &g : groups) {
        RnsPoly a = uniform_poly(n, ext_mods, rng_);
        std::vector<i64> e(n);
        for (auto &x : e)
            x = to_centered(rng_.gaussian(1ULL << 40), 1ULL << 40);
        RnsPoly b = ctx_.poly_from_signed(e, ext_mods);
        ctx_.tables().to_eval(b);
        // b = e - a*s ...
        RnsPoly as = a;
        as.mul_inplace(s);
        b.sub_inplace(as);
        // ... + [P]*s' on the primes of this digit group.
        for (size_t t = g.first; t < g.first + g.count; ++t) {
            const Modulus &qt = ext_mods[t];
            const u64 p_mod = ctx_.p_basis().product_mod(qt);
            const u64 ps = shoup_precompute(p_mod, qt.value());
            u64 *dst = b.limb(t);
            const u64 *sp = s_prime.limb(t);
            for (size_t l = 0; l < n; ++l)
                dst[l] = qt.add(dst[l],
                                mul_shoup(sp[l], p_mod, ps, qt.value()));
        }
        evk.parts.push_back({std::move(b), std::move(a)});
    }
    return evk;
}

EvalKey
KeyGenerator::relin_key(const SecretKey &sk)
{
    const auto ext_mods = ctx_.extended_mods(ctx_.max_level());
    RnsPoly s = expand_secret(sk, ext_mods);
    RnsPoly s2 = s;
    s2.mul_inplace(s);
    return make_eval_key(sk, s2);
}

EvalKey
KeyGenerator::galois_key(const SecretKey &sk, u64 g)
{
    const auto ext_mods = ctx_.extended_mods(ctx_.max_level());
    // σ_g(s) on the integer coefficients, then expand.
    const size_t n = ctx_.n();
    std::vector<i64> rotated(n, 0);
    for (size_t i = 0; i < n; ++i) {
        u64 j = static_cast<u64>((static_cast<u128>(i) * g) % (2 * n));
        if (j < n)
            rotated[j] = sk.coeffs[i];
        else
            rotated[j - n] = -sk.coeffs[i];
    }
    RnsPoly sp = ctx_.poly_from_signed(rotated, ext_mods);
    ctx_.tables().to_eval(sp);
    return make_eval_key(sk, sp);
}

GaloisKeys
KeyGenerator::galois_keys(const SecretKey &sk, const std::vector<i64> &steps,
                          bool conjugate, bool with_klss)
{
    GaloisKeys keys;
    auto add = [&](u64 g) {
        if (keys.hybrid.count(g))
            return;
        EvalKey k = galois_key(sk, g);
        if (with_klss)
            keys.klss.emplace(g, to_klss(k));
        keys.hybrid.emplace(g, std::move(k));
    };
    for (i64 s : steps)
        add(ctx_.encoder().galois_element(s));
    if (conjugate)
        add(ctx_.encoder().galois_element(0, true));
    return keys;
}

EvalKeyBundle
KeyGenerator::eval_key_bundle(const SecretKey &sk,
                              const std::vector<i64> &steps, bool conjugate,
                              bool with_klss)
{
    EvalKeyBundle bundle;
    bundle.rlk = relin_key(sk);
    if (with_klss)
        bundle.klss_rlk = to_klss(bundle.rlk);
    bundle.galois = galois_keys(sk, steps, conjugate, with_klss);
    return bundle;
}

KlssEvalKey
KeyGenerator::to_klss(const EvalKey &evk) const
{
    NEO_CHECK(ctx_.params().klss.enabled(), "KLSS not configured");
    const size_t n = ctx_.n();
    const size_t k_special = ctx_.p_basis().size();
    const size_t top = ctx_.max_level();
    const auto &partition = ctx_.klss_key_partition();

    KlssEvalKey out;
    out.beta_max = evk.parts.size();
    out.beta_tilde_max = partition.size();
    out.parts.reserve(out.beta_max * out.beta_tilde_max * 2);

    for (size_t i = 0; i < out.beta_tilde_max; ++i) {
        const auto &grp = partition[i];
        // Group primes in the [P, Q] ordering.
        std::vector<u64> grp_primes;
        for (size_t t = grp.first; t < grp.first + grp.count; ++t)
            grp_primes.push_back(ctx_.pq_ordered_mod(t).value());
        RnsBasis grp_basis(grp_primes);
        BaseConverter conv(grp_basis, ctx_.t_basis());

        for (size_t j = 0; j < out.beta_max; ++j) {
            for (size_t c = 0; c < 2; ++c) {
                // Gather this group's limbs of evk (coeff form).
                RnsPoly limb_src = evk.parts[j][c];
                ctx_.tables().to_coeff(limb_src);
                std::vector<u64> in(grp.count * n);
                for (size_t t = 0; t < grp.count; ++t) {
                    const size_t pq_idx = grp.first + t;
                    // [P,Q] index -> storage index in extended basis
                    // [q_0..q_L, p_0..p_{K-1}].
                    const size_t store_idx =
                        pq_idx < k_special ? top + 1 + pq_idx
                                           : pq_idx - k_special;
                    std::copy(limb_src.limb(store_idx),
                              limb_src.limb(store_idx) + n,
                              in.begin() + t * n);
                }
                RnsPoly digit(n, ctx_.t_basis().mods(), PolyForm::coeff);
                conv.convert_exact(in.data(), n, digit.data());
                ctx_.t_tables().to_eval(digit);
                out.parts.push_back(std::move(digit));
            }
        }
    }
    // Reindex: we filled in (i, j, c) order matching part().
    return out;
}

} // namespace neo::ckks
