#include "ckks/serialize.h"

#include <istream>
#include <ostream>

#include "common/check.h"

namespace neo::ckks {

namespace {

constexpr u32 kPolyMagic = 0x4e504f4c;   // "NPOL"
constexpr u32 kCtMagic = 0x4e435458;     // "NCTX"
constexpr u32 kSkMagic = 0x4e53454b;     // "NSEK"
constexpr u32 kEvkMagic = 0x4e45564b;    // "NEVK"
constexpr u32 kVersion = 1;

template <typename T>
void
write_pod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
read_pod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    NEO_CHECK(is.good(), "truncated stream");
    return v;
}

void
expect_header(std::istream &is, u32 magic)
{
    NEO_CHECK(read_pod<u32>(is) == magic, "bad magic");
    NEO_CHECK(read_pod<u32>(is) == kVersion, "unsupported version");
}

} // namespace

void
save(std::ostream &os, const RnsPoly &poly)
{
    write_pod(os, kPolyMagic);
    write_pod(os, kVersion);
    write_pod<u64>(os, poly.n());
    write_pod<u64>(os, poly.limbs());
    write_pod<u8>(os, poly.form() == PolyForm::eval ? 1 : 0);
    for (size_t i = 0; i < poly.limbs(); ++i)
        write_pod<u64>(os, poly.modulus(i).value());
    os.write(reinterpret_cast<const char *>(poly.data()),
             static_cast<std::streamsize>(poly.limbs() * poly.n() *
                                          sizeof(u64)));
}

RnsPoly
load_poly(std::istream &is)
{
    expect_header(is, kPolyMagic);
    const u64 n = read_pod<u64>(is);
    const u64 limbs = read_pod<u64>(is);
    NEO_CHECK(n >= 4 && n <= (1ULL << 20) && is_pow2(n), "bad degree");
    NEO_CHECK(limbs >= 1 && limbs <= 4096, "bad limb count");
    const u8 form = read_pod<u8>(is);
    std::vector<Modulus> mods;
    mods.reserve(limbs);
    for (u64 i = 0; i < limbs; ++i)
        mods.emplace_back(read_pod<u64>(is));
    RnsPoly poly(n, mods,
                 form ? PolyForm::eval : PolyForm::coeff);
    is.read(reinterpret_cast<char *>(poly.data()),
            static_cast<std::streamsize>(limbs * n * sizeof(u64)));
    NEO_CHECK(is.good(), "truncated polynomial data");
    for (size_t i = 0; i < poly.limbs(); ++i) {
        const u64 q = poly.modulus(i).value();
        const u64 *limb = poly.limb(i);
        for (size_t l = 0; l < n; ++l)
            NEO_CHECK(limb[l] < q, "residue out of range");
    }
    return poly;
}

void
save(std::ostream &os, const Ciphertext &ct)
{
    write_pod(os, kCtMagic);
    write_pod(os, kVersion);
    write_pod<u64>(os, ct.level);
    write_pod<double>(os, ct.scale);
    save(os, ct.c0);
    save(os, ct.c1);
}

Ciphertext
load_ciphertext(std::istream &is)
{
    expect_header(is, kCtMagic);
    Ciphertext ct;
    ct.level = read_pod<u64>(is);
    ct.scale = read_pod<double>(is);
    NEO_CHECK(ct.scale > 0, "bad scale");
    ct.c0 = load_poly(is);
    ct.c1 = load_poly(is);
    NEO_CHECK(ct.c0.same_shape(ct.c1), "component shape mismatch");
    NEO_CHECK(ct.c0.limbs() == ct.level + 1, "level/limb mismatch");
    return ct;
}

void
save(std::ostream &os, const SecretKey &sk)
{
    write_pod(os, kSkMagic);
    write_pod(os, kVersion);
    write_pod<u64>(os, sk.coeffs.size());
    os.write(reinterpret_cast<const char *>(sk.coeffs.data()),
             static_cast<std::streamsize>(sk.coeffs.size() *
                                          sizeof(i64)));
}

SecretKey
load_secret_key(std::istream &is)
{
    expect_header(is, kSkMagic);
    const u64 n = read_pod<u64>(is);
    NEO_CHECK(n >= 4 && n <= (1ULL << 20), "bad degree");
    SecretKey sk;
    sk.coeffs.resize(n);
    is.read(reinterpret_cast<char *>(sk.coeffs.data()),
            static_cast<std::streamsize>(n * sizeof(i64)));
    NEO_CHECK(is.good(), "truncated key data");
    for (i64 c : sk.coeffs)
        NEO_CHECK(c >= -1 && c <= 1, "non-ternary secret");
    return sk;
}

void
save(std::ostream &os, const EvalKey &evk)
{
    write_pod(os, kEvkMagic);
    write_pod(os, kVersion);
    write_pod<u64>(os, evk.parts.size());
    for (const auto &part : evk.parts) {
        save(os, part[0]);
        save(os, part[1]);
    }
}

EvalKey
load_eval_key(std::istream &is)
{
    expect_header(is, kEvkMagic);
    const u64 digits = read_pod<u64>(is);
    NEO_CHECK(digits >= 1 && digits <= 256, "bad digit count");
    EvalKey evk;
    evk.parts.reserve(digits);
    for (u64 j = 0; j < digits; ++j) {
        RnsPoly b = load_poly(is);
        RnsPoly a = load_poly(is);
        NEO_CHECK(b.same_shape(a), "key component mismatch");
        evk.parts.push_back({std::move(b), std::move(a)});
    }
    return evk;
}

void
validate_against(const CkksContext &ctx, const RnsPoly &poly)
{
    NEO_CHECK(poly.n() == ctx.n(), "ring degree mismatch");
    const size_t q_count = ctx.q_basis().size();
    for (size_t i = 0; i < poly.limbs(); ++i) {
        const u64 v = poly.modulus(i).value();
        u64 expect;
        if (i < q_count) {
            expect = ctx.q_basis()[i].value();
        } else {
            NEO_CHECK(i - q_count < ctx.p_basis().size(),
                      "too many limbs for this context");
            expect = ctx.p_basis()[i - q_count].value();
        }
        NEO_CHECK(v == expect, "modulus chain mismatch");
    }
}

} // namespace neo::ckks
