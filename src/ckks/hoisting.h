/**
 * @file
 * Hoisted rotations: when one ciphertext is rotated by many steps
 * (the inner loops of BSGS linear transforms — CoeffToSlot, the conv
 * layers of the ResNet workload), the expensive half of every
 * KeySwitch (INTT, digit decomposition, ModUp BConv, NTT) depends
 * only on the *input*, not the rotation. Hoisting computes it once
 * and replays only the per-rotation automorphism + inner product +
 * ModDown — the classic optimization of Halevi–Shoup that GPU
 * implementations (100x, TensorFHE) rely on.
 *
 * The Galois automorphism commutes with the NTT and with exact base
 * conversion; through the *approximate* fast BConv the two orders
 * differ by a digit-modulus multiple (the usual ModUp slack), so
 * hoisted outputs are noise-equivalent — not bit-identical — to
 * per-rotation keyswitching, as in the standard Halevi–Shoup
 * analysis.
 */
#pragma once

#include "ckks/keyswitch.h"

namespace neo::ckks {

/**
 * Rotate @p ct by every step in @p steps with one shared ModUp.
 * Hybrid keys for each step's Galois element must be present in
 * @p gk. Results match Evaluator::rotate exactly.
 */
std::vector<Ciphertext> rotate_hoisted(const Ciphertext &ct,
                                       const std::vector<i64> &steps,
                                       const GaloisKeys &gk,
                                       const CkksContext &ctx);

} // namespace neo::ckks
