/**
 * @file
 * The KeySwitch operation — both methods the paper compares.
 *
 * Hybrid (Han–Ki): digit-decompose the input over Q, ModUp every
 * digit to the full Q·P basis (approximate BConv), inner-product with
 * the evaluation keys over Q·P, ModDown by P.
 *
 * KLSS (Kim–Lee–Seo–Song, §2.2): digit-decompose over Q, ModUp each
 * digit *exactly* into the small auxiliary base T, NTT over T, inner
 * product against the β̃×β key digits over T (exact integers — no
 * wrap, by the Eq. 4 bound), INTT, Recover Limbs (exact CRT back to
 * each Q·P prime — each output prime needs only its own key-digit
 * group's accumulator), ModDown by P.
 *
 * Both return the same switched ciphertext up to BConv noise; tests
 * verify they decrypt identically.
 */
#pragma once

#include "ckks/context.h"
#include "ckks/keys.h"

namespace neo::ckks {

/**
 * Hybrid key switch of @p d2 (eval form over q_0..q_level) under
 * @p evk. Returns (k0, k1) in eval form at the same level with
 * k0 + k1·s ≈ d2·s'. Work counts flow to the active neo::obs sink
 * under the `ks.*` counter names.
 */
std::pair<RnsPoly, RnsPoly> keyswitch_hybrid(const RnsPoly &d2,
                                             const EvalKey &evk,
                                             const CkksContext &ctx);

/** KLSS key switch; same contract as keyswitch_hybrid. */
std::pair<RnsPoly, RnsPoly> keyswitch_klss(const RnsPoly &d2,
                                           const KlssEvalKey &evk,
                                           const CkksContext &ctx);

/**
 * ModDown: divide a (coeff-form) polynomial over q_0..q_level ∪ P by
 * P, returning a coeff-form polynomial over q_0..q_level.
 *
 * With @p fuse set, the (c - corr)·P⁻¹ scalar fix runs inside the
 * BConv epilogue (one fused kernel per output limb) instead of as a
 * separate pass over a materialised correction array. The fused path
 * performs the identical modular operations in the identical
 * per-element order, so its output is bit-identical; the difference
 * is one kernel launch and one DRAM round trip of the correction
 * term — the fusion tests/fusion_test.cpp locks in.
 *
 * With @p devices > 1 the output limbs are visited device-major over
 * the contiguous per-device ranges of rns::make_even_partition — the
 * reduce-scatter ownership of the sharded schedule. Each limb's
 * element loop is untouched and limb ranges are disjoint, so results
 * are bit-identical for every device count (ctest -L shard).
 */
RnsPoly mod_down(const RnsPoly &ext_poly, size_t level,
                 const CkksContext &ctx, bool fuse = false,
                 size_t devices = 1);

} // namespace neo::ckks
