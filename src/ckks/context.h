/**
 * @file
 * CkksContext — owns the prime chains, NTT tables, encoder and
 * auxiliary bases for one parameter set.
 *
 * Prime chains:
 *  - Q = q_0..q_L  (WordSize bits)   — the ciphertext modulus chain;
 *  - P = p_0..p_{K-1} (WordSize bits) — special primes, K = α;
 *  - T = t_0..t_{α'-1} (WordSize_T bits) — KLSS auxiliary base;
 *  - two 60-bit decode primes (exact CRT lift of small plaintexts).
 *
 * The KLSS key decomposition orders PQ as [P, q_0, ..., q_L] so that
 * the primes live at level l form a *prefix* — key digits are then
 * level-independent and exactly β̃ = ceil((l+α+1)/α̃) groups are
 * touched at level l, matching Table 1.
 */
#pragma once

#include <memory>
#include <vector>

#include "ckks/encoder.h"
#include "ckks/params.h"
#include "poly/rns_poly.h"
#include "rns/base_convert.h"
#include "rns/basis.h"
#include "rns/partition.h"

namespace neo::ckks {

class KeySwitchPrecomp;

/** A plaintext polynomial with its scale. */
struct Plaintext
{
    RnsPoly poly;  ///< usually eval form over the active q-primes
    double scale = 1.0;
};

/** Shared state for one CKKS instantiation. */
class CkksContext
{
  public:
    explicit CkksContext(const CkksParams &params);
    ~CkksContext();
    CkksContext(const CkksContext &) = delete;
    CkksContext &operator=(const CkksContext &) = delete;

    /**
     * Process-unique id of this context instance (monotonic counter).
     * Caches outside the ckks layer (e.g. the pipeline's kernel cache)
     * key on it instead of the address, so a context reallocated at a
     * freed context's address can never alias its cached state.
     */
    u64 uid() const { return uid_; }

    /// Cached per-level key-switch invariants (bases, converters).
    const KeySwitchPrecomp &precomp() const { return *precomp_; }

    const CkksParams &params() const { return params_; }
    const Encoder &encoder() const { return encoder_; }
    size_t n() const { return params_.n; }
    size_t max_level() const { return params_.max_level; }

    /// The q_i chain.
    const RnsBasis &q_basis() const { return q_basis_; }
    /// The special primes P.
    const RnsBasis &p_basis() const { return p_basis_; }
    /// The KLSS auxiliary base T (throws if KLSS disabled).
    const RnsBasis &t_basis() const;

    /// NTT tables covering Q ∪ P.
    const NttTableSet &tables() const { return tables_; }
    /// NTT tables for the T primes.
    const NttTableSet &t_tables() const;

    /// Moduli q_0..q_level.
    std::vector<Modulus> active_mods(size_t level) const;
    /// Moduli q_0..q_level followed by all of P.
    std::vector<Modulus> extended_mods(size_t level) const;

    /// Ciphertext digit partition of q_0..q_level (groups of α).
    std::vector<DigitGroup> digit_partition(size_t level) const;

    /**
     * KLSS key-digit partition over the [P, Q] ordering (groups of
     * α̃). Index i in this ordering maps to P for i < K and to q_{i-K}
     * otherwise.
     */
    const std::vector<DigitGroup> &klss_key_partition() const;

    /// Modulus at position @p idx of the [P, Q] ordering.
    const Modulus &pq_ordered_mod(size_t idx) const;
    /// Number of primes in the [P, Q] ordering (L+1+K).
    size_t pq_ordered_size() const
    {
        return q_basis_.size() + p_basis_.size();
    }

    /// α' — size of the T base (cached from params).
    size_t alpha_prime() const { return alpha_prime_; }

    // ---- Plaintext encode / decode ----------------------------------

    /// Encode complex slots into an eval-form plaintext at @p level.
    Plaintext encode(const std::vector<Complex> &slots, size_t level,
                     double scale = 0) const;

    /// Decode a coeff- or eval-form plaintext back to complex slots.
    std::vector<Complex> decode(const Plaintext &pt) const;

    /// Centered coefficient values of a coeff-form polynomial (exact
    /// CRT lift through the decode basis; |value| must be < 2^119).
    std::vector<double> lift_centered(const RnsPoly &poly) const;

    /// Convert a signed coefficient vector into an RNS polynomial.
    RnsPoly poly_from_signed(const std::vector<i64> &coeffs,
                             const std::vector<Modulus> &mods) const;

  private:
    CkksParams params_;
    Encoder encoder_;
    RnsBasis q_basis_;
    RnsBasis p_basis_;
    RnsBasis t_basis_;
    RnsBasis decode_basis_;
    NttTableSet tables_;
    NttTableSet t_tables_;
    size_t alpha_prime_ = 0;
    std::vector<DigitGroup> klss_key_partition_;
    u64 uid_ = 0;
    std::unique_ptr<KeySwitchPrecomp> precomp_;
};

} // namespace neo::ckks
