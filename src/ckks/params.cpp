#include "ckks/params.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace neo::ckks {

double
CkksParams::delta()
const
{
    return scale > 0 ? scale : std::ldexp(1.0, word_size - 1);
}

size_t
CkksParams::klss_alpha_prime() const
{
    NEO_CHECK(klss.enabled(), "KLSS parameters not set");
    // Worst-case coefficient bound of S_i = Σ_j c_j ⊛ d_i(k_j):
    //   |c_j| ≤ 2^(α·WordSize)   (centered ciphertext digit; the lift
    //                             may mis-round by one digit modulus,
    //                             which is harmless but doubles it)
    //   |d_i| ≤ 2^(α̃·WordSize)   (centered key digit, same slack)
    //   negacyclic convolution: ×N, digit sum: ×β (β at worst level).
    // This is the Eq. 4 requirement instantiated with our operand
    // bounds.
    const double beta_max = static_cast<double>(beta(max_level));
    const double log2_bound = std::log2(static_cast<double>(n)) +
                              std::log2(beta_max) +
                              static_cast<double>(alpha() * word_size) +
                              static_cast<double>(klss.alpha_tilde *
                                                  word_size) +
                              2.0; // safety bits for the FP estimate
    // T is a product of α' primes each >= 2^(WordSize_T - 1); require
    // T/2 > bound: α'·(WordSize_T - 1) - 1 >= log2_bound.
    size_t a = 1;
    while (static_cast<double>(a) * (klss.word_size_t - 1) - 1.0 <
           log2_bound) {
        ++a;
    }
    return a;
}

void
CkksParams::validate() const
{
    NEO_CHECK(is_pow2(n) && n >= 16, "N must be a power of two >= 16");
    NEO_CHECK(word_size >= 30 && word_size <= 60, "WordSize out of range");
    NEO_CHECK(d_num >= 1 && d_num <= max_level + 1, "d_num out of range");
    if (klss.enabled()) {
        NEO_CHECK(klss.word_size_t >= 30 && klss.word_size_t <= 64,
                  "WordSize_T out of range");
        NEO_CHECK(klss.alpha_tilde >= 1, "alpha_tilde must be positive");
    }
}

CkksParams
CkksParams::test_params(size_t n, size_t levels, size_t d_num)
{
    CkksParams p;
    p.name = "test";
    p.n = n;
    p.max_level = levels;
    p.word_size = 36;
    p.d_num = d_num;
    p.klss.word_size_t = 48;
    p.klss.alpha_tilde = 2;
    p.batch = 1;
    p.validate();
    return p;
}

} // namespace neo::ckks
