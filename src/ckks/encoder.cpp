#include "ckks/encoder.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace neo::ckks {

Encoder::Encoder(size_t n) : n_(n)
{
    NEO_CHECK(is_pow2(n) && n >= 4, "degree must be a power of two >= 4");
    zeta_pow_.resize(2 * n);
    for (size_t i = 0; i < 2 * n; ++i) {
        double theta = M_PI * static_cast<double>(i) / static_cast<double>(n);
        zeta_pow_[i] = Complex(std::cos(theta), std::sin(theta));
    }
    // Rotation group: slot j lives at exponent 5^j mod 2n, which is an
    // odd number e = 2k+1; the FFT bucket is k.
    slot_to_point_.resize(n / 2);
    u64 e = 1;
    for (size_t j = 0; j < n / 2; ++j) {
        slot_to_point_[j] = static_cast<size_t>((e - 1) / 2);
        e = (e * 5) % (2 * n);
    }
    const int logn = log2_exact(n);
    bitrev_.resize(n);
    for (size_t i = 0; i < n; ++i)
        bitrev_[i] = static_cast<u32>(reverse_bits(i, logn));
}

void
Encoder::fft(std::vector<Complex> &a, int sign) const
{
    const size_t n = n_;
    for (size_t i = 0; i < n; ++i) {
        u32 j = bitrev_[i];
        if (i < j)
            std::swap(a[i], a[j]);
    }
    for (size_t len = 2; len <= n; len <<= 1) {
        const size_t half = len >> 1;
        const size_t step = n / len;
        for (size_t start = 0; start < n; start += len) {
            for (size_t j = 0; j < half; ++j) {
                // ω^{j·step} with ω = ζ² -> exponent 2·j·step of ζ.
                size_t e = (2 * j * step) % (2 * n);
                Complex w = zeta_pow_[e];
                if (sign < 0)
                    w = std::conj(w);
                Complex u = a[start + j];
                Complex v = a[start + j + half] * w;
                a[start + j] = u + v;
                a[start + j + half] = u - v;
            }
        }
    }
}

std::vector<i64>
Encoder::encode(const std::vector<Complex> &slots, double scale) const
{
    NEO_CHECK(slots.size() <= slot_count(), "too many slots");
    NEO_CHECK(scale > 0, "scale must be positive");
    std::vector<Complex> v(n_, Complex(0, 0));
    for (size_t j = 0; j < slots.size(); ++j) {
        size_t k = slot_to_point_[j];
        v[k] = slots[j];
        // Conjugate point: exponent 2n - (2k+1) = 2(n-1-k)+1.
        v[n_ - 1 - k] = std::conj(slots[j]);
    }
    // Coefficients: c_i = (1/n) ζ^{-i} Σ_k v[k] ω^{-ik}.
    fft(v, -1);
    std::vector<i64> out(n_);
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (size_t i = 0; i < n_; ++i) {
        Complex c = v[i] * std::conj(zeta_pow_[i]) * inv_n;
        double real = c.real() * scale;
        NEO_CHECK(std::abs(real) < 9.0e18, "encoded coefficient overflow");
        out[i] = static_cast<i64>(std::llround(real));
    }
    return out;
}

std::vector<double>
Encoder::encode_real(const std::vector<Complex> &slots, double scale) const
{
    NEO_CHECK(slots.size() <= slot_count(), "too many slots");
    NEO_CHECK(scale > 0, "scale must be positive");
    std::vector<Complex> v(n_, Complex(0, 0));
    for (size_t j = 0; j < slots.size(); ++j) {
        size_t k = slot_to_point_[j];
        v[k] = slots[j];
        v[n_ - 1 - k] = std::conj(slots[j]);
    }
    fft(v, -1);
    std::vector<double> out(n_);
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (size_t i = 0; i < n_; ++i) {
        Complex c = v[i] * std::conj(zeta_pow_[i]) * inv_n;
        out[i] = c.real() * scale;
    }
    return out;
}

std::vector<Complex>
Encoder::decode(const std::vector<double> &coeffs, double scale) const
{
    NEO_CHECK(coeffs.size() == n_, "coefficient count mismatch");
    std::vector<Complex> v(n_);
    for (size_t i = 0; i < n_; ++i)
        v[i] = coeffs[i] * zeta_pow_[i];
    fft(v, +1);
    std::vector<Complex> slots(slot_count());
    for (size_t j = 0; j < slot_count(); ++j)
        slots[j] = v[slot_to_point_[j]] / scale;
    return slots;
}

u64
Encoder::galois_element(i64 steps, bool conjugate) const
{
    const u64 two_n = 2 * n_;
    if (conjugate)
        return two_n - 1;
    // Rotation by r slots uses g = 5^r mod 2n; negative r inverts.
    u64 g = 1;
    u64 base = 5;
    u64 r = steps >= 0
                ? static_cast<u64>(steps) % (n_ / 2)
                : (n_ / 2 - static_cast<u64>(-steps) % (n_ / 2)) % (n_ / 2);
    for (u64 i = 0; i < r; ++i)
        g = (g * base) % two_n;
    return g;
}

} // namespace neo::ckks
