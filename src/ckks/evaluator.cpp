#include "ckks/evaluator.h"

#include <cmath>

#include "common/check.h"
#include "obs/obs.h"

namespace neo::ckks {

Evaluator::Evaluator(const CkksContext &ctx, KeySwitchMethod method,
                     obs::Scope *scope)
    : ctx_(ctx), method_(method), scope_(scope)
{
    if (method_ == KeySwitchMethod::klss)
        NEO_CHECK(ctx.params().klss.enabled(),
                  "KLSS evaluator requires KLSS parameters");
}

namespace {

void
check_compatible(const Ciphertext &a, const Ciphertext &b)
{
    NEO_CHECK(a.level == b.level, "ciphertext level mismatch");
    NEO_CHECK(std::abs(a.scale - b.scale) <=
                  1e-9 * std::max(a.scale, b.scale),
              "ciphertext scale mismatch");
}

/// Per-op counter in the ambient sink (one relaxed load when off).
void
op_count(std::string_view name)
{
    if (auto *r = obs::current())
        r->add(name);
}

} // namespace

/// Routes this evaluator's records into its bound scope, if any.
#define NEO_EVAL_SINK()                                                   \
    obs::Activate neo_eval_sink_(                                         \
        scope_ != nullptr ? &scope_->registry() : nullptr)

Ciphertext
Evaluator::add(const Ciphertext &a, const Ciphertext &b) const
{
    NEO_EVAL_SINK();
    op_count("op.hadd");
    check_compatible(a, b);
    Ciphertext out = a;
    out.c0.add_inplace(b.c0);
    out.c1.add_inplace(b.c1);
    return out;
}

Ciphertext
Evaluator::sub(const Ciphertext &a, const Ciphertext &b) const
{
    NEO_EVAL_SINK();
    op_count("op.hsub");
    check_compatible(a, b);
    Ciphertext out = a;
    out.c0.sub_inplace(b.c0);
    out.c1.sub_inplace(b.c1);
    return out;
}

Ciphertext
Evaluator::negate(const Ciphertext &a) const
{
    Ciphertext out = a;
    out.c0.negate_inplace();
    out.c1.negate_inplace();
    return out;
}

Ciphertext
Evaluator::add_plain(const Ciphertext &a, const Plaintext &pt) const
{
    NEO_EVAL_SINK();
    op_count("op.padd");
    NEO_CHECK(pt.poly.limbs() == a.level + 1, "plaintext level mismatch");
    NEO_CHECK(std::abs(a.scale - pt.scale) <=
                  1e-9 * std::max(a.scale, pt.scale),
              "plaintext scale mismatch");
    Ciphertext out = a;
    out.c0.add_inplace(pt.poly);
    return out;
}

Ciphertext
Evaluator::mul_plain(const Ciphertext &a, const Plaintext &pt) const
{
    NEO_EVAL_SINK();
    op_count("op.pmult");
    NEO_CHECK(pt.poly.limbs() == a.level + 1, "plaintext level mismatch");
    Ciphertext out = a;
    out.c0.mul_inplace(pt.poly);
    out.c1.mul_inplace(pt.poly);
    out.scale = a.scale * pt.scale;
    return out;
}

std::pair<RnsPoly, RnsPoly>
Evaluator::keyswitch(const RnsPoly &d2, const EvalKey *evk,
                     const KlssEvalKey *kevk) const
{
    if (method_ == KeySwitchMethod::klss) {
        NEO_CHECK(kevk != nullptr, "KLSS key required");
        if (klss_keyswitch_)
            return klss_keyswitch_(d2, *kevk, ctx_);
        return keyswitch_klss(d2, *kevk, ctx_);
    }
    NEO_CHECK(evk != nullptr, "hybrid key required");
    return keyswitch_hybrid(d2, *evk, ctx_);
}

Ciphertext
Evaluator::mul_impl(const Ciphertext &a, const Ciphertext &b,
                    const EvalKey *rlk, const KlssEvalKey *klss_rlk) const
{
    obs::Span span("hmult", obs::cat::op);
    op_count("op.hmult");
    obs::observe("work.op.limbs", static_cast<double>(a.level + 1));
    // Multiplication only needs matching levels: the scales multiply.
    NEO_CHECK(a.level == b.level, "ciphertext level mismatch");
    // d0 = a0*b0, d1 = a0*b1 + a1*b0, d2 = a1*b1.
    RnsPoly d0 = a.c0;
    d0.mul_inplace(b.c0);
    RnsPoly d1 = a.c0;
    d1.mul_inplace(b.c1);
    {
        RnsPoly t = a.c1;
        t.mul_inplace(b.c0);
        d1.add_inplace(t);
    }
    RnsPoly d2 = a.c1;
    d2.mul_inplace(b.c1);

    auto [k0, k1] = keyswitch(d2, rlk, klss_rlk);
    d0.add_inplace(k0);
    d1.add_inplace(k1);
    return Ciphertext{std::move(d0), std::move(d1), a.level,
                      a.scale * b.scale};
}

Ciphertext
Evaluator::mul(const Ciphertext &a, const Ciphertext &b,
               const EvalKeyBundle &keys) const
{
    NEO_EVAL_SINK();
    return mul_impl(a, b, &keys.rlk, keys.klss());
}

Ciphertext
Evaluator::rotate_impl(const Ciphertext &a, i64 steps,
                       const GaloisKeys &gk) const
{
    obs::Span span("hrotate", obs::cat::op);
    op_count("op.hrotate");
    obs::observe("work.op.limbs", static_cast<double>(a.level + 1));
    const u64 g = ctx_.encoder().galois_element(steps);
    RnsPoly r0 = automorphism(a.c0, g);
    RnsPoly r1 = automorphism(a.c1, g);
    const EvalKey *evk = nullptr;
    const KlssEvalKey *kevk = nullptr;
    if (auto it = gk.hybrid.find(g); it != gk.hybrid.end())
        evk = &it->second;
    if (auto it = gk.klss.find(g); it != gk.klss.end())
        kevk = &it->second;
    auto [k0, k1] = keyswitch(r1, evk, kevk);
    k0.add_inplace(r0);
    return Ciphertext{std::move(k0), std::move(k1), a.level, a.scale};
}

Ciphertext
Evaluator::rotate(const Ciphertext &a, i64 steps,
                  const EvalKeyBundle &keys) const
{
    NEO_EVAL_SINK();
    return rotate_impl(a, steps, keys.galois);
}

Ciphertext
Evaluator::conjugate_impl(const Ciphertext &a, const GaloisKeys &gk) const
{
    obs::Span span("hconj", obs::cat::op);
    op_count("op.hconj");
    obs::observe("work.op.limbs", static_cast<double>(a.level + 1));
    const u64 g = ctx_.encoder().galois_element(0, true);
    RnsPoly r0 = automorphism(a.c0, g);
    RnsPoly r1 = automorphism(a.c1, g);
    const EvalKey *evk = nullptr;
    const KlssEvalKey *kevk = nullptr;
    if (auto it = gk.hybrid.find(g); it != gk.hybrid.end())
        evk = &it->second;
    if (auto it = gk.klss.find(g); it != gk.klss.end())
        kevk = &it->second;
    auto [k0, k1] = keyswitch(r1, evk, kevk);
    k0.add_inplace(r0);
    return Ciphertext{std::move(k0), std::move(k1), a.level, a.scale};
}

Ciphertext
Evaluator::conjugate(const Ciphertext &a, const EvalKeyBundle &keys) const
{
    NEO_EVAL_SINK();
    return conjugate_impl(a, keys.galois);
}

Ciphertext
Evaluator::rescale_by(const Ciphertext &a, size_t count) const
{
    NEO_EVAL_SINK();
    obs::Span span("rescale", obs::cat::op);
    op_count("op.rescale");
    obs::observe("work.op.limbs", static_cast<double>(a.level + 1));
    NEO_CHECK(a.level >= count, "not enough levels to rescale");
    Ciphertext out = a;
    for (size_t step = 0; step < count; ++step) {
        const size_t level = out.level;
        const Modulus &q_last = ctx_.q_basis()[level];
        const u64 ql = q_last.value();
        const auto mods = ctx_.active_mods(level - 1);
        const size_t n = ctx_.n();

        for (RnsPoly *c : {&out.c0, &out.c1}) {
            ctx_.tables().to_coeff(*c);
            RnsPoly next(n, mods, PolyForm::coeff);
            const u64 *last = c->limb(level);
            for (size_t i = 0; i < level; ++i) {
                const Modulus &qi = mods[i];
                const u64 ql_inv = qi.inv(ql % qi.value());
                const u64 ws = shoup_precompute(ql_inv, qi.value());
                const u64 *src = c->limb(i);
                u64 *dst = next.limb(i);
                for (size_t l = 0; l < n; ++l) {
                    // Centered lift of the dropped limb.
                    u64 lifted = last[l] > ql / 2
                                     ? qi.sub(last[l] % qi.value(),
                                              ql % qi.value())
                                     : last[l] % qi.value();
                    dst[l] = mul_shoup(qi.sub(src[l], lifted), ql_inv,
                                       ws, qi.value());
                }
            }
            ctx_.tables().to_eval(next);
            *c = std::move(next);
        }
        out.level -= 1;
        out.scale /= static_cast<double>(ql);
    }
    return out;
}

Ciphertext
Evaluator::rescale(const Ciphertext &a) const
{
    return rescale_by(a, 1);
}

Ciphertext
Evaluator::double_rescale(const Ciphertext &a) const
{
    return rescale_by(a, 2);
}

Ciphertext
Evaluator::mod_switch_to(const Ciphertext &a, size_t level) const
{
    NEO_CHECK(level <= a.level, "cannot mod-switch upward");
    Ciphertext out = a;
    out.c0.drop_limbs_to(level + 1);
    out.c1.drop_limbs_to(level + 1);
    out.level = level;
    return out;
}

} // namespace neo::ckks
