#include "ckks/encryptor.h"

#include "common/check.h"

namespace neo::ckks {

namespace {

RnsPoly
gaussian_poly(const CkksContext &ctx, const std::vector<Modulus> &mods,
              Rng &rng)
{
    std::vector<i64> e(ctx.n());
    for (auto &x : e)
        x = to_centered(rng.gaussian(1ULL << 40), 1ULL << 40);
    RnsPoly p = ctx.poly_from_signed(e, mods);
    ctx.tables().to_eval(p);
    return p;
}

RnsPoly
ternary_poly(const CkksContext &ctx, const std::vector<Modulus> &mods,
             Rng &rng)
{
    std::vector<i64> v(ctx.n());
    for (auto &x : v) {
        switch (rng.next() & 3) {
          case 0:
            x = 1;
            break;
          case 1:
            x = -1;
            break;
          default:
            x = 0;
        }
    }
    RnsPoly p = ctx.poly_from_signed(v, mods);
    ctx.tables().to_eval(p);
    return p;
}

} // namespace

Encryptor::Encryptor(const CkksContext &ctx, u64 seed)
    : ctx_(ctx), rng_(seed)
{
}

Ciphertext
Encryptor::encrypt(const Plaintext &pt, const PublicKey &pk)
{
    NEO_CHECK(pt.poly.form() == PolyForm::eval, "plaintext must be eval");
    const size_t level = pt.poly.limbs() - 1;
    const auto mods = ctx_.active_mods(level);

    RnsPoly u = ternary_poly(ctx_, mods, rng_);
    RnsPoly e0 = gaussian_poly(ctx_, mods, rng_);
    RnsPoly e1 = gaussian_poly(ctx_, mods, rng_);

    // pk is at the top level; slice to the plaintext's level.
    auto slice = [&](const RnsPoly &full) {
        RnsPoly out(ctx_.n(), mods, PolyForm::eval);
        for (size_t i = 0; i <= level; ++i)
            std::copy(full.limb(i), full.limb(i) + ctx_.n(), out.limb(i));
        return out;
    };
    RnsPoly c0 = slice(pk.b);
    c0.mul_inplace(u);
    c0.add_inplace(e0);
    c0.add_inplace(pt.poly);
    RnsPoly c1 = slice(pk.a);
    c1.mul_inplace(u);
    c1.add_inplace(e1);
    return Ciphertext{std::move(c0), std::move(c1), level, pt.scale};
}

Ciphertext
Encryptor::encrypt_symmetric(const Plaintext &pt, const SecretKey &sk,
                             const KeyGenerator &keygen)
{
    NEO_CHECK(pt.poly.form() == PolyForm::eval, "plaintext must be eval");
    const size_t level = pt.poly.limbs() - 1;
    const auto mods = ctx_.active_mods(level);
    RnsPoly s = keygen.expand_secret(sk, mods);

    RnsPoly a(ctx_.n(), mods, PolyForm::eval);
    for (size_t i = 0; i < mods.size(); ++i) {
        u64 *dst = a.limb(i);
        for (size_t l = 0; l < ctx_.n(); ++l)
            dst[l] = rng_.uniform(mods[i].value());
    }
    RnsPoly c0 = a;
    c0.mul_inplace(s);
    c0.negate_inplace();
    c0.add_inplace(gaussian_poly(ctx_, mods, rng_));
    c0.add_inplace(pt.poly);
    return Ciphertext{std::move(c0), std::move(a), level, pt.scale};
}

RnsPoly
Encryptor::seeded_uniform(const std::vector<Modulus> &mods, u64 seed) const
{
    Rng prng(seed);
    RnsPoly a(ctx_.n(), mods, PolyForm::eval);
    for (size_t i = 0; i < mods.size(); ++i) {
        u64 *dst = a.limb(i);
        for (size_t l = 0; l < ctx_.n(); ++l)
            dst[l] = prng.uniform(mods[i].value());
    }
    return a;
}

SeededCiphertext
Encryptor::encrypt_symmetric_seeded(const Plaintext &pt, const SecretKey &sk,
                                    const KeyGenerator &keygen, u64 a_seed)
{
    NEO_CHECK(pt.poly.form() == PolyForm::eval, "plaintext must be eval");
    const size_t level = pt.poly.limbs() - 1;
    const auto mods = ctx_.active_mods(level);
    RnsPoly s = keygen.expand_secret(sk, mods);
    RnsPoly a = seeded_uniform(mods, a_seed);

    RnsPoly c0 = a;
    c0.mul_inplace(s);
    c0.negate_inplace();
    c0.add_inplace(gaussian_poly(ctx_, mods, rng_));
    c0.add_inplace(pt.poly);
    return SeededCiphertext{std::move(c0), a_seed, level, pt.scale};
}

Ciphertext
Encryptor::expand(const SeededCiphertext &sct) const
{
    RnsPoly a = seeded_uniform(sct.c0.mods(), sct.seed);
    return Ciphertext{sct.c0, std::move(a), sct.level, sct.scale};
}

Decryptor::Decryptor(const CkksContext &ctx, const SecretKey &sk,
                     const KeyGenerator &keygen)
    : ctx_(ctx), sk_(sk), keygen_(keygen)
{
}

Plaintext
Decryptor::decrypt(const Ciphertext &ct) const
{
    const auto mods = ctx_.active_mods(ct.level);
    RnsPoly s = keygen_.expand_secret(sk_, mods);
    RnsPoly m = ct.c1;
    m.mul_inplace(s);
    m.add_inplace(ct.c0);
    return Plaintext{std::move(m), ct.scale};
}

std::vector<Complex>
Decryptor::decrypt_decode(const Ciphertext &ct) const
{
    return ctx_.decode(decrypt(ct));
}

} // namespace neo::ckks
