#include "ckks/paper_params.h"

#include "common/check.h"

namespace neo::ckks {

CkksParams
paper_set(char set)
{
    CkksParams p;
    p.n = 1 << 16;
    p.batch = 128;
    p.klss.alpha_tilde = 0; // disabled unless the set specifies it
    switch (set) {
      case 'A':
        p.max_level = 35;
        p.word_size = 36;
        p.d_num = 1;
        break;
      case 'B':
        p.max_level = 35;
        p.word_size = 36;
        p.d_num = 3;
        break;
      case 'C':
        p.max_level = 35;
        p.word_size = 36;
        p.d_num = 9;
        p.klss.word_size_t = 48;
        p.klss.alpha_tilde = 5;
        break;
      case 'D':
        p.max_level = 35;
        p.word_size = 60;
        p.d_num = 36;
        p.klss.word_size_t = 64;
        p.klss.alpha_tilde = 3;
        break;
      case 'E':
        p.max_level = 35;
        p.word_size = 60;
        p.d_num = 36;
        p.batch = 1; // HEonGPU is unbatched
        break;
      case 'F':
        p.max_level = 23;
        p.word_size = 36;
        p.d_num = 1;
        break;
      case 'G':
        p.max_level = 23;
        p.word_size = 36;
        p.d_num = 6;
        p.klss.word_size_t = 48;
        p.klss.alpha_tilde = 5;
        break;
      case 'H':
        p.max_level = 44;
        p.word_size = 60;
        p.d_num = 45;
        p.batch = 1; // CPU comparison point
        break;
      default:
        NEO_CHECK(false, "unknown parameter set");
    }
    p.name = std::string("Set-") + set;
    p.validate();
    return p;
}

} // namespace neo::ckks
