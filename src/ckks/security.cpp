#include "ckks/security.h"

#include "common/check.h"
#include "common/math_util.h"

namespace neo::ckks {

double
total_modulus_bits(const CkksParams &params)
{
    // The ciphertext modulus Q (L+1 primes). Published parameter
    // tables (including Table 4) quote λ against Q; the key-switching
    // keys under Q·P are covered by the usual special-prime argument.
    return static_cast<double>((params.max_level + 1) *
                               static_cast<size_t>(params.word_size));
}

double
max_modulus_bits_128(size_t n)
{
    NEO_CHECK(is_pow2(n) && n >= 1024, "degree out of table range");
    // homomorphicencryption.org standard (ternary secret, classical,
    // 128-bit): pairs of (log2 N, max log2 Q).
    struct Entry
    {
        size_t n;
        double bits;
    };
    static constexpr Entry table[] = {
        {1024, 27},  {2048, 54},   {4096, 109},
        {8192, 218}, {16384, 438}, {32768, 881},
    };
    for (const auto &e : table) {
        if (e.n == n)
            return e.bits;
    }
    // The table stops at 2^15; the budget continues to roughly double
    // per doubling of N (881 -> ~1772 at 2^16).
    double bits = 881;
    for (size_t m = 65536; m <= n; m <<= 1)
        bits *= 2.0112; // 881/438 growth factor carried forward
    return bits;
}

double
estimate_security(const CkksParams &params)
{
    const double budget = max_modulus_bits_128(params.n);
    const double used = total_modulus_bits(params);
    // First-order: λ is inversely proportional to log(QP) at fixed N.
    return 128.0 * budget / used;
}

} // namespace neo::ckks
