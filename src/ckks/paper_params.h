/**
 * @file
 * The paper's CKKS parameter sets A–H (Table 4). All use N = 2^16.
 *
 * Sets A/B/F use the Hybrid method only; C/D/G add the KLSS
 * parameters (WordSize_T, α̃). E and H are the HEonGPU / CPU
 * comparison points and are unbatched.
 */
#pragma once

#include "ckks/params.h"

namespace neo::ckks {

/// Parameter set by Table 4 letter ('A'..'H').
CkksParams paper_set(char set);

/// All set letters in Table 4 order.
inline constexpr char kPaperSets[] = {'A', 'B', 'C', 'D',
                                      'E', 'F', 'G', 'H'};

} // namespace neo::ckks
