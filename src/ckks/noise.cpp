#include "ckks/noise.h"

#include <cmath>

#include "common/check.h"

namespace neo::ckks {

NoiseInspector::NoiseInspector(const CkksContext &ctx, const SecretKey &sk,
                               const KeyGenerator &keygen)
    : ctx_(ctx), dec_(ctx, sk, keygen)
{
}

double
NoiseInspector::noise_bits(const Ciphertext &ct,
                           const std::vector<Complex> &expected) const
{
    Plaintext raw = dec_.decrypt(ct);
    RnsPoly poly = raw.poly;
    ctx_.tables().to_coeff(poly);
    auto coeffs = ctx_.lift_centered(poly);

    // Real-valued encoding of the expectation at the same scale (no
    // integer rounding — the scale may exceed the i64 encode range).
    auto want = ctx_.encoder().encode_real(expected, ct.scale);
    double worst = 0;
    for (size_t i = 0; i < coeffs.size(); ++i)
        worst = std::max(worst, std::abs(coeffs[i] - want[i]));
    return worst <= 0 ? -64.0 : std::log2(worst);
}

double
NoiseInspector::budget_bits(const Ciphertext &ct,
                            const std::vector<Complex> &expected) const
{
    // Bits of growth available before the noise wraps the modulus.
    double log_q = 0;
    for (size_t i = 0; i <= ct.level; ++i)
        log_q += std::log2(
            static_cast<double>(ctx_.q_basis()[i].value()));
    return log_q - 1.0 - noise_bits(ct, expected);
}

} // namespace neo::ckks
