#include "ckks/hoisting.h"

#include <algorithm>

#include "common/check.h"

namespace neo::ckks {

std::vector<Ciphertext>
rotate_hoisted(const Ciphertext &ct, const std::vector<i64> &steps,
               const GaloisKeys &gk, const CkksContext &ctx)
{
    const size_t n = ct.c0.n();
    const size_t level = ct.level;
    const auto ext_mods = ctx.extended_mods(level);
    const auto groups = ctx.digit_partition(level);

    // --- Shared ModUp of c1: once for all rotations. -----------------
    RnsPoly d2c = ct.c1;
    ctx.tables().to_coeff(d2c);
    std::vector<RnsPoly> raised;
    raised.reserve(groups.size());
    for (const auto &g : groups) {
        std::vector<u64> digit_primes;
        for (size_t t = g.first; t < g.first + g.count; ++t)
            digit_primes.push_back(ctx.q_basis()[t].value());
        RnsBasis digit_basis(digit_primes);
        std::vector<u64> other_primes;
        for (size_t t = 0; t < ext_mods.size(); ++t) {
            if (t < g.first || t >= g.first + g.count)
                other_primes.push_back(ext_mods[t].value());
        }
        RnsBasis other_basis(other_primes);
        BaseConverter conv(digit_basis, other_basis);
        std::vector<u64> converted(other_primes.size() * n);
        conv.convert_approx(d2c.limb(g.first), n, converted.data());

        RnsPoly up(n, ext_mods, PolyForm::coeff);
        size_t src = 0;
        for (size_t t = 0; t < ext_mods.size(); ++t) {
            if (t >= g.first && t < g.first + g.count) {
                std::copy(d2c.limb(t), d2c.limb(t) + n, up.limb(t));
            } else {
                std::copy(converted.begin() + src * n,
                          converted.begin() + (src + 1) * n, up.limb(t));
                ++src;
            }
        }
        ctx.tables().to_eval(up);
        raised.push_back(std::move(up));
    }

    // --- Per-rotation: permute the raised digits, inner-product with
    // that rotation's key, ModDown. ------------------------------------
    std::vector<Ciphertext> out;
    out.reserve(steps.size());
    for (i64 step : steps) {
        const u64 g = ctx.encoder().galois_element(step);
        auto it = gk.hybrid.find(g);
        NEO_CHECK(it != gk.hybrid.end(), "missing Galois key for step");
        const EvalKey &evk = it->second;
        NEO_CHECK(groups.size() <= evk.digit_count(),
                  "evaluation key has too few digits");

        RnsPoly acc0(n, ext_mods, PolyForm::eval);
        RnsPoly acc1(n, ext_mods, PolyForm::eval);
        for (size_t j = 0; j < groups.size(); ++j) {
            RnsPoly up_rot = automorphism(raised[j], g);
            // Slice the key to the active primes.
            RnsPoly kb(n, ext_mods, PolyForm::eval);
            RnsPoly ka(n, ext_mods, PolyForm::eval);
            const size_t k_special = ext_mods.size() - (level + 1);
            for (size_t i = 0; i <= level; ++i) {
                std::copy(evk.parts[j][0].limb(i),
                          evk.parts[j][0].limb(i) + n, kb.limb(i));
                std::copy(evk.parts[j][1].limb(i),
                          evk.parts[j][1].limb(i) + n, ka.limb(i));
            }
            for (size_t k = 0; k < k_special; ++k) {
                const size_t full = ctx.max_level() + 1 + k;
                std::copy(evk.parts[j][0].limb(full),
                          evk.parts[j][0].limb(full) + n,
                          kb.limb(level + 1 + k));
                std::copy(evk.parts[j][1].limb(full),
                          evk.parts[j][1].limb(full) + n,
                          ka.limb(level + 1 + k));
            }
            acc0.add_product(up_rot, kb);
            acc1.add_product(up_rot, ka);
        }
        ctx.tables().to_coeff(acc0);
        ctx.tables().to_coeff(acc1);
        RnsPoly k0 = mod_down(acc0, level, ctx);
        RnsPoly k1 = mod_down(acc1, level, ctx);
        ctx.tables().to_eval(k0);
        ctx.tables().to_eval(k1);

        k0.add_inplace(automorphism(ct.c0, g));
        out.push_back(Ciphertext{std::move(k0), std::move(k1), level,
                                 ct.scale});
    }
    return out;
}

} // namespace neo::ckks
