/**
 * @file
 * Key generation for CKKS: secret/public keys, relinearization keys
 * (target s²), Galois keys (target σ_g(s)), and the KLSS
 * decomposition of any hybrid key.
 */
#pragma once

#include "ckks/context.h"
#include "ckks/keys.h"
#include "common/random.h"

namespace neo::ckks {

/** Generates all key material for one context. */
class KeyGenerator
{
  public:
    KeyGenerator(const CkksContext &ctx, u64 seed = 1);

    /// Fresh ternary secret key.
    SecretKey secret_key();

    /**
     * Sparse ternary secret with Hamming weight @p h — bootstrapping
     * needs the ModRaise overflow |I| ≈ ||s||₁/2 small so the sine
     * approximation range K stays evaluable (the same reason
     * production bootstraps use h = 64 at N = 2^16).
     */
    SecretKey secret_key_sparse(size_t h);

    /// Public encryption key under @p sk at the top level.
    PublicKey public_key(const SecretKey &sk);

    /// Relinearization key: switches s² -> s.
    EvalKey relin_key(const SecretKey &sk);

    /// Galois key for the automorphism X -> X^g: switches σ_g(s) -> s.
    EvalKey galois_key(const SecretKey &sk, u64 g);

    /// Galois keys for a set of rotation steps (plus conjugation if
    /// @p conjugate).
    GaloisKeys galois_keys(const SecretKey &sk,
                           const std::vector<i64> &steps,
                           bool conjugate = false, bool with_klss = false);

    /**
     * One-call bundle: relin key (plus its KLSS form when
     * @p with_klss), and Galois keys for @p steps / @p conjugate.
     * The natural input to Evaluator::mul/rotate/conjugate.
     */
    EvalKeyBundle eval_key_bundle(const SecretKey &sk,
                                  const std::vector<i64> &steps = {},
                                  bool conjugate = false,
                                  bool with_klss = false);

    /**
     * Decompose a hybrid key into the KLSS form: every digit pair is
     * INTT'd, reordered to the [P, Q] prime order, split into β̃
     * groups of α̃ primes, and each group's centered value is lifted
     * exactly into the T base and NTT'd over T.
     */
    KlssEvalKey to_klss(const EvalKey &evk) const;

    /// Expand the ternary secret into eval form over @p mods.
    RnsPoly expand_secret(const SecretKey &sk,
                          const std::vector<Modulus> &mods) const;

  private:
    /// Core: build an EvalKey encrypting target key @p s_prime (eval
    /// form over the extended basis) under @p sk.
    EvalKey make_eval_key(const SecretKey &sk, const RnsPoly &s_prime);

    const CkksContext &ctx_;
    Rng rng_;
};

} // namespace neo::ckks
