#include "tensor/bitslice.h"

#include "common/check.h"
#include "common/math_util.h"

namespace neo {

namespace {

int
accum_bits(size_t k)
{
    // ceil(log2 k): accumulating k terms of w bits stays below 2^(w +
    // ceil(log2 k)) — the paper's 2^36 * 2^12 * 16 = 2^52 < 2^53 bound.
    return k <= 1 ? 0 : bit_size(k - 1);
}

} // namespace

SplitPlan
choose_fp64_split(int wa, int wb, size_t k)
{
    NEO_CHECK(wa > 0 && wb > 0 && wa <= 64 && wb <= 64, "bad widths");
    const int budget = 53 - accum_bits(k);
    NEO_CHECK(budget >= 2, "K too large for exact FP64 accumulation");
    SplitPlan best{0, 0, 0, 0};
    int best_products = 1 << 30;
    for (int pa = 1; pa <= wa; ++pa) {
        const int abits = static_cast<int>(ceil_div(wa, pa));
        if (abits >= budget)
            continue;
        const int bbits_max = budget - abits;
        const int pb = static_cast<int>(ceil_div(wb, bbits_max));
        if (pa * pb < best_products) {
            best_products = pa * pb;
            best = SplitPlan{pa, abits, pb,
                             static_cast<int>(ceil_div(wb, pb))};
        }
    }
    NEO_CHECK(best_products < (1 << 30), "no feasible FP64 split");
    return best;
}

SplitPlan
choose_int8_split(int wa, int wb, size_t k)
{
    NEO_CHECK(wa > 0 && wb > 0 && wa <= 64 && wb <= 64, "bad widths");
    // 8-bit unsigned planes; products are < 2^16, so INT32 accumulation
    // is exact for K up to 2^15.
    NEO_CHECK(16 + accum_bits(k) <= 31, "K too large for INT32 accumulation");
    const int pa = static_cast<int>(ceil_div(wa, 8));
    const int pb = static_cast<int>(ceil_div(wb, 8));
    return SplitPlan{pa, 8, pb, 8};
}

void
slice_to_f64(const u64 *in, size_t n, int planes, int plane_bits,
             double *out)
{
    NEO_ASSERT(plane_bits > 0 && plane_bits < 64, "bad plane width");
    const u64 mask = plane_bits == 63 ? ~0ULL >> 1
                                      : ((1ULL << plane_bits) - 1);
    for (int p = 0; p < planes; ++p) {
        const int shift = p * plane_bits;
        double *dst = out + static_cast<size_t>(p) * n;
        for (size_t i = 0; i < n; ++i) {
            u64 chunk = shift >= 64 ? 0 : ((in[i] >> shift) & mask);
            dst[i] = static_cast<double>(chunk);
        }
    }
}

void
slice_to_i32(const u64 *in, size_t n, int planes, int plane_bits,
             i32 *out)
{
    NEO_ASSERT(plane_bits > 0 && plane_bits <= 16, "bad plane width");
    const u64 mask = (1ULL << plane_bits) - 1;
    for (int p = 0; p < planes; ++p) {
        const int shift = p * plane_bits;
        i32 *dst = out + static_cast<size_t>(p) * n;
        for (size_t i = 0; i < n; ++i) {
            u64 chunk = shift >= 64 ? 0 : ((in[i] >> shift) & mask);
            dst[i] = static_cast<i32>(chunk);
        }
    }
}

} // namespace neo
