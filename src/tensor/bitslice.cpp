#include "tensor/bitslice.h"

#include "common/check.h"

namespace neo {

// choose_fp64_split / choose_int8_split and the split_plan_exact
// proofs live in the header as constexpr so gemm.cpp can
// static_assert the bit budgets at compile time.

void
slice_to_f64(const u64 *in, size_t n, int planes, int plane_bits,
             double *out)
{
    NEO_ASSERT(plane_bits > 0 && plane_bits < 64, "bad plane width");
    const u64 mask = plane_bits == 63 ? ~0ULL >> 1
                                      : ((1ULL << plane_bits) - 1);
    for (int p = 0; p < planes; ++p) {
        const int shift = p * plane_bits;
        double *dst = out + static_cast<size_t>(p) * n;
        for (size_t i = 0; i < n; ++i) {
            u64 chunk = shift >= 64 ? 0 : ((in[i] >> shift) & mask);
            dst[i] = static_cast<double>(chunk);
        }
    }
}

void
slice_to_i32(const u64 *in, size_t n, int planes, int plane_bits,
             i32 *out)
{
    NEO_ASSERT(plane_bits > 0 && plane_bits <= 16, "bad plane width");
    const u64 mask = (1ULL << plane_bits) - 1;
    for (int p = 0; p < planes; ++p) {
        const int shift = p * plane_bits;
        i32 *dst = out + static_cast<size_t>(p) * n;
        for (size_t i = 0; i < n; ++i) {
            u64 chunk = shift >= 64 ? 0 : ((in[i] >> shift) & mask);
            dst[i] = static_cast<i32>(chunk);
        }
    }
}

} // namespace neo
