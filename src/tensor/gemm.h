/**
 * @file
 * Bit-exact emulations of the Tensor Core GEMM datapaths.
 *
 * fp64_sliced_matmul reproduces, in host IEEE-754 arithmetic, exactly
 * what the paper executes on the A100's FP64 tensor cores: wide
 * residues are sliced into planes (tensor/bitslice.h), each plane pair
 * is multiplied with *double* arithmetic (every intermediate provably
 * ≤ 2^53, hence exact), and the partial products are recombined with
 * shifts modulo q. int8_sliced_matmul does the same through the INT8
 * pipe with INT32 accumulation (TensorFHE's approach).
 *
 * Both must agree bit-for-bit with the u128 scalar reference — this is
 * the functional heart of the paper's §3.4 argument and is enforced by
 * tests/tensor_test.cpp.
 */
#pragma once

#include "poly/mat_mul.h"
#include "tensor/bitslice.h"

namespace neo {

/**
 * C = A·B mod q through the FP64-plane path. A is M×K with entries
 * < q, B is K×N with entries < q, row-major.
 */
void fp64_sliced_matmul(const u64 *a, const u64 *b, u64 *c, size_t m,
                        size_t n, size_t k, const Modulus &q);

/// Same with an explicit plane plan (tests sweep plans).
void fp64_sliced_matmul_plan(const u64 *a, const u64 *b, u64 *c, size_t m,
                             size_t n, size_t k, const Modulus &q,
                             const SplitPlan &plan);

/// C = A·B mod q through the INT8-plane path (INT32 accumulation).
void int8_sliced_matmul(const u64 *a, const u64 *b, u64 *c, size_t m,
                        size_t n, size_t k, const Modulus &q);

/// ModMatMulFn adapters for plugging into MatrixNtt / Neo kernels.
const ModMatMulFn &fp64_tcu_matmul();
const ModMatMulFn &int8_tcu_matmul();

/**
 * Per-column-modulus GEMM, as needed by the matrix-form BConv
 * (Algorithm 2): the TCU accumulates the integer product exactly;
 * column j of C is then reduced modulo col_mods[j] in the epilogue.
 * Plane widths are sized for the widest column modulus.
 */
using ModColMatMulFn =
    std::function<void(const u64 *a, const u64 *b, u64 *c, size_t m,
                       size_t n, size_t k,
                       const std::vector<Modulus> &col_mods)>;

/// Scalar reference for the per-column variant.
void scalar_matmul_cols(const u64 *a, const u64 *b, u64 *c, size_t m,
                        size_t n, size_t k,
                        const std::vector<Modulus> &col_mods);

/// FP64-plane implementation of the per-column variant.
void fp64_sliced_matmul_cols(const u64 *a, const u64 *b, u64 *c, size_t m,
                             size_t n, size_t k,
                             const std::vector<Modulus> &col_mods);

/// INT8-plane implementation of the per-column variant (TensorFHE's
/// engine driving the matrix-form BConv, for comparison).
void int8_sliced_matmul_cols(const u64 *a, const u64 *b, u64 *c, size_t m,
                             size_t n, size_t k,
                             const std::vector<Modulus> &col_mods);

const ModColMatMulFn &scalar_col_matmul();
const ModColMatMulFn &fp64_tcu_col_matmul();
const ModColMatMulFn &int8_tcu_col_matmul();

/**
 * Batched per-site GEMM: `sites` independent M×N×K modular matmuls
 * laid out contiguously — A is sites×M×K, B is sites×K×N, C is
 * sites×M×N — where site s reduces modulo mods[s % mods.size()].
 *
 * This is the shape of the KeySwitch inner product (Algorithm 4): one
 * BS×β̃×β product per (coefficient, T-limb) site, with the modulus
 * cycling through the α' T primes. Issuing it as ONE engine call
 * amortises the per-call fixed costs (span, counters, plane slicing,
 * split-plan selection) that dwarf the ~MNK useful MACs of a single
 * site; the sliced engines also slice the whole key tensor as one
 * plane-cache entry instead of one per site.
 *
 * Counted as a single GEMM of shape (sites·M)×N×K, which preserves
 * the FLOP accounting. Each site's accumulation order is unchanged
 * (strictly ascending k), so outputs are bit-identical to looping
 * over sites with the matching single-site engine.
 */
using ModSiteMatMulFn =
    std::function<void(const u64 *a, const u64 *b, u64 *c, size_t sites,
                       size_t m, size_t n, size_t k,
                       const std::vector<Modulus> &mods)>;

/// Scalar (u128 accumulate) reference for the per-site variant.
void scalar_matmul_sites(const u64 *a, const u64 *b, u64 *c, size_t sites,
                         size_t m, size_t n, size_t k,
                         const std::vector<Modulus> &mods);

/// FP64-plane implementation of the per-site variant.
void fp64_sliced_matmul_sites(const u64 *a, const u64 *b, u64 *c,
                              size_t sites, size_t m, size_t n, size_t k,
                              const std::vector<Modulus> &mods);

/// INT8-plane implementation of the per-site variant.
void int8_sliced_matmul_sites(const u64 *a, const u64 *b, u64 *c,
                              size_t sites, size_t m, size_t n, size_t k,
                              const std::vector<Modulus> &mods);

const ModSiteMatMulFn &scalar_site_matmul();
const ModSiteMatMulFn &fp64_tcu_site_matmul();
const ModSiteMatMulFn &int8_tcu_site_matmul();

} // namespace neo
