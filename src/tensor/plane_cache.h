/**
 * @file
 * neo::PlaneCache — memoised bit-sliced planes and pow2 recombine
 * tables for *static* GEMM operands.
 *
 * Every sliced GEMM re-derives two invariant artefacts per call: the
 * plane decomposition of each operand (slice_to_f64 / slice_to_i32 —
 * a full pass over the matrix) and the 2^shift mod q recombine table.
 * For the operands that never change between calls — BConv factor
 * matrices, NTT twiddle matrices, evaluation-key blocks — that work is
 * pure waste. The cache stores the derived forms once and serves them
 * on every subsequent call.
 *
 * Eligibility: only operands *pinned* in neo::StaticOperands
 * (common/static_operand.h) are cached. The pin is the owner's promise
 * that the bytes are stable and immutable; its generation id is part
 * of the cache key, so when a buffer is freed and its address reused,
 * stale entries miss instead of aliasing the new object. Unpinned
 * operands bypass the cache entirely (no counters, no storage).
 *
 * Entries are returned as shared_ptr so a concurrent rebuild (pin
 * generation changed) can never free planes out from under a running
 * GEMM.
 *
 * Counters (only for pin-eligible lookups): `gemm.plane_cache.hit`,
 * `gemm.plane_cache.miss` (a miss immediately populates the entry).
 * pow2 tables are keyed by (plan, modulus) only — they are data-
 * independent and tiny, so they are cached unconditionally and do not
 * contribute to hit/miss.
 */
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "tensor/bitslice.h"

namespace neo {

class PlaneCache
{
  public:
    using F64Ptr = std::shared_ptr<const std::vector<double>>;
    using I32Ptr = std::shared_ptr<const std::vector<i32>>;
    using Pow2Ptr = std::shared_ptr<const std::vector<u64>>;

    /// The process-wide cache.
    static PlaneCache &global();

    /**
     * FP64 planes of the operand [p, p+count u64 words) decomposed
     * into @p planes planes of @p plane_bits bits. Returns null when
     * the operand is not pinned (caller slices into scratch) or the
     * cache is disabled; otherwise returns the memoised planes
     * (building them on first use).
     */
    F64Ptr f64_planes(const u64 *p, size_t count, int planes, int plane_bits);

    /// INT8-in-i32 planes, same contract as f64_planes().
    I32Ptr i32_planes(const u64 *p, size_t count, int planes, int plane_bits);

    /**
     * Largest bit width over the operand's words, memoised per pin.
     * Returns -1 when not pinned / disabled (caller scans itself).
     */
    int width_bits(const u64 *p, size_t count);

    /**
     * The a_planes×b_planes table of 2^(pa·a_bits + pb·b_bits) mod q,
     * row-major in (pa, pb). Always cached (keyed by plan shape and
     * modulus value, not by data).
     */
    Pow2Ptr pow2(const SplitPlan &plan, u64 q_value);

    /// Test hook: false routes every lookup to the uncached path.
    void set_enabled(bool on);
    bool enabled() const;

    /// Drop all entries (tests; owners' pins are untouched).
    void clear();

  private:
    PlaneCache();
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace neo
