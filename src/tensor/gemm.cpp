#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "obs/obs.h"

namespace neo {

namespace {

/// One probe per public GEMM entry point: a timed span plus the call /
/// flop / shape accounting. Plane sub-GEMMs inside an entry are part
/// of the same logical modular matmul and are not counted separately.
void
note_gemm(size_t m, size_t n, size_t k)
{
    if (auto *r = obs::current())
        r->add_gemm(m, n, k);
}

/// Row-chunk grain so one chunk carries at least ~16k MAC operations;
/// chunking is over output rows only, so the per-element accumulation
/// order (and hence the result) is independent of the grain.
size_t
row_grain(size_t n, size_t k)
{
    const size_t per_row = n * k;
    return per_row == 0 ? 1 : std::max<size_t>(1, 16384 / per_row);
}

} // namespace

void
fp64_sliced_matmul_plan(const u64 *a, const u64 *b, u64 *c, size_t m,
                        size_t n, size_t k, const Modulus &q,
                        const SplitPlan &plan)
{
    obs::Span span("fp64_gemm", obs::cat::gemm);
    note_gemm(m, n, k);
    const u64 qv = q.value();
    // Slice operands into FP64 planes.
    std::vector<double> ap(static_cast<size_t>(plan.a_planes) * m * k);
    std::vector<double> bp(static_cast<size_t>(plan.b_planes) * k * n);
    slice_to_f64(a, m * k, plan.a_planes, plan.a_plane_bits, ap.data());
    slice_to_f64(b, k * n, plan.b_planes, plan.b_plane_bits, bp.data());

    // Precompute 2^shift mod q for every plane pair.
    std::vector<u64> pow2(plan.a_planes * plan.b_planes);
    for (int pa = 0; pa < plan.a_planes; ++pa) {
        for (int pb = 0; pb < plan.b_planes; ++pb) {
            int shift = pa * plan.a_plane_bits + pb * plan.b_plane_bits;
            pow2[pa * plan.b_planes + pb] = pow_mod(2, shift, qv);
        }
    }

    std::vector<double> prod(m * n);
    std::fill(c, c + m * n, 0);
    for (int pa = 0; pa < plan.a_planes; ++pa) {
        const double *am = ap.data() + static_cast<size_t>(pa) * m * k;
        for (int pb = 0; pb < plan.b_planes; ++pb) {
            const double *bm = bp.data() + static_cast<size_t>(pb) * k * n;
            // The per-plane GEMM the TCU executes: pure double
            // arithmetic, exact because every accumulation stays
            // below 2^53 by construction of the plan. Row tiles are
            // independent; the k-accumulation stays inside a tile.
            parallel_for(
                0, m,
                [&](size_t rb, size_t re) {
                    for (size_t i = rb; i < re; ++i) {
                        for (size_t j = 0; j < n; ++j) {
                            double acc = 0.0;
                            for (size_t t = 0; t < k; ++t)
                                acc += am[i * k + t] * bm[t * n + j];
                            prod[i * n + j] = acc;
                        }
                    }
                },
                row_grain(n, k));
            // Recombine: C += 2^shift * P (mod q). The plane loops
            // stay sequential, so each c[i] accumulates its planes in
            // the fixed (pa, pb) order.
            const u64 w = pow2[pa * plan.b_planes + pb];
            parallel_for(
                0, m * n,
                [&](size_t b, size_t e) {
                    for (size_t i = b; i < e; ++i) {
                        u64 v = static_cast<u64>(prod[i]) % qv;
                        c[i] = add_mod(c[i], q.mul(v, w), qv);
                    }
                },
                8192);
        }
    }
}

void
fp64_sliced_matmul(const u64 *a, const u64 *b, u64 *c, size_t m, size_t n,
                   size_t k, const Modulus &q)
{
    const SplitPlan plan = choose_fp64_split(q.bits(), q.bits(), k);
    fp64_sliced_matmul_plan(a, b, c, m, n, k, q, plan);
}

void
int8_sliced_matmul(const u64 *a, const u64 *b, u64 *c, size_t m, size_t n,
                   size_t k, const Modulus &q)
{
    obs::Span span("int8_gemm", obs::cat::gemm);
    note_gemm(m, n, k);
    const u64 qv = q.value();
    const SplitPlan plan = choose_int8_split(q.bits(), q.bits(), k);
    std::vector<i32> ap(static_cast<size_t>(plan.a_planes) * m * k);
    std::vector<i32> bp(static_cast<size_t>(plan.b_planes) * k * n);
    slice_to_i32(a, m * k, plan.a_planes, plan.a_plane_bits, ap.data());
    slice_to_i32(b, k * n, plan.b_planes, plan.b_plane_bits, bp.data());

    std::vector<i32> prod(m * n);
    std::fill(c, c + m * n, 0);
    for (int pa = 0; pa < plan.a_planes; ++pa) {
        const i32 *am = ap.data() + static_cast<size_t>(pa) * m * k;
        for (int pb = 0; pb < plan.b_planes; ++pb) {
            const i32 *bm = bp.data() + static_cast<size_t>(pb) * k * n;
            parallel_for(
                0, m,
                [&](size_t rb, size_t re) {
                    for (size_t i = rb; i < re; ++i) {
                        for (size_t j = 0; j < n; ++j) {
                            // INT32 accumulation, as on the INT8
                            // tensor core.
                            i32 acc = 0;
                            for (size_t t = 0; t < k; ++t)
                                acc += am[i * k + t] * bm[t * n + j];
                            prod[i * n + j] = acc;
                        }
                    }
                },
                row_grain(n, k));
            const int shift =
                pa * plan.a_plane_bits + pb * plan.b_plane_bits;
            const u64 w = pow_mod(2, shift, qv);
            parallel_for(
                0, m * n,
                [&](size_t b, size_t e) {
                    for (size_t i = b; i < e; ++i) {
                        u64 v =
                            static_cast<u64>(static_cast<u32>(prod[i])) %
                            qv;
                        c[i] = add_mod(c[i], q.mul(v, w), qv);
                    }
                },
                8192);
        }
    }
}

namespace {

int
max_bits(const u64 *v, size_t count)
{
    u64 m = 0;
    for (size_t i = 0; i < count; ++i)
        m |= v[i];
    return bit_size(m);
}

} // namespace

void
scalar_matmul_cols(const u64 *a, const u64 *b, u64 *c, size_t m, size_t n,
                   size_t k, const std::vector<Modulus> &col_mods)
{
    obs::Span span("scalar_gemm_cols", obs::cat::gemm);
    note_gemm(m, n, k);
    NEO_CHECK(col_mods.size() == n, "column modulus count mismatch");
    // Exact integer accumulation: operands are < 2^63 and K is small
    // (gadget dimensions), so the u128 accumulator cannot overflow for
    // K ≤ 64 at 60-bit words.
    NEO_CHECK(k <= 64, "K too large for exact u128 accumulation");
    parallel_for(
        0, m,
        [&](size_t rb, size_t re) {
            for (size_t i = rb; i < re; ++i) {
                for (size_t j = 0; j < n; ++j) {
                    u128 acc = 0;
                    for (size_t t = 0; t < k; ++t)
                        acc += static_cast<u128>(a[i * k + t]) *
                               b[t * n + j];
                    c[i * n + j] =
                        static_cast<u64>(acc % col_mods[j].value());
                }
            }
        },
        row_grain(n, k));
}

void
fp64_sliced_matmul_cols(const u64 *a, const u64 *b, u64 *c, size_t m,
                        size_t n, size_t k,
                        const std::vector<Modulus> &col_mods)
{
    obs::Span span("fp64_gemm_cols", obs::cat::gemm);
    note_gemm(m, n, k);
    NEO_CHECK(col_mods.size() == n, "column modulus count mismatch");
    const int wa = max_bits(a, m * k);
    const int wb = max_bits(b, k * n);
    const SplitPlan plan = choose_fp64_split(std::max(wa, 1),
                                             std::max(wb, 1), k);
    std::vector<double> ap(static_cast<size_t>(plan.a_planes) * m * k);
    std::vector<double> bp(static_cast<size_t>(plan.b_planes) * k * n);
    slice_to_f64(a, m * k, plan.a_planes, plan.a_plane_bits, ap.data());
    slice_to_f64(b, k * n, plan.b_planes, plan.b_plane_bits, bp.data());

    std::vector<double> prod(m * n);
    std::fill(c, c + m * n, 0);
    for (int pa = 0; pa < plan.a_planes; ++pa) {
        const double *am = ap.data() + static_cast<size_t>(pa) * m * k;
        for (int pb = 0; pb < plan.b_planes; ++pb) {
            const double *bm = bp.data() + static_cast<size_t>(pb) * k * n;
            parallel_for(
                0, m,
                [&](size_t rb, size_t re) {
                    for (size_t i = rb; i < re; ++i) {
                        for (size_t j = 0; j < n; ++j) {
                            double acc = 0.0;
                            for (size_t t = 0; t < k; ++t)
                                acc += am[i * k + t] * bm[t * n + j];
                            prod[i * n + j] = acc;
                        }
                    }
                },
                row_grain(n, k));
            const int shift =
                pa * plan.a_plane_bits + pb * plan.b_plane_bits;
            parallel_for(
                0, m,
                [&](size_t rb, size_t re) {
                    for (size_t i = rb; i < re; ++i) {
                        for (size_t j = 0; j < n; ++j) {
                            const Modulus &q = col_mods[j];
                            const u64 w = pow_mod(2, shift, q.value());
                            u64 v = static_cast<u64>(prod[i * n + j]) %
                                    q.value();
                            c[i * n + j] =
                                q.add(c[i * n + j], q.mul(v, w));
                        }
                    }
                },
                row_grain(n, 1));
        }
    }
}

void
int8_sliced_matmul_cols(const u64 *a, const u64 *b, u64 *c, size_t m,
                        size_t n, size_t k,
                        const std::vector<Modulus> &col_mods)
{
    obs::Span span("int8_gemm_cols", obs::cat::gemm);
    note_gemm(m, n, k);
    NEO_CHECK(col_mods.size() == n, "column modulus count mismatch");
    const int wa = max_bits(a, m * k);
    const int wb = max_bits(b, k * n);
    const SplitPlan plan =
        choose_int8_split(std::max(wa, 1), std::max(wb, 1), k);
    std::vector<i32> ap(static_cast<size_t>(plan.a_planes) * m * k);
    std::vector<i32> bp(static_cast<size_t>(plan.b_planes) * k * n);
    slice_to_i32(a, m * k, plan.a_planes, plan.a_plane_bits, ap.data());
    slice_to_i32(b, k * n, plan.b_planes, plan.b_plane_bits, bp.data());

    std::vector<i32> prod(m * n);
    std::fill(c, c + m * n, 0);
    for (int pa = 0; pa < plan.a_planes; ++pa) {
        const i32 *am = ap.data() + static_cast<size_t>(pa) * m * k;
        for (int pb = 0; pb < plan.b_planes; ++pb) {
            const i32 *bm = bp.data() + static_cast<size_t>(pb) * k * n;
            parallel_for(
                0, m,
                [&](size_t rb, size_t re) {
                    for (size_t i = rb; i < re; ++i) {
                        for (size_t j = 0; j < n; ++j) {
                            i32 acc = 0;
                            for (size_t t = 0; t < k; ++t)
                                acc += am[i * k + t] * bm[t * n + j];
                            prod[i * n + j] = acc;
                        }
                    }
                },
                row_grain(n, k));
            const int shift =
                pa * plan.a_plane_bits + pb * plan.b_plane_bits;
            parallel_for(
                0, m,
                [&](size_t rb, size_t re) {
                    for (size_t i = rb; i < re; ++i) {
                        for (size_t j = 0; j < n; ++j) {
                            const Modulus &q = col_mods[j];
                            const u64 w = pow_mod(2, shift, q.value());
                            u64 v = static_cast<u64>(static_cast<u32>(
                                        prod[i * n + j])) %
                                    q.value();
                            c[i * n + j] =
                                q.add(c[i * n + j], q.mul(v, w));
                        }
                    }
                },
                row_grain(n, 1));
        }
    }
}

const ModColMatMulFn &
scalar_col_matmul()
{
    static const ModColMatMulFn fn = scalar_matmul_cols;
    return fn;
}

const ModColMatMulFn &
fp64_tcu_col_matmul()
{
    static const ModColMatMulFn fn = fp64_sliced_matmul_cols;
    return fn;
}

const ModColMatMulFn &
int8_tcu_col_matmul()
{
    static const ModColMatMulFn fn = int8_sliced_matmul_cols;
    return fn;
}

const ModMatMulFn &
fp64_tcu_matmul()
{
    static const ModMatMulFn fn = [](const u64 *a, const u64 *b, u64 *c,
                                     size_t m, size_t n, size_t k,
                                     const Modulus &q) {
        fp64_sliced_matmul(a, b, c, m, n, k, q);
    };
    return fn;
}

const ModMatMulFn &
int8_tcu_matmul()
{
    static const ModMatMulFn fn = [](const u64 *a, const u64 *b, u64 *c,
                                     size_t m, size_t n, size_t k,
                                     const Modulus &q) {
        int8_sliced_matmul(a, b, c, m, n, k, q);
    };
    return fn;
}

} // namespace neo
