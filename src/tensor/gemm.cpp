#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "common/workspace.h"
#include "obs/obs.h"
#include "tensor/plane_cache.h"

namespace neo {

/*
 * Compile-time bit-budget proofs — the static_assert mirror of the
 * neo-lint bit-budget prover (src/lint/bit_budget.h). Every (word
 * size, WordSize_T, K depth) plan reachable from the paper parameter
 * sets A–H and the test presets must keep its worst-case plane
 * accumulation below the FP64 mantissa (2^53) / INT32 accumulator
 * (2^31) bound, independently re-derived by split_plan_exact in
 * 128-bit integer arithmetic. If a planner change ever produces an
 * out-of-budget plan, this block turns it into a *build* failure.
 *
 * Word sizes: 36/60-bit q primes, {36, 48, 64}-bit WordSize_T, 30-bit
 * test primes. K depths: 16 (radix-16 NTT twiddle matmul), 256
 * (four-step NTT at N = 2^16), 46 (widest BConv source basis, Set H's
 * L+1+α), and the small IP/gadget dimensions.
 */
namespace {

constexpr bool
fp64_budget_table_holds()
{
    constexpr int words[] = {30, 36, 48, 60, 64};
    constexpr size_t ks[] = {1, 2, 4, 5, 16, 40, 46, 64, 256};
    for (int w : words)
        for (size_t k : ks)
            if (!fp64_plan_exact(w, w, k))
                return false;
    return true;
}

constexpr bool
int8_budget_table_holds()
{
    constexpr int words[] = {30, 36, 48, 60, 64};
    constexpr size_t ks[] = {1, 2, 4, 5, 16, 40, 46, 64, 256};
    for (int w : words)
        for (size_t k : ks)
            if (!int8_plan_exact(w, w, k))
                return false;
    return true;
}

static_assert(fp64_budget_table_holds(),
              "FP64 plane plan exceeds the 2^53 mantissa budget for a "
              "reachable (word size, K) configuration");
static_assert(int8_budget_table_holds(),
              "INT8 plane plan exceeds the INT32 accumulator budget for "
              "a reachable (word size, K) configuration");

// The paper's flagship examples, spelled out (§3.4): a 36-bit word
// kept whole against 12-bit planes over K = 16 sums to 2^52 < 2^53;
// 48-bit words split 2×24b each leave 53 − 48 = 5 bits of headroom
// at K ≤ 32.
static_assert(choose_fp64_split(36, 36, 16).products() == 3 &&
                  fp64_plan_exact(36, 36, 16),
              "paper Fig 3 36-bit plan regressed");
static_assert(choose_fp64_split(48, 48, 16).products() == 4 &&
                  fp64_plan_exact(48, 48, 16),
              "paper Fig 3 48-bit plan regressed");

} // namespace

namespace {

/// One probe per public GEMM entry point: a timed span plus the call /
/// flop / shape accounting. Plane sub-GEMMs inside an entry are part
/// of the same logical modular matmul and are not counted separately.
void
note_gemm(size_t m, size_t n, size_t k)
{
    if (auto *r = obs::current())
        r->add_gemm(m, n, k);
}

/**
 * Row-chunk grain for the parallel GEMM loops. Two goals: every chunk
 * carries at least ~16k MAC operations (so submission overhead stays
 * negligible), and the chunk count stays within a few chunks per pool
 * thread — in particular a 1-thread pool gets exactly one chunk and
 * pays zero chunking overhead. Invariance: chunking splits *output
 * rows* only; every output element's k-accumulation (and its plane
 * recombination) happens entirely inside one chunk in a fixed order,
 * so the grain changes scheduling, never values — results are
 * bit-identical for any grain and any thread count.
 */
size_t
row_grain(size_t m, size_t n, size_t k)
{
    return row_chunk_grain(m, n * k);
}

// Cache-tile sizes for the plane GEMM. MC is the parallel row chunk
// (row_grain); NC × KC below tile the j / t loops so the B panel in
// use stays L1/L2-resident; MR × NR is the register tile.
constexpr size_t kNC = 128;
constexpr size_t kKC = 256;
constexpr size_t kMR = 4;
constexpr size_t kNR = 8;

/**
 * One MR×NR-register-tiled block of the plane GEMM:
 *   prod[i0..i1, j0..j1] (+)= am[i0..i1, t0..t1] · bm[t0..t1, j0..j1]
 * ("=" when first, "+=" otherwise, i.e. on later KC slabs).
 *
 * Determinism: each output element accumulates its t-products in
 * strictly ascending t order — the same order as the naive triple
 * loop — so the blocked kernel is bit-identical to it (and, for the
 * FP64 path, exact anyway: every intermediate stays below 2^53 by
 * construction of the SplitPlan).
 */
template <class T>
void
plane_gemm_block(const T *am, const T *bm, T *prod, size_t i0, size_t i1,
                 size_t j0, size_t j1, size_t t0, size_t t1, size_t n,
                 size_t k, bool first)
{
    size_t i = i0;
    for (; i + kMR <= i1; i += kMR) {
        size_t j = j0;
        for (; j + kNR <= j1; j += kNR) {
            T acc[kMR][kNR] = {};
            for (size_t t = t0; t < t1; ++t) {
                T bv[kNR];
                for (size_t jj = 0; jj < kNR; ++jj)
                    bv[jj] = bm[t * n + j + jj];
                for (size_t ii = 0; ii < kMR; ++ii) {
                    const T av = am[(i + ii) * k + t];
                    for (size_t jj = 0; jj < kNR; ++jj)
                        acc[ii][jj] += av * bv[jj];
                }
            }
            for (size_t ii = 0; ii < kMR; ++ii)
                for (size_t jj = 0; jj < kNR; ++jj) {
                    T &out = prod[(i + ii) * n + j + jj];
                    out = first ? acc[ii][jj] : out + acc[ii][jj];
                }
        }
        for (; j < j1; ++j) {
            T acc[kMR] = {};
            for (size_t t = t0; t < t1; ++t) {
                const T bv = bm[t * n + j];
                for (size_t ii = 0; ii < kMR; ++ii)
                    acc[ii] += am[(i + ii) * k + t] * bv;
            }
            for (size_t ii = 0; ii < kMR; ++ii) {
                T &out = prod[(i + ii) * n + j];
                out = first ? acc[ii] : out + acc[ii];
            }
        }
    }
    for (; i < i1; ++i) {
        size_t j = j0;
        for (; j + kNR <= j1; j += kNR) {
            T acc[kNR] = {};
            for (size_t t = t0; t < t1; ++t) {
                const T av = am[i * k + t];
                for (size_t jj = 0; jj < kNR; ++jj)
                    acc[jj] += av * bm[t * n + j + jj];
            }
            for (size_t jj = 0; jj < kNR; ++jj) {
                T &out = prod[i * n + j + jj];
                out = first ? acc[jj] : out + acc[jj];
            }
        }
        for (; j < j1; ++j) {
            T acc = 0;
            for (size_t t = t0; t < t1; ++t)
                acc += am[i * k + t] * bm[t * n + j];
            T &out = prod[i * n + j];
            out = first ? acc : out + acc;
        }
    }
}

/// prod = am(m×k) · bm(k×n), blocked and parallel over row chunks.
template <class T>
void
plane_gemm(const T *am, const T *bm, T *prod, size_t m, size_t n, size_t k)
{
    parallel_for(
        0, m,
        [&](size_t rb, size_t re) {
            for (size_t jc = 0; jc < n; jc += kNC) {
                const size_t je = std::min(n, jc + kNC);
                for (size_t tc = 0; tc < k; tc += kKC)
                    plane_gemm_block(am, bm, prod, rb, re, jc, je, tc,
                                     std::min(k, tc + kKC), n, k, tc == 0);
            }
        },
        row_grain(m, n, k));
}

/// Operand planes: cache hit for pinned operands, workspace slice
/// otherwise. The returned pointer is valid for the caller's Frame
/// lifetime (the shared_ptr keeps cached planes alive).
const double *
f64_planes(const u64 *p, size_t count, int planes, int plane_bits,
           Workspace::Frame &frame, PlaneCache::F64Ptr &keep)
{
    keep = PlaneCache::global().f64_planes(p, count, planes, plane_bits);
    if (keep != nullptr)
        return keep->data();
    double *buf = frame.alloc<double>(static_cast<size_t>(planes) * count);
    slice_to_f64(p, count, planes, plane_bits, buf);
    return buf;
}

const i32 *
i32_planes(const u64 *p, size_t count, int planes, int plane_bits,
           Workspace::Frame &frame, PlaneCache::I32Ptr &keep)
{
    keep = PlaneCache::global().i32_planes(p, count, planes, plane_bits);
    if (keep != nullptr)
        return keep->data();
    i32 *buf = frame.alloc<i32>(static_cast<size_t>(planes) * count);
    slice_to_i32(p, count, planes, plane_bits, buf);
    return buf;
}

int
operand_bits(const u64 *v, size_t count)
{
    const int cached = PlaneCache::global().width_bits(v, count);
    if (cached >= 0)
        return cached;
    u64 m = 0;
    for (size_t i = 0; i < count; ++i)
        m |= v[i];
    return bit_size(m);
}

} // namespace

void
fp64_sliced_matmul_plan(const u64 *a, const u64 *b, u64 *c, size_t m,
                        size_t n, size_t k, const Modulus &q,
                        const SplitPlan &plan)
{
    obs::Span span("fp64_gemm", obs::cat::gemm);
    note_gemm(m, n, k);
    const u64 qv = q.value();
    Workspace::Frame frame;
    PlaneCache::F64Ptr keep_a, keep_b;
    const double *ap =
        f64_planes(a, m * k, plan.a_planes, plan.a_plane_bits, frame, keep_a);
    const double *bp =
        f64_planes(b, k * n, plan.b_planes, plan.b_plane_bits, frame, keep_b);
    const PlaneCache::Pow2Ptr pow2 = PlaneCache::global().pow2(plan, qv);

    double *prod = frame.alloc<double>(m * n);
    std::fill(c, c + m * n, 0);
    for (int pa = 0; pa < plan.a_planes; ++pa) {
        const double *am = ap + static_cast<size_t>(pa) * m * k;
        for (int pb = 0; pb < plan.b_planes; ++pb) {
            const double *bm = bp + static_cast<size_t>(pb) * k * n;
            // The per-plane GEMM the TCU executes: pure double
            // arithmetic, exact because every accumulation stays
            // below 2^53 by construction of the plan.
            plane_gemm(am, bm, prod, m, n, k);
            // Recombine: C += 2^shift * P (mod q). The plane loops
            // stay sequential, so each c[i] accumulates its planes in
            // the fixed (pa, pb) order.
            const u64 w = (*pow2)[static_cast<size_t>(pa) * plan.b_planes + pb];
            parallel_for(
                0, m * n,
                [&](size_t b0, size_t e0) {
                    for (size_t i = b0; i < e0; ++i) {
                        u64 v = q.reduce(static_cast<u64>(prod[i]));
                        c[i] = add_mod(c[i], q.mul(v, w), qv);
                    }
                },
                8192);
        }
    }
}

void
fp64_sliced_matmul(const u64 *a, const u64 *b, u64 *c, size_t m, size_t n,
                   size_t k, const Modulus &q)
{
    const SplitPlan plan = choose_fp64_split(q.bits(), q.bits(), k);
    fp64_sliced_matmul_plan(a, b, c, m, n, k, q, plan);
}

void
int8_sliced_matmul(const u64 *a, const u64 *b, u64 *c, size_t m, size_t n,
                   size_t k, const Modulus &q)
{
    obs::Span span("int8_gemm", obs::cat::gemm);
    note_gemm(m, n, k);
    const u64 qv = q.value();
    const SplitPlan plan = choose_int8_split(q.bits(), q.bits(), k);
    Workspace::Frame frame;
    PlaneCache::I32Ptr keep_a, keep_b;
    const i32 *ap =
        i32_planes(a, m * k, plan.a_planes, plan.a_plane_bits, frame, keep_a);
    const i32 *bp =
        i32_planes(b, k * n, plan.b_planes, plan.b_plane_bits, frame, keep_b);
    const PlaneCache::Pow2Ptr pow2 = PlaneCache::global().pow2(plan, qv);

    i32 *prod = frame.alloc<i32>(m * n);
    std::fill(c, c + m * n, 0);
    for (int pa = 0; pa < plan.a_planes; ++pa) {
        const i32 *am = ap + static_cast<size_t>(pa) * m * k;
        for (int pb = 0; pb < plan.b_planes; ++pb) {
            const i32 *bm = bp + static_cast<size_t>(pb) * k * n;
            // INT32 accumulation, as on the INT8 tensor core.
            plane_gemm(am, bm, prod, m, n, k);
            const u64 w = (*pow2)[static_cast<size_t>(pa) * plan.b_planes + pb];
            parallel_for(
                0, m * n,
                [&](size_t b0, size_t e0) {
                    for (size_t i = b0; i < e0; ++i) {
                        u64 v = q.reduce(
                            static_cast<u64>(static_cast<u32>(prod[i])));
                        c[i] = add_mod(c[i], q.mul(v, w), qv);
                    }
                },
                8192);
        }
    }
}

void
scalar_matmul_cols(const u64 *a, const u64 *b, u64 *c, size_t m, size_t n,
                   size_t k, const std::vector<Modulus> &col_mods)
{
    obs::Span span("scalar_gemm_cols", obs::cat::gemm);
    note_gemm(m, n, k);
    NEO_CHECK(col_mods.size() == n, "column modulus count mismatch");
    // Exact integer accumulation: operands are < 2^63 and K is small
    // (gadget dimensions), so the u128 accumulator cannot overflow for
    // K ≤ 64 at 60-bit words.
    NEO_CHECK(k <= 64, "K too large for exact u128 accumulation");
    parallel_for(
        0, m,
        [&](size_t rb, size_t re) {
            for (size_t i = rb; i < re; ++i) {
                for (size_t j = 0; j < n; ++j) {
                    u128 acc = 0;
                    for (size_t t = 0; t < k; ++t)
                        acc += static_cast<u128>(a[i * k + t]) *
                               b[t * n + j];
                    c[i * n + j] = col_mods[j].reduce128(acc);
                }
            }
        },
        row_grain(m, n, k));
}

void
fp64_sliced_matmul_cols(const u64 *a, const u64 *b, u64 *c, size_t m,
                        size_t n, size_t k,
                        const std::vector<Modulus> &col_mods)
{
    obs::Span span("fp64_gemm_cols", obs::cat::gemm);
    note_gemm(m, n, k);
    NEO_CHECK(col_mods.size() == n, "column modulus count mismatch");
    const int wa = operand_bits(a, m * k);
    const int wb = operand_bits(b, k * n);
    const SplitPlan plan = choose_fp64_split(std::max(wa, 1),
                                             std::max(wb, 1), k);
    Workspace::Frame frame;
    PlaneCache::F64Ptr keep_a, keep_b;
    const double *ap =
        f64_planes(a, m * k, plan.a_planes, plan.a_plane_bits, frame, keep_a);
    const double *bp =
        f64_planes(b, k * n, plan.b_planes, plan.b_plane_bits, frame, keep_b);

    double *prod = frame.alloc<double>(m * n);
    u64 *w = frame.alloc<u64>(n);
    std::fill(c, c + m * n, 0);
    for (int pa = 0; pa < plan.a_planes; ++pa) {
        const double *am = ap + static_cast<size_t>(pa) * m * k;
        for (int pb = 0; pb < plan.b_planes; ++pb) {
            const double *bm = bp + static_cast<size_t>(pb) * k * n;
            plane_gemm(am, bm, prod, m, n, k);
            // Per-column shift weights, hoisted out of the recombine
            // loop (was one pow_mod per output element).
            const int shift =
                pa * plan.a_plane_bits + pb * plan.b_plane_bits;
            for (size_t j = 0; j < n; ++j)
                w[j] = pow_mod(2, shift, col_mods[j].value());
            parallel_for(
                0, m,
                [&](size_t rb, size_t re) {
                    for (size_t i = rb; i < re; ++i) {
                        for (size_t j = 0; j < n; ++j) {
                            const Modulus &q = col_mods[j];
                            u64 v = q.reduce(
                                static_cast<u64>(prod[i * n + j]));
                            c[i * n + j] =
                                q.add(c[i * n + j], q.mul(v, w[j]));
                        }
                    }
                },
                row_grain(m, n, 1));
        }
    }
}

void
int8_sliced_matmul_cols(const u64 *a, const u64 *b, u64 *c, size_t m,
                        size_t n, size_t k,
                        const std::vector<Modulus> &col_mods)
{
    obs::Span span("int8_gemm_cols", obs::cat::gemm);
    note_gemm(m, n, k);
    NEO_CHECK(col_mods.size() == n, "column modulus count mismatch");
    const int wa = operand_bits(a, m * k);
    const int wb = operand_bits(b, k * n);
    const SplitPlan plan =
        choose_int8_split(std::max(wa, 1), std::max(wb, 1), k);
    Workspace::Frame frame;
    PlaneCache::I32Ptr keep_a, keep_b;
    const i32 *ap =
        i32_planes(a, m * k, plan.a_planes, plan.a_plane_bits, frame, keep_a);
    const i32 *bp =
        i32_planes(b, k * n, plan.b_planes, plan.b_plane_bits, frame, keep_b);

    i32 *prod = frame.alloc<i32>(m * n);
    u64 *w = frame.alloc<u64>(n);
    std::fill(c, c + m * n, 0);
    for (int pa = 0; pa < plan.a_planes; ++pa) {
        const i32 *am = ap + static_cast<size_t>(pa) * m * k;
        for (int pb = 0; pb < plan.b_planes; ++pb) {
            const i32 *bm = bp + static_cast<size_t>(pb) * k * n;
            plane_gemm(am, bm, prod, m, n, k);
            const int shift =
                pa * plan.a_plane_bits + pb * plan.b_plane_bits;
            for (size_t j = 0; j < n; ++j)
                w[j] = pow_mod(2, shift, col_mods[j].value());
            parallel_for(
                0, m,
                [&](size_t rb, size_t re) {
                    for (size_t i = rb; i < re; ++i) {
                        for (size_t j = 0; j < n; ++j) {
                            const Modulus &q = col_mods[j];
                            u64 v = q.reduce(static_cast<u64>(
                                static_cast<u32>(prod[i * n + j])));
                            c[i * n + j] =
                                q.add(c[i * n + j], q.mul(v, w[j]));
                        }
                    }
                },
                row_grain(m, n, 1));
        }
    }
}

void
scalar_matmul_sites(const u64 *a, const u64 *b, u64 *c, size_t sites,
                    size_t m, size_t n, size_t k,
                    const std::vector<Modulus> &mods)
{
    obs::Span span("scalar_gemm_sites", obs::cat::gemm);
    note_gemm(sites * m, n, k);
    NEO_CHECK(!mods.empty(), "site modulus list empty");
    const size_t nmods = mods.size();
    parallel_for(
        0, sites,
        [&](size_t sb, size_t se) {
            for (size_t s = sb; s < se; ++s) {
                const Modulus &qm = mods[s % nmods];
                const u64 *as = a + s * m * k;
                const u64 *bs = b + s * k * n;
                u64 *cs = c + s * m * n;
                for (size_t i = 0; i < m; ++i) {
                    for (size_t j = 0; j < n; ++j) {
                        u128 acc = 0;
                        // Fold every other iteration: products are
                        // < 2^126, so the accumulator stays < 2^128.
                        for (size_t t = 0; t < k; ++t) {
                            acc += static_cast<u128>(as[i * k + t]) *
                                   bs[t * n + j];
                            if (t & 1)
                                acc = qm.reduce128(acc);
                        }
                        cs[i * n + j] = qm.reduce128(acc);
                    }
                }
            }
        },
        row_chunk_grain(sites, m * n * k));
}

namespace {

/**
 * Shared skeleton of the sliced per-site GEMMs: decompose both full
 * tensors into planes once (one plane-cache entry per static operand
 * covering every site), then per site run the plane micro-GEMMs and
 * recombine with the site's modulus. Every output element accumulates
 * its k-products in ascending order and its planes in (pa, pb) order —
 * exactly like the single-site engines, and exact by plan
 * construction — so results are bit-identical to calling the matching
 * single-site engine once per site.
 */
template <class T, class Slice, class Fold>
void
sliced_matmul_sites_impl(const u64 *a, const u64 *b, u64 *c, size_t sites,
                         size_t m, size_t n, size_t k,
                         const std::vector<Modulus> &mods,
                         const SplitPlan &plan, Slice &&slice, Fold &&fold)
{
    const size_t nmods = mods.size();
    Workspace::Frame frame;
    const T *ap, *bp;
    auto keep_a = slice(a, sites * m * k, plan.a_planes, plan.a_plane_bits,
                        frame, ap);
    auto keep_b = slice(b, sites * k * n, plan.b_planes, plan.b_plane_bits,
                        frame, bp);
    (void)keep_a;
    (void)keep_b;

    // One pow2 recombine table per distinct site modulus (cached,
    // data-independent); row-major in (pa, pb) like the plan.
    std::vector<PlaneCache::Pow2Ptr> tabs(nmods);
    for (size_t r = 0; r < nmods; ++r)
        tabs[r] = PlaneCache::global().pow2(plan, mods[r].value());

    const size_t pairs =
        static_cast<size_t>(plan.a_planes) * plan.b_planes;
    parallel_for(
        0, sites,
        [&](size_t sb, size_t se) {
            Workspace::Frame wframe;
            T *prod = wframe.alloc<T>(m * n);
            for (size_t s = sb; s < se; ++s) {
                const Modulus &q = mods[s % nmods];
                const u64 qv = q.value();
                const u64 *w = tabs[s % nmods]->data();
                u64 *cs = c + s * m * n;
                std::fill(cs, cs + m * n, 0);
                for (size_t pair = 0; pair < pairs; ++pair) {
                    const T *am = ap +
                                  (pair / plan.b_planes) * sites * m * k +
                                  s * m * k;
                    const T *bm = bp +
                                  (pair % plan.b_planes) * sites * k * n +
                                  s * k * n;
                    for (size_t i = 0; i < m; ++i)
                        for (size_t j = 0; j < n; ++j) {
                            T acc = 0;
                            for (size_t t = 0; t < k; ++t)
                                acc += am[i * k + t] * bm[t * n + j];
                            prod[i * n + j] = acc;
                        }
                    const u64 wv = w[pair];
                    for (size_t i = 0; i < m * n; ++i)
                        cs[i] = add_mod(
                            cs[i], q.mul(q.reduce(fold(prod[i])), wv), qv);
                }
            }
        },
        row_chunk_grain(sites, pairs * m * n * k));
}

} // namespace

void
fp64_sliced_matmul_sites(const u64 *a, const u64 *b, u64 *c, size_t sites,
                         size_t m, size_t n, size_t k,
                         const std::vector<Modulus> &mods)
{
    obs::Span span("fp64_gemm_sites", obs::cat::gemm);
    note_gemm(sites * m, n, k);
    NEO_CHECK(!mods.empty(), "site modulus list empty");
    const int wa = operand_bits(a, sites * m * k);
    const int wb = operand_bits(b, sites * k * n);
    const SplitPlan plan =
        choose_fp64_split(std::max(wa, 1), std::max(wb, 1), k);
    sliced_matmul_sites_impl<double>(
        a, b, c, sites, m, n, k, mods, plan,
        [](const u64 *p, size_t count, int planes, int bits,
           Workspace::Frame &frame, const double *&out) {
            PlaneCache::F64Ptr keep;
            out = f64_planes(p, count, planes, bits, frame, keep);
            return keep;
        },
        [](double v) { return static_cast<u64>(v); });
}

void
int8_sliced_matmul_sites(const u64 *a, const u64 *b, u64 *c, size_t sites,
                         size_t m, size_t n, size_t k,
                         const std::vector<Modulus> &mods)
{
    obs::Span span("int8_gemm_sites", obs::cat::gemm);
    note_gemm(sites * m, n, k);
    NEO_CHECK(!mods.empty(), "site modulus list empty");
    const int wa = operand_bits(a, sites * m * k);
    const int wb = operand_bits(b, sites * k * n);
    const SplitPlan plan =
        choose_int8_split(std::max(wa, 1), std::max(wb, 1), k);
    sliced_matmul_sites_impl<i32>(
        a, b, c, sites, m, n, k, mods, plan,
        [](const u64 *p, size_t count, int planes, int bits,
           Workspace::Frame &frame, const i32 *&out) {
            PlaneCache::I32Ptr keep;
            out = i32_planes(p, count, planes, bits, frame, keep);
            return keep;
        },
        [](i32 v) { return static_cast<u64>(static_cast<u32>(v)); });
}

const ModSiteMatMulFn &
scalar_site_matmul()
{
    static const ModSiteMatMulFn fn = scalar_matmul_sites;
    return fn;
}

const ModSiteMatMulFn &
fp64_tcu_site_matmul()
{
    static const ModSiteMatMulFn fn = fp64_sliced_matmul_sites;
    return fn;
}

const ModSiteMatMulFn &
int8_tcu_site_matmul()
{
    static const ModSiteMatMulFn fn = int8_sliced_matmul_sites;
    return fn;
}

const ModColMatMulFn &
scalar_col_matmul()
{
    static const ModColMatMulFn fn = scalar_matmul_cols;
    return fn;
}

const ModColMatMulFn &
fp64_tcu_col_matmul()
{
    static const ModColMatMulFn fn = fp64_sliced_matmul_cols;
    return fn;
}

const ModColMatMulFn &
int8_tcu_col_matmul()
{
    static const ModColMatMulFn fn = int8_sliced_matmul_cols;
    return fn;
}

const ModMatMulFn &
fp64_tcu_matmul()
{
    static const ModMatMulFn fn = [](const u64 *a, const u64 *b, u64 *c,
                                     size_t m, size_t n, size_t k,
                                     const Modulus &q) {
        fp64_sliced_matmul(a, b, c, m, n, k, q);
    };
    return fn;
}

const ModMatMulFn &
int8_tcu_matmul()
{
    static const ModMatMulFn fn = [](const u64 *a, const u64 *b, u64 *c,
                                     size_t m, size_t n, size_t k,
                                     const Modulus &q) {
        int8_sliced_matmul(a, b, c, m, n, k, q);
    };
    return fn;
}

} // namespace neo
