#include "tensor/layout.h"

namespace neo {

void
reorder_3d_swap02(const u64 *in, size_t d0, size_t d1, size_t d2, u64 *out)
{
    for (size_t i = 0; i < d0; ++i)
        for (size_t b = 0; b < d1; ++b)
            for (size_t l = 0; l < d2; ++l)
                out[(l * d1 + b) * d0 + i] = in[(i * d1 + b) * d2 + l];
}

void
reorder_4d_swap03(const u64 *in, size_t d0, size_t d1, size_t d2, size_t d3,
                  u64 *out)
{
    for (size_t j = 0; j < d0; ++j)
        for (size_t k = 0; k < d1; ++k)
            for (size_t b = 0; b < d2; ++b)
                for (size_t l = 0; l < d3; ++l)
                    out[((l * d1 + k) * d2 + b) * d0 + j] =
                        in[((j * d1 + k) * d2 + b) * d3 + l];
}

void
reorder_4d_reverse(const u64 *in, size_t d0, size_t d1, size_t d2, size_t d3,
                   u64 *out)
{
    for (size_t i = 0; i < d0; ++i)
        for (size_t j = 0; j < d1; ++j)
            for (size_t k = 0; k < d2; ++k)
                for (size_t l = 0; l < d3; ++l)
                    out[((l * d2 + k) * d1 + j) * d0 + i] =
                        in[((i * d1 + j) * d2 + k) * d3 + l];
}

} // namespace neo
