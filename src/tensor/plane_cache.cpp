#include "tensor/plane_cache.h"

#include <atomic>
#include <map>
#include <tuple>

#include "common/math_util.h"
#include "common/mutex.h"
#include "common/static_operand.h"
#include "obs/obs.h"

namespace neo {

namespace {

struct PlaneKey
{
    uintptr_t addr;
    u64 gen;
    size_t count;
    int planes;
    int plane_bits;

    bool
    operator<(const PlaneKey &o) const
    {
        return std::tie(addr, gen, count, planes, plane_bits) <
               std::tie(o.addr, o.gen, o.count, o.planes, o.plane_bits);
    }
};

struct WidthKey
{
    uintptr_t addr;
    u64 gen;
    size_t count;

    bool
    operator<(const WidthKey &o) const
    {
        return std::tie(addr, gen, count) <
               std::tie(o.addr, o.gen, o.count);
    }
};

struct Pow2Key
{
    int a_planes, a_bits, b_planes, b_bits;
    u64 q;

    bool
    operator<(const Pow2Key &o) const
    {
        return std::tie(a_planes, a_bits, b_planes, b_bits, q) <
               std::tie(o.a_planes, o.a_bits, o.b_planes, o.b_bits, o.q);
    }
};

void
note(bool hit)
{
    if (auto *r = obs::current())
        r->add(hit ? "gemm.plane_cache.hit" : "gemm.plane_cache.miss");
}

/// Payload bytes held by one cache entry (keys are negligible).
size_t
entry_bytes(const PlaneCache::F64Ptr &p)
{
    return p == nullptr ? 0 : p->size() * sizeof(double);
}

size_t
entry_bytes(const PlaneCache::I32Ptr &p)
{
    return p == nullptr ? 0 : p->size() * sizeof(i32);
}

size_t
entry_bytes(int)
{
    return sizeof(int);
}

size_t
entry_bytes(const PlaneCache::Pow2Ptr &p)
{
    return p == nullptr ? 0 : p->size() * sizeof(u64);
}

/// Publish the resident-size gauges (call after any mutation).
void
publish(size_t resident_bytes, size_t entry_count)
{
    if (auto *r = obs::current()) {
        r->set_gauge("plane_cache.resident_bytes",
                     static_cast<double>(resident_bytes));
        r->set_gauge("plane_cache.entries",
                     static_cast<double>(entry_count));
    }
}

void
note_evicted(u64 evicted, size_t freed_bytes)
{
    if (evicted == 0)
        return;
    if (auto *r = obs::current()) {
        r->add("gemm.plane_cache.evict", evicted);
        r->add_value("gemm.plane_cache.evicted_bytes",
                     static_cast<double>(freed_bytes));
    }
}

/// Drop other-generation entries for the same address range: once the
/// pin's generation moved, the old derived forms can never hit again.
/// Freed payload bytes and eviction count accumulate into the
/// out-params so the caller can settle the resident-size gauges.
template <class Map, class Key>
void
evict_stale(Map &m, const Key &key, size_t &freed_bytes, u64 &evicted)
{
    Key lo{};
    lo.addr = key.addr;
    for (auto it = m.lower_bound(lo);
         it != m.end() && it->first.addr == key.addr;) {
        if (it->first.gen != key.gen) {
            freed_bytes += entry_bytes(it->second);
            ++evicted;
            it = m.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace

struct PlaneCache::Impl
{
    SharedMutex mu;
    std::map<PlaneKey, F64Ptr> f64 NEO_GUARDED_BY(mu);
    std::map<PlaneKey, I32Ptr> i32 NEO_GUARDED_BY(mu);
    std::map<WidthKey, int> width NEO_GUARDED_BY(mu);
    std::map<Pow2Key, Pow2Ptr> pow2 NEO_GUARDED_BY(mu);
    std::atomic<bool> enabled{true};
    /// Payload bytes across all maps.
    size_t resident_bytes NEO_GUARDED_BY(mu) = 0;
    /// Entries across all maps.
    size_t entry_count NEO_GUARDED_BY(mu) = 0;
};

PlaneCache::PlaneCache() : impl_(std::make_unique<Impl>()) {}

PlaneCache &
PlaneCache::global()
{
    // Magic-static init; PlaneCache locks internally (Impl::mu).
    // neo-lint: allow(thread-unsafe-static)
    static PlaneCache c;
    return c;
}

void
PlaneCache::set_enabled(bool on)
{
    impl_->enabled.store(on, std::memory_order_release);
}

bool
PlaneCache::enabled() const
{
    return impl_->enabled.load(std::memory_order_acquire);
}

void
PlaneCache::clear()
{
    WriterLock lock(impl_->mu);
    impl_->f64.clear();
    impl_->i32.clear();
    impl_->width.clear();
    impl_->pow2.clear();
    impl_->resident_bytes = 0;
    impl_->entry_count = 0;
    publish(0, 0);
}

PlaneCache::F64Ptr
PlaneCache::f64_planes(const u64 *p, size_t count, int planes, int plane_bits)
{
    if (!enabled() || StaticOperands::instance().pins() == 0)
        return nullptr;
    const u64 gen = StaticOperands::instance().generation(p);
    if (gen == 0)
        return nullptr;
    const PlaneKey key{reinterpret_cast<uintptr_t>(p), gen, count, planes,
                       plane_bits};
    {
        ReaderLock lock(impl_->mu);
        auto it = impl_->f64.find(key);
        if (it != impl_->f64.end()) {
            note(true);
            return it->second;
        }
    }
    auto built = std::make_shared<std::vector<double>>(
        static_cast<size_t>(planes) * count);
    slice_to_f64(p, count, planes, plane_bits, built->data());
    WriterLock lock(impl_->mu);
    size_t freed = 0;
    u64 evicted = 0;
    evict_stale(impl_->f64, key, freed, evicted);
    auto [it, inserted] = impl_->f64.emplace(key, std::move(built));
    if (inserted) {
        impl_->resident_bytes += entry_bytes(it->second);
        ++impl_->entry_count;
    }
    impl_->resident_bytes -= freed;
    impl_->entry_count -= evicted;
    publish(impl_->resident_bytes, impl_->entry_count);
    note_evicted(evicted, freed);
    note(!inserted); // lost race to another thread = a hit after all
    return it->second;
}

PlaneCache::I32Ptr
PlaneCache::i32_planes(const u64 *p, size_t count, int planes, int plane_bits)
{
    if (!enabled() || StaticOperands::instance().pins() == 0)
        return nullptr;
    const u64 gen = StaticOperands::instance().generation(p);
    if (gen == 0)
        return nullptr;
    const PlaneKey key{reinterpret_cast<uintptr_t>(p), gen, count, planes,
                       plane_bits};
    {
        ReaderLock lock(impl_->mu);
        auto it = impl_->i32.find(key);
        if (it != impl_->i32.end()) {
            note(true);
            return it->second;
        }
    }
    auto built = std::make_shared<std::vector<i32>>(
        static_cast<size_t>(planes) * count);
    slice_to_i32(p, count, planes, plane_bits, built->data());
    WriterLock lock(impl_->mu);
    size_t freed = 0;
    u64 evicted = 0;
    evict_stale(impl_->i32, key, freed, evicted);
    auto [it, inserted] = impl_->i32.emplace(key, std::move(built));
    if (inserted) {
        impl_->resident_bytes += entry_bytes(it->second);
        ++impl_->entry_count;
    }
    impl_->resident_bytes -= freed;
    impl_->entry_count -= evicted;
    publish(impl_->resident_bytes, impl_->entry_count);
    note_evicted(evicted, freed);
    note(!inserted);
    return it->second;
}

int
PlaneCache::width_bits(const u64 *p, size_t count)
{
    if (!enabled() || StaticOperands::instance().pins() == 0)
        return -1;
    const u64 gen = StaticOperands::instance().generation(p);
    if (gen == 0)
        return -1;
    const WidthKey key{reinterpret_cast<uintptr_t>(p), gen, count};
    {
        ReaderLock lock(impl_->mu);
        auto it = impl_->width.find(key);
        if (it != impl_->width.end())
            return it->second;
    }
    u64 m = 0;
    for (size_t i = 0; i < count; ++i)
        m |= p[i];
    const int bits = bit_size(m);
    WriterLock lock(impl_->mu);
    size_t freed = 0;
    u64 evicted = 0;
    evict_stale(impl_->width, key, freed, evicted);
    const bool inserted = impl_->width.emplace(key, bits).second;
    if (inserted) {
        impl_->resident_bytes += entry_bytes(bits);
        ++impl_->entry_count;
    }
    impl_->resident_bytes -= freed;
    impl_->entry_count -= evicted;
    publish(impl_->resident_bytes, impl_->entry_count);
    note_evicted(evicted, freed);
    return bits;
}

PlaneCache::Pow2Ptr
PlaneCache::pow2(const SplitPlan &plan, u64 q_value)
{
    const Pow2Key key{plan.a_planes, plan.a_plane_bits, plan.b_planes,
                      plan.b_plane_bits, q_value};
    if (enabled()) {
        ReaderLock lock(impl_->mu);
        auto it = impl_->pow2.find(key);
        if (it != impl_->pow2.end())
            return it->second;
    }
    auto built = std::make_shared<std::vector<u64>>(
        static_cast<size_t>(plan.a_planes) * plan.b_planes);
    for (int pa = 0; pa < plan.a_planes; ++pa)
        for (int pb = 0; pb < plan.b_planes; ++pb)
            (*built)[static_cast<size_t>(pa) * plan.b_planes + pb] = pow_mod(
                2, pa * plan.a_plane_bits + pb * plan.b_plane_bits, q_value);
    if (!enabled())
        return built;
    WriterLock lock(impl_->mu);
    auto [it, inserted] = impl_->pow2.emplace(key, std::move(built));
    if (inserted) {
        impl_->resident_bytes += entry_bytes(it->second);
        ++impl_->entry_count;
        publish(impl_->resident_bytes, impl_->entry_count);
    }
    return it->second;
}

} // namespace neo
