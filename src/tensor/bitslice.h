/**
 * @file
 * Bit-slicing of wide integer operands into planes that fit the
 * Tensor Core datapaths (§3.4 of the paper).
 *
 * FP64: an IEEE double carries 53 mantissa bits, so a K-term product
 * accumulation is exact when  bits(A-plane) + bits(B-plane) +
 * ceil(log2 K) ≤ 53. For 36-bit words the paper keeps A whole and
 * slices B into three 12-bit planes (36 + 12 + 4 = 52); for 48-bit
 * words it slices both sides into two 24-bit planes (2·2 = 4
 * products). choose_fp64_split generalises this: it minimises the
 * number of plane-pair products subject to the exactness constraint.
 *
 * INT8: both operands are sliced into 8-bit planes (5 planes for
 * 36-bit words → 25 products; 6 planes for 48-bit → 36 — the "Booth
 * complexity" of Fig 3).
 *
 * The planners are constexpr so the bit budgets can be *proved at
 * compile time*: src/tensor/gemm.cpp static_asserts every plan
 * reachable from the paper parameter sets, mirroring the neo-lint
 * bit-budget prover (src/lint/bit_budget.h). An out-of-budget plan is
 * a build failure, not a silently wrong answer.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "common/types.h"

namespace neo {

/** A plane decomposition plan for one GEMM operand pair. */
struct SplitPlan
{
    int a_planes;      ///< number of planes for operand A
    int a_plane_bits;  ///< bits per A plane
    int b_planes;      ///< number of planes for operand B
    int b_plane_bits;  ///< bits per B plane

    /// Total plane-pair products ("Booth complexity", Fig 3).
    constexpr int products() const { return a_planes * b_planes; }
};

namespace detail {

/// ceil(log2 k): accumulating k terms of w bits stays below 2^(w +
/// ceil(log2 k)) — the paper's 2^36 * 2^12 * 16 = 2^52 < 2^53 bound.
constexpr int
accum_bits(size_t k)
{
    return k <= 1 ? 0 : bit_size(k - 1);
}

} // namespace detail

/**
 * Minimal-product FP64 split for wa-bit × wb-bit operands accumulated
 * over K terms. Guarantees a_plane_bits + b_plane_bits +
 * ceil(log2 K) ≤ 53 so every per-plane GEMM is exact in doubles.
 *
 * @throws std::invalid_argument if no feasible split exists (a call
 * in a constant-evaluated context then fails to compile instead).
 */
constexpr SplitPlan
choose_fp64_split(int wa, int wb, size_t k)
{
    NEO_CHECK(wa > 0 && wb > 0 && wa <= 64 && wb <= 64, "bad widths");
    const int budget = 53 - detail::accum_bits(k);
    NEO_CHECK(budget >= 2, "K too large for exact FP64 accumulation");
    SplitPlan best{0, 0, 0, 0};
    int best_products = 1 << 30;
    for (int pa = 1; pa <= wa; ++pa) {
        const int abits = static_cast<int>(ceil_div(wa, pa));
        if (abits >= budget)
            continue;
        const int bbits_max = budget - abits;
        const int pb = static_cast<int>(ceil_div(wb, bbits_max));
        if (pa * pb < best_products) {
            best_products = pa * pb;
            best = SplitPlan{pa, abits, pb,
                             static_cast<int>(ceil_div(wb, pb))};
        }
    }
    NEO_CHECK(best_products < (1 << 30), "no feasible FP64 split");
    return best;
}

/// INT8 split: 8-bit planes on both sides (accumulation fits INT32).
constexpr SplitPlan
choose_int8_split(int wa, int wb, size_t k)
{
    NEO_CHECK(wa > 0 && wb > 0 && wa <= 64 && wb <= 64, "bad widths");
    // 8-bit unsigned planes; products are < 2^16, so INT32 accumulation
    // is exact for K up to 2^15.
    NEO_CHECK(16 + detail::accum_bits(k) <= 31,
              "K too large for INT32 accumulation");
    const int pa = static_cast<int>(ceil_div(wa, 8));
    const int pb = static_cast<int>(ceil_div(wb, 8));
    return SplitPlan{pa, 8, pb, 8};
}

/**
 * Compile-time exactness proof of one plan: worst-case accumulated
 * sum k · (2^a_bits − 1) · (2^b_bits − 1) stays below 2^budget_bits
 * (53 for the FP64 mantissa, 31 for the INT32 accumulator), and the
 * planes jointly cover wa/wb-bit operands. Evaluated in 128-bit
 * integer arithmetic — deliberately *not* the planner's bit-count
 * shortcut, so the proof is independent of the code it checks.
 */
constexpr bool
split_plan_exact(const SplitPlan &p, int wa, int wb, size_t k,
                 int budget_bits)
{
    if (p.a_plane_bits <= 0 || p.b_plane_bits <= 0 ||
        p.a_plane_bits >= 63 || p.b_plane_bits >= 63 || k == 0)
        return false;
    if (p.a_planes * p.a_plane_bits < wa ||
        p.b_planes * p.b_plane_bits < wb)
        return false;
    if (p.a_plane_bits + p.b_plane_bits + detail::accum_bits(k) > 120)
        return false; // keep the u128 product below overflow
    const u128 max_a = (static_cast<u128>(1) << p.a_plane_bits) - 1;
    const u128 max_b = (static_cast<u128>(1) << p.b_plane_bits) - 1;
    return static_cast<u128>(k) * max_a * max_b <
           (static_cast<u128>(1) << budget_bits);
}

/// Plan-and-prove in one step, FP64 budget (2^53 mantissa bound).
constexpr bool
fp64_plan_exact(int wa, int wb, size_t k)
{
    return split_plan_exact(choose_fp64_split(wa, wb, k), wa, wb, k, 53);
}

/// Plan-and-prove in one step, INT8 budget (INT32 accumulator).
constexpr bool
int8_plan_exact(int wa, int wb, size_t k)
{
    return split_plan_exact(choose_int8_split(wa, wb, k), wa, wb, k, 31);
}

/**
 * Decompose @p n values into @p planes planes of @p plane_bits bits,
 * least-significant plane first: in[i] = Σ_p out[p][i] << (p*bits).
 * Planes are stored contiguously: out must hold planes*n doubles.
 */
void slice_to_f64(const u64 *in, size_t n, int planes, int plane_bits,
                  double *out);

/// Same decomposition into 8-bit unsigned planes stored as u8-in-i32.
void slice_to_i32(const u64 *in, size_t n, int planes, int plane_bits,
                  i32 *out);

} // namespace neo
