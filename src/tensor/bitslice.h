/**
 * @file
 * Bit-slicing of wide integer operands into planes that fit the
 * Tensor Core datapaths (§3.4 of the paper).
 *
 * FP64: an IEEE double carries 53 mantissa bits, so a K-term product
 * accumulation is exact when  bits(A-plane) + bits(B-plane) +
 * ceil(log2 K) ≤ 53. For 36-bit words the paper keeps A whole and
 * slices B into three 12-bit planes (36 + 12 + 4 = 52); for 48-bit
 * words it slices both sides into two 24-bit planes (2·2 = 4
 * products). choose_fp64_split generalises this: it minimises the
 * number of plane-pair products subject to the exactness constraint.
 *
 * INT8: both operands are sliced into 8-bit planes (5 planes for
 * 36-bit words → 25 products; 6 planes for 48-bit → 36 — the "Booth
 * complexity" of Fig 3).
 */
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace neo {

/** A plane decomposition plan for one GEMM operand pair. */
struct SplitPlan
{
    int a_planes;      ///< number of planes for operand A
    int a_plane_bits;  ///< bits per A plane
    int b_planes;      ///< number of planes for operand B
    int b_plane_bits;  ///< bits per B plane

    /// Total plane-pair products ("Booth complexity", Fig 3).
    int products() const { return a_planes * b_planes; }
};

/**
 * Minimal-product FP64 split for wa-bit × wb-bit operands accumulated
 * over K terms. Guarantees a_plane_bits + b_plane_bits +
 * ceil(log2 K) ≤ 53 so every per-plane GEMM is exact in doubles.
 *
 * @throws std::invalid_argument if no feasible split exists.
 */
SplitPlan choose_fp64_split(int wa, int wb, size_t k);

/// INT8 split: 8-bit planes on both sides (accumulation fits INT32).
SplitPlan choose_int8_split(int wa, int wb, size_t k);

/**
 * Decompose @p n values into @p planes planes of @p plane_bits bits,
 * least-significant plane first: in[i] = Σ_p out[p][i] << (p*bits).
 * Planes are stored contiguously: out must hold planes*n doubles.
 */
void slice_to_f64(const u64 *in, size_t n, int planes, int plane_bits,
                  double *out);

/// Same decomposition into 8-bit unsigned planes stored as u8-in-i32.
void slice_to_i32(const u64 *in, size_t n, int planes, int plane_bits,
                  i32 *out);

} // namespace neo
