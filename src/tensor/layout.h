/**
 * @file
 * Data-layout transforms from §4.3 (Figs 6 and 8).
 *
 * BConv input is logically an α × BatchSize × N tensor (limb-major);
 * the optimized kernel wants N × BatchSize × α so that the innermost
 * dimension is the GEMM K dimension and accesses coalesce. IP input
 * is β × α' × BatchSize × N, reordered to N × α' × BatchSize × β, and
 * the evaluation keys β̃ × β × α' × N to N × α' × β × β̃.
 *
 * These are pure permutations; the pre/postprocessing cost they add is
 * what Fig 13 shows to be negligible next to the memory traffic they
 * save.
 */
#pragma once

#include <cstddef>

#include "common/types.h"

namespace neo {

/**
 * (d0 × d1 × d2) → (d2 × d1 × d0):
 * out[l][b][i] = in[i][b][l]. Used by BConv (α×BS×N → N×BS×α) and its
 * inverse (α'×BS×N ← N×BS×α').
 */
void reorder_3d_swap02(const u64 *in, size_t d0, size_t d1, size_t d2,
                       u64 *out);

/**
 * (d0 × d1 × d2 × d3) → (d3 × d1 × d2 × d0):
 * out[l][k][b][j] = in[j][k][b][l]. Used by IP's limb tensor
 * (β×α'×BS×N → N×α'×BS×β) and back.
 */
void reorder_4d_swap03(const u64 *in, size_t d0, size_t d1, size_t d2,
                       size_t d3, u64 *out);

/**
 * (d0 × d1 × d2 × d3) → (d3 × d2 × d1 × d0):
 * out[l][k][j][i] = in[i][j][k][l]. Used by IP's evaluation keys
 * (β̃×β×α'×N → N×α'×β×β̃).
 */
void reorder_4d_reverse(const u64 *in, size_t d0, size_t d1, size_t d2,
                        size_t d3, u64 *out);

} // namespace neo
