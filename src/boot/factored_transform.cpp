#include "boot/factored_transform.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace neo::boot {

namespace {

/// Dense S×S complex matrix product: c = a·b.
std::vector<Complex>
mat_mul(const std::vector<Complex> &a, const std::vector<Complex> &b,
        size_t s)
{
    std::vector<Complex> c(s * s, Complex(0, 0));
    for (size_t i = 0; i < s; ++i) {
        for (size_t k = 0; k < s; ++k) {
            const Complex aik = a[i * s + k];
            if (std::abs(aik) < 1e-15)
                continue;
            for (size_t j = 0; j < s; ++j)
                c[i * s + j] += aik * b[k * s + j];
        }
    }
    return c;
}

/// Dense inverse via Gauss-Jordan (stages are well-conditioned
/// butterflies; S ≤ a few hundred at test scale).
std::vector<Complex>
mat_inv(std::vector<Complex> a, size_t s)
{
    std::vector<Complex> inv(s * s, Complex(0, 0));
    for (size_t i = 0; i < s; ++i)
        inv[i * s + i] = Complex(1, 0);
    for (size_t col = 0; col < s; ++col) {
        // Pivot.
        size_t piv = col;
        for (size_t r = col; r < s; ++r) {
            if (std::abs(a[r * s + col]) > std::abs(a[piv * s + col]))
                piv = r;
        }
        NEO_CHECK(std::abs(a[piv * s + col]) > 1e-12,
                  "singular stage matrix");
        if (piv != col) {
            for (size_t j = 0; j < s; ++j) {
                std::swap(a[piv * s + j], a[col * s + j]);
                std::swap(inv[piv * s + j], inv[col * s + j]);
            }
        }
        const Complex d = a[col * s + col];
        for (size_t j = 0; j < s; ++j) {
            a[col * s + j] /= d;
            inv[col * s + j] /= d;
        }
        for (size_t r = 0; r < s; ++r) {
            if (r == col)
                continue;
            const Complex f = a[r * s + col];
            if (std::abs(f) < 1e-15)
                continue;
            for (size_t j = 0; j < s; ++j) {
                a[r * s + j] -= f * a[col * s + j];
                inv[r * s + j] -= f * inv[col * s + j];
            }
        }
    }
    return inv;
}

} // namespace

FactoredEmbedding::FactoredEmbedding(size_t n, size_t groups)
    : n_(n), slots_(n / 2)
{
    NEO_CHECK(is_pow2(n) && n >= 8, "degree must be a power of two >= 8");
    const size_t levels = static_cast<size_t>(log2_exact(slots_));
    NEO_CHECK(groups >= 1 && groups <= levels, "bad group count");

    // σ = bit reversal over log2(S) bits.
    sigma_.resize(slots_);
    for (size_t k = 0; k < slots_; ++k)
        sigma_[k] = reverse_bits(k, static_cast<int>(levels));

    // Multiply consecutive stage matrices into the requested groups
    // (stage 1 = smallest blocks applies first).
    const size_t per_group = ceil_div(levels, groups);
    size_t level = 1;
    while (level <= levels) {
        std::vector<Complex> acc = stage_matrix(level);
        ++level;
        for (size_t g = 1; g < per_group && level <= levels; ++g) {
            acc = mat_mul(stage_matrix(level), acc, slots_);
            ++level;
        }
        inverse_.emplace_back(mat_inv(acc, slots_), slots_);
        forward_.emplace_back(std::move(acc), slots_);
    }
    // Inverse stages must apply in reverse order; store them reversed
    // so callers iterate naturally.
    std::reverse(inverse_.begin(), inverse_.end());
}

std::vector<Complex>
FactoredEmbedding::stage_matrix(size_t level) const
{
    const size_t s = slots_;
    const size_t block = 1ULL << level; // S_d of the merged transform
    const size_t dist = block / 2;
    // The butterfly merges two transforms of ring degree N_d = 2*block
    // with ζ_d a primitive 2N_d-th root of unity.
    const size_t two_nd = 4 * block;
    auto zeta = [&](u64 e) {
        const double theta = 2.0 * M_PI * static_cast<double>(e % two_nd) /
                             static_cast<double>(two_nd);
        return Complex(std::cos(theta), std::sin(theta));
    };
    // tw[t] = ζ_d^{5^t mod 2N_d} for t in [0, block).
    std::vector<Complex> tw(block);
    u64 e = 1;
    for (size_t t = 0; t < block; ++t) {
        tw[t] = zeta(e);
        e = (e * 5) % two_nd;
    }

    std::vector<Complex> m(s * s, Complex(0, 0));
    for (size_t beta = 0; beta < s; beta += block) {
        for (size_t t = 0; t < dist; ++t) {
            const size_t i = beta + t;
            const size_t j = beta + t + dist;
            // z_i = x_i + tw[t]·x_j ; z_j = x_i + tw[t+dist]·x_j.
            m[i * s + i] = Complex(1, 0);
            m[i * s + j] = tw[t];
            m[j * s + i] = Complex(1, 0);
            m[j * s + j] = tw[t + dist];
        }
    }
    return m;
}

std::vector<Complex>
FactoredEmbedding::pack_base(const std::vector<double> &coeffs) const
{
    NEO_CHECK(coeffs.size() == n_, "coefficient count mismatch");
    std::vector<Complex> base(slots_);
    for (size_t k = 0; k < slots_; ++k) {
        base[k] = Complex(coeffs[sigma_[k]], 0) +
                  Complex(0, 1) * coeffs[sigma_[k] + slots_];
    }
    return base;
}

std::vector<Complex>
FactoredEmbedding::apply_forward(std::vector<Complex> base) const
{
    for (const auto &lt : forward_)
        base = lt.apply_plain(base);
    return base;
}

std::vector<Complex>
FactoredEmbedding::apply_inverse(std::vector<Complex> z) const
{
    for (const auto &lt : inverse_)
        z = lt.apply_plain(z);
    return z;
}

} // namespace neo::boot
