/**
 * @file
 * CKKS bootstrapping (PackBootstrap, §5): refresh an exhausted
 * ciphertext's multiplicative budget.
 *
 * Stages, as in Fig 5's application column and the standard
 * Lattigo/HEAAN pipeline:
 *
 *  1. ModRaise — reinterpret the level-0 ciphertext over the full
 *     chain; it now decrypts to m + q0·I for a small integer
 *     polynomial I (|I| ≲ ||s||₁/2, hence the sparse secret).
 *  2. CoeffToSlot — two homomorphic linear transforms (+ conjugation)
 *     move the N coefficients into the slots of two ciphertexts.
 *  3. EvalMod — evaluate (1/2π)·sin(2π t) ≈ t − I on each: Chebyshev
 *     approximation of a scaled cosine followed by double-angle
 *     steps (the Double Rescale discipline applies here at small
 *     WordSize).
 *  4. SlotToCoeff — the inverse transforms reassemble a fresh
 *     ciphertext encrypting ≈ m at a higher level.
 *
 * Matrices for stages 2/4 are derived *numerically from the encoder's
 * own canonical embedding*, so the implementation cannot drift from
 * the encoding convention.
 */
#pragma once

#include "ckks/linear_transform.h"
#include "ckks/poly_eval.h"

namespace neo::boot {

// Explicit imports instead of `using namespace ckks;` so includers of
// this header don't inherit the whole ckks namespace into neo::boot.
using ckks::Ciphertext;
using ckks::CkksContext;
using ckks::Complex;
using ckks::EvalKeyBundle;
using ckks::Evaluator;
using ckks::LinearTransform;
using ckks::Plaintext;
using ckks::PolyEvaluator;

/** Tunables for the sine approximation and transform structure. */
struct BootstrapOptions
{
    double k_range = 8.0;     ///< bound on |t| = |m + q0·I|/q0
    int sin_degree = 63;      ///< Chebyshev degree of the base cosine
    int double_angles = 1;    ///< r: cos doubling steps (error scales ~4^r)
    size_t input_level = 0;   ///< level the input is dropped to
    /**
     * 0: dense single-stage CtS/StC. G ≥ 1: factored butterfly
     * transforms grouped into G homomorphic stages each (the
     * PackBootstrap "3 BSGS stages" structure; costs 2G-1 extra
     * levels, saves rotations at scale).
     */
    size_t factored_groups = 0;
};

/** Precomputed bootstrapping machinery for one context. */
class Bootstrapper
{
  public:
    /**
     * @param keys bundle with the relin key and Galois keys for
     *        required_rotations() (+ conjugation). Must outlive this
     *        object.
     */
    Bootstrapper(const CkksContext &ctx, const Evaluator &ev,
                 const EvalKeyBundle &keys,
                 const BootstrapOptions &opts = {});
    ~Bootstrapper();

    /// Rotation steps whose Galois keys the transforms require
    /// (includes the factored stages' diagonal offsets when enabled).
    static std::vector<i64>
    required_rotations(const CkksContext &ctx,
                       const BootstrapOptions &opts = {});

    /**
     * Refresh @p ct (at opts.input_level) to a higher level.
     * The output level is whatever the EvalMod depth leaves standing.
     */
    Ciphertext bootstrap(const Ciphertext &ct) const;

    /// Multiplicative depth consumed above the input level.
    size_t depth() const;

  private:
    Ciphertext mod_raise(const Ciphertext &ct) const;
    /// EvalMod with a complex pre-factor folded into the input
    /// normalisation (the factored path feeds i·b-valued slots).
    Ciphertext eval_mod(const Ciphertext &ct, Complex prefactor) const;
    Ciphertext bootstrap_dense(const Ciphertext &raised) const;
    Ciphertext bootstrap_factored(const Ciphertext &raised) const;

    const CkksContext &ctx_;
    const Evaluator &ev_;
    const EvalKeyBundle &keys_;
    BootstrapOptions opts_;
    PolyEvaluator poly_;
    std::vector<double> cos_coeffs_; // Chebyshev fit of the base cosine
    // Dense path: CtS halves from slots; StC slots from halves.
    std::unique_ptr<LinearTransform> cts_lo_, cts_hi_;
    std::unique_ptr<LinearTransform> stc_lo_, stc_hi_;
    // Factored path: grouped butterfly stages.
    std::unique_ptr<class FactoredEmbedding> factored_;
};

} // namespace neo::boot
