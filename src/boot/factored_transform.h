/**
 * @file
 * Factored CoeffToSlot / SlotToCoeff — the multi-stage structure of
 * production bootstrapping (the "3 BSGS stages" of the PackBootstrap
 * schedule), replacing one dense slots×slots transform by a few
 * sparse ones.
 *
 * The canonical embedding z_k = m(ζ^{5^k}) factors, by the even/odd
 * (decimation-in-time) recursion in the rotation-group ordering, into
 *
 *   z = S_log2(S) ∘ … ∘ S_1 (base),
 *   base[k] = c_{σ(k)} + i·c_{σ(k)+N/2},  σ = bit-reversal,
 *
 * where every butterfly stage S_ℓ (block size B = 2^ℓ, distance
 * D = B/2) touches only the diagonals {0, +D, −D}: a 2-rotation
 * homomorphic linear transform. Consecutive stages are multiplied
 * numerically into a configurable number of groups, trading rotations
 * per stage against multiplicative levels — exactly the grouping knob
 * production bootstraps tune.
 *
 * Everything is validated against the dense embedding matrix derived
 * from the encoder, so the factorization cannot drift from the
 * encoding convention.
 */
#pragma once

#include <vector>

#include "ckks/linear_transform.h"

namespace neo::boot {

using ckks::Complex;

/** The butterfly factorization of the slot embedding. */
class FactoredEmbedding
{
  public:
    /**
     * Build the factorization for ring degree @p n, grouped into
     * @p groups homomorphic stages (1 ≤ groups ≤ log2(n/2)).
     */
    FactoredEmbedding(size_t n, size_t groups);

    size_t slots() const { return slots_; }
    size_t groups() const { return forward_.size(); }

    /// σ: base slot k holds coefficients σ(k) and σ(k)+N/2.
    size_t sigma(size_t k) const { return sigma_[k]; }

    /// Forward grouped stages: base values -> slot values.
    const std::vector<ckks::LinearTransform> &forward() const
    {
        return forward_;
    }

    /// Inverse grouped stages: slot values -> base values.
    const std::vector<ckks::LinearTransform> &inverse() const
    {
        return inverse_;
    }

    // ---- Plaintext reference paths (tests + derivation checks) ------

    /// base[k] = c_{σ(k)} + i·c_{σ(k)+N/2} for a length-N real vector.
    std::vector<Complex> pack_base(const std::vector<double> &coeffs) const;

    /// Apply all forward stages to a base vector (plaintext).
    std::vector<Complex> apply_forward(std::vector<Complex> base) const;

    /// Apply all inverse stages to a slot vector (plaintext).
    std::vector<Complex> apply_inverse(std::vector<Complex> z) const;

  private:
    /// Dense matrix of one butterfly stage (block size 2^level).
    std::vector<Complex> stage_matrix(size_t level) const;

    size_t n_;
    size_t slots_;
    std::vector<size_t> sigma_;
    std::vector<ckks::LinearTransform> forward_;
    std::vector<ckks::LinearTransform> inverse_;
};

} // namespace neo::boot
