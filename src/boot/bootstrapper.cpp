#include "boot/bootstrapper.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "boot/factored_transform.h"
#include "common/check.h"
#include "obs/obs.h"

namespace neo::boot {

namespace {

/// Parameters of the base cosine g(u) = cos((2πK·u - π/2) / 2^r).
struct CosArg
{
    double k;
    int r;
};

double
base_cos(double u, void *arg)
{
    const auto *a = static_cast<const CosArg *>(arg);
    return std::cos((2.0 * M_PI * a->k * u - M_PI / 2.0) /
                    std::pow(2.0, a->r));
}

} // namespace

Bootstrapper::Bootstrapper(const CkksContext &ctx, const Evaluator &ev,
                           const EvalKeyBundle &keys,
                           const BootstrapOptions &opts)
    : ctx_(ctx), ev_(ev), keys_(keys), opts_(opts),
      poly_(ctx, ev, keys)
{
    const size_t n = ctx.n();
    const size_t s = n / 2;

    // Base-cosine Chebyshev fit for EvalMod.
    CosArg arg{opts_.k_range, opts_.double_angles};
    cos_coeffs_ =
        PolyEvaluator::chebyshev_fit(base_cos, &arg, opts_.sin_degree);

    // Precompute e_k powers once; build the four transform matrices.
    std::vector<u64> exps(s);
    u64 e = 1;
    for (size_t k = 0; k < s; ++k) {
        exps[k] = e;
        e = (e * 5) % (2 * n);
    }
    auto zeta = [&](u64 expo) {
        const double theta = M_PI * static_cast<double>(expo % (2 * n)) /
                             static_cast<double>(n);
        return Complex(std::cos(theta), std::sin(theta));
    };

    // CtS: u_half[i] = Σ_k (1/N)·conj(A[k][i(+S)])·z[k]; c = u+conj(u).
    std::vector<Complex> m_lo(s * s), m_hi(s * s);
    // StC: z[k] = Σ_i A[k][i]·c_lo[i] + A[k][i+S]·c_hi[i].
    std::vector<Complex> a_lo(s * s), a_hi(s * s);
    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t k = 0; k < s; ++k) {
        for (size_t i = 0; i < s; ++i) {
            Complex lo = zeta(exps[k] * i);
            Complex hi = zeta(exps[k] * (i + s));
            a_lo[k * s + i] = lo;
            a_hi[k * s + i] = hi;
            m_lo[i * s + k] = std::conj(lo) * inv_n;
            m_hi[i * s + k] = std::conj(hi) * inv_n;
        }
    }
    cts_lo_ = std::make_unique<LinearTransform>(std::move(m_lo), s);
    cts_hi_ = std::make_unique<LinearTransform>(std::move(m_hi), s);
    stc_lo_ = std::make_unique<LinearTransform>(std::move(a_lo), s);
    stc_hi_ = std::make_unique<LinearTransform>(std::move(a_hi), s);

    if (opts_.factored_groups > 0) {
        factored_ = std::make_unique<FactoredEmbedding>(
            n, opts_.factored_groups);
    }
}

Bootstrapper::~Bootstrapper() = default;

std::vector<i64>
Bootstrapper::required_rotations(const CkksContext &ctx,
                                 const BootstrapOptions &opts)
{
    // Dense transforms touch every BSGS rotation step of the slot
    // dimension.
    const size_t s = ctx.n() / 2;
    size_t g = 1;
    while (g * g < s)
        g <<= 1;
    std::vector<i64> rots;
    for (size_t j = 1; j < g; ++j)
        rots.push_back(static_cast<i64>(j));
    for (size_t i = 1; i * g < s; ++i)
        rots.push_back(static_cast<i64>(i * g));
    if (opts.factored_groups > 0) {
        // The sparse stages rotate by their own diagonal offsets.
        FactoredEmbedding fe(ctx.n(), opts.factored_groups);
        auto add = [&](const std::vector<ckks::LinearTransform> &stages) {
            for (const auto &stage : stages)
                for (i64 r : stage.required_rotations())
                    rots.push_back(r);
        };
        add(fe.forward());
        add(fe.inverse());
    }
    std::sort(rots.begin(), rots.end());
    rots.erase(std::unique(rots.begin(), rots.end()), rots.end());
    return rots;
}

size_t
Bootstrapper::depth() const
{
    size_t cheb_depth = 1;
    while ((1u << cheb_depth) < static_cast<size_t>(opts_.sin_degree))
        ++cheb_depth;
    const size_t eval_mod_depth =
        1 + cheb_depth + 1 + static_cast<size_t>(opts_.double_angles);
    if (opts_.factored_groups == 0) {
        // dense CtS + EvalMod + dense StC.
        return 1 + eval_mod_depth + 1;
    }
    // G inverse groups + EvalMod + i-recombine + G forward groups.
    return opts_.factored_groups + eval_mod_depth + 1 +
           opts_.factored_groups;
}

Ciphertext
Bootstrapper::mod_raise(const Ciphertext &ct) const
{
    NEO_CHECK(ct.level == opts_.input_level,
              "input must sit at the configured input level");
    NEO_CHECK(opts_.input_level == 0,
              "ModRaise implemented from level 0");
    const size_t n = ctx_.n();
    const u64 q0 = ctx_.q_basis()[0].value();
    const auto top_mods = ctx_.active_mods(ctx_.max_level());

    Ciphertext out;
    out.level = ctx_.max_level();
    // The raised ciphertext decrypts to m + q0·I; declaring scale = q0
    // makes its logical value t = (m + q0·I)/q0, |t| ≤ K.
    out.scale = static_cast<double>(q0);
    for (int comp = 0; comp < 2; ++comp) {
        RnsPoly src = comp == 0 ? ct.c0 : ct.c1;
        ctx_.tables().to_coeff(src);
        RnsPoly dst(n, top_mods, PolyForm::coeff);
        const u64 *limb0 = src.limb(0);
        for (size_t i = 0; i < top_mods.size(); ++i) {
            const Modulus &qi = top_mods[i];
            u64 *d = dst.limb(i);
            for (size_t l = 0; l < n; ++l) {
                // Centered lift of the level-0 residue.
                u64 v = limb0[l];
                d[l] = v > q0 / 2
                           ? qi.sub(v % qi.value(), q0 % qi.value())
                           : v % qi.value();
            }
        }
        ctx_.tables().to_eval(dst);
        (comp == 0 ? out.c0 : out.c1) = std::move(dst);
    }
    return out;
}

Ciphertext
Bootstrapper::eval_mod(const Ciphertext &ct, Complex prefactor) const
{
    const size_t slots = ctx_.encoder().slot_count();
    const double nominal =
        static_cast<double>(ctx_.q_basis()[1].value());

    // Normalise: value t -> prefactor·t/K at exactly the nominal
    // scale (one plaintext multiplication with an engineered
    // constant; the factored path passes prefactor = -i to turn its
    // i·b-valued slots real).
    const double q_drop =
        static_cast<double>(ctx_.q_basis()[ct.level].value());
    std::vector<Complex> ones(slots, Complex(1, 0));
    const double enc_scale =
        (1.0 / opts_.k_range) * nominal * q_drop / ct.scale;
    std::vector<Complex> pre(slots, prefactor);
    Ciphertext x = ev_.rescale(
        ev_.mul_plain(ct, ctx_.encode(pre, ct.level, enc_scale)));
    x.scale = nominal;

    // Base cosine, then r double-angle steps: cos(2θ) = 2cos²θ - 1.
    Ciphertext c = poly_.evaluate_chebyshev(x, cos_coeffs_);
    for (int r = 0; r < opts_.double_angles; ++r) {
        Ciphertext sq = ev_.rescale(ev_.mul(c, c, keys_));
        sq.scale = nominal;
        c = ev_.add(sq, sq);
        Plaintext minus_one = ctx_.encode(ones, c.level, c.scale);
        minus_one.poly.negate_inplace();
        c = ev_.add_plain(c, minus_one);
    }
    // c's value is sin(2πt) ≈ 2π(t - I); re-declare the scale so the
    // interpreted value becomes (t - I)·q0 at the *input message's*
    // scale — i.e. the refreshed message itself.
    return c;
}

Ciphertext
Bootstrapper::bootstrap_dense(const Ciphertext &raised) const
{
    // 2. CoeffToSlot: two transforms + conjugations give the two
    //    coefficient halves as real slot vectors.
    std::optional<obs::Span> stage_span;
    stage_span.emplace("boot_cts", obs::cat::stage);
    Ciphertext w0 = cts_lo_->apply_bsgs(ev_, ctx_, raised, keys_);
    Ciphertext w1 = cts_hi_->apply_bsgs(ev_, ctx_, raised, keys_);
    Ciphertext u0 = ev_.add(w0, ev_.conjugate(w0, keys_));
    Ciphertext u1 = ev_.add(w1, ev_.conjugate(w1, keys_));

    // 3. EvalMod on both halves.
    stage_span.emplace("boot_evalmod", obs::cat::stage);
    Ciphertext v0 = eval_mod(u0, Complex(1, 0));
    Ciphertext v1 = eval_mod(u1, Complex(1, 0));

    // 4. SlotToCoeff.
    stage_span.emplace("boot_stc", obs::cat::stage);
    Ciphertext z0 = stc_lo_->apply_bsgs(ev_, ctx_, v0, keys_);
    Ciphertext z1 = stc_hi_->apply_bsgs(ev_, ctx_, v1, keys_);
    return ev_.add(z0, z1);
}

Ciphertext
Bootstrapper::bootstrap_factored(const Ciphertext &raised) const
{
    const size_t slots = ctx_.encoder().slot_count();

    // 2. CoeffToSlot: inverse butterfly groups take the slot values z
    //    back to the base vector a + i·b (a, b = coefficient halves
    //    in σ order), then conjugation splits the two real parts.
    std::optional<obs::Span> stage_span;
    stage_span.emplace("boot_cts", obs::cat::stage);
    Ciphertext x = raised;
    for (const auto &stage : factored_->inverse())
        x = stage.apply(ev_, ctx_, x, keys_); // sparse: few diagonals
    Ciphertext xc = ev_.conjugate(x, keys_);
    Ciphertext u0 = ev_.add(x, xc);      // value 2a
    Ciphertext w1 = ev_.sub(x, xc);      // value 2i·b

    // 3. EvalMod; the ±i and 1/2 factors fold into the prefactor.
    stage_span.emplace("boot_evalmod", obs::cat::stage);
    Ciphertext v0 = eval_mod(u0, Complex(0.5, 0));
    Ciphertext v1 = eval_mod(w1, Complex(0, -0.5));

    // 4. SlotToCoeff: recombine base' = v0 + i·v1 (one plaintext
    //    multiplication), then the forward butterfly groups. Encoding
    //    the constant at exactly the dropped prime's value keeps the
    //    rescaled v1i on v0's scale, so the add needs no fudging.
    stage_span.emplace("boot_stc", obs::cat::stage);
    std::vector<Complex> eye(slots, Complex(0, 1));
    const double q_drop =
        static_cast<double>(ctx_.q_basis()[v1.level].value());
    Ciphertext v1i = ev_.rescale(
        ev_.mul_plain(v1, ctx_.encode(eye, v1.level, q_drop)));
    Ciphertext v0m = ev_.mod_switch_to(v0, v1i.level);
    v0m.scale = v1i.scale; // equal up to FP bookkeeping
    Ciphertext base = ev_.add(v0m, v1i);
    for (const auto &stage : factored_->forward())
        base = stage.apply(ev_, ctx_, base, keys_); // sparse: few diagonals
    return base;
}

Ciphertext
Bootstrapper::bootstrap(const Ciphertext &ct) const
{
    obs::Span span("bootstrap", obs::cat::stage);
    if (auto *r = obs::current()) {
        r->add("op.bootstrap");
        // Work histogram: input level per bootstrap invocation
        // (deterministic across thread counts, like the op counters).
        r->observe("work.boot.input_limbs",
                   static_cast<double>(ct.level + 1));
    }
    const double delta_in = ct.scale;
    const u64 q0 = ctx_.q_basis()[0].value();

    // 1. ModRaise.
    Ciphertext raised = mod_raise(ct);

    Ciphertext out = opts_.factored_groups > 0
                         ? bootstrap_factored(raised)
                         : bootstrap_dense(raised);

    // Scale bookkeeping: the slot values now equal sin(2πt) ≈
    // 2π·(m̂/q0) times the transforms' scale factors; declaring
    //   scale' = scale · 2π · Δ_in / q0
    // makes the interpreted value the original message again.
    out.scale = out.scale * 2.0 * M_PI * delta_in /
                static_cast<double>(q0);
    return out;
}

} // namespace neo::boot
