/**
 * @file
 * neo-lint's lexer and per-file symbol table.
 *
 * The lexer splits a translation unit into lines whose literals and
 * comments are blanked (comment text is kept separately for the
 * `neo-lint:` markers). Raw string literals — `R"(...)"` and the
 * delimited `R"delim(...)delim"` form — are blanked too, including
 * across lines, so rule patterns never fire inside embedded JSON or
 * shader text.
 *
 * On top of the lexed lines, build_symtab() recovers just enough
 * structure for symbol-aware rules without a real C++ parser:
 *
 *  - class/struct scopes with their *data members*: declaration line,
 *    type text, name, whether the member is a lock (std/neo mutex
 *    types), an atomic, an unordered container, a scalar counter, and
 *    whether it carries a NEO_GUARDED_BY / NEO_PT_GUARDED_BY
 *    annotation;
 *  - function bodies (free functions and out-of-line methods) with
 *    their name and 1-based body line range;
 *  - every unordered_map/unordered_set symbol declared anywhere in the
 *    file (members, locals, file scope), for iteration-order rules.
 *
 * The recovery is heuristic (brace tracking + declaration tail
 * parsing), tuned to this tree's style: declarations end on the line
 * of their `;`, member names come last, and inline member-initializer
 * parens/braces are tolerated. Rules that consume the table are
 * expected to fail open (no symbol ⇒ no finding).
 */
#pragma once

#include <string>
#include <vector>

namespace neo::lint {

/** One source line, split into matchable code and comment text. */
struct Line
{
    std::string raw;     ///< original text
    std::string code;    ///< literals and comments blanked with spaces
    std::string comment; ///< concatenated comment text on this line
};

/// Lex @p text into lines with literals/comments blanked. Handles
/// ordinary, character, and raw string literals plus // and block
/// comments; newlines inside raw strings and block comments keep line
/// numbers aligned with the input.
std::vector<Line> lex(const std::string &text);

/** One data member of a class scope. */
struct Member
{
    std::string type; ///< declaration text left of the name, trimmed
    std::string name;
    int line = 0;              ///< 1-based declaration line
    bool guarded = false;      ///< NEO_GUARDED_BY / NEO_PT_GUARDED_BY
    bool is_lock = false;      ///< std/neo mutex or shared_mutex
    bool is_atomic = false;    ///< std::atomic<...>
    bool is_unordered = false; ///< std::unordered_{map,set}
    bool is_counter = false;   ///< plain integral/bool scalar
};

/** One class/struct scope and its data members. */
struct ClassInfo
{
    std::string name;
    int line = 0; ///< 1-based line of the class-head
    std::vector<Member> members;

    bool
    has_lock() const
    {
        for (const Member &m : members)
            if (m.is_lock)
                return true;
        return false;
    }
};

/** One function body (free function or out-of-line method). */
struct FunctionInfo
{
    std::string name; ///< last declarator identifier (no qualifiers)
    int line = 0;     ///< 1-based line the body's '{' opens on
    int body_begin = 0; ///< first line inside the body (== line)
    int body_end = 0;   ///< line of the closing '}'
};

/** Everything the symbol-aware rules need about one file. */
struct SymbolTable
{
    std::vector<ClassInfo> classes;
    std::vector<FunctionInfo> functions;
    /// Names of every lock data member in the file (receiver matching
    /// for lock-discipline).
    std::vector<std::string> lock_names;
    /// Names of every unordered_map/unordered_set symbol declared in
    /// the file — members, locals, and file scope alike.
    std::vector<std::string> unordered_names;

    bool has_lock_name(const std::string &n) const;
    bool has_unordered_name(const std::string &n) const;
    /// The innermost function whose body spans @p line, or nullptr.
    const FunctionInfo *enclosing_function(int line) const;
};

/// Build the symbol table for one lexed file.
SymbolTable build_symtab(const std::vector<Line> &lines);

} // namespace neo::lint
