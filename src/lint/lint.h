/**
 * @file
 * neo-lint: a domain-specific static analyzer for the Neo source tree.
 *
 * Neo's correctness rests on invariants the C++ compiler never checks:
 * hot-path modular reductions must go through the vetted Modulus /
 * math_util helpers (raw `%` hides the Barrett/Shoup discipline and is
 * the first thing a GPU port gets wrong), limb data must never pass
 * through floating point outside the sanctioned bit-slicing code, and
 * nothing reachable from ThreadPool workers may hide function-local
 * mutable state. The rules engine scans the tree for those hazards
 * with a light lexer (comments and string literals — including raw
 * string literals — are blanked before matching, so rule patterns
 * never fire inside either); the bit-budget prover (bit_budget.h)
 * statically verifies the FP64/INT8 plane accumulation bounds for
 * every reachable GEMM plan.
 *
 * v2 adds a symbol-aware pass (symtab.h): each file is parsed into a
 * per-file symbol table — class scopes with their data members (type,
 * guarded-ness, lock-ness), and function bodies with line ranges —
 * which powers four concurrency/determinism rules: `unannotated-mutex`
 * (raw std::mutex members instead of the annotated neo::Mutex),
 * `lock-discipline` (naked .lock()/.unlock() on a known lock member
 * instead of an RAII guard), `unordered-iteration-output` (range-for
 * over a known unordered container inside an output/export function —
 * nondeterministic order in serialized artifacts), and
 * `nonatomic-shared-counter` (plain scalar member of a lock-owning
 * class with no NEO_GUARDED_BY and no std::atomic).
 *
 * Suppressions: `// neo-lint: allow(rule-a, rule-b)` on a line
 * suppresses those rules on that line and the next one, so an
 * annotation can sit on its own line above the deliberate exception.
 * Fixture files may also carry `// neo-lint: as-path(src/neo/x.cpp)`
 * to be classified as if they lived at that path (used by
 * tests/data/lint/).
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "lint/bit_budget.h"

namespace neo::lint {

/// Stable rule identifiers (also the allow(...) tokens).
namespace rule {
inline constexpr const char *raw_mod = "raw-mod";
inline constexpr const char *float_on_limb = "float-on-limb";
inline constexpr const char *thread_unsafe_static = "thread-unsafe-static";
inline constexpr const char *banned_rng = "banned-rng";
inline constexpr const char *naked_new = "naked-new";
inline constexpr const char *header_hygiene = "header-hygiene";
inline constexpr const char *obs_span_leak = "obs-span-leak";
inline constexpr const char *unannotated_mutex = "unannotated-mutex";
inline constexpr const char *lock_discipline = "lock-discipline";
inline constexpr const char *unordered_iteration_output =
    "unordered-iteration-output";
inline constexpr const char *nonatomic_shared_counter =
    "nonatomic-shared-counter";
} // namespace rule

/// Every rule id, in report order.
const std::vector<std::string> &all_rules();

/** One diagnostic. */
struct Finding
{
    std::string rule;    ///< rule id (rule::* constant)
    std::string file;    ///< path relative to the scan root
    int line = 0;        ///< 1-based
    std::string message; ///< what is wrong and which helper to use
    std::string excerpt; ///< trimmed offending source line
};

/** What to scan and which passes to run. */
struct Options
{
    /// Repository root; scan paths and report paths are relative to it.
    std::string root = ".";
    /// Files or directories (relative to root); default: src, tools.
    std::vector<std::string> paths;
    bool run_rules = true;  ///< run the source-scanning rules engine
    bool run_budget = true; ///< run the bit-budget prover
};

/** Result of one lint run. */
struct Report
{
    std::vector<Finding> findings; ///< sorted by (file, line, rule)
    BudgetAudit budget;            ///< empty when run_budget is false
    int files_scanned = 0;
    int suppressed = 0; ///< findings silenced by allow(...) comments

    /// True when nothing is wrong: no findings and no budget violations.
    bool clean() const
    {
        return findings.empty() && budget.violations == 0;
    }
};

/// Run the configured passes over the tree.
Report run(const Options &opts);

/// Scan a single in-memory file (unit tests feed fixture snippets).
std::vector<Finding> scan_source(const std::string &path,
                                 const std::string &text, int *suppressed);

/// Human-readable report (one line per finding + budget summary).
void write_text(const Report &r, std::ostream &os);

/// Machine-readable report, schema "neo.lint/1". Deterministic: the
/// same tree produces byte-identical output (golden-file tested).
void write_json(const Report &r, std::ostream &os);

} // namespace neo::lint
