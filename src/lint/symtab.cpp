#include "lint/symtab.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <string_view>

namespace neo::lint {

namespace {

bool
ident_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string
trimmed(const std::string &s)
{
    const size_t b = s.find_first_not_of(" \t");
    const size_t e = s.find_last_not_of(" \t");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

bool
contains_word(const std::string &s, std::string_view w)
{
    size_t pos = s.find(w);
    while (pos != std::string::npos) {
        const bool lb = pos == 0 || !ident_char(s[pos - 1]);
        const size_t end = pos + w.size();
        const bool rb = end >= s.size() || !ident_char(s[end]);
        if (lb && rb)
            return true;
        pos = s.find(w, pos + 1);
    }
    return false;
}

std::string
first_word(const std::string &s)
{
    const size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    size_t e = b;
    while (e < s.size() && ident_char(s[e]))
        ++e;
    return s.substr(b, e - b);
}

/// Longest identifier ending at @p end (exclusive) in @p s.
std::string
ident_ending_at(const std::string &s, size_t end)
{
    size_t b = std::min(end, s.size());
    const size_t stop = b;
    while (b > 0 && ident_char(s[b - 1]))
        --b;
    return s.substr(b, stop - b);
}

/// Remove every `WORD( ... )` macro invocation of @p word from @p s.
void
strip_macro(std::string &s, std::string_view word)
{
    size_t pos = s.find(word);
    while (pos != std::string::npos) {
        const bool lb = pos == 0 || !ident_char(s[pos - 1]);
        size_t p = pos + word.size();
        while (p < s.size() && s[p] == ' ')
            ++p;
        if (lb && p < s.size() && s[p] == '(') {
            int depth = 0;
            size_t q = p;
            for (; q < s.size(); ++q) {
                if (s[q] == '(')
                    ++depth;
                else if (s[q] == ')' && --depth == 0)
                    break;
            }
            s.erase(pos, std::min(q + 1, s.size()) - pos);
            pos = s.find(word, pos);
        } else {
            pos = s.find(word, pos + 1);
        }
    }
}

/// Cut @p s at the first assignment '=' outside template args, parens
/// and brackets (so default member initializers don't pollute types).
std::string
cut_initializer(const std::string &s)
{
    int angle = 0, paren = 0;
    for (size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '<')
            ++angle;
        else if (c == '>')
            angle = std::max(0, angle - 1);
        else if (c == '(' || c == '[')
            ++paren;
        else if (c == ')' || c == ']')
            paren = std::max(0, paren - 1);
        else if (c == '=' && angle == 0 && paren == 0) {
            const char prev = i > 0 ? s[i - 1] : '\0';
            const char next = i + 1 < s.size() ? s[i + 1] : '\0';
            const bool compound =
                next == '=' || prev == '=' || prev == '<' || prev == '>' ||
                prev == '!' || prev == '+' || prev == '-' || prev == '*' ||
                prev == '/' || prev == '%' || prev == '&' || prev == '|' ||
                prev == '^';
            if (!compound)
                return s.substr(0, i);
        }
    }
    return s;
}

bool
is_lock_type(const std::string &type)
{
    return contains_word(type, "Mutex") ||
           contains_word(type, "SharedMutex") ||
           type.find("std::mutex") != std::string::npos ||
           type.find("std::shared_mutex") != std::string::npos ||
           type.find("std::recursive_mutex") != std::string::npos ||
           type.find("std::timed_mutex") != std::string::npos;
}

bool
is_counter_type(const std::string &type)
{
    static constexpr std::array<std::string_view, 28> kIntegral = {
        "bool",      "int",      "unsigned", "signed",   "long",
        "short",     "char",     "size_t",   "ssize_t",  "ptrdiff_t",
        "uintptr_t", "intptr_t", "u8",       "u16",      "u32",
        "u64",       "i8",       "i16",      "i32",      "i64",
        "uint8_t",   "uint16_t", "uint32_t", "uint64_t", "int8_t",
        "int16_t",   "int32_t",  "int64_t"};
    static constexpr std::array<std::string_view, 3> kQualifier = {
        "mutable", "volatile", "inline"};
    // A const scalar is immutable after construction: no guard needed.
    if (contains_word(type, "const"))
        return false;
    // Every identifier token must be a qualifier, "std", or an
    // integral type name ("std::size_t" lexes as "std" + "size_t").
    size_t i = 0;
    bool any = false;
    while (i < type.size()) {
        if (!ident_char(type[i])) {
            ++i;
            continue;
        }
        const size_t b = i;
        while (i < type.size() && ident_char(type[i]))
            ++i;
        const std::string_view tok(type.data() + b, i - b);
        if (tok == "std" ||
            std::find(kQualifier.begin(), kQualifier.end(), tok) !=
                kQualifier.end())
            continue;
        if (std::find(kIntegral.begin(), kIntegral.end(), tok) ==
            kIntegral.end())
            return false;
        any = true;
    }
    // Pointers and references to integers are not counters.
    return any && type.find('*') == std::string::npos &&
           type.find('&') == std::string::npos;
}

bool
is_control_word(const std::string &w)
{
    return w == "if" || w == "else" || w == "for" || w == "while" ||
           w == "do" || w == "switch" || w == "try" || w == "catch" ||
           w == "return";
}

/// Record `std::unordered_*<...> name` declared by @p stmt, if any.
void
collect_unordered_decl(const std::string &stmt,
                       std::vector<std::string> &names)
{
    if (stmt.find("std::unordered_") == std::string::npos)
        return;
    const std::string s = cut_initializer(stmt);
    // Close the template argument list, then take the declarator name
    // that follows it.
    const size_t tpos = s.find("std::unordered_");
    size_t p = s.find('<', tpos);
    if (p == std::string::npos)
        return;
    int depth = 0;
    for (; p < s.size(); ++p) {
        if (s[p] == '<')
            ++depth;
        else if (s[p] == '>' && --depth == 0)
            break;
    }
    if (p >= s.size())
        return;
    ++p;
    while (p < s.size() && (s[p] == ' ' || s[p] == '&' || s[p] == '*'))
        ++p;
    size_t e = p;
    while (e < s.size() && ident_char(s[e]))
        ++e;
    if (e > p)
        names.push_back(s.substr(p, e - p));
}

/// Parameter names of unordered-container type in a declarator's
/// parameter list (so a range-for over a parameter still resolves).
void
collect_unordered_params(const std::string &stmt,
                         std::vector<std::string> &names)
{
    const size_t open = stmt.find('(');
    if (open == std::string::npos)
        return;
    int depth = 0, angle = 0;
    size_t part_begin = open + 1;
    for (size_t i = open; i < stmt.size(); ++i) {
        const char c = stmt[i];
        if (c == '(') {
            ++depth;
            continue;
        }
        if (c == '<')
            ++angle;
        else if (c == '>')
            angle = std::max(0, angle - 1);
        if (((c == ',' && angle == 0) || c == ')') && depth == 1) {
            const std::string part = trimmed(cut_initializer(
                stmt.substr(part_begin, i - part_begin)));
            if (part.find("std::unordered_") != std::string::npos) {
                const std::string name =
                    ident_ending_at(part, part.size());
                if (!name.empty())
                    names.push_back(name);
            }
            part_begin = i + 1;
        }
        if (c == ')')
            --depth;
    }
}

struct Scope
{
    enum class Kind { ns, cls, fn, other } kind = Kind::other;
    size_t class_idx = 0; ///< into SymbolTable::classes when cls
    size_t fn_idx = 0;    ///< into SymbolTable::functions when fn
};

/// Parse one class-body statement as a data member, if it is one.
void
parse_member(const std::string &stmt_in, int line, ClassInfo &cls,
             SymbolTable &tab)
{
    std::string stmt = trimmed(stmt_in);
    for (const char *label : {"public:", "private:", "protected:"})
        if (stmt.starts_with(label))
            stmt = trimmed(stmt.substr(std::string_view(label).size()));
    if (stmt.empty())
        return;
    const std::string head = first_word(stmt);
    if (head == "using" || head == "typedef" || head == "friend" ||
        head == "static" || head == "template" || head == "class" ||
        head == "struct" || head == "enum" || head == "union")
        return;

    Member m;
    m.line = line;
    m.guarded = stmt.find("NEO_GUARDED_BY") != std::string::npos ||
                stmt.find("NEO_PT_GUARDED_BY") != std::string::npos;
    strip_macro(stmt, "NEO_PT_GUARDED_BY");
    strip_macro(stmt, "NEO_GUARDED_BY");
    stmt = trimmed(cut_initializer(stmt));
    if (stmt.empty() || stmt.find('(') != std::string::npos)
        return; // a method declaration / ctor, not a data member
    // Trailing array extent(s): the name precedes the '['.
    while (stmt.ends_with("]")) {
        const size_t open = stmt.rfind('[');
        if (open == std::string::npos)
            return;
        stmt = trimmed(stmt.substr(0, open));
    }
    m.name = ident_ending_at(stmt, stmt.size());
    if (m.name.empty())
        return;
    m.type = trimmed(stmt.substr(0, stmt.size() - m.name.size()));
    if (m.type.empty())
        return; // single token: not a declaration
    m.is_lock = is_lock_type(m.type);
    m.is_atomic = m.type.find("std::atomic") != std::string::npos;
    m.is_unordered = m.type.find("std::unordered_") != std::string::npos;
    m.is_counter = is_counter_type(m.type);
    if (m.is_lock)
        tab.lock_names.push_back(m.name);
    if (m.is_unordered)
        tab.unordered_names.push_back(m.name);
    cls.members.push_back(std::move(m));
}

/// Class-head name: the last identifier before the base clause that is
/// neither a keyword nor a macro invocation (NEO_CAPABILITY(...)).
std::string
class_head_name(const std::string &ts)
{
    std::string head = ts;
    size_t kw = std::string::npos;
    for (const char *k : {"class", "struct", "union"}) {
        size_t pos = head.find(k);
        while (pos != std::string::npos &&
               ((pos > 0 && ident_char(head[pos - 1])) ||
                (pos + std::string_view(k).size() < head.size() &&
                 ident_char(head[pos + std::string_view(k).size()]))))
            pos = head.find(k, pos + 1);
        if (pos != std::string::npos && (kw == std::string::npos || pos < kw))
            kw = pos;
    }
    if (kw != std::string::npos)
        head = head.substr(kw);
    const size_t colon = head.find(':');
    if (colon != std::string::npos)
        head = head.substr(0, colon);
    std::string name;
    for (size_t p = 0; p < head.size();) {
        if (!ident_char(head[p])) {
            ++p;
            continue;
        }
        const size_t b = p;
        while (p < head.size() && ident_char(head[p]))
            ++p;
        std::string tok = head.substr(b, p - b);
        size_t q = p;
        while (q < head.size() && head[q] == ' ')
            ++q;
        const bool macro = q < head.size() && head[q] == '(';
        if (!macro && tok != "class" && tok != "struct" &&
            tok != "union" && tok != "final" && tok != "alignas")
            name = std::move(tok);
    }
    return name;
}

} // namespace

/* ------------------------------------------------------------------ */
/* Lexer.                                                             */
/* ------------------------------------------------------------------ */

std::vector<Line>
lex(const std::string &text)
{
    std::vector<Line> lines(1);
    enum class St { code, str, chr, raw, line_comment, block_comment };
    St st = St::code;
    std::string raw_close; // ")delim\"" of the open raw literal
    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char nx = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            if (st == St::line_comment)
                st = St::code;
            lines.emplace_back();
            continue;
        }
        Line &ln = lines.back();
        ln.raw.push_back(c);
        switch (st) {
          case St::code:
            if (c == '/' && nx == '/') {
                st = St::line_comment;
                ln.code.push_back(' ');
            } else if (c == '/' && nx == '*') {
                st = St::block_comment;
                ln.code.push_back(' ');
                ++i;
                ln.raw.push_back('*');
            } else if (c == '"') {
                // Raw string literal? The R (optionally behind a
                // u8/u/U/L encoding prefix) must start the token, not
                // extend an identifier.
                bool is_raw = false;
                if (i >= 1 && text[i - 1] == 'R') {
                    size_t pre = i - 1;
                    if (pre >= 2 && text[pre - 2] == 'u' &&
                        text[pre - 1] == '8')
                        pre -= 2;
                    else if (pre >= 1 && (text[pre - 1] == 'u' ||
                                          text[pre - 1] == 'U' ||
                                          text[pre - 1] == 'L'))
                        pre -= 1;
                    if (pre == 0 || !ident_char(text[pre - 1]))
                        is_raw = true;
                }
                size_t open = std::string::npos;
                if (is_raw) {
                    open = text.find('(', i + 1);
                    // Raw delimiters are short and single-line; an
                    // over-long or broken prefix is not a raw literal.
                    if (open == std::string::npos || open - i - 1 > 16 ||
                        text.substr(i + 1, open - i - 1).find('\n') !=
                            std::string::npos)
                        open = std::string::npos;
                }
                if (open != std::string::npos) {
                    raw_close =
                        ")" + text.substr(i + 1, open - i - 1) + "\"";
                    st = St::raw;
                } else {
                    st = St::str;
                }
                ln.code.push_back(' ');
            } else if (c == '\'') {
                st = St::chr;
                ln.code.push_back(' ');
            } else {
                ln.code.push_back(c);
            }
            break;
          case St::str:
            ln.code.push_back(' ');
            if (c == '\\' && nx != '\0') {
                if (nx != '\n') {
                    ln.raw.push_back(nx);
                    ln.code.push_back(' ');
                }
                ++i;
            } else if (c == '"') {
                st = St::code;
            }
            break;
          case St::chr:
            ln.code.push_back(' ');
            if (c == '\\' && nx != '\0' && nx != '\n') {
                ln.raw.push_back(nx);
                ln.code.push_back(' ');
                ++i;
            } else if (c == '\'') {
                st = St::code;
            }
            break;
          case St::raw:
            // No escapes inside a raw literal: blank verbatim until
            // the exact ")delim"" close marker. Newlines are handled
            // above, so multi-line raw strings keep line numbers
            // aligned with the input.
            ln.code.push_back(' ');
            if (c == ')' &&
                text.compare(i, raw_close.size(), raw_close) == 0) {
                for (size_t k = 1; k < raw_close.size(); ++k) {
                    ln.raw.push_back(text[i + k]);
                    ln.code.push_back(' ');
                }
                i += raw_close.size() - 1;
                st = St::code;
            }
            break;
          case St::line_comment:
            ln.code.push_back(' ');
            ln.comment.push_back(c);
            break;
          case St::block_comment:
            ln.code.push_back(' ');
            ln.comment.push_back(c);
            if (c == '*' && nx == '/') {
                st = St::code;
                ++i;
                ln.raw.push_back('/');
                ln.code.push_back(' ');
            }
            break;
        }
    }
    return lines;
}

/* ------------------------------------------------------------------ */
/* Symbol table.                                                      */
/* ------------------------------------------------------------------ */

bool
SymbolTable::has_lock_name(const std::string &n) const
{
    return std::find(lock_names.begin(), lock_names.end(), n) !=
           lock_names.end();
}

bool
SymbolTable::has_unordered_name(const std::string &n) const
{
    return std::find(unordered_names.begin(), unordered_names.end(), n) !=
           unordered_names.end();
}

const FunctionInfo *
SymbolTable::enclosing_function(int line) const
{
    const FunctionInfo *best = nullptr;
    for (const FunctionInfo &f : functions)
        if (f.body_begin <= line && line <= f.body_end &&
            (best == nullptr || f.body_begin >= best->body_begin))
            best = &f;
    return best;
}

SymbolTable
build_symtab(const std::vector<Line> &lines)
{
    SymbolTable tab;
    std::vector<Scope> stack;
    std::string stmt;
    int stmt_line = 0;
    int init_depth = 0; // inside a swallowed member brace-initializer
    bool in_pp = false; // inside a (possibly continued) # directive

    const auto reset = [&] {
        stmt.clear();
        stmt_line = 0;
    };

    // Innermost non-namespace scope kind (namespaces are transparent).
    const auto scope_kind = [&]() -> Scope::Kind {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it)
            if (it->kind != Scope::Kind::ns)
                return it->kind;
        return Scope::Kind::ns;
    };

    for (size_t li = 0; li < lines.size(); ++li) {
        const int lno = static_cast<int>(li + 1);
        const std::string &code = lines[li].code;
        const std::string lt = trimmed(code);
        if (in_pp || lt.starts_with("#")) {
            in_pp = !lt.empty() && lt.back() == '\\';
            continue;
        }
        for (size_t ci = 0; ci < code.size(); ++ci) {
            const char c = code[ci];
            if (init_depth > 0) {
                // Opaque `{...}` member initializer: balance braces,
                // keep the surrounding statement accumulating.
                if (c == '{')
                    ++init_depth;
                else if (c == '}')
                    --init_depth;
                continue;
            }
            if (c == '{') {
                const std::string ts = trimmed(stmt);
                const std::string fw = first_word(ts);
                const char prev = ts.empty() ? '\0' : ts.back();
                Scope sc;
                if (is_control_word(fw)) {
                    sc.kind = Scope::Kind::other;
                } else if (contains_word(ts, "namespace")) {
                    sc.kind = Scope::Kind::ns;
                } else if (contains_word(ts, "enum")) {
                    sc.kind = Scope::Kind::other;
                } else if (contains_word(ts, "class") ||
                           contains_word(ts, "struct") ||
                           contains_word(ts, "union")) {
                    sc.kind = Scope::Kind::cls;
                    sc.class_idx = tab.classes.size();
                    ClassInfo info;
                    info.name = class_head_name(ts);
                    info.line = stmt_line != 0 ? stmt_line : lno;
                    tab.classes.push_back(std::move(info));
                } else if (scope_kind() == Scope::Kind::cls &&
                           ts.find('(') == std::string::npos &&
                           (ident_char(prev) || prev == '>' ||
                            prev == ']')) {
                    // `std::atomic<u64> gen{1};` — a data member with
                    // a brace initializer, not a new scope.
                    init_depth = 1;
                    continue;
                } else if (ts.find('(') != std::string::npos &&
                           scope_kind() != Scope::Kind::fn &&
                           scope_kind() != Scope::Kind::other) {
                    // Function or method body at namespace/class scope.
                    const size_t open = ts.find('(');
                    const size_t name_end =
                        ts.find_last_not_of(' ', open == 0 ? 0 : open - 1);
                    const std::string name =
                        name_end == std::string::npos
                            ? ""
                            : ident_ending_at(ts, name_end + 1);
                    if (!name.empty()) {
                        sc.kind = Scope::Kind::fn;
                        sc.fn_idx = tab.functions.size();
                        FunctionInfo fi;
                        fi.name = name;
                        fi.line = lno;
                        fi.body_begin = lno;
                        tab.functions.push_back(fi);
                        collect_unordered_params(ts, tab.unordered_names);
                    } else {
                        sc.kind = Scope::Kind::other;
                    }
                } else {
                    sc.kind = Scope::Kind::other;
                }
                stack.push_back(sc);
                reset();
            } else if (c == '}') {
                if (!stack.empty()) {
                    const Scope sc = stack.back();
                    stack.pop_back();
                    if (sc.kind == Scope::Kind::fn)
                        tab.functions[sc.fn_idx].body_end = lno;
                }
                reset();
            } else if (c == ';') {
                if (!stack.empty() &&
                    stack.back().kind == Scope::Kind::cls)
                    parse_member(stmt, stmt_line != 0 ? stmt_line : lno,
                                 tab.classes[stack.back().class_idx],
                                 tab);
                collect_unordered_decl(stmt, tab.unordered_names);
                reset();
            } else {
                if (stmt.empty() && (c == ' ' || c == '\t'))
                    continue;
                if (stmt.empty())
                    stmt_line = lno;
                stmt.push_back(c == '\t' ? ' ' : c);
            }
        }
        if (!stmt.empty() && stmt.back() != ' ')
            stmt.push_back(' '); // line break inside a statement
    }
    // Unclosed function bodies (truncated input): close at EOF.
    for (FunctionInfo &f : tab.functions)
        if (f.body_end == 0)
            f.body_end = static_cast<int>(lines.size());
    std::sort(tab.lock_names.begin(), tab.lock_names.end());
    tab.lock_names.erase(
        std::unique(tab.lock_names.begin(), tab.lock_names.end()),
        tab.lock_names.end());
    std::sort(tab.unordered_names.begin(), tab.unordered_names.end());
    tab.unordered_names.erase(
        std::unique(tab.unordered_names.begin(),
                    tab.unordered_names.end()),
        tab.unordered_names.end());
    return tab;
}

} // namespace neo::lint
