#include "lint/bit_budget.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <tuple>

#include "ckks/paper_params.h"
#include "common/math_util.h"

namespace neo::lint {

namespace {

int
accum_bits(size_t k)
{
    return k <= 1 ? 0 : bit_size(k - 1);
}

/// The deduplicated probe space: one entry per distinct
/// (site, wa, wb, k) — engines and fragment shapes fan out later.
using ProbeKey = std::tuple<const char *, int, int, size_t>;

void
add_probe(std::set<ProbeKey> &probes, const char *site, int w, size_t k)
{
    if (k > 0)
        probes.emplace(site, w, w, k);
}

/**
 * K depths reachable from one parameter set:
 *  - NTT twiddle matmuls: K = radix (16 for radix-16, √N for
 *    four-step) at the word size of whichever basis is transformed;
 *  - BConv factor GEMM: K = source-basis size, i.e. every level count
 *    from 1 up to L+1 plus the α special primes (Algorithm 2);
 *  - KLSS IP site GEMM: K = β digits at WordSize_T (Algorithm 4).
 */
void
collect_probes(std::set<ProbeKey> &probes, const ckks::CkksParams &p)
{
    const int w = p.word_size;
    const size_t sqrt_n = static_cast<size_t>(1)
                          << ((log2_exact(p.n) + 1) / 2);
    add_probe(probes, "ntt", w, 16);
    add_probe(probes, "ntt", w, sqrt_n);
    const size_t bconv_max = p.max_level + 1 + p.alpha();
    for (size_t k = 1; k <= bconv_max; ++k)
        add_probe(probes, "bconv", w, k);
    if (p.klss.enabled()) {
        const int wt = p.klss.word_size_t;
        add_probe(probes, "ntt", wt, 16);
        add_probe(probes, "ntt", wt, sqrt_n);
        for (size_t k = 1; k <= bconv_max; ++k)
            add_probe(probes, "bconv", wt, k);
        for (size_t k = 1; k <= p.beta(p.max_level); ++k)
            add_probe(probes, "ip", wt, k);
    }
}

BudgetCase
probe(const char *engine, const char *site, int wa, int wb, size_t k,
      const gpusim::FragmentShape &frag, int budget_bits)
{
    BudgetCase c;
    c.engine = engine;
    c.site = site;
    c.wa = wa;
    c.wb = wb;
    c.k = k;
    c.frag = frag;
    c.k_padded = ceil_div(k, frag.k) * frag.k;
    c.budget_bits = budget_bits;
    try {
        c.plan = budget_bits == 53 ? choose_fp64_split(wa, wb, k)
                                   : choose_int8_split(wa, wb, k);
        c.feasible = true;
    } catch (const std::invalid_argument &) {
        return c; // correctly refused; not a violation
    }
    c.sum_bits = c.plan.a_plane_bits + c.plan.b_plane_bits + accum_bits(k);
    c.exact = plan_within_budget(c.plan, k, budget_bits);
    c.covers = plan_covers(c.plan, wa, wb);
    return c;
}

} // namespace

bool
plan_within_budget(const SplitPlan &plan, size_t k, int budget_bits)
{
    if (plan.a_plane_bits <= 0 || plan.b_plane_bits <= 0 ||
        plan.a_plane_bits >= 63 || plan.b_plane_bits >= 63 || k == 0)
        return false;
    const u128 max_a = (static_cast<u128>(1) << plan.a_plane_bits) - 1;
    const u128 max_b = (static_cast<u128>(1) << plan.b_plane_bits) - 1;
    // k ≤ 2^17 and plane products < 2^106, so the product fits u128
    // only when the plan is sane; guard the multiply by bit counts.
    if (plan.a_plane_bits + plan.b_plane_bits + accum_bits(k) > 120)
        return false;
    const u128 worst = static_cast<u128>(k) * max_a * max_b;
    return worst < (static_cast<u128>(1) << budget_bits);
}

bool
plan_covers(const SplitPlan &plan, int wa, int wb)
{
    return plan.a_planes * plan.a_plane_bits >= wa &&
           plan.b_planes * plan.b_plane_bits >= wb;
}

BudgetAudit
run_budget_audit()
{
    std::set<ProbeKey> probes;
    for (char set : ckks::kPaperSets)
        collect_probes(probes, ckks::paper_set(set));
    // The functional-test presets run narrower words and shallow
    // chains; they are just as reachable as the paper sets.
    collect_probes(probes, ckks::CkksParams::test_params());
    collect_probes(probes, ckks::CkksParams::test_params(1 << 12, 7, 3));

    BudgetAudit audit;
    for (const auto &[site, wa, wb, k] : probes) {
        audit.cases.push_back(
            probe("fp64_tcu", site, wa, wb, k, gpusim::kFp64Fragment, 53));
        for (const auto &frag : gpusim::kInt8Fragments)
            audit.cases.push_back(
                probe("int8_tcu", site, wa, wb, k, frag, 31));
    }
    for (const BudgetCase &c : audit.cases) {
        if (!c.feasible)
            ++audit.refused;
        else if (!c.exact || !c.covers)
            ++audit.violations;
    }
    return audit;
}

} // namespace neo::lint
