#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "common/check.h"
#include "common/json.h"
#include "lint/symtab.h"

namespace neo::lint {

namespace {

namespace fs = std::filesystem;

/* The lexer and the symbol table live in lint/symtab.{h,cpp}.        */

/* ------------------------------------------------------------------ */
/* Markers: allow(...) suppressions and as-path(...) classification.   */
/* ------------------------------------------------------------------ */

/// Parse "neo-lint: <verb>(a, b)" occurrences of @p verb in a comment.
std::vector<std::string>
marker_args(const std::string &comment, const std::string &verb)
{
    std::vector<std::string> args;
    const std::string tag = "neo-lint:";
    size_t pos = comment.find(tag);
    while (pos != std::string::npos) {
        size_t p = pos + tag.size();
        while (p < comment.size() && comment[p] == ' ')
            ++p;
        if (comment.compare(p, verb.size(), verb) == 0) {
            p += verb.size();
            if (p < comment.size() && comment[p] == '(') {
                const size_t close = comment.find(')', p);
                if (close != std::string::npos) {
                    std::string inner = comment.substr(p + 1, close - p - 1);
                    std::string cur;
                    for (char c : inner) {
                        if (c == ',') {
                            if (!cur.empty())
                                args.push_back(cur);
                            cur.clear();
                        } else if (c != ' ') {
                            cur.push_back(c);
                        }
                    }
                    if (!cur.empty())
                        args.push_back(cur);
                }
            }
        }
        pos = comment.find(tag, pos + tag.size());
    }
    return args;
}

/* ------------------------------------------------------------------ */
/* Path classification.                                               */
/* ------------------------------------------------------------------ */

bool
path_has(const std::string &path, const char *needle)
{
    return path.find(needle) != std::string::npos;
}

bool
is_header(const std::string &path)
{
    return path.ends_with(".h") || path.ends_with(".hpp");
}

/// Hot-path directories where limb arithmetic must go through the
/// vetted helpers.
bool
in_hot_path(const std::string &path)
{
    return path_has(path, "src/neo/") || path_has(path, "src/poly/") ||
           path_has(path, "src/rns/") || path_has(path, "src/tensor/");
}

/// Files that ARE the vetted reduction helpers.
bool
is_mod_helper(const std::string &path)
{
    return path.ends_with("rns/modulus.h") ||
           path.ends_with("common/math_util.h");
}

/// Limb-data directories where floating point is off-limits; the
/// bit-slicing code in src/tensor/ is the sanctioned exception, and
/// the kernel cost model computes modeled seconds, not limb values.
bool
float_rule_applies(const std::string &path)
{
    if (path_has(path, "kernel_model"))
        return false;
    return path_has(path, "src/neo/") || path_has(path, "src/poly/") ||
           path_has(path, "src/rns/");
}

/* ------------------------------------------------------------------ */
/* Rule helpers.                                                      */
/* ------------------------------------------------------------------ */

bool
ident_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Longest identifier ending at @p end (exclusive) in @p s.
std::string
ident_ending_at_pub(const std::string &s, size_t end)
{
    size_t b = std::min(end, s.size());
    const size_t stop = b;
    while (b > 0 && ident_char(s[b - 1]))
        --b;
    return s.substr(b, stop - b);
}

/**
 * Normalized right-hand operand after a `%` / `/` at @p pos: skips
 * spaces and one '(', then reads an identifier chain (member access,
 * indexing) plus a trailing "()" if present. Returns "" when the
 * operand is not a simple chain (numbers, casts, expressions).
 */
std::string
rhs_token(const std::string &code, size_t pos)
{
    size_t p = pos;
    while (p < code.size() && code[p] == ' ')
        ++p;
    if (p < code.size() && code[p] == '(')
        ++p;
    while (p < code.size() && code[p] == ' ')
        ++p;
    if (p >= code.size() || !(std::isalpha(static_cast<unsigned char>(
                                  code[p])) ||
                              code[p] == '_'))
        return "";
    std::string tok;
    while (p < code.size()) {
        const char c = code[p];
        if (ident_char(c) || c == '.') {
            tok.push_back(c);
            ++p;
        } else if (c == '-' && p + 1 < code.size() && code[p + 1] == '>') {
            tok += "->";
            p += 2;
        } else if (c == '[') {
            const size_t close = code.find(']', p);
            if (close == std::string::npos)
                break;
            tok += "[]";
            p = close + 1;
        } else {
            break;
        }
    }
    // A trailing call: only the zero-argument accessor form.
    size_t q = p;
    while (q < code.size() && code[q] == ' ')
        ++q;
    if (q + 1 < code.size() && code[q] == '(' && code[q + 1] == ')')
        tok += "()";
    return tok;
}

/// True when the operand names a modulus value: the conventional `q` /
/// `qv` locals or any `.value()` / `->value()` accessor chain.
bool
modulus_like(const std::string &tok)
{
    if (tok.empty())
        return false;
    if (tok == "q" || tok == "qv" || tok == "q_")
        return true;
    return tok.ends_with(".value()") || tok.ends_with("->value()");
}

/// Extract the balanced-paren argument of a cast starting at the '('.
std::string
paren_argument(const std::string &code, size_t open)
{
    int depth = 0;
    for (size_t p = open; p < code.size(); ++p) {
        if (code[p] == '(')
            ++depth;
        else if (code[p] == ')' && --depth == 0)
            return code.substr(open + 1, p - open - 1);
    }
    return code.substr(open + 1);
}

std::string
trimmed(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t");
    size_t e = s.find_last_not_of(" \t");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

bool
word_at(const std::string &code, size_t pos, const std::string &w)
{
    if (code.compare(pos, w.size(), w) != 0)
        return false;
    const bool lb = pos == 0 || !ident_char(code[pos - 1]);
    const size_t end = pos + w.size();
    const bool rb = end >= code.size() || !ident_char(code[end]);
    return lb && rb;
}

size_t
find_word(const std::string &code, const std::string &w, size_t from = 0)
{
    size_t pos = code.find(w, from);
    while (pos != std::string::npos && !word_at(code, pos, w))
        pos = code.find(w, pos + 1);
    return pos;
}

/* ------------------------------------------------------------------ */
/* The rules.                                                         */
/* ------------------------------------------------------------------ */

using Sink = std::vector<Finding>;

void
emit(Sink &out, const char *rule, const std::string &path, int line,
     std::string message, const std::string &raw)
{
    out.push_back(Finding{rule, path, line, std::move(message),
                          trimmed(raw)});
}

void
rule_raw_mod(const std::string &path, const std::vector<Line> &lines,
             Sink &out)
{
    if (!in_hot_path(path) || is_mod_helper(path))
        return;
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &code = lines[i].code;
        for (size_t p = 0; p < code.size(); ++p) {
            if (code[p] != '%' && code[p] != '/')
                continue;
            // Skip '//', '/*' remnants, '%=' handled below.
            if (code[p] == '/' &&
                (p + 1 < code.size() &&
                 (code[p + 1] == '/' || code[p + 1] == '*')))
                continue;
            size_t rhs = p + 1;
            if (rhs < code.size() && code[rhs] == '=')
                ++rhs; // '%=' / '/=' compound assignment
            const std::string tok = rhs_token(code, rhs);
            if (!modulus_like(tok))
                continue;
            const char op = code[p];
            emit(out, rule::raw_mod, path, static_cast<int>(i + 1),
                 std::string("raw '") + op + "' against modulus value '" +
                     tok + "'; use Modulus::reduce/reduce128/"
                           "barrett_reduce or the math_util mod helpers",
                 lines[i].raw);
            break; // one finding per line is enough
        }
    }
}

void
rule_float_on_limb(const std::string &path, const std::vector<Line> &lines,
                   Sink &out)
{
    if (!float_rule_applies(path))
        return;
    static const char *casts[] = {"static_cast<double>",
                                  "static_cast<long double>",
                                  "static_cast<float>"};
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &code = lines[i].code;
        for (const char *cast : casts) {
            size_t pos = code.find(cast);
            while (pos != std::string::npos) {
                const size_t open = code.find('(', pos);
                if (open == std::string::npos)
                    break;
                const std::string arg = paren_argument(code, open);
                // Heuristic for "limb-valued": indexed array data or a
                // modulus accessor. Scalar shape/byte counts pass.
                if (arg.find('[') != std::string::npos ||
                    arg.find(".value()") != std::string::npos ||
                    arg.find("->value()") != std::string::npos) {
                    emit(out, rule::float_on_limb, path,
                         static_cast<int>(i + 1),
                         "floating-point cast of limb data outside "
                         "src/tensor/ bit-slicing; route wide products "
                         "through u128/Modulus instead",
                         lines[i].raw);
                    break;
                }
                pos = code.find(cast, pos + 1);
            }
        }
    }
}

void
rule_thread_unsafe_static(const std::string &path,
                          const std::vector<Line> &lines, Sink &out)
{
    if (is_header(path))
        return; // class-member statics dominate; .cpp bodies only
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &code = lines[i].code;
        const size_t ind = code.find_first_not_of(' ');
        if (ind == std::string::npos || ind == 0)
            continue; // file-scope static: internal linkage, fine
        if (!word_at(code, ind, "static"))
            continue;
        const std::string rest = trimmed(code.substr(ind + 6));
        if (rest.starts_with("const ") || rest.starts_with("constexpr ") ||
            rest.starts_with("const\t"))
            continue;
        // Inherently synchronized holders are the point of the pattern.
        // The annotated wrappers (neo::Mutex / neo::SharedMutex) count:
        // a static lock *is* the synchronization, not shared state.
        if (rest.starts_with("std::atomic") ||
            rest.starts_with("std::mutex") ||
            rest.starts_with("std::shared_mutex") ||
            rest.starts_with("std::once_flag") ||
            rest.starts_with("Mutex ") || rest.starts_with("neo::Mutex ") ||
            rest.starts_with("SharedMutex ") ||
            rest.starts_with("neo::SharedMutex ") ||
            rest.starts_with("thread_local"))
            continue;
        // Member-function declarations etc.: a '(' before '=' or ';'
        // marks a callable, not a data definition.
        const size_t paren = rest.find('(');
        const size_t eq = rest.find('=');
        const size_t semi = rest.find(';');
        const size_t stop = std::min(eq, semi);
        if (paren != std::string::npos && paren < stop)
            continue;
        emit(out, rule::thread_unsafe_static, path,
             static_cast<int>(i + 1),
             "function-local mutable static is shared across ThreadPool "
             "workers; guard it, make it atomic, or annotate the "
             "synchronization",
             lines[i].raw);
    }
}

void
rule_banned_rng(const std::string &path, const std::vector<Line> &lines,
                Sink &out)
{
    (void)path;
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &code = lines[i].code;
        std::string why;
        if (code.find("std::rand") != std::string::npos ||
            code.find("std::srand") != std::string::npos ||
            find_word(code, "srand") != std::string::npos ||
            find_word(code, "rand") != std::string::npos)
            why = "C rand()/srand() is neither seedable per-test nor "
                  "reproducible across platforms";
        else if (code.find("random_device") != std::string::npos)
            why = "std::random_device seeds are non-deterministic";
        else {
            const size_t t = find_word(code, "time");
            if (t != std::string::npos) {
                const size_t open = code.find('(', t);
                if (open != std::string::npos) {
                    const std::string arg =
                        trimmed(paren_argument(code, open));
                    if (arg.empty() || arg == "0" || arg == "NULL" ||
                        arg == "nullptr")
                        why = "wall-clock seeding breaks reproducible "
                              "key/noise generation";
                }
            }
        }
        if (!why.empty())
            emit(out, rule::banned_rng, path, static_cast<int>(i + 1),
                 why + "; use neo::Rng with an explicit seed",
                 lines[i].raw);
    }
}

void
rule_naked_new(const std::string &path, const std::vector<Line> &lines,
               Sink &out)
{
    (void)path;
    for (size_t i = 0; i < lines.size(); ++i) {
        const size_t pos = find_word(lines[i].code, "new");
        if (pos == std::string::npos)
            continue;
        emit(out, rule::naked_new, path, static_cast<int>(i + 1),
             "naked new; use std::make_unique/make_shared or a "
             "container (annotate deliberate leaked singletons)",
             lines[i].raw);
    }
}

void
rule_header_hygiene(const std::string &path, const std::vector<Line> &lines,
                    Sink &out)
{
    if (!is_header(path))
        return;
    bool pragma_once = false;
    for (const Line &ln : lines)
        if (trimmed(ln.code).starts_with("#pragma once")) {
            pragma_once = true;
            break;
        }
    if (!pragma_once)
        emit(out, rule::header_hygiene, path, 1,
             "header is missing #pragma once",
             lines.empty() ? "" : lines[0].raw);
    for (size_t i = 0; i < lines.size(); ++i)
        if (find_word(lines[i].code, "using") != std::string::npos &&
            lines[i].code.find("using namespace") != std::string::npos)
            emit(out, rule::header_hygiene, path, static_cast<int>(i + 1),
                 "'using namespace' in a header leaks into every "
                 "includer",
                 lines[i].raw);
}

void
rule_obs_span_leak(const std::string &path, const std::vector<Line> &lines,
                   Sink &out)
{
    (void)path;
    constexpr std::string_view kType = "obs::Span";
    const auto ident = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
    };
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &code = lines[i].code;
        size_t pos = 0;
        while ((pos = code.find(kType, pos)) != std::string::npos) {
            const size_t start = pos;
            const size_t after = pos + kType.size();
            pos = after;
            // Longer identifier (obs::SpanLike, myobs::Span): not the
            // Span type.
            if (after < code.size() && ident(code[after]))
                continue;
            if (start > 0 && ident(code[start - 1]))
                continue;
            // A temporary is a construction: the type name directly
            // followed by '(' or '{'. `obs::Span name(...)` has the
            // variable name in between and is fine.
            const size_t nx = code.find_first_not_of(" \t", after);
            if (nx == std::string::npos ||
                (code[nx] != '(' && code[nx] != '{'))
                continue;
            // Only a *discarded* temporary measures nothing: at
            // statement start the construction is the whole expression
            // and dies immediately. Bound or passed temporaries
            // (`auto s = obs::Span(..)`, `f(obs::Span(..))`) live on.
            size_t head = start;
            while (head > 0 && (ident(code[head - 1]) ||
                                code[head - 1] == ':'))
                --head; // back over the rest of the qualified id
            const size_t prev =
                head == 0 ? std::string::npos
                          : code.find_last_not_of(" \t", head - 1);
            if (prev != std::string::npos && code[prev] != ';' &&
                code[prev] != '{' && code[prev] != '}')
                continue;
            emit(out, rule::obs_span_leak, path, static_cast<int>(i + 1),
                 "obs::Span constructed as a temporary is destroyed "
                 "immediately and measures nothing; name it so it "
                 "spans the scope",
                 lines[i].raw);
        }
    }
}


/* ------------------------------------------------------------------ */
/* Symbol-aware rules (v2): consume the per-file SymbolTable.         */
/* ------------------------------------------------------------------ */

/// The annotated wrapper itself is the sanctioned home of the raw std
/// primitives and their .lock()/.unlock() surface.
bool
is_mutex_wrapper(const std::string &path)
{
    return path.ends_with("common/mutex.h");
}

void
rule_unannotated_mutex(const std::string &path, const SymbolTable &tab,
                       const std::vector<Line> &lines, Sink &out)
{
    if (is_mutex_wrapper(path))
        return;
    for (const ClassInfo &cls : tab.classes)
        for (const Member &m : cls.members) {
            const bool raw_std =
                m.type.find("std::mutex") != std::string::npos ||
                m.type.find("std::shared_mutex") != std::string::npos ||
                m.type.find("std::recursive_mutex") != std::string::npos ||
                m.type.find("std::timed_mutex") != std::string::npos;
            if (!raw_std)
                continue;
            const size_t idx = static_cast<size_t>(m.line) - 1;
            emit(out, rule::unannotated_mutex, path, m.line,
                 "raw '" + m.type + "' member '" + m.name +
                     "' carries no capability annotation; declare "
                     "neo::Mutex / neo::SharedMutex (common/mutex.h) so "
                     "clang -Wthread-safety and the lint rules can see "
                     "the lock",
                 idx < lines.size() ? lines[idx].raw : "");
        }
}

void
rule_lock_discipline(const std::string &path, const SymbolTable &tab,
                     const std::vector<Line> &lines, Sink &out)
{
    if (is_mutex_wrapper(path) || tab.lock_names.empty())
        return;
    static constexpr std::string_view kCalls[] = {
        "lock", "unlock", "lock_shared", "unlock_shared"};
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &code = lines[i].code;
        for (std::string_view call : kCalls) {
            size_t pos = code.find(call);
            while (pos != std::string::npos) {
                const size_t after = pos + call.size();
                // The whole method name, called with no arguments, on
                // a member-access receiver.
                const bool zero_arg_call = after + 1 < code.size() &&
                                           code[after] == '(' &&
                                           code[after + 1] == ')';
                bool member_call = false;
                size_t recv_end = 0;
                if (zero_arg_call && pos >= 1) {
                    if (code[pos - 1] == '.') {
                        member_call = true;
                        recv_end = pos - 1;
                    } else if (pos >= 2 && code[pos - 2] == '-' &&
                               code[pos - 1] == '>') {
                        member_call = true;
                        recv_end = pos - 2;
                    }
                }
                if (member_call) {
                    const std::string recv =
                        ident_ending_at_pub(code, recv_end);
                    if (tab.has_lock_name(recv))
                        emit(out, rule::lock_discipline, path,
                             static_cast<int>(i + 1),
                             "naked ." + std::string(call) +
                                 "() on lock member '" + recv +
                                 "'; use the RAII guards (neo::LockGuard"
                                 " / WriterLock / ReaderLock) so unlock "
                                 "is exception-safe and the critical "
                                 "section is visible to the analysis",
                             lines[i].raw);
                }
                pos = code.find(call, pos + 1);
            }
        }
    }
}

/// Output-path function names: anything that serializes, prints, or
/// exports. Iteration order inside these becomes artifact bytes.
bool
outputish_name(const std::string &name)
{
    static constexpr std::string_view kStems[] = {
        "export", "write", "report", "print", "dump",
        "json",   "format", "serialize", "save", "emit"};
    std::string low;
    low.reserve(name.size());
    for (char c : name)
        low.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    for (std::string_view stem : kStems)
        if (low.find(stem) != std::string::npos)
            return true;
    return false;
}

void
rule_unordered_iteration_output(const std::string &path,
                                const SymbolTable &tab,
                                const std::vector<Line> &lines, Sink &out)
{
    (void)path;
    if (tab.unordered_names.empty())
        return;
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &code = lines[i].code;
        const size_t fpos = find_word(code, "for");
        if (fpos == std::string::npos)
            continue;
        const size_t open = code.find('(', fpos);
        if (open == std::string::npos)
            continue;
        const std::string inner = paren_argument(code, open);
        const size_t colon = inner.find(':');
        if (colon == std::string::npos ||
            (colon + 1 < inner.size() && inner[colon + 1] == ':'))
            continue; // not a range-for (or a :: qualifier)
        // Range expression: last identifier chain of the for-range.
        std::string range = trimmed(inner.substr(colon + 1));
        if (range.ends_with("()"))
            range = range.substr(0, range.size() - 2);
        const std::string sym = ident_ending_at_pub(range, range.size());
        if (sym.empty() || !tab.has_unordered_name(sym))
            continue;
        const FunctionInfo *fn =
            tab.enclosing_function(static_cast<int>(i + 1));
        // Streaming bodies: `for (..) os << ..;` on the same line or
        // the usual next-line single-statement body.
        const bool streams =
            code.find("<<") != std::string::npos ||
            (i + 1 < lines.size() &&
             lines[i + 1].code.find("<<") != std::string::npos);
        if ((fn != nullptr && outputish_name(fn->name)) || streams)
            emit(out, rule::unordered_iteration_output, path,
                 static_cast<int>(i + 1),
                 "range-for over unordered container '" + sym + "'" +
                     (fn != nullptr && outputish_name(fn->name)
                          ? " in output path '" + fn->name + "'"
                          : " feeding a stream") +
                     ": iteration order is nondeterministic across "
                     "runs/platforms; collect and sort keys first "
                     "(deterministic artifacts are a repo invariant)",
                 lines[i].raw);
    }
}

void
rule_nonatomic_shared_counter(const std::string &path,
                              const SymbolTable &tab,
                              const std::vector<Line> &lines, Sink &out)
{
    for (const ClassInfo &cls : tab.classes) {
        if (!cls.has_lock())
            continue;
        for (const Member &m : cls.members) {
            if (!m.is_counter || m.is_atomic || m.guarded || m.is_lock)
                continue;
            const size_t idx = static_cast<size_t>(m.line) - 1;
            emit(out, rule::nonatomic_shared_counter, path, m.line,
                 "plain '" + m.type + "' member '" + m.name +
                     "' in lock-owning class '" + cls.name +
                     "' is neither NEO_GUARDED_BY a lock nor "
                     "std::atomic; annotate the guard or make it "
                     "atomic so cross-thread updates are visibly "
                     "synchronized",
                 idx < lines.size() ? lines[idx].raw : "");
        }
    }
}

} // namespace

/* ------------------------------------------------------------------ */
/* Driver.                                                            */
/* ------------------------------------------------------------------ */

const std::vector<std::string> &
all_rules()
{
    static const std::vector<std::string> rules = {
        rule::raw_mod,        rule::float_on_limb,
        rule::thread_unsafe_static, rule::banned_rng,
        rule::naked_new,      rule::header_hygiene,
        rule::obs_span_leak,  rule::unannotated_mutex,
        rule::lock_discipline, rule::unordered_iteration_output,
        rule::nonatomic_shared_counter};
    return rules;
}

std::vector<Finding>
scan_source(const std::string &path, const std::string &text,
            int *suppressed)
{
    const std::vector<Line> lines = lex(text);

    // Effective path for rule scoping: fixtures can impersonate a tree
    // location with `neo-lint: as-path(...)`.
    std::string eff_path = path;
    for (const Line &ln : lines) {
        const auto as = marker_args(ln.comment, "as-path");
        if (!as.empty())
            eff_path = as.front();
    }

    const SymbolTable tab = build_symtab(lines);

    std::vector<Finding> raw;
    rule_raw_mod(eff_path, lines, raw);
    rule_float_on_limb(eff_path, lines, raw);
    rule_thread_unsafe_static(eff_path, lines, raw);
    rule_banned_rng(eff_path, lines, raw);
    rule_naked_new(eff_path, lines, raw);
    rule_header_hygiene(eff_path, lines, raw);
    rule_obs_span_leak(eff_path, lines, raw);
    rule_unannotated_mutex(eff_path, tab, lines, raw);
    rule_lock_discipline(eff_path, tab, lines, raw);
    rule_unordered_iteration_output(eff_path, tab, lines, raw);
    rule_nonatomic_shared_counter(eff_path, tab, lines, raw);

    // allow(...) on line N silences N and N+1, so annotations can sit
    // on their own line directly above the deliberate exception.
    std::vector<Finding> kept;
    for (Finding &f : raw) {
        bool allowed = false;
        for (int l = std::max(1, f.line - 1); l <= f.line; ++l) {
            for (const std::string &r :
                 marker_args(lines[static_cast<size_t>(l) - 1].comment,
                             "allow"))
                if (r == f.rule)
                    allowed = true;
        }
        if (allowed) {
            if (suppressed)
                ++*suppressed;
        } else {
            f.file = path; // report under the real path, not as-path
            kept.push_back(std::move(f));
        }
    }
    std::sort(kept.begin(), kept.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return kept;
}

namespace {

bool
lintable(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
           ext == ".cu";
}

std::string
read_file(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    NEO_CHECK(in.good(), "cannot open " + p.string());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

Report
run(const Options &opts)
{
    Report rep;
    if (opts.run_rules) {
        std::vector<std::string> roots = opts.paths;
        if (roots.empty())
            roots = {"src", "tools"};
        std::vector<fs::path> files;
        const fs::path base(opts.root);
        for (const std::string &r : roots) {
            const fs::path p = base / r;
            if (fs::is_directory(p)) {
                for (const auto &e :
                     fs::recursive_directory_iterator(p))
                    if (e.is_regular_file() && lintable(e.path()))
                        files.push_back(e.path());
            } else if (fs::is_regular_file(p)) {
                files.push_back(p);
            } else {
                NEO_CHECK(false, "no such path: " + p.string());
            }
        }
        std::sort(files.begin(), files.end());
        files.erase(std::unique(files.begin(), files.end()), files.end());
        for (const fs::path &f : files) {
            const std::string rel =
                fs::relative(f, base).generic_string();
            auto found = scan_source(rel, read_file(f), &rep.suppressed);
            rep.findings.insert(rep.findings.end(),
                                std::make_move_iterator(found.begin()),
                                std::make_move_iterator(found.end()));
            ++rep.files_scanned;
        }
        std::sort(rep.findings.begin(), rep.findings.end(),
                  [](const Finding &a, const Finding &b) {
                      return std::tie(a.file, a.line, a.rule) <
                             std::tie(b.file, b.line, b.rule);
                  });
    }
    if (opts.run_budget)
        rep.budget = run_budget_audit();
    return rep;
}

/* ------------------------------------------------------------------ */
/* Reporters.                                                         */
/* ------------------------------------------------------------------ */

void
write_text(const Report &r, std::ostream &os)
{
    for (const Finding &f : r.findings) {
        os << f.file << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n";
        if (!f.excerpt.empty())
            os << "    " << f.excerpt << "\n";
    }
    os << r.files_scanned << " files scanned, " << r.findings.size()
       << " finding(s), " << r.suppressed << " suppressed\n";
    if (!r.budget.cases.empty()) {
        os << "bit-budget: " << r.budget.cases.size()
           << " plan configurations proved, " << r.budget.refused
           << " correctly refused by the planner, " << r.budget.violations
           << " violation(s)\n";
        for (const BudgetCase &c : r.budget.cases) {
            if (!c.feasible || (c.exact && c.covers))
                continue;
            os << "  VIOLATION " << c.engine << " " << c.site << " wa="
               << c.wa << " wb=" << c.wb << " k=" << c.k << " plan="
               << c.plan.a_planes << "x" << c.plan.a_plane_bits << "b/"
               << c.plan.b_planes << "x" << c.plan.b_plane_bits
               << "b sum_bits=" << c.sum_bits << " budget="
               << c.budget_bits << (c.exact ? "" : " [overflow]")
               << (c.covers ? "" : " [word not covered]") << "\n";
        }
    }
}

void
write_json(const Report &r, std::ostream &os)
{
    json::Writer w;
    w.begin_object();
    w.key("schema").value("neo.lint/1");
    w.key("files_scanned").value(r.files_scanned);
    w.key("suppressed").value(r.suppressed);
    w.key("findings").begin_array();
    for (const Finding &f : r.findings) {
        w.begin_object();
        w.key("rule").value(f.rule);
        w.key("file").value(f.file);
        w.key("line").value(f.line);
        w.key("message").value(f.message);
        w.key("excerpt").value(f.excerpt);
        w.end_object();
    }
    w.end_array();
    w.key("budget").begin_object();
    w.key("cases").value(static_cast<u64>(r.budget.cases.size()));
    w.key("refused").value(static_cast<u64>(r.budget.refused));
    w.key("violations").value(static_cast<u64>(r.budget.violations));
    w.key("violating_cases").begin_array();
    for (const BudgetCase &c : r.budget.cases) {
        if (!c.feasible || (c.exact && c.covers))
            continue;
        w.begin_object();
        w.key("engine").value(c.engine);
        w.key("site").value(c.site);
        w.key("wa").value(c.wa);
        w.key("wb").value(c.wb);
        w.key("k").value(static_cast<u64>(c.k));
        w.key("a_planes").value(c.plan.a_planes);
        w.key("a_plane_bits").value(c.plan.a_plane_bits);
        w.key("b_planes").value(c.plan.b_planes);
        w.key("b_plane_bits").value(c.plan.b_plane_bits);
        w.key("sum_bits").value(c.sum_bits);
        w.key("budget_bits").value(c.budget_bits);
        w.key("exact").value(c.exact);
        w.key("covers").value(c.covers);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    os << w.str() << "\n";
}

} // namespace neo::lint
