/**
 * @file
 * Bit-budget prover: static verification of the plane-accumulation
 * bounds behind every GEMM plan the engines can execute (§3.4,
 * Figs 11/12).
 *
 * The FP64 tensor-core path is exact only while every partial sum
 * stays below 2^53 (the double mantissa); the INT8 path only while it
 * stays below 2^31 (the INT32 accumulator). choose_fp64_split /
 * choose_int8_split pick plans that satisfy those bounds *by
 * construction* — this prover re-derives the bound independently
 * (integer product bound in u128, not the planner's bit-count
 * shortcut) for every (engine, word size, WordSize_T, fragment shape,
 * K depth) combination reachable from the paper parameter sets A–H,
 * the test parameter presets, and the matrix-NTT radix table. Any
 * feasible plan that fails the independent proof is a lint violation;
 * configurations the planner *refuses* (throws) are recorded as
 * correctly rejected, not as violations.
 *
 * The same proofs are mirrored as constexpr static_asserts compiled
 * into src/tensor/gemm.cpp, so an out-of-budget plan is a *build*
 * failure, not a wrong answer at run time.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "gpusim/tcu_model.h"
#include "tensor/bitslice.h"

namespace neo::lint {

/** One proved (or refused) plan configuration. */
struct BudgetCase
{
    const char *engine; ///< "fp64_tcu" | "int8_tcu"
    const char *site;   ///< "ntt" | "bconv" | "ip"
    int wa = 0, wb = 0; ///< operand widths in bits
    size_t k = 0;       ///< logical accumulation depth
    size_t k_padded = 0; ///< fragment-padded depth (zeros don't add)
    gpusim::FragmentShape frag{0, 0, 0};
    SplitPlan plan{0, 0, 0, 0};
    int sum_bits = 0;    ///< a_bits + b_bits + ceil(log2 k)
    int budget_bits = 0; ///< 53 (FP64 mantissa) or 31 (INT32)
    bool feasible = false; ///< the planner produced a plan
    bool exact = false;    ///< independent u128 product bound holds
    bool covers = false;   ///< planes jointly cover the operand width
};

/** Full audit over the reachable configuration space. */
struct BudgetAudit
{
    std::vector<BudgetCase> cases;
    size_t violations = 0; ///< feasible cases failing exact/covers
    size_t refused = 0;    ///< configurations the planner rejected
};

/**
 * Independent exactness proof for an explicit plan: true iff
 * k · (2^a_bits − 1) · (2^b_bits − 1) < 2^budget_bits, evaluated in
 * 128-bit integer arithmetic. This is the check the prover applies to
 * planner output and the test suite applies to synthetic
 * deliberately-overflowing plans.
 */
bool plan_within_budget(const SplitPlan &plan, size_t k, int budget_bits);

/// True iff the plan's planes jointly cover wa/wb-bit operands.
bool plan_covers(const SplitPlan &plan, int wa, int wb);

/// Enumerate and prove every reachable configuration.
BudgetAudit run_budget_audit();

} // namespace neo::lint
