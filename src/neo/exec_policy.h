/**
 * @file
 * neo::ExecPolicy — the typed execution policy of the Neo pipeline.
 *
 * One struct replaces the positional knobs that used to sprawl across
 * keyswitch_klss_pipeline / Evaluator::set_klss_keyswitch / neo-prof /
 * the benches (`const PipelineEngines &engines, bool fuse`, per-call
 * engine strings): which GEMM engine runs (a fixed EngineId, or
 * per-site autotuned decisions), whether element-wise fusion and
 * graph capture are on, and where the tuning table came from.
 *
 * Engine selection never changes results: every engine is bit-exact,
 * so a policy only picks *which* correct engine executes each site.
 * The differential suites (tests/pipeline_test, perf_cache, fusion,
 * tune) pin that down.
 */
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "gpusim/topology.h"
#include "neo/engine.h"

namespace neo {

/**
 * Stage names of the keyswitch pipeline's engine-dispatched GEMM
 * sites. These are the cost model's NamedKernel names, the obs span
 * names' suffixes and the tuning table's `stage` keys — one shared
 * vocabulary across the functional pipeline, the model and the tuner.
 */
namespace stage {
inline constexpr const char *intt_q = "intt_q";
inline constexpr const char *modup_bconv = "modup_bconv";
inline constexpr const char *ntt_t = "ntt_t";
inline constexpr const char *ip = "ip";
inline constexpr const char *intt_t = "intt_t";
inline constexpr const char *recover_bconv = "recover_bconv";
inline constexpr const char *moddown_bconv = "moddown_bconv";
inline constexpr const char *ntt_q = "ntt_q";
inline constexpr const char *rescale_intt = "rescale_intt";
inline constexpr const char *rescale_ntt = "rescale_ntt";
} // namespace stage

/** How a policy chooses the GEMM engine. */
enum class EngineSelect {
    fixed,    ///< one engine for every site (the historical behaviour)
    autotune, ///< per-site decisions from a tuning table / resolver
};

/**
 * One kernel site of the keyswitch pipeline: the shape coordinates
 * the engine winner flips with (the paper's Fig 3/16 trade-off).
 */
struct SiteKey
{
    std::string_view stage; ///< a neo::stage name
    size_t level = 0;       ///< ciphertext level
    size_t d_num = 0;       ///< gadget digit count of the parameter set
    size_t n = 0;           ///< polynomial degree N
    double valid = 0;       ///< FP64 fragment valid proportion (§4.5.3)
    /// Devices the run shards over (1 = single device). Tuning-table
    /// entries may pin a decision to a device count; device-agnostic
    /// entries match any.
    size_t devices = 1;
};

/// Per-site engine resolver an autotune policy dispatches through.
using SiteEngineFn = std::function<EngineId(const SiteKey &)>;

/** Typed execution policy for one pipeline / profile / bench run. */
struct ExecPolicy
{
    EngineSelect select = EngineSelect::fixed;
    /// The fixed engine; also the fallback for sites an autotune
    /// resolver has no decision for.
    EngineId engine = EngineId::fp64_tcu;
    /// Cross-kernel element-wise fusion (PR 6); bit-identical either
    /// way.
    bool fuse = false;
    /// CUDA-graph capture/replay in the cost model.
    bool graph = false;
    /// Provenance: path of the tuning table backing an autotune
    /// policy (informational; carried into artifacts).
    std::string tuning_table;
    /// Resolver for autotune mode. Empty + autotune means "resolve at
    /// profile time" (load tuning_table, or tune in-memory).
    SiteEngineFn site_engine;
    /**
     * Devices the keyswitch shards across (neo::shard). 1 — the
     * default — is the single-device pipeline. N > 1 runs the same
     * kernels device-major over per-device limb/digit ranges
     * (bit-identical) and prices collectives on `interconnect`.
     */
    size_t devices = 1;
    /// Fabric preset the cost model prices when devices > 1.
    gpusim::Interconnect interconnect = gpusim::Interconnect::nvlink;

    /// Fixed-engine policy (the common case).
    static ExecPolicy fixed(EngineId e, bool fuse = false,
                            bool graph = false)
    {
        ExecPolicy p;
        p.engine = e;
        p.fuse = fuse;
        p.graph = graph;
        return p;
    }

    bool is_auto() const { return select == EngineSelect::autotune; }

    /// The engine this policy runs @p site with.
    EngineId engine_at(const SiteKey &site) const
    {
        if (is_auto() && site_engine)
            return site_engine(site);
        return engine;
    }

    /// "auto" or the fixed engine's registry name (for reports).
    std::string_view engine_name() const
    {
        return is_auto() ? std::string_view("auto")
                         : EngineRegistry::name(engine);
    }
};

} // namespace neo
