/**
 * @file
 * Analytic performance model of Neo's kernels and operations on the
 * simulated A100.
 *
 * Every configuration switch corresponds to one of the paper's
 * optimizations (the Fig 14 ablation axes) or to a baseline's design
 * choice, so the same model instance prices Neo, TensorFHE, HEonGPU
 * and the CPU by flipping flags — never by per-backend constants.
 *
 * Sizing conventions: all costs are **per batch** (BatchSize
 * ciphertexts processed by one kernel, the paper's measurement unit).
 * A "limb" is one (polynomial, prime) residue vector of N
 * coefficients; ciphertext-side data scales with the batch, key-side
 * data does not.
 */
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "ckks/params.h"
#include "gpusim/kernel_cost.h"
#include "gpusim/tcu_model.h"
#include "gpusim/topology.h"

namespace neo::model {

/** Which execution engine a matrix multiplication is mapped to. */
enum class MatMulEngine { cuda_cores, tcu_fp64, tcu_int8 };

/** Algorithm/mapping switches (Fig 14 axes + baseline choices). */
struct ModelConfig
{
    gpusim::DeviceSpec device = gpusim::DeviceSpec::a100();

    bool use_klss = true;        ///< KLSS vs Hybrid KeySwitch
    bool matmul_dataflow = true; ///< BConv/IP as matmul (Algs 2/4)
    bool radix16_ntt = true;     ///< ten-step NTT vs four-step
    bool tcu_ntt = true;         ///< NTT matmuls on the TCU at all
    MatMulEngine engine = MatMulEngine::tcu_fp64; ///< GEMM engine
    bool kernel_fusion = true;   ///< §4.6 fusion
    bool multistream = true;     ///< §4.6 multi-stream overlap
    /**
     * Cross-kernel element-wise fusion: fold the ModDown scalar fix
     * into the ModDown BConv epilogue and the twiddle-scale passes
     * into the NTT GEMM epilogues. Each fold removes a kernel launch
     * and the DRAM round trip of the intermediate (the Theodosian
     * rule: fuse where it also cuts bytes). Off by default — this is
     * the --fuse ablation axis, not a baseline design choice.
     */
    bool fuse_elementwise = false;
    /**
     * CUDA-graph-style capture of the whole operation DAG: one
     * amortized host dispatch replays every kernel
     * (DeviceSpec::graph_launch_s). The --graph ablation axis.
     */
    bool graph_capture = false;
    double ip_tcu_threshold = 0.80; ///< §4.5.3 valid-proportion gate
    /// Kernel grids sized by the ciphertext batch (TensorFHE/Neo
    /// style); unbatched systems parallelise within one ciphertext.
    bool batched_pipeline = true;
    /**
     * Devices the keyswitch shards across (neo::shard). 1 — the
     * default and every baseline — keeps the single-device schedule;
     * N > 1 partitions limbs/digits per device and prices the
     * collectives on the selected interconnect.
     */
    size_t devices = 1;
    /// Fabric preset used when devices > 1.
    gpusim::Interconnect interconnect = gpusim::Interconnect::nvlink;
    /**
     * Per-stage engine override for the named composite schedules
     * (keyswitch/hmult/hrotate/rescale). When set, every named stage
     * is priced with stage_engine(stage, level) instead of `engine` —
     * this is how an autotune ExecPolicy's per-site decisions reach
     * the model (neo::model_config wires it). Unset means uniform
     * `engine`, the historical behaviour.
     */
    std::function<MatMulEngine(std::string_view stage, size_t level)>
        stage_engine;
};

/** Per-kernel and per-operation cost calculator. */
class KernelModel
{
  public:
    KernelModel(const ckks::CkksParams &params, const ModelConfig &cfg);

    const ModelConfig &config() const { return cfg_; }
    const ckks::CkksParams &params() const { return params_; }

    // ---- Kernel costs (per batch) ------------------------------------

    /// NTT or INTT of @p limbs batched limbs at @p word_bits.
    gpusim::KernelCost ntt(size_t limbs, int word_bits) const;
    /// Same, with the GEMM engine chosen per call (autotuned sites).
    gpusim::KernelCost ntt(size_t limbs, int word_bits,
                           MatMulEngine engine) const;

    /**
     * BConv of @p in_limbs batched input limbs to @p out_limbs output
     * limbs (Alg 1 or Alg 2 per config).
     */
    gpusim::KernelCost bconv(size_t in_limbs, size_t out_limbs,
                             int word_in, int word_out) const;
    /// Same, with the GEMM engine chosen per call.
    gpusim::KernelCost bconv(size_t in_limbs, size_t out_limbs,
                             int word_in, int word_out,
                             MatMulEngine engine) const;

    /**
     * IP over @p limbs auxiliary limbs with β input digits and β̃
     * output digits, for both ciphertext components (Alg 3 or 4).
     */
    gpusim::KernelCost ip(size_t beta, size_t beta_tilde, size_t limbs,
                          int word_bits) const;
    /**
     * Same, with the GEMM engine chosen per call. The §4.5.3
     * valid-proportion gate still downgrades FP64-TCU to CUDA cores
     * when the fragment utilisation is below ip_tcu_threshold.
     */
    gpusim::KernelCost ip(size_t beta, size_t beta_tilde, size_t limbs,
                          int word_bits, MatMulEngine engine) const;

    /// Element-wise modular multiply of @p limbs batched limbs.
    gpusim::KernelCost modmul(size_t limbs) const;
    /// Element-wise modular add of @p limbs batched limbs.
    gpusim::KernelCost modadd(size_t limbs) const;
    /// AUTO (automorphism permutation) of @p limbs batched limbs.
    gpusim::KernelCost auto_kernel(size_t limbs) const;

    /// The GEMM engine IP actually uses at level @p level (§4.5.3).
    MatMulEngine ip_engine(size_t level) const;

    /**
     * The engine pricing @p stage at @p level: the config's
     * stage_engine hook when set, otherwise the uniform engine.
     */
    MatMulEngine engine_for_stage(std::string_view stage,
                                  size_t level) const;

    // ---- Composite costs ----------------------------------------------

    /**
     * One kernel of a composite operation, tagged with the stage name
     * used by the profiler and the obs attribution sink ("intt_q",
     * "modup_bconv", "ip", ...). Names are stable across engines so
     * baselines compare like-for-like.
     */
    struct NamedKernel
    {
        const char *name;
        gpusim::KernelCost cost;
        /// Element-wise stages folded into this kernel by
        /// ModelConfig::fuse_elementwise (0 when unfused).
        u64 fused = 0;
    };

    /**
     * One row of an attributed schedule: all invocations of one named
     * kernel, with its share of the schedule time. Time fields are
     * scaled so that summing `modeled_s` over all rows reproduces the
     * schedule total exactly (overlap gains and the occupancy derate
     * are distributed proportionally); bytes/op fields are raw work
     * sums for the whole batch.
     */
    struct KernelAttribution
    {
        std::string name;
        u64 calls = 0;
        double modeled_s = 0;  ///< scaled share of the schedule total
        double fraction = 0;   ///< modeled_s / schedule total
        double compute_s = 0;  ///< scaled compute phase
        double memory_s = 0;   ///< scaled memory phase
        double launch_s = 0;   ///< scaled launch overhead
        double bytes = 0;      ///< DRAM bytes (whole batch)
        double macs = 0;       ///< TCU MACs (whole batch)
        double mod_ops = 0;    ///< CUDA modular ops (whole batch)
        double int_ops = 0;    ///< plain INT32 ops (whole batch)
        u64 fused = 0;         ///< element-wise stages folded in

        /// Bottleneck class of this row (largest scaled phase).
        gpusim::Bound bound() const;
    };

    /** run() result with its per-kernel roofline attribution. */
    struct AttributedSchedule
    {
        /// Per-batched-ciphertext schedule time; == run(same kernels).
        double seconds = 0;
        /// Raw whole-batch schedule totals (before occupancy/batch).
        gpusim::ScheduleResult schedule;
        /// Element-wise stages folded into neighbours across the
        /// whole schedule (sum of NamedKernel::fused).
        u64 fused_kernels = 0;
        /// One row per distinct kernel name, first-appearance order.
        std::vector<KernelAttribution> kernels;
    };

    /// Kernel sequence of one KeySwitch at @p level.
    std::vector<gpusim::KernelCost> keyswitch_kernels(size_t level) const;

    /// KeySwitch kernels with stage names (superset of
    /// keyswitch_kernels: same costs, same order).
    std::vector<NamedKernel> keyswitch_kernels_named(size_t level) const;
    /// HMULT = KeySwitch + tensor-product fixups.
    std::vector<NamedKernel> hmult_kernels_named(size_t level) const;
    /// HROTATE = KeySwitch + automorphism + accumulate.
    std::vector<NamedKernel> hrotate_kernels_named(size_t level) const;
    /// Rescale = INTT + scalar fix + NTT, with stage names.
    std::vector<NamedKernel> rescale_kernels_named(size_t level) const;
    /// Fused double rescale (PR 4), with stage names.
    std::vector<NamedKernel>
    double_rescale_kernels_named(size_t level) const;

    /// Wall time of one KeySwitch at @p level.
    double keyswitch_time(size_t level) const;

    /// Operation wall times at @p level (per batch).
    double hmult_time(size_t level) const;
    double hrotate_time(size_t level) const;

    /**
     * Time for @p count rotations of the same ciphertext with a
     * shared ModUp (Halevi–Shoup hoisting; ckks/hoisting.h is the
     * functional counterpart). Only the Hybrid path hoists here.
     */
    double hrotate_hoisted_time(size_t level, size_t count) const;
    double pmult_time(size_t level) const;
    double hadd_time(size_t level) const;
    double padd_time(size_t level) const;
    double rescale_time(size_t level) const;
    double double_rescale_time(size_t level) const;

    /// Total time of a kernel list under this config's scheduling.
    double run(const std::vector<gpusim::KernelCost> &kernels) const;

    /**
     * run() plus per-kernel roofline attribution. The invariant
     * `sum(row.modeled_s) == result.seconds == run(costs)` is the
     * contract the profiler's JSON artifact is tested against.
     */
    AttributedSchedule
    run_attributed(const std::vector<NamedKernel> &kernels) const;

    // ---- Traffic introspection (Figs 2 and 15) -------------------------

    /** DRAM traffic of one KeySwitch, split by kernel family. */
    struct KeySwitchTraffic
    {
        double bconv = 0; ///< ModUp + Recover Limbs + ModDown conversions
        double ip = 0;
        double ntt = 0;   ///< NTT + INTT
        double other = 0;

        double total() const { return bconv + ip + ntt + other; }
    };

    KeySwitchTraffic keyswitch_traffic(size_t level) const;

  private:
    /// Cost of an integer GEMM on the configured engine.
    gpusim::KernelCost gemm(size_t m, size_t n, size_t k, int wa, int wb,
                            MatMulEngine engine) const;

    ckks::CkksParams params_;
    ModelConfig cfg_;
};

} // namespace neo::model
