#include "neo/kernels.h"

#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/workspace.h"
#include "obs/obs.h"
#include "tensor/layout.h"

namespace neo {

namespace {

/// Per-kernel accounting shared by both BConv algorithms: one kernel
/// launch, α·α'·BS limb products, and the limb traffic (inputs read
/// once, outputs written once — the matrix form's whole point; the
/// element-wise form re-reads inputs α' times but we charge the
/// algorithmic minimum so the two variants compare on work done).
void
note_bconv(size_t a, size_t ap, size_t batch, size_t n)
{
    if (auto *r = obs::current()) {
        r->add("bconv.kernels");
        r->add("bconv.products", static_cast<u64>(a) * ap * batch);
        r->add_value("bconv.bytes",
                     static_cast<double>((a + ap) * batch * n) *
                         sizeof(u64));
    }
}

/// IP accounting: one kernel launch, β̃·β·α'·BS limb multiplications
/// (Table 2's ββ̃α' per ciphertext component), and the traffic of the
/// matrix form — limbs and keys read once, β̃·α'·BS limbs written.
void
note_ip(size_t beta, size_t beta_tilde, size_t ap, size_t batch, size_t n)
{
    if (auto *r = obs::current()) {
        r->add("ip.kernels");
        r->add("ip.mul_limbs",
               static_cast<u64>(beta_tilde) * beta * ap * batch);
        const double rd =
            static_cast<double>(beta * ap * batch * n) +      // limbs
            static_cast<double>(beta_tilde * beta * ap * n);  // keys
        const double wr = static_cast<double>(beta_tilde * ap * batch * n);
        r->add_value("ip.bytes", (rd + wr) * sizeof(u64));
    }
}

} // namespace

BConvKernel::BConvKernel(const RnsBasis &from, const RnsBasis &to)
    : conv_(from, to)
{
    const size_t a = from.size();
    const size_t ap = to.size();
    factor_matrix_.resize(a * ap);
    for (size_t i = 0; i < a; ++i)
        for (size_t j = 0; j < ap; ++j)
            factor_matrix_[i * ap + j] = conv_.factor(i, j);
    factor_pin_ = StaticPin(factor_matrix_.data(),
                            factor_matrix_.size() * sizeof(u64));
}

void
BConvKernel::run_elementwise(const u64 *in, size_t batch, size_t n,
                             u64 *out) const
{
    obs::Span span("bconv_ew", obs::cat::bconv);
    const size_t a = in_levels();
    const size_t ap = out_levels();
    note_bconv(a, ap, batch, n);
    // Algorithm 1: each coefficient of every input limb is re-read for
    // every output level.
    for (size_t j = 0; j < ap; ++j) {
        const Modulus &tj = conv_.to()[j];
        for (size_t b = 0; b < batch; ++b) {
            u64 *dst = out + (j * batch + b) * n;
            std::fill(dst, dst + n, 0);
            for (size_t i = 0; i < a; ++i) {
                const Modulus &bi = conv_.from()[i];
                const u64 inv = conv_.from().punc_inv(i);
                const u64 f = factor_matrix_[i * ap + j];
                const u64 *src = in + (i * batch + b) * n;
                for (size_t l = 0; l < n; ++l) {
                    u64 scaled = bi.mul(src[l], inv);
                    dst[l] = tj.add(dst[l], tj.mul(tj.reduce(scaled), f));
                }
            }
        }
    }
}

void
BConvKernel::run_matmul(const u64 *in, size_t batch, size_t n, u64 *out,
                        const ModColMatMulFn &mm) const
{
    matmul_common(in, batch, n, out, mm, /*exact=*/false);
}

void
BConvKernel::run_matmul_exact(const u64 *in, size_t batch, size_t n,
                              u64 *out, const ModColMatMulFn &mm) const
{
    matmul_common(in, batch, n, out, mm, /*exact=*/true);
}

void
BConvKernel::matmul_common(const u64 *in, size_t batch, size_t n, u64 *out,
                           const ModColMatMulFn &mm, bool exact) const
{
    obs::Span span("bconv_mm", obs::cat::bconv);
    const size_t a = in_levels();
    const size_t ap = out_levels();
    note_bconv(a, ap, batch, n);
    // Step 1 (preprocessing): scalar multiply by (B/b_i)^{-1} and
    // reorder α×BS×N -> N×BS×α so α is the GEMM K dimension.
    Workspace::Frame frame;
    u64 *scaled = frame.alloc<u64>(a * batch * n);
    for (size_t i = 0; i < a; ++i) {
        const Modulus &bi = conv_.from()[i];
        const u64 inv = conv_.from().punc_inv(i);
        const u64 ws = shoup_precompute(inv, bi.value());
        const u64 *src = in + i * batch * n;
        u64 *dst = scaled + i * batch * n;
        parallel_for(
            0, batch * n,
            [&](size_t b, size_t e) {
                for (size_t x = b; x < e; ++x)
                    dst[x] = mul_shoup(src[x], inv, ws, bi.value());
            },
            8192);
    }
    // Exact mode: overflow counts r = round(Σ_i y_i / b_i), one per
    // coefficient site (matches BaseConverter::convert_exact).
    u64 *overflow = nullptr;
    if (exact) {
        overflow = frame.alloc<u64>(batch * n);
        // double reciprocals with long-double accumulation — the same
        // precision recipe as BaseConverter::convert_exact, so the two
        // paths round identically (bit-exactness tests rely on it).
        double *inv_b = frame.alloc<double>(a);
        for (size_t i = 0; i < a; ++i)
            // Shenoy–Kumaresan overflow estimation is float-assisted
            // by design (§4.5.2). neo-lint: allow(float-on-limb)
            inv_b[i] = 1.0 / static_cast<double>(conv_.from()[i].value());
        // Per-site accumulation over i is fully inside one index x,
        // so chunking over x preserves the rounding bit-for-bit.
        parallel_for(
            0, batch * n,
            [&](size_t b, size_t e) {
                for (size_t x = b; x < e; ++x) {
                    long double v = 0.0L;
                    for (size_t i = 0; i < a; ++i)
                        // neo-lint: allow(float-on-limb) — see above.
                        v += static_cast<long double>(
                                 scaled[i * batch * n + x]) *
                             inv_b[i];
                    overflow[x] = static_cast<u64>(std::llroundl(v));
                }
            },
            4096);
    }
    u64 *reordered = frame.alloc<u64>(a * batch * n);
    reorder_3d_swap02(scaled, a, batch, n, reordered);

    // Step 2: one (N·BS) × α' × α GEMM against the factor matrix,
    // reduced per output column's modulus.
    u64 *prod = frame.alloc<u64>(n * batch * ap);
    mm(reordered, factor_matrix_.data(), prod, n * batch, ap, a,
       conv_.to().mods());

    // Exact epilogue: subtract r·B mod t_j per row (rank-1 update);
    // rows are disjoint.
    if (exact) {
        parallel_for(
            0, n,
            [&](size_t lb, size_t le) {
                for (size_t l = lb; l < le; ++l) {
                    for (size_t b = 0; b < batch; ++b) {
                        const u64 r = overflow[b * n + l];
                        u64 *row = prod + (l * batch + b) * ap;
                        for (size_t j = 0; j < ap; ++j) {
                            const Modulus &tj = conv_.to()[j];
                            u64 corr = tj.mul(tj.reduce(r),
                                              conv_.product_mod_to(j));
                            row[j] = tj.sub(row[j], corr);
                        }
                    }
                }
            },
            1024);
    }

    // Step 3 (postprocessing): reorder N×BS×α' -> α'×BS×N.
    reorder_3d_swap02(prod, n, batch, ap, out);
}

IpKernel::IpKernel(std::vector<Modulus> t_mods, size_t beta,
                   size_t beta_tilde)
    : t_mods_(std::move(t_mods)), beta_(beta), beta_tilde_(beta_tilde)
{
    NEO_CHECK(!t_mods_.empty() && beta_ > 0 && beta_tilde_ > 0,
              "bad IP dimensions");
}

void
IpKernel::run_elementwise(const u64 *limbs, const u64 *keys, size_t batch,
                          size_t n, u64 *out) const
{
    obs::Span span("ip_ew", obs::cat::ip);
    const size_t ap = t_mods_.size();
    note_ip(beta_, beta_tilde_, ap, batch, n);
    std::fill(out, out + beta_tilde_ * ap * batch * n, 0);
    // Algorithm 3: β̃·β element-wise passes; every limb is re-read β̃
    // times.
    for (size_t i = 0; i < beta_tilde_; ++i) {
        for (size_t j = 0; j < beta_; ++j) {
            for (size_t k = 0; k < ap; ++k) {
                const Modulus &t = t_mods_[k];
                const u64 *key = keys + ((i * beta_ + j) * ap + k) * n;
                for (size_t b = 0; b < batch; ++b) {
                    const u64 *src =
                        limbs + ((j * ap + k) * batch + b) * n;
                    u64 *dst = out + ((i * ap + k) * batch + b) * n;
                    for (size_t l = 0; l < n; ++l)
                        dst[l] = t.add(dst[l], t.mul(src[l], key[l]));
                }
            }
        }
    }
}

void
IpKernel::run_matmul(const u64 *limbs, const u64 *keys, size_t batch,
                     size_t n, u64 *out, const ModSiteMatMulFn &mm) const
{
    obs::Span span("ip_mm", obs::cat::ip);
    const size_t ap = t_mods_.size();
    note_ip(beta_, beta_tilde_, ap, batch, n);
    // Preprocessing: reorder the key tensor per Fig 8, then share the
    // rest with the cached-key path.
    Workspace::Frame frame;
    u64 *keys_r = frame.alloc<u64>(beta_tilde_ * beta_ * ap * n);
    reorder_4d_reverse(keys, beta_tilde_, beta_, ap, n, keys_r);
    matmul_impl(limbs, keys_r, batch, n, out, mm);
}

void
IpKernel::run_matmul_reordered(const u64 *limbs, const u64 *keys_r,
                               size_t batch, size_t n, u64 *out,
                               const ModSiteMatMulFn &mm) const
{
    obs::Span span("ip_mm", obs::cat::ip);
    note_ip(beta_, beta_tilde_, t_mods_.size(), batch, n);
    matmul_impl(limbs, keys_r, batch, n, out, mm);
}

void
IpKernel::matmul_impl(const u64 *limbs, const u64 *keys_r, size_t batch,
                      size_t n, u64 *out, const ModSiteMatMulFn &mm) const
{
    const size_t ap = t_mods_.size();
    // Preprocessing: reorder the limb tensor per Fig 8.
    Workspace::Frame frame;
    u64 *limbs_r = frame.alloc<u64>(beta_ * ap * batch * n);
    reorder_4d_swap03(limbs, beta_, ap, batch, n, limbs_r);

    // One BS × β̃ × β product per (coefficient, T-limb) site, issued as
    // a single batched engine call; site l·α'+k reduces mod t_k, which
    // is exactly the mods-cycle contract of ModSiteMatMulFn.
    u64 *prod = frame.alloc<u64>(n * ap * batch * beta_tilde_);
    mm(limbs_r, keys_r, prod, n * ap, batch, beta_tilde_, beta_, t_mods_);

    // Postprocessing: N×α'×BS×β̃ -> β̃×α'×BS×N.
    reorder_4d_swap03(prod, n, ap, batch, beta_tilde_, out);
}

} // namespace neo
