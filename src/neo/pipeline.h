/**
 * @file
 * The Neo execution pipeline: a functional KLSS KeySwitch whose every
 * stage runs through the paper's optimized kernels —
 *
 *   Mod Up        → BConvKernel::run_matmul_exact (Alg 2 + exactness)
 *   NTT / INTT    → MatrixNtt radix-16 (ten-step, §4.4)
 *   IP            → IpKernel::run_matmul (Alg 4)
 *   Recover Limbs → BConvKernel::run_matmul_exact per key-digit group
 *   Mod Down      → shared with the reference implementation
 *
 * with all matrix multiplications executed by the *emulated FP64
 * tensor core* (bit-sliced double arithmetic). The output is required
 * to be bit-identical to the reference keyswitch_klss — the strongest
 * functional statement of the paper's claim that the TCU mapping is
 * exact, not approximate.
 */
#pragma once

#include <string_view>
#include <vector>

#include "ckks/keyswitch.h"
#include "poly/mat_mul.h"
#include "tensor/gemm.h"

namespace neo {

/** Which GEMM implementation drives the pipeline's matrix stages. */
struct PipelineEngines
{
    ModMatMulFn same_mod = default_mat_mul();        ///< NTT GEMMs
    ModColMatMulFn per_column = scalar_col_matmul(); ///< BConv GEMMs
    ModSiteMatMulFn per_site = scalar_site_matmul(); ///< batched IP GEMM

    /// Everything through the emulated FP64 tensor core.
    static PipelineEngines fp64_tcu()
    {
        return {fp64_tcu_matmul(), fp64_tcu_col_matmul(),
                fp64_tcu_site_matmul()};
    }

    /// Scalar (CUDA-core analogue) reference engines.
    static PipelineEngines scalar() { return {}; }

    /// Everything through the emulated INT8 tensor core.
    static PipelineEngines int8_tcu()
    {
        return {int8_tcu_matmul(), int8_tcu_col_matmul(),
                int8_tcu_site_matmul()};
    }

    /**
     * Named-registry constructor: "fp64_tcu", "scalar" or "int8_tcu".
     * Throws std::invalid_argument on an unknown name, listing the
     * valid ones. Lets benches/examples/configs select an engine by
     * string instead of hand-wiring function pointers.
     */
    static PipelineEngines from_name(std::string_view name);

    /// The names from_name accepts, for help text.
    static const std::vector<std::string_view> &names();
};

/**
 * KLSS key switch of @p d2 through the Neo kernel pipeline.
 * Same contract as ckks::keyswitch_klss; bit-identical output.
 *
 * @p fuse enables cross-kernel element-wise fusion: the NTT twiddle
 * passes fold into the matrix-NTT gathers/writebacks and the ModDown
 * scalar fix folds into its BConv epilogue. The fused pipeline is
 * bit-identical to the unfused one (and to keyswitch_klss) — it
 * changes which loop performs each modular operation, never the
 * operations themselves. tests/fusion_test.cpp is the differential
 * proof; span counts per obs category are unchanged, while the
 * "pass." / "fuse." counters record the eliminated element-wise
 * kernels.
 */
std::pair<RnsPoly, RnsPoly>
keyswitch_klss_pipeline(const RnsPoly &d2, const ckks::KlssEvalKey &evk,
                        const ckks::CkksContext &ctx,
                        const PipelineEngines &engines =
                            PipelineEngines::fp64_tcu(),
                        bool fuse = false);

/**
 * Analytic kernel-invocation counts for ONE keyswitch_klss_pipeline
 * run. These are closed-form predictions of the obs span counters
 * ("span.gemm", "span.ntt", "span.bconv", "span.ip") a traced run
 * records — bench/table7_kernels prints them and tests/obs_test
 * asserts the traced pipeline matches them exactly.
 */
struct PipelineKernelCounts
{
    u64 gemm = 0;  ///< GEMM engine calls (MatrixNtt tiles + BConv + IP)
    u64 ntt = 0;   ///< NTT/INTT transform invocations
    u64 bconv = 0; ///< base-conversion kernel invocations
    u64 ip = 0;    ///< inner-product kernel invocations
};

/// Counts for a keyswitch at @p level in @p ctx.
PipelineKernelCounts
keyswitch_pipeline_kernel_counts(const ckks::CkksContext &ctx,
                                 size_t level);

} // namespace neo
