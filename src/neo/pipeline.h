/**
 * @file
 * The Neo execution pipeline: a functional KLSS KeySwitch whose every
 * stage runs through the paper's optimized kernels —
 *
 *   Mod Up        → BConvKernel::run_matmul_exact (Alg 2 + exactness)
 *   NTT / INTT    → MatrixNtt radix-16 (ten-step, §4.4)
 *   IP            → IpKernel::run_matmul (Alg 4)
 *   Recover Limbs → BConvKernel::run_matmul_exact per key-digit group
 *   Mod Down      → shared with the reference implementation
 *
 * with all matrix multiplications executed by the *emulated FP64
 * tensor core* (bit-sliced double arithmetic). The output is required
 * to be bit-identical to the reference keyswitch_klss — the strongest
 * functional statement of the paper's claim that the TCU mapping is
 * exact, not approximate.
 */
#pragma once

#include "ckks/keyswitch.h"
#include "poly/mat_mul.h"
#include "tensor/gemm.h"

namespace neo {

/** Which GEMM implementation drives the pipeline's matrix stages. */
struct PipelineEngines
{
    ModMatMulFn same_mod = default_mat_mul();       ///< NTT + IP GEMMs
    ModColMatMulFn per_column = scalar_col_matmul(); ///< BConv GEMMs

    /// Everything through the emulated FP64 tensor core.
    static PipelineEngines fp64_tcu()
    {
        return {fp64_tcu_matmul(), fp64_tcu_col_matmul()};
    }

    /// Scalar (CUDA-core analogue) reference engines.
    static PipelineEngines scalar() { return {}; }
};

/**
 * KLSS key switch of @p d2 through the Neo kernel pipeline.
 * Same contract as ckks::keyswitch_klss; bit-identical output.
 */
std::pair<RnsPoly, RnsPoly>
keyswitch_klss_pipeline(const RnsPoly &d2, const ckks::KlssEvalKey &evk,
                        const ckks::CkksContext &ctx,
                        const PipelineEngines &engines =
                            PipelineEngines::fp64_tcu());

} // namespace neo
