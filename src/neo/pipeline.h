/**
 * @file
 * The Neo execution pipeline: a functional KLSS KeySwitch whose every
 * stage runs through the paper's optimized kernels —
 *
 *   Mod Up        → BConvKernel::run_matmul_exact (Alg 2 + exactness)
 *   NTT / INTT    → MatrixNtt radix-16 (ten-step, §4.4)
 *   IP            → IpKernel::run_matmul (Alg 4)
 *   Recover Limbs → BConvKernel::run_matmul_exact per key-digit group
 *   Mod Down      → shared with the reference implementation
 *
 * with all matrix multiplications executed by an *emulated tensor
 * core* (or the scalar reference engine), selected per run — or per
 * kernel site — by a neo::ExecPolicy. The output is required to be
 * bit-identical to the reference keyswitch_klss for every policy —
 * the strongest functional statement of the paper's claim that the
 * TCU mapping is exact, not approximate.
 */
#pragma once

#include <functional>
#include <string_view>
#include <utility>
#include <vector>

#include "ckks/keyswitch.h"
#include "neo/exec_policy.h"
#include "neo/kernel_model.h"
#include "poly/mat_mul.h"
#include "tensor/gemm.h"

namespace neo {

/** Which GEMM implementation drives the pipeline's matrix stages. */
struct PipelineEngines
{
    ModMatMulFn same_mod = default_mat_mul();        ///< NTT GEMMs
    ModColMatMulFn per_column = scalar_col_matmul(); ///< BConv GEMMs
    ModSiteMatMulFn per_site = scalar_site_matmul(); ///< batched IP GEMM

    /// Everything through the emulated FP64 tensor core.
    static PipelineEngines fp64_tcu()
    {
        return {fp64_tcu_matmul(), fp64_tcu_col_matmul(),
                fp64_tcu_site_matmul()};
    }

    /// Scalar (CUDA-core analogue) reference engines.
    static PipelineEngines scalar() { return {}; }

    /// Everything through the emulated INT8 tensor core.
    static PipelineEngines int8_tcu()
    {
        return {int8_tcu_matmul(), int8_tcu_col_matmul(),
                int8_tcu_site_matmul()};
    }

    /**
     * Named-registry constructor: "fp64_tcu", "scalar" or "int8_tcu".
     * Throws std::invalid_argument on an unknown name.
     */
    [[deprecated("use EngineRegistry::parse + EngineRegistry::engines "
                 "(or ExecPolicy::fixed) instead")]]
    static PipelineEngines from_name(std::string_view name);

    /// The names from_name accepts, for help text.
    [[deprecated("use EngineRegistry::ids / EngineRegistry::help_list "
                 "instead")]]
    static const std::vector<std::string_view> &names();
};

/**
 * KLSS key switch of @p d2 through the Neo kernel pipeline under
 * @p policy. Same contract as ckks::keyswitch_klss; bit-identical
 * output for every policy.
 *
 * - policy.engine / policy.select: which bit-exact GEMM engine runs
 *   each matrix stage. With EngineSelect::autotune and a site_engine
 *   resolver (see tune::TuningTable::policy), each dispatched stage
 *   (modup_bconv, ntt_t, ip, intt_t, recover_bconv, ntt_q) resolves
 *   its engine from the (stage, level, d_num, N, valid) site key, and
 *   the run records one `tune.site.<stage>.<engine>` obs counter per
 *   decision so tests can prove which engine executed.
 * - policy.fuse: cross-kernel element-wise fusion — the NTT twiddle
 *   passes fold into the matrix-NTT gathers/writebacks and the
 *   ModDown scalar fix folds into its BConv epilogue. Bit-identical
 *   either way (tests/fusion_test.cpp is the differential proof).
 * - policy.graph: forwarded to the modeled-cost span so the recorded
 *   `modeled.keyswitch.s` prices the captured schedule.
 */
std::pair<RnsPoly, RnsPoly>
keyswitch_klss_pipeline(const RnsPoly &d2, const ckks::KlssEvalKey &evk,
                        const ckks::CkksContext &ctx,
                        const ExecPolicy &policy = {});

/**
 * Deprecated raw-engine overload (pre-ExecPolicy surface). Kept one
 * PR for out-of-tree callers, like the PR 2 EvalKeyBundle migration;
 * all in-tree callers pass an ExecPolicy.
 */
[[deprecated("pass a neo::ExecPolicy (ExecPolicy::fixed(EngineId, "
             "fuse)) instead of PipelineEngines + bool")]]
std::pair<RnsPoly, RnsPoly>
keyswitch_klss_pipeline(const RnsPoly &d2, const ckks::KlssEvalKey &evk,
                        const ckks::CkksContext &ctx,
                        const PipelineEngines &engines, bool fuse = false);

/**
 * A ckks::Evaluator::KlssKeySwitchFn that routes every KLSS key
 * switch through keyswitch_klss_pipeline under @p policy (captured by
 * value). The one-liner for Evaluator::set_klss_keyswitch.
 */
std::function<std::pair<RnsPoly, RnsPoly>(
    const RnsPoly &, const ckks::KlssEvalKey &, const ckks::CkksContext &)>
klss_keyswitch_fn(ExecPolicy policy);

/**
 * The cost-model configuration matching @p policy for @p params:
 * engine / fuse_elementwise / graph_capture, plus a per-stage engine
 * hook when the policy autotunes — so modeled costs (the pipeline's
 * modeled.keyswitch.s span, neo-prof artifacts) price exactly the
 * engines the policy dispatches.
 */
model::ModelConfig model_config(const ExecPolicy &policy,
                                const ckks::CkksParams &params);

/**
 * Analytic kernel-invocation counts for ONE keyswitch_klss_pipeline
 * run. These are closed-form predictions of the obs span counters
 * ("span.gemm", "span.ntt", "span.bconv", "span.ip") a traced run
 * records — bench/table7_kernels prints them and tests/obs_test
 * asserts the traced pipeline matches them exactly. Engine selection
 * (fixed or autotuned) never changes them.
 */
struct PipelineKernelCounts
{
    u64 gemm = 0;  ///< GEMM engine calls (MatrixNtt tiles + BConv + IP)
    u64 ntt = 0;   ///< NTT/INTT transform invocations
    u64 bconv = 0; ///< base-conversion kernel invocations
    u64 ip = 0;    ///< inner-product kernel invocations
};

/// Counts for a keyswitch at @p level in @p ctx.
PipelineKernelCounts
keyswitch_pipeline_kernel_counts(const ckks::CkksContext &ctx,
                                 size_t level);

} // namespace neo
