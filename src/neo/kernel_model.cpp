#include "neo/kernel_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "poly/matrix_ntt.h"
#include "tensor/bitslice.h"

namespace neo::model {

using gpusim::KernelCost;
using gpusim::TcuModel;

KernelModel::KernelModel(const ckks::CkksParams &params,
                         const ModelConfig &cfg)
    : params_(params), cfg_(cfg)
{
    NEO_CHECK(!cfg_.use_klss || params_.klss.enabled(),
              "KLSS model requires KLSS parameters");
}

KernelCost
KernelModel::gemm(size_t m, size_t n, size_t k, int wa, int wb,
                  MatMulEngine engine) const
{
    KernelCost c;
    c.launches = 0; // priced by the owning kernel
    const double mn = static_cast<double>(m) * n;
    switch (engine) {
      case MatMulEngine::cuda_cores:
        c.cuda_modmul += mn * k;
        c.cuda_modadd += mn * k;
        break;
      case MatMulEngine::tcu_fp64: {
        const SplitPlan plan =
            choose_fp64_split(std::max(wa, 1), std::max(wb, 1), k);
        const u64 padded =
            TcuModel::padded_macs(m, n, k, gpusim::kFp64Fragment);
        c.tcu_fp64_macs += static_cast<double>(padded) * plan.products();
        // Split (CUDA cores): produce the operand planes.
        c.cuda_int_ops += 2.0 * (plan.a_planes * static_cast<double>(m) * k +
                                 plan.b_planes * static_cast<double>(k) * n);
        // Merge: combine plan.products() partials with shifts + mod.
        c.cuda_int_ops +=
            cfg_.device.int_ops_per_merge * plan.products() * mn;
        break;
      }
      case MatMulEngine::tcu_int8: {
        const SplitPlan plan =
            choose_int8_split(std::max(wa, 1), std::max(wb, 1), k);
        u64 best = ~0ULL;
        for (const auto &f : gpusim::kInt8Fragments)
            best = std::min(best, TcuModel::padded_macs(m, n, k, f));
        c.tcu_int8_macs += static_cast<double>(best) * plan.products();
        c.cuda_int_ops += 2.0 * (plan.a_planes * static_cast<double>(m) * k +
                                 plan.b_planes * static_cast<double>(k) * n);
        c.cuda_int_ops +=
            cfg_.device.int_ops_per_merge * plan.products() * mn;
        break;
      }
    }
    return c;
}

KernelCost
KernelModel::ntt(size_t limbs, int word_bits) const
{
    return ntt(limbs, word_bits, cfg_.engine);
}

KernelCost
KernelModel::ntt(size_t limbs, int word_bits, MatMulEngine engine) const
{
    const double batch = static_cast<double>(params_.batch);
    const double n = static_cast<double>(params_.n);
    const double lb = static_cast<double>(limbs) * batch;
    KernelCost c;
    // Fused implementations stream the data twice (two matmul/butterfly
    // passes through shared memory), as in 100x / TensorFHE.
    c.bytes_read = 2.0 * lb * n * 8.0;
    c.bytes_written = 2.0 * lb * n * 8.0;
    c.launches = cfg_.kernel_fusion ? 1 : 2;

    if (!cfg_.tcu_ntt) {
        // Butterfly NTT on CUDA cores.
        const double stages = std::log2(n);
        c.cuda_modmul += lb * (n / 2.0) * stages;
        c.cuda_modadd += lb * n * stages;
        return c;
    }

    const size_t radix =
        cfg_.radix16_ntt ? 16 : static_cast<size_t>(std::sqrt(n));
    const auto cx = MatrixNtt::complexity_for(params_.n, radix);
    // Matrix products: one batched GEMM per stage; M is the batched
    // row count (always fragment-aligned at FHE sizes).
    const double per_limb_macs = static_cast<double>(cx.matmul_macs);
    MatMulEngine eng = engine;
    KernelCost g =
        gemm(static_cast<size_t>(lb * per_limb_macs / (radix * radix)),
             radix, radix, word_bits, word_bits, eng);
    c += g;
    // Twists and reorders run on CUDA cores.
    c.cuda_modmul += lb * static_cast<double>(cx.twist_muls);
    c.cuda_int_ops += 2.0 * lb * static_cast<double>(cx.reorder_elems);
    if (cfg_.fuse_elementwise) {
        // The twiddle-scale pass is folded into the GEMM prologue/
        // epilogue (MatrixNtt fused mode): the modmuls stay, but the
        // standalone streaming pass over the limb data disappears.
        c.bytes_read -= lb * n * 8.0;
        c.bytes_written -= lb * n * 8.0;
    }
    if (!cfg_.kernel_fusion) {
        // Unfused stages spill intermediates to DRAM.
        c.bytes_read += (cx.matmul_stages - 1) * lb * n * 8.0;
        c.bytes_written += (cx.matmul_stages - 1) * lb * n * 8.0;
        c.launches += static_cast<double>(cx.matmul_stages) - 1;
    }
    return c;
}

KernelCost
KernelModel::bconv(size_t in_limbs, size_t out_limbs, int word_in,
                   int word_out) const
{
    return bconv(in_limbs, out_limbs, word_in, word_out, cfg_.engine);
}

KernelCost
KernelModel::bconv(size_t in_limbs, size_t out_limbs, int word_in,
                   int word_out, MatMulEngine engine) const
{
    const double batch = static_cast<double>(params_.batch);
    const double n = static_cast<double>(params_.n);
    const double elems_in = static_cast<double>(in_limbs) * batch * n;
    const double elems_out = static_cast<double>(out_limbs) * batch * n;
    KernelCost c;

    if (!cfg_.matmul_dataflow) {
        // Algorithm 1: every input coefficient is fetched once per
        // output level.
        c.bytes_read = elems_in * 8.0 * static_cast<double>(out_limbs);
        c.bytes_written = elems_out * 8.0;
        c.cuda_modmul = 2.0 * elems_in * static_cast<double>(out_limbs);
        c.cuda_modadd = elems_in * static_cast<double>(out_limbs);
        c.launches = 1;
        return c;
    }

    // Algorithm 2: single fetch, reorder, one (BS·N) × α' × α GEMM.
    c.bytes_read = elems_in * 8.0;
    c.bytes_written = elems_out * 8.0;
    c.cuda_modmul = elems_in; // the (B/b_i)^{-1} pre-scaling
    c.cuda_int_ops = 2.0 * (elems_in + elems_out); // fused reorders
    c += gemm(static_cast<size_t>(batch * n), out_limbs, in_limbs,
              word_in, word_out, engine);
    if (cfg_.kernel_fusion) {
        c.launches = 1;
    } else {
        c.launches = 3; // pre, GEMM, post
        c.bytes_read += 2.0 * elems_in * 8.0;
        c.bytes_written += elems_in * 8.0 + elems_out * 8.0;
    }
    return c;
}

MatMulEngine
KernelModel::engine_for_stage(std::string_view stage, size_t level) const
{
    return cfg_.stage_engine ? cfg_.stage_engine(stage, level)
                             : cfg_.engine;
}

MatMulEngine
KernelModel::ip_engine(size_t level) const
{
    if (!cfg_.matmul_dataflow)
        return MatMulEngine::cuda_cores;
    const MatMulEngine eng = engine_for_stage("ip", level);
    if (eng != MatMulEngine::tcu_fp64)
        return eng;
    const size_t beta = params_.beta(level);
    const size_t beta_tilde = params_.beta_tilde(level);
    const double valid = TcuModel::valid_proportion_fp64(
        params_.batch, beta_tilde, beta);
    return valid > cfg_.ip_tcu_threshold ? MatMulEngine::tcu_fp64
                                         : MatMulEngine::cuda_cores;
}

KernelCost
KernelModel::ip(size_t beta, size_t beta_tilde, size_t limbs,
                int word_bits) const
{
    return ip(beta, beta_tilde, limbs, word_bits, cfg_.engine);
}

KernelCost
KernelModel::ip(size_t beta, size_t beta_tilde, size_t limbs,
                int word_bits, MatMulEngine engine) const
{
    const double batch = static_cast<double>(params_.batch);
    const double n = static_cast<double>(params_.n);
    const double ct_elems =
        static_cast<double>(beta) * limbs * batch * n; // per component
    const double key_elems =
        static_cast<double>(beta_tilde) * beta * limbs * n;
    const double out_elems = static_cast<double>(beta_tilde) * limbs *
                             batch * n;
    KernelCost c;

    if (!cfg_.matmul_dataflow) {
        // Algorithm 3: ciphertext limbs re-read β̃ times; keys once;
        // and the accumulators spill to DRAM between the β
        // independent ModMUL passes.
        c.bytes_read = 2.0 * (ct_elems * beta_tilde + key_elems) * 8.0 +
                       2.0 * out_elems * 8.0 * (beta - 1);
        c.bytes_written = 2.0 * out_elems * 8.0 * beta;
        c.cuda_modmul = 2.0 * beta_tilde * ct_elems;
        c.cuda_modadd = 2.0 * beta_tilde * ct_elems;
        c.launches = beta_tilde * beta; // one ModMUL kernel per pair
        return c;
    }

    // Algorithm 4: single fetch of everything; BS × β̃ × β GEMMs at
    // every (coefficient, limb) site.
    c.bytes_read = 2.0 * (ct_elems + key_elems) * 8.0;
    c.bytes_written = 2.0 * out_elems * 8.0;
    c.cuda_int_ops = 2.0 * 2.0 * (ct_elems + out_elems); // reorders
    MatMulEngine eng = engine;
    if (eng == MatMulEngine::tcu_fp64) {
        const double valid = TcuModel::valid_proportion_fp64(
            params_.batch, beta_tilde, beta);
        if (valid <= cfg_.ip_tcu_threshold)
            eng = MatMulEngine::cuda_cores;
    }
    KernelCost g = gemm(params_.batch, beta_tilde, beta, word_bits,
                        word_bits, eng);
    // One such GEMM per coefficient site per limb, both components.
    const double sites = 2.0 * n * static_cast<double>(limbs);
    c.cuda_modmul += g.cuda_modmul * sites;
    c.cuda_modadd += g.cuda_modadd * sites;
    c.cuda_int_ops += g.cuda_int_ops * sites;
    c.tcu_fp64_macs += g.tcu_fp64_macs * sites;
    c.tcu_int8_macs += g.tcu_int8_macs * sites;
    c.launches = cfg_.kernel_fusion ? 1 : 3;
    return c;
}

KernelCost
KernelModel::modmul(size_t limbs) const
{
    const double elems = static_cast<double>(limbs) * params_.batch *
                         params_.n;
    KernelCost c;
    c.bytes_read = 2.0 * elems * 8.0;
    c.bytes_written = elems * 8.0;
    c.cuda_modmul = elems;
    return c;
}

KernelCost
KernelModel::modadd(size_t limbs) const
{
    const double elems = static_cast<double>(limbs) * params_.batch *
                         params_.n;
    KernelCost c;
    c.bytes_read = 2.0 * elems * 8.0;
    c.bytes_written = elems * 8.0;
    c.cuda_modadd = elems;
    return c;
}

KernelCost
KernelModel::auto_kernel(size_t limbs) const
{
    const double elems = static_cast<double>(limbs) * params_.batch *
                         params_.n;
    KernelCost c;
    c.bytes_read = elems * 8.0;
    c.bytes_written = elems * 8.0;
    c.cuda_int_ops = 2.0 * elems;
    return c;
}

std::vector<KernelModel::NamedKernel>
KernelModel::keyswitch_kernels_named(size_t level) const
{
    const size_t l = level;
    const size_t alpha = params_.alpha();
    const size_t k_special = params_.special_primes();
    const size_t ext = l + 1 + k_special;
    const size_t beta = params_.beta(l);
    const int w = params_.word_size;
    std::vector<NamedKernel> ks;
    // Each named stage is priced with the engine the config's
    // stage_engine hook resolves for it (uniform cfg_.engine when the
    // hook is unset) — the model-side mirror of the pipeline's
    // per-site dispatch.
    const auto eng = [&](const char *st) {
        return engine_for_stage(st, l);
    };

    // INTT of the input (l+1 limbs).
    ks.push_back({"intt_q", ntt(l + 1, w, eng("intt_q"))});

    if (cfg_.use_klss) {
        const size_t ap = params_.klss_alpha_prime();
        const size_t bt = params_.beta_tilde(l);
        const int wt = params_.klss.word_size_t;
        // Mod Up: β exact BConv(α -> α').
        for (size_t j = 0; j < beta; ++j)
            ks.push_back({"modup_bconv",
                          bconv(alpha, ap, w, wt, eng("modup_bconv"))});
        // NTT over T.
        ks.push_back({"ntt_t", ntt(beta * ap, wt, eng("ntt_t"))});
        // IP over T.
        ks.push_back({"ip", ip(beta, bt, ap, wt, eng("ip"))});
        // INTT over T (both components).
        ks.push_back({"intt_t", ntt(2 * bt * ap, wt, eng("intt_t"))});
        // Recover Limbs: exact BConv(α' -> ext), both components.
        ks.push_back({"recover_bconv",
                      bconv(ap, ext, wt, w, eng("recover_bconv"))});
        ks.push_back({"recover_bconv",
                      bconv(ap, ext, wt, w, eng("recover_bconv"))});
    } else {
        // Hybrid: ModUp per digit (α -> ext-α), NTT, IP over Q·P.
        for (size_t j = 0; j < beta; ++j)
            ks.push_back({"modup_bconv", bconv(alpha, ext - alpha, w, w,
                                               eng("modup_bconv"))});
        ks.push_back({"ntt_qp", ntt(beta * ext, w, eng("ntt_qp"))});
        ks.push_back({"ip", ip(beta, 1, ext, w, eng("ip"))});
        // before ModDown
        ks.push_back({"intt_qp", ntt(2 * ext, w, eng("intt_qp"))});
    }

    // ModDown: BConv(P -> Q) + scalar fix, both components.
    if (cfg_.fuse_elementwise) {
        // The scalar fix rides in the BConv epilogue: the conversion
        // result never round-trips through DRAM, and the fix kernel's
        // launch disappears. Only the Q-part source read and the fix
        // modmuls remain on top of the BConv cost.
        const double fix_elems =
            static_cast<double>(l + 1) * params_.batch * params_.n;
        // The fused kernel keys off "moddown_bconv" so the per-stage
        // decision is independent of the fuse axis.
        const MatMulEngine md = eng("moddown_bconv");
        for (int comp = 0; comp < 2; ++comp) {
            KernelCost c = bconv(k_special, l + 1, w, w, md);
            c.cuda_modmul += fix_elems;
            c.cuda_modadd += fix_elems; // the (src - corr) subtraction
            c.bytes_read += fix_elems * 8.0;
            ks.push_back({"moddown_fused", c, 1});
        }
    } else {
        ks.push_back({"moddown_bconv",
                      bconv(k_special, l + 1, w, w, eng("moddown_bconv"))});
        ks.push_back({"moddown_bconv",
                      bconv(k_special, l + 1, w, w, eng("moddown_bconv"))});
        ks.push_back({"moddown_fix", modmul(2 * (l + 1))});
    }
    // Final NTT back to eval form.
    ks.push_back({"ntt_q", ntt(2 * (l + 1), w, eng("ntt_q"))});
    if (cfg_.fuse_elementwise && cfg_.tcu_ntt) {
        // Mark the NTT kernels whose twiddle-scale pass was folded
        // into the GEMM (the byte fold happens inside ntt()).
        for (auto &nk : ks)
            if (std::strncmp(nk.name, "ntt", 3) == 0 ||
                std::strncmp(nk.name, "intt", 4) == 0)
                nk.fused = 1;
    }
    return ks;
}

std::vector<KernelModel::NamedKernel>
KernelModel::hmult_kernels_named(size_t level) const
{
    auto ks = keyswitch_kernels_named(level);
    // d0, d1, d2: four limb-wise multiplies and one add, then the
    // switched d2 folds back with two adds.
    ks.push_back({"tensor_modmul", modmul(4 * (level + 1))});
    ks.push_back({"tensor_modadd", modadd(3 * (level + 1))});
    return ks;
}

std::vector<KernelModel::NamedKernel>
KernelModel::hrotate_kernels_named(size_t level) const
{
    auto ks = keyswitch_kernels_named(level);
    ks.push_back({"auto", auto_kernel(2 * (level + 1))});
    ks.push_back({"rotate_modadd", modadd(level + 1)});
    return ks;
}

std::vector<KernelCost>
KernelModel::keyswitch_kernels(size_t level) const
{
    std::vector<KernelCost> ks;
    for (const auto &nk : keyswitch_kernels_named(level))
        ks.push_back(nk.cost);
    return ks;
}

double
KernelModel::run(const std::vector<KernelCost> &kernels) const
{
    // Kernels process the whole batch; the paper reports the average
    // time per batched ciphertext ("average time per batch", §6), so
    // fixed costs amortize across the BatchSize ciphertexts.
    double seconds =
        gpusim::run_schedule(
            kernels, cfg_.device,
            gpusim::SchedulePolicy{cfg_.multistream, cfg_.graph_capture})
            .seconds;
    if (cfg_.batched_pipeline) {
        // Batched pipelines draw their SM occupancy from the batch
        // dimension (Fig 17): derate at small BatchSize.
        const double b = static_cast<double>(params_.batch);
        seconds /= b / (b + cfg_.device.occupancy_half_batch);
    }
    return seconds / static_cast<double>(params_.batch);
}

gpusim::Bound
KernelModel::KernelAttribution::bound() const
{
    const double roof = std::max(compute_s, memory_s);
    if (launch_s > roof)
        return gpusim::Bound::launch;
    return compute_s >= memory_s ? gpusim::Bound::compute
                                 : gpusim::Bound::memory;
}

KernelModel::AttributedSchedule
KernelModel::run_attributed(const std::vector<NamedKernel> &kernels) const
{
    AttributedSchedule out;
    std::vector<KernelCost> costs;
    costs.reserve(kernels.size());
    for (const auto &nk : kernels)
        costs.push_back(nk.cost);
    out.schedule = gpusim::run_schedule(
        costs, cfg_.device,
        gpusim::SchedulePolicy{cfg_.multistream, cfg_.graph_capture});
    out.seconds = run(costs);
    for (const auto &nk : kernels)
        out.fused_kernels += nk.fused;

    // Per-kernel raw times, priced like the schedule prices them
    // (multistream overlaps the CUDA/TCU phases within a kernel).
    // Under graph capture the per-kernel dispatch is replaced by a
    // share of the single replay, so rows are priced against an
    // effective per-launch latency of schedule launch seconds spread
    // over the captured kernel nodes — per-row bounds then reflect
    // the captured schedule, and the sum invariant below still holds.
    gpusim::DeviceSpec rowdev = cfg_.device;
    if (cfg_.graph_capture && out.schedule.captured_launches > 0)
        rowdev.kernel_launch_s =
            out.schedule.launch_s / out.schedule.captured_launches;
    double raw_sum = 0;
    std::vector<gpusim::CostBreakdown> raw;
    raw.reserve(kernels.size());
    for (const auto &nk : kernels) {
        raw.push_back(nk.cost.breakdown(rowdev, cfg_.multistream));
        raw_sum += raw.back().total_s();
    }
    // Distribute the schedule total (which includes cross-kernel
    // overlap gains and the occupancy/batch scaling of run())
    // proportionally over the kernels, so row times sum to
    // out.seconds exactly — the artifact's tested invariant.
    const double f = raw_sum > 0 ? out.seconds / raw_sum : 0;

    for (size_t i = 0; i < kernels.size(); ++i) {
        KernelAttribution *row = nullptr;
        for (auto &r : out.kernels)
            if (r.name == kernels[i].name)
                row = &r;
        if (row == nullptr) {
            out.kernels.emplace_back();
            row = &out.kernels.back();
            row->name = kernels[i].name;
        }
        const auto &b = raw[i];
        row->calls += 1;
        row->fused += kernels[i].fused;
        row->modeled_s += b.total_s() * f;
        row->compute_s += b.compute_s * f;
        row->memory_s += b.memory_s * f;
        row->launch_s += b.launch_s * f;
        row->bytes += b.bytes;
        row->macs += b.macs;
        row->mod_ops += b.mod_ops;
        row->int_ops += b.int_ops;
    }
    for (auto &r : out.kernels)
        r.fraction = out.seconds > 0 ? r.modeled_s / out.seconds : 0;
    return out;
}

double
KernelModel::keyswitch_time(size_t level) const
{
    return run(keyswitch_kernels(level));
}

double
KernelModel::hmult_time(size_t level) const
{
    std::vector<KernelCost> ks;
    for (const auto &nk : hmult_kernels_named(level))
        ks.push_back(nk.cost);
    return run(ks);
}

double
KernelModel::hrotate_time(size_t level) const
{
    std::vector<KernelCost> ks;
    for (const auto &nk : hrotate_kernels_named(level))
        ks.push_back(nk.cost);
    return run(ks);
}

double
KernelModel::hrotate_hoisted_time(size_t level, size_t count) const
{
    NEO_CHECK(count >= 1, "need at least one rotation");
    const size_t l = level;
    const size_t alpha = params_.alpha();
    const size_t k_special = params_.special_primes();
    const size_t ext = l + 1 + k_special;
    const size_t beta = params_.beta(l);
    const int w = params_.word_size;

    std::vector<gpusim::KernelCost> ks;
    // Shared half: INTT + ModUp BConv + NTT of the raised digits.
    ks.push_back(ntt(l + 1, w));
    for (size_t j = 0; j < beta; ++j)
        ks.push_back(bconv(alpha, ext - alpha, w, w));
    ks.push_back(ntt(beta * ext, w));
    // Per-rotation half: AUTO on the raised digits + IP + ModDown.
    for (size_t r = 0; r < count; ++r) {
        ks.push_back(auto_kernel(beta * ext + 2 * (l + 1)));
        ks.push_back(ip(beta, 1, ext, w));
        ks.push_back(ntt(2 * ext, w));
        ks.push_back(bconv(k_special, l + 1, w, w));
        ks.push_back(bconv(k_special, l + 1, w, w));
        ks.push_back(modmul(2 * (l + 1)));
        ks.push_back(ntt(2 * (l + 1), w));
        ks.push_back(modadd(l + 1));
    }
    return run(ks);
}

double
KernelModel::pmult_time(size_t level) const
{
    return run({modmul(2 * (level + 1))});
}

double
KernelModel::hadd_time(size_t level) const
{
    return run({modadd(2 * (level + 1))});
}

double
KernelModel::padd_time(size_t level) const
{
    return run({modadd(level + 1)});
}

std::vector<KernelModel::NamedKernel>
KernelModel::rescale_kernels_named(size_t level) const
{
    const int w = params_.word_size;
    std::vector<NamedKernel> ks;
    ks.push_back({"rescale_intt",
                  ntt(2 * (level + 1), w,
                      engine_for_stage("rescale_intt", level))});
    ks.push_back({"rescale_fix", modmul(2 * level)});
    ks.push_back({"rescale_ntt",
                  ntt(2 * level, w,
                      engine_for_stage("rescale_ntt", level))});
    return ks;
}

std::vector<KernelModel::NamedKernel>
KernelModel::double_rescale_kernels_named(size_t level) const
{
    const int w = params_.word_size;
    std::vector<NamedKernel> ks;
    ks.push_back({"rescale_intt",
                  ntt(2 * (level + 1), w,
                      engine_for_stage("rescale_intt", level))});
    ks.push_back({"rescale_fix", modmul(4 * level - 2)});
    ks.push_back({"rescale_ntt",
                  ntt(2 * (level - 1), w,
                      engine_for_stage("rescale_ntt", level))});
    return ks;
}

double
KernelModel::rescale_time(size_t level) const
{
    std::vector<KernelCost> ks;
    for (const auto &nk : rescale_kernels_named(level))
        ks.push_back(nk.cost);
    return run(ks);
}

double
KernelModel::double_rescale_time(size_t level) const
{
    std::vector<KernelCost> ks;
    for (const auto &nk : double_rescale_kernels_named(level))
        ks.push_back(nk.cost);
    return run(ks);
}

KernelModel::KeySwitchTraffic
KernelModel::keyswitch_traffic(size_t level) const
{
    const size_t l = level;
    const size_t alpha = params_.alpha();
    const size_t k_special = params_.special_primes();
    const size_t ext = l + 1 + k_special;
    const size_t beta = params_.beta(l);
    const int w = params_.word_size;

    KeySwitchTraffic t;
    t.ntt += ntt(l + 1, w).bytes();
    if (cfg_.use_klss) {
        const size_t ap = params_.klss_alpha_prime();
        const size_t bt = params_.beta_tilde(l);
        const int wt = params_.klss.word_size_t;
        for (size_t j = 0; j < beta; ++j)
            t.bconv += bconv(alpha, ap, w, wt).bytes();
        t.ntt += ntt(beta * ap, wt).bytes();
        t.ip += ip(beta, bt, ap, wt).bytes();
        t.ntt += ntt(2 * bt * ap, wt).bytes();
        t.bconv += 2 * bconv(ap, ext, wt, w).bytes();
    } else {
        for (size_t j = 0; j < beta; ++j)
            t.bconv += bconv(alpha, ext - alpha, w, w).bytes();
        t.ntt += ntt(beta * ext, w).bytes();
        t.ip += ip(beta, 1, ext, w).bytes();
        t.ntt += ntt(2 * ext, w).bytes();
    }
    if (cfg_.fuse_elementwise) {
        // Fused ModDown: the fix's only surviving traffic is the
        // Q-part source read, charged to the BConv family it fused
        // into (mirrors keyswitch_kernels_named).
        const double fix_elems =
            static_cast<double>(l + 1) * params_.batch * params_.n;
        t.bconv += 2 * (bconv(k_special, l + 1, w, w).bytes() +
                        fix_elems * 8.0);
    } else {
        t.bconv += 2 * bconv(k_special, l + 1, w, w).bytes();
        t.other += modmul(2 * (l + 1)).bytes();
    }
    t.ntt += ntt(2 * (l + 1), w).bytes();
    return t;
}

} // namespace neo::model
