#include "neo/shard.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "gpusim/event_sim.h"
#include "rns/partition.h"

namespace neo::shard {

using gpusim::CollectiveModel;
using gpusim::KernelCost;
using gpusim::SimKernel;
using gpusim::Topology;
using model::KernelModel;

ShardRange
shard_range(size_t total, size_t devices, size_t d)
{
    NEO_CHECK(devices >= 1 && d < devices, "bad shard coordinates");
    // One rule for every shard axis: the rns partition helper the
    // functional pipeline (mod_down) uses too.
    const auto groups = make_even_partition(total, devices);
    return {groups[d].first, groups[d].count};
}

CommPlan
comm_plan(const ckks::CkksParams &params, size_t level,
          const Topology &topo)
{
    CommPlan plan;
    plan.devices = topo.devices;
    if (topo.devices <= 1)
        return plan;
    const double limb_bytes =
        static_cast<double>(params.n) * 8.0 *
        static_cast<double>(params.batch);
    const size_t q_limbs = level + 1;
    const size_t beta = params.beta(level);
    const size_t ap = params.klss_alpha_prime();
    const size_t d = topo.devices;
    // Shard payloads use the same ceil-partition rule as
    // shard_range(), so the busiest device's shard prices the step.
    const auto ceil_shard = [d](size_t total) {
        return static_cast<double>((total + d - 1) / d);
    };
    plan.src_shard_bytes = ceil_shard(q_limbs) * limb_bytes;
    plan.digit_shard_bytes =
        ceil_shard(beta) * static_cast<double>(ap) * limb_bytes;
    plan.fix_shard_bytes = ceil_shard(q_limbs) * limb_bytes;

    CollectiveModel comm(topo);
    plan.ag_src = comm.all_gather(plan.src_shard_bytes,
                                  comm.best_chunks(plan.src_shard_bytes));
    plan.ag_digits = comm.all_gather(
        plan.digit_shard_bytes, comm.best_chunks(plan.digit_shard_bytes));
    plan.rs_fix = comm.reduce_scatter(
        plan.fix_shard_bytes, comm.best_chunks(plan.fix_shard_bytes));
    return plan;
}

namespace {

/// Fraction of a stage's work the busiest device owns when its
/// partition axis of @p total items splits over @p devices.
double
shard_fraction(size_t total, size_t devices)
{
    if (total == 0)
        return 0;
    const size_t shard = (total + devices - 1) / devices;
    return static_cast<double>(shard) / static_cast<double>(total);
}

/// Scale every work field of a cost; launches stay (each device
/// dispatches the full kernel sequence on its own shard).
KernelCost
scale_cost(KernelCost c, double f)
{
    c.cuda_modmul *= f;
    c.cuda_modadd *= f;
    c.cuda_int_ops *= f;
    c.tcu_fp64_macs *= f;
    c.tcu_int8_macs *= f;
    c.bytes_read *= f;
    c.bytes_written *= f;
    return c;
}

/// The partition axis of a named keyswitch stage: items(total) the
/// axis splits. Q-limb stages shard by l+1, ModUp-side stages by β,
/// key-digit stages by β̃.
size_t
stage_axis_total(std::string_view stage, size_t q_limbs, size_t beta,
                 size_t beta_tilde)
{
    if (stage == "modup_bconv" || stage == "ntt_t")
        return beta;
    if (stage == "ip" || stage == "intt_t" || stage == "recover_bconv")
        return beta_tilde;
    // intt_q, moddown_bconv, moddown_fused, moddown_fix, ntt_q —
    // everything keyed to the Q basis.
    (void)stage;
    return q_limbs;
}

} // namespace

ShardedCost
model_sharded_keyswitch(const ckks::CkksParams &params, size_t level,
                        const model::ModelConfig &cfg)
{
    NEO_CHECK(cfg.devices >= 1, "devices must be positive");
    ShardedCost out;
    out.devices = cfg.devices;

    KernelModel model(params, cfg);
    const auto named = model.keyswitch_kernels_named(level);
    {
        std::vector<KernelCost> costs;
        for (const auto &nk : named)
            costs.push_back(nk.cost);
        out.single_seconds = model.run(costs);
    }

    const Topology topo =
        cfg.devices <= 1
            ? Topology::single(cfg.device)
            : Topology::preset(cfg.interconnect, cfg.devices, cfg.device);
    out.plan = comm_plan(params, level, topo);

    const size_t q_limbs = level + 1;
    const size_t beta = params.beta(level);
    const size_t beta_tilde = params.beta_tilde(level);
    const size_t d_count = cfg.devices;

    // --- Build the sharded schedule for event_sim. --------------------
    // Each device runs the full kernel sequence over its own shard on
    // its own stream; the three collectives are link-resource entries
    // spliced into the chain at their pipeline position. Under
    // multistream the batch is double-buffered in halves (two chains
    // per device), so one half's collective hides behind the other
    // half's compute — the multi-device analogue of §4.6.
    struct Entry
    {
        std::string name;
        double raw_s = 0;  ///< serial-time weight for attribution
        bool comm = false;
    };
    std::vector<SimKernel> sim;
    std::vector<Entry> entries;
    const size_t halves = cfg.multistream && d_count > 1 ? 2 : 1;
    const double hf = 1.0 / static_cast<double>(halves);

    // Graph capture: each device captures its local chain once and
    // replays it with one amortized dispatch — the per-kernel launch
    // latency collapses into equivalent launch units on the chain's
    // first kernel (the same DeviceSpec::graph_launch_s pricing
    // run_schedule applies to the single-device schedule).
    double chain_launches = 0;
    for (const auto &nk : named)
        chain_launches += nk.cost.launches;
    const double graph_units =
        cfg.graph_capture && cfg.device.kernel_launch_s > 0
            ? cfg.device.graph_launch_s(chain_launches) /
                  cfg.device.kernel_launch_s
            : -1;

    const auto push_compute = [&](const KernelModel::NamedKernel &nk,
                                  int stream, double frac,
                                  bool chain_head) {
        KernelCost c = scale_cost(nk.cost, frac * hf);
        if (graph_units >= 0)
            c.launches = chain_head ? graph_units : 0;
        sim.push_back({c, stream, {}, 0.0});
        entries.push_back(
            {nk.name, c.breakdown(cfg.device, cfg.multistream).total_s(),
             false});
    };
    const auto push_comm = [&](const char *name, double time_s,
                               int stream) {
        KernelCost c;
        c.launches = 0;
        sim.push_back({c, stream, {}, time_s * hf});
        entries.push_back({name, time_s * hf, true});
    };

    for (size_t dev = 0; dev < d_count; ++dev) {
        for (size_t h = 0; h < halves; ++h) {
            const int stream = static_cast<int>(dev * halves + h);
            bool chain_head = true;
            for (const auto &nk : named) {
                const std::string_view st(nk.name);
                // Collectives precede the stage that consumes them.
                if (d_count > 1) {
                    if (st == "modup_bconv" &&
                        (entries.empty() ||
                         entries.back().name != "modup_bconv"))
                        push_comm("comm.allgather.src",
                                  out.plan.ag_src.time_s, stream);
                    if (st == "ip")
                        push_comm("comm.allgather.digits",
                                  out.plan.ag_digits.time_s, stream);
                    if (st == "ntt_q")
                        push_comm("comm.reducescatter.fix",
                                  2 * out.plan.rs_fix.time_s, stream);
                }
                const double frac = shard_fraction(
                    stage_axis_total(st, q_limbs, beta, beta_tilde),
                    d_count);
                push_compute(nk, stream, frac, chain_head);
                chain_head = false;
            }
        }
    }

    // Each device owns its own cuda/tcu/mem/link resources, so it is
    // simulated on its own EventSimulator (one shared simulator would
    // make the "devices" contend for one GPU's rates and sharding
    // could never pay). The collectives are synchronous: they appear
    // in every device's chain at the same α–β price, so the fleet
    // makespan is the max of the per-device makespans.
    gpusim::EventSimulator sim_dev(cfg.device);
    double raw_makespan = 0;
    for (size_t dev = 0; dev < d_count; ++dev) {
        std::vector<SimKernel> mine;
        for (const auto &k : sim)
            if (static_cast<size_t>(k.stream) / halves == dev)
                mine.push_back(k);
        raw_makespan =
            std::max(raw_makespan, sim_dev.run(mine).makespan);
    }

    // Normalize exactly like KernelModel::run(): occupancy derate for
    // batched pipelines, then per-batched-ciphertext.
    double norm = 1.0;
    if (cfg.batched_pipeline) {
        const double b = static_cast<double>(params.batch);
        norm *= (b + cfg.device.occupancy_half_batch) / b;
    }
    norm /= static_cast<double>(params.batch);
    // devices == 1 degenerates to the single-device schedule exactly:
    // the serial event-sim chain cannot overlap compute-bound kernels
    // with memory-bound neighbours the way the aggregate multistream
    // model does, so the established run() figure is the one to keep
    // (it is also what every profile reports for unsharded runs).
    out.seconds =
        d_count == 1 ? out.single_seconds : raw_makespan * norm;

    // --- Attribution: distribute the makespan proportionally over the
    // serial-time weights so rows sum to out.seconds exactly (the
    // run_attributed invariant, extended with comm.* rows).
    double raw_sum = 0;
    for (const auto &e : entries)
        raw_sum += e.raw_s;
    const double f =
        raw_sum > 0 ? out.seconds / raw_sum : 0;
    for (size_t i = 0; i < entries.size(); ++i) {
        const auto &e = entries[i];
        KernelModel::KernelAttribution *row = nullptr;
        for (auto &r : out.kernels)
            if (r.name == e.name)
                row = &r;
        if (row == nullptr) {
            out.kernels.emplace_back();
            row = &out.kernels.back();
            row->name = e.name;
        }
        row->calls += 1;
        row->modeled_s += e.raw_s * f;
        if (e.comm) {
            out.comm_s += e.raw_s * norm;
        } else {
            const auto b =
                sim[i].cost.breakdown(cfg.device, cfg.multistream);
            row->compute_s += b.compute_s * f;
            row->memory_s += b.memory_s * f;
            row->launch_s += b.launch_s * f;
            row->bytes += b.bytes;
            row->macs += b.macs;
            row->mod_ops += b.mod_ops;
            row->int_ops += b.int_ops;
            out.compute_s += e.raw_s * norm;
        }
    }
    for (auto &r : out.kernels)
        r.fraction = out.seconds > 0 ? r.modeled_s / out.seconds : 0;

    // --- Per-device and per-link attribution. -------------------------
    out.per_device.resize(d_count);
    for (size_t dev = 0; dev < d_count; ++dev)
        out.per_device[dev].device = dev;
    for (size_t i = 0; i < entries.size(); ++i) {
        const size_t dev =
            static_cast<size_t>(sim[i].stream) / halves;
        if (entries[i].comm)
            out.per_device[dev].comm_s += entries[i].raw_s * norm;
        else
            out.per_device[dev].compute_s += entries[i].raw_s * norm;
    }
    if (d_count > 1) {
        const size_t links = topo.num_links();
        const double link_bytes =
            links > 0 ? out.plan.total_bytes() / static_cast<double>(links)
                      : 0;
        const double busy =
            topo.link.bandwidth > 0 ? link_bytes / topo.link.bandwidth
                                    : 0;
        out.links.resize(links);
        for (size_t i = 0; i < links; ++i) {
            out.links[i].link = i;
            out.links[i].bytes = link_bytes;
            out.links[i].busy_s = busy;
            out.links[i].utilization =
                raw_makespan > 0 ? busy / raw_makespan : 0;
        }
    }
    return out;
}

} // namespace neo::shard
