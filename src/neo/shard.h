/**
 * @file
 * Multi-device sharded keyswitch: partition plan + cost model.
 *
 * Sharding follows the §4 digit structure instead of inventing a new
 * decomposition: Q limbs (the INTT/ModDown/final-NTT stages) split
 * into contiguous per-device ranges, ciphertext digits (ModUp and the
 * NTT over T) split by β, and key digits (IP, INTT over T, Recover
 * Limbs) split by β̃. Three collectives stitch the shards together:
 *
 *   1. all-gather of the source Q limbs after the input INTT — every
 *      ModUp digit's BConv reads its whole α-limb group, so devices
 *      exchange coefficient-form limbs once before the digit fan-out;
 *   2. all-gather of the raised digits after the NTT over T — each
 *      device's IP shard multiplies *all* β digits against its own β̃
 *      rows of the key (Recover Limbs then needs no communication:
 *      the key partition's output limb ranges are disjoint per digit);
 *   3. reduce-scatter of the ModDown fix term per component — each
 *      device keeps only its own Q-limb range of the result.
 *
 * The host execution of a sharded schedule is the *same kernels over
 * the same disjoint index ranges in a deterministic device-major
 * order*, so it is bit-identical to single-device execution by
 * construction (ctest -L shard proves it); only the cost model sees
 * devices, links and collectives.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "ckks/params.h"
#include "gpusim/topology.h"
#include "neo/kernel_model.h"

namespace neo::shard {

/** One device's contiguous slice of an index range. */
struct ShardRange
{
    size_t first = 0;
    size_t count = 0;
};

/**
 * Contiguous ceil-partition of @p total items over @p devices: device
 * d owns [d·⌈total/D⌉, …) — the same rule for limbs and digits, so
 * the analytic byte formulas in tests can reproduce every shard.
 */
ShardRange shard_range(size_t total, size_t devices, size_t d);

/** The collective schedule of one sharded keyswitch (whole batch). */
struct CommPlan
{
    size_t devices = 1;
    /// Per-device shard payloads in bytes (whole batch, 8 B words).
    double src_shard_bytes = 0;   ///< ⌈(l+1)/D⌉ · N · 8 · batch
    double digit_shard_bytes = 0; ///< ⌈β/D⌉ · α' · N · 8 · batch
    double fix_shard_bytes = 0;   ///< ⌈(l+1)/D⌉ · N · 8 · batch
    gpusim::CollectiveCost ag_src;    ///< collective 1 (all-gather)
    gpusim::CollectiveCost ag_digits; ///< collective 2 (all-gather)
    gpusim::CollectiveCost rs_fix;    ///< collective 3, ×2 components

    double allgather_bytes() const
    {
        return ag_src.total_bytes + ag_digits.total_bytes;
    }
    double reducescatter_bytes() const { return 2 * rs_fix.total_bytes; }
    double total_bytes() const
    {
        return allgather_bytes() + reducescatter_bytes();
    }
    /// Serial (un-overlapped) time of all collectives, whole batch.
    double serial_time_s() const
    {
        return ag_src.time_s + ag_digits.time_s + 2 * rs_fix.time_s;
    }
};

/// The collective schedule for one keyswitch at @p level on @p topo.
CommPlan comm_plan(const ckks::CkksParams &params, size_t level,
                   const gpusim::Topology &topo);

/** Per-link share of a sharded schedule. */
struct LinkAttribution
{
    size_t link = 0;
    double bytes = 0;       ///< bytes this link carried (whole batch)
    double busy_s = 0;      ///< seconds the link was transferring
    double utilization = 0; ///< busy_s / schedule makespan
};

/** Per-device share of a sharded schedule. */
struct DeviceAttribution
{
    size_t device = 0;
    double compute_s = 0; ///< normalized per-ciphertext compute share
    double comm_s = 0;    ///< normalized per-ciphertext collective share
};

/** Modeled cost of one sharded keyswitch. */
struct ShardedCost
{
    size_t devices = 1;
    /// Per-batched-ciphertext makespan of the sharded schedule
    /// (compute and collectives overlapping per event_sim), normalized
    /// exactly like KernelModel::run() so it compares directly.
    double seconds = 0;
    /// KernelModel::run() of the same schedule on one device.
    double single_seconds = 0;
    double compute_s = 0; ///< normalized serial compute share
    double comm_s = 0;    ///< normalized serial collective share
    /// Per-stage rows (kernel stages + comm.* rows); modeled_s sums
    /// to `seconds` exactly — the same invariant run_attributed keeps.
    std::vector<model::KernelModel::KernelAttribution> kernels;
    std::vector<LinkAttribution> links;
    std::vector<DeviceAttribution> per_device;
    CommPlan plan;

    double speedup() const
    {
        return seconds > 0 ? single_seconds / seconds : 0;
    }
};

/**
 * Price one keyswitch at @p level sharded over the topology that
 * @p cfg.devices / @p cfg.interconnect select. devices == 1
 * degenerates to the single-device schedule with zero comm.
 */
ShardedCost model_sharded_keyswitch(const ckks::CkksParams &params,
                                    size_t level,
                                    const model::ModelConfig &cfg);

} // namespace neo::shard
