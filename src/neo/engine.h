/**
 * @file
 * Typed GEMM-engine identities and the registry that is the single
 * source of truth for their names.
 *
 * Every layer that used to hand-maintain the engine name list
 * (PipelineEngines::from_name, neo-prof's --engine help text, the
 * bench CLIs, test config tables) resolves through EngineRegistry
 * instead, so adding an engine is a one-file change and the CLI help,
 * parse errors and tuning-table serialization can never drift apart.
 */
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace neo {

struct PipelineEngines;

namespace model {
enum class MatMulEngine;
} // namespace model

/**
 * One bit-exact GEMM engine of the functional pipeline. The numeric
 * order is the registry's canonical (and serialization) order; it
 * doubles as the deterministic tie-break when the tuner scores two
 * engines equal.
 */
enum class EngineId {
    fp64_tcu = 0, ///< emulated FP64 tensor core (bit-sliced doubles)
    scalar = 1,   ///< scalar modular arithmetic (CUDA-core analogue)
    int8_tcu = 2, ///< emulated INT8 tensor core
};

/** Name/identity registry for the GEMM engines. */
class EngineRegistry
{
  public:
    /// Every engine, in canonical order.
    static const std::vector<EngineId> &ids();

    /// Stable lowercase name ("fp64_tcu", "scalar", "int8_tcu").
    static std::string_view name(EngineId id);

    /**
     * Parse an engine name. Throws std::invalid_argument on an
     * unknown name, listing the valid ones.
     */
    static EngineId parse(std::string_view name);

    /// Parse without throwing; nullopt on an unknown name.
    static std::optional<EngineId> try_parse(std::string_view name);

    /// " | "-joined name list for CLI help text.
    static std::string help_list(std::string_view sep = " | ");

    /// The cost-model engine this functional engine is priced as.
    static model::MatMulEngine model_engine(EngineId id);

    /// The functional GEMM bundle (shared immutable instance).
    static const PipelineEngines &engines(EngineId id);
};

} // namespace neo
