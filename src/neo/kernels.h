/**
 * @file
 * Neo's optimized BConv and IP kernels (§4.2, Algorithms 1–4).
 *
 * Each kernel exists in two bit-exact forms:
 *  - the *original* element-wise algorithm (Algorithm 1 / 3) in which
 *    every input limb is walked once per output limb — the poor-reuse
 *    baseline the paper starts from;
 *  - the *matrix* algorithm (Algorithm 2 / 4): scalar pre-scaling,
 *    layout reorder to put the reduction axis innermost (Fig 6 / 8),
 *    one GEMM per coefficient site, and the inverse reorder.
 *
 * The matrix forms take a pluggable GEMM so the same code runs on the
 * scalar reference, the FP64-TCU emulation or the INT8-TCU emulation;
 * tests require identical outputs on all paths.
 */
#pragma once

#include <vector>

#include "common/static_operand.h"
#include "rns/base_convert.h"
#include "tensor/gemm.h"

namespace neo {

/**
 * BConv of a batch of polynomials (Algorithms 1 and 2).
 * Input tensor: α × BatchSize × N (limb-major); output α' × BatchSize
 * × N over the target basis.
 */
class BConvKernel
{
  public:
    BConvKernel(const RnsBasis &from, const RnsBasis &to);

    size_t in_levels() const { return conv_.from().size(); }
    size_t out_levels() const { return conv_.to().size(); }

    /// Algorithm 1: element-wise scalar multiply-accumulate.
    void run_elementwise(const u64 *in, size_t batch, size_t n,
                         u64 *out) const;

    /// Algorithm 2: pre-scale, reorder, GEMM, reorder back.
    void run_matmul(const u64 *in, size_t batch, size_t n, u64 *out,
                    const ModColMatMulFn &mm = scalar_col_matmul()) const;

    /**
     * Exact (centered) variant of the matrix form, as KLSS Mod Up and
     * Recover Limbs require: the preprocessing additionally computes
     * the overflow count r = round(Σ_i y_i / b_i) per coefficient and
     * the epilogue subtracts r·B mod t_j — one rank-1 correction on
     * top of the same GEMM. Bit-exact against
     * BaseConverter::convert_exact.
     */
    void run_matmul_exact(const u64 *in, size_t batch, size_t n, u64 *out,
                          const ModColMatMulFn &mm =
                              scalar_col_matmul()) const;

    const BaseConverter &converter() const { return conv_; }

  private:
    void matmul_common(const u64 *in, size_t batch, size_t n, u64 *out,
                       const ModColMatMulFn &mm, bool exact) const;

    BaseConverter conv_;
    std::vector<u64> factor_matrix_; // α × α': (B/b_i) mod t_j
    // The factor matrix is the static B operand of every BConv GEMM;
    // pinning it lets the tensor layer's plane cache slice it once per
    // (kernel, engine). Makes the kernel move-only (vector moves keep
    // the heap buffer, so the pin stays valid).
    StaticPin factor_pin_;
};

/**
 * IP — the KeySwitch inner product over R_T (Algorithms 3 and 4).
 * Limb tensor: β × α' × BatchSize × N; keys: β̃ × β × α' × N; output
 * β̃ × α' × BatchSize × N. All data NTT-form residues mod t_k (the
 * modulus of the k-th α' slice).
 */
class IpKernel
{
  public:
    /// @param t_mods the α' moduli of the T base.
    IpKernel(std::vector<Modulus> t_mods, size_t beta, size_t beta_tilde);

    /// Algorithm 3: β̃·β element-wise multiply-accumulate passes.
    void run_elementwise(const u64 *limbs, const u64 *keys, size_t batch,
                         size_t n, u64 *out) const;

    /**
     * Algorithm 4: reorder both tensors, then ONE batched engine call
     * covering every (l, k) site — a site is a BS×β̃×β product reduced
     * mod t_k, and issuing all N·α' of them together amortises the
     * engine's per-call fixed costs across the whole inner product.
     */
    void run_matmul(const u64 *limbs, const u64 *keys, size_t batch,
                    size_t n, u64 *out,
                    const ModSiteMatMulFn &mm = scalar_site_matmul()) const;

    /**
     * Algorithm 4 with the key tensor already in the Fig 8 layout
     * (β̃×β×α'×N reversed to N×α'×β×β̃). Key material is static per
     * (key, level), so callers cache the reorder — and pin the buffer
     * as a static operand — instead of paying it on every keyswitch.
     */
    void run_matmul_reordered(const u64 *limbs, const u64 *keys_r,
                              size_t batch, size_t n, u64 *out,
                              const ModSiteMatMulFn &mm =
                                  scalar_site_matmul()) const;

  private:
    void matmul_impl(const u64 *limbs, const u64 *keys_r, size_t batch,
                     size_t n, u64 *out, const ModSiteMatMulFn &mm) const;

    std::vector<Modulus> t_mods_;
    size_t beta_;
    size_t beta_tilde_;
};

} // namespace neo
