#include "neo/engine.h"

#include <stdexcept>

#include "neo/kernel_model.h"
#include "neo/pipeline.h"

namespace neo {

const std::vector<EngineId> &
EngineRegistry::ids()
{
    static const std::vector<EngineId> all = {
        EngineId::fp64_tcu, EngineId::scalar, EngineId::int8_tcu};
    return all;
}

std::string_view
EngineRegistry::name(EngineId id)
{
    switch (id) {
      case EngineId::fp64_tcu: return "fp64_tcu";
      case EngineId::scalar: return "scalar";
      case EngineId::int8_tcu: return "int8_tcu";
    }
    throw std::invalid_argument("invalid EngineId");
}

std::optional<EngineId>
EngineRegistry::try_parse(std::string_view s)
{
    for (EngineId id : ids())
        if (name(id) == s)
            return id;
    return std::nullopt;
}

EngineId
EngineRegistry::parse(std::string_view s)
{
    if (auto id = try_parse(s))
        return *id;
    std::string msg = "unknown pipeline engine '";
    msg += s;
    msg += "' (valid:";
    for (EngineId id : ids()) {
        msg += ' ';
        msg += name(id);
    }
    msg += ')';
    throw std::invalid_argument(msg);
}

std::string
EngineRegistry::help_list(std::string_view sep)
{
    std::string out;
    for (EngineId id : ids()) {
        if (!out.empty())
            out += sep;
        out += name(id);
    }
    return out;
}

model::MatMulEngine
EngineRegistry::model_engine(EngineId id)
{
    switch (id) {
      case EngineId::fp64_tcu: return model::MatMulEngine::tcu_fp64;
      case EngineId::scalar: return model::MatMulEngine::cuda_cores;
      case EngineId::int8_tcu: return model::MatMulEngine::tcu_int8;
    }
    throw std::invalid_argument("invalid EngineId");
}

const PipelineEngines &
EngineRegistry::engines(EngineId id)
{
    // Immutable after construction; magic statics make the
    // initialization race-free. neo-lint: allow(thread-unsafe-static)
    static const PipelineEngines fp64 = PipelineEngines::fp64_tcu();
    // neo-lint: allow(thread-unsafe-static)
    static const PipelineEngines sc = PipelineEngines::scalar();
    // neo-lint: allow(thread-unsafe-static)
    static const PipelineEngines i8 = PipelineEngines::int8_tcu();
    switch (id) {
      case EngineId::fp64_tcu: return fp64;
      case EngineId::scalar: return sc;
      case EngineId::int8_tcu: return i8;
    }
    throw std::invalid_argument("invalid EngineId");
}

} // namespace neo
