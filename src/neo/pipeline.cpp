#include "neo/pipeline.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/check.h"
#include "common/thread_pool.h"
#include "neo/kernel_model.h"
#include "neo/kernels.h"
#include "obs/obs.h"
#include "poly/matrix_ntt.h"

namespace neo {

using ckks::CkksContext;
using ckks::KlssEvalKey;

PipelineEngines
PipelineEngines::from_name(std::string_view name)
{
    if (name == "fp64_tcu")
        return fp64_tcu();
    if (name == "scalar")
        return scalar();
    if (name == "int8_tcu")
        return int8_tcu();
    std::string msg = "unknown pipeline engine '";
    msg += name;
    msg += "' (valid:";
    for (auto n : names()) {
        msg += ' ';
        msg += n;
    }
    msg += ')';
    throw std::invalid_argument(msg);
}

const std::vector<std::string_view> &
PipelineEngines::names()
{
    static const std::vector<std::string_view> n = {"fp64_tcu", "scalar",
                                                    "int8_tcu"};
    return n;
}

PipelineKernelCounts
keyswitch_pipeline_kernel_counts(const CkksContext &ctx, size_t level)
{
    const size_t n = ctx.n();
    const size_t k_special = ctx.p_basis().size();
    const size_t alpha_p = ctx.alpha_prime();
    const size_t beta = ctx.digit_partition(level).size();
    const size_t alpha_tilde = ctx.params().klss.alpha_tilde;
    const size_t beta_tilde =
        (level + 1 + k_special + alpha_tilde - 1) / alpha_tilde;

    // MatrixNtt transforms: ModUp forwards over T (β·α'), IP inverses
    // over T (2·β̃·α'), final forwards over Q (2·(l+1)). The input INTT
    // over Q uses the radix-2 tables, not MatrixNtt.
    const u64 mntt = static_cast<u64>(beta * alpha_p +
                                      2 * beta_tilde * alpha_p +
                                      2 * (level + 1));
    const u64 gemms_per_mntt =
        MatrixNtt::matmul_calls_for(n, std::min<size_t>(16, n));

    PipelineKernelCounts c;
    c.ntt = static_cast<u64>(level + 1) + mntt;
    // ModUp's per-digit exact BConv, Recover's per-key-digit BConv for
    // both components, plus ModDown's two approximate conversions.
    c.bconv = static_cast<u64>(beta + 2 * beta_tilde + 2);
    c.ip = 2; // one matrix IP per ciphertext component
    // GEMM engine calls: MatrixNtt tiles, one multiply per BConv
    // factor matrix, and one per (coefficient, T-limb) IP site.
    c.gemm = mntt * gemms_per_mntt +
             static_cast<u64>(beta + 2 * beta_tilde) +
             static_cast<u64>(2 * n * alpha_p);
    return c;
}

std::pair<RnsPoly, RnsPoly>
keyswitch_klss_pipeline(const RnsPoly &d2, const KlssEvalKey &evk,
                        const CkksContext &ctx,
                        const PipelineEngines &engines)
{
    NEO_ASSERT(d2.form() == PolyForm::eval, "expects eval form");
    obs::Span pipeline_span("keyswitch_klss_pipeline", obs::cat::stage);
    if (auto *r = obs::current()) {
        r->add("pipeline.keyswitch");
        // Modeled device time of the same KeySwitch on the simulated
        // A100, accumulated next to the wall-clock span so exporters
        // can report modeled-vs-measured side by side — total plus the
        // per-kernel roofline attribution (modeled.kernel.*).
        model::KernelModel model(ctx.params(), model::ModelConfig{});
        const auto att = model.run_attributed(
            model.keyswitch_kernels_named(d2.limbs() - 1));
        r->add_value("modeled.keyswitch.s", att.seconds);
        for (const auto &row : att.kernels)
            r->add_modeled_cost(row.name, row.modeled_s, row.compute_s,
                                row.memory_s, row.launch_s, row.bytes,
                                row.calls);
    }
    const size_t n = d2.n();
    const size_t level = d2.limbs() - 1;
    const size_t k_special = ctx.p_basis().size();
    const size_t alpha_p = ctx.alpha_prime();
    const auto ext_mods = ctx.extended_mods(level);
    const auto groups = ctx.digit_partition(level);
    const auto &key_partition = ctx.klss_key_partition();
    const size_t beta = groups.size();
    const size_t beta_tilde =
        (level + 1 + k_special + ctx.params().klss.alpha_tilde - 1) /
        ctx.params().klss.alpha_tilde;
    NEO_CHECK(beta <= evk.beta_max && beta_tilde <= evk.beta_tilde_max,
              "evaluation key too small for this level");

    // Radix-16 matrix NTTs over the T primes (one per limb position).
    std::vector<MatrixNtt> t_ntt;
    t_ntt.reserve(alpha_p);
    for (size_t k = 0; k < alpha_p; ++k) {
        t_ntt.emplace_back(
            ctx.t_tables().for_modulus(ctx.t_basis()[k]),
            std::min<size_t>(16, n));
    }

    RnsPoly d2c = d2;
    {
        obs::Span intt_span("pipeline_intt_q", obs::cat::stage);
        ctx.tables().to_coeff(d2c);
    }

    // --- Mod Up: exact matrix-form BConv per digit (Alg 2). ----------
    // Digits are independent: each reads its own Q-limb group and
    // fills its own α'×N slice of digits_t, so the β digits fan out
    // across the pool (kernel-internal parallelism runs inline).
    std::vector<u64> digits_t(beta * alpha_p * n);
    // One span per pipeline stage; emplace/reset brackets each stage
    // without pushing the stage bodies into nested blocks.
    std::optional<obs::Span> stage_span;
    stage_span.emplace("pipeline_modup", obs::cat::stage);
    parallel_for(
        0, beta,
        [&](size_t jb, size_t je) {
            for (size_t j = jb; j < je; ++j) {
                const auto &g = groups[j];
                std::vector<u64> digit_primes;
                for (size_t t = g.first; t < g.first + g.count; ++t)
                    digit_primes.push_back(ctx.q_basis()[t].value());
                RnsBasis digit_basis(digit_primes);
                BConvKernel bconv(digit_basis, ctx.t_basis());
                bconv.run_matmul_exact(d2c.limb(g.first), 1, n,
                                       digits_t.data() + j * alpha_p * n,
                                       engines.per_column);
                // --- NTT over T (ten-step on the emulated TCU). ------
                for (size_t k = 0; k < alpha_p; ++k) {
                    t_ntt[k].forward(
                        digits_t.data() + (j * alpha_p + k) * n,
                        engines.same_mod);
                }
            }
        },
        1);

    // --- IP: matrix form (Alg 4) for both components. -----------------
    stage_span.emplace("pipeline_ip", obs::cat::stage);
    IpKernel ip(ctx.t_basis().mods(), beta, beta_tilde);
    std::vector<u64> s_data[2];
    for (size_t c = 0; c < 2; ++c) {
        // Flatten this component's keys to β̃ × β × α' × N.
        std::vector<u64> keys(beta_tilde * beta * alpha_p * n);
        for (size_t i = 0; i < beta_tilde; ++i) {
            for (size_t j = 0; j < beta; ++j) {
                const RnsPoly &part = evk.part(i, j, c);
                std::copy(part.data(), part.data() + alpha_p * n,
                          keys.begin() + (i * beta + j) * alpha_p * n);
            }
        }
        s_data[c].resize(beta_tilde * alpha_p * n);
        ip.run_matmul(digits_t.data(), keys.data(), 1, n,
                      s_data[c].data(), engines.same_mod);
        // --- INTT over T: one independent transform per (i, k) limb.
        parallel_for(
            0, beta_tilde * alpha_p,
            [&](size_t b, size_t e) {
                for (size_t s = b; s < e; ++s) {
                    t_ntt[s % alpha_p].inverse(s_data[c].data() + s * n,
                                               engines.same_mod);
                }
            },
            1);
    }

    // --- Recover Limbs: exact matrix-form BConv per key-digit group.
    stage_span.emplace("pipeline_recover", obs::cat::stage);
    RnsPoly acc0(n, ext_mods, PolyForm::coeff);
    RnsPoly acc1(n, ext_mods, PolyForm::coeff);
    const size_t active = level + 1 + k_special;
    // Per-digit fan-out: the key partition's groups are disjoint limb
    // ranges, so each digit writes its own limbs of acc0/acc1.
    parallel_for(
        0, beta_tilde,
        [&](size_t ib, size_t ie) {
            for (size_t i = ib; i < ie; ++i) {
                const auto &grp = key_partition[i];
                const size_t last =
                    std::min(grp.first + grp.count, active);
                if (grp.first >= last)
                    continue;
                std::vector<u64> grp_primes;
                for (size_t t = grp.first; t < last; ++t)
                    grp_primes.push_back(ctx.pq_ordered_mod(t).value());
                RnsBasis grp_basis(grp_primes);
                BConvKernel recover(ctx.t_basis(), grp_basis);
                std::vector<u64> out(grp_primes.size() * n);
                for (size_t c = 0; c < 2; ++c) {
                    recover.run_matmul_exact(
                        s_data[c].data() + i * alpha_p * n, 1, n,
                        out.data(), engines.per_column);
                    RnsPoly &acc = c == 0 ? acc0 : acc1;
                    for (size_t t = grp.first; t < last; ++t) {
                        const size_t store_idx = t < k_special
                                                     ? level + 1 + t
                                                     : t - k_special;
                        std::copy(out.begin() + (t - grp.first) * n,
                                  out.begin() + (t - grp.first + 1) * n,
                                  acc.limb(store_idx));
                    }
                }
            }
        },
        1);

    // --- Mod Down (shared with the reference), NTT back. --------------
    stage_span.emplace("pipeline_moddown", obs::cat::stage);
    RnsPoly k0 = ckks::mod_down(acc0, level, ctx);
    RnsPoly k1 = ckks::mod_down(acc1, level, ctx);
    for (RnsPoly *p : {&k0, &k1}) {
        parallel_for(
            0, level + 1,
            [&](size_t ib, size_t ie) {
                for (size_t i = ib; i < ie; ++i) {
                    MatrixNtt qntt(
                        ctx.tables().for_modulus(p->modulus(i)),
                        std::min<size_t>(16, n));
                    qntt.forward(p->limb(i), engines.same_mod);
                }
            },
            1);
        p->set_form(PolyForm::eval);
    }
    stage_span.reset();
    return {std::move(k0), std::move(k1)};
}

} // namespace neo
