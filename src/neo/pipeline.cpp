#include "neo/pipeline.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "ckks/ks_precomp.h"
#include "common/check.h"
#include "common/mutex.h"
#include "common/static_operand.h"
#include "common/thread_pool.h"
#include "common/workspace.h"
#include "gpusim/memory_model.h"
#include "gpusim/tcu_model.h"
#include "neo/engine.h"
#include "neo/kernel_model.h"
#include "neo/kernels.h"
#include "neo/shard.h"
#include "obs/obs.h"
#include "poly/matrix_ntt.h"
#include "tensor/layout.h"

namespace neo {

using ckks::CkksContext;
using ckks::KlssEvalKey;

namespace {

/**
 * Kernels and transforms that depend only on (context, level), cached
 * across keyswitch calls. Every one of these used to be rebuilt per
 * call — a MatrixNtt construction fills two twiddle matrices and a
 * BConvKernel construction is O(α·α') modular exponentiations, which
 * together dominated small-ring pipeline runs. Cached MatrixNtt and
 * BConvKernel instances also pin their static GEMM operands, so the
 * tensor layer's plane cache can reuse bit-sliced forms across calls.
 */
struct LevelKernels
{
    std::vector<BConvKernel> modup; ///< one per ciphertext digit
    /// One per key digit; null when the group is empty at this level.
    std::vector<std::unique_ptr<BConvKernel>> recover;
};

struct PipelineCache
{
    Mutex mu;
    /// Per T limb (level-independent).
    std::vector<MatrixNtt> t_ntt NEO_GUARDED_BY(mu);
    /// Per q limb, lazy.
    std::vector<std::unique_ptr<MatrixNtt>> qntt NEO_GUARDED_BY(mu);
    std::vector<std::unique_ptr<LevelKernels>> levels NEO_GUARDED_BY(mu);
    /// LRU stamp — guarded by the *registry's* lock (reg_mu in
    /// pipeline_cache_for), which neither the attribute grammar nor
    /// the lint symbol table can name from here; never touched under
    /// mu. neo-lint: allow(nonatomic-shared-counter)
    u64 last_use = 0;

    /// Post-ensure_level read access — documented analysis exception:
    /// the vectors are sized once at construction, each slot is
    /// published exactly once under mu by ensure_level, and callers
    /// only read slots their own ensure_level call already built,
    /// which are immutable from then on. The unlocked reads race with
    /// nothing.
    const std::vector<MatrixNtt> &
    t_ntt_built() const NEO_NO_THREAD_SAFETY_ANALYSIS
    {
        return t_ntt;
    }
    const MatrixNtt &
    qntt_built(size_t i) const NEO_NO_THREAD_SAFETY_ANALYSIS
    {
        return *qntt[i];
    }
};

/**
 * Registry of pipeline caches keyed by CkksContext::uid() (never the
 * address — a context reallocated at a freed context's address must
 * not see its predecessor's kernels). Bounded to a small working set;
 * eviction is safe because callers hold a shared_ptr for the duration
 * of the call and all pinned operands release via RAII.
 */
// Magic-static registry guarded by the function-local reg_mu — a
// documented NEO_NO_THREAD_SAFETY_ANALYSIS exception (the attribute
// grammar cannot name a function-local capability; every access to
// tick/reg/last_use below happens under reg_mu).
std::shared_ptr<PipelineCache>
pipeline_cache_for(const CkksContext &ctx) NEO_NO_THREAD_SAFETY_ANALYSIS
{
    static Mutex reg_mu;
    // tick and reg are only ever touched under reg_mu.
    // neo-lint: allow(thread-unsafe-static)
    static u64 tick = 0;
    // neo-lint: allow(thread-unsafe-static)
    static std::map<u64, std::shared_ptr<PipelineCache>> reg;
    constexpr size_t kMaxContexts = 4;

    LockGuard lock(reg_mu);
    auto &slot = reg[ctx.uid()];
    if (slot == nullptr) {
        slot = std::make_shared<PipelineCache>();
        slot->qntt.resize(ctx.max_level() + 1);
        slot->levels.resize(ctx.max_level() + 1);
    }
    slot->last_use = ++tick;
    auto out = slot;
    while (reg.size() > kMaxContexts) {
        auto victim = reg.begin();
        for (auto it = reg.begin(); it != reg.end(); ++it)
            if (it->second->last_use < victim->second->last_use)
                victim = it;
        reg.erase(victim);
        obs::add_gauge("ks.cache.evictions", 1.0);
    }
    obs::set_gauge("ks.cache.contexts", static_cast<double>(reg.size()));
    return out;
}

/// Build (on first use) everything this keyswitch level needs.
LevelKernels &
ensure_level(PipelineCache &pc, const CkksContext &ctx, size_t level)
{
    const size_t n = ctx.n();
    const size_t k_special = ctx.p_basis().size();
    const size_t alpha_p = ctx.alpha_prime();
    const auto &lv = ctx.precomp().level(level);

    LockGuard lock(pc.mu);
    if (pc.t_ntt.empty()) {
        pc.t_ntt.reserve(alpha_p);
        for (size_t k = 0; k < alpha_p; ++k) {
            pc.t_ntt.emplace_back(
                ctx.t_tables().for_modulus(ctx.t_basis()[k]),
                std::min<size_t>(16, n));
        }
    }
    for (size_t i = 0; i <= level; ++i) {
        if (pc.qntt[i] == nullptr)
            pc.qntt[i] = std::make_unique<MatrixNtt>(
                ctx.tables().for_modulus(ctx.q_basis()[i]),
                std::min<size_t>(16, n));
    }
    if (pc.levels[level] == nullptr) {
        auto lk = std::make_unique<LevelKernels>();
        lk->modup.reserve(lv.groups.size());
        for (const auto &g : lv.groups)
            lk->modup.emplace_back(ctx.q_basis().slice(g.first, g.count),
                                   ctx.t_basis());
        const auto &key_partition = ctx.klss_key_partition();
        const size_t active = level + 1 + k_special;
        lk->recover.resize(lv.beta_tilde);
        for (size_t i = 0; i < lv.beta_tilde; ++i) {
            const auto &grp = key_partition[i];
            const size_t last = std::min(grp.first + grp.count, active);
            if (grp.first >= last)
                continue;
            std::vector<u64> grp_primes;
            for (size_t t = grp.first; t < last; ++t)
                grp_primes.push_back(ctx.pq_ordered_mod(t).value());
            lk->recover[i] = std::make_unique<BConvKernel>(
                ctx.t_basis(), RnsBasis(grp_primes));
        }
        pc.levels[level] = std::move(lk);
    }
    return *pc.levels[level];
}

/**
 * Resolved per-stage GEMM bindings of one pipeline run. A fixed
 * policy binds every slot to the same PipelineEngines bundle; an
 * autotune policy may bind each dispatched stage to a different
 * engine. All engines are bit-exact, so the bindings only choose
 * *which* correct implementation executes.
 */
struct StageBindings
{
    const ModColMatMulFn *modup;
    const ModMatMulFn *ntt_t;
    const ModSiteMatMulFn *ip;
    const ModMatMulFn *intt_t;
    const ModColMatMulFn *recover;
    const ModMatMulFn *ntt_q;
};

std::pair<RnsPoly, RnsPoly>
pipeline_run(const RnsPoly &d2, const KlssEvalKey &evk,
             const CkksContext &ctx, const StageBindings &eng, bool fuse,
             const model::ModelConfig &mcfg)
{
    NEO_ASSERT(d2.form() == PolyForm::eval, "expects eval form");
    obs::Span pipeline_span("keyswitch_klss_pipeline", obs::cat::stage);
    if (auto *r = obs::current()) {
        r->add("pipeline.keyswitch");
        // Modeled device time of the same KeySwitch on the simulated
        // A100, accumulated next to the wall-clock span so exporters
        // can report modeled-vs-measured side by side — total plus the
        // per-kernel roofline attribution (modeled.kernel.*). The
        // config mirrors the run's ExecPolicy, so an autotuned run's
        // modeled cost prices the per-stage engines it dispatched.
        model::KernelModel model(ctx.params(), mcfg);
        const auto att = model.run_attributed(
            model.keyswitch_kernels_named(d2.limbs() - 1));
        if (mcfg.devices > 1) {
            // Sharded run: the modeled cost is the multi-device
            // makespan (compute + collectives overlapping), with
            // comm.* rows and counters recorded next to the kernels
            // so exporters and --diff see communication the same way
            // they see kernels.
            const auto sc = shard::model_sharded_keyswitch(
                ctx.params(), d2.limbs() - 1, mcfg);
            r->add_value("modeled.keyswitch.s", sc.seconds);
            r->add_value("modeled.keyswitch.single_device.s",
                         sc.single_seconds);
            for (const auto &row : sc.kernels)
                r->add_modeled_cost(row.name, row.modeled_s,
                                    row.compute_s, row.memory_s,
                                    row.launch_s, row.bytes, row.calls);
            r->add_value("comm.bytes.allgather",
                         sc.plan.allgather_bytes());
            r->add_value("comm.bytes.reducescatter",
                         sc.plan.reducescatter_bytes());
            r->add_value("comm.bytes.total", sc.plan.total_bytes());
            r->add_value("comm.modeled.s", sc.comm_s);
            for (const auto &lk : sc.links) {
                std::string key = "comm.link.";
                key += std::to_string(lk.link);
                r->set_gauge(key + ".utilization", lk.utilization);
                r->set_gauge(key + ".bytes", lk.bytes);
            }
            r->set_gauge("shard.devices",
                         static_cast<double>(mcfg.devices));
        } else {
            r->add_value("modeled.keyswitch.s", att.seconds);
            for (const auto &row : att.kernels)
                r->add_modeled_cost(row.name, row.modeled_s,
                                    row.compute_s, row.memory_s,
                                    row.launch_s, row.bytes, row.calls);
        }
        // Modeled HBM telemetry: per-run DRAM traffic distribution
        // plus the footprint gauges (working set, keys, ciphertext).
        r->observe("work.keyswitch.hbm_bytes", att.schedule.bytes);
        r->set_gauge("hbm.modeled.traffic_bytes", att.schedule.bytes);
        gpusim::MemoryModel(ctx.params()).record_gauges(d2.limbs() - 1);
        // Work histogram: limb count per keyswitch — deterministic
        // (depends only on the op mix, never on timing or threads).
        r->observe("work.keyswitch.limbs",
                   static_cast<double>(d2.limbs()));
    }
    const size_t n = d2.n();
    const size_t level = d2.limbs() - 1;
    const size_t k_special = ctx.p_basis().size();
    const size_t alpha_p = ctx.alpha_prime();
    const auto &lv = ctx.precomp().level(level);
    const auto &ext_mods = lv.extended;
    const auto &groups = lv.groups;
    const auto &key_partition = ctx.klss_key_partition();
    const size_t beta = groups.size();
    const size_t beta_tilde = lv.beta_tilde;
    NEO_CHECK(beta <= evk.beta_max && beta_tilde <= evk.beta_tilde_max,
              "evaluation key too small for this level");

    // Cached kernels for this (context, level): radix-16 matrix NTTs
    // over T and Q, ModUp and Recover BConv kernels. Holding the
    // shared_ptr keeps the cache alive even if another thread evicts
    // this context from the registry mid-call.
    auto cache = pipeline_cache_for(ctx);
    LevelKernels &lk = ensure_level(*cache, ctx, level);
    const std::vector<MatrixNtt> &t_ntt = cache->t_ntt_built();

    RnsPoly d2c = d2;
    {
        obs::Span intt_span("pipeline_intt_q", obs::cat::stage);
        ctx.tables().to_coeff(d2c);
    }

    // --- Mod Up: exact matrix-form BConv per digit (Alg 2). ----------
    // Digits are independent: each reads its own Q-limb group and
    // fills its own α'×N slice of digits_t, so the β digits fan out
    // across the pool (kernel-internal parallelism runs inline).
    Workspace::Frame frame;
    u64 *digits_t = frame.alloc<u64>(beta * alpha_p * n);
    // One span per pipeline stage; emplace/reset brackets each stage
    // without pushing the stage bodies into nested blocks.
    std::optional<obs::Span> stage_span;
    stage_span.emplace("pipeline_modup", obs::cat::stage);
    // Device-major shard order: each device owns a contiguous digit
    // range (shard::shard_range), runs the same kernels over it and
    // writes its own disjoint slice of digits_t — the sharded
    // schedule is the single-device schedule re-grouped, so results
    // are bit-identical for every device count.
    const size_t dev_count = std::max<size_t>(size_t{1}, mcfg.devices);
    for (size_t dev = 0; dev < dev_count; ++dev) {
        const auto sr = shard::shard_range(beta, dev_count, dev);
        if (sr.count == 0)
            continue;
        parallel_for(
            sr.first, sr.first + sr.count,
            [&](size_t jb, size_t je) {
                for (size_t j = jb; j < je; ++j) {
                    const auto &g = groups[j];
                    lk.modup[j].run_matmul_exact(
                        d2c.limb(g.first), 1, n,
                        digits_t + j * alpha_p * n, *eng.modup);
                    // --- NTT over T (ten-step on the emulated TCU). --
                    for (size_t k = 0; k < alpha_p; ++k) {
                        t_ntt[k].forward(digits_t + (j * alpha_p + k) * n,
                                         *eng.ntt_t, fuse);
                    }
                }
            },
            1);
    }

    // --- IP: matrix form (Alg 4) for both components. -----------------
    stage_span.emplace("pipeline_ip", obs::cat::stage);
    IpKernel ip(ctx.t_basis().mods(), beta, beta_tilde);
    // Key material is static per (key, level): flatten each component
    // to β̃ × β × α' × N, reorder once into the Fig 8 GEMM layout and
    // pin the result so the plane cache can keep its sliced form.
    const auto &key_ops = evk.ip_operands().get(level, [&] {
        KlssEvalKey::IpOperands ops;
        ops.beta = beta;
        ops.beta_tilde = beta_tilde;
        std::vector<u64> keys(beta_tilde * beta * alpha_p * n);
        for (size_t c = 0; c < 2; ++c) {
            for (size_t i = 0; i < beta_tilde; ++i) {
                for (size_t j = 0; j < beta; ++j) {
                    const RnsPoly &part = evk.part(i, j, c);
                    std::copy(part.data(), part.data() + alpha_p * n,
                              keys.begin() + (i * beta + j) * alpha_p * n);
                }
            }
            ops.reordered[c].resize(keys.size());
            reorder_4d_reverse(keys.data(), beta_tilde, beta, alpha_p, n,
                               ops.reordered[c].data());
            ops.pins[c] = StaticPin(ops.reordered[c].data(),
                                    ops.reordered[c].size() * sizeof(u64));
        }
        return ops;
    });
    NEO_ASSERT(key_ops.beta == beta && key_ops.beta_tilde == beta_tilde,
               "cached IP operands shape mismatch");
    u64 *s_data[2];
    for (size_t c = 0; c < 2; ++c) {
        s_data[c] = frame.alloc<u64>(beta_tilde * alpha_p * n);
        ip.run_matmul_reordered(digits_t, key_ops.reordered[c].data(), 1,
                                n, s_data[c], *eng.ip);
        // --- INTT over T: one independent transform per (i, k) limb,
        // sharded by key digit (each device owns its β̃ rows).
        for (size_t dev = 0; dev < dev_count; ++dev) {
            const auto sr = shard::shard_range(beta_tilde, dev_count, dev);
            if (sr.count == 0)
                continue;
            parallel_for(
                sr.first * alpha_p, (sr.first + sr.count) * alpha_p,
                [&](size_t b, size_t e) {
                    for (size_t s = b; s < e; ++s) {
                        t_ntt[s % alpha_p].inverse(s_data[c] + s * n,
                                                   *eng.intt_t, fuse);
                    }
                },
                1);
        }
    }

    // --- Recover Limbs: exact matrix-form BConv per key-digit group.
    stage_span.emplace("pipeline_recover", obs::cat::stage);
    RnsPoly acc0(n, ext_mods, PolyForm::coeff);
    RnsPoly acc1(n, ext_mods, PolyForm::coeff);
    const size_t active = level + 1 + k_special;
    // Per-digit fan-out: the key partition's groups are disjoint limb
    // ranges, so each digit writes its own limbs of acc0/acc1 — no
    // inter-device communication (the shard.h determinism argument).
    for (size_t dev = 0; dev < dev_count; ++dev) {
    const auto rsr = shard::shard_range(beta_tilde, dev_count, dev);
    if (rsr.count == 0)
        continue;
    parallel_for(
        rsr.first, rsr.first + rsr.count,
        [&](size_t ib, size_t ie) {
            // Worker-local frame: each digit reuses the same scratch.
            Workspace::Frame wframe;
            for (size_t i = ib; i < ie; ++i) {
                const auto &grp = key_partition[i];
                const size_t last =
                    std::min(grp.first + grp.count, active);
                if (grp.first >= last)
                    continue;
                const BConvKernel &recover = *lk.recover[i];
                u64 *out =
                    wframe.alloc<u64>(recover.out_levels() * n);
                for (size_t c = 0; c < 2; ++c) {
                    recover.run_matmul_exact(s_data[c] + i * alpha_p * n,
                                             1, n, out,
                                             *eng.recover);
                    RnsPoly &acc = c == 0 ? acc0 : acc1;
                    for (size_t t = grp.first; t < last; ++t) {
                        const size_t store_idx = t < k_special
                                                     ? level + 1 + t
                                                     : t - k_special;
                        std::copy(out + (t - grp.first) * n,
                                  out + (t - grp.first + 1) * n,
                                  acc.limb(store_idx));
                    }
                }
            }
        },
        1);
    }

    // --- Mod Down (shared with the reference), NTT back. --------------
    stage_span.emplace("pipeline_moddown", obs::cat::stage);
    RnsPoly k0 = ckks::mod_down(acc0, level, ctx, fuse, dev_count);
    RnsPoly k1 = ckks::mod_down(acc1, level, ctx, fuse, dev_count);
    for (RnsPoly *p : {&k0, &k1}) {
        for (size_t dev = 0; dev < dev_count; ++dev) {
            const auto sr =
                shard::shard_range(level + 1, dev_count, dev);
            if (sr.count == 0)
                continue;
            parallel_for(
                sr.first, sr.first + sr.count,
                [&](size_t ib, size_t ie) {
                    for (size_t i = ib; i < ie; ++i)
                        cache->qntt_built(i).forward(p->limb(i),
                                                     *eng.ntt_q, fuse);
                },
                1);
        }
        p->set_form(PolyForm::eval);
    }
    stage_span.reset();
    return {std::move(k0), std::move(k1)};
}

} // namespace

PipelineEngines
PipelineEngines::from_name(std::string_view name)
{
    return EngineRegistry::engines(EngineRegistry::parse(name));
}

const std::vector<std::string_view> &
PipelineEngines::names()
{
    // Mirrors EngineRegistry::ids() order; kept only for the
    // deprecation window.
    // neo-lint: allow(thread-unsafe-static)
    static const std::vector<std::string_view> n = [] {
        std::vector<std::string_view> out;
        for (EngineId id : EngineRegistry::ids())
            out.push_back(EngineRegistry::name(id));
        return out;
    }();
    return n;
}

model::ModelConfig
model_config(const ExecPolicy &policy, const ckks::CkksParams &params)
{
    model::ModelConfig cfg;
    cfg.engine = EngineRegistry::model_engine(policy.engine);
    cfg.fuse_elementwise = policy.fuse;
    cfg.graph_capture = policy.graph;
    cfg.devices = policy.devices;
    cfg.interconnect = policy.interconnect;
    if (policy.is_auto() && policy.site_engine) {
        // Per-stage hook: the model prices each named keyswitch stage
        // with the engine the policy would dispatch at that site.
        cfg.stage_engine = [policy, params](std::string_view st,
                                            size_t level) {
            const double valid = gpusim::TcuModel::valid_proportion_fp64(
                params.batch, params.beta_tilde(level),
                params.beta(level));
            return EngineRegistry::model_engine(policy.engine_at(
                {st, level, params.d_num, params.n, valid,
                 policy.devices}));
        };
    }
    return cfg;
}

PipelineKernelCounts
keyswitch_pipeline_kernel_counts(const CkksContext &ctx, size_t level)
{
    const size_t n = ctx.n();
    const size_t k_special = ctx.p_basis().size();
    const size_t alpha_p = ctx.alpha_prime();
    const size_t beta = ctx.digit_partition(level).size();
    const size_t alpha_tilde = ctx.params().klss.alpha_tilde;
    const size_t beta_tilde =
        (level + 1 + k_special + alpha_tilde - 1) / alpha_tilde;

    // MatrixNtt transforms: ModUp forwards over T (β·α'), IP inverses
    // over T (2·β̃·α'), final forwards over Q (2·(l+1)). The input INTT
    // over Q uses the radix-2 tables, not MatrixNtt.
    const u64 mntt = static_cast<u64>(beta * alpha_p +
                                      2 * beta_tilde * alpha_p +
                                      2 * (level + 1));
    const u64 gemms_per_mntt =
        MatrixNtt::matmul_calls_for(n, std::min<size_t>(16, n));

    PipelineKernelCounts c;
    c.ntt = static_cast<u64>(level + 1) + mntt;
    // ModUp's per-digit exact BConv, Recover's per-key-digit BConv for
    // both components, plus ModDown's two approximate conversions.
    c.bconv = static_cast<u64>(beta + 2 * beta_tilde + 2);
    c.ip = 2; // one matrix IP per ciphertext component
    // GEMM engine calls: MatrixNtt tiles, one multiply per BConv
    // factor matrix, and one *batched* site GEMM per IP (all N·α'
    // sites of a component ride in a single engine call).
    c.gemm = mntt * gemms_per_mntt +
             static_cast<u64>(beta + 2 * beta_tilde) + 2;
    return c;
}

std::pair<RnsPoly, RnsPoly>
keyswitch_klss_pipeline(const RnsPoly &d2, const KlssEvalKey &evk,
                        const CkksContext &ctx, const ExecPolicy &policy)
{
    NEO_ASSERT(d2.limbs() >= 1, "empty input");
    const size_t level = d2.limbs() - 1;
    const auto &pp = ctx.params();
    const double valid = gpusim::TcuModel::valid_proportion_fp64(
        pp.batch, pp.beta_tilde(level), pp.beta(level));
    const auto resolve = [&](const char *st) {
        return policy.engine_at(
            {st, level, pp.d_num, pp.n, valid, policy.devices});
    };
    // The six engine-dispatched sites of the KLSS pipeline. A fixed
    // policy resolves them all to policy.engine; an autotune policy
    // consults its tuning table per (stage, level, d_num, N, valid).
    const EngineId e_modup = resolve(stage::modup_bconv);
    const EngineId e_ntt_t = resolve(stage::ntt_t);
    const EngineId e_ip = resolve(stage::ip);
    const EngineId e_intt_t = resolve(stage::intt_t);
    const EngineId e_recover = resolve(stage::recover_bconv);
    const EngineId e_ntt_q = resolve(stage::ntt_q);

    if (policy.is_auto()) {
        if (auto *r = obs::current()) {
            // One counter per site decision: the differential suite
            // asserts the engines that really executed match the
            // tuning table's decisions bit for bit.
            const std::pair<const char *, EngineId> sites[] = {
                {stage::modup_bconv, e_modup}, {stage::ntt_t, e_ntt_t},
                {stage::ip, e_ip},             {stage::intt_t, e_intt_t},
                {stage::recover_bconv, e_recover},
                {stage::ntt_q, e_ntt_q}};
            for (const auto &[st, id] : sites) {
                std::string key = "tune.site.";
                key += st;
                key += '.';
                key += EngineRegistry::name(id);
                r->add(key);
            }
        }
    }

    const StageBindings bindings{
        &EngineRegistry::engines(e_modup).per_column,
        &EngineRegistry::engines(e_ntt_t).same_mod,
        &EngineRegistry::engines(e_ip).per_site,
        &EngineRegistry::engines(e_intt_t).same_mod,
        &EngineRegistry::engines(e_recover).per_column,
        &EngineRegistry::engines(e_ntt_q).same_mod};
    return pipeline_run(d2, evk, ctx, bindings, policy.fuse,
                        model_config(policy, pp));
}

std::pair<RnsPoly, RnsPoly>
keyswitch_klss_pipeline(const RnsPoly &d2, const KlssEvalKey &evk,
                        const CkksContext &ctx,
                        const PipelineEngines &engines, bool fuse)
{
    // Legacy raw-engine surface: one bundle drives every stage and
    // the modeled span prices the default (FP64-TCU) configuration,
    // exactly the pre-ExecPolicy behaviour.
    model::ModelConfig mcfg;
    mcfg.fuse_elementwise = fuse;
    const StageBindings bindings{&engines.per_column, &engines.same_mod,
                                 &engines.per_site,   &engines.same_mod,
                                 &engines.per_column, &engines.same_mod};
    return pipeline_run(d2, evk, ctx, bindings, fuse, mcfg);
}

std::function<std::pair<RnsPoly, RnsPoly>(
    const RnsPoly &, const ckks::KlssEvalKey &, const ckks::CkksContext &)>
klss_keyswitch_fn(ExecPolicy policy)
{
    return [policy = std::move(policy)](const RnsPoly &d2,
                                        const ckks::KlssEvalKey &evk,
                                        const ckks::CkksContext &ctx) {
        return keyswitch_klss_pipeline(d2, evk, ctx, policy);
    };
}

} // namespace neo
