#include "neo/pipeline.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

#include "ckks/ks_precomp.h"
#include "common/check.h"
#include "common/static_operand.h"
#include "common/thread_pool.h"
#include "common/workspace.h"
#include "neo/kernel_model.h"
#include "neo/kernels.h"
#include "obs/obs.h"
#include "poly/matrix_ntt.h"
#include "tensor/layout.h"

namespace neo {

using ckks::CkksContext;
using ckks::KlssEvalKey;

namespace {

/**
 * Kernels and transforms that depend only on (context, level), cached
 * across keyswitch calls. Every one of these used to be rebuilt per
 * call — a MatrixNtt construction fills two twiddle matrices and a
 * BConvKernel construction is O(α·α') modular exponentiations, which
 * together dominated small-ring pipeline runs. Cached MatrixNtt and
 * BConvKernel instances also pin their static GEMM operands, so the
 * tensor layer's plane cache can reuse bit-sliced forms across calls.
 */
struct LevelKernels
{
    std::vector<BConvKernel> modup; ///< one per ciphertext digit
    /// One per key digit; null when the group is empty at this level.
    std::vector<std::unique_ptr<BConvKernel>> recover;
};

struct PipelineCache
{
    std::mutex mu;
    std::vector<MatrixNtt> t_ntt; ///< per T limb (level-independent)
    std::vector<std::unique_ptr<MatrixNtt>> qntt; ///< per q limb, lazy
    std::vector<std::unique_ptr<LevelKernels>> levels;
    u64 last_use = 0;
};

/**
 * Registry of pipeline caches keyed by CkksContext::uid() (never the
 * address — a context reallocated at a freed context's address must
 * not see its predecessor's kernels). Bounded to a small working set;
 * eviction is safe because callers hold a shared_ptr for the duration
 * of the call and all pinned operands release via RAII.
 */
std::shared_ptr<PipelineCache>
pipeline_cache_for(const CkksContext &ctx)
{
    static std::mutex reg_mu;
    // tick and reg are only ever touched under reg_mu.
    // neo-lint: allow(thread-unsafe-static)
    static u64 tick = 0;
    // neo-lint: allow(thread-unsafe-static)
    static std::map<u64, std::shared_ptr<PipelineCache>> reg;
    constexpr size_t kMaxContexts = 4;

    std::lock_guard<std::mutex> lock(reg_mu);
    auto &slot = reg[ctx.uid()];
    if (slot == nullptr) {
        slot = std::make_shared<PipelineCache>();
        slot->qntt.resize(ctx.max_level() + 1);
        slot->levels.resize(ctx.max_level() + 1);
    }
    slot->last_use = ++tick;
    auto out = slot;
    while (reg.size() > kMaxContexts) {
        auto victim = reg.begin();
        for (auto it = reg.begin(); it != reg.end(); ++it)
            if (it->second->last_use < victim->second->last_use)
                victim = it;
        reg.erase(victim);
    }
    return out;
}

/// Build (on first use) everything this keyswitch level needs.
LevelKernels &
ensure_level(PipelineCache &pc, const CkksContext &ctx, size_t level)
{
    const size_t n = ctx.n();
    const size_t k_special = ctx.p_basis().size();
    const size_t alpha_p = ctx.alpha_prime();
    const auto &lv = ctx.precomp().level(level);

    std::lock_guard<std::mutex> lock(pc.mu);
    if (pc.t_ntt.empty()) {
        pc.t_ntt.reserve(alpha_p);
        for (size_t k = 0; k < alpha_p; ++k) {
            pc.t_ntt.emplace_back(
                ctx.t_tables().for_modulus(ctx.t_basis()[k]),
                std::min<size_t>(16, n));
        }
    }
    for (size_t i = 0; i <= level; ++i) {
        if (pc.qntt[i] == nullptr)
            pc.qntt[i] = std::make_unique<MatrixNtt>(
                ctx.tables().for_modulus(ctx.q_basis()[i]),
                std::min<size_t>(16, n));
    }
    if (pc.levels[level] == nullptr) {
        auto lk = std::make_unique<LevelKernels>();
        lk->modup.reserve(lv.groups.size());
        for (const auto &g : lv.groups)
            lk->modup.emplace_back(ctx.q_basis().slice(g.first, g.count),
                                   ctx.t_basis());
        const auto &key_partition = ctx.klss_key_partition();
        const size_t active = level + 1 + k_special;
        lk->recover.resize(lv.beta_tilde);
        for (size_t i = 0; i < lv.beta_tilde; ++i) {
            const auto &grp = key_partition[i];
            const size_t last = std::min(grp.first + grp.count, active);
            if (grp.first >= last)
                continue;
            std::vector<u64> grp_primes;
            for (size_t t = grp.first; t < last; ++t)
                grp_primes.push_back(ctx.pq_ordered_mod(t).value());
            lk->recover[i] = std::make_unique<BConvKernel>(
                ctx.t_basis(), RnsBasis(grp_primes));
        }
        pc.levels[level] = std::move(lk);
    }
    return *pc.levels[level];
}

} // namespace

PipelineEngines
PipelineEngines::from_name(std::string_view name)
{
    if (name == "fp64_tcu")
        return fp64_tcu();
    if (name == "scalar")
        return scalar();
    if (name == "int8_tcu")
        return int8_tcu();
    std::string msg = "unknown pipeline engine '";
    msg += name;
    msg += "' (valid:";
    for (auto n : names()) {
        msg += ' ';
        msg += n;
    }
    msg += ')';
    throw std::invalid_argument(msg);
}

const std::vector<std::string_view> &
PipelineEngines::names()
{
    static const std::vector<std::string_view> n = {"fp64_tcu", "scalar",
                                                    "int8_tcu"};
    return n;
}

PipelineKernelCounts
keyswitch_pipeline_kernel_counts(const CkksContext &ctx, size_t level)
{
    const size_t n = ctx.n();
    const size_t k_special = ctx.p_basis().size();
    const size_t alpha_p = ctx.alpha_prime();
    const size_t beta = ctx.digit_partition(level).size();
    const size_t alpha_tilde = ctx.params().klss.alpha_tilde;
    const size_t beta_tilde =
        (level + 1 + k_special + alpha_tilde - 1) / alpha_tilde;

    // MatrixNtt transforms: ModUp forwards over T (β·α'), IP inverses
    // over T (2·β̃·α'), final forwards over Q (2·(l+1)). The input INTT
    // over Q uses the radix-2 tables, not MatrixNtt.
    const u64 mntt = static_cast<u64>(beta * alpha_p +
                                      2 * beta_tilde * alpha_p +
                                      2 * (level + 1));
    const u64 gemms_per_mntt =
        MatrixNtt::matmul_calls_for(n, std::min<size_t>(16, n));

    PipelineKernelCounts c;
    c.ntt = static_cast<u64>(level + 1) + mntt;
    // ModUp's per-digit exact BConv, Recover's per-key-digit BConv for
    // both components, plus ModDown's two approximate conversions.
    c.bconv = static_cast<u64>(beta + 2 * beta_tilde + 2);
    c.ip = 2; // one matrix IP per ciphertext component
    // GEMM engine calls: MatrixNtt tiles, one multiply per BConv
    // factor matrix, and one *batched* site GEMM per IP (all N·α'
    // sites of a component ride in a single engine call).
    c.gemm = mntt * gemms_per_mntt +
             static_cast<u64>(beta + 2 * beta_tilde) + 2;
    return c;
}

std::pair<RnsPoly, RnsPoly>
keyswitch_klss_pipeline(const RnsPoly &d2, const KlssEvalKey &evk,
                        const CkksContext &ctx,
                        const PipelineEngines &engines, bool fuse)
{
    NEO_ASSERT(d2.form() == PolyForm::eval, "expects eval form");
    obs::Span pipeline_span("keyswitch_klss_pipeline", obs::cat::stage);
    if (auto *r = obs::current()) {
        r->add("pipeline.keyswitch");
        // Modeled device time of the same KeySwitch on the simulated
        // A100, accumulated next to the wall-clock span so exporters
        // can report modeled-vs-measured side by side — total plus the
        // per-kernel roofline attribution (modeled.kernel.*).
        model::ModelConfig mcfg;
        mcfg.fuse_elementwise = fuse;
        model::KernelModel model(ctx.params(), mcfg);
        const auto att = model.run_attributed(
            model.keyswitch_kernels_named(d2.limbs() - 1));
        r->add_value("modeled.keyswitch.s", att.seconds);
        for (const auto &row : att.kernels)
            r->add_modeled_cost(row.name, row.modeled_s, row.compute_s,
                                row.memory_s, row.launch_s, row.bytes,
                                row.calls);
    }
    const size_t n = d2.n();
    const size_t level = d2.limbs() - 1;
    const size_t k_special = ctx.p_basis().size();
    const size_t alpha_p = ctx.alpha_prime();
    const auto &lv = ctx.precomp().level(level);
    const auto &ext_mods = lv.extended;
    const auto &groups = lv.groups;
    const auto &key_partition = ctx.klss_key_partition();
    const size_t beta = groups.size();
    const size_t beta_tilde = lv.beta_tilde;
    NEO_CHECK(beta <= evk.beta_max && beta_tilde <= evk.beta_tilde_max,
              "evaluation key too small for this level");

    // Cached kernels for this (context, level): radix-16 matrix NTTs
    // over T and Q, ModUp and Recover BConv kernels. Holding the
    // shared_ptr keeps the cache alive even if another thread evicts
    // this context from the registry mid-call.
    auto cache = pipeline_cache_for(ctx);
    LevelKernels &lk = ensure_level(*cache, ctx, level);
    const std::vector<MatrixNtt> &t_ntt = cache->t_ntt;

    RnsPoly d2c = d2;
    {
        obs::Span intt_span("pipeline_intt_q", obs::cat::stage);
        ctx.tables().to_coeff(d2c);
    }

    // --- Mod Up: exact matrix-form BConv per digit (Alg 2). ----------
    // Digits are independent: each reads its own Q-limb group and
    // fills its own α'×N slice of digits_t, so the β digits fan out
    // across the pool (kernel-internal parallelism runs inline).
    Workspace::Frame frame;
    u64 *digits_t = frame.alloc<u64>(beta * alpha_p * n);
    // One span per pipeline stage; emplace/reset brackets each stage
    // without pushing the stage bodies into nested blocks.
    std::optional<obs::Span> stage_span;
    stage_span.emplace("pipeline_modup", obs::cat::stage);
    parallel_for(
        0, beta,
        [&](size_t jb, size_t je) {
            for (size_t j = jb; j < je; ++j) {
                const auto &g = groups[j];
                lk.modup[j].run_matmul_exact(d2c.limb(g.first), 1, n,
                                             digits_t + j * alpha_p * n,
                                             engines.per_column);
                // --- NTT over T (ten-step on the emulated TCU). ------
                for (size_t k = 0; k < alpha_p; ++k) {
                    t_ntt[k].forward(digits_t + (j * alpha_p + k) * n,
                                     engines.same_mod, fuse);
                }
            }
        },
        1);

    // --- IP: matrix form (Alg 4) for both components. -----------------
    stage_span.emplace("pipeline_ip", obs::cat::stage);
    IpKernel ip(ctx.t_basis().mods(), beta, beta_tilde);
    // Key material is static per (key, level): flatten each component
    // to β̃ × β × α' × N, reorder once into the Fig 8 GEMM layout and
    // pin the result so the plane cache can keep its sliced form.
    const auto &key_ops = evk.ip_operands().get(level, [&] {
        KlssEvalKey::IpOperands ops;
        ops.beta = beta;
        ops.beta_tilde = beta_tilde;
        std::vector<u64> keys(beta_tilde * beta * alpha_p * n);
        for (size_t c = 0; c < 2; ++c) {
            for (size_t i = 0; i < beta_tilde; ++i) {
                for (size_t j = 0; j < beta; ++j) {
                    const RnsPoly &part = evk.part(i, j, c);
                    std::copy(part.data(), part.data() + alpha_p * n,
                              keys.begin() + (i * beta + j) * alpha_p * n);
                }
            }
            ops.reordered[c].resize(keys.size());
            reorder_4d_reverse(keys.data(), beta_tilde, beta, alpha_p, n,
                               ops.reordered[c].data());
            ops.pins[c] = StaticPin(ops.reordered[c].data(),
                                    ops.reordered[c].size() * sizeof(u64));
        }
        return ops;
    });
    NEO_ASSERT(key_ops.beta == beta && key_ops.beta_tilde == beta_tilde,
               "cached IP operands shape mismatch");
    u64 *s_data[2];
    for (size_t c = 0; c < 2; ++c) {
        s_data[c] = frame.alloc<u64>(beta_tilde * alpha_p * n);
        ip.run_matmul_reordered(digits_t, key_ops.reordered[c].data(), 1,
                                n, s_data[c], engines.per_site);
        // --- INTT over T: one independent transform per (i, k) limb.
        parallel_for(
            0, beta_tilde * alpha_p,
            [&](size_t b, size_t e) {
                for (size_t s = b; s < e; ++s) {
                    t_ntt[s % alpha_p].inverse(s_data[c] + s * n,
                                               engines.same_mod, fuse);
                }
            },
            1);
    }

    // --- Recover Limbs: exact matrix-form BConv per key-digit group.
    stage_span.emplace("pipeline_recover", obs::cat::stage);
    RnsPoly acc0(n, ext_mods, PolyForm::coeff);
    RnsPoly acc1(n, ext_mods, PolyForm::coeff);
    const size_t active = level + 1 + k_special;
    // Per-digit fan-out: the key partition's groups are disjoint limb
    // ranges, so each digit writes its own limbs of acc0/acc1.
    parallel_for(
        0, beta_tilde,
        [&](size_t ib, size_t ie) {
            // Worker-local frame: each digit reuses the same scratch.
            Workspace::Frame wframe;
            for (size_t i = ib; i < ie; ++i) {
                const auto &grp = key_partition[i];
                const size_t last =
                    std::min(grp.first + grp.count, active);
                if (grp.first >= last)
                    continue;
                const BConvKernel &recover = *lk.recover[i];
                u64 *out =
                    wframe.alloc<u64>(recover.out_levels() * n);
                for (size_t c = 0; c < 2; ++c) {
                    recover.run_matmul_exact(s_data[c] + i * alpha_p * n,
                                             1, n, out,
                                             engines.per_column);
                    RnsPoly &acc = c == 0 ? acc0 : acc1;
                    for (size_t t = grp.first; t < last; ++t) {
                        const size_t store_idx = t < k_special
                                                     ? level + 1 + t
                                                     : t - k_special;
                        std::copy(out + (t - grp.first) * n,
                                  out + (t - grp.first + 1) * n,
                                  acc.limb(store_idx));
                    }
                }
            }
        },
        1);

    // --- Mod Down (shared with the reference), NTT back. --------------
    stage_span.emplace("pipeline_moddown", obs::cat::stage);
    RnsPoly k0 = ckks::mod_down(acc0, level, ctx, fuse);
    RnsPoly k1 = ckks::mod_down(acc1, level, ctx, fuse);
    for (RnsPoly *p : {&k0, &k1}) {
        parallel_for(
            0, level + 1,
            [&](size_t ib, size_t ie) {
                for (size_t i = ib; i < ie; ++i)
                    cache->qntt[i]->forward(p->limb(i),
                                            engines.same_mod, fuse);
            },
            1);
        p->set_form(PolyForm::eval);
    }
    stage_span.reset();
    return {std::move(k0), std::move(k1)};
}

} // namespace neo
