/**
 * @file
 * BConv — RNS base conversion, the kernel the paper's §4.2.1
 * optimizes.
 *
 * Two flavours are provided:
 *
 *  - convert_approx: the standard "fast base conversion" used by ModUp
 *    and ModDown in RNS-CKKS. It computes
 *        y_j = Σ_i [x · (B/b_i)^{-1}]_{b_i} · [B/b_i]_{t_j}  (mod t_j)
 *    which represents x + u·B for a small unknown 0 ≤ u < |B|. The
 *    B-multiple is absorbed into ciphertext noise (Halevi–Polyakov–
 *    Shoup treatment).
 *
 *  - convert_exact: adds the floating-point overflow estimate
 *    r = round(Σ_i y_i / b_i) and subtracts r·B, recovering the
 *    *centered* representative exactly whenever |x_centered| < B/2 ·
 *    (1 - ε). KLSS needs this exactness for Mod Up into R_T and for
 *    Recover Limbs (§2.2): the inner product over R_T is an exact
 *    integer, so converting it back to the PQ primes must be exact
 *    CRT reconstruction, not fast conversion.
 *
 * Both operate limb-wise on arrays of n coefficients so that the
 * element-wise and matrix forms of the paper's Algorithms 1 and 2 can
 * be expressed on top of them.
 */
#pragma once

#include <vector>

#include "rns/basis.h"

namespace neo {

/** Precomputed converter from one RNS basis to another. */
class BaseConverter
{
  public:
    /// Precompute factors for conversions from @p from to @p to.
    BaseConverter(const RnsBasis &from, const RnsBasis &to);

    const RnsBasis &from() const { return from_; }
    const RnsBasis &to() const { return to_; }

    /**
     * Fast (approximate) base conversion of n coefficients.
     *
     * @param in   from.size() limbs, limb i at in + i*n, values < b_i.
     * @param n    coefficients per limb.
     * @param out  to.size() limbs, limb j at out + j*n.
     */
    void convert_approx(const u64 *in, size_t n, u64 *out) const;

    /**
     * Exact centered base conversion. Requires the centered value of
     * the input to satisfy |x| < B/2 (B = product of source primes);
     * output limbs then hold the same centered value mod each target
     * prime.
     */
    void convert_exact(const u64 *in, size_t n, u64 *out) const;

    /**
     * Scalar-multiplication step shared by both variants (line 1 of
     * Algorithms 1/2): y_i = [x_i * (B/b_i)^{-1}]_{b_i}. Exposed
     * separately so the matrix-form BConv can fuse it with the data
     * reorder.
     */
    void scale_inputs(const u64 *in, size_t n, u64 *scaled) const;

    /// [B/b_i] mod t_j — the matrix the paper's Algorithm 2 multiplies by.
    u64 factor(size_t i, size_t j) const
    {
        return punc_mod_to_[i * to_.size() + j];
    }

    /// [B] mod t_j.
    u64 product_mod_to(size_t j) const { return b_mod_to_[j]; }

  private:
    RnsBasis from_;
    RnsBasis to_;
    std::vector<u64> punc_mod_to_;       // [i*|to| + j] = (B/b_i) mod t_j
    std::vector<u64> punc_mod_to_shoup_; // Shoup companions
    std::vector<u64> b_mod_to_;          // B mod t_j
    std::vector<double> inv_from_;       // 1.0 / b_i
};

} // namespace neo
