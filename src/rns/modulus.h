/**
 * @file
 * A single RNS prime modulus with precomputed constants for fast
 * modular arithmetic.
 *
 * Word sizes in this project range from 30 to 64 bits (the paper's
 * WordSize is 36 or 60, and WordSize_T ranges over {36, 48, 64}), so
 * products need a 128-bit intermediate. Hot loops with a fixed
 * multiplicand (NTT twiddles, base-conversion factors) use Shoup
 * multiplication, which replaces the 128-bit division with one mulhi
 * and one correction.
 */
#pragma once

#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "common/types.h"

namespace neo {

/** An odd prime modulus q < 2^63 with Barrett constant. */
class Modulus
{
  public:
    Modulus() = default;

    /// Wrap @p q; precomputes the Barrett ratio floor(2^128 / q).
    explicit Modulus(u64 q) : value_(q)
    {
        NEO_CHECK(q > 1 && q < (1ULL << 63), "modulus out of range");
        // Barrett: ratio = floor(2^128 / q), stored as two 64-bit words.
        // Computed via 128-bit long division in two steps.
        u128 hi = (static_cast<u128>(1) << 64) / q; // floor(2^64/q) low part
        u128 rem = (static_cast<u128>(1) << 64) % q;
        ratio_hi_ = static_cast<u64>(hi);
        ratio_lo_ = static_cast<u64>((rem << 64) / q);
    }

    /// The prime value q.
    u64 value() const { return value_; }

    /// Bit width of q.
    int bits() const { return bit_size(value_); }

    /// (a * b) mod q.
    u64
    mul(u64 a, u64 b) const
    {
        return static_cast<u64>((static_cast<u128>(a) * b) % value_);
    }

    /**
     * Barrett reduction of a 128-bit value using the precomputed
     * floor(2^128/q): one mulhi chain and at most two corrections —
     * the division-free reduction GPU kernels use. Requires
     * x < q·2^64 (always true for products of reduced operands).
     */
    u64
    barrett_reduce(u128 x) const
    {
        const u64 lo = static_cast<u64>(x);
        const u64 hi = static_cast<u64>(x >> 64);
        // q_est = floor(x * ratio / 2^128), with ratio = ratio_hi·2^64
        // + ratio_lo: keep only the bits that reach the top word.
        const u128 mid =
            (static_cast<u128>(lo) * ratio_lo_ >> 64) +
            static_cast<u128>(lo) * ratio_hi_ +
            static_cast<u128>(hi) * ratio_lo_;
        const u128 q_est = (mid >> 64) + static_cast<u128>(hi) * ratio_hi_;
        u128 r = x - q_est * value_;
        while (r >= value_)
            r -= value_;
        return static_cast<u64>(r);
    }

    /// (a * b) mod q via Barrett (equals mul; division-free).
    u64
    mul_barrett(u64 a, u64 b) const
    {
        return barrett_reduce(static_cast<u128>(a) * b);
    }

    /// (a + b) mod q with a,b < q.
    u64 add(u64 a, u64 b) const { return add_mod(a, b, value_); }

    /// (a - b) mod q with a,b < q.
    u64 sub(u64 a, u64 b) const { return sub_mod(a, b, value_); }

    /// a^e mod q.
    u64 pow(u64 a, u64 e) const { return pow_mod(a, e, value_); }

    /// a^-1 mod q (q prime).
    u64 inv(u64 a) const { return inv_mod(a, value_); }

    /// Reduce an arbitrary 64-bit value.
    u64 reduce(u64 a) const { return a % value_; }

    /// Reduce a 128-bit value.
    u64 reduce128(u128 a) const { return static_cast<u64>(a % value_); }

    bool operator==(const Modulus &o) const { return value_ == o.value_; }

  private:
    u64 value_ = 0;
    u64 ratio_hi_ = 0;
    u64 ratio_lo_ = 0;
};

/**
 * Shoup precomputation for multiplying by a fixed constant w mod q:
 * w_shoup = floor(w * 2^64 / q). mul_shoup then needs only a mulhi.
 */
inline u64
shoup_precompute(u64 w, u64 q)
{
    return static_cast<u64>((static_cast<u128>(w) << 64) / q);
}

/// (a * w) mod q given w_shoup = shoup_precompute(w, q). Result < q.
inline u64
mul_shoup(u64 a, u64 w, u64 w_shoup, u64 q)
{
    u64 hi = static_cast<u64>((static_cast<u128>(a) * w_shoup) >> 64);
    u64 r = a * w - hi * q;
    return r >= q ? r - q : r;
}

} // namespace neo
