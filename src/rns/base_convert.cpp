#include "rns/base_convert.h"

#include <cmath>

#include "common/check.h"
#include "common/workspace.h"
#include "obs/obs.h"

namespace neo {

BaseConverter::BaseConverter(const RnsBasis &from, const RnsBasis &to)
    : from_(from), to_(to)
{
    const size_t k = from_.size();
    const size_t m = to_.size();
    punc_mod_to_.resize(k * m);
    punc_mod_to_shoup_.resize(k * m);
    b_mod_to_.resize(m);
    inv_from_.resize(k);
    for (size_t j = 0; j < m; ++j) {
        const Modulus &tj = to_[j];
        for (size_t i = 0; i < k; ++i) {
            u64 f = from_.punc_prod_mod(i, tj);
            punc_mod_to_[i * m + j] = f;
            punc_mod_to_shoup_[i * m + j] = shoup_precompute(f, tj.value());
        }
        b_mod_to_[j] = from_.product_mod(tj);
    }
    for (size_t i = 0; i < k; ++i)
        // Shenoy–Kumaresan overflow estimation is float-assisted by
        // design (§4.5.2); rounding is bit-matched with
        // BConvKernel::matmul_common. neo-lint: allow(float-on-limb)
        inv_from_[i] = 1.0 / static_cast<double>(from_[i].value());
}

void
BaseConverter::scale_inputs(const u64 *in, size_t n, u64 *scaled) const
{
    const size_t k = from_.size();
    for (size_t i = 0; i < k; ++i) {
        const Modulus &bi = from_[i];
        const u64 w = from_.punc_inv(i);
        const u64 ws = shoup_precompute(w, bi.value());
        const u64 *src = in + i * n;
        u64 *dst = scaled + i * n;
        for (size_t l = 0; l < n; ++l)
            dst[l] = mul_shoup(src[l], w, ws, bi.value());
    }
}

void
BaseConverter::convert_approx(const u64 *in, size_t n, u64 *out) const
{
    obs::Span span("bconv_approx", obs::cat::bconv);
    const size_t k = from_.size();
    const size_t m = to_.size();
    if (auto *r = obs::current()) {
        r->add("bconv.converts");
        r->add("bconv.products", static_cast<u64>(k) * m);
        r->add_value("bconv.bytes",
                     static_cast<double>((k + m) * n) * sizeof(u64));
    }
    Workspace::Frame frame;
    u64 *scaled = frame.alloc<u64>(k * n);
    scale_inputs(in, n, scaled);
    for (size_t j = 0; j < m; ++j) {
        const Modulus &tj = to_[j];
        u64 *dst = out + j * n;
        for (size_t l = 0; l < n; ++l) {
            u128 acc = 0;
            for (size_t i = 0; i < k; ++i) {
                acc += static_cast<u128>(tj.reduce(scaled[i * n + l])) *
                       punc_mod_to_[i * m + j];
                // Keep the accumulator bounded (q < 2^63, so at most
                // ~2 additions fit without reduction at 63-bit q; fold
                // every iteration for safety).
                acc = tj.reduce128(acc);
            }
            dst[l] = static_cast<u64>(acc);
        }
    }
}

void
BaseConverter::convert_exact(const u64 *in, size_t n, u64 *out) const
{
    obs::Span span("bconv_exact", obs::cat::bconv);
    const size_t k = from_.size();
    const size_t m = to_.size();
    if (auto *r = obs::current()) {
        r->add("bconv.converts");
        r->add("bconv.products", static_cast<u64>(k) * m);
        r->add_value("bconv.bytes",
                     static_cast<double>((k + m) * n) * sizeof(u64));
    }
    Workspace::Frame frame;
    u64 *scaled = frame.alloc<u64>(k * n);
    scale_inputs(in, n, scaled);
    // Overflow counts r_l = round(Σ_i scaled_i / b_i).
    u64 *overflow = frame.alloc<u64>(n);
    for (size_t l = 0; l < n; ++l) {
        long double v = 0.0L;
        for (size_t i = 0; i < k; ++i)
            // neo-lint: allow(float-on-limb) — see constructor note.
            v += static_cast<long double>(scaled[i * n + l]) * inv_from_[i];
        overflow[l] = static_cast<u64>(llroundl(v));
    }
    for (size_t j = 0; j < m; ++j) {
        const Modulus &tj = to_[j];
        u64 *dst = out + j * n;
        for (size_t l = 0; l < n; ++l) {
            u128 acc = 0;
            for (size_t i = 0; i < k; ++i) {
                acc += static_cast<u128>(tj.reduce(scaled[i * n + l])) *
                       punc_mod_to_[i * m + j];
                acc = tj.reduce128(acc);
            }
            // Subtract r * B mod t_j.
            u64 corr = tj.mul(tj.reduce(overflow[l]), b_mod_to_[j]);
            dst[l] = tj.sub(static_cast<u64>(acc), corr);
        }
    }
}

} // namespace neo
