/**
 * @file
 * Generation of NTT-friendly primes.
 *
 * CKKS in RNS form needs chains of distinct primes q ≡ 1 (mod 2N) at a
 * chosen bit width ("WordSize" in the paper: 36 or 60 for the Q/P
 * chains, and "WordSize_T" in {36,48,64} for the KLSS auxiliary base
 * T). Primality is decided with a deterministic Miller–Rabin for
 * 64-bit inputs.
 */
#pragma once

#include <vector>

#include "common/types.h"

namespace neo {

/// Deterministic Miller–Rabin for any 64-bit value.
bool is_prime(u64 n);

/**
 * Generate @p count distinct primes of exactly @p bit_size bits with
 * q ≡ 1 (mod 2 * ntt_size), skipping any prime in @p avoid.
 * Scans downward from 2^bit_size - 1.
 *
 * @throws std::invalid_argument if not enough primes exist in range.
 */
std::vector<u64> generate_ntt_primes(int bit_size, int count, u64 ntt_size,
                                     const std::vector<u64> &avoid = {});

/**
 * Find an element of exact order 2n in Z_q^* (a primitive 2n-th root
 * of unity), where 2n is a power of two dividing q-1.
 */
u64 find_primitive_root(u64 q, u64 two_n);

} // namespace neo
