#include "rns/basis.h"

#include <cmath>

#include "common/check.h"

namespace neo {

RnsBasis::RnsBasis(std::vector<u64> primes)
{
    NEO_CHECK(!primes.empty(), "empty RNS basis");
    mods_.reserve(primes.size());
    for (u64 p : primes) {
        for (const auto &m : mods_)
            NEO_CHECK(m.value() != p, "duplicate prime in RNS basis");
        mods_.emplace_back(p);
        log2_product_ += std::log2(static_cast<double>(p));
    }
    punc_inv_.resize(mods_.size());
    for (size_t i = 0; i < mods_.size(); ++i) {
        const Modulus &bi = mods_[i];
        u64 prod = 1;
        for (size_t j = 0; j < mods_.size(); ++j) {
            if (j != i)
                prod = bi.mul(prod, bi.reduce(mods_[j].value()));
        }
        punc_inv_[i] = bi.inv(prod);
    }
}

std::vector<u64>
RnsBasis::values() const
{
    std::vector<u64> v(mods_.size());
    for (size_t i = 0; i < mods_.size(); ++i)
        v[i] = mods_[i].value();
    return v;
}

u64
RnsBasis::punc_prod_mod(size_t i, const Modulus &m) const
{
    u64 prod = 1;
    for (size_t j = 0; j < mods_.size(); ++j) {
        if (j != i)
            prod = m.mul(prod, m.reduce(mods_[j].value()));
    }
    return prod;
}

u64
RnsBasis::product_mod(const Modulus &m) const
{
    u64 prod = 1;
    for (const auto &b : mods_)
        prod = m.mul(prod, m.reduce(b.value()));
    return prod;
}

RnsBasis
RnsBasis::slice(size_t first, size_t count) const
{
    NEO_CHECK(first + count <= mods_.size(), "slice out of range");
    std::vector<u64> v;
    v.reserve(count);
    for (size_t i = first; i < first + count; ++i)
        v.push_back(mods_[i].value());
    return RnsBasis(std::move(v));
}

RnsBasis
RnsBasis::concat(const RnsBasis &other) const
{
    std::vector<u64> v = values();
    for (const auto &m : other.mods())
        v.push_back(m.value());
    return RnsBasis(std::move(v));
}

} // namespace neo
