/**
 * @file
 * An RNS basis: an ordered set of coprime prime moduli whose product
 * is the ring modulus, plus the punctured-product constants needed by
 * base conversion.
 */
#pragma once

#include <vector>

#include "common/types.h"
#include "rns/modulus.h"

namespace neo {

/**
 * Ordered list of distinct primes b_0..b_{k-1} with precomputed
 * punctured products B/b_i and their inverses.
 */
class RnsBasis
{
  public:
    RnsBasis() = default;

    /// Build from raw prime values (validated distinct, >1).
    explicit RnsBasis(std::vector<u64> primes);

    /// Number of primes in the basis.
    size_t size() const { return mods_.size(); }

    bool empty() const { return mods_.empty(); }

    /// The i-th modulus.
    const Modulus &operator[](size_t i) const { return mods_[i]; }

    /// All moduli.
    const std::vector<Modulus> &mods() const { return mods_; }

    /// Raw prime values.
    std::vector<u64> values() const;

    /// [(B/b_i)^{-1}]_{b_i} — inverse of the punctured product.
    u64 punc_inv(size_t i) const { return punc_inv_[i]; }

    /// [B/b_i] reduced modulo an arbitrary modulus m.
    u64 punc_prod_mod(size_t i, const Modulus &m) const;

    /// [B] (the full product) reduced modulo an arbitrary modulus m.
    u64 product_mod(const Modulus &m) const;

    /// log2 of the product of all primes (for bound analysis).
    double log2_product() const { return log2_product_; }

    /// Sub-basis formed by primes [first, first+count).
    RnsBasis slice(size_t first, size_t count) const;

    /// Concatenation of this basis and @p other (must stay disjoint).
    RnsBasis concat(const RnsBasis &other) const;

  private:
    std::vector<Modulus> mods_;
    std::vector<u64> punc_inv_;
    double log2_product_ = 0.0;
};

} // namespace neo
