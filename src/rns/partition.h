/**
 * @file
 * Digit (gadget) decomposition partitions.
 *
 * Both key-switch methods start by splitting a prime chain into
 * groups ("digits"): the ciphertext digits use groups of α primes of
 * Q (β = ceil((l+1)/α) digits, Table 1), and KLSS additionally splits
 * the *key* over groups of α̃ primes of PQ (β̃ digits). In RNS the
 * gadget factor g_j = (B/B_j)·[(B/B_j)^{-1}]_{B_j} reduces to 1 on the
 * primes inside group j and 0 outside, so decomposition is simply
 * "take the group's limbs" and recombination is "route each output
 * prime to its own group" — the property Recover Limbs exploits.
 */
#pragma once

#include <vector>

#include "common/math_util.h"

namespace neo {

/** One contiguous group of primes within a basis. */
struct DigitGroup
{
    size_t first; ///< index of the first prime of the group
    size_t count; ///< number of primes in the group
};

/**
 * Partition @p total primes into groups of @p group_size (the final
 * group may be smaller). group_size = α for ciphertext digits,
 * α̃ for KLSS key digits.
 */
inline std::vector<DigitGroup>
make_partition(size_t total, size_t group_size)
{
    std::vector<DigitGroup> groups;
    for (size_t first = 0; first < total; first += group_size) {
        groups.push_back({first, std::min(group_size, total - first)});
    }
    return groups;
}

/**
 * Partition @p total primes into @p parts contiguous near-even groups
 * (⌈total/parts⌉ each, trailing groups possibly empty) — the
 * multi-device shard rule: device d owns group d. Deterministic in
 * (total, parts) only, so sharded schedules are reproducible.
 */
inline std::vector<DigitGroup>
make_even_partition(size_t total, size_t parts)
{
    std::vector<DigitGroup> groups;
    const size_t chunk = parts > 0 ? (total + parts - 1) / parts : total;
    for (size_t p = 0; p < parts; ++p) {
        const size_t first = std::min(p * chunk, total);
        groups.push_back({first, std::min(chunk, total - first)});
    }
    return groups;
}

/// Index of the group containing prime @p idx.
inline size_t
group_of(const std::vector<DigitGroup> &groups, size_t idx)
{
    for (size_t g = 0; g < groups.size(); ++g) {
        if (idx >= groups[g].first && idx < groups[g].first + groups[g].count)
            return g;
    }
    return groups.size();
}

} // namespace neo
