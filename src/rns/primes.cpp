#include "rns/primes.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"
#include "common/random.h"

namespace neo {

bool
is_prime(u64 n)
{
    if (n < 2)
        return false;
    for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n % p == 0)
            return n == p;
    }
    // Write n-1 = d * 2^r.
    u64 d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // Deterministic witness set for 64-bit integers (Sinclair).
    for (u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        u64 x = pow_mod(a % n, d, n);
        if (x == 1 || x == n - 1)
            continue;
        bool composite = true;
        for (int i = 1; i < r; ++i) {
            x = mul_mod(x, x, n);
            if (x == n - 1) {
                composite = false;
                break;
            }
        }
        if (composite)
            return false;
    }
    return true;
}

std::vector<u64>
generate_ntt_primes(int bit_size, int count, u64 ntt_size,
                    const std::vector<u64> &avoid)
{
    NEO_CHECK(bit_size >= 20 && bit_size <= 63, "bit_size out of range");
    NEO_CHECK(is_pow2(ntt_size), "ntt_size must be a power of two");
    const u64 m = 2 * ntt_size;
    std::vector<u64> out;
    out.reserve(count);
    // Largest candidate ≡ 1 (mod m) strictly below 2^bit_size.
    u64 hi = (bit_size == 63) ? ~0ULL : ((1ULL << bit_size) - 1);
    u64 candidate = (hi / m) * m + 1;
    if (candidate > hi)
        candidate -= m;
    const u64 lo = 1ULL << (bit_size - 1);
    while (static_cast<int>(out.size()) < count && candidate > lo) {
        if (is_prime(candidate) &&
            std::find(avoid.begin(), avoid.end(), candidate) == avoid.end()) {
            out.push_back(candidate);
        }
        candidate -= m;
    }
    NEO_CHECK(static_cast<int>(out.size()) == count,
              "not enough NTT-friendly primes at requested bit size");
    return out;
}

u64
find_primitive_root(u64 q, u64 two_n)
{
    NEO_CHECK(is_pow2(two_n), "group order must be a power of two");
    NEO_CHECK((q - 1) % two_n == 0, "2n must divide q-1");
    const u64 cofactor = (q - 1) / two_n;
    Rng rng(q);
    for (int attempt = 0; attempt < 4096; ++attempt) {
        u64 x = 2 + rng.uniform(q - 3);
        u64 g = pow_mod(x, cofactor, q);
        // Order divides 2n (a power of two); order is exactly 2n iff
        // g^n = -1 mod q.
        if (two_n == 1)
            return 1;
        if (pow_mod(g, two_n / 2, q) == q - 1)
            return g;
    }
    NEO_ASSERT(false, "failed to find primitive root");
    return 0;
}

} // namespace neo
