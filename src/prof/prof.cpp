#include "prof/prof.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "apps/schedules.h"
#include "baselines/backends.h"
#include "ckks/keygen.h"
#include "common/check.h"
#include "common/random.h"
#include "common/table.h"
#include "gpusim/tcu_model.h"
#include "neo/engine.h"
#include "neo/kernel_model.h"
#include "neo/pipeline.h"
#include "neo/shard.h"
#include "obs/obs.h"
#include "tune/tuner.h"

namespace neo::prof {

using ckks::CkksContext;
using ckks::CkksParams;
using model::KernelModel;
using model::ModelConfig;

namespace {

/// Stamp the policy-derived identity fields of a result.
void
stamp_policy(Result &r, const ExecPolicy &policy)
{
    r.engine = std::string(policy.engine_name());
    r.options.fuse = policy.fuse;
    r.options.graph = policy.graph;
    r.tuning_table = policy.tuning_table;
    r.devices = policy.devices;
    if (policy.devices > 1)
        r.topology = gpusim::interconnect_name(policy.interconnect);
}

/// Fold one attributed schedule, weighted by @p mult invocations,
/// into the result's kernel rows.
void
accumulate_rows(Result &r, const KernelModel::AttributedSchedule &att,
                double mult)
{
    for (const auto &row : att.kernels) {
        KernelRow *dst = nullptr;
        for (auto &k : r.kernels)
            if (k.name == row.name)
                dst = &k;
        if (dst == nullptr) {
            r.kernels.emplace_back();
            dst = &r.kernels.back();
            dst->name = row.name;
        }
        dst->calls += static_cast<u64>(
            std::llround(mult * static_cast<double>(row.calls)));
        dst->modeled_s += row.modeled_s * mult;
        dst->compute_s += row.compute_s * mult;
        dst->memory_s += row.memory_s * mult;
        dst->launch_s += row.launch_s * mult;
        dst->bytes += row.bytes * mult;
    }
    r.bytes += att.schedule.bytes * mult;
    r.launches += att.schedule.launches * mult;
    r.graph_launches += att.schedule.graph_launches * mult;
    r.fused_kernels += static_cast<u64>(
        std::llround(mult * static_cast<double>(att.fused_kernels)));
}

/// Re-derive fractions and bound strings once all rows are in.
void
finalize_rows(Result &r)
{
    for (auto &k : r.kernels) {
        k.fraction = r.modeled_total_s > 0 ? k.modeled_s / r.modeled_total_s
                                           : 0;
        const double roof = std::max(k.compute_s, k.memory_s);
        k.bound = k.launch_s > roof
                      ? "launch"
                      : (k.compute_s >= k.memory_s ? "compute" : "memory");
    }
    // Schedule-level bound from the summed phases.
    double c = 0, m = 0, l = 0;
    for (const auto &k : r.kernels) {
        c += k.compute_s;
        m += k.memory_s;
        l += k.launch_s;
    }
    r.bound = l > std::max(c, m) ? "launch"
                                 : (c >= m ? "compute" : "memory");
}

void
fill_metrics(Result &r)
{
    r.metrics["modeled.total_s"] = r.modeled_total_s;
    r.metrics["bytes.total"] = r.bytes;
    r.metrics["launches.total"] = r.launches;
    for (const auto &k : r.kernels)
        r.metrics["modeled.kernel." + k.name + ".s"] = k.modeled_s;
    for (const auto &[name, count] : r.spans)
        r.metrics[name] = static_cast<double>(count);
    if (r.wall_s > 0)
        r.metrics["wall.total_s"] = r.wall_s;
}

/// The primitive workloads run at functional-test scale so the
/// keyswitch can execute end to end in a ctest-friendly time.
CkksParams
primitive_params()
{
    return CkksParams::test_params(256, 5, 2);
}

Result
profile_keyswitch(const ExecPolicy &policy, size_t level, size_t repeat)
{
    CkksParams params = primitive_params();
    if (level == 0)
        level = params.max_level;
    NEO_CHECK(level <= params.max_level, "level above parameter set's L");

    Result r;
    r.workload = "keyswitch";
    r.mode = "functional";
    r.level = level;
    stamp_policy(r, policy);

    CkksContext ctx(params);
    ckks::KeyGenerator keygen(ctx, 17);
    ckks::SecretKey sk = keygen.secret_key();
    ckks::KlssEvalKey rlk = keygen.to_klss(keygen.relin_key(sk));

    Rng rng(40 + level);
    RnsPoly d2(ctx.n(), ctx.active_mods(level), PolyForm::eval);
    for (size_t i = 0; i < d2.limbs(); ++i)
        for (size_t j = 0; j < d2.n(); ++j)
            d2.limb(i)[j] = rng.uniform(d2.modulus(i).value());

    // The run records into a private Scope so the snapshot below is
    // deterministic even under an ambient NEO_TRACE sink — but the
    // ambient sink still deserves the telemetry (NEO_TRACE=openmetrics
    // on a neo-prof run must export the keyswitch series), so the
    // scope's registry is merged back into it at the end. Events are
    // recorded only when the ambient sink wants them (flamegraph/json).
    obs::Registry *ambient = obs::current();
    obs::Scope::Options sopts;
    sopts.registry.record_events =
        ambient != nullptr && ambient->recording_events();
    obs::Scope scope(sopts);
    const auto run_once = [&] {
        const auto t0 = std::chrono::steady_clock::now();
        (void)keyswitch_klss_pipeline(d2, rlk, ctx, policy);
        const auto t1 = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(t1 - t0).count();
    };
    // The traced run: span counters for exactly one keyswitch. When
    // repeating it doubles as the warmup that fills the hot-path
    // caches, and wall_s becomes the median of the steady-state
    // samples that follow; with repeat == 1 this cold run is the
    // measurement (historical behaviour).
    r.wall_s = run_once();

    // Snapshot the counters before any extra sample runs inflate them.
    // gemm.plane_cache.evict stays out of the gate-able set: evictions
    // fire on heap-address reuse across pin generations, which the
    // allocator does not reproduce run to run.
    for (const auto &[name, count] : scope.registry().counters()) {
        if (name == "gemm.plane_cache.evict")
            continue;
        if (name.rfind("span.", 0) == 0 || name == "gemm.calls" ||
            name == "pipeline.keyswitch" ||
            name.rfind("gemm.plane_cache.", 0) == 0 ||
            name.rfind("ws.", 0) == 0 || name.rfind("ks.", 0) == 0 ||
            name.rfind("pass.", 0) == 0 ||
            name.rfind("fuse.", 0) == 0 || name.rfind("tune.", 0) == 0)
            r.spans[name] = count;
    }

    // Sharded runs: the pipeline records comm.* byte/time values and
    // per-link gauges; surface them as gate-able metrics (additive —
    // single-device artifacts never see these keys). Snapshot before
    // the extra sample runs, like the counters above: the byte values
    // accumulate per keyswitch, and the gated figure is one run's.
    if (policy.devices > 1) {
        for (const auto &[name, v] : scope.registry().values())
            if (name.rfind("comm.", 0) == 0)
                r.metrics[name] = v;
    }

    if (repeat > 1) {
        std::vector<double> samples(repeat);
        for (auto &s : samples)
            s = run_once();
        std::sort(samples.begin(), samples.end());
        r.wall_s = samples[samples.size() / 2];
        Dist d;
        d.p50 = r.wall_s;
        d.p95 = samples[(19 * samples.size() + 19) / 20 - 1];
        d.max = samples.back();
        r.dist["wall.total_s"] = d;
    }
    if (ambient != nullptr)
        ambient->merge_from(scope.registry());
    const auto want = keyswitch_pipeline_kernel_counts(ctx, level);
    r.expected_spans["gemm"] = want.gemm;
    r.expected_spans["ntt"] = want.ntt;
    r.expected_spans["bconv"] = want.bconv;
    r.expected_spans["ip"] = want.ip;

    const ModelConfig mcfg = model_config(policy, params);
    KernelModel model(params, mcfg);
    if (policy.devices > 1) {
        // Sharded schedule: rows come from the multi-device makespan
        // attribution (kernel stages + comm.* rows, summing to the
        // total exactly — the same invariant as run_attributed).
        const auto sc =
            shard::model_sharded_keyswitch(params, level, mcfg);
        r.modeled_total_s = sc.seconds;
        for (const auto &row : sc.kernels) {
            KernelRow k;
            k.name = row.name;
            k.calls = row.calls;
            k.modeled_s = row.modeled_s;
            k.compute_s = row.compute_s;
            k.memory_s = row.memory_s;
            k.launch_s = row.launch_s;
            k.bytes = row.bytes;
            r.kernels.push_back(std::move(k));
            r.bytes += row.bytes;
        }
        const auto att = model.run_attributed(
            model.keyswitch_kernels_named(level));
        r.launches =
            att.schedule.launches * static_cast<double>(policy.devices);
        r.graph_launches = att.schedule.graph_launches *
                           static_cast<double>(policy.devices);
        r.fused_kernels = att.fused_kernels;
        r.metrics["modeled.single_device.s"] = sc.single_seconds;
        r.metrics["comm.modeled.s"] = sc.comm_s;
        for (const auto &dv : sc.per_device)
            r.per_device.push_back(
                {dv.device, dv.compute_s, dv.comm_s});
        for (const auto &lk : sc.links)
            r.links.push_back(
                {lk.link, lk.bytes, lk.busy_s, lk.utilization});
    } else {
        const auto att = model.run_attributed(
            model.keyswitch_kernels_named(level));
        r.modeled_total_s = att.seconds;
        accumulate_rows(r, att, 1.0);
    }
    r.ip_valid_proportion = gpusim::TcuModel::valid_proportion_fp64(
        params.batch, params.beta_tilde(level), params.beta(level));
    finalize_rows(r);
    fill_metrics(r);
    return r;
}

Result
profile_primitive(const std::string &workload, const ExecPolicy &policy,
                  size_t level)
{
    CkksParams params = primitive_params();
    if (level == 0)
        level = params.max_level;
    NEO_CHECK(level <= params.max_level, "level above parameter set's L");

    Result r;
    r.workload = workload;
    r.mode = "modeled";
    r.level = level;
    stamp_policy(r, policy);

    KernelModel model(params, model_config(policy, params));
    const auto kernels = workload == "mul"
                             ? model.hmult_kernels_named(level)
                             : model.hrotate_kernels_named(level);
    const auto att = model.run_attributed(kernels);
    r.modeled_total_s = att.seconds;
    accumulate_rows(r, att, 1.0);
    r.ip_valid_proportion = gpusim::TcuModel::valid_proportion_fp64(
        params.batch, params.beta_tilde(level), params.beta(level));
    finalize_rows(r);
    fill_metrics(r);
    return r;
}

/// Mirror of apps::run_schedule with per-kernel attribution: each
/// op's named kernel list reprices to exactly the op's *_time(), so
/// the accumulated total matches run_schedule bit for bit.
double
accumulate_schedule(Result &r, const apps::Schedule &s,
                    const KernelModel &m, double mult)
{
    double total = 0;
    for (const auto &o : s.ops) {
        std::vector<KernelModel::NamedKernel> ks;
        const size_t l = o.level;
        switch (o.op) {
        case apps::OpKind::hmult: ks = m.hmult_kernels_named(l); break;
        case apps::OpKind::hrotate: ks = m.hrotate_kernels_named(l); break;
        case apps::OpKind::pmult:
            ks.push_back({"pmult", m.modmul(2 * (l + 1))});
            break;
        case apps::OpKind::hadd:
            ks.push_back({"hadd", m.modadd(2 * (l + 1))});
            break;
        case apps::OpKind::padd:
            ks.push_back({"padd", m.modadd(l + 1)});
            break;
        case apps::OpKind::rescale:
            ks = m.rescale_kernels_named(l);
            break;
        case apps::OpKind::double_rescale:
            ks = m.double_rescale_kernels_named(l);
            break;
        }
        const auto att = m.run_attributed(ks);
        accumulate_rows(r, att, mult * o.count);
        total += att.seconds * o.count;
    }
    if (s.bootstraps > 0) {
        const apps::Schedule bs = apps::pack_bootstrap(m.params());
        total += s.bootstraps *
                 accumulate_schedule(r, bs, m, mult * s.bootstraps);
    }
    return total;
}

Result
profile_app(const std::string &workload, const ExecPolicy &policy)
{
    baselines::Backend neo = baselines::make_neo('C');
    ModelConfig cfg = model_config(policy, neo.params);
    cfg.device = neo.cfg.device; // same A100 either way

    Result r;
    r.workload = workload;
    r.mode = "modeled";
    r.level = neo.params.max_level;
    stamp_policy(r, policy);

    KernelModel model(neo.params, cfg);
    apps::Schedule sched;
    if (workload == "bootstrap")
        sched = apps::pack_bootstrap(neo.params);
    else if (workload == "helr")
        sched = apps::helr_iteration(neo.params);
    else if (workload == "resnet20")
        sched = apps::resnet(neo.params, 20);
    else if (workload == "resnet32")
        sched = apps::resnet(neo.params, 32);
    else
        sched = apps::resnet(neo.params, 56);

    r.modeled_total_s = accumulate_schedule(r, sched, model, 1.0);
    r.ip_valid_proportion = gpusim::TcuModel::valid_proportion_fp64(
        neo.params.batch, neo.params.beta_tilde(r.level),
        neo.params.beta(r.level));
    finalize_rows(r);
    fill_metrics(r);
    return r;
}

} // namespace

const std::vector<std::string> &
workload_names()
{
    static const std::vector<std::string> names = {
        "keyswitch", "mul",      "rotate",   "bootstrap",
        "helr",      "resnet20", "resnet32", "resnet56"};
    return names;
}

tune::TuningTable
tuning_table_for_workloads()
{
    const tune::Tuner tuner;
    tune::TuningTable t;
    tuner.tune(primitive_params(), t);
    tuner.tune(baselines::make_neo('C').params, t);
    return t;
}

Result
profile(const std::string &workload, const ExecPolicy &policy,
        size_t level, size_t repeat)
{
    // Complete an unresolved autotune policy: load the named table,
    // or tune the canonical one in-memory.
    ExecPolicy p = policy;
    if (p.is_auto() && !p.site_engine) {
        const tune::TuningTable table =
            p.tuning_table.empty()
                ? tuning_table_for_workloads()
                : tune::TuningTable::load_file(p.tuning_table);
        p = table.policy(p);
    }
    if (repeat == 0)
        repeat = 1;
    if (p.devices > 1 && workload != "keyswitch")
        throw std::invalid_argument(
            "--devices > 1 is only modeled for the keyswitch workload");
    if (workload == "keyswitch")
        return profile_keyswitch(p, level, repeat);
    if (workload == "mul" || workload == "rotate")
        return profile_primitive(workload, p, level);
    for (const auto &n : workload_names())
        if (n == workload)
            return profile_app(workload, p);
    std::string msg = "unknown workload '" + workload + "' (valid:";
    for (const auto &n : workload_names()) {
        msg += ' ';
        msg += n;
    }
    msg += ')';
    throw std::invalid_argument(msg);
}

Result
profile(const std::string &workload, const std::string &engine,
        size_t level, size_t repeat, const ProfileOptions &opts)
{
    ExecPolicy p;
    p.fuse = opts.fuse;
    p.graph = opts.graph;
    if (engine == "auto")
        p.select = EngineSelect::autotune;
    else
        p.engine = EngineRegistry::parse(engine); // validates up front
    return profile(workload, p, level, repeat);
}

void
print_report(const Result &r, std::ostream &out)
{
    out << "neo-prof — workload '" << r.workload << "', engine '"
        << r.engine << "' (" << r.mode << ", level " << r.level
        << ", fuse " << (r.options.fuse ? "on" : "off") << ", graph "
        << (r.options.graph ? "on" : "off");
    if (!r.tuning_table.empty())
        out << ", table " << r.tuning_table;
    out << ")\n";
    out << "  modeled total: " << format_time(r.modeled_total_s);
    if (r.wall_s > 0)
        out << "   wall: " << format_time(r.wall_s);
    out << "   traffic: " << format_bytes(r.bytes)
        << "   launches: " << strfmt("%.0f", r.launches);
    if (r.options.graph)
        out << " (graph replays: " << strfmt("%.0f", r.graph_launches)
            << ")";
    if (r.options.fuse)
        out << "   fused kernels: "
            << strfmt("%llu", (unsigned long long)r.fused_kernels);
    out << "   bound: " << r.bound
        << "   ip_valid: " << strfmt("%.3f", r.ip_valid_proportion)
        << "\n\n";

    TextTable t;
    t.header({"kernel", "calls", "modeled", "% total", "compute",
              "memory", "launch", "bytes", "bound"});
    for (const auto &k : r.kernels) {
        t.row({k.name, strfmt("%llu", (unsigned long long)k.calls),
               format_time(k.modeled_s),
               strfmt("%6.2f%%", 100.0 * k.fraction),
               format_time(k.compute_s), format_time(k.memory_s),
               format_time(k.launch_s), format_bytes(k.bytes), k.bound});
    }
    out << t.str();

    if (r.devices > 1) {
        out << "\nsharded over " << r.devices << " devices ("
            << r.topology << "):\n";
        TextTable d;
        d.header({"device", "compute", "comm"});
        for (const auto &dv : r.per_device)
            d.row({strfmt("%zu", dv.device), format_time(dv.compute_s),
                   format_time(dv.comm_s)});
        out << d.str() << "\n";
        TextTable l;
        l.header({"link", "bytes", "busy", "utilization"});
        for (const auto &lk : r.links)
            l.row({strfmt("%zu", lk.link), format_bytes(lk.bytes),
                   format_time(lk.busy_s),
                   strfmt("%5.1f%%", 100.0 * lk.utilization)});
        out << l.str();
    }

    if (!r.spans.empty()) {
        out << "\ntraced spans";
        if (!r.expected_spans.empty())
            out << " (expected: analytic kernel counts)";
        out << ":\n";
        for (const auto &[name, count] : r.spans)
            out << "  " << name << " = " << count << "\n";
        for (const auto &[name, count] : r.expected_spans)
            out << "  expect." << name << " = " << count << "\n";
    }
}

std::string
to_json(const Result &r)
{
    json::Writer w;
    w.begin_object();
    w.key("schema").value(kSchema);
    w.key("kind").value("profile");
    w.key("workload").value(r.workload);
    w.key("engine").value(r.engine);
    w.key("mode").value(r.mode);
    w.key("level").value(static_cast<u64>(r.level));
    // Additive neo.bench/1 fields (multi-device sharding): absent from
    // single-device artifacts so historical goldens stay byte-exact.
    if (r.devices > 1) {
        w.key("devices").value(static_cast<u64>(r.devices));
        w.key("topology").value(r.topology);
    }

    w.key("options").begin_object();
    w.key("fuse").value(r.options.fuse);
    w.key("graph").value(r.options.graph);
    // Auto-run provenance only; fixed-engine artifacts keep the
    // historical key set (golden files compare it exactly).
    if (!r.tuning_table.empty())
        w.key("tuning_table").value(r.tuning_table);
    w.end_object();

    w.key("totals").begin_object();
    w.key("modeled_s").value(r.modeled_total_s);
    w.key("wall_s").value(r.wall_s);
    w.key("bytes").value(r.bytes);
    w.key("launches").value(r.launches);
    // Additive neo.bench/1 fields (PR 6): graph replays and fused
    // element-wise stages. Baseline compare() reads only `metrics`,
    // so artifacts written before these fields existed still gate.
    w.key("graph_launches").value(r.graph_launches);
    w.key("fused_kernels").value(r.fused_kernels);
    w.key("bound").value(r.bound);
    w.key("ip_valid_proportion").value(r.ip_valid_proportion);
    w.end_object();

    w.key("kernels").begin_array();
    for (const auto &k : r.kernels) {
        w.begin_object();
        w.key("name").value(k.name);
        w.key("calls").value(k.calls);
        w.key("modeled_s").value(k.modeled_s);
        w.key("fraction").value(k.fraction);
        w.key("compute_s").value(k.compute_s);
        w.key("memory_s").value(k.memory_s);
        w.key("launch_s").value(k.launch_s);
        w.key("bytes").value(k.bytes);
        w.key("bound").value(k.bound);
        w.end_object();
    }
    w.end_array();

    // Additive neo.bench/1 arrays (multi-device sharding): per-device
    // compute/comm split and per-link traffic. Absent from
    // single-device artifacts so historical goldens stay byte-exact.
    if (r.devices > 1) {
        w.key("per_device").begin_array();
        for (const auto &dv : r.per_device) {
            w.begin_object();
            w.key("device").value(static_cast<u64>(dv.device));
            w.key("compute_s").value(dv.compute_s);
            w.key("comm_s").value(dv.comm_s);
            w.end_object();
        }
        w.end_array();
        w.key("links").begin_array();
        for (const auto &lk : r.links) {
            w.begin_object();
            w.key("link").value(static_cast<u64>(lk.link));
            w.key("bytes").value(lk.bytes);
            w.key("busy_s").value(lk.busy_s);
            w.key("utilization").value(lk.utilization);
            w.end_object();
        }
        w.end_array();
    }

    w.key("spans").begin_object();
    for (const auto &[name, count] : r.spans)
        w.key(name).value(count);
    w.end_object();

    w.key("expected_spans").begin_object();
    for (const auto &[name, count] : r.expected_spans)
        w.key(name).value(count);
    w.end_object();

    w.key("metrics").begin_object();
    for (const auto &[name, v] : r.metrics)
        w.key(name).value(v);
    w.end_object();

    // Additive neo.bench/1 field (PR 8): sample distributions for
    // repeated metrics. Omitted when empty so repeat==1 artifacts keep
    // the historical key set byte for byte.
    if (!r.dist.empty()) {
        w.key("dist").begin_object();
        for (const auto &[name, d] : r.dist) {
            w.key(name).begin_object();
            w.key("p50").value(d.p50);
            w.key("p95").value(d.p95);
            w.key("max").value(d.max);
            w.end_object();
        }
        w.end_object();
    }

    w.end_object();
    return w.str();
}

void
write_json(const Result &r, const std::string &path)
{
    std::ofstream f(path);
    NEO_CHECK(f.good(), "cannot open " + path + " for writing");
    f << to_json(r) << '\n';
}

std::vector<Regression>
compare(const json::Value &baseline, const json::Value &current,
        const CompareOptions &opts)
{
    NEO_CHECK(baseline.at("schema").as_string() == kSchema,
              "baseline artifact has wrong schema");
    NEO_CHECK(current.at("schema").as_string() == kSchema,
              "current artifact has wrong schema");
    std::vector<Regression> out;
    const auto &base_metrics = baseline.at("metrics").as_object();
    const json::Value &cur_metrics = current.at("metrics");
    for (const auto &[name, bval] : base_metrics) {
        if (!opts.gate_wall && name.find("wall") != std::string::npos)
            continue;
        const double b = bval.as_number();
        const json::Value *cval = cur_metrics.find(name);
        if (cval == nullptr) {
            out.push_back({name, b, 0, 0}); // dropped metric
            continue;
        }
        const double c = cval->as_number();
        if (c > b * (1.0 + opts.threshold) + 1e-12) {
            out.push_back(
                {name, b, c, b > 0 ? c / b
                                   : std::numeric_limits<double>::infinity()});
        }
    }
    return out;
}

namespace {

DiffRow
make_row(const std::string &name, double base, double cur)
{
    DiffRow row;
    row.name = name;
    row.base = base;
    row.cur = cur;
    row.delta = cur - base;
    row.ratio = base != 0 ? cur / base : 0;
    return row;
}

std::string
opt_string(const json::Value &doc, const char *key)
{
    const json::Value *v = doc.find(key);
    return v != nullptr ? v->as_string() : std::string();
}

/// kernel name -> modeled_s from an artifact's `kernels` array
/// (empty for artifacts without one, e.g. bench-harness reports).
std::map<std::string, double>
kernel_times(const json::Value &doc)
{
    std::map<std::string, double> out;
    const json::Value *kernels = doc.find("kernels");
    if (kernels == nullptr)
        return out;
    for (const auto &row : kernels->as_array())
        out[row.at("name").as_string()] = row.at("modeled_s").as_number();
    return out;
}

std::map<std::string, double>
number_map(const json::Value &doc, const char *key)
{
    std::map<std::string, double> out;
    const json::Value *obj = doc.find(key);
    if (obj == nullptr)
        return out;
    for (const auto &[name, v] : obj->as_object())
        out[name] = v.as_number();
    return out;
}

/// Union the two maps into changed-only DiffRows (absent side -> 0),
/// sorted by name (map order).
std::vector<DiffRow>
changed_rows(const std::map<std::string, double> &base,
             const std::map<std::string, double> &cur)
{
    std::map<std::string, std::pair<double, double>> joined;
    for (const auto &[name, v] : base)
        joined[name].first = v;
    for (const auto &[name, v] : cur)
        joined[name].second = v;
    std::vector<DiffRow> out;
    for (const auto &[name, bc] : joined) {
        if (bc.first == bc.second)
            continue;
        out.push_back(make_row(name, bc.first, bc.second));
    }
    return out;
}

} // namespace

DiffReport
diff(const json::Value &baseline, const json::Value &current,
     const CompareOptions &opts)
{
    DiffReport d;
    d.regressions = compare(baseline, current, opts); // also checks schema
    d.threshold = opts.threshold;
    d.base_workload = opt_string(baseline, "workload");
    d.cur_workload = opt_string(current, "workload");
    d.base_engine = opt_string(baseline, "engine");
    d.cur_engine = opt_string(current, "engine");
    if (const json::Value *t = baseline.find("totals"))
        d.base_total_s = t->at("modeled_s").as_number();
    if (const json::Value *t = current.find("totals"))
        d.cur_total_s = t->at("modeled_s").as_number();

    // Kernel attribution: every kernel of either side, with its share
    // of the total modeled-time movement. Shares of an exact kernel
    // decomposition sum to 1 when the totals moved.
    const double total_delta = d.cur_total_s - d.base_total_s;
    const auto base_k = kernel_times(baseline);
    const auto cur_k = kernel_times(current);
    std::map<std::string, std::pair<double, double>> joined;
    for (const auto &[name, v] : base_k)
        joined[name].first = v;
    for (const auto &[name, v] : cur_k)
        joined[name].second = v;
    for (const auto &[name, bc] : joined) {
        DiffRow row = make_row(name, bc.first, bc.second);
        if (total_delta != 0)
            row.share = row.delta / total_delta;
        d.kernels.push_back(row);
    }
    std::sort(d.kernels.begin(), d.kernels.end(),
              [](const DiffRow &a, const DiffRow &b) {
                  const double da = std::abs(a.delta);
                  const double db = std::abs(b.delta);
                  if (da != db)
                      return da > db;
                  return a.name < b.name;
              });

    d.spans = changed_rows(number_map(baseline, "spans"),
                           number_map(current, "spans"));

    // Per-kernel modeled times already live in the kernels table;
    // keep the metrics table to the schedule-level rows.
    auto base_m = number_map(baseline, "metrics");
    auto cur_m = number_map(current, "metrics");
    const auto strip_kernel_rows = [](std::map<std::string, double> &m) {
        for (auto it = m.begin(); it != m.end();) {
            if (it->first.rfind("modeled.kernel.", 0) == 0)
                it = m.erase(it);
            else
                ++it;
        }
    };
    strip_kernel_rows(base_m);
    strip_kernel_rows(cur_m);
    d.metrics = changed_rows(base_m, cur_m);
    return d;
}

void
print_diff(const DiffReport &d, std::ostream &out)
{
    out << "neo-prof diff: " << d.base_workload << " (" << d.base_engine
        << ") -> " << d.cur_workload << " (" << d.cur_engine << ")\n";
    out << "modeled total: " << d.base_total_s << " s -> " << d.cur_total_s
        << " s (delta " << d.cur_total_s - d.base_total_s << " s)\n";

    if (!d.kernels.empty()) {
        out << "\nkernel attribution (|delta| descending):\n";
        for (const auto &k : d.kernels) {
            out << "  " << k.name << ": " << k.base << " -> " << k.cur
                << " s (delta " << k.delta;
            if (k.share != 0)
                out << ", " << k.share * 100.0 << "% of movement";
            out << ")\n";
        }
    }
    if (!d.spans.empty()) {
        out << "\nchanged spans:\n";
        for (const auto &s : d.spans)
            out << "  " << s.name << ": " << s.base << " -> " << s.cur
                << "\n";
    }
    if (!d.metrics.empty()) {
        out << "\nchanged metrics:\n";
        for (const auto &m : d.metrics)
            out << "  " << m.name << ": " << m.base << " -> " << m.cur
                << " (delta " << m.delta << ")\n";
    }
    if (d.regressions.empty()) {
        out << "\ngate: PASS (threshold " << d.threshold * 100 << "%)\n";
    } else {
        out << "\ngate: FAIL (threshold " << d.threshold * 100 << "%)\n";
        for (const auto &reg : d.regressions)
            out << "  " << reg.metric << ": " << reg.baseline << " -> "
                << reg.current << "\n";
    }
}

std::string
diff_to_json(const DiffReport &d)
{
    json::Writer w;
    const auto write_rows = [&w](const char *key,
                                 const std::vector<DiffRow> &rows,
                                 bool with_share) {
        w.key(key).begin_array();
        for (const auto &r : rows) {
            w.begin_object();
            w.key("name").value(r.name);
            w.key("base").value(r.base);
            w.key("cur").value(r.cur);
            w.key("delta").value(r.delta);
            w.key("ratio").value(r.ratio);
            if (with_share)
                w.key("share").value(r.share);
            w.end_object();
        }
        w.end_array();
    };

    w.begin_object();
    w.key("schema").value(kDiffSchema);
    w.key("base").begin_object();
    w.key("workload").value(d.base_workload);
    w.key("engine").value(d.base_engine);
    w.key("modeled_total_s").value(d.base_total_s);
    w.end_object();
    w.key("cur").begin_object();
    w.key("workload").value(d.cur_workload);
    w.key("engine").value(d.cur_engine);
    w.key("modeled_total_s").value(d.cur_total_s);
    w.end_object();
    w.key("threshold").value(d.threshold);
    write_rows("kernels", d.kernels, true);
    write_rows("spans", d.spans, false);
    write_rows("metrics", d.metrics, false);
    w.key("regressions").begin_array();
    for (const auto &reg : d.regressions) {
        w.begin_object();
        w.key("metric").value(reg.metric);
        w.key("baseline").value(reg.baseline);
        w.key("current").value(reg.current);
        // inf (zero-baseline regression) is not a JSON number; exports
        // as 0 like DiffRow::ratio.
        w.key("ratio").value(std::isfinite(reg.ratio) ? reg.ratio : 0.0);
        w.end_object();
    }
    w.end_array();
    w.key("gated").value(d.gated());
    w.end_object();
    return w.str();
}

} // namespace neo::prof
