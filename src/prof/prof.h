/**
 * @file
 * neo::prof — modeled-GPU roofline profiler and benchmark harness.
 *
 * Layered on neo::obs and the analytic kernel model: a profile run
 * executes one named workload under a chosen GEMM engine, joins every
 * traced span with its modeled cost, and produces
 *
 *  - a per-kernel roofline attribution report (modeled vs. wall time,
 *    bytes, bottleneck class, % of total — the Fig 13 lens applied to
 *    any workload), and
 *  - a schema-versioned JSON artifact (`neo.bench/1`, written as
 *    BENCH_<workload>.json) whose flat `metrics` map a baseline
 *    compare can gate on with per-metric relative thresholds.
 *
 * Workloads come in two modes:
 *  - functional ("keyswitch"): actually runs keyswitch_klss_pipeline
 *    on the emulated TCU under an obs::Scope, so the artifact carries
 *    real span counts (asserted equal to
 *    keyswitch_pipeline_kernel_counts) and wall time next to the
 *    modeled numbers;
 *  - modeled ("mul", "rotate", "bootstrap", "helr", "resnet20/32/56"):
 *    prices the operation/application schedule on the A100 model at
 *    paper-scale parameters (Set-C), where a functional run would be
 *    prohibitively slow on a CPU emulation.
 *
 * The invariant the artifact is tested against: the per-kernel
 * `modeled_s` rows sum to `totals.modeled_s` (run_attributed's
 * contract), so "% of total" is an exact decomposition.
 */
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/types.h"
#include "neo/exec_policy.h"
#include "tune/tuning_table.h"

namespace neo::prof {

/// Artifact schema identifier; bump on breaking layout changes.
inline constexpr const char *kSchema = "neo.bench/1";

/** One aggregated kernel row of the attribution report. */
struct KernelRow
{
    std::string name;
    u64 calls = 0;
    double modeled_s = 0; ///< share of totals.modeled_s (rows sum to it)
    double fraction = 0;  ///< modeled_s / totals.modeled_s
    double compute_s = 0;
    double memory_s = 0;
    double launch_s = 0;
    double bytes = 0;
    std::string bound; ///< "compute" | "memory" | "launch"
};

/**
 * Ablation switches for one profile run — the `--fuse` / `--graph`
 * axes of neo-prof. Both default off so profile() without options
 * reproduces the historical artifact exactly.
 */
struct ProfileOptions
{
    /// Fuse adjacent element-wise stages (ModDown fix into its BConv,
    /// twiddle passes into the NTT GEMMs) in both the functional
    /// pipeline and the cost model.
    bool fuse = false;
    /// Model CUDA-graph capture: the workload's kernel DAG replays
    /// with one amortized launch.
    bool graph = false;
};

/**
 * Distribution summary of repeated samples of one metric. Quantiles
 * are order statistics of the sorted sample vector (p50 = element
 * n/2, matching the median wall_s; p95 = element ceil(0.95·n)-1).
 */
struct Dist
{
    double p50 = 0;
    double p95 = 0;
    double max = 0;
};

/** Complete result of one profile run. */
struct Result
{
    std::string workload;
    std::string engine; ///< a registry engine name, or "auto"
    std::string mode;   ///< "functional" | "modeled"
    size_t level = 0;   ///< ciphertext level the workload ran at
    ProfileOptions options; ///< ablation switches this run used
    /// Tuning-table path backing an auto run ("" = tuned in-memory /
    /// fixed engine). Provenance only; carried into the artifact.
    std::string tuning_table;
    /// Devices the keyswitch sharded over (1 = single device; the
    /// historical artifacts). Serialized only when > 1.
    size_t devices = 1;
    /// Interconnect preset name ("nvlink"/"pcie") when devices > 1.
    std::string topology;

    double modeled_total_s = 0; ///< per-batched-ciphertext model time
    double wall_s = 0;          ///< functional runs only, else 0
    double bytes = 0;           ///< whole-batch DRAM traffic
    double launches = 0;
    /// Graph replays issued by the modeled schedule (0 with graph off).
    double graph_launches = 0;
    /// Element-wise stages the model folded into neighbours (0 unfused).
    u64 fused_kernels = 0;
    std::string bound;            ///< schedule-level bottleneck class
    double ip_valid_proportion = 0; ///< §4.5.3 gate input at this level

    std::vector<KernelRow> kernels;
    /// Per-device compute/communication split of the sharded makespan.
    /// Populated (and serialized) only when devices > 1.
    struct DeviceRow
    {
        size_t device = 0;
        double compute_s = 0;
        double comm_s = 0;
    };
    std::vector<DeviceRow> per_device;
    /// Per-link interconnect traffic and utilization over the modeled
    /// makespan. Populated (and serialized) only when devices > 1.
    struct LinkRow
    {
        size_t link = 0;
        double bytes = 0;
        double busy_s = 0;
        double utilization = 0;
    };
    std::vector<LinkRow> links;
    /// span.* / gemm.calls counters from the run's obs::Scope
    /// (functional mode only).
    std::map<std::string, u64> spans;
    /// Analytic counts the spans must equal (keyswitch only).
    std::map<std::string, u64> expected_spans;
    /// Flat gate-able metrics (all "higher is worse"); keys containing
    /// "wall" are machine-dependent and skipped by compare() unless
    /// gate_wall is set.
    std::map<std::string, double> metrics;
    /// Sample distributions for repeated metrics ("wall.total_s" when
    /// repeat > 1). Serialized as the artifact's "dist" sub-object;
    /// omitted when empty, so single-run artifacts keep the
    /// historical key set byte for byte.
    std::map<std::string, Dist> dist;
};

/// Workloads profile() accepts, in display order.
const std::vector<std::string> &workload_names();

/**
 * Run @p workload under @p policy and collect the attribution.
 * @p level selects the ciphertext level for the primitive workloads
 * (keyswitch/mul/rotate); 0 means "the parameter set's top level".
 * Application workloads price their full schedule and ignore @p level.
 *
 * Engine selection comes from the policy: a fixed policy reproduces
 * the historical single-engine runs; an autotune policy dispatches
 * per site. An autotune policy with no resolver is completed here —
 * policy.tuning_table (when set) is loaded, otherwise the canonical
 * table is tuned in-memory (tuning_table_for_workloads()). Functional
 * auto runs record one `tune.site.<stage>.<engine>` span per site
 * decision.
 *
 * @p repeat controls wall-clock sampling for functional workloads:
 * with repeat == 1 the single (cold) traced run is timed, matching the
 * historical behaviour; with repeat > 1 the traced run doubles as a
 * warmup that fills the hot-path caches (key-switch precomp, pipeline
 * kernels, GEMM plane cache, workspace arenas) and wall_s is the
 * median of @p repeat steady-state samples. Span counters always come
 * from exactly one run. Modeled workloads ignore @p repeat.
 *
 * Throws std::invalid_argument for unknown names.
 */
Result profile(const std::string &workload, const ExecPolicy &policy,
               size_t level = 0, size_t repeat = 1);

/**
 * Deprecated engine-string surface (pre-ExecPolicy). "auto" selects
 * autotune; other names resolve through EngineRegistry::parse. Kept
 * one PR for out-of-tree callers.
 */
[[deprecated("pass a neo::ExecPolicy (ExecPolicy::fixed(EngineId) or "
             "an autotune policy) instead of an engine string + "
             "ProfileOptions")]]
Result profile(const std::string &workload, const std::string &engine,
               size_t level = 0, size_t repeat = 1,
               const ProfileOptions &opts = {});

/**
 * The canonical tuning table: every site of the parameter sets
 * neo-prof's workloads run at (the functional test-scale set and the
 * paper's Set C). Deterministic — the checked-in neo.tune.json is
 * exactly this table, and CI regenerates it to prove freshness.
 */
tune::TuningTable tuning_table_for_workloads();

/// Human-readable attribution report (stdout form of the artifact).
void print_report(const Result &r, std::ostream &out);

/// The artifact as a JSON document (schema kSchema).
std::string to_json(const Result &r);
/// to_json + write to @p path (with trailing newline).
void write_json(const Result &r, const std::string &path);

// ---------------------------------------------------------------- gating

struct CompareOptions
{
    /// Relative threshold: metric m regresses when
    /// current > baseline * (1 + threshold) (absolute slack 1e-12
    /// covers exact-zero baselines).
    double threshold = 0.10;
    /// Gate wall-clock metrics too (off by default: machine-dependent).
    bool gate_wall = false;
};

/** One metric that moved past its threshold. */
struct Regression
{
    std::string metric;
    double baseline = 0;
    double current = 0;
    double ratio = 0; ///< current / baseline (inf for 0 baselines)
};

/**
 * Compare two artifacts' `metrics` maps (baseline first). Returns the
 * regressed metrics; empty means "no regression". A metric present in
 * the baseline but missing from the current artifact is reported as a
 * regression (ratio 0), so renames can't silently drop coverage.
 * Both documents must carry schema kSchema.
 */
std::vector<Regression> compare(const json::Value &baseline,
                                const json::Value &current,
                                const CompareOptions &opts = {});

// ------------------------------------------------------------------ diff

/// Schema identifier of diff_to_json documents.
inline constexpr const char *kDiffSchema = "neo.diff/1";

/** One named quantity compared across two artifacts. */
struct DiffRow
{
    std::string name;
    double base = 0;
    double cur = 0;
    double delta = 0; ///< cur - base
    /// cur / base; 0 when base == 0 (kept finite for JSON export).
    double ratio = 0;
    /// delta / (cur total - base total): this row's share of the
    /// total modeled-time movement. 0 when the totals are equal or
    /// the row is not a time (spans/metrics rows).
    double share = 0;
};

/**
 * Explainable comparison of two neo.bench/1 artifacts (`neo-prof
 * --diff`): the total delta attributed per kernel, the changed span
 * counters and metrics, plus the same threshold gate compare()
 * applies — one report answers both "did it regress?" and "which
 * kernel moved?".
 */
struct DiffReport
{
    std::string base_workload, cur_workload;
    std::string base_engine, cur_engine;
    double base_total_s = 0, cur_total_s = 0; ///< totals.modeled_s
    double threshold = 0;
    /// All kernels of either artifact, |delta| descending (name
    /// ascending on ties); rows carry the delta share.
    std::vector<DiffRow> kernels;
    /// Changed span.*/counter rows (from the artifacts' `spans`).
    std::vector<DiffRow> spans;
    /// Changed metrics, excluding per-kernel times (in `kernels`).
    std::vector<DiffRow> metrics;
    /// Gate result: compare(baseline, current, opts).
    std::vector<Regression> regressions;

    bool
    gated() const
    {
        return !regressions.empty();
    }
};

/**
 * Build the attribution diff (baseline first). Both documents must
 * carry schema kSchema; artifacts without kernel rows (bench-harness
 * reports) yield an empty kernels table and still diff metrics.
 */
DiffReport diff(const json::Value &baseline, const json::Value &current,
                const CompareOptions &opts = {});

/// Human-readable attribution report (stdout form of --diff).
void print_diff(const DiffReport &d, std::ostream &out);

/// The diff as a JSON document (schema kDiffSchema); deterministic
/// given the two inputs, so reports golden-test cleanly.
std::string diff_to_json(const DiffReport &d);

} // namespace neo::prof
