#include "tune/tuning_table.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <tuple>

#include "common/check.h"

namespace neo::tune {

namespace {

const std::vector<std::string_view> &
canonical_stages()
{
    // Pipeline execution order; doubles as the tuner's coordinate
    // order. neo-lint: allow(thread-unsafe-static)
    static const std::vector<std::string_view> order = {
        stage::intt_q,  stage::modup_bconv,   stage::ntt_t,
        stage::ip,      stage::intt_t,        stage::recover_bconv,
        stage::moddown_bconv, stage::ntt_q,   stage::rescale_intt,
        stage::rescale_ntt};
    return order;
}

/// Canonical sort key: (n, d_num, level, stage rank, stage name).
auto
order_key(const SiteDecision &d)
{
    // devices sorts last so historical (device-agnostic) tables keep
    // their exact canonical order.
    return std::make_tuple(d.n, d.d_num, d.level, stage_rank(d.stage),
                           std::string_view(d.stage), d.devices);
}

bool
same_site(const SiteDecision &d, std::string_view stage, size_t level,
          size_t d_num, size_t n, size_t devices)
{
    return d.n == n && d.d_num == d_num && d.level == level &&
           d.devices == devices && d.stage == stage;
}

} // namespace

size_t
stage_rank(std::string_view stage)
{
    const auto &order = canonical_stages();
    for (size_t i = 0; i < order.size(); ++i)
        if (order[i] == stage)
            return i;
    return order.size();
}

void
TuningTable::add(SiteDecision d)
{
    for (auto &e : entries_) {
        if (same_site(e, d.stage, d.level, d.d_num, d.n, d.devices)) {
            e = std::move(d);
            return;
        }
    }
    const auto key = order_key(d);
    const auto pos = std::find_if(
        entries_.begin(), entries_.end(),
        [&](const SiteDecision &e) { return key < order_key(e); });
    entries_.insert(pos, std::move(d));
}

const SiteDecision *
TuningTable::find(std::string_view stage, size_t level, size_t d_num,
                  size_t n, size_t devices) const
{
    // A decision pinned to this exact device count wins...
    if (devices != 0) {
        for (const auto &e : entries_)
            if (same_site(e, stage, level, d_num, n, devices))
                return &e;
    }
    // ...else a device-agnostic entry matches any run.
    for (const auto &e : entries_)
        if (same_site(e, stage, level, d_num, n, 0))
            return &e;
    return nullptr;
}

std::optional<EngineId>
TuningTable::lookup(std::string_view stage, size_t level, size_t d_num,
                    size_t n, size_t devices) const
{
    if (const SiteDecision *d = find(stage, level, d_num, n, devices))
        return d->engine;
    return std::nullopt;
}

ExecPolicy
TuningTable::policy(ExecPolicy base) const
{
    // Snapshot: the policy owns an immutable copy, so it stays valid
    // after the table (or the profile run that built it) goes away.
    auto table = std::make_shared<const TuningTable>(*this);
    const EngineId fallback = base.engine;
    base.select = EngineSelect::autotune;
    base.site_engine = [table, fallback](const SiteKey &site) {
        if (auto e = table->lookup(site.stage, site.level, site.d_num,
                                   site.n, site.devices))
            return *e;
        return fallback;
    };
    return base;
}

std::string
TuningTable::to_json() const
{
    json::Writer w;
    w.begin_object();
    w.key("schema").value(kSchema);
    w.key("entries").begin_array();
    for (const auto &e : entries_) {
        w.begin_object();
        w.key("stage").value(e.stage);
        w.key("level").value(static_cast<u64>(e.level));
        w.key("d_num").value(static_cast<u64>(e.d_num));
        w.key("n").value(static_cast<u64>(e.n));
        // Additive field: absent means device-agnostic, so historical
        // neo.tune/1 documents round-trip byte-identically.
        if (e.devices != 0)
            w.key("devices").value(static_cast<u64>(e.devices));
        w.key("valid").value(e.valid);
        w.key("engine").value(EngineRegistry::name(e.engine));
        w.key("scores").begin_object();
        for (const auto &s : e.scores)
            w.key(EngineRegistry::name(s.engine)).value(s.seconds);
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

void
TuningTable::write_file(const std::string &path) const
{
    const std::string doc = to_json();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    NEO_CHECK(f != nullptr, "cannot open " + path + " for writing");
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    NEO_CHECK(std::fclose(f) == 0, "write to " + path + " failed");
}

TuningTable
TuningTable::parse(const json::Value &v)
{
    NEO_CHECK(v.at("schema").as_string() == kSchema,
              "tuning table has wrong schema (want neo.tune/1)");
    TuningTable t;
    for (const auto &ev : v.at("entries").as_array()) {
        SiteDecision d;
        d.stage = ev.at("stage").as_string();
        d.level = static_cast<size_t>(ev.at("level").as_number());
        d.d_num = static_cast<size_t>(ev.at("d_num").as_number());
        d.n = static_cast<size_t>(ev.at("n").as_number());
        if (const json::Value *devices = ev.find("devices"))
            d.devices = static_cast<size_t>(devices->as_number());
        if (const json::Value *valid = ev.find("valid"))
            d.valid = valid->as_number();
        d.engine = EngineRegistry::parse(ev.at("engine").as_string());
        if (const json::Value *scores = ev.find("scores")) {
            for (const auto &[name, sv] : scores->as_object())
                d.scores.push_back(
                    {EngineRegistry::parse(name), sv.as_number()});
        }
        t.add(std::move(d));
    }
    return t;
}

TuningTable
TuningTable::from_json(std::string_view text)
{
    return parse(json::Value::parse(text));
}

TuningTable
TuningTable::load_file(const std::string &path)
{
    return parse(json::Value::parse_file(path));
}

} // namespace neo::tune
