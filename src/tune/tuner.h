/**
 * @file
 * neo::tune::Tuner — the per-site engine autotuner.
 *
 * For every kernel site of the keyswitch pipeline (the paper's Fig
 * 3/16 observation: the engine winner flips with level, d_num, N and
 * the FP64 valid proportion), the tuner scores the three bit-exact
 * GEMM engines on the gpusim cost model and emits a TuningTable of
 * per-site decisions.
 *
 * The search is a deterministic coordinate descent per level:
 *
 *  1. Price the level's operation set (keyswitch, hmult, hrotate,
 *     rescale, double rescale) under each *uniform* engine; the
 *     per-operation minima become the targets.
 *  2. Start from the uniform engine with the best (keyswitch, total)
 *     time and sweep the stages in pipeline order, trying each engine
 *     in registry order. A move is accepted only if no operation's
 *     shortfall against its target grows and the summed shortfall
 *     (then the summed time) shrinks — so the final mix can only
 *     close gaps, never open new ones.
 *
 * Because the schedule totals are max-combinations of compute/memory
 * phases (not additive), per-stage mixing can rebalance the CUDA and
 * TCU pipes and strictly beat every uniform engine; the acceptance
 * rule guarantees the tuned keyswitch is never slower than the best
 * uniform engine at any level (the `neo.bench/1` gate's invariant).
 *
 * Everything is model-driven and deterministic: no wall-clock
 * measurements, no randomness, no thread-count dependence — the same
 * parameters always produce a byte-identical table.
 */
#pragma once

#include <string_view>
#include <vector>

#include "ckks/params.h"
#include "neo/kernel_model.h"
#include "tune/tuning_table.h"

namespace neo::tune {

/** Tuner knobs. */
struct TunerConfig
{
    /**
     * Model axes the tuned system runs under (device, fusion,
     * multistream, graph capture...). The engine / stage_engine
     * fields are ignored — choosing them is the tuner's job.
     */
    model::ModelConfig base;
    /// Coordinate-descent sweep limit (converges in 2-3 in practice).
    size_t max_passes = 8;
};

/** Per-site engine autotuner over the gpusim cost model. */
class Tuner
{
  public:
    explicit Tuner(TunerConfig cfg = {}) : cfg_(std::move(cfg)) {}

    /**
     * Tune every level of @p params (0..max_level) and add the
     * decisions to @p out. Requires KLSS parameters (the pipeline the
     * sites belong to).
     */
    void tune(const ckks::CkksParams &params, TuningTable &out) const;

    /// Convenience: a fresh table for @p params.
    TuningTable tune(const ckks::CkksParams &params) const;

  private:
    void tune_level(const ckks::CkksParams &params, size_t level,
                    TuningTable &out) const;

    TunerConfig cfg_;
};

/**
 * The stage names the tuner decides, in its coordinate (pipeline)
 * order: the keyswitch stages, then the rescale stages.
 */
const std::vector<std::string_view> &tuned_stages();

} // namespace neo::tune
