/**
 * @file
 * The per-site engine tuning table (`neo.tune/1`): the serialized
 * output of neo::tune::Tuner and the input of an autotune ExecPolicy.
 *
 * Each entry is one decision — "at kernel site (stage, level, d_num,
 * N) run engine E" — together with the per-engine modeled scores that
 * justified it, so a checked-in table is reviewable: a reader can see
 * *why* the tuner picked each engine without re-running it. Entries
 * are kept in a canonical order ((n, d_num, level, stage)) and the
 * JSON writer is deterministic, so regenerating an unchanged table is
 * a no-op diff.
 *
 * Engine selection never changes results (every engine is bit-exact);
 * a table only chooses which correct engine executes each site.
 *
 * Thread-safety model: a TuningTable is immutable after construction
 * (build/parse it once, then share by const reference or
 * `shared_ptr<const TuningTable>`). It intentionally carries no
 * mutex — the annotated-lock layer (common/mutex.h) applies to
 * mutable shared state only, and the policy() resolver closes over
 * the table by value of that const handle.
 */
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "neo/exec_policy.h"

namespace neo::tune {

/// Tuning-table schema identifier; bump on breaking layout changes.
inline constexpr const char *kSchema = "neo.tune/1";

/// Modeled score of one candidate engine at one site (seconds; lower
/// is better — the tuner's objective, not a wall-clock measurement).
struct SiteScore
{
    EngineId engine = EngineId::fp64_tcu;
    double seconds = 0;
};

/** One tuned site: the key, the decision and its justification. */
struct SiteDecision
{
    std::string stage; ///< a neo::stage name
    size_t level = 0;
    size_t d_num = 0;
    size_t n = 0;
    /// FP64 fragment valid proportion at this site (§4.5.3) —
    /// informational, not part of the lookup key.
    double valid = 0;
    /**
     * Device count this decision is pinned to; 0 — the default and
     * the only value historical tables contain — means
     * device-agnostic (matches a run with any --devices). Nonzero
     * entries win over agnostic ones at their exact device count.
     * Serialized only when nonzero, so `neo.tune/1` is unchanged.
     */
    size_t devices = 0;
    EngineId engine = EngineId::fp64_tcu; ///< the decision
    /// Per-engine scores, in EngineRegistry::ids() order.
    std::vector<SiteScore> scores;
};

/**
 * A set of per-site decisions with exact-match lookup and
 * deterministic JSON (de)serialization.
 */
class TuningTable
{
  public:
    /// Insert @p d, replacing any entry with the same key.
    void add(SiteDecision d);

    /**
     * Lookup for a run on @p devices devices (0 = "agnostic only",
     * the historical call): a decision pinned to exactly @p devices
     * wins; otherwise a device-agnostic entry (devices == 0) matches;
     * nullopt when the site was never tuned.
     */
    std::optional<EngineId> lookup(std::string_view stage, size_t level,
                                   size_t d_num, size_t n,
                                   size_t devices = 0) const;

    /// The full entry for a site (scores included); nullptr if absent.
    /// Same exact-then-agnostic device matching as lookup().
    const SiteDecision *find(std::string_view stage, size_t level,
                             size_t d_num, size_t n,
                             size_t devices = 0) const;

    /// Entries in canonical (n, d_num, level, stage) order.
    const std::vector<SiteDecision> &entries() const { return entries_; }
    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /**
     * An autotune ExecPolicy backed by a snapshot of this table.
     * @p base supplies the non-engine axes (fuse, graph) and the
     * fallback engine for sites the table has no decision for; its
     * select/site_engine fields are overwritten.
     */
    ExecPolicy policy(ExecPolicy base = {}) const;

    /// Deterministic `neo.tune/1` document (canonical entry order).
    std::string to_json() const;
    /// to_json + write to @p path (with trailing newline).
    void write_file(const std::string &path) const;

    /// Parse a `neo.tune/1` document; throws on schema/field errors.
    static TuningTable from_json(std::string_view text);
    static TuningTable parse(const json::Value &v);
    /// Parse the contents of @p path; throws if unreadable.
    static TuningTable load_file(const std::string &path);

  private:
    std::vector<SiteDecision> entries_; ///< kept in canonical order
};

/**
 * Canonical rank of a stage name in the pipeline's execution order
 * (unknown stages sort after the known ones, alphabetically). Used
 * for the table's entry ordering.
 */
size_t stage_rank(std::string_view stage);

} // namespace neo::tune
