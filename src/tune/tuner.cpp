#include "tune/tuner.h"

#include <map>
#include <string>

#include "common/check.h"
#include "gpusim/tcu_model.h"
#include "neo/engine.h"

namespace neo::tune {

namespace {

/// Accept/compare slack: far below any modeled kernel time, far above
/// double rounding noise.
constexpr double kTol = 1e-15;

const std::vector<std::string_view> &
keyswitch_stages()
{
    // neo-lint: allow(thread-unsafe-static)
    static const std::vector<std::string_view> s = {
        stage::intt_q, stage::modup_bconv,   stage::ntt_t,
        stage::ip,     stage::intt_t,        stage::recover_bconv,
        stage::moddown_bconv, stage::ntt_q};
    return s;
}

const std::vector<std::string_view> &
rescale_stages()
{
    // neo-lint: allow(thread-unsafe-static)
    static const std::vector<std::string_view> s = {stage::rescale_intt,
                                                    stage::rescale_ntt};
    return s;
}

using Assignment = std::map<std::string, EngineId, std::less<>>;

/**
 * The operation set scored at one level: every composite operation
 * whose schedule the stage engines influence. Keyswitch first — it is
 * the metric the bench gate compares.
 */
std::vector<double>
op_times(const ckks::CkksParams &params, const model::ModelConfig &base,
         const Assignment &assign, size_t level)
{
    model::ModelConfig cfg = base;
    cfg.stage_engine = [&assign](std::string_view st, size_t) {
        const auto it = assign.find(st);
        NEO_ASSERT(it != assign.end(), "untuned stage queried");
        return EngineRegistry::model_engine(it->second);
    };
    const model::KernelModel m(params, cfg);
    std::vector<double> t;
    t.push_back(m.keyswitch_time(level));
    t.push_back(m.hmult_time(level));
    t.push_back(m.hrotate_time(level));
    if (level >= 1)
        t.push_back(m.rescale_time(level));
    if (level >= 2)
        t.push_back(m.double_rescale_time(level));
    return t;
}

double
sum(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += x;
    return s;
}

/// Per-operation shortfall against the uniform-engine targets.
std::vector<double>
violations(const std::vector<double> &times,
           const std::vector<double> &targets)
{
    std::vector<double> v(times.size());
    for (size_t i = 0; i < times.size(); ++i)
        v[i] = std::max(0.0, times[i] - targets[i]);
    return v;
}

/**
 * Vector acceptance: @p cand beats @p cur iff no operation's
 * shortfall grows and (the summed shortfall shrinks, or it ties and
 * the summed time shrinks). Monotone per operation — the keyswitch
 * shortfall starts at zero and can never become positive.
 */
bool
accepts(const std::vector<double> &cand_v, double cand_sum,
        const std::vector<double> &cur_v, double cur_sum)
{
    for (size_t i = 0; i < cand_v.size(); ++i)
        if (cand_v[i] > cur_v[i] + kTol)
            return false;
    const double vc = sum(cand_v);
    const double vb = sum(cur_v);
    if (vc < vb - kTol)
        return true;
    return vc <= vb + kTol && cand_sum < cur_sum - kTol;
}

} // namespace

const std::vector<std::string_view> &
tuned_stages()
{
    // neo-lint: allow(thread-unsafe-static)
    static const std::vector<std::string_view> all = [] {
        std::vector<std::string_view> s = keyswitch_stages();
        for (auto st : rescale_stages())
            s.push_back(st);
        return s;
    }();
    return all;
}

void
Tuner::tune_level(const ckks::CkksParams &params, size_t level,
                  TuningTable &out) const
{
    const auto &engines = EngineRegistry::ids();

    // 1. Uniform baselines and the per-operation targets.
    std::vector<std::vector<double>> uniform(engines.size());
    Assignment assign;
    for (size_t e = 0; e < engines.size(); ++e) {
        for (auto st : tuned_stages())
            assign[std::string(st)] = engines[e];
        uniform[e] = op_times(params, cfg_.base, assign, level);
    }
    std::vector<double> targets = uniform[0];
    for (size_t e = 1; e < engines.size(); ++e)
        for (size_t i = 0; i < targets.size(); ++i)
            targets[i] = std::min(targets[i], uniform[e][i]);

    // 2. Start from the uniform engine with the best (keyswitch,
    // total) time; registry order breaks exact ties.
    size_t start = 0;
    for (size_t e = 1; e < engines.size(); ++e) {
        if (uniform[e][0] < uniform[start][0] - kTol ||
            (uniform[e][0] <= uniform[start][0] + kTol &&
             sum(uniform[e]) < sum(uniform[start]) - kTol))
            start = e;
    }
    for (auto st : tuned_stages())
        assign[std::string(st)] = engines[start];
    std::vector<double> cur = uniform[start];
    std::vector<double> cur_v = violations(cur, targets);
    double cur_sum = sum(cur);

    // 3. Coordinate descent: stages in pipeline order, candidate
    // engines in registry order, vector acceptance.
    for (size_t pass = 0; pass < cfg_.max_passes; ++pass) {
        bool changed = false;
        for (auto st : tuned_stages()) {
            const auto slot = assign.find(st);
            const EngineId before = slot->second;
            EngineId best = before;
            for (EngineId cand : engines) {
                if (cand == best)
                    continue;
                slot->second = cand;
                const auto t = op_times(params, cfg_.base, assign, level);
                const auto v = violations(t, targets);
                const double s = sum(t);
                if (accepts(v, s, cur_v, cur_sum)) {
                    best = cand;
                    cur = t;
                    cur_v = v;
                    cur_sum = s;
                }
                slot->second = best;
            }
            changed = changed || best != before;
        }
        if (!changed)
            break;
    }

    // 4. Emit one decision per stage, with per-engine scores (the
    // operation-set total with only that stage's engine swapped).
    const double valid = gpusim::TcuModel::valid_proportion_fp64(
        params.batch, params.beta_tilde(level), params.beta(level));
    for (auto st : tuned_stages()) {
        const bool rescale_only =
            st == std::string_view(stage::rescale_intt) ||
            st == std::string_view(stage::rescale_ntt);
        if (rescale_only && level < 1)
            continue; // no rescale operation exists at level 0
        SiteDecision d;
        d.stage = std::string(st);
        d.level = level;
        d.d_num = params.d_num;
        d.n = params.n;
        d.valid = valid;
        auto slot = assign.find(st);
        d.engine = slot->second;
        const EngineId chosen = slot->second;
        for (EngineId e : engines) {
            slot->second = e;
            d.scores.push_back(
                {e, sum(op_times(params, cfg_.base, assign, level))});
        }
        slot->second = chosen;
        out.add(std::move(d));
    }
}

void
Tuner::tune(const ckks::CkksParams &params, TuningTable &out) const
{
    NEO_CHECK(params.klss.enabled(),
              "the tuner targets the KLSS keyswitch pipeline");
    for (size_t l = 0; l <= params.max_level; ++l)
        tune_level(params, l, out);
}

TuningTable
Tuner::tune(const ckks::CkksParams &params) const
{
    TuningTable t;
    tune(params, t);
    return t;
}

} // namespace neo::tune
