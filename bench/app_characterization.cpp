/**
 * Workload characterization: the operation mix each application
 * schedule issues (the inputs behind Table 5), the per-op cost on
 * Neo, and the resulting time breakdown — making the schedule
 * assumptions auditable rather than baked into opaque totals.
 */
#include "apps/schedules.h"
#include "baselines/backends.h"
#include "bench_util.h"

using namespace neo;
using namespace neo::apps;

namespace {

void
characterize(const char *name, const Schedule &s,
             const model::KernelModel &m, bench::Report &report)
{
    std::printf("%s (embedded bootstraps: %.0f)\n", name, s.bootstraps);
    struct Kind
    {
        OpKind op;
        const char *label;
    };
    const Kind kinds[] = {
        {OpKind::hmult, "HMULT"},     {OpKind::hrotate, "HROTATE"},
        {OpKind::pmult, "PMULT"},     {OpKind::hadd, "HADD"},
        {OpKind::padd, "PADD"},       {OpKind::rescale, "Rescale"},
        {OpKind::double_rescale, "DS"},
    };
    TextTable t;
    t.header({"op", "count", "share of time"});
    const double total = run_schedule(s, m);
    for (const auto &k : kinds) {
        double cnt = 0, time = 0;
        for (const auto &o : s.ops) {
            if (o.op != k.op)
                continue;
            cnt += o.count;
            double per = 0;
            switch (o.op) {
              case OpKind::hmult:
                per = m.hmult_time(o.level);
                break;
              case OpKind::hrotate:
                per = m.hrotate_time(o.level);
                break;
              case OpKind::pmult:
                per = m.pmult_time(o.level);
                break;
              case OpKind::hadd:
                per = m.hadd_time(o.level);
                break;
              case OpKind::padd:
                per = m.padd_time(o.level);
                break;
              case OpKind::rescale:
                per = m.rescale_time(o.level);
                break;
              case OpKind::double_rescale:
                per = m.double_rescale_time(o.level);
                break;
            }
            time += per * o.count;
        }
        if (cnt > 0)
            t.row({k.label, strfmt("%.0f", cnt),
                   strfmt("%5.1f%%", 100 * time / total)});
    }
    t.print();
    std::printf("total: %s\n\n", format_time(total).c_str());
    report.metric(strfmt("%s.total_s", name), total);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "app_characterization",
                         "application op mixes (Neo/Set-C)");
    bench::banner("Characterization", "application op mixes (Neo/Set-C)");
    auto b = baselines::make_neo('C');
    auto m = b.model();
    characterize("PackBootstrap", pack_bootstrap(b.params), m, report);
    characterize("HELR", helr_iteration(b.params), m, report);
    characterize("ResNet-20", resnet(b.params, 20), m, report);
    std::printf("Note: KeySwitch-bearing ops (HMULT/HROTATE) dominate — "
                "the premise of the paper's optimization focus.\n");
    report.write();
    return 0;
}
