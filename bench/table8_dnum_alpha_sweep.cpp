/**
 * Table 8 — KeySwitch time under the d_num × α̃ sweep (other
 * parameters per Set-B, KLSS at WordSize_T = 48). The paper's optimum
 * is d_num = 9, α̃ = 5 (3.22 ms).
 */
#include "baselines/backends.h"
#include "bench_util.h"

using namespace neo;

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "table8",
                         "KeySwitch time across d_num and alpha~");
    bench::banner("Table 8", "KeySwitch time (ms) across d_num and alpha~");
    model::ModelConfig cfg; // Neo full configuration

    const size_t d_nums[] = {4, 6, 9, 12, 18};
    TextTable t;
    std::vector<std::string> head = {"alpha~ \\ d_num"};
    for (size_t d : d_nums)
        head.push_back(strfmt("%zu", d));
    t.header(head);

    double best = 1e18;
    size_t best_d = 0, best_a = 0;
    for (size_t at = 4; at <= 10; ++at) {
        std::vector<std::string> row = {strfmt("%zu", at)};
        for (size_t d : d_nums) {
            ckks::CkksParams p = ckks::paper_set('B');
            p.d_num = d;
            p.klss.word_size_t = 48;
            p.klss.alpha_tilde = at;
            model::KernelModel m(p, cfg);
            const double ms = m.keyswitch_time(p.max_level) * 1e3;
            if (ms < best) {
                best = ms;
                best_d = d;
                best_a = at;
            }
            row.push_back(strfmt("%.3f", ms));
        }
        t.row(row);
    }
    t.print();
    std::printf("\nModel optimum: d_num=%zu, alpha~=%zu at %.3f ms "
                "(paper optimum: d_num=9, alpha~=5 at 3.22 ms).\n",
                best_d, best_a, best);
    report.metric("best.keyswitch_s", best * 1e-3);
    report.note("best.d_num", strfmt("%zu", best_d));
    report.note("best.alpha_tilde", strfmt("%zu", best_a));
    report.write();
    return 0;
}
