/**
 * Table 7 — kernel throughput (#kernels/second) for BConv, IP and
 * NTT under Set-B parameters: TensorFHE's element-wise / INT8-TCU
 * mappings vs Neo's matrix-form / FP64-TCU mappings on identical
 * kernel shapes. Paper speedups: 2.74× (BConv), 2.60× (IP), 3.74×
 * (NTT).
 */
#include <vector>

#include "baselines/backends.h"
#include "bench_util.h"
#include "neo/engine.h"
#include "neo/pipeline.h"

using namespace neo;

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "table7",
                         "Kernel throughput under Set-B shapes");
    bench::banner("Table 7", "Kernel throughput under Set-B shapes");
    const auto params = ckks::paper_set('B');
    const size_t l = params.max_level;
    const size_t alpha = params.alpha();        // 12
    const size_t ext = l + 1 + alpha;           // 48
    const size_t beta = params.beta(l);         // 3

    auto tfhe = baselines::make_tensorfhe('B');
    auto neo = baselines::make_neo('C');
    // Same parameter set so the kernels have identical shapes.
    neo.params = params;
    neo.cfg.use_klss = false;
    // --engine overrides the Neo column's GEMM engine; "auto" prices
    // each kernel under every registry engine and keeps the fastest
    // (the per-site decision the tuner would make for that shape).
    if (!opts.policy.is_auto())
        neo.cfg.engine = EngineRegistry::model_engine(opts.policy.engine);
    report.note("neo_engine", std::string(opts.policy.engine_name()));
    model::KernelModel m_t(tfhe.params, tfhe.cfg);
    const auto &dev = tfhe.cfg.device;

    std::vector<model::KernelModel> neo_models;
    if (opts.policy.is_auto()) {
        for (const EngineId id : EngineRegistry::ids()) {
            auto cfg = neo.cfg;
            cfg.engine = EngineRegistry::model_engine(id);
            neo_models.emplace_back(neo.params, cfg);
        }
    } else {
        neo_models.emplace_back(neo.params, neo.cfg);
    }
    // Price one kernel under the active policy: the fixed model, or
    // the fastest engine for this shape under --engine auto.
    auto neo_cost = [&](auto &&kernel_of) {
        gpusim::KernelCost best = kernel_of(neo_models.front());
        for (size_t i = 1; i < neo_models.size(); ++i) {
            auto c = kernel_of(neo_models[i]);
            if (c.time(dev, true) < best.time(dev, true))
                best = c;
        }
        return best;
    };

    TextTable t;
    t.header({"kernel", "TensorFHE /s", "Neo /s", "speedup", "paper"});

    auto rate = [&](const gpusim::KernelCost &c, bool overlap) {
        // Throughput per batched kernel invocation.
        return 1.0 / c.time(dev, overlap);
    };

    {
        auto kt = m_t.bconv(alpha, ext - alpha, params.word_size,
                            params.word_size);
        auto kn = neo_cost([&](const model::KernelModel &m) {
            return m.bconv(alpha, ext - alpha, params.word_size,
                           params.word_size);
        });
        double rt = rate(kt, false), rn = rate(kn, true);
        t.row({"BConv", strfmt("%.0f", rt), strfmt("%.0f", rn),
               strfmt("%.2fx", rn / rt), "2.74x"});
        report.metric("neo.bconv.kernel_s", kn.time(dev, true));
    }
    {
        auto kt = m_t.ip(beta, 1, ext, params.word_size);
        auto kn = neo_cost([&](const model::KernelModel &m) {
            return m.ip(beta, 1, ext, params.word_size);
        });
        double rt = rate(kt, false), rn = rate(kn, true);
        t.row({"IP", strfmt("%.0f", rt), strfmt("%.0f", rn),
               strfmt("%.2fx", rn / rt), "2.60x"});
        report.metric("neo.ip.kernel_s", kn.time(dev, true));
    }
    {
        auto kt = m_t.ntt(1, params.word_size);
        auto kn = neo_cost([&](const model::KernelModel &m) {
            return m.ntt(1, params.word_size);
        });
        double rt = rate(kt, false), rn = rate(kn, true);
        t.row({"NTT", strfmt("%.0f", rt), strfmt("%.0f", rn),
               strfmt("%.2fx", rn / rt), "3.74x"});
        report.metric("neo.ntt.kernel_s", kn.time(dev, true));
    }
    t.print();
    std::printf("\nPaper reference: #BConv 311526 -> 854700; #IP 621762 -> "
                "1617978; #NTT 25478 -> 95329 per second.\n");

    // Analytic kernel-invocation counts for one functional
    // keyswitch_klss_pipeline run. A traced run (NEO_TRACE=summary)
    // records exactly these numbers as span.gemm / span.ntt /
    // span.bconv / span.ip — tests/obs_test asserts the equality.
    {
        ckks::CkksParams fp = ckks::CkksParams::test_params(256, 5, 2);
        ckks::CkksContext ctx(fp);
        const size_t lvl = ctx.max_level();
        auto c = keyswitch_pipeline_kernel_counts(ctx, lvl);
        std::printf("\nAnalytic kernel invocations per KLSS KeySwitch "
                    "(functional pipeline, N=%zu, level %zu):\n",
                    ctx.n(), lvl);
        TextTable a;
        a.header({"kernel", "invocations"});
        a.row({"GEMM", strfmt("%llu", (unsigned long long)c.gemm)});
        a.row({"NTT", strfmt("%llu", (unsigned long long)c.ntt)});
        a.row({"BConv", strfmt("%llu", (unsigned long long)c.bconv)});
        a.row({"IP", strfmt("%llu", (unsigned long long)c.ip)});
        a.print();
        report.metric("keyswitch.spans.gemm", static_cast<double>(c.gemm));
        report.metric("keyswitch.spans.ntt", static_cast<double>(c.ntt));
        report.metric("keyswitch.spans.bconv",
                      static_cast<double>(c.bconv));
        report.metric("keyswitch.spans.ip", static_cast<double>(c.ip));
    }
    report.write();
    return 0;
}
