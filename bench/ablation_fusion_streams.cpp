/**
 * Design-choice ablation beyond Fig 14: §4.6's two "other
 * optimization approaches" — kernel fusion and multi-stream
 * processing — plus the §4.5.3 IP mapping gate, each toggled
 * independently on the full Neo configuration.
 */
#include "apps/schedules.h"
#include "baselines/backends.h"
#include "gpusim/event_sim.h"
#include "bench_util.h"

using namespace neo;

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "ablation",
                         "kernel fusion / multi-stream / IP gate");
    bench::banner("Ablation", "kernel fusion / multi-stream / IP gate");
    auto base = baselines::make_neo('C');

    struct Variant
    {
        const char *name;
        model::ModelConfig cfg;
    };
    std::vector<Variant> variants;
    variants.push_back({"Neo (all on)", base.cfg});
    {
        auto c = base.cfg;
        c.kernel_fusion = false;
        variants.push_back({"- kernel fusion", c});
    }
    {
        auto c = base.cfg;
        c.multistream = false;
        variants.push_back({"- multi-stream", c});
    }
    {
        auto c = base.cfg;
        c.kernel_fusion = false;
        c.multistream = false;
        variants.push_back({"- both", c});
    }
    {
        auto c = base.cfg;
        c.ip_tcu_threshold = 2.0; // IP always on CUDA cores
        variants.push_back({"IP always CUDA", c});
    }
    {
        auto c = base.cfg;
        c.ip_tcu_threshold = 0.0; // IP always on the TCU
        variants.push_back({"IP always TCU", c});
    }

    TextTable t;
    t.header({"variant", "KeySwitch", "HMULT", "PackBootstrap",
              "vs Neo"});
    double base_time = 0;
    for (const auto &v : variants) {
        model::KernelModel m(base.params, v.cfg);
        const double ks = m.keyswitch_time(base.params.max_level);
        const double hm = m.hmult_time(base.params.max_level);
        const double boot =
            apps::run_schedule(apps::pack_bootstrap(base.params), m);
        if (base_time == 0) {
            base_time = boot;
            report.metric("neo.keyswitch_s", ks);
            report.metric("neo.hmult_s", hm);
            report.metric("neo.bootstrap_s", boot);
        }
        t.row({v.name, format_time(ks), format_time(hm),
               format_time(boot), strfmt("%.3fx", boot / base_time)});
    }
    t.print();

    // Hoisting: 16 rotations of one ciphertext (a BSGS inner loop),
    // individually vs with a shared ModUp.
    model::KernelModel m(base.params, base.cfg);
    const size_t l = base.params.max_level;
    const double individual = 16 * m.hrotate_time(l);
    const double hoisted = m.hrotate_hoisted_time(l, 16);
    std::printf("\nHoisting (16 rotations at l=%zu): individual %s vs "
                "hoisted %s (%.2fx)\n",
                l, format_time(individual).c_str(),
                format_time(hoisted).c_str(), individual / hoisted);
    report.metric("hoisted16.total_s", hoisted);

    // Fluid event simulation of two batch-halves issued on two
    // streams: cross-checks the aggregate multi-stream model on the
    // real KeySwitch kernel sequence.
    {
        auto kernels = m.keyswitch_kernels(l);
        gpusim::EventSimulator sim(base.cfg.device);
        const double fluid =
            sim.run_queues({kernels, kernels}).makespan;
        const double serial =
            2 * gpusim::run_schedule(kernels, base.cfg.device, false)
                    .seconds;
        std::printf("\nFluid stream simulation (2 batch-halves, 2 "
                    "streams): %s vs %s serial (%.2fx overlap gain)\n",
                    format_time(fluid).c_str(),
                    format_time(serial).c_str(), serial / fluid);
        report.metric("fluid.two_stream_s", fluid);
    }

    std::printf("\nPaper reference (§4.6/§4.5.3): fusion removes "
                "intermediate traffic and launches; multi-stream fills "
                "TCU stalls with CUDA work; the 80%% valid-proportion "
                "gate picks IP's engine per level.\n");
    report.write();
    return 0;
}
