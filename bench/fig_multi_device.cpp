/**
 * Multi-device crossover sweep: modeled keyswitch time for parameter
 * sets A–H sharded over 1/2/4/8 devices on the NVLink and PCIe
 * presets. The question (Fig 2's bandwidth argument, scaled out): at
 * which parameter scale does the collective traffic a shard exchanges
 * cost less than the DRAM passes it saves? One table per fabric, plus
 * flat metrics (`<set>.d<N>.<fabric>.s` and speedups) that the CI
 * artifact gates on.
 */
#include "ckks/paper_params.h"
#include "gpusim/topology.h"
#include "neo/shard.h"
#include "bench_util.h"

using namespace neo;

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "fig_multi_device",
                         "multi-device keyswitch crossover sweep");
    bench::banner("MultiDevice",
                  "sharded keyswitch crossover (sets A-H, NVLink vs "
                  "PCIe)");

    const size_t device_counts[] = {1, 2, 4, 8};
    char best_set = '?';
    double best_speedup = 0;
    size_t crossovers = 0;

    for (const auto ic :
         {gpusim::Interconnect::nvlink, gpusim::Interconnect::pcie}) {
        const char *fabric = gpusim::interconnect_name(ic);
        std::printf("\n-- %s fabric --\n", fabric);
        TextTable t;
        t.header({"set", "1 dev", "2 dev", "4 dev", "8 dev",
                  "best speedup", "comm bytes (2 dev)"});
        for (const char set : ckks::kPaperSets) {
            const auto params = ckks::paper_set(set);
            if (!params.klss.enabled()) {
                // No α̃: the set has no KLSS key-digit structure to
                // shard (sets A/B/E/F/H are baseline configurations).
                t.row({std::string(1, set), "-", "-", "-", "-", "-",
                       "-"});
                continue;
            }
            model::ModelConfig cfg;
            cfg.interconnect = ic;
            std::vector<std::string> cells;
            cells.push_back(std::string(1, set));
            double single = 0;
            double best = 0;
            double comm2 = 0;
            for (const size_t d : device_counts) {
                cfg.devices = d;
                const auto sc = shard::model_sharded_keyswitch(
                    params, params.max_level, cfg);
                if (d == 1)
                    single = sc.single_seconds;
                if (d == 2)
                    comm2 = sc.plan.total_bytes();
                const double speedup =
                    sc.seconds > 0 ? single / sc.seconds : 0;
                if (d > 1)
                    best = std::max(best, speedup);
                cells.push_back(d == 1
                                    ? format_time(single)
                                    : strfmt("%s (%.2fx)",
                                             format_time(sc.seconds)
                                                 .c_str(),
                                             speedup));
                report.metric(strfmt("%c.d%zu.%s.s", set, d, fabric),
                              d == 1 ? single : sc.seconds);
                if (d > 1 && ic == gpusim::Interconnect::nvlink &&
                    sc.seconds < single) {
                    ++crossovers;
                    if (speedup > best_speedup) {
                        best_speedup = speedup;
                        best_set = set;
                    }
                }
            }
            cells.push_back(strfmt("%.2fx", best));
            cells.push_back(format_bytes(comm2));
            t.row(cells);
            report.metric(strfmt("%c.best_speedup.%s", set, fabric),
                          best);
        }
        t.print();
    }

    std::printf("\nCrossover: %zu NVLink shard points beat "
                "single-device; best %.2fx at set %c. The PCIe ring's "
                "collective bill shifts the crossover to larger "
                "parameter sets.\n",
                crossovers, best_speedup, best_set);
    report.metric("crossover.points", static_cast<double>(crossovers));
    report.metric("crossover.best_speedup", best_speedup);
    report.note("sets", "A-H (Table 5 parameters)");
    report.note("fabrics", "nvlink (FC, 300 GB/s egress), pcie "
                           "(ring, 25 GB/s)");
    report.write();
    return crossovers > 0 ? 0 : 1;
}
