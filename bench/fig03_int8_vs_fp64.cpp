/**
 * Fig 3 — time to emulate a wide-integer matrix multiplication of
 * shape 2^19 × 16 × 16 through the INT8 vs the FP64 tensor-core
 * pipes, broken into the three steps (bit-split, matrix multiply,
 * merge). The paper reports FP64 1.65× faster at WordSize 36 and
 * 1.74× at 48.
 */
#include <algorithm>
#include <chrono>

#include "bench_util.h"
#include "common/random.h"
#include "gpusim/tcu_model.h"
#include "neo/kernel_model.h"
#include "rns/primes.h"
#include "tensor/bitslice.h"
#include "tensor/gemm.h"

using namespace neo;

namespace {

struct Steps
{
    double split, matmul, merge;

    double total() const { return split + matmul + merge; }
};

Steps
fp64_steps(const gpusim::DeviceSpec &d, size_t m, size_t n, size_t k,
           int word)
{
    const SplitPlan plan = choose_fp64_split(word, word, k);
    const double macs = static_cast<double>(gpusim::TcuModel::padded_macs(
                            m, n, k, gpusim::kFp64Fragment)) *
                        plan.products();
    Steps s;
    s.split = 2.0 *
              (plan.a_planes * static_cast<double>(m) * k +
               plan.b_planes * static_cast<double>(k) * n) /
              d.int_op_rate();
    s.matmul = macs / d.tcu_fp64_fma_rate();
    s.merge = d.int_ops_per_merge * plan.products() *
              static_cast<double>(m) * n / d.int_op_rate();
    return s;
}

Steps
int8_steps(const gpusim::DeviceSpec &d, size_t m, size_t n, size_t k,
           int word)
{
    const SplitPlan plan = choose_int8_split(word, word, k);
    u64 best = ~0ULL;
    for (const auto &f : gpusim::kInt8Fragments)
        best = std::min(best, gpusim::TcuModel::padded_macs(m, n, k, f));
    Steps s;
    s.split = 2.0 *
              (plan.a_planes * static_cast<double>(m) * k +
               plan.b_planes * static_cast<double>(k) * n) /
              d.int_op_rate();
    s.matmul = static_cast<double>(best) * plan.products() /
               d.tcu_int8_mac_rate();
    s.merge = d.int_ops_per_merge * plan.products() *
              static_cast<double>(m) * n / d.int_op_rate();
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "fig03",
                         "INT8 vs FP64 wide-word GEMM (2^19 x 16 x 16)");
    bench::banner("Fig 3",
                  "INT8 vs FP64 wide-word GEMM (2^19 x 16 x 16)");
    const auto dev = gpusim::DeviceSpec::a100();
    const size_t m = 1ULL << 19, n = 16, k = 16;

    TextTable t;
    t.header({"WordSize", "engine", "splits", "split", "matmul", "merge",
              "total"});
    for (int word : {36, 48}) {
        Steps f = fp64_steps(dev, m, n, k, word);
        Steps i = int8_steps(dev, m, n, k, word);
        t.row({strfmt("%d", word), "FP64",
               strfmt("%d", choose_fp64_split(word, word, k).products()),
               format_time(f.split), format_time(f.matmul),
               format_time(f.merge), format_time(f.total())});
        t.row({strfmt("%d", word), "INT8",
               strfmt("%d", choose_int8_split(word, word, k).products()),
               format_time(i.split), format_time(i.matmul),
               format_time(i.merge), format_time(i.total())});
        std::printf("WS=%d: INT8/FP64 total ratio = %.2fx (paper: %.2fx)\n",
                    word, i.total() / f.total(), word == 36 ? 1.65 : 1.74);
        report.metric(strfmt("ws%d.fp64.total_s", word), f.total());
        report.metric(strfmt("ws%d.int8.total_s", word), i.total());
    }
    t.print();
    std::printf("\nPaper reference: 36-bit needs 3 FP64 GEMMs vs 25 INT8 "
                "GEMMs; 48-bit needs 4 vs 36.\n");

    // Measured host-emulation wall time of the FP64 bit-sliced pipe
    // (reduced M so a repeat sweep stays fast). --repeat N records the
    // p50/p95/max spread into the artifact's "dist" sub-object; the
    // "wall" key keeps the default baseline compare from gating it.
    {
        Modulus q(generate_ntt_primes(48, 1, 1 << 10)[0]);
        const size_t em = 1 << 12;
        Rng rng(11);
        auto a = rng.uniform_vec(em * k, q.value());
        auto b = rng.uniform_vec(k * n, q.value());
        std::vector<u64> c(em * n);
        std::vector<double> samples(opts.repeat);
        for (auto &s : samples) {
            const auto t0 = std::chrono::steady_clock::now();
            fp64_sliced_matmul(a.data(), b.data(), c.data(), em, n, k, q);
            s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
        }
        std::sort(samples.begin(), samples.end());
        std::printf("\nHost emulation (FP64 pipe, %zu x %zu x %zu, "
                    "%zu run%s): median %.3f ms\n",
                    em, n, k, opts.repeat, opts.repeat == 1 ? "" : "s",
                    1e3 * samples[samples.size() / 2]);
        report.sample("ws48.fp64.emulated_wall_s", std::move(samples));
    }
    report.write();
    return 0;
}
