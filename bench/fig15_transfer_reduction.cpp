/**
 * Fig 15 — DRAM traffic of the BConv and IP kernels before vs after
 * the algorithm + data-layout optimization, across levels (Set-C).
 * The matrix forms fetch every datum exactly once, so the reduction
 * factor approaches α' (BConv) and β̃ (IP).
 */
#include "baselines/backends.h"
#include "bench_util.h"

using namespace neo;

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "fig15",
                         "BConv/IP data transfer, original vs optimized");
    bench::banner("Fig 15", "BConv/IP data transfer, original vs optimized");
    const auto params = ckks::paper_set('C');
    const size_t alpha = params.alpha();
    const size_t ap = params.klss_alpha_prime();
    const int wt = params.klss.word_size_t;

    model::ModelConfig opt_cfg;
    model::ModelConfig orig_cfg;
    orig_cfg.matmul_dataflow = false;
    model::KernelModel opt(params, opt_cfg);
    model::KernelModel orig(params, orig_cfg);

    TextTable t;
    t.header({"l", "BConv orig", "BConv opt", "reduction", "IP orig",
              "IP opt", "reduction"});
    for (i64 l = static_cast<i64>(params.max_level); l >= 3; l -= 8) {
        const size_t beta = params.beta(l);
        const size_t bt = params.beta_tilde(l);
        // Per KeySwitch: β ModUp conversions plus the two Recover
        // Limbs conversions.
        double b_orig = beta * orig.bconv(alpha, ap, params.word_size, wt)
                                   .bytes() +
                        2 * orig.bconv(ap, l + 1 + alpha, wt,
                                       params.word_size)
                                .bytes();
        double b_opt = beta * opt.bconv(alpha, ap, params.word_size, wt)
                                  .bytes() +
                       2 * opt.bconv(ap, l + 1 + alpha, wt,
                                     params.word_size)
                               .bytes();
        double i_orig = orig.ip(beta, bt, ap, wt).bytes();
        double i_opt = opt.ip(beta, bt, ap, wt).bytes();
        t.row({strfmt("%zu", l), format_bytes(b_orig),
               format_bytes(b_opt), strfmt("%.2fx", b_orig / b_opt),
               format_bytes(i_orig), format_bytes(i_opt),
               strfmt("%.2fx", i_orig / i_opt)});
        if (static_cast<size_t>(l) == params.max_level) {
            report.metric("bconv.opt.l35.bytes", b_opt);
            report.metric("ip.opt.l35.bytes", i_opt);
        }
    }
    t.print();
    std::printf("\nPaper reference: the upper (optimized) bars shrink "
                "several-fold relative to the original kernels.\n");
    report.write();
    return 0;
}
