/**
 * Functional noise study (beyond the paper's tables, supporting its
 * §2.1/§3.2 precision argument): measured noise in bits across the
 * operation chain at WordSize 36, including the Double Rescale (DS)
 * discipline that SHARP showed is required below ~36 bits — and a
 * comparison of the two key-switch methods' noise.
 *
 * Runs the *functional* library at reduced ring degree; every number
 * is measured against the exact expected plaintext.
 */
#include <cmath>

#include "bench_util.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/noise.h"

using namespace neo;
using namespace neo::ckks;

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "noise_study",
                         "measured noise bits (N=256, 36-bit)");
    bench::banner("Noise study", "measured noise bits (N=256, 36-bit)");
    CkksParams params = CkksParams::test_params(256, 7, 2);
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 9);
    SecretKey sk = keygen.secret_key();
    PublicKey pk = keygen.public_key(sk);
    EvalKeyBundle keys =
        keygen.eval_key_bundle(sk, {}, false, /*with_klss=*/true);
    Encryptor enc(ctx);
    NoiseInspector probe(ctx, sk, keygen);
    Evaluator ev_h(ctx, KeySwitchMethod::hybrid);
    Evaluator ev_k(ctx, KeySwitchMethod::klss);

    Rng rng(12);
    const size_t slots = ctx.encoder().slot_count();
    std::vector<Complex> a(slots);
    for (auto &x : a)
        x = Complex(2 * rng.uniform_real() - 1, 0);
    auto sq = a;
    for (auto &x : sq)
        x *= x;
    auto quad = sq;
    for (auto &x : quad)
        x *= x;

    Ciphertext ca = enc.encrypt(ctx.encode(a, 7), pk);

    TextTable t;
    t.header({"state", "noise (bits)", "budget (bits)"});
    auto row = [&](const char *label, const Ciphertext &ct,
                   const std::vector<Complex> &want) {
        t.row({label, strfmt("%6.1f", probe.noise_bits(ct, want)),
               strfmt("%6.1f", probe.budget_bits(ct, want))});
    };
    row("fresh (public key)", ca, a);

    report.metric("fresh.noise_bits", probe.noise_bits(ca, a));

    Ciphertext mul_h = ev_h.mul(ca, ca, keys);
    row("after HMULT (hybrid KS)", mul_h, sq);
    Ciphertext mul_k = ev_k.mul(ca, ca, keys);
    row("after HMULT (KLSS KS)", mul_k, sq);
    report.metric("hmult.hybrid.noise_bits", probe.noise_bits(mul_h, sq));
    report.metric("hmult.klss.noise_bits", probe.noise_bits(mul_k, sq));

    Ciphertext rs = ev_h.rescale(mul_h);
    row("after Rescale", rs, sq);

    Ciphertext mul2 = ev_h.mul(rs, rs, keys);
    Ciphertext ds = ev_h.double_rescale(mul2);
    row("after 2nd HMULT + DS", ds, quad);
    t.print();
    report.metric("chain.final.noise_bits", probe.noise_bits(ds, quad));

    std::printf("\nObservations: both key-switch methods add noise of "
                "the same order; Rescale trades modulus bits for noise "
                "bits; DS burns two levels to keep the scale in range "
                "at WordSize 36 — the discipline §2.1 describes.\n");
    report.write();
    return 0;
}
