#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/json.h"
#include "common/thread_pool.h"
#include "neo/engine.h"

namespace neo::bench {

void
banner(const char *id, const char *what)
{
    std::printf("=== %s — %s ===\n", id, what);
}

size_t
use_threads(size_t threads)
{
    ThreadPool::set_global_threads(threads);
    return ThreadPool::global().threads();
}

std::string
vs_paper(double ours, double paper)
{
    return strfmt("%8.3f (paper %7.3f)", ours, paper);
}

Options
Options::parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires an argument\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(a, "--json") == 0) {
            o.json_path = next("--json");
        } else if (std::strcmp(a, "--threads") == 0) {
            o.threads = static_cast<size_t>(
                std::atoll(next("--threads")));
        } else if (std::strcmp(a, "--repeat") == 0) {
            o.repeat = static_cast<size_t>(
                std::atoll(next("--repeat")));
            if (o.repeat == 0)
                o.repeat = 1;
        } else if (std::strcmp(a, "--engine") == 0) {
            const char *name = next("--engine");
            if (std::strcmp(name, "auto") == 0) {
                o.policy.select = EngineSelect::autotune;
            } else if (auto id = EngineRegistry::try_parse(name)) {
                o.policy.select = EngineSelect::fixed;
                o.policy.engine = *id;
            } else {
                std::fprintf(stderr,
                             "unknown engine '%s' (valid: %s | auto)\n",
                             name,
                             EngineRegistry::help_list().c_str());
                std::exit(2);
            }
        } else if (std::strcmp(a, "--help") == 0 ||
                   std::strcmp(a, "-h") == 0) {
            std::printf("usage: %s [--json PATH] [--threads N]"
                        " [--repeat N] [--engine %s | auto]\n",
                        argv[0],
                        EngineRegistry::help_list().c_str());
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument %s "
                                 "(try --help)\n", a);
            std::exit(2);
        }
    }
    if (o.threads != 0)
        use_threads(o.threads);
    return o;
}

Report::Report(const Options &opts, const char *id, const char *title)
    : json_path_(opts.json_path), id_(id), title_(title)
{
}

void
Report::metric(std::string_view name, double value)
{
    metrics_.emplace_back(std::string(name), value);
}

void
Report::sample(std::string_view name, std::vector<double> samples)
{
    if (samples.empty())
        return;
    std::sort(samples.begin(), samples.end());
    const size_t n = samples.size();
    metric(name, samples[n / 2]);
    if (n > 1) {
        Dist d;
        d.p50 = samples[n / 2];
        d.p95 = samples[(19 * n + 19) / 20 - 1];
        d.max = samples.back();
        dists_.emplace_back(std::string(name), d);
    }
}

void
Report::note(std::string_view key, std::string_view value)
{
    notes_.emplace_back(std::string(key), std::string(value));
}

std::string
Report::write() const
{
    if (json_path_.empty())
        return {};
    json::Writer w;
    w.begin_object();
    w.key("schema").value("neo.bench/1");
    w.key("kind").value("bench");
    w.key("id").value(id_);
    w.key("title").value(title_);
    w.key("notes").begin_object();
    for (const auto &[k, v] : notes_)
        w.key(k).value(v);
    w.end_object();
    w.key("metrics").begin_object();
    for (const auto &[k, v] : metrics_)
        w.key(k).value(v);
    w.end_object();
    if (!dists_.empty()) {
        w.key("dist").begin_object();
        for (const auto &[k, d] : dists_) {
            w.key(k).begin_object();
            w.key("p50").value(d.p50);
            w.key("p95").value(d.p95);
            w.key("max").value(d.max);
            w.end_object();
        }
        w.end_object();
    }
    w.end_object();
    w.write_file(json_path_);
    std::printf("\nwrote %s\n", json_path_.c_str());
    return json_path_;
}

} // namespace neo::bench
