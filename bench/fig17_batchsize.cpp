/**
 * Fig 17 — sensitivity of per-batch application time to BatchSize
 * (8..128, Set-B-consistent; Set-C chain for Neo). Larger batches
 * amortize launches and raise parallelism, so per-ciphertext time
 * decreases monotonically; 128 is the memory-capacity limit.
 */
#include "apps/schedules.h"
#include "baselines/backends.h"
#include "bench_util.h"

using namespace neo;

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "fig17",
                         "BatchSize sensitivity (normalised to 128)");
    bench::banner("Fig 17", "BatchSize sensitivity (normalised to 128)");
    TextTable t;
    t.header({"app", "BS=8", "BS=16", "BS=32", "BS=64", "BS=128"});

    struct App
    {
        const char *name;
        apps::Schedule (*make)(const ckks::CkksParams &);
    };
    auto r20 = [](const ckks::CkksParams &p) { return apps::resnet(p, 20); };
    const App apps_list[] = {
        {"PackBootstrap", apps::pack_bootstrap},
        {"HELR", apps::helr_iteration},
        {"ResNet-20", +r20},
    };

    for (const auto &app : apps_list) {
        // Reference at BS = 128.
        auto make_time = [&](size_t bs) {
            auto b = baselines::make_neo('C');
            b.params.batch = bs;
            return apps::run_schedule(app.make(b.params), b.model());
        };
        const double ref = make_time(128);
        std::vector<std::string> row = {app.name};
        for (size_t bs : {8u, 16u, 32u, 64u, 128u})
            row.push_back(strfmt("%.2f", make_time(bs) / ref));
        t.row(row);
        report.metric(strfmt("%s.bs128.total_s", app.name), ref);
    }
    t.print();
    std::printf("\nPaper reference: per-batch time decreases monotonically "
                "with BatchSize; 128 is the default (VRAM limit).\n");
    report.write();
    return 0;
}
