/**
 * Measured microbenchmarks (google-benchmark) of the *functional*
 * kernels on the host CPU: the bit-exact TCU emulations, the NTT
 * variants and the BConv/IP algorithm pairs. These measure the
 * reproduction substrate itself, complementing the device-model
 * benches that regenerate the paper's figures.
 */
#include <benchmark/benchmark.h>

#include <optional>

#include "bench_util.h"
#include "common/random.h"
#include "neo/kernels.h"
#include "obs/obs.h"
#include "poly/matrix_ntt.h"
#include "poly/rns_poly.h"
#include "rns/primes.h"
#include "tensor/gemm.h"

namespace neo {
namespace {

/// Thread sweep applied to the parallel-engine benchmarks below: the
/// benchmark's Arg is the pool size, so one run prints 1/2/4/8-thread
/// numbers side by side (EXPERIMENTS.md records them).
void
thread_sweep(benchmark::internal::Benchmark *b)
{
    for (int t : {1, 2, 4, 8})
        b->Arg(t);
}

void
BM_NttRadix2(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Modulus q(generate_ntt_primes(36, 1, n)[0]);
    NttTables t(n, q);
    Rng rng(1);
    auto a = rng.uniform_vec(n, q.value());
    for (auto _ : state) {
        t.forward(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NttRadix2)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void
BM_NttRadix16Matrix(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Modulus q(generate_ntt_primes(36, 1, n)[0]);
    NttTables t(n, q);
    MatrixNtt mntt(t, 16);
    Rng rng(2);
    auto a = rng.uniform_vec(n, q.value());
    for (auto _ : state) {
        mntt.forward(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NttRadix16Matrix)->Arg(1 << 12)->Arg(1 << 14);

void
BM_ScalarGemm(benchmark::State &state)
{
    Modulus q(generate_ntt_primes(48, 1, 1 << 10)[0]);
    const size_t m = 256, n = 16, k = 16;
    Rng rng(3);
    auto a = rng.uniform_vec(m * k, q.value());
    auto b = rng.uniform_vec(k * n, q.value());
    std::vector<u64> c(m * n);
    for (auto _ : state) {
        scalar_mod_matmul(a.data(), b.data(), c.data(), m, n, k, q);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * m * n * k);
}
BENCHMARK(BM_ScalarGemm);

void
BM_Fp64SlicedGemm(benchmark::State &state)
{
    Modulus q(generate_ntt_primes(48, 1, 1 << 10)[0]);
    const size_t m = 256, n = 16, k = 16;
    Rng rng(4);
    auto a = rng.uniform_vec(m * k, q.value());
    auto b = rng.uniform_vec(k * n, q.value());
    std::vector<u64> c(m * n);
    for (auto _ : state) {
        fp64_sliced_matmul(a.data(), b.data(), c.data(), m, n, k, q);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * m * n * k);
}
BENCHMARK(BM_Fp64SlicedGemm);

void
BM_BConvElementwise(benchmark::State &state)
{
    auto p1 = generate_ntt_primes(36, 4, 1 << 10);
    auto p2 = generate_ntt_primes(48, 8, 1 << 10);
    RnsBasis from(p1), to(p2);
    BConvKernel kernel(from, to);
    const size_t batch = 2, n = 256;
    Rng rng(5);
    std::vector<u64> in(4 * batch * n);
    for (size_t i = 0; i < 4; ++i)
        for (size_t x = 0; x < batch * n; ++x)
            in[i * batch * n + x] = rng.uniform(p1[i]);
    std::vector<u64> out(8 * batch * n);
    for (auto _ : state) {
        kernel.run_elementwise(in.data(), batch, n, out.data());
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_BConvElementwise);

void
BM_BConvMatmul(benchmark::State &state)
{
    auto p1 = generate_ntt_primes(36, 4, 1 << 10);
    auto p2 = generate_ntt_primes(48, 8, 1 << 10);
    RnsBasis from(p1), to(p2);
    BConvKernel kernel(from, to);
    const size_t batch = 2, n = 256;
    Rng rng(6);
    std::vector<u64> in(4 * batch * n);
    for (size_t i = 0; i < 4; ++i)
        for (size_t x = 0; x < batch * n; ++x)
            in[i * batch * n + x] = rng.uniform(p1[i]);
    std::vector<u64> out(8 * batch * n);
    for (auto _ : state) {
        kernel.run_matmul(in.data(), batch, n, out.data());
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_BConvMatmul);

/// Cost of the neo::obs probes on a hot kernel. Arg 0 = no sink
/// installed (the production default: each probe is one relaxed
/// atomic load), 1 = counting sink active, 2 = counting + timeline
/// events. Arg 0 must match the pre-instrumentation baseline; the
/// acceptance bar is no measurable slowdown with tracing off.
void
BM_ObsProbeOverhead(benchmark::State &state)
{
    const size_t n = 1 << 12;
    Modulus q(generate_ntt_primes(36, 1, n)[0]);
    NttTables t(n, q);
    Rng rng(10);
    auto a = rng.uniform_vec(n, q.value());
    std::optional<obs::Scope> scope;
    if (state.range(0) > 0) {
        obs::Scope::Options so;
        so.registry.record_events = state.range(0) > 1;
        scope.emplace(so);
    }
    for (auto _ : state) {
        t.forward(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ObsProbeOverhead)->Arg(0)->Arg(1)->Arg(2);

// ---------------------------------------------------------------------
// Thread-scaling benchmarks of the parallel execution engine (Arg =
// pool size). Shapes follow the paper's KLSS operating point.
// ---------------------------------------------------------------------

/// Per-limb batch NTT: an α'=8-limb R_T element at N = 2^14, the
/// batch the pipeline transforms after every ModUp digit.
void
BM_BatchNttThreads(benchmark::State &state)
{
    const size_t threads = bench::use_threads(state.range(0));
    const size_t n = 1 << 14, limbs = 8;
    auto primes = generate_ntt_primes(48, limbs, n);
    std::vector<Modulus> mods(primes.begin(), primes.end());
    NttTableSet tables(n, mods);
    Rng rng(7);
    RnsPoly p(n, mods, PolyForm::coeff);
    for (size_t i = 0; i < limbs; ++i)
        for (size_t l = 0; l < n; ++l)
            p.limb(i)[l] = rng.uniform(mods[i].value());
    for (auto _ : state) {
        tables.to_eval(p);
        tables.to_coeff(p);
        benchmark::DoNotOptimize(p.data());
    }
    state.SetItemsProcessed(state.iterations() * limbs * n * 2);
    state.counters["threads"] = static_cast<double>(threads);
    bench::use_threads(1);
}
BENCHMARK(BM_BatchNttThreads)->Apply(thread_sweep)
    ->Unit(benchmark::kMillisecond);

/// FP64 bit-sliced TCU GEMM at the paper's Fig 3 shape family
/// (tall-skinny M×16×16, 48-bit words).
void
BM_TcuGemmThreads(benchmark::State &state)
{
    const size_t threads = bench::use_threads(state.range(0));
    Modulus q(generate_ntt_primes(48, 1, 1 << 10)[0]);
    const size_t m = 1 << 15, n = 16, k = 16;
    Rng rng(8);
    auto a = rng.uniform_vec(m * k, q.value());
    auto b = rng.uniform_vec(k * n, q.value());
    std::vector<u64> c(m * n);
    for (auto _ : state) {
        fp64_sliced_matmul(a.data(), b.data(), c.data(), m, n, k, q);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * m * n * k);
    state.counters["threads"] = static_cast<double>(threads);
    bench::use_threads(1);
}
BENCHMARK(BM_TcuGemmThreads)->Apply(thread_sweep)
    ->Unit(benchmark::kMillisecond);

/// Matrix-form exact BConv (Alg 2) at α=4 → α'=8, N = 2^13.
void
BM_BConvMatmulThreads(benchmark::State &state)
{
    const size_t threads = bench::use_threads(state.range(0));
    const size_t n = 1 << 13;
    auto p1 = generate_ntt_primes(36, 4, n);
    auto p2 = generate_ntt_primes(48, 8, n);
    RnsBasis from(p1), to(p2);
    BConvKernel kernel(from, to);
    Rng rng(9);
    std::vector<u64> in(4 * n);
    for (size_t i = 0; i < 4; ++i)
        for (size_t x = 0; x < n; ++x)
            in[i * n + x] = rng.uniform(p1[i]);
    std::vector<u64> out(8 * n);
    for (auto _ : state) {
        kernel.run_matmul_exact(in.data(), 1, n, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["threads"] = static_cast<double>(threads);
    bench::use_threads(1);
}
BENCHMARK(BM_BConvMatmulThreads)->Apply(thread_sweep)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace neo
