/**
 * Fig 2 — proportion of KeySwitch global-memory traffic due to the
 * BConv, IP and NTT kernels at levels l = 5..35, for the Hybrid
 * method (Set-B) and the KLSS method (Set-C). The paper highlights
 * BConv+IP reaching 43.4% + 41.8%-class shares at l = 35 under KLSS.
 *
 * Traffic is counted on the *pre-optimization* (element-wise) kernel
 * forms, as in the paper's motivation section.
 */
#include "baselines/backends.h"
#include "bench_util.h"

using namespace neo;

namespace {

void
print_method(const char *label, const ckks::CkksParams &params, bool klss,
             bench::Report &report)
{
    model::ModelConfig cfg;
    cfg.use_klss = klss;
    cfg.matmul_dataflow = false; // motivate: original kernels
    cfg.engine = model::MatMulEngine::tcu_int8;
    cfg.radix16_ntt = false;
    model::KernelModel m(params, cfg);

    TextTable t;
    t.header({"l", "BConv", "IP", "NTT", "other", "total"});
    for (size_t l = 5; l <= params.max_level; l += 5) {
        auto tr = m.keyswitch_traffic(l);
        const double tot = tr.total();
        t.row({strfmt("%zu", l), strfmt("%5.1f%%", 100 * tr.bconv / tot),
               strfmt("%5.1f%%", 100 * tr.ip / tot),
               strfmt("%5.1f%%", 100 * tr.ntt / tot),
               strfmt("%5.1f%%", 100 * tr.other / tot),
               format_bytes(tot)});
    }
    {
        const auto tr = m.keyswitch_traffic(params.max_level);
        const std::string key = klss ? "klss" : "hybrid";
        report.metric(key + ".l35.bytes.total", tr.total());
        report.metric(key + ".l35.bytes.bconv", tr.bconv);
        report.metric(key + ".l35.bytes.ip", tr.ip);
        report.metric(key + ".l35.bytes.ntt", tr.ntt);
    }
    std::printf("%s\n", label);
    t.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "fig02",
                         "KeySwitch data-transfer proportions by kernel");
    bench::banner("Fig 2", "KeySwitch data-transfer proportions by kernel");
    print_method("Hybrid method (Set-B):", ckks::paper_set('B'), false,
                 report);
    print_method("KLSS method (Set-C):", ckks::paper_set('C'), true,
                 report);
    std::printf("Paper reference: BConv+IP together dominate — 43.4%% "
                "(BConv) and 41.8%% (IP) at l=35 under KLSS.\n");
    report.write();
    return 0;
}
