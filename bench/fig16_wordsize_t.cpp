/**
 * Fig 16 — KeySwitch time: Hybrid vs KLSS at WordSize_T ∈ {36,48,64},
 * other parameters as Set-B. 48 bits is the sweet spot: 36 inflates
 * α' (algorithmic complexity), 64 inflates the FP64 split count on
 * the TCU ("Booth complexity").
 */
#include "baselines/backends.h"
#include "bench_util.h"

using namespace neo;

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "fig16",
                         "Hybrid vs KLSS across WordSize_T (Set-B base)");
    bench::banner("Fig 16", "Hybrid vs KLSS across WordSize_T (Set-B base)");
    model::ModelConfig neo_cfg; // all Neo optimizations on

    TextTable t;
    t.header({"method", "WordSize_T", "alpha'", "KeySwitch time",
              "vs Hybrid"});

    // Both methods at the Table 8 optimum d_num = 9 (the sweep's
    // other parameters follow Set-B), KLSS sweeping WordSize_T.
    ckks::CkksParams base = ckks::paper_set('B');
    base.d_num = 9;
    model::ModelConfig hybrid_cfg = neo_cfg;
    hybrid_cfg.use_klss = false;
    model::KernelModel hybrid(base, hybrid_cfg);
    const double t_hybrid = hybrid.keyswitch_time(base.max_level);
    t.row({"Hybrid", "-", "-", format_time(t_hybrid), "1.00x"});
    report.metric("hybrid.keyswitch_s", t_hybrid);

    for (int wst : {36, 48, 64}) {
        ckks::CkksParams p = base;
        p.klss.word_size_t = wst;
        p.klss.alpha_tilde = 5;
        model::KernelModel klss(p, neo_cfg);
        const double s = klss.keyswitch_time(p.max_level);
        t.row({"KLSS", strfmt("%d", wst),
               strfmt("%zu", p.klss_alpha_prime()), format_time(s),
               strfmt("%.2fx", t_hybrid / s)});
        report.metric(strfmt("klss.ws%d.keyswitch_s", wst), s);
    }
    t.print();
    std::printf("\nPaper reference: WordSize_T = 48 is optimal; 36 pays in "
                "alpha', 64 pays in TCU split complexity.\n");
    report.write();
    return 0;
}
