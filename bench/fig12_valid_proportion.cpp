/**
 * Fig 11 + Fig 12 — Tensor-core fragment utilisation.
 *
 * Fig 11: BConv's GEMM (K = α = 4, N = α' = 8) fills FP64 8×8×4
 * fragments perfectly (100% valid) but only 25% of an INT8 32×8×16
 * fragment.
 *
 * Fig 12: valid proportion of the NTT / BConv / IP matrix products on
 * the FP64 fragments as the level l drops (Set-C parameters). NTT and
 * BConv stay at 100%; IP varies with β and β̃ and falls below the 80%
 * threshold of §4.5.3 at some levels, which flips its mapping to the
 * CUDA cores.
 */
#include "baselines/backends.h"
#include "bench_util.h"
#include "gpusim/tcu_model.h"

using namespace neo;
using gpusim::TcuModel;

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "fig12",
                         "Tensor-core fragment utilisation");
    bench::banner("Fig 11", "BConv fragment utilisation, INT8 vs FP64");
    const auto params = ckks::paper_set('C');
    const size_t alpha = params.alpha();          // 4
    const size_t alpha_p = params.klss_alpha_prime(); // 8
    const size_t m = params.batch * params.n;
    std::printf("BConv GEMM (BS*N) x %zu x %zu:\n", alpha_p, alpha);
    std::printf("  FP64 8x8x4 fragments : %5.1f%% valid (paper: 100%%)\n",
                100 * TcuModel::valid_proportion_fp64(m, alpha_p, alpha));
    std::printf("  INT8 32x8x16 fragment: %5.1f%% valid (paper: 25%%)\n",
                100 * TcuModel::valid_proportion_int8(m, alpha_p, alpha));

    bench::banner("Fig 12", "FP64 valid proportion vs level (Set-C)");
    model::KernelModel model(params, model::ModelConfig{});
    TextTable t;
    t.header({"l", "NTT", "BConv", "IP", "IP mapping"});
    for (i64 l = static_cast<i64>(params.max_level); l >= 3; l -= 4) {
        const size_t beta = params.beta(l);
        const size_t beta_tilde = params.beta_tilde(l);
        const double ntt = TcuModel::valid_proportion_fp64(
            params.batch * params.n / 16, 16, 16);
        const double bconv =
            TcuModel::valid_proportion_fp64(m, alpha_p, alpha);
        const double ip = TcuModel::valid_proportion_fp64(
            params.batch, beta_tilde, beta);
        t.row({strfmt("%zu", l), strfmt("%5.1f%%", 100 * ntt),
               strfmt("%5.1f%%", 100 * bconv), strfmt("%5.1f%%", 100 * ip),
               model.ip_engine(l) == model::MatMulEngine::tcu_fp64
                   ? "TCU FP64"
                   : "CUDA cores"});
    }
    t.print();
    std::printf("\nPaper reference: NTT and BConv pin at 100%%; IP varies "
                "with l and maps to the TCU only above the 80%% gate.\n");
    // Valid proportions are "higher is better": gate on the wasted
    // fraction instead so an increase means a regression.
    report.metric("bconv.fp64.invalid",
                  1.0 - TcuModel::valid_proportion_fp64(m, alpha_p, alpha));
    report.metric("bconv.int8.invalid",
                  1.0 - TcuModel::valid_proportion_int8(m, alpha_p, alpha));
    report.metric("ip.l35.invalid",
                  1.0 - TcuModel::valid_proportion_fp64(
                            params.batch, params.beta_tilde(35),
                            params.beta(35)));
    report.write();
    return 0;
}
