/**
 * @file
 * Shared library for the per-figure/table benchmark binaries: each
 * binary regenerates one table or figure of the paper, prints the
 * paper's published values next to the model's, and (with `--json
 * <path>`) writes a schema-versioned `neo.bench/1` artifact whose
 * flat `metrics` map the `neo-prof --baseline` compare mode can gate
 * on — the same machinery CI uses for the profiler artifacts.
 */
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/table.h"
#include "common/types.h"
#include "neo/exec_policy.h"

namespace neo::bench {

/// Standard banner naming the experiment being regenerated.
void banner(const char *id, const char *what);

/**
 * The benchmark `threads` knob: point the global pool at @p threads
 * executors (0 = honour NEO_NUM_THREADS / hardware concurrency) and
 * return the resulting count. Thread-swept benchmarks call this at
 * the top of each measurement so 1/2/4/8-thread numbers come from one
 * binary invocation.
 */
size_t use_threads(size_t threads);

/// "x.xx s (paper: y.yy)" cell.
std::string vs_paper(double ours, double paper);

/**
 * Command-line options shared by every figure/table binary:
 *   --json PATH    write the neo.bench/1 artifact to PATH
 *   --threads N    size the global thread pool
 *   --repeat N     warmup once, then report the median of N timed
 *                  runs (benchmarks that measure wall time honour it;
 *                  purely modeled ones ignore it)
 *   --engine E     GEMM engine for the Neo rows: a registry name, or
 *                  "auto" for per-site tuned dispatch (benchmarks
 *                  that price GEMM kernels honour it; names are
 *                  validated against neo::EngineRegistry)
 * parse() exits 2 on unknown arguments (and 0 after --help).
 */
struct Options
{
    std::string json_path;
    size_t threads = 0;
    size_t repeat = 1;
    /// Typed form of --engine: fixed fp64_tcu unless overridden,
    /// select == autotune for --engine auto.
    ExecPolicy policy;

    static Options parse(int argc, char **argv);
};

/**
 * Machine-readable artifact accumulator. The binary records its
 * headline numbers as flat metrics while printing its usual tables;
 * write() emits
 *
 *   { "schema": "neo.bench/1", "kind": "bench", "id": ..,
 *     "title": .., "notes": {..}, "metrics": {..} }
 *
 * plus a "dist" sub-object (per-metric p50/p95/max) when any metric
 * was recorded via sample() with more than one sample — additive, so
 * single-run artifacts keep the historical key set.
 *
 * to the --json path (no-op when none was given), so every benchmark
 * gains a gate-able artifact without touching its stdout format.
 */
class Report
{
  public:
    Report(const Options &opts, const char *id, const char *title);

    /// Record one gate-able number (flat key, higher = worse for
    /// gating purposes; wall-clock metrics should embed "wall" in the
    /// key so the default compare skips them).
    void metric(std::string_view name, double value);
    /// Record a repeated measurement: the median becomes the flat
    /// metric @p name and, when more than one sample was taken, the
    /// p50/p95/max order statistics enter the artifact's `dist`
    /// sub-object (p50 = sorted element n/2, p95 = element
    /// ceil(0.95·n)−1 — the same convention as neo-prof --repeat).
    /// Samples need not be pre-sorted; empty is a no-op.
    void sample(std::string_view name, std::vector<double> samples);
    /// Free-form context (parameter set, units) carried in `notes`.
    void note(std::string_view key, std::string_view value);

    /// Write the artifact if --json was given. Returns the path
    /// written, or empty.
    std::string write() const;

  private:
    struct Dist
    {
        double p50, p95, max;
    };

    std::string json_path_;
    std::string id_;
    std::string title_;
    std::vector<std::pair<std::string, std::string>> notes_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, Dist>> dists_;
};

} // namespace neo::bench
