/**
 * @file
 * Shared helpers for the per-figure/table benchmark binaries: each
 * binary regenerates one table or figure of the paper and prints the
 * paper's published values next to the model's, so EXPERIMENTS.md can
 * be checked against the binary output directly.
 */
#pragma once

#include <cstdio>
#include <string>

#include "common/table.h"
#include "common/thread_pool.h"

namespace neo::bench {

/// Standard banner naming the experiment being regenerated.
inline void
banner(const char *id, const char *what)
{
    std::printf("=== %s — %s ===\n", id, what);
}

/**
 * The benchmark `threads` knob: point the global pool at @p threads
 * executors (0 = honour NEO_NUM_THREADS / hardware concurrency) and
 * return the resulting count. Thread-swept benchmarks call this at
 * the top of each measurement so 1/2/4/8-thread numbers come from one
 * binary invocation.
 */
inline size_t
use_threads(size_t threads)
{
    ThreadPool::set_global_threads(threads);
    return ThreadPool::global().threads();
}

/// "x.xx s (paper: y.yy)" cell.
inline std::string
vs_paper(double ours, double paper)
{
    return strfmt("%8.3f (paper %7.3f)", ours, paper);
}

} // namespace neo::bench
