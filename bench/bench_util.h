/**
 * @file
 * Shared helpers for the per-figure/table benchmark binaries: each
 * binary regenerates one table or figure of the paper and prints the
 * paper's published values next to the model's, so EXPERIMENTS.md can
 * be checked against the binary output directly.
 */
#pragma once

#include <cstdio>
#include <string>

#include "common/table.h"

namespace neo::bench {

/// Standard banner naming the experiment being regenerated.
inline void
banner(const char *id, const char *what)
{
    std::printf("=== %s — %s ===\n", id, what);
}

/// "x.xx s (paper: y.yy)" cell.
inline std::string
vs_paper(double ours, double paper)
{
    return strfmt("%8.3f (paper %7.3f)", ours, paper);
}

} // namespace neo::bench
