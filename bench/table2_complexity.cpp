/**
 * Table 2 — KeySwitch kernel complexity, Hybrid vs KLSS, printed from
 * the *instrumented functional implementation* (the same counters the
 * unit tests assert against the closed-form formulas).
 */
#include "baselines/backends.h"
#include "bench_util.h"

using namespace neo;
using namespace neo::ckks;

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "table2",
                         "KeySwitch complexity (measured counters)");
    bench::banner("Table 2", "KeySwitch complexity (measured counters)");
    // Symbolic evaluation at Set-C-shaped parameters, l = L.
    auto p = paper_set('C');
    const size_t l = p.max_level;
    const size_t alpha = p.alpha();
    const size_t beta = p.beta(l);
    const size_t ext = l + 1 + p.special_primes();
    const size_t ap = p.klss_alpha_prime();
    const size_t bt = p.beta_tilde(l);

    TextTable t;
    t.header({"step", "Hybrid (formula)", "KLSS (formula)"});
    t.row({"Mod Up (BConv products)",
           strfmt("%zu  [beta*alpha*(ext-alpha)]",
                  beta * alpha * (ext - alpha)),
           strfmt("%zu  [beta*alpha*alpha']", beta * alpha * ap)});
    t.row({"NTT (limbs)", strfmt("%zu  [beta*ext]", beta * ext),
           strfmt("%zu  [beta*alpha']", beta * ap)});
    t.row({"Inner Product (limb MACs)",
           strfmt("%zu  [2*beta*ext]", 2 * beta * ext),
           strfmt("%zu  [2*beta~*beta*alpha']", 2 * bt * beta * ap)});
    t.row({"Inverse NTT (limbs)", strfmt("%zu  [2*ext]", 2 * ext),
           strfmt("%zu  [2*beta~*alpha']", 2 * bt * ap)});
    t.row({"Recover Limbs (products)", "-",
           strfmt("%zu  [2*alpha'*(l+1+alpha)]", 2 * ap * ext)});
    t.row({"Mod Down (products)",
           strfmt("%zu  [2*alpha*(l+1)]", 2 * alpha * (l + 1)),
           strfmt("%zu  [2*alpha*(l+1)]", 2 * alpha * (l + 1))});
    t.print();

    std::printf("\nShape check (Set-C, l=35): KLSS trades %zu -> %zu "
                "forward-NTT limbs against %zu -> %zu IP limb-MACs —\n"
                "exactly the trade the paper's Table 2 describes. The "
                "counters are asserted against the functional\n"
                "implementation in ckks_test "
                "(KeySwitchCountersMatchComplexityFormulas).\n",
                beta * ext, beta * ap, 2 * beta * ext, 2 * bt * beta * ap);
    report.metric("klss.ntt_limbs", static_cast<double>(beta * ap));
    report.metric("klss.ip_limb_macs",
                  static_cast<double>(2 * bt * beta * ap));
    report.metric("hybrid.ntt_limbs", static_cast<double>(beta * ext));
    report.metric("hybrid.ip_limb_macs",
                  static_cast<double>(2 * beta * ext));
    report.write();
    return 0;
}
