/**
 * Table 6 — primitive-operation times at l = 35 (microseconds, per
 * batched ciphertext) for TensorFHE (Sets A/B/C), HEonGPU (Set-E) and
 * Neo (Set-C), plus the CPU reference at Set-H.
 */
#include "baselines/backends.h"
#include "bench_util.h"

using namespace neo;

namespace {

void
add_row(TextTable &t, const baselines::Backend &b, size_t level)
{
    auto m = b.model();
    auto us = [](double s) { return strfmt("%10.1f", s * 1e6); };
    t.row({b.name, us(m.hmult_time(level)), us(m.hrotate_time(level)),
           us(m.pmult_time(level)), us(m.hadd_time(level)),
           us(m.padd_time(level)), us(m.rescale_time(level))});
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "table6",
                         "Operation times at l=35");
    bench::banner("Table 6", "Operation times at l=35, microseconds");
    TextTable t;
    t.header({"scheme", "HMult", "HRotate", "PMult", "HAdd", "PAdd",
              "Rescale"});
    add_row(t, baselines::make_cpu(), 44);
    add_row(t, baselines::make_tensorfhe('A'), 35);
    add_row(t, baselines::make_tensorfhe('B'), 35);
    add_row(t, baselines::make_tensorfhe('C'), 35);
    add_row(t, baselines::make_heongpu(), 35);
    add_row(t, baselines::make_neo('C'), 35);
    t.print();
    std::printf(
        "\nPaper reference (us): TensorFHE A/B/C HMult = 15304.6 / 18689.4 "
        "/ 32523.6; HEonGPU = 8172.6; Neo = 3472.5; CPU HMult = 2.6 s.\n");
    {
        auto m = baselines::make_neo('C').model();
        report.metric("neo_c.hmult_s", m.hmult_time(35));
        report.metric("neo_c.hrotate_s", m.hrotate_time(35));
        report.metric("neo_c.rescale_s", m.rescale_time(35));
    }
    report.write();
    return 0;
}
