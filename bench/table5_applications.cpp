/**
 * Table 5 — application performance (seconds) across schemes:
 * PackBootstrap, HELR (one iteration), ResNet-20/32/56, for CPU,
 * TensorFHE (SS / A / B / C), HEonGPU, Neo (C / D) and Neo_SS.
 */
#include <memory>

#include "apps/schedules.h"
#include "baselines/backends.h"
#include "bench_util.h"
#include "neo/engine.h"
#include "tune/tuner.h"

using namespace neo;

namespace {

struct PaperRow
{
    double boot, helr, r20, r32, r56;
};

void
add_row(TextTable &t, const baselines::Backend &b, const PaperRow *paper)
{
    auto m = b.model();
    const double boot =
        apps::run_schedule(apps::pack_bootstrap(b.params), m);
    const double helr =
        apps::run_schedule(apps::helr_iteration(b.params), m);
    const double r20 = apps::run_schedule(apps::resnet(b.params, 20), m);
    const double r32 = apps::run_schedule(apps::resnet(b.params, 32), m);
    const double r56 = apps::run_schedule(apps::resnet(b.params, 56), m);
    auto cell = [&](double ours, double pap) {
        return paper ? strfmt("%8.2f (%7.2f)", ours, pap)
                     : strfmt("%8.2f", ours);
    };
    t.row({b.name, cell(boot, paper ? paper->boot : 0),
           cell(helr, paper ? paper->helr : 0),
           cell(r20, paper ? paper->r20 : 0),
           cell(r32, paper ? paper->r32 : 0),
           cell(r56, paper ? paper->r56 : 0)});
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "table5",
                         "Application performance across schemes");
    bench::banner("Table 5", "Application performance, seconds "
                             "(paper values in parentheses)");
    TextTable t;
    t.header({"scheme", "PackBootstrap", "HELR", "ResNet-20", "ResNet-32",
              "ResNet-56"});

    const PaperRow cpu{17.2, 356, 1380, 0, 0};
    const PaperRow tfhe_ss{0.53, 0.90, 35.27, 57.70, 102.71};
    const PaperRow neo_ss{0.17, 0.19, 9.11, 14.90, 26.48};
    const PaperRow tfhe_a{0.67, 0.96, 41.07, 67.18, 119.49};
    const PaperRow tfhe_b{0.74, 0.78, 38.77, 64.22, 114.15};
    const PaperRow tfhe_c{0.85, 0.73, 40.68, 66.19, 117.30};
    const PaperRow heon{0.36, 0.26, 16.42, 27.00, 47.99};
    const PaperRow neo_c{0.24, 0.22, 12.03, 19.68, 34.98};
    const PaperRow neo_d{0.27, 0.25, 13.39, 21.83, 38.78};

    add_row(t, baselines::make_cpu(), &cpu);
    add_row(t, baselines::make_tensorfhe_ss(), &tfhe_ss);
    add_row(t, baselines::make_neo_ss(), &neo_ss);
    add_row(t, baselines::make_tensorfhe('A'), &tfhe_a);
    add_row(t, baselines::make_tensorfhe('B'), &tfhe_b);
    add_row(t, baselines::make_tensorfhe('C'), &tfhe_c);
    add_row(t, baselines::make_heongpu(), &heon);
    add_row(t, baselines::make_neo('C'), &neo_c);
    add_row(t, baselines::make_neo('D'), &neo_d);

    // Autotuned Neo: the Set-C model with the tuner's per-site engine
    // decisions dispatched through ModelConfig::stage_engine. No paper
    // column — the paper's Neo rows are fixed-engine.
    auto neo_auto = baselines::make_neo('C');
    {
        tune::TunerConfig tcfg;
        tcfg.base = neo_auto.cfg;
        const auto table = std::make_shared<const tune::TuningTable>(
            tune::Tuner(tcfg).tune(neo_auto.params));
        const size_t d_num = neo_auto.params.d_num;
        const size_t n = neo_auto.params.n;
        const model::MatMulEngine fallback = neo_auto.cfg.engine;
        neo_auto.name = "Neo (C, auto)";
        neo_auto.cfg.stage_engine =
            [table, d_num, n, fallback](std::string_view st, size_t lvl) {
                const auto id = table->lookup(st, lvl, d_num, n);
                return id ? EngineRegistry::model_engine(*id) : fallback;
            };
    }
    add_row(t, neo_auto, nullptr);
    t.print();

    // The headline speedup: Neo vs best TensorFHE configuration.
    auto neo = baselines::make_neo('C');
    double neo_total = 0, tfhe_total = 1e18;
    for (char set : {'A', 'B', 'C'}) {
        auto b = baselines::make_tensorfhe(set);
        auto m = b.model();
        double tot =
            apps::run_schedule(apps::pack_bootstrap(b.params), m) +
            apps::run_schedule(apps::helr_iteration(b.params), m) +
            apps::run_schedule(apps::resnet(b.params, 20), m);
        tfhe_total = std::min(tfhe_total, tot);
    }
    {
        auto m = neo.model();
        const double boot =
            apps::run_schedule(apps::pack_bootstrap(neo.params), m);
        const double helr =
            apps::run_schedule(apps::helr_iteration(neo.params), m);
        const double r20 =
            apps::run_schedule(apps::resnet(neo.params, 20), m);
        neo_total = boot + helr + r20;
        report.metric("neo_c.bootstrap_s", boot);
        report.metric("neo_c.helr_s", helr);
        report.metric("neo_c.resnet20_s", r20);
    }
    std::printf("\nNeo speedup over best TensorFHE config: %.2fx "
                "(paper: 3.28x vs optimal TensorFHE).\n",
                tfhe_total / neo_total);
    // Speedup is higher-is-better; gate on its reciprocal.
    report.metric("neo_c.vs_tensorfhe.inverse_speedup",
                  neo_total / tfhe_total);

    // The autotuner gate: the per-site mix must not lose to the fixed
    // Set-C engine on the application schedules (ratio <= 1 modulo
    // model noise; gated via the neo.bench/1 baseline compare).
    {
        auto m = neo_auto.model();
        const double boot =
            apps::run_schedule(apps::pack_bootstrap(neo_auto.params), m);
        const double helr =
            apps::run_schedule(apps::helr_iteration(neo_auto.params), m);
        const double r20 =
            apps::run_schedule(apps::resnet(neo_auto.params, 20), m);
        report.metric("neo_c_auto.bootstrap_s", boot);
        report.metric("neo_c_auto.helr_s", helr);
        report.metric("neo_c_auto.resnet20_s", r20);
        report.metric("neo_c_auto.vs_fixed_ratio",
                      (boot + helr + r20) / neo_total);
        std::printf("Autotuned Neo (C) vs fixed engine: %.4fx of the "
                    "fixed-engine time on Bootstrap+HELR+ResNet-20.\n",
                    (boot + helr + r20) / neo_total);
    }
    report.write();
    return 0;
}
