/**
 * Fig 13 — execution-time breakdown of the optimized BConv and IP
 * kernels (preprocessing / matrix multiplication / postprocessing)
 * against the total time of their pre-optimization (element-wise)
 * forms, normalised to a single operation. The paper's point: the
 * added pre/post stages are a negligible share of the optimized
 * kernels, which beat the originals outright.
 */
#include "baselines/backends.h"
#include "bench_util.h"

using namespace neo;

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "fig13",
                         "Optimized BConv/IP step breakdown (Set-C)");
    bench::banner("Fig 13", "Optimized BConv/IP step breakdown (Set-C)");
    const auto params = ckks::paper_set('C');
    const auto dev = gpusim::DeviceSpec::a100();
    const size_t alpha = params.alpha();
    const size_t ap = params.klss_alpha_prime();
    const size_t beta = params.beta(params.max_level);
    const size_t bt = params.beta_tilde(params.max_level);
    const int wt = params.klss.word_size_t;

    model::ModelConfig opt;
    model::ModelConfig orig;
    orig.matmul_dataflow = false;
    orig.engine = model::MatMulEngine::tcu_int8;
    model::KernelModel m_opt(params, opt);
    model::KernelModel m_orig(params, orig);

    // Split the optimized kernels into their three steps by pricing
    // the component costs separately.
    auto breakdown = [&](gpusim::KernelCost full, double gemm_time) {
        const double total = full.time(dev, true);
        const double pre_post = std::max(0.0, total - gemm_time);
        return std::pair<double, double>(pre_post, gemm_time);
    };

    TextTable t;
    t.header({"kernel", "orig total", "opt pre+post", "opt matmul",
              "opt total", "speedup"});

    {
        auto orig_c = m_orig.bconv(alpha, ap, params.word_size, wt);
        auto opt_c = m_opt.bconv(alpha, ap, params.word_size, wt);
        const double gemm_time =
            opt_c.tcu_fp64_macs / dev.tcu_fp64_fma_rate();
        auto [pp, mmtime] = breakdown(opt_c, gemm_time);
        t.row({"BConv", format_time(orig_c.time(dev, false)),
               format_time(pp), format_time(mmtime),
               format_time(opt_c.time(dev, true)),
               strfmt("%.2fx", orig_c.time(dev, false) /
                                   opt_c.time(dev, true))});
        report.metric("bconv.opt.total_s", opt_c.time(dev, true));
        report.metric("bconv.orig.total_s", orig_c.time(dev, false));
    }
    {
        auto orig_c = m_orig.ip(beta, bt, ap, wt);
        auto opt_c = m_opt.ip(beta, bt, ap, wt);
        const double gemm_time =
            opt_c.tcu_fp64_macs / dev.tcu_fp64_fma_rate() +
            (opt_c.cuda_modmul / dev.modmul_rate());
        auto [pp, mmtime] = breakdown(opt_c, gemm_time);
        t.row({"IP", format_time(orig_c.time(dev, false)),
               format_time(pp), format_time(mmtime),
               format_time(opt_c.time(dev, true)),
               strfmt("%.2fx", orig_c.time(dev, false) /
                                   opt_c.time(dev, true))});
        report.metric("ip.opt.total_s", opt_c.time(dev, true));
        report.metric("ip.orig.total_s", orig_c.time(dev, false));
    }
    t.print();
    std::printf("\nPaper reference: optimized kernels win despite the added "
                "pre/postprocessing, which is a negligible share.\n");

    // --- Fusion / graph-capture ablation: where does the launch tax
    // go? One keyswitch at Set-C top level under the four
    // (--fuse, --graph) combinations; the launch fraction collapses
    // and the schedule bound moves off "launch".
    std::printf("\nKeySwitch launch-tax ablation (Set-C, level %zu):\n",
                params.max_level);
    TextTable abl;
    abl.header({"fuse", "graph", "modeled", "launches", "launch_s",
                "launch %", "fused", "bound"});
    for (const bool fuse : {false, true}) {
        for (const bool graph : {false, true}) {
            model::ModelConfig cfg;
            cfg.fuse_elementwise = fuse;
            cfg.graph_capture = graph;
            model::KernelModel m(params, cfg);
            const auto att = m.run_attributed(
                m.keyswitch_kernels_named(params.max_level));
            const auto &s = att.schedule;
            const double frac =
                s.seconds > 0 ? s.launch_s / s.seconds : 0;
            abl.row({fuse ? "on" : "off", graph ? "on" : "off",
                     format_time(att.seconds),
                     strfmt("%.0f", s.launches),
                     format_time(s.launch_s),
                     strfmt("%.3f%%", 100.0 * frac),
                     strfmt("%llu", (unsigned long long)att.fused_kernels),
                     gpusim::bound_name(s.bound())});
            const char *tag =
                fuse ? (graph ? "fuse_graph" : "fuse")
                     : (graph ? "graph" : "base");
            report.metric(strfmt("keyswitch.%s.modeled_s", tag),
                          att.seconds);
            report.metric(strfmt("keyswitch.%s.launch_fraction", tag),
                          frac);
        }
    }
    abl.print();
    report.write();
    return 0;
}
