/**
 * Fig 14 — cumulative effect of the optimization steps on the
 * applications, normalised to the TensorFHE starting point:
 *   +KLSS → +dataflow opted → +ten-step NTT → +FP64 TCU (the paper's
 * four axes), then the launch-elimination rungs
 *   +kernel fusion (elementwise) → +graph capture.
 */
#include "apps/schedules.h"
#include "baselines/backends.h"
#include "bench_util.h"

using namespace neo;

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Report report(opts, "fig14", "Optimization ablation (normalised)");
    bench::banner("Fig 14", "Optimization ablation (normalised)");
    auto ladder = baselines::ablation_ladder();

    struct App
    {
        const char *name;
        apps::Schedule (*make)(const ckks::CkksParams &);
    };
    auto r20 = [](const ckks::CkksParams &p) { return apps::resnet(p, 20); };
    const App apps_list[] = {
        {"PackBootstrap", apps::pack_bootstrap},
        {"HELR", apps::helr_iteration},
        {"ResNet-20", +r20},
    };

    TextTable t;
    std::vector<std::string> head = {"config"};
    for (const auto &a : apps_list)
        head.push_back(a.name);
    t.header(head);

    std::vector<double> base;
    for (size_t r = 0; r < ladder.size(); ++r) {
        const auto &rung = ladder[r];
        auto m = rung.model();
        std::vector<std::string> row = {rung.name};
        for (size_t i = 0; i < std::size(apps_list); ++i) {
            const double s =
                apps::run_schedule(apps_list[i].make(rung.params), m);
            if (base.size() <= i)
                base.push_back(s);
            row.push_back(strfmt("%.3f (%s)", s / base[i],
                                 format_time(s).c_str()));
            // Gate on the final (fully-optimized) rung — that is Neo.
            if (r + 1 == ladder.size())
                report.metric(strfmt("neo.%s.total_s", apps_list[i].name),
                              s);
        }
        t.row(row);
    }
    t.print();
    std::printf("\nPaper reference: each step lowers relative time; the "
                "final configuration is Neo.\n");
    report.write();
    return 0;
}
