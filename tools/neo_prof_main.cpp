/**
 * neo-prof — modeled-GPU roofline profiler CLI.
 *
 *   neo-prof <workload> [--engine E] [--level N] [--repeat N]
 *            [--fuse on|off] [--graph on|off]
 *            [--devices N] [--topology nvlink|pcie]
 *            [--tuning-table PATH]
 *            [--json PATH] [--baseline PATH] [--threshold F]
 *            [--gate-wall]
 *   neo-prof --tune [--tuning-table PATH]
 *   neo-prof --diff BASE.json CUR.json [--threshold F] [--gate-wall]
 *            [--json PATH]
 *   neo-prof --list
 *
 * Runs one named workload under the chosen execution policy, prints
 * the per-kernel roofline attribution report, optionally writes the
 * schema-versioned artifact (BENCH_<workload>.json by convention) and
 * optionally compares the run against a baseline artifact.
 * `--engine auto` dispatches each kernel site through the tuning
 * table (`--tuning-table`, or tuned in-memory); `--tune` writes the
 * canonical `neo.tune/1` table and exits; `--diff` compares two
 * existing neo.bench/1 artifacts offline, attributing the delta per
 * kernel / span / metric and applying the same regression gate.
 *
 * Exit codes: 0 ok, 1 at least one metric regressed past the
 * threshold, 2 usage / runtime error — so CI can gate on the result.
 */
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "gpusim/topology.h"
#include "neo/engine.h"
#include "prof/prof.h"

namespace {

int
usage(const char *argv0)
{
    const std::string engines = neo::EngineRegistry::help_list() +
                                " | auto";
    std::fprintf(
        stderr,
        "usage: %s <workload> [options]\n"
        "       %s --tune [--tuning-table PATH]\n"
        "       %s --diff BASE.json CUR.json [--threshold F]"
        " [--gate-wall] [--json PATH]\n"
        "       %s --list\n"
        "options:\n"
        "  --engine E      GEMM engine: %s\n"
        "                  (default fp64_tcu; auto = per-site tuned)\n"
        "  --level N       ciphertext level (primitive workloads;"
        " default: top)\n"
        "  --repeat N      functional workloads: warmup once, report"
        " the median\n"
        "                  wall time of N steady-state runs (default"
        " 1 = cold run)\n"
        "  --fuse on|off   element-wise kernel fusion (default on;"
        " library\n"
        "                  default is off — the CLI ships the tuned"
        " pipeline)\n"
        "  --graph on|off  CUDA-graph capture/replay model (default"
        " on)\n"
        "  --devices N     shard the keyswitch over N modeled devices"
        " (default 1;\n"
        "                  keyswitch workload only; execution stays"
        " bit-identical,\n"
        "                  the cost model prices compute + collectives)\n"
        "  --topology T    interconnect preset with --devices >= 2:"
        " nvlink\n"
        "                  (default) or pcie\n"
        "  --tuning-table PATH\n"
        "                  with --engine auto: load per-site decisions"
        " from PATH\n"
        "                  (default: tune in-memory); with --tune:"
        " output path\n"
        "                  (default neo.tune.json)\n"
        "  --tune          write the canonical neo.tune/1 table and"
        " exit\n"
        "  --json PATH     write the neo.bench/1 artifact to PATH\n"
        "  --baseline B    compare against artifact B; exit 1 on"
        " regression\n"
        "  --threshold F   relative regression threshold (default"
        " 0.10)\n"
        "  --gate-wall     also gate machine-dependent wall-clock"
        " metrics\n"
        "  --diff B C      compare artifacts B (baseline) and C:"
        " per-kernel\n"
        "                  delta attribution + regression gate; with"
        " --json,\n"
        "                  write the neo.diff/1 report; exit 1 if"
        " gated\n",
        argv0, argv0, argv0, argv0, engines.c_str());
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload, engine = "fp64_tcu", json_path, baseline_path;
    std::string tuning_table, diff_base, diff_cur;
    bool tune_mode = false, diff_mode = false;
    size_t devices = 1;
    bool topology_set = false;
    size_t level = 0;
    size_t repeat = 1;
    neo::prof::CompareOptions copts;
    // The CLI profiles the shipped configuration: fusion and graph
    // capture on. The library defaults stay off so programmatic
    // profile() calls reproduce the historical artifact.
    neo::ExecPolicy policy;
    policy.fuse = true;
    policy.graph = true;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires an argument\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        auto on_off = [&](const char *flag) -> bool {
            const std::string v = next(flag);
            if (v == "on")
                return true;
            if (v == "off")
                return false;
            std::fprintf(stderr, "%s takes on|off, got '%s'\n", flag,
                         v.c_str());
            std::exit(2);
        };
        if (a == "--list") {
            for (const auto &n : neo::prof::workload_names())
                std::printf("%s\n", n.c_str());
            return 0;
        } else if (a == "--engine") {
            engine = next("--engine");
        } else if (a == "--level") {
            level = static_cast<size_t>(std::atoll(next("--level")));
        } else if (a == "--repeat") {
            repeat = static_cast<size_t>(std::atoll(next("--repeat")));
        } else if (a == "--fuse") {
            policy.fuse = on_off("--fuse");
        } else if (a == "--graph") {
            policy.graph = on_off("--graph");
        } else if (a == "--devices") {
            const long long v = std::atoll(next("--devices"));
            if (v < 1) {
                std::fprintf(stderr,
                             "--devices takes a positive device count\n");
                return 2;
            }
            devices = static_cast<size_t>(v);
        } else if (a == "--topology") {
            const std::string v = next("--topology");
            if (!neo::gpusim::parse_interconnect(v,
                                                 &policy.interconnect)) {
                std::fprintf(stderr,
                             "--topology takes nvlink|pcie, got '%s'\n",
                             v.c_str());
                return 2;
            }
            topology_set = true;
        } else if (a == "--tuning-table") {
            tuning_table = next("--tuning-table");
        } else if (a == "--tune") {
            tune_mode = true;
        } else if (a == "--diff") {
            diff_mode = true;
            diff_base = next("--diff");
            diff_cur = next("--diff");
        } else if (a == "--json") {
            json_path = next("--json");
        } else if (a == "--baseline") {
            baseline_path = next("--baseline");
        } else if (a == "--threshold") {
            copts.threshold = std::atof(next("--threshold"));
        } else if (a == "--gate-wall") {
            copts.gate_wall = true;
        } else if (a == "--help" || a == "-h") {
            return usage(argv[0]);
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            return usage(argv[0]);
        } else if (workload.empty()) {
            workload = a;
        } else {
            std::fprintf(stderr, "extra argument %s\n", a.c_str());
            return usage(argv[0]);
        }
    }

    if (diff_mode) {
        if (!workload.empty()) {
            std::fprintf(stderr, "--diff takes no workload argument\n");
            return 2;
        }
        if (devices > 1 || topology_set) {
            std::fprintf(stderr, "--devices/--topology do not apply to "
                                 "--diff (artifacts carry their own "
                                 "device count)\n");
            return 2;
        }
        try {
            const neo::json::Value base =
                neo::json::Value::parse_file(diff_base);
            const neo::json::Value cur =
                neo::json::Value::parse_file(diff_cur);
            const neo::prof::DiffReport d =
                neo::prof::diff(base, cur, copts);
            neo::prof::print_diff(d, std::cout);
            if (!json_path.empty()) {
                std::ofstream f(json_path);
                if (!f.good()) {
                    std::fprintf(stderr, "neo-prof: cannot open %s\n",
                                 json_path.c_str());
                    return 2;
                }
                f << neo::prof::diff_to_json(d) << '\n';
                std::printf("\nwrote %s\n", json_path.c_str());
            }
            return d.gated() ? 1 : 0;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "neo-prof: %s\n", e.what());
            return 2;
        }
    }

    if (tune_mode) {
        if (devices > 1 || topology_set) {
            std::fprintf(stderr, "--devices/--topology do not apply to "
                                 "--tune (tuned decisions are "
                                 "device-agnostic)\n");
            return 2;
        }
        const std::string out =
            tuning_table.empty() ? "neo.tune.json" : tuning_table;
        try {
            const neo::tune::TuningTable table =
                neo::prof::tuning_table_for_workloads();
            table.write_file(out);
            std::printf("wrote %s (%zu site decisions)\n", out.c_str(),
                        table.size());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "neo-prof: %s\n", e.what());
            return 2;
        }
        return 0;
    }
    if (workload.empty())
        return usage(argv[0]);

    // Reject nonsensical flag combinations instead of silently
    // ignoring them.
    if (topology_set && devices < 2) {
        std::fprintf(stderr,
                     "--topology requires --devices >= 2\n");
        return 2;
    }
    if (devices > 1 && workload != "keyswitch") {
        std::fprintf(stderr, "--devices is only modeled for the "
                             "keyswitch workload\n");
        return 2;
    }
    policy.devices = devices;

    try {
        if (engine == "auto") {
            policy.select = neo::EngineSelect::autotune;
            policy.tuning_table = tuning_table;
        } else {
            policy.engine = neo::EngineRegistry::parse(engine);
            if (!tuning_table.empty()) {
                std::fprintf(stderr, "--tuning-table requires "
                                     "--engine auto\n");
                return 2;
            }
        }
        const neo::prof::Result r =
            neo::prof::profile(workload, policy, level, repeat);
        neo::prof::print_report(r, std::cout);
        if (!json_path.empty()) {
            neo::prof::write_json(r, json_path);
            std::printf("\nwrote %s\n", json_path.c_str());
        }
        if (!baseline_path.empty()) {
            const neo::json::Value base =
                neo::json::Value::parse_file(baseline_path);
            const neo::json::Value cur =
                neo::json::Value::parse(neo::prof::to_json(r));
            const auto regressions = neo::prof::compare(base, cur, copts);
            if (regressions.empty()) {
                std::printf("\nbaseline compare vs %s: OK "
                            "(threshold %.0f%%)\n",
                            baseline_path.c_str(),
                            100.0 * copts.threshold);
                return 0;
            }
            std::printf("\nbaseline compare vs %s: %zu metric(s) "
                        "regressed past %.0f%%:\n",
                        baseline_path.c_str(), regressions.size(),
                        100.0 * copts.threshold);
            for (const auto &reg : regressions) {
                std::printf("  %-36s %12g -> %-12g (%.2fx)\n",
                            reg.metric.c_str(), reg.baseline,
                            reg.current, reg.ratio);
            }
            return 1;
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "neo-prof: %s\n", e.what());
        return 2;
    }
    return 0;
}
