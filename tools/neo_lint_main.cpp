/**
 * @file
 * neo-lint CLI — Neo's domain-specific static analyzer and bit-budget
 * prover (src/lint). Exit status: 0 when the tree is clean, 1 when
 * there are findings or budget violations, 2 on usage errors.
 *
 *   neo-lint --root .                 # lint src/ and tools/
 *   neo-lint --root . src/tensor      # lint one subtree
 *   neo-lint --json lint.json         # also write the JSON report
 *   neo-lint --budget-only            # just the bit-budget prover
 */
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int
usage(std::ostream &os, int code)
{
    os << "usage: neo-lint [--root DIR] [--json FILE|-] [--rules-only]"
          " [--budget-only] [paths...]\n"
          "  --root DIR     repository root (default: .)\n"
          "  --json FILE    write the neo.lint/1 JSON report to FILE\n"
          "                 ('-' for stdout instead of the text report)\n"
          "  --rules-only   skip the bit-budget prover\n"
          "  --budget-only  skip the source rules\n"
          "  paths          files/dirs relative to root (default: src"
          " tools)\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    neo::lint::Options opts;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        if (arg == "--root") {
            if (++i >= argc)
                return usage(std::cerr, 2);
            opts.root = argv[i];
        } else if (arg == "--json") {
            if (++i >= argc)
                return usage(std::cerr, 2);
            json_path = argv[i];
        } else if (arg == "--rules-only") {
            opts.run_budget = false;
        } else if (arg == "--budget-only") {
            opts.run_rules = false;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "neo-lint: unknown option " << arg << "\n";
            return usage(std::cerr, 2);
        } else {
            opts.paths.push_back(arg);
        }
    }

    neo::lint::Report rep;
    try {
        rep = neo::lint::run(opts);
    } catch (const std::exception &e) {
        std::cerr << "neo-lint: " << e.what() << "\n";
        return 2;
    }

    if (json_path == "-") {
        neo::lint::write_json(rep, std::cout);
    } else {
        if (!json_path.empty()) {
            std::ofstream out(json_path);
            if (!out.good()) {
                std::cerr << "neo-lint: cannot write " << json_path
                          << "\n";
                return 2;
            }
            neo::lint::write_json(rep, out);
        }
        neo::lint::write_text(rep, std::cout);
    }
    return rep.clean() ? 0 : 1;
}
