# Empty compiler generated dependencies file for private_lookup.
# This may be replaced when dependencies are built.
