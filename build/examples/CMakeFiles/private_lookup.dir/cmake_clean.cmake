file(REMOVE_RECURSE
  "CMakeFiles/private_lookup.dir/private_lookup.cpp.o"
  "CMakeFiles/private_lookup.dir/private_lookup.cpp.o.d"
  "private_lookup"
  "private_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
