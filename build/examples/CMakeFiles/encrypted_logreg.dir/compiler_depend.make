# Empty compiler generated dependencies file for encrypted_logreg.
# This may be replaced when dependencies are built.
