file(REMOVE_RECURSE
  "CMakeFiles/encrypted_logreg.dir/encrypted_logreg.cpp.o"
  "CMakeFiles/encrypted_logreg.dir/encrypted_logreg.cpp.o.d"
  "encrypted_logreg"
  "encrypted_logreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_logreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
