# Empty dependencies file for performance_explorer.
# This may be replaced when dependencies are built.
