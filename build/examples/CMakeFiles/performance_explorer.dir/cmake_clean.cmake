file(REMOVE_RECURSE
  "CMakeFiles/performance_explorer.dir/performance_explorer.cpp.o"
  "CMakeFiles/performance_explorer.dir/performance_explorer.cpp.o.d"
  "performance_explorer"
  "performance_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performance_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
