# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/rns_test[1]_include.cmake")
include("/root/repo/build/tests/poly_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/ckks_test[1]_include.cmake")
include("/root/repo/build/tests/neo_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/boot_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_noise_test[1]_include.cmake")
