# Empty dependencies file for rns_test.
# This may be replaced when dependencies are built.
