file(REMOVE_RECURSE
  "CMakeFiles/serialize_noise_test.dir/serialize_noise_test.cpp.o"
  "CMakeFiles/serialize_noise_test.dir/serialize_noise_test.cpp.o.d"
  "serialize_noise_test"
  "serialize_noise_test.pdb"
  "serialize_noise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialize_noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
