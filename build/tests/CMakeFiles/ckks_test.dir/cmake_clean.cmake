file(REMOVE_RECURSE
  "CMakeFiles/ckks_test.dir/ckks_test.cpp.o"
  "CMakeFiles/ckks_test.dir/ckks_test.cpp.o.d"
  "ckks_test"
  "ckks_test.pdb"
  "ckks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
