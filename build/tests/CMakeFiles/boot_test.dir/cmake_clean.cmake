file(REMOVE_RECURSE
  "CMakeFiles/boot_test.dir/boot_test.cpp.o"
  "CMakeFiles/boot_test.dir/boot_test.cpp.o.d"
  "boot_test"
  "boot_test.pdb"
  "boot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
