file(REMOVE_RECURSE
  "CMakeFiles/neo_test.dir/neo_test.cpp.o"
  "CMakeFiles/neo_test.dir/neo_test.cpp.o.d"
  "neo_test"
  "neo_test.pdb"
  "neo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
