
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/neo_test.cpp" "tests/CMakeFiles/neo_test.dir/neo_test.cpp.o" "gcc" "tests/CMakeFiles/neo_test.dir/neo_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/neo/CMakeFiles/neo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/neo_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/ckks/CMakeFiles/neo_ckks.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/neo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/neo_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/neo_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
