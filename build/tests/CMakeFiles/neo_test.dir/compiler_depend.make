# Empty compiler generated dependencies file for neo_test.
# This may be replaced when dependencies are built.
