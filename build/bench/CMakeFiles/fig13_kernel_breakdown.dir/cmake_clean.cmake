file(REMOVE_RECURSE
  "CMakeFiles/fig13_kernel_breakdown.dir/fig13_kernel_breakdown.cpp.o"
  "CMakeFiles/fig13_kernel_breakdown.dir/fig13_kernel_breakdown.cpp.o.d"
  "fig13_kernel_breakdown"
  "fig13_kernel_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_kernel_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
