file(REMOVE_RECURSE
  "CMakeFiles/table2_complexity.dir/table2_complexity.cpp.o"
  "CMakeFiles/table2_complexity.dir/table2_complexity.cpp.o.d"
  "table2_complexity"
  "table2_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
