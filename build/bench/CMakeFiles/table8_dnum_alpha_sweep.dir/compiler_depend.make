# Empty compiler generated dependencies file for table8_dnum_alpha_sweep.
# This may be replaced when dependencies are built.
