file(REMOVE_RECURSE
  "CMakeFiles/table8_dnum_alpha_sweep.dir/table8_dnum_alpha_sweep.cpp.o"
  "CMakeFiles/table8_dnum_alpha_sweep.dir/table8_dnum_alpha_sweep.cpp.o.d"
  "table8_dnum_alpha_sweep"
  "table8_dnum_alpha_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_dnum_alpha_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
