# Empty dependencies file for fig03_int8_vs_fp64.
# This may be replaced when dependencies are built.
