file(REMOVE_RECURSE
  "CMakeFiles/fig03_int8_vs_fp64.dir/fig03_int8_vs_fp64.cpp.o"
  "CMakeFiles/fig03_int8_vs_fp64.dir/fig03_int8_vs_fp64.cpp.o.d"
  "fig03_int8_vs_fp64"
  "fig03_int8_vs_fp64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_int8_vs_fp64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
