# Empty dependencies file for fig12_valid_proportion.
# This may be replaced when dependencies are built.
