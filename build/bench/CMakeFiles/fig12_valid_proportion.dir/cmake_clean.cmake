file(REMOVE_RECURSE
  "CMakeFiles/fig12_valid_proportion.dir/fig12_valid_proportion.cpp.o"
  "CMakeFiles/fig12_valid_proportion.dir/fig12_valid_proportion.cpp.o.d"
  "fig12_valid_proportion"
  "fig12_valid_proportion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_valid_proportion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
