# Empty dependencies file for app_characterization.
# This may be replaced when dependencies are built.
