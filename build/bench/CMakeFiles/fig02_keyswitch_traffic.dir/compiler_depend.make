# Empty compiler generated dependencies file for fig02_keyswitch_traffic.
# This may be replaced when dependencies are built.
