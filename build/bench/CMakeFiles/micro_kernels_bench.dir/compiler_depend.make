# Empty compiler generated dependencies file for micro_kernels_bench.
# This may be replaced when dependencies are built.
