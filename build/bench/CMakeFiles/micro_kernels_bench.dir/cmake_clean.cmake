file(REMOVE_RECURSE
  "CMakeFiles/micro_kernels_bench.dir/micro_kernels_bench.cpp.o"
  "CMakeFiles/micro_kernels_bench.dir/micro_kernels_bench.cpp.o.d"
  "micro_kernels_bench"
  "micro_kernels_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kernels_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
