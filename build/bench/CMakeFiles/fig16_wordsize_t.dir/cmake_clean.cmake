file(REMOVE_RECURSE
  "CMakeFiles/fig16_wordsize_t.dir/fig16_wordsize_t.cpp.o"
  "CMakeFiles/fig16_wordsize_t.dir/fig16_wordsize_t.cpp.o.d"
  "fig16_wordsize_t"
  "fig16_wordsize_t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_wordsize_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
