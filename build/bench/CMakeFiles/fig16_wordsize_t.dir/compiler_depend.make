# Empty compiler generated dependencies file for fig16_wordsize_t.
# This may be replaced when dependencies are built.
