# Empty compiler generated dependencies file for ablation_fusion_streams.
# This may be replaced when dependencies are built.
