file(REMOVE_RECURSE
  "CMakeFiles/ablation_fusion_streams.dir/ablation_fusion_streams.cpp.o"
  "CMakeFiles/ablation_fusion_streams.dir/ablation_fusion_streams.cpp.o.d"
  "ablation_fusion_streams"
  "ablation_fusion_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fusion_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
