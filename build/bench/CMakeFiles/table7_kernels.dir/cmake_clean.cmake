file(REMOVE_RECURSE
  "CMakeFiles/table7_kernels.dir/table7_kernels.cpp.o"
  "CMakeFiles/table7_kernels.dir/table7_kernels.cpp.o.d"
  "table7_kernels"
  "table7_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
