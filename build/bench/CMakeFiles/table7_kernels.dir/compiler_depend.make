# Empty compiler generated dependencies file for table7_kernels.
# This may be replaced when dependencies are built.
