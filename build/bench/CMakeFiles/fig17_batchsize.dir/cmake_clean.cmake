file(REMOVE_RECURSE
  "CMakeFiles/fig17_batchsize.dir/fig17_batchsize.cpp.o"
  "CMakeFiles/fig17_batchsize.dir/fig17_batchsize.cpp.o.d"
  "fig17_batchsize"
  "fig17_batchsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_batchsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
