# Empty compiler generated dependencies file for fig17_batchsize.
# This may be replaced when dependencies are built.
