# Empty dependencies file for fig15_transfer_reduction.
# This may be replaced when dependencies are built.
