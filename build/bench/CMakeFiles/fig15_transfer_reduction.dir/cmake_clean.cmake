file(REMOVE_RECURSE
  "CMakeFiles/fig15_transfer_reduction.dir/fig15_transfer_reduction.cpp.o"
  "CMakeFiles/fig15_transfer_reduction.dir/fig15_transfer_reduction.cpp.o.d"
  "fig15_transfer_reduction"
  "fig15_transfer_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_transfer_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
