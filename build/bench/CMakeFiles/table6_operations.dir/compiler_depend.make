# Empty compiler generated dependencies file for table6_operations.
# This may be replaced when dependencies are built.
