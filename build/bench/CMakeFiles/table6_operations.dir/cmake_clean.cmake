file(REMOVE_RECURSE
  "CMakeFiles/table6_operations.dir/table6_operations.cpp.o"
  "CMakeFiles/table6_operations.dir/table6_operations.cpp.o.d"
  "table6_operations"
  "table6_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
