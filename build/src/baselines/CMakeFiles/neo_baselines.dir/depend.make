# Empty dependencies file for neo_baselines.
# This may be replaced when dependencies are built.
