file(REMOVE_RECURSE
  "CMakeFiles/neo_baselines.dir/backends.cpp.o"
  "CMakeFiles/neo_baselines.dir/backends.cpp.o.d"
  "libneo_baselines.a"
  "libneo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
