# Empty compiler generated dependencies file for neo_boot.
# This may be replaced when dependencies are built.
