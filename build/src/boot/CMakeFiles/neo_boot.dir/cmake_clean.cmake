file(REMOVE_RECURSE
  "CMakeFiles/neo_boot.dir/bootstrapper.cpp.o"
  "CMakeFiles/neo_boot.dir/bootstrapper.cpp.o.d"
  "CMakeFiles/neo_boot.dir/factored_transform.cpp.o"
  "CMakeFiles/neo_boot.dir/factored_transform.cpp.o.d"
  "libneo_boot.a"
  "libneo_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
