file(REMOVE_RECURSE
  "libneo_boot.a"
)
