file(REMOVE_RECURSE
  "CMakeFiles/neo_apps.dir/schedules.cpp.o"
  "CMakeFiles/neo_apps.dir/schedules.cpp.o.d"
  "libneo_apps.a"
  "libneo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
