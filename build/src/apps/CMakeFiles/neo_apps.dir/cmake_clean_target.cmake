file(REMOVE_RECURSE
  "libneo_apps.a"
)
