# Empty dependencies file for neo_apps.
# This may be replaced when dependencies are built.
