file(REMOVE_RECURSE
  "CMakeFiles/neo_core.dir/kernel_model.cpp.o"
  "CMakeFiles/neo_core.dir/kernel_model.cpp.o.d"
  "CMakeFiles/neo_core.dir/kernels.cpp.o"
  "CMakeFiles/neo_core.dir/kernels.cpp.o.d"
  "CMakeFiles/neo_core.dir/pipeline.cpp.o"
  "CMakeFiles/neo_core.dir/pipeline.cpp.o.d"
  "libneo_core.a"
  "libneo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
