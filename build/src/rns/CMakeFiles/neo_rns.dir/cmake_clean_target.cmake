file(REMOVE_RECURSE
  "libneo_rns.a"
)
