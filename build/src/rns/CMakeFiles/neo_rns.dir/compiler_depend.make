# Empty compiler generated dependencies file for neo_rns.
# This may be replaced when dependencies are built.
