
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rns/base_convert.cpp" "src/rns/CMakeFiles/neo_rns.dir/base_convert.cpp.o" "gcc" "src/rns/CMakeFiles/neo_rns.dir/base_convert.cpp.o.d"
  "/root/repo/src/rns/basis.cpp" "src/rns/CMakeFiles/neo_rns.dir/basis.cpp.o" "gcc" "src/rns/CMakeFiles/neo_rns.dir/basis.cpp.o.d"
  "/root/repo/src/rns/primes.cpp" "src/rns/CMakeFiles/neo_rns.dir/primes.cpp.o" "gcc" "src/rns/CMakeFiles/neo_rns.dir/primes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
