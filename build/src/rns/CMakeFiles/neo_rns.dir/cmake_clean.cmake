file(REMOVE_RECURSE
  "CMakeFiles/neo_rns.dir/base_convert.cpp.o"
  "CMakeFiles/neo_rns.dir/base_convert.cpp.o.d"
  "CMakeFiles/neo_rns.dir/basis.cpp.o"
  "CMakeFiles/neo_rns.dir/basis.cpp.o.d"
  "CMakeFiles/neo_rns.dir/primes.cpp.o"
  "CMakeFiles/neo_rns.dir/primes.cpp.o.d"
  "libneo_rns.a"
  "libneo_rns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_rns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
