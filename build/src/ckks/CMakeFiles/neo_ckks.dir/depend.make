# Empty dependencies file for neo_ckks.
# This may be replaced when dependencies are built.
