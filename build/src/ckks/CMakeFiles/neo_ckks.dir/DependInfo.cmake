
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckks/context.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/context.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/context.cpp.o.d"
  "/root/repo/src/ckks/encoder.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/encoder.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/encoder.cpp.o.d"
  "/root/repo/src/ckks/encryptor.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/encryptor.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/encryptor.cpp.o.d"
  "/root/repo/src/ckks/evaluator.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/evaluator.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/evaluator.cpp.o.d"
  "/root/repo/src/ckks/hoisting.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/hoisting.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/hoisting.cpp.o.d"
  "/root/repo/src/ckks/keygen.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/keygen.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/keygen.cpp.o.d"
  "/root/repo/src/ckks/keyswitch.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/keyswitch.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/keyswitch.cpp.o.d"
  "/root/repo/src/ckks/linear_transform.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/linear_transform.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/linear_transform.cpp.o.d"
  "/root/repo/src/ckks/noise.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/noise.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/noise.cpp.o.d"
  "/root/repo/src/ckks/paper_params.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/paper_params.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/paper_params.cpp.o.d"
  "/root/repo/src/ckks/params.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/params.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/params.cpp.o.d"
  "/root/repo/src/ckks/poly_eval.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/poly_eval.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/poly_eval.cpp.o.d"
  "/root/repo/src/ckks/security.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/security.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/security.cpp.o.d"
  "/root/repo/src/ckks/serialize.cpp" "src/ckks/CMakeFiles/neo_ckks.dir/serialize.cpp.o" "gcc" "src/ckks/CMakeFiles/neo_ckks.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/poly/CMakeFiles/neo_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/neo_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
