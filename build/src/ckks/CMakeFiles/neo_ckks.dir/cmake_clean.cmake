file(REMOVE_RECURSE
  "CMakeFiles/neo_ckks.dir/context.cpp.o"
  "CMakeFiles/neo_ckks.dir/context.cpp.o.d"
  "CMakeFiles/neo_ckks.dir/encoder.cpp.o"
  "CMakeFiles/neo_ckks.dir/encoder.cpp.o.d"
  "CMakeFiles/neo_ckks.dir/encryptor.cpp.o"
  "CMakeFiles/neo_ckks.dir/encryptor.cpp.o.d"
  "CMakeFiles/neo_ckks.dir/evaluator.cpp.o"
  "CMakeFiles/neo_ckks.dir/evaluator.cpp.o.d"
  "CMakeFiles/neo_ckks.dir/hoisting.cpp.o"
  "CMakeFiles/neo_ckks.dir/hoisting.cpp.o.d"
  "CMakeFiles/neo_ckks.dir/keygen.cpp.o"
  "CMakeFiles/neo_ckks.dir/keygen.cpp.o.d"
  "CMakeFiles/neo_ckks.dir/keyswitch.cpp.o"
  "CMakeFiles/neo_ckks.dir/keyswitch.cpp.o.d"
  "CMakeFiles/neo_ckks.dir/linear_transform.cpp.o"
  "CMakeFiles/neo_ckks.dir/linear_transform.cpp.o.d"
  "CMakeFiles/neo_ckks.dir/noise.cpp.o"
  "CMakeFiles/neo_ckks.dir/noise.cpp.o.d"
  "CMakeFiles/neo_ckks.dir/paper_params.cpp.o"
  "CMakeFiles/neo_ckks.dir/paper_params.cpp.o.d"
  "CMakeFiles/neo_ckks.dir/params.cpp.o"
  "CMakeFiles/neo_ckks.dir/params.cpp.o.d"
  "CMakeFiles/neo_ckks.dir/poly_eval.cpp.o"
  "CMakeFiles/neo_ckks.dir/poly_eval.cpp.o.d"
  "CMakeFiles/neo_ckks.dir/security.cpp.o"
  "CMakeFiles/neo_ckks.dir/security.cpp.o.d"
  "CMakeFiles/neo_ckks.dir/serialize.cpp.o"
  "CMakeFiles/neo_ckks.dir/serialize.cpp.o.d"
  "libneo_ckks.a"
  "libneo_ckks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_ckks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
