file(REMOVE_RECURSE
  "libneo_ckks.a"
)
