
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poly/mat_mul.cpp" "src/poly/CMakeFiles/neo_poly.dir/mat_mul.cpp.o" "gcc" "src/poly/CMakeFiles/neo_poly.dir/mat_mul.cpp.o.d"
  "/root/repo/src/poly/matrix_ntt.cpp" "src/poly/CMakeFiles/neo_poly.dir/matrix_ntt.cpp.o" "gcc" "src/poly/CMakeFiles/neo_poly.dir/matrix_ntt.cpp.o.d"
  "/root/repo/src/poly/ntt.cpp" "src/poly/CMakeFiles/neo_poly.dir/ntt.cpp.o" "gcc" "src/poly/CMakeFiles/neo_poly.dir/ntt.cpp.o.d"
  "/root/repo/src/poly/rns_poly.cpp" "src/poly/CMakeFiles/neo_poly.dir/rns_poly.cpp.o" "gcc" "src/poly/CMakeFiles/neo_poly.dir/rns_poly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rns/CMakeFiles/neo_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
