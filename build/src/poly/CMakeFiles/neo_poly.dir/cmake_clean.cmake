file(REMOVE_RECURSE
  "CMakeFiles/neo_poly.dir/mat_mul.cpp.o"
  "CMakeFiles/neo_poly.dir/mat_mul.cpp.o.d"
  "CMakeFiles/neo_poly.dir/matrix_ntt.cpp.o"
  "CMakeFiles/neo_poly.dir/matrix_ntt.cpp.o.d"
  "CMakeFiles/neo_poly.dir/ntt.cpp.o"
  "CMakeFiles/neo_poly.dir/ntt.cpp.o.d"
  "CMakeFiles/neo_poly.dir/rns_poly.cpp.o"
  "CMakeFiles/neo_poly.dir/rns_poly.cpp.o.d"
  "libneo_poly.a"
  "libneo_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
