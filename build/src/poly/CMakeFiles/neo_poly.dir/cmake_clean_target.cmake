file(REMOVE_RECURSE
  "libneo_poly.a"
)
