# Empty dependencies file for neo_poly.
# This may be replaced when dependencies are built.
