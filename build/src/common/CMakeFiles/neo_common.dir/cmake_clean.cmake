file(REMOVE_RECURSE
  "CMakeFiles/neo_common.dir/random.cpp.o"
  "CMakeFiles/neo_common.dir/random.cpp.o.d"
  "CMakeFiles/neo_common.dir/table.cpp.o"
  "CMakeFiles/neo_common.dir/table.cpp.o.d"
  "libneo_common.a"
  "libneo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
