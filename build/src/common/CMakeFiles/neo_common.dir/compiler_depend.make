# Empty compiler generated dependencies file for neo_common.
# This may be replaced when dependencies are built.
