file(REMOVE_RECURSE
  "libneo_common.a"
)
