
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/bitslice.cpp" "src/tensor/CMakeFiles/neo_tensor.dir/bitslice.cpp.o" "gcc" "src/tensor/CMakeFiles/neo_tensor.dir/bitslice.cpp.o.d"
  "/root/repo/src/tensor/gemm.cpp" "src/tensor/CMakeFiles/neo_tensor.dir/gemm.cpp.o" "gcc" "src/tensor/CMakeFiles/neo_tensor.dir/gemm.cpp.o.d"
  "/root/repo/src/tensor/layout.cpp" "src/tensor/CMakeFiles/neo_tensor.dir/layout.cpp.o" "gcc" "src/tensor/CMakeFiles/neo_tensor.dir/layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/poly/CMakeFiles/neo_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/neo_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
