file(REMOVE_RECURSE
  "libneo_tensor.a"
)
