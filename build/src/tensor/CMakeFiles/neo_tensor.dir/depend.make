# Empty dependencies file for neo_tensor.
# This may be replaced when dependencies are built.
