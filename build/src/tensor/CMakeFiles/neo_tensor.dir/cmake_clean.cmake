file(REMOVE_RECURSE
  "CMakeFiles/neo_tensor.dir/bitslice.cpp.o"
  "CMakeFiles/neo_tensor.dir/bitslice.cpp.o.d"
  "CMakeFiles/neo_tensor.dir/gemm.cpp.o"
  "CMakeFiles/neo_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/neo_tensor.dir/layout.cpp.o"
  "CMakeFiles/neo_tensor.dir/layout.cpp.o.d"
  "libneo_tensor.a"
  "libneo_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
