file(REMOVE_RECURSE
  "libneo_gpusim.a"
)
