file(REMOVE_RECURSE
  "CMakeFiles/neo_gpusim.dir/event_sim.cpp.o"
  "CMakeFiles/neo_gpusim.dir/event_sim.cpp.o.d"
  "CMakeFiles/neo_gpusim.dir/kernel_cost.cpp.o"
  "CMakeFiles/neo_gpusim.dir/kernel_cost.cpp.o.d"
  "CMakeFiles/neo_gpusim.dir/memory_model.cpp.o"
  "CMakeFiles/neo_gpusim.dir/memory_model.cpp.o.d"
  "CMakeFiles/neo_gpusim.dir/tcu_model.cpp.o"
  "CMakeFiles/neo_gpusim.dir/tcu_model.cpp.o.d"
  "libneo_gpusim.a"
  "libneo_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
