
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/event_sim.cpp" "src/gpusim/CMakeFiles/neo_gpusim.dir/event_sim.cpp.o" "gcc" "src/gpusim/CMakeFiles/neo_gpusim.dir/event_sim.cpp.o.d"
  "/root/repo/src/gpusim/kernel_cost.cpp" "src/gpusim/CMakeFiles/neo_gpusim.dir/kernel_cost.cpp.o" "gcc" "src/gpusim/CMakeFiles/neo_gpusim.dir/kernel_cost.cpp.o.d"
  "/root/repo/src/gpusim/memory_model.cpp" "src/gpusim/CMakeFiles/neo_gpusim.dir/memory_model.cpp.o" "gcc" "src/gpusim/CMakeFiles/neo_gpusim.dir/memory_model.cpp.o.d"
  "/root/repo/src/gpusim/tcu_model.cpp" "src/gpusim/CMakeFiles/neo_gpusim.dir/tcu_model.cpp.o" "gcc" "src/gpusim/CMakeFiles/neo_gpusim.dir/tcu_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/neo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/ckks/CMakeFiles/neo_ckks.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/neo_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/neo_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
