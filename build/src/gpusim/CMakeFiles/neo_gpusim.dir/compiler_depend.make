# Empty compiler generated dependencies file for neo_gpusim.
# This may be replaced when dependencies are built.
