/**
 * Closed-form cross-checks of the interconnect cost model
 * (gpusim/topology): the CollectiveModel's α–β prices must equal the
 * textbook formulas for ring and fully-connected all-gather /
 * reduce-scatter / all-to-all, chunk pipelining must amortize exactly
 * as (steps + C − 1)·(α + m/(C·bw)), degenerate topologies must price
 * everything at zero, and the presets must keep the properties the
 * sharded keyswitch model relies on. Mirrors gpusim_cost_test for the
 * communication side (ctest label `gpusim`).
 */
#include <gtest/gtest.h>

#include "gpusim/topology.h"

using namespace neo;
using gpusim::CollectiveCost;
using gpusim::CollectiveModel;
using gpusim::Interconnect;
using gpusim::Topology;
using gpusim::TopologyShape;

namespace {

Topology
ring(size_t n, double bw = 50e9, double lat = 1e-6)
{
    Topology t;
    t.devices = n;
    t.shape = TopologyShape::ring;
    t.link = {bw, lat};
    return t;
}

Topology
fc(size_t n, double bw = 50e9, double lat = 1e-6)
{
    Topology t;
    t.devices = n;
    t.shape = TopologyShape::fully_connected;
    t.link = {bw, lat};
    return t;
}

} // namespace

// ---------------------------------------------------------------------
// Ring collectives: the classic (n−1)-step formulas
// ---------------------------------------------------------------------

TEST(CollectiveRing, AllGatherMatchesClosedForm)
{
    for (size_t n : {2u, 4u, 8u}) {
        const auto topo = ring(n);
        const CollectiveModel cm(topo);
        const double m = 3e6; // shard bytes
        const auto c = cm.all_gather(m);
        // Ring all-gather: n−1 steps, each device forwards one shard
        // of m bytes per step.
        EXPECT_EQ(c.steps, n - 1);
        EXPECT_DOUBLE_EQ(c.bytes_per_link,
                         static_cast<double>(n - 1) * m);
        EXPECT_DOUBLE_EQ(c.total_bytes,
                         static_cast<double>(n) *
                             static_cast<double>(n - 1) * m);
        EXPECT_DOUBLE_EQ(
            c.time_s, static_cast<double>(n - 1) *
                          (topo.link.latency_s + m / topo.link.bandwidth));
    }
}

TEST(CollectiveRing, ReduceScatterIsAllGatherDual)
{
    // Reduce-scatter traverses the same ring schedule in reverse:
    // identical steps, bytes and time.
    const auto topo = ring(4);
    const CollectiveModel cm(topo);
    const double m = 7e5;
    const auto ag = cm.all_gather(m);
    const auto rs = cm.reduce_scatter(m);
    EXPECT_EQ(rs.steps, ag.steps);
    EXPECT_DOUBLE_EQ(rs.bytes_per_link, ag.bytes_per_link);
    EXPECT_DOUBLE_EQ(rs.total_bytes, ag.total_bytes);
    EXPECT_DOUBLE_EQ(rs.time_s, ag.time_s);
}

TEST(CollectiveRing, AllToAllRoutesHalfRing)
{
    for (size_t n : {2u, 4u, 8u}) {
        const auto topo = ring(n);
        const CollectiveModel cm(topo);
        const double p = 1e6; // bytes per (src, dst) pair
        const auto c = cm.all_to_all(p);
        EXPECT_EQ(c.steps, n - 1);
        // Every pair's payload travels ring hops; total fabric bytes
        // are the n(n−1) pairs' payloads.
        EXPECT_DOUBLE_EQ(c.total_bytes,
                         static_cast<double>(n) *
                             static_cast<double>(n - 1) * p);
        EXPECT_GE(c.bytes_per_link, p);
    }
}

// ---------------------------------------------------------------------
// Fully-connected collectives: one step, direct links
// ---------------------------------------------------------------------

TEST(CollectiveFC, AllGatherIsOneDirectStep)
{
    for (size_t n : {2u, 4u, 8u}) {
        const auto topo = fc(n);
        const CollectiveModel cm(topo);
        const double m = 2e6;
        const auto c = cm.all_gather(m);
        EXPECT_EQ(c.steps, 1u);
        EXPECT_DOUBLE_EQ(c.bytes_per_link, m);
        // Same fabric total as the ring: n devices each receive
        // (n−1)·m bytes, just over direct links in parallel.
        EXPECT_DOUBLE_EQ(c.total_bytes,
                         static_cast<double>(n) *
                             static_cast<double>(n - 1) * m);
        EXPECT_DOUBLE_EQ(c.time_s, topo.link.latency_s +
                                       m / topo.link.bandwidth);
    }
}

TEST(CollectiveFC, FasterThanRingAtEqualLinkSpeed)
{
    // With identical per-link constants the FC schedule's single step
    // beats the ring's n−1 serial steps.
    for (size_t n : {4u, 8u}) {
        const CollectiveModel r(ring(n));
        const CollectiveModel f(fc(n));
        const double m = 5e6;
        EXPECT_LT(f.all_gather(m).time_s, r.all_gather(m).time_s);
        EXPECT_LT(f.reduce_scatter(m).time_s,
                  r.reduce_scatter(m).time_s);
        EXPECT_LT(f.all_to_all(m).time_s, r.all_to_all(m).time_s);
    }
}

// ---------------------------------------------------------------------
// Chunk pipelining
// ---------------------------------------------------------------------

TEST(CollectiveChunks, PipelineFormulaIsExact)
{
    const auto topo = ring(4);
    const CollectiveModel cm(topo);
    const double m = 8e6;
    for (size_t chunks : {1u, 2u, 4u, 16u}) {
        const auto c = cm.all_gather(m, chunks);
        const double s = static_cast<double>(topo.devices - 1);
        const double cd = static_cast<double>(chunks);
        const double expect =
            (s + cd - 1.0) *
            (topo.link.latency_s + m / (cd * topo.link.bandwidth));
        EXPECT_DOUBLE_EQ(c.time_s, expect) << "chunks=" << chunks;
        // Byte accounting is chunk-invariant.
        EXPECT_DOUBLE_EQ(c.total_bytes, cm.all_gather(m).total_bytes);
    }
}

TEST(CollectiveChunks, AmortizationHelpsDeepSchedulesOnly)
{
    const double m = 64e6;
    // Ring (steps > 1): pipelining hides all but one chunk's latency,
    // so some chunking beats none for a bandwidth-heavy payload.
    {
        const CollectiveModel cm(ring(8));
        EXPECT_LT(cm.all_gather(m, 8).time_s, cm.all_gather(m, 1).time_s);
    }
    // FC (one step): extra chunks only add latency terms.
    {
        const CollectiveModel cm(fc(8));
        EXPECT_GE(cm.all_gather(m, 8).time_s, cm.all_gather(m, 1).time_s);
        EXPECT_EQ(cm.best_chunks(m), 1u);
    }
}

TEST(CollectiveChunks, BestChunksMinimizesTime)
{
    for (const auto &topo : {ring(8), fc(8), ring(2, 25e9, 5e-6)}) {
        const CollectiveModel cm(topo);
        for (double m : {1e3, 1e6, 64e6}) {
            const size_t best = cm.best_chunks(m);
            const double t_best = cm.all_gather(m, best).time_s;
            for (size_t c : {1u, 2u, 4u, 8u, 16u, 32u, 64u})
                EXPECT_LE(t_best, cm.all_gather(m, c).time_s)
                    << "m=" << m << " challenger=" << c;
        }
    }
}

// ---------------------------------------------------------------------
// Degenerate and preset topologies
// ---------------------------------------------------------------------

TEST(TopologyDegenerate, SingleDevicePricesEverythingZero)
{
    const auto topo = Topology::single();
    const CollectiveModel cm(topo);
    EXPECT_EQ(topo.devices, 1u);
    EXPECT_EQ(topo.num_links(), 0u);
    for (const auto &c :
         {cm.all_gather(1e6), cm.reduce_scatter(1e6), cm.all_to_all(1e6)}) {
        EXPECT_EQ(c.steps, 0u);
        EXPECT_DOUBLE_EQ(c.time_s, 0.0);
        EXPECT_DOUBLE_EQ(c.bytes_per_link, 0.0);
        EXPECT_DOUBLE_EQ(c.total_bytes, 0.0);
    }
}

TEST(TopologyPresets, ShapesLinksAndNames)
{
    const auto nv = Topology::nvlink(4);
    EXPECT_EQ(nv.shape, TopologyShape::fully_connected);
    EXPECT_EQ(nv.num_links(), 12u); // 4·3 directed pairs
    // 300 GB/s egress split across 3 peers.
    EXPECT_DOUBLE_EQ(nv.link.bandwidth, 300e9 / 3);

    const auto pc = Topology::pcie(4);
    EXPECT_EQ(pc.shape, TopologyShape::ring);
    EXPECT_EQ(pc.num_links(), 4u);
    EXPECT_GT(nv.link.bandwidth, pc.link.bandwidth);
    EXPECT_LT(nv.link.latency_s, pc.link.latency_s);

    EXPECT_STREQ(gpusim::interconnect_name(Interconnect::nvlink),
                 "nvlink");
    EXPECT_STREQ(gpusim::interconnect_name(Interconnect::pcie), "pcie");
    Interconnect ic;
    EXPECT_TRUE(gpusim::parse_interconnect("pcie", &ic));
    EXPECT_EQ(ic, Interconnect::pcie);
    EXPECT_TRUE(gpusim::parse_interconnect("nvlink", &ic));
    EXPECT_EQ(ic, Interconnect::nvlink);
    EXPECT_FALSE(gpusim::parse_interconnect("infiniband", &ic));
}

TEST(TopologyPresets, PresetDispatchMatchesFactories)
{
    const auto a = Topology::preset(Interconnect::nvlink, 8);
    const auto b = Topology::nvlink(8);
    EXPECT_EQ(a.devices, b.devices);
    EXPECT_EQ(a.shape, b.shape);
    EXPECT_DOUBLE_EQ(a.link.bandwidth, b.link.bandwidth);
    const auto c = Topology::preset(Interconnect::pcie, 8);
    EXPECT_EQ(c.shape, TopologyShape::ring);
}

TEST(TopologyPresets, NvlinkBeatsPcieOnKeyswitchScalePayloads)
{
    // The crossover argument's fabric half: at the ~100 MB payloads a
    // batched keyswitch exchanges, NVLink collectives are an order of
    // magnitude cheaper than the PCIe ring.
    for (size_t n : {2u, 4u}) {
        const CollectiveModel nv(Topology::nvlink(n));
        const CollectiveModel pc(Topology::pcie(n));
        const double m = 128e6;
        EXPECT_LT(nv.all_gather(m, nv.best_chunks(m)).time_s,
                  pc.all_gather(m, pc.best_chunks(m)).time_s / 4);
    }
}
