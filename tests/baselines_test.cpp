#include <gtest/gtest.h>

#include "apps/schedules.h"
#include "baselines/backends.h"

namespace neo::baselines {
namespace {

TEST(PaperParams, Table4Derivations)
{
    auto a = ckks::paper_set('A');
    EXPECT_EQ(a.alpha(), 36u);
    EXPECT_EQ(a.beta(35), 1u);
    auto c = ckks::paper_set('C');
    EXPECT_EQ(c.alpha(), 4u);
    EXPECT_EQ(c.beta(35), 9u);
    EXPECT_EQ(c.beta_tilde(35), 8u);
    EXPECT_EQ(c.klss_alpha_prime(), 8u);
    auto e = ckks::paper_set('E');
    EXPECT_EQ(e.batch, 1u);
    EXPECT_FALSE(e.klss.enabled());
    auto h = ckks::paper_set('H');
    EXPECT_EQ(h.max_level, 44u);
    EXPECT_THROW(ckks::paper_set('Z'), std::invalid_argument);
}

TEST(Backends, OperationOrderingMatchesTable6)
{
    // Table 6 at l = 35 (per batched op): Neo < HEonGPU < TensorFHE.
    auto neo = make_neo('C').model();
    auto heon = make_heongpu().model();
    auto tfhe_a = make_tensorfhe('A').model();
    auto tfhe_c = make_tensorfhe('C').model();
    auto cpu = make_cpu().model();

    const double t_neo = neo.hmult_time(35);
    const double t_heon = heon.hmult_time(35);
    const double t_tfhe = tfhe_a.hmult_time(35);
    EXPECT_LT(t_neo, t_heon);
    EXPECT_LT(t_heon, t_tfhe);
    EXPECT_LT(t_tfhe, cpu.hmult_time(44));

    // TensorFHE degrades from Set-A to Set-C (larger d_num), as in
    // Table 6's 15.3 -> 32.5 ms progression.
    EXPECT_LT(tfhe_a.hmult_time(35), tfhe_c.hmult_time(35));

    // Magnitudes within 3x of the published values (3472 us / 8172 us
    // / 15304 us — our substrate is a model, shapes matter).
    EXPECT_GT(t_neo, 3472e-6 / 3);
    EXPECT_LT(t_neo, 3472e-6 * 3);
    EXPECT_GT(t_heon, 8172e-6 / 3);
    EXPECT_LT(t_heon, 8172e-6 * 3);
}

TEST(Backends, NeoSpeedupOverTensorFheInPaperRange)
{
    // The headline: 3.28x over TensorFHE's best configuration (ours
    // lands in the 2x-8x band; who wins is the invariant).
    auto neo = make_neo('C').model();
    double best_tfhe = 1e9;
    for (char set : {'A', 'B', 'C'}) {
        best_tfhe =
            std::min(best_tfhe, make_tensorfhe(set).model().hmult_time(35));
    }
    const double speedup = best_tfhe / neo.hmult_time(35);
    EXPECT_GT(speedup, 2.0);
    EXPECT_LT(speedup, 16.0);
}

TEST(Backends, AblationLadderIsMonotone)
{
    // Fig 14: every optimization rung lowers application time. The
    // ladder extends past the paper's axes with the elementwise
    // fusion and graph-capture rungs (PR 6).
    auto ladder = ablation_ladder();
    ASSERT_EQ(ladder.size(), 7u);
    double prev = 1e18;
    for (const auto &rung : ladder) {
        auto m = rung.model();
        auto sched = apps::resnet(rung.params, 20);
        double t = apps::run_schedule(sched, m);
        EXPECT_LT(t, prev) << rung.name;
        prev = t;
    }
}

TEST(Backends, CpuDeviceHasNoTensorCores)
{
    auto cpu = cpu_device();
    EXPECT_EQ(cpu.fp64_tcu_flops, 0);
    EXPECT_EQ(cpu.int8_tcu_ops, 0);
    EXPECT_LT(cpu.int32_cuda_ops, 1e12);
}

} // namespace
} // namespace neo::baselines

namespace neo::apps {
namespace {

TEST(Schedules, BootstrapShape)
{
    auto p = ckks::paper_set('C');
    auto s = pack_bootstrap(p);
    // 6 BSGS stages with 16 rotations each, plus one conjugation.
    EXPECT_DOUBLE_EQ(s.total(OpKind::hrotate), 97);
    EXPECT_DOUBLE_EQ(s.total(OpKind::hmult), 12);
    EXPECT_GT(s.total(OpKind::pmult), 300);
    // DS appears when WordSize < 40 (§2.1: essential below 36 bits).
    EXPECT_GT(s.total(OpKind::double_rescale), 0);
    auto p60 = ckks::paper_set('E');
    EXPECT_DOUBLE_EQ(pack_bootstrap(p60).total(OpKind::double_rescale), 0);
}

TEST(Schedules, ResNetScalesLinearlyInLayers)
{
    auto p = ckks::paper_set('C');
    auto m = baselines::make_neo('C').model();
    const double t20 = run_schedule(resnet(p, 20), m);
    const double t32 = run_schedule(resnet(p, 32), m);
    const double t56 = run_schedule(resnet(p, 56), m);
    EXPECT_LT(t20, t32);
    EXPECT_LT(t32, t56);
    // Table 5 ratios: 20:32:56 are close to linear (1 : 1.63 : 2.91
    // for Neo).
    EXPECT_NEAR(t32 / t20, 1.6, 0.25);
    EXPECT_NEAR(t56 / t20, 2.9, 0.45);
    EXPECT_THROW(resnet(p, 18), std::invalid_argument);
}

TEST(Schedules, HelrembedsOneBootstrap)
{
    auto p = ckks::paper_set('C');
    auto s = helr_iteration(p);
    EXPECT_DOUBLE_EQ(s.bootstraps, 1);
    EXPECT_GT(s.total(OpKind::hrotate), 10);
    auto m = baselines::make_neo('C').model();
    // HELR > bare bootstrap, < 2x bootstrap (Table 5: 0.22 vs 0.24 —
    // the iteration is bootstrap-dominated).
    const double t_boot = run_schedule(pack_bootstrap(p), m);
    const double t_helr = run_schedule(s, m);
    EXPECT_GT(t_helr, t_boot);
    EXPECT_LT(t_helr, 2 * t_boot);
}

TEST(Schedules, ApplicationOrderingMatchesTable5)
{
    // PackBootstrap: Neo < HEonGPU < TensorFHE (0.24 / 0.36 / 0.74 s).
    auto neo = baselines::make_neo('C');
    auto heon = baselines::make_heongpu();
    auto tfhe = baselines::make_tensorfhe('B');
    const double t_neo =
        run_schedule(pack_bootstrap(neo.params), neo.model());
    const double t_heon =
        run_schedule(pack_bootstrap(heon.params), heon.model());
    const double t_tfhe =
        run_schedule(pack_bootstrap(tfhe.params), tfhe.model());
    EXPECT_LT(t_neo, t_heon);
    EXPECT_LT(t_heon, t_tfhe);
    // Bands: within 3x of the published seconds.
    EXPECT_GT(t_neo, 0.24 / 3);
    EXPECT_LT(t_neo, 0.24 * 3);
    EXPECT_GT(t_tfhe, 0.74 / 3);
    EXPECT_LT(t_tfhe, 0.74 * 3);
}

TEST(Schedules, SsVariantsAreFasterPerOpThanFullDepth)
{
    // Set-G (L = 23) costs less per bootstrap than Set-C (L = 35),
    // mirroring Neo_SS's 0.17 s vs Neo's 0.24 s.
    auto ss = baselines::make_neo_ss();
    auto full = baselines::make_neo('C');
    const double t_ss = run_schedule(pack_bootstrap(ss.params), ss.model());
    const double t_full =
        run_schedule(pack_bootstrap(full.params), full.model());
    EXPECT_LT(t_ss, t_full);
}

} // namespace
} // namespace neo::apps
