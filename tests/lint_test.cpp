/**
 * @file
 * neo-lint test suite: every rule against a good and a bad fixture,
 * suppression and as-path markers, deterministic JSON output against a
 * golden file, and the bit-budget prover — including its rejection of
 * a synthetic out-of-budget plan — plus a CLI smoke run of the real
 * binary (label `lint`).
 */
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "lint/lint.h"
#include "tensor/bitslice.h"

namespace neo::lint {
namespace {

std::string
fixture_path(const std::string &name)
{
    return std::string(NEO_TEST_DATA_DIR) + "/lint/" + name;
}

std::string
read_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// Scan one fixture by its on-disk name; findings report that name.
std::vector<Finding>
scan_fixture(const std::string &name, int *suppressed = nullptr)
{
    return scan_source(name, read_file(fixture_path(name)), suppressed);
}

std::vector<std::string>
rules_of(const std::vector<Finding> &fs)
{
    std::vector<std::string> r;
    for (const Finding &f : fs)
        r.push_back(f.rule);
    return r;
}

// ---------------------------------------------------------------------
// Rules engine
// ---------------------------------------------------------------------

TEST(LintRules, RawModFlagsModulusOperands)
{
    const auto fs = scan_fixture("bad_raw_mod.cpp");
    ASSERT_EQ(fs.size(), 3u);
    EXPECT_EQ(fs[0].rule, rule::raw_mod);
    EXPECT_EQ(fs[0].line, 6); // x % q
    EXPECT_EQ(fs[1].line, 7); // r /= q
    EXPECT_EQ(fs[2].line, 8); // x % m.value()
    // as-path classified the scan, but findings report the real path.
    EXPECT_EQ(fs[0].file, "bad_raw_mod.cpp");
}

TEST(LintRules, RawModIgnoresIndexMathCommentsAndStrings)
{
    EXPECT_TRUE(scan_fixture("good_raw_mod.cpp").empty());
}

TEST(LintRules, FloatOnLimbFlagsIndexedAndValueCasts)
{
    const auto fs = scan_fixture("bad_float_on_limb.cpp");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, rule::float_on_limb);
    EXPECT_EQ(fs[0].line, 6); // limbs[i]
    EXPECT_EQ(fs[1].line, 7); // q.value()
}

TEST(LintRules, FloatOnLimbPassesScalarsAndTensorCode)
{
    EXPECT_TRUE(scan_fixture("good_float_scalar.cpp").empty());
    // Identical cast, but as-path(src/tensor/...) — sanctioned there.
    EXPECT_TRUE(scan_fixture("good_float_tensor.cpp").empty());
}

TEST(LintRules, CommModelCodePassesRawModAndFloatOnLimb)
{
    // The interconnect/shard cost model (as-path src/neo/) lives in
    // the strictest rule scope: float math over byte counts and
    // ceil-partition index math must stay tree-clean under both the
    // raw-mod and float-on-limb rules.
    EXPECT_TRUE(scan_fixture("good_comm_model.cpp").empty());
}

TEST(LintRules, ThreadUnsafeStaticSkipsConstMutexAtomic)
{
    const auto fs = scan_fixture("bad_static.cpp");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, rule::thread_unsafe_static);
    EXPECT_EQ(fs[0].line, 5); // static int counter
}

TEST(LintRules, BannedRngFlagsRandDeviceAndWallClock)
{
    const auto fs = scan_fixture("bad_rng.cpp");
    ASSERT_EQ(fs.size(), 4u);
    for (const Finding &f : fs)
        EXPECT_EQ(f.rule, rule::banned_rng);
    EXPECT_EQ(fs[0].line, 5); // rand()
    EXPECT_EQ(fs[1].line, 6); // std::random_device
    EXPECT_EQ(fs[2].line, 7); // srand(...)
    EXPECT_EQ(fs[3].line, 8); // time(nullptr)
}

TEST(LintRules, NakedNewWordBoundary)
{
    const auto fs = scan_fixture("bad_naked_new.cpp");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, rule::naked_new);
    EXPECT_EQ(fs[0].line, 5); // `renew` on other lines must not match
}

TEST(LintRules, HeaderHygieneFlagsMissingPragmaAndUsingNamespace)
{
    const auto fs = scan_fixture("bad_header.h");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, rule::header_hygiene);
    EXPECT_EQ(fs[0].line, 1); // missing #pragma once
    EXPECT_EQ(fs[1].line, 2); // using namespace std
}

TEST(LintRules, HeaderHygienePassesCleanHeader)
{
    EXPECT_TRUE(scan_fixture("good_header.h").empty());
}

TEST(LintRules, ObsSpanLeakFlagsDiscardedTemporaries)
{
    const auto fs = scan_fixture("bad_obs_span_leak.cpp");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, rule::obs_span_leak);
    EXPECT_EQ(fs[0].line, 6); // obs::Span(...)
    EXPECT_EQ(fs[1].line, 7); // fully qualified neo::obs::Span(...)
}

TEST(LintRules, ObsSpanLeakPassesNamedBoundAndPassedSpans)
{
    int suppressed = 0;
    EXPECT_TRUE(scan_fixture("good_obs_span.cpp", &suppressed).empty());
    EXPECT_EQ(suppressed, 1); // the annotated deliberate temporary
}

TEST(LintRules, AllowSuppressesOwnAndNextLineOnlyForNamedRule)
{
    int suppressed = 0;
    const auto fs = scan_fixture("suppressed.cpp", &suppressed);
    EXPECT_EQ(suppressed, 2); // same-line + line-above markers
    ASSERT_EQ(fs.size(), 1u); // wrong-rule marker does not suppress
    EXPECT_EQ(fs[0].rule, rule::raw_mod);
    EXPECT_EQ(fs[0].line, 10);
}

TEST(LintRules, UnannotatedMutexFlagsRawStdMembers)
{
    const auto fs = scan_fixture("bad_unannotated_mutex.cpp");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, rule::unannotated_mutex);
    EXPECT_EQ(fs[0].line, 6); // std::mutex mu
    EXPECT_EQ(fs[1].line, 7); // mutable std::shared_mutex rw
}

TEST(LintRules, UnannotatedMutexPassesNeoWrappersAndAllowedRawMember)
{
    int suppressed = 0;
    EXPECT_TRUE(
        scan_fixture("good_unannotated_mutex.cpp", &suppressed).empty());
    EXPECT_EQ(suppressed, 1); // the sanctioned FFI member
}

TEST(LintRules, LockDisciplineFlagsNakedCallsOnKnownLockMembers)
{
    const auto fs = scan_fixture("bad_lock_discipline.cpp");
    ASSERT_EQ(fs.size(), 4u);
    for (const Finding &f : fs)
        EXPECT_EQ(f.rule, rule::lock_discipline);
    EXPECT_EQ(fs[0].line, 11); // mu.lock()
    EXPECT_EQ(fs[1].line, 12); // rw.lock_shared()
    EXPECT_EQ(fs[2].line, 13); // rw.unlock_shared()
    EXPECT_EQ(fs[3].line, 14); // mu.unlock()
    // line 15 (`other.lock()`) is not a known lock member: no finding
}

TEST(LintRules, LockDisciplinePassesRaiiGuardsAndUnknownReceivers)
{
    int suppressed = 0;
    EXPECT_TRUE(
        scan_fixture("good_lock_discipline.cpp", &suppressed).empty());
    EXPECT_EQ(suppressed, 1); // the annotated FFI handoff
}

TEST(LintRules, UnorderedIterationFlagsOutputPathsAndStreams)
{
    const auto fs = scan_fixture("bad_unordered_output.cpp");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, rule::unordered_iteration_output);
    EXPECT_EQ(fs[0].line, 13); // member map inside write_json
    EXPECT_EQ(fs[1].line, 19); // parameter map feeding a stream
}

TEST(LintRules, UnorderedIterationPassesAccumulationAndSortedCopies)
{
    int suppressed = 0;
    EXPECT_TRUE(
        scan_fixture("good_unordered_output.cpp", &suppressed).empty());
    EXPECT_EQ(suppressed, 1); // the collect-then-sort loop
}

TEST(LintRules, NonatomicSharedCounterFlagsOnlyLockOwningClasses)
{
    const auto fs = scan_fixture("bad_shared_counter.cpp");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, rule::nonatomic_shared_counter);
    EXPECT_EQ(fs[0].line, 6); // u64 hits
    EXPECT_EQ(fs[1].line, 7); // bool dirty
    // guarded / atomic / double members and the lock-free class pass
}

TEST(LintRules, NonatomicSharedCounterPassesGuardedAtomicConst)
{
    int suppressed = 0;
    EXPECT_TRUE(
        scan_fixture("good_shared_counter.cpp", &suppressed).empty());
    EXPECT_EQ(suppressed, 1); // the registry-guarded LRU stamp
}

TEST(LintRules, RawStringLiteralsAreBlanked)
{
    // Rule-triggering text inside R"(...)" and R"delim(...)delim"
    // literals — including multi-line and u8-prefixed ones — must
    // not fire any rule.
    EXPECT_TRUE(scan_fixture("good_raw_string.cpp").empty());
}

TEST(LintRules, RawStringKeepsLineNumbersAligned)
{
    // A real finding AFTER a multi-line raw string must report its
    // true line: the blanked raw-string newlines still count.
    const std::string text = "const char *s = R\"x(\n"
                             "  % q\n"
                             "  new int;\n"
                             ")x\";\n"
                             "int *p = new int;\n";
    const auto fs = scan_source("raw_lines.cpp", text, nullptr);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, rule::naked_new);
    EXPECT_EQ(fs[0].line, 5);
}

TEST(LintRules, AllRulesAreCoveredByFixtures)
{
    // Every registered rule fires on at least one bad fixture above.
    std::vector<std::string> seen;
    for (const char *f :
         {"bad_raw_mod.cpp", "bad_float_on_limb.cpp", "bad_static.cpp",
          "bad_rng.cpp", "bad_naked_new.cpp", "bad_header.h",
          "bad_obs_span_leak.cpp", "bad_unannotated_mutex.cpp",
          "bad_lock_discipline.cpp", "bad_unordered_output.cpp",
          "bad_shared_counter.cpp"})
        for (const std::string &r : rules_of(scan_fixture(f)))
            seen.push_back(r);
    for (const std::string &r : all_rules())
        EXPECT_NE(std::find(seen.begin(), seen.end(), r), seen.end())
            << "no fixture exercises rule " << r;
}

// ---------------------------------------------------------------------
// Reporters
// ---------------------------------------------------------------------

TEST(LintReport, JsonMatchesGoldenFile)
{
    Options opts;
    opts.root = fixture_path("");
    opts.paths = {"."};
    opts.run_budget = false;
    const Report rep = run(opts);
    std::ostringstream out;
    write_json(rep, out);
    const std::string golden = read_file(fixture_path("report_golden.json"));
    EXPECT_EQ(out.str(), golden);
}

TEST(LintReport, TextReportNamesEveryFinding)
{
    Options opts;
    opts.root = fixture_path("");
    opts.paths = {"."};
    opts.run_budget = false;
    const Report rep = run(opts);
    EXPECT_FALSE(rep.clean());
    std::ostringstream out;
    write_text(rep, out);
    const std::string text = out.str();
    for (const Finding &f : rep.findings)
        EXPECT_NE(text.find(f.file + ":" + std::to_string(f.line)),
                  std::string::npos);
}

// ---------------------------------------------------------------------
// Bit-budget prover
// ---------------------------------------------------------------------

TEST(BitBudget, AuditProvesEveryReachableConfiguration)
{
    const BudgetAudit audit = run_budget_audit();
    EXPECT_GT(audit.cases.size(), 100u);
    EXPECT_EQ(audit.violations, 0u);
    bool fp64 = false, int8 = false, ntt = false, bconv = false,
         ip = false;
    for (const BudgetCase &c : audit.cases) {
        fp64 |= std::string(c.engine) == "fp64_tcu";
        int8 |= std::string(c.engine) == "int8_tcu";
        ntt |= std::string(c.site) == "ntt";
        bconv |= std::string(c.site) == "bconv";
        ip |= std::string(c.site) == "ip";
        if (c.feasible) {
            EXPECT_TRUE(c.exact) << c.engine << " " << c.site
                                 << " wa=" << c.wa << " k=" << c.k;
            EXPECT_TRUE(c.covers) << c.engine << " " << c.site;
            EXPECT_LE(c.sum_bits, c.budget_bits);
        }
    }
    EXPECT_TRUE(fp64 && int8);
    EXPECT_TRUE(ntt && bconv && ip);
}

TEST(BitBudget, RejectsSyntheticOverflowingPlan)
{
    // 40b × 40b over K=16: 40+40+4 = 84 bits ≫ the 53-bit mantissa.
    const SplitPlan bad{1, 40, 1, 40};
    EXPECT_FALSE(plan_within_budget(bad, 16, 53));
    EXPECT_TRUE(plan_covers(bad, 40, 40));

    // Also over the INT32 budget: 2×16-bit planes at K=1 is 32 bits.
    const SplitPlan wide{1, 16, 1, 16};
    EXPECT_FALSE(plan_within_budget(wide, 2, 31));
    EXPECT_TRUE(plan_within_budget(wide, 1, 33));
}

TEST(BitBudget, AcceptsPaperPlans)
{
    // §3.4: 36-bit words, K=16 — A whole + 3×12b B planes, 3 products.
    const SplitPlan p36 = choose_fp64_split(36, 36, 16);
    EXPECT_EQ(p36.products(), 3);
    EXPECT_TRUE(plan_within_budget(p36, 16, 53));
    EXPECT_TRUE(plan_covers(p36, 36, 36));

    // 48-bit words: 2×24b planes each side, 4 products.
    const SplitPlan p48 = choose_fp64_split(48, 48, 16);
    EXPECT_EQ(p48.products(), 4);
    EXPECT_TRUE(plan_within_budget(p48, 16, 53));

    // The same proofs hold at compile time (mirrors gemm.cpp).
    static_assert(fp64_plan_exact(36, 36, 16));
    static_assert(fp64_plan_exact(48, 48, 16));
    static_assert(int8_plan_exact(36, 36, 256));
    static_assert(!split_plan_exact(SplitPlan{1, 40, 1, 40}, 40, 40, 16,
                                    53));
}

TEST(BitBudget, CoverageRequiresEnoughPlaneBits)
{
    EXPECT_FALSE(plan_covers(SplitPlan{1, 12, 3, 12}, 36, 36));
    EXPECT_TRUE(plan_covers(SplitPlan{3, 12, 3, 12}, 36, 36));
}

// ---------------------------------------------------------------------
// CLI smoke: the real binary, non-zero exit on findings
// ---------------------------------------------------------------------

TEST(LintCli, ExitsNonZeroOnFixtureFindings)
{
    const std::string cmd = std::string(NEO_LINT_BIN) + " --rules-only" +
                            " --root " + fixture_path("") +
                            " . > /dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    ASSERT_NE(rc, -1);
    EXPECT_NE(WEXITSTATUS(rc), 0);
}

} // namespace
} // namespace neo::lint
