/**
 * Property-style parameterized sweeps: the end-to-end CKKS invariants
 * must hold across ring degrees, word sizes, digit counts and both
 * key-switch methods — not just at one hand-picked configuration.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/random.h"
#include "rns/primes.h"
#include "tensor/gemm.h"

namespace neo::ckks {
namespace {

struct SweepParams
{
    size_t n;
    size_t levels;
    size_t d_num;
    int word_size;

    friend std::ostream &
    operator<<(std::ostream &os, const SweepParams &p)
    {
        return os << "n" << p.n << "_L" << p.levels << "_d" << p.d_num
                  << "_w" << p.word_size;
    }
};

class CkksSweep : public ::testing::TestWithParam<SweepParams>
{
};

TEST_P(CkksSweep, FullOperationRoundTripBothKeySwitchMethods)
{
    const auto sp = GetParam();
    CkksParams params;
    params.name = "sweep";
    params.n = sp.n;
    params.max_level = sp.levels;
    params.word_size = sp.word_size;
    params.d_num = sp.d_num;
    params.klss.word_size_t = 48;
    params.klss.alpha_tilde = 2;
    params.batch = 1;
    params.validate();
    CkksContext ctx(params);

    KeyGenerator keygen(ctx, sp.n + sp.d_num);
    SecretKey sk = keygen.secret_key();
    PublicKey pk = keygen.public_key(sk);
    EvalKeyBundle keys =
        keygen.eval_key_bundle(sk, {1}, false, /*with_klss=*/true);
    Encryptor enc(ctx, 2);
    Decryptor dec(ctx, sk, keygen);

    Rng rng(sp.n);
    const size_t slots = ctx.encoder().slot_count();
    std::vector<Complex> a(slots), b(slots);
    for (size_t i = 0; i < slots; ++i) {
        a[i] = Complex(2 * rng.uniform_real() - 1, 0);
        b[i] = Complex(2 * rng.uniform_real() - 1, 0);
    }
    const size_t top = ctx.max_level();
    auto ca = enc.encrypt(ctx.encode(a, top), pk);
    auto cb = enc.encrypt(ctx.encode(b, top), pk);

    for (auto method : {KeySwitchMethod::hybrid, KeySwitchMethod::klss}) {
        Evaluator ev(ctx, method);
        auto prod = ev.rescale(ev.mul(ca, cb, keys));
        auto rot = ev.rotate(ca, 1, keys);
        auto pm = dec.decrypt_decode(prod);
        auto rm = dec.decrypt_decode(rot);
        for (size_t i = 0; i < slots; ++i) {
            EXPECT_LT(std::abs(pm[i] - a[i] * b[i]), 1e-3)
                << "mul slot " << i;
            EXPECT_LT(std::abs(rm[i] - a[(i + 1) % slots]), 1e-3)
                << "rot slot " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CkksSweep,
    ::testing::Values(SweepParams{64, 3, 1, 36},
                      SweepParams{64, 4, 2, 36},
                      SweepParams{128, 5, 3, 36},
                      SweepParams{256, 5, 2, 40},
                      SweepParams{64, 3, 2, 48},
                      SweepParams{128, 6, 6, 36},
                      SweepParams{64, 4, 4, 36}),
    [](const auto &info) {
        std::ostringstream os;
        os << info.param;
        return os.str();
    });

// KLSS hyperparameter sweep: the method stays correct for every
// (α̃, WordSize_T) combination, with α' adapting to keep the inner
// product exact (Eq. 4).
struct KlssSweepParams
{
    size_t alpha_tilde;
    int word_size_t;

    friend std::ostream &
    operator<<(std::ostream &os, const KlssSweepParams &p)
    {
        return os << "at" << p.alpha_tilde << "_wst" << p.word_size_t;
    }
};

class KlssSweep : public ::testing::TestWithParam<KlssSweepParams>
{
};

TEST_P(KlssSweep, KeySwitchCorrectAcrossHyperparameters)
{
    const auto sp = GetParam();
    CkksParams params = CkksParams::test_params(64, 5, 2);
    params.klss.alpha_tilde = sp.alpha_tilde;
    params.klss.word_size_t = sp.word_size_t;
    params.validate();
    CkksContext ctx(params);
    // T must exceed the worst-case accumulation (Eq. 4 instantiated).
    const double worst =
        std::log2(static_cast<double>(params.n)) +
        std::log2(static_cast<double>(params.beta(5))) +
        static_cast<double>(params.alpha() * params.word_size) +
        static_cast<double>(sp.alpha_tilde * params.word_size);
    EXPECT_GT(ctx.t_basis().log2_product() - 1.0, worst);

    KeyGenerator keygen(ctx, 50 + sp.alpha_tilde);
    SecretKey sk = keygen.secret_key();
    PublicKey pk = keygen.public_key(sk);
    EvalKeyBundle keys =
        keygen.eval_key_bundle(sk, {}, false, /*with_klss=*/true);
    Encryptor enc(ctx, 4);
    Decryptor dec(ctx, sk, keygen);
    Evaluator ev(ctx, KeySwitchMethod::klss);

    Rng rng(sp.alpha_tilde * 100 + sp.word_size_t);
    std::vector<Complex> a(ctx.encoder().slot_count());
    for (auto &x : a)
        x = Complex(2 * rng.uniform_real() - 1, 0);
    auto ca = enc.encrypt(ctx.encode(a, 5), pk);
    auto got = dec.decrypt_decode(ev.rescale(ev.mul(ca, ca, keys)));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(got[i] - a[i] * a[i]), 1e-3) << "slot " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KlssSweep,
    ::testing::Values(KlssSweepParams{1, 48}, KlssSweepParams{2, 48},
                      KlssSweepParams{3, 48}, KlssSweepParams{2, 36},
                      KlssSweepParams{2, 60}, KlssSweepParams{4, 42}),
    [](const auto &info) {
        std::ostringstream os;
        os << info.param;
        return os.str();
    });

// ---------------------------------------------------------------------
// Randomized differential test: the scalar and FP64-TCU GEMM engines
// must agree element-for-element on randomly drawn (N, level, dnum)
// configurations — engine parity is enforced across the whole
// parameter space, not only at the paper's operating points. The seed
// is fixed so failures replay.
// ---------------------------------------------------------------------

TEST(GemmEngineDifferential, RandomConfigsScalarVsFp64TcuBitExact)
{
    Rng rng(0xD1FFE7EA);
    constexpr int kConfigs = 56; // ≥ 50 random configurations
    for (int cfg = 0; cfg < kConfigs; ++cfg) {
        // Draw a KLSS-shaped GEMM: N coefficients per limb, a digit of
        // alpha = ceil((level+1)/dnum) source limbs (the GEMM K
        // dimension), alpha' output limbs (the N dimension).
        const size_t n = 1ull << (4 + rng.uniform(5)); // 16..256
        const size_t level = 1 + rng.uniform(8);       // 1..8
        const size_t dnum = 1 + rng.uniform(4);        // 1..4
        const size_t alpha = (level + 1 + dnum - 1) / dnum;
        const size_t alpha_p = alpha + 1 + rng.uniform(3);
        const int wa = 30 + static_cast<int>(rng.uniform(11)); // 30..40
        const int wb = 36 + static_cast<int>(rng.uniform(13)); // 36..48
        SCOPED_TRACE(::testing::Message()
                     << "cfg=" << cfg << " N=" << n << " level=" << level
                     << " dnum=" << dnum << " alpha=" << alpha
                     << " alpha'=" << alpha_p << " wa=" << wa
                     << " wb=" << wb);

        // Same-modulus engine pair (the NTT/IP GEMM path).
        {
            Modulus q(generate_ntt_primes(wb, 1, 1 << 10)[0]);
            auto a = rng.uniform_vec(n * alpha, q.value());
            auto b = rng.uniform_vec(alpha * alpha_p, q.value());
            std::vector<u64> want(n * alpha_p), got(n * alpha_p);
            scalar_mod_matmul(a.data(), b.data(), want.data(), n,
                              alpha_p, alpha, q);
            fp64_sliced_matmul(a.data(), b.data(), got.data(), n,
                               alpha_p, alpha, q);
            ASSERT_EQ(got, want);
        }

        // Per-column engine pair (the BConv GEMM path): source limbs
        // of wa-bit primes against alpha' distinct wb-bit column
        // moduli.
        {
            auto src = generate_ntt_primes(wa, alpha, 1 << 10);
            auto dst = generate_ntt_primes(wb, alpha_p, 1 << 10);
            std::vector<Modulus> col_mods(dst.begin(), dst.end());
            std::vector<u64> a(n * alpha), b(alpha * alpha_p);
            for (size_t i = 0; i < n; ++i)
                for (size_t t = 0; t < alpha; ++t)
                    a[i * alpha + t] = rng.uniform(src[t]);
            for (size_t t = 0; t < alpha; ++t)
                for (size_t j = 0; j < alpha_p; ++j)
                    b[t * alpha_p + j] = rng.uniform(dst[j]);
            std::vector<u64> want(n * alpha_p), got(n * alpha_p);
            scalar_matmul_cols(a.data(), b.data(), want.data(), n,
                               alpha_p, alpha, col_mods);
            fp64_sliced_matmul_cols(a.data(), b.data(), got.data(), n,
                                    alpha_p, alpha, col_mods);
            ASSERT_EQ(got, want);
        }
    }
}

// ---------------------------------------------------------------------
// Homomorphism properties as algebraic laws.
// ---------------------------------------------------------------------

class CkksLaws : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        params = CkksParams::test_params(128, 5, 2);
        ctx = std::make_unique<CkksContext>(params);
        keygen = std::make_unique<KeyGenerator>(*ctx, 77);
        sk = keygen->secret_key();
        pk = keygen->public_key(sk);
        keys.rlk = keygen->relin_key(sk);
        enc = std::make_unique<Encryptor>(*ctx, 3);
        dec = std::make_unique<Decryptor>(*ctx, sk, *keygen);
        ev = std::make_unique<Evaluator>(*ctx);
        Rng rng(8);
        x.resize(ctx->encoder().slot_count());
        y.resize(x.size());
        w.resize(x.size());
        for (size_t i = 0; i < x.size(); ++i) {
            x[i] = Complex(2 * rng.uniform_real() - 1, 0);
            y[i] = Complex(2 * rng.uniform_real() - 1, 0);
            w[i] = Complex(2 * rng.uniform_real() - 1, 0);
        }
        cx = enc->encrypt(ctx->encode(x, 5), pk);
        cy = enc->encrypt(ctx->encode(y, 5), pk);
        cw = enc->encrypt(ctx->encode(w, 5), pk);
    }

    double
    err(const Ciphertext &ct, const std::vector<Complex> &want)
    {
        auto got = dec->decrypt_decode(ct);
        double e = 0;
        for (size_t i = 0; i < want.size(); ++i)
            e = std::max(e, std::abs(got[i] - want[i]));
        return e;
    }

    CkksParams params;
    std::unique_ptr<CkksContext> ctx;
    std::unique_ptr<KeyGenerator> keygen;
    SecretKey sk;
    PublicKey pk;
    EvalKeyBundle keys;
    std::unique_ptr<Encryptor> enc;
    std::unique_ptr<Decryptor> dec;
    std::unique_ptr<Evaluator> ev;
    std::vector<Complex> x, y, w;
    Ciphertext cx, cy, cw;
};

TEST_F(CkksLaws, AdditionCommutesAndAssociates)
{
    std::vector<Complex> want(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        want[i] = x[i] + y[i] + w[i];
    auto lhs = ev->add(ev->add(cx, cy), cw);
    auto rhs = ev->add(cx, ev->add(cy, cw));
    EXPECT_LT(err(lhs, want), 1e-5);
    EXPECT_LT(err(rhs, want), 1e-5);
}

TEST_F(CkksLaws, MultiplicationCommutes)
{
    std::vector<Complex> want(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        want[i] = x[i] * y[i];
    auto ab = ev->rescale(ev->mul(cx, cy, keys));
    auto ba = ev->rescale(ev->mul(cy, cx, keys));
    EXPECT_LT(err(ab, want), 1e-4);
    EXPECT_LT(err(ba, want), 1e-4);
}

TEST_F(CkksLaws, MultiplicationDistributesOverAddition)
{
    std::vector<Complex> want(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        want[i] = x[i] * (y[i] + w[i]);
    auto lhs = ev->rescale(ev->mul(cx, ev->add(cy, cw), keys));
    auto rhs = ev->add(ev->rescale(ev->mul(cx, cy, keys)),
                       ev->rescale(ev->mul(cx, cw, keys)));
    EXPECT_LT(err(lhs, want), 1e-4);
    EXPECT_LT(err(rhs, want), 1e-4);
}

TEST_F(CkksLaws, SubtractionIsAdditionOfNegation)
{
    std::vector<Complex> want(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        want[i] = x[i] - y[i];
    auto direct = ev->sub(cx, cy);
    auto via_neg = ev->add(cx, ev->negate(cy));
    EXPECT_LT(err(direct, want), 1e-5);
    EXPECT_LT(err(via_neg, want), 1e-5);
}

TEST_F(CkksLaws, RotationIsLinear)
{
    EvalKeyBundle rot_keys;
    rot_keys.galois = keygen->galois_keys(sk, {3});
    std::vector<Complex> want(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        want[i] = x[(i + 3) % x.size()] + y[(i + 3) % x.size()];
    auto rot_sum = ev->rotate(ev->add(cx, cy), 3, rot_keys);
    auto sum_rot = ev->add(ev->rotate(cx, 3, rot_keys),
                           ev->rotate(cy, 3, rot_keys));
    EXPECT_LT(err(rot_sum, want), 1e-4);
    EXPECT_LT(err(sum_rot, want), 1e-4);
}

// ---------------------------------------------------------------------
// Failure injection: the API must reject misuse loudly.
// ---------------------------------------------------------------------

TEST_F(CkksLaws, RejectsMismatchedLevels)
{
    auto dropped = ev->mod_switch_to(cy, 3);
    EXPECT_THROW(ev->add(cx, dropped), std::invalid_argument);
    EXPECT_THROW(ev->mul(cx, dropped, keys), std::invalid_argument);
}

TEST_F(CkksLaws, RejectsRescaleBelowZero)
{
    auto bottom = ev->mod_switch_to(cx, 0);
    EXPECT_THROW(ev->rescale(bottom), std::invalid_argument);
    EXPECT_THROW(ev->double_rescale(ev->mod_switch_to(cx, 1)),
                 std::invalid_argument);
}

TEST_F(CkksLaws, RejectsRotationWithoutKey)
{
    EvalKeyBundle rot_keys;
    rot_keys.galois = keygen->galois_keys(sk, {1});
    EXPECT_THROW(ev->rotate(cx, 2, rot_keys), std::invalid_argument);
}

TEST_F(CkksLaws, RejectsKlssWithoutConfiguration)
{
    CkksParams no_klss = params;
    no_klss.klss.alpha_tilde = 0;
    CkksContext ctx2(no_klss);
    EXPECT_THROW(Evaluator(ctx2, KeySwitchMethod::klss),
                 std::invalid_argument);
}

TEST_F(CkksLaws, RejectsOversizedEncode)
{
    std::vector<Complex> too_many(ctx->encoder().slot_count() + 1);
    EXPECT_THROW(ctx->encode(too_many, 5), std::invalid_argument);
}

} // namespace
} // namespace neo::ckks
