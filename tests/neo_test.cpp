#include <gtest/gtest.h>

#include "common/random.h"
#include "neo/kernel_model.h"
#include "neo/kernels.h"
#include "rns/primes.h"

namespace neo {
namespace {

class BConvKernelTest : public ::testing::TestWithParam<
                            std::tuple<size_t, size_t, size_t, size_t>>
{
};

TEST_P(BConvKernelTest, MatmulFormMatchesElementwise)
{
    const auto [a, ap, batch, n] = GetParam();
    auto p1 = generate_ntt_primes(36, static_cast<int>(a), 1 << 10);
    auto p2 = generate_ntt_primes(48, static_cast<int>(ap), 1 << 10);
    RnsBasis from(p1), to(p2);
    BConvKernel kernel(from, to);

    Rng rng(a * 100 + ap);
    std::vector<u64> in(a * batch * n);
    for (size_t i = 0; i < a; ++i)
        for (size_t x = 0; x < batch * n; ++x)
            in[i * batch * n + x] = rng.uniform(p1[i]);

    std::vector<u64> out_ew(ap * batch * n), out_mm(ap * batch * n);
    kernel.run_elementwise(in.data(), batch, n, out_ew.data());
    kernel.run_matmul(in.data(), batch, n, out_mm.data());
    EXPECT_EQ(out_ew, out_mm);

    // And through the emulated FP64 TCU.
    std::vector<u64> out_tcu(ap * batch * n);
    kernel.run_matmul(in.data(), batch, n, out_tcu.data(),
                      fp64_tcu_col_matmul());
    EXPECT_EQ(out_ew, out_tcu);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BConvKernelTest,
    ::testing::Values(std::make_tuple(4, 8, 2, 32),  // paper defaults
                      std::make_tuple(3, 5, 1, 16),
                      std::make_tuple(1, 4, 3, 8),
                      std::make_tuple(6, 2, 2, 64)));

TEST(BConvKernel, MatchesBaseConverterApprox)
{
    // The element-wise kernel is Algorithm 1, which is fast base
    // conversion; it must agree with BaseConverter::convert_approx.
    auto p1 = generate_ntt_primes(36, 3, 1 << 10);
    auto p2 = generate_ntt_primes(48, 4, 1 << 10);
    RnsBasis from(p1), to(p2);
    BConvKernel kernel(from, to);
    BaseConverter conv(from, to);

    const size_t n = 32;
    Rng rng(5);
    std::vector<u64> in(3 * n);
    for (size_t i = 0; i < 3; ++i)
        for (size_t l = 0; l < n; ++l)
            in[i * n + l] = rng.uniform(p1[i]);
    std::vector<u64> got(4 * n), want(4 * n);
    kernel.run_elementwise(in.data(), 1, n, got.data());
    conv.convert_approx(in.data(), n, want.data());
    EXPECT_EQ(got, want);
}

class IpKernelTest : public ::testing::TestWithParam<
                         std::tuple<size_t, size_t, size_t, size_t>>
{
};

TEST_P(IpKernelTest, MatmulFormMatchesElementwise)
{
    const auto [beta, beta_tilde, ap, batch] = GetParam();
    const size_t n = 16;
    auto t_primes = generate_ntt_primes(48, static_cast<int>(ap), 1 << 10);
    std::vector<Modulus> t_mods(t_primes.begin(), t_primes.end());
    IpKernel kernel(t_mods, beta, beta_tilde);

    Rng rng(beta * 10 + beta_tilde);
    std::vector<u64> limbs(beta * ap * batch * n);
    for (size_t j = 0; j < beta; ++j)
        for (size_t k = 0; k < ap; ++k)
            for (size_t x = 0; x < batch * n; ++x)
                limbs[((j * ap + k) * batch) * n + x] =
                    rng.uniform(t_primes[k]);
    std::vector<u64> keys(beta_tilde * beta * ap * n);
    for (size_t i = 0; i < beta_tilde; ++i)
        for (size_t j = 0; j < beta; ++j)
            for (size_t k = 0; k < ap; ++k)
                for (size_t l = 0; l < n; ++l)
                    keys[((i * beta + j) * ap + k) * n + l] =
                        rng.uniform(t_primes[k]);

    std::vector<u64> out_ew(beta_tilde * ap * batch * n);
    std::vector<u64> out_mm(out_ew.size());
    kernel.run_elementwise(limbs.data(), keys.data(), batch, n,
                           out_ew.data());
    kernel.run_matmul(limbs.data(), keys.data(), batch, n, out_mm.data());
    EXPECT_EQ(out_ew, out_mm);

    std::vector<u64> out_tcu(out_ew.size());
    kernel.run_matmul(limbs.data(), keys.data(), batch, n, out_tcu.data(),
                      fp64_tcu_site_matmul());
    EXPECT_EQ(out_ew, out_tcu);

    std::vector<u64> out_i8(out_ew.size());
    kernel.run_matmul(limbs.data(), keys.data(), batch, n, out_i8.data(),
                      int8_tcu_site_matmul());
    EXPECT_EQ(out_ew, out_i8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IpKernelTest,
    ::testing::Values(std::make_tuple(3, 5, 2, 2),
                      std::make_tuple(9, 8, 3, 4), // Set-C-like ratios
                      std::make_tuple(1, 1, 1, 1),
                      std::make_tuple(2, 7, 2, 8)));

// ---------------------------------------------------------------------
// Performance-model structural checks.
// ---------------------------------------------------------------------

model::KernelModel
make_model(bool klss = true)
{
    ckks::CkksParams p;
    p.n = 1 << 16;
    p.max_level = 35;
    p.word_size = 36;
    p.d_num = 9;
    p.klss.word_size_t = 48;
    p.klss.alpha_tilde = 5;
    p.batch = 128;
    model::ModelConfig cfg;
    cfg.use_klss = klss;
    return model::KernelModel(p, cfg);
}

TEST(KernelModel, MatmulDataflowReducesBconvTraffic)
{
    auto m = make_model();
    auto cfg_ew = m.config();
    cfg_ew.matmul_dataflow = false;
    model::KernelModel ew(m.params(), cfg_ew);
    // Optimized BConv reads each input once instead of α' times.
    EXPECT_LT(m.bconv(4, 8, 36, 48).bytes(),
              ew.bconv(4, 8, 36, 48).bytes() / 3);
}

TEST(KernelModel, MatmulDataflowReducesIpTraffic)
{
    auto m = make_model();
    auto cfg_ew = m.config();
    cfg_ew.matmul_dataflow = false;
    model::KernelModel ew(m.params(), cfg_ew);
    EXPECT_LT(m.ip(9, 8, 8, 48).bytes(), ew.ip(9, 8, 8, 48).bytes() / 2);
}

TEST(KernelModel, Radix16NttFasterThanFourStep)
{
    auto m = make_model();
    auto cfg4 = m.config();
    cfg4.radix16_ntt = false;
    model::KernelModel four(m.params(), cfg4);
    const auto &dev = m.config().device;
    EXPECT_LT(m.ntt(36, 36).time(dev), four.ntt(36, 36).time(dev));
}

TEST(KernelModel, Fp64TcuBeatsCudaCoresOnNttMatmuls)
{
    auto m = make_model();
    auto cfg_cuda = m.config();
    cfg_cuda.engine = model::MatMulEngine::cuda_cores;
    model::KernelModel cuda(m.params(), cfg_cuda);
    const auto &dev = m.config().device;
    EXPECT_LT(m.ntt(36, 36).time(dev), cuda.ntt(36, 36).time(dev));
}

TEST(KernelModel, KlssKeySwitchFasterThanHybridAtSameParams)
{
    // The Fig 16 headline: KLSS at WordSize_T = 48 beats Hybrid with
    // everything else fixed.
    auto klss = make_model(true);
    auto hybrid = make_model(false);
    EXPECT_LT(klss.keyswitch_time(35), hybrid.keyswitch_time(35));
}

TEST(KernelModel, KeySwitchDominatesHmult)
{
    auto m = make_model();
    EXPECT_GT(m.keyswitch_time(35) / m.hmult_time(35), 0.8);
}

TEST(KernelModel, OpTimesScaleWithLevel)
{
    auto m = make_model();
    EXPECT_LT(m.hmult_time(11), m.hmult_time(35));
    EXPECT_LT(m.hrotate_time(11), m.hrotate_time(35));
    EXPECT_LT(m.rescale_time(11), m.rescale_time(35));
}

TEST(KernelModel, IpEngineGateFollowsValidProportion)
{
    auto m = make_model();
    // The §4.5.3 rule: TCU only when valid proportion > 80%.
    for (size_t level : {35u, 23u, 11u, 5u}) {
        const double valid = gpusim::TcuModel::valid_proportion_fp64(
            m.params().batch, m.params().beta_tilde(level),
            m.params().beta(level));
        const auto engine = m.ip_engine(level);
        if (valid > 0.8) {
            EXPECT_EQ(engine, model::MatMulEngine::tcu_fp64);
        } else {
            EXPECT_EQ(engine, model::MatMulEngine::cuda_cores);
        }
    }
}

TEST(KernelModel, TrafficSplitsSumToTotal)
{
    auto m = make_model();
    auto t = m.keyswitch_traffic(35);
    EXPECT_GT(t.bconv, 0);
    EXPECT_GT(t.ip, 0);
    EXPECT_GT(t.ntt, 0);
    EXPECT_NEAR(t.total(), t.bconv + t.ip + t.ntt + t.other, 1.0);
}

TEST(KernelModel, MultistreamNeverSlower)
{
    auto m = make_model();
    auto cfg_serial = m.config();
    cfg_serial.multistream = false;
    model::KernelModel serial(m.params(), cfg_serial);
    EXPECT_LE(m.keyswitch_time(35), serial.keyswitch_time(35) * 1.001);
}

TEST(KernelModel, HoistedRotationsCheaperThanIndividual)
{
    auto m = make_model(false); // hybrid path hoists
    const double individual = 16 * m.hrotate_time(35);
    const double hoisted = m.hrotate_hoisted_time(35, 16);
    EXPECT_LT(hoisted, individual);
    // One rotation gains nothing (same kernel sequence).
    EXPECT_NEAR(m.hrotate_hoisted_time(35, 1), m.hrotate_time(35),
                m.hrotate_time(35) * 0.2);
    EXPECT_THROW(m.hrotate_hoisted_time(35, 0), std::invalid_argument);
}

TEST(KernelModel, FusionReducesLaunchesAndTraffic)
{
    auto m = make_model();
    auto cfg_nf = m.config();
    cfg_nf.kernel_fusion = false;
    model::KernelModel nf(m.params(), cfg_nf);
    EXPECT_LT(m.bconv(4, 8, 36, 48).launches,
              nf.bconv(4, 8, 36, 48).launches);
    EXPECT_LT(m.bconv(4, 8, 36, 48).bytes(), nf.bconv(4, 8, 36, 48).bytes());
}

} // namespace
} // namespace neo
