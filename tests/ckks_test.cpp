#include <gtest/gtest.h>

#include <cmath>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/random.h"
#include "obs/obs.h"

namespace neo::ckks {
namespace {

/// Shared small-parameter fixture (N=256, 36-bit primes, L=5).
class CkksFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        params_ = new CkksParams(CkksParams::test_params(256, 5, 2));
        ctx_ = new CkksContext(*params_);
        keygen_ = new KeyGenerator(*ctx_, 7);
        sk_ = new SecretKey(keygen_->secret_key());
        pk_ = new PublicKey(keygen_->public_key(*sk_));
        keys_ = new EvalKeyBundle(
            keygen_->eval_key_bundle(*sk_, {}, false, /*with_klss=*/true));
    }

    static void
    TearDownTestSuite()
    {
        delete keys_;
        delete pk_;
        delete sk_;
        delete keygen_;
        delete ctx_;
        delete params_;
    }

    static std::vector<Complex>
    random_slots(size_t count, u64 seed)
    {
        Rng rng(seed);
        std::vector<Complex> v(count);
        for (auto &z : v)
            z = Complex(2.0 * rng.uniform_real() - 1.0,
                        2.0 * rng.uniform_real() - 1.0);
        return v;
    }

    static double
    max_error(const std::vector<Complex> &a, const std::vector<Complex> &b)
    {
        double e = 0;
        for (size_t i = 0; i < a.size(); ++i)
            e = std::max(e, std::abs(a[i] - b[i]));
        return e;
    }

    static CkksParams *params_;
    static CkksContext *ctx_;
    static KeyGenerator *keygen_;
    static SecretKey *sk_;
    static PublicKey *pk_;
    static EvalKeyBundle *keys_;
};

CkksParams *CkksFixture::params_ = nullptr;
CkksContext *CkksFixture::ctx_ = nullptr;
KeyGenerator *CkksFixture::keygen_ = nullptr;
SecretKey *CkksFixture::sk_ = nullptr;
PublicKey *CkksFixture::pk_ = nullptr;
EvalKeyBundle *CkksFixture::keys_ = nullptr;

TEST_F(CkksFixture, EncoderRoundTrip)
{
    auto slots = random_slots(ctx_->encoder().slot_count(), 1);
    auto coeffs = ctx_->encoder().encode(slots, 1e9);
    std::vector<double> dc(coeffs.begin(), coeffs.end());
    auto back = ctx_->encoder().decode(dc, 1e9);
    EXPECT_LT(max_error(slots, back), 1e-7);
}

TEST_F(CkksFixture, EncodeDecodePlaintext)
{
    auto slots = random_slots(ctx_->encoder().slot_count(), 2);
    Plaintext pt = ctx_->encode(slots, ctx_->max_level());
    auto back = ctx_->decode(pt);
    EXPECT_LT(max_error(slots, back), 1e-7);
}

TEST_F(CkksFixture, SymmetricEncryptDecrypt)
{
    Encryptor enc(*ctx_, 11);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    auto slots = random_slots(ctx_->encoder().slot_count(), 3);
    auto ct = enc.encrypt_symmetric(ctx_->encode(slots, 5), *sk_, *keygen_);
    auto back = dec.decrypt_decode(ct);
    EXPECT_LT(max_error(slots, back), 1e-6);
}

TEST_F(CkksFixture, PublicEncryptDecrypt)
{
    Encryptor enc(*ctx_, 12);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    auto slots = random_slots(ctx_->encoder().slot_count(), 4);
    auto ct = enc.encrypt(ctx_->encode(slots, 5), *pk_);
    auto back = dec.decrypt_decode(ct);
    EXPECT_LT(max_error(slots, back), 1e-5);
}

TEST_F(CkksFixture, HAddAndHSub)
{
    Encryptor enc(*ctx_, 13);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev(*ctx_);
    auto a = random_slots(ctx_->encoder().slot_count(), 5);
    auto b = random_slots(ctx_->encoder().slot_count(), 6);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);
    auto cb = enc.encrypt(ctx_->encode(b, 5), *pk_);

    auto sum = dec.decrypt_decode(ev.add(ca, cb));
    auto dif = dec.decrypt_decode(ev.sub(ca, cb));
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_LT(std::abs(sum[i] - (a[i] + b[i])), 1e-5);
        EXPECT_LT(std::abs(dif[i] - (a[i] - b[i])), 1e-5);
    }
}

TEST_F(CkksFixture, PAddAndPMult)
{
    Encryptor enc(*ctx_, 14);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev(*ctx_);
    auto a = random_slots(ctx_->encoder().slot_count(), 7);
    auto m = random_slots(ctx_->encoder().slot_count(), 8);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);
    Plaintext pm = ctx_->encode(m, 5);

    auto padd = dec.decrypt_decode(ev.add_plain(ca, pm));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(padd[i] - (a[i] + m[i])), 1e-5);

    auto pmul_ct = ev.rescale(ev.mul_plain(ca, pm));
    EXPECT_EQ(pmul_ct.level, 4u);
    auto pmul = dec.decrypt_decode(pmul_ct);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(pmul[i] - a[i] * m[i]), 1e-4);
}

TEST_F(CkksFixture, HMultHybrid)
{
    Encryptor enc(*ctx_, 15);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev(*ctx_, KeySwitchMethod::hybrid);
    auto a = random_slots(ctx_->encoder().slot_count(), 9);
    auto b = random_slots(ctx_->encoder().slot_count(), 10);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);
    auto cb = enc.encrypt(ctx_->encode(b, 5), *pk_);

    auto prod = ev.rescale(ev.mul(ca, cb, *keys_));
    EXPECT_EQ(prod.level, 4u);
    auto got = dec.decrypt_decode(prod);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(got[i] - a[i] * b[i]), 1e-4) << "slot " << i;
}

TEST_F(CkksFixture, HMultKlss)
{
    Encryptor enc(*ctx_, 16);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev(*ctx_, KeySwitchMethod::klss);
    auto a = random_slots(ctx_->encoder().slot_count(), 11);
    auto b = random_slots(ctx_->encoder().slot_count(), 12);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);
    auto cb = enc.encrypt(ctx_->encode(b, 5), *pk_);

    auto prod = ev.rescale(ev.mul(ca, cb, *keys_));
    auto got = dec.decrypt_decode(prod);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(got[i] - a[i] * b[i]), 1e-4) << "slot " << i;
}

TEST_F(CkksFixture, HybridAndKlssKeySwitchAgree)
{
    // Both methods switch the same d2 under the same key material;
    // results must agree up to (tiny) BConv noise.
    Encryptor enc(*ctx_, 17);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev_h(*ctx_, KeySwitchMethod::hybrid);
    Evaluator ev_k(*ctx_, KeySwitchMethod::klss);
    auto a = random_slots(ctx_->encoder().slot_count(), 13);
    auto b = random_slots(ctx_->encoder().slot_count(), 14);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);
    auto cb = enc.encrypt(ctx_->encode(b, 5), *pk_);

    auto ph = dec.decrypt_decode(ev_h.rescale(ev_h.mul(ca, cb, *keys_)));
    auto pk = dec.decrypt_decode(
        ev_k.rescale(ev_k.mul(ca, cb, *keys_)));
    EXPECT_LT(max_error(ph, pk), 1e-5);
}

TEST_F(CkksFixture, MultiplicationDepth)
{
    // ((a*b)*c)*d across three levels, hybrid path.
    Encryptor enc(*ctx_, 18);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev(*ctx_);
    const size_t slots = ctx_->encoder().slot_count();
    auto a = random_slots(slots, 15);
    std::vector<Complex> expected = a;
    auto acc = enc.encrypt(ctx_->encode(a, 5), *pk_);
    for (int d = 0; d < 3; ++d) {
        auto m = random_slots(slots, 20 + d);
        auto cm = enc.encrypt(ctx_->encode(m, acc.level, acc.scale), *pk_);
        acc = ev.rescale(ev.mul(acc, cm, *keys_));
        for (size_t i = 0; i < slots; ++i)
            expected[i] *= m[i];
    }
    EXPECT_EQ(acc.level, 2u);
    auto got = dec.decrypt_decode(acc);
    EXPECT_LT(max_error(got, expected), 5e-3);
}

TEST_F(CkksFixture, DoubleRescaleDropsTwoLevels)
{
    Encryptor enc(*ctx_, 19);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev(*ctx_);
    auto a = random_slots(ctx_->encoder().slot_count(), 16);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);
    // Square of the scale squared: multiply by an encryption of ones
    // at matching scale twice without rescaling, then DS.
    auto ones = std::vector<Complex>(ctx_->encoder().slot_count(),
                                     Complex(1.0, 0.0));
    auto c1 = enc.encrypt(ctx_->encode(ones, 5), *pk_);
    auto prod = ev.mul(ca, c1, *keys_); // scale = Δ²
    // PMULT against a Δ-scale plaintext of ones reaches Δ³; DS then
    // burns the two levels in one step, as in Bootstrapping.
    auto ds = ev.double_rescale(
        ev.mul_plain(prod, ctx_->encode(ones, prod.level)));
    EXPECT_EQ(ds.level, 3u);
    auto got = dec.decrypt_decode(ds);
    EXPECT_LT(max_error(got, a), 5e-3);
}

TEST_F(CkksFixture, HRotateHybridAndKlss)
{
    Encryptor enc(*ctx_, 20);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    KeyGenerator kg(*ctx_, 7);
    const size_t slots = ctx_->encoder().slot_count();
    auto a = random_slots(slots, 17);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);

    for (i64 steps : {1, 3, 7}) {
        EvalKeyBundle keys;
        keys.galois = keygen_->galois_keys(*sk_, {steps}, false, true);
        std::vector<Complex> expected(slots);
        for (size_t i = 0; i < slots; ++i)
            expected[i] = a[(i + static_cast<size_t>(steps)) % slots];

        Evaluator ev_h(*ctx_, KeySwitchMethod::hybrid);
        auto rh = dec.decrypt_decode(ev_h.rotate(ca, steps, keys));
        EXPECT_LT(max_error(rh, expected), 1e-4) << "hybrid steps=" << steps;

        Evaluator ev_k(*ctx_, KeySwitchMethod::klss);
        auto rk = dec.decrypt_decode(ev_k.rotate(ca, steps, keys));
        EXPECT_LT(max_error(rk, expected), 1e-4) << "klss steps=" << steps;
    }
}

TEST_F(CkksFixture, ConjugateFlipsImaginaryPart)
{
    Encryptor enc(*ctx_, 21);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev(*ctx_);
    auto a = random_slots(ctx_->encoder().slot_count(), 18);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);
    EvalKeyBundle keys;
    keys.galois = keygen_->galois_keys(*sk_, {}, true);
    auto got = dec.decrypt_decode(ev.conjugate(ca, keys));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(got[i] - std::conj(a[i])), 1e-4);
}

TEST_F(CkksFixture, RotationComposition)
{
    // rot(rot(x, 1), 2) == rot(x, 3).
    Encryptor enc(*ctx_, 22);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev(*ctx_);
    auto a = random_slots(ctx_->encoder().slot_count(), 19);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);
    EvalKeyBundle keys;
    keys.galois = keygen_->galois_keys(*sk_, {1, 2, 3});
    auto r12 = ev.rotate(ev.rotate(ca, 1, keys), 2, keys);
    auto r3 = ev.rotate(ca, 3, keys);
    EXPECT_LT(max_error(dec.decrypt_decode(r12), dec.decrypt_decode(r3)),
              1e-4);
}

TEST_F(CkksFixture, KeySwitchCountersMatchComplexityFormulas)
{
    // Table 2 accounting at the top level, read back from the `ks.*`
    // obs counters an Evaluator-bound Scope accumulates.
    Encryptor enc(*ctx_, 23);
    auto a = random_slots(ctx_->encoder().slot_count(), 20);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);
    auto cb = enc.encrypt(ctx_->encode(a, 5), *pk_);

    const size_t l = 5;                          // level
    const size_t alpha = params_->alpha();       // 3
    const size_t beta = params_->beta(l);        // 2
    const size_t k_special = alpha;
    const size_t ext = l + 1 + k_special;        // l + 1 + α

    {
        obs::Scope scope;
        Evaluator ev_h(*ctx_, KeySwitchMethod::hybrid, &scope);
        (void)ev_h.mul(ca, cb, *keys_);
        // ModUp: each digit converts its α limbs to the other ext-α
        // limbs.
        EXPECT_EQ(scope.counter("ks.bconv_products"),
                  beta * alpha * (ext - alpha));
        EXPECT_EQ(scope.counter("ks.ntt_limbs"),
                  beta * ext + 2 * (l + 1));
        EXPECT_EQ(scope.counter("ks.ip_mul_limbs"), 2 * beta * ext);
        EXPECT_EQ(scope.counter("ks.moddown_products"),
                  2 * k_special * (l + 1));
        EXPECT_EQ(scope.counter("op.hmult"), 1u);
    }

    {
        obs::Scope scope;
        Evaluator ev_k(*ctx_, KeySwitchMethod::klss, &scope);
        (void)ev_k.mul(ca, cb, *keys_);
        const size_t alpha_p = ctx_->alpha_prime();
        const size_t beta_tilde = params_->beta_tilde(l);
        // Mod Up: β digits × α limbs × α' outputs (Table 2: βαα').
        EXPECT_EQ(scope.counter("ks.bconv_products"),
                  beta * alpha * alpha_p);
        // NTT over T: β·α'; plus final 2(l+1) over Q.
        EXPECT_EQ(scope.counter("ks.ntt_limbs"),
                  beta * alpha_p + 2 * (l + 1));
        // IP: 2·β̃·β·α' (Table 2: ββ̃α' per component).
        EXPECT_EQ(scope.counter("ks.ip_mul_limbs"),
                  2 * beta_tilde * beta * alpha_p);
        // Recover Limbs: 2·α'·(l+1+α) (Table 2: 2α'(l+α)).
        EXPECT_EQ(scope.counter("ks.recover_products"),
                  2 * alpha_p * ext);
        EXPECT_EQ(scope.counter("ks.moddown_products"),
                  2 * k_special * (l + 1));
    }
}

TEST_F(CkksFixture, KlssInnerProductStaysBelowBound)
{
    // Eq. 4 instantiation: the T base must exceed the worst-case IP
    // accumulation. Verified via the parameter computation.
    const double log2_t = ctx_->t_basis().log2_product();
    const double worst =
        std::log2(static_cast<double>(ctx_->n())) +
        std::log2(static_cast<double>(params_->beta(5))) +
        static_cast<double>(params_->alpha() * params_->word_size) +
        static_cast<double>(params_->klss.alpha_tilde *
                            params_->word_size);
    EXPECT_GT(log2_t - 1.0, worst);
}

TEST_F(CkksFixture, ModSwitchPreservesMessage)
{
    Encryptor enc(*ctx_, 24);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev(*ctx_);
    auto a = random_slots(ctx_->encoder().slot_count(), 21);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);
    auto dropped = ev.mod_switch_to(ca, 2);
    EXPECT_EQ(dropped.level, 2u);
    auto got = dec.decrypt_decode(dropped);
    EXPECT_LT(max_error(got, a), 1e-5);
}

TEST(CkksParams, AlphaBetaDerivations)
{
    CkksParams p;
    p.n = 1 << 16;
    p.max_level = 35;
    p.word_size = 36;
    p.d_num = 9;
    p.klss.word_size_t = 48;
    p.klss.alpha_tilde = 5;
    EXPECT_EQ(p.alpha(), 4u);
    EXPECT_EQ(p.beta(35), 9u);
    EXPECT_EQ(p.beta_tilde(35), 8u);
    // The paper's default α' for Set-C is 8 (Fig 11).
    EXPECT_EQ(p.klss_alpha_prime(), 8u);
}

TEST(CkksParams, Validation)
{
    CkksParams p = CkksParams::test_params();
    EXPECT_NO_THROW(p.validate());
    p.n = 100;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = CkksParams::test_params();
    p.d_num = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(CkksParams, DeltaDefaultsToWordSize)
{
    CkksParams p = CkksParams::test_params();
    EXPECT_DOUBLE_EQ(p.delta(), std::ldexp(1.0, 35));
    p.scale = 1024.0;
    EXPECT_DOUBLE_EQ(p.delta(), 1024.0);
}

} // namespace
} // namespace neo::ckks
