#include <gtest/gtest.h>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/hoisting.h"
#include "ckks/paper_params.h"
#include "common/random.h"
#include "ckks/security.h"
#include "gpusim/memory_model.h"
#include "tensor/gemm.h"
#include "rns/primes.h"

namespace neo {
namespace {

using namespace ckks;

TEST(Hoisting, MatchesIndividualRotationsUpToModUpSlack)
{
    CkksParams params = CkksParams::test_params(128, 5, 2);
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 31);
    SecretKey sk = keygen.secret_key();
    PublicKey pk = keygen.public_key(sk);
    EvalKeyBundle keys;
    keys.galois = keygen.galois_keys(sk, {1, 3, 5, 7});
    Encryptor enc(ctx);
    Decryptor dec(ctx, sk, keygen);
    Evaluator ev(ctx);

    Rng rng(2);
    std::vector<Complex> z(ctx.encoder().slot_count());
    for (auto &x : z)
        x = Complex(2 * rng.uniform_real() - 1, 0);
    Ciphertext ct = enc.encrypt(ctx.encode(z, 5), pk);

    const std::vector<i64> steps = {1, 3, 5, 7};
    auto hoisted = rotate_hoisted(ct, steps, keys.galois, ctx);
    ASSERT_EQ(hoisted.size(), steps.size());
    for (size_t s = 0; s < steps.size(); ++s) {
        // The hoisted path differs from per-rotation switching only by
        // the approximate-BConv digit-modulus slack, which lands in
        // the noise: decryptions must agree to fresh-noise precision.
        auto ref = dec.decrypt_decode(ev.rotate(ct, steps[s], keys));
        auto got = dec.decrypt_decode(hoisted[s]);
        for (size_t i = 0; i < ref.size(); ++i)
            EXPECT_LT(std::abs(ref[i] - got[i]), 1e-5)
                << "step " << steps[s] << " slot " << i;
    }
}

TEST(Hoisting, DecryptsToRotatedMessages)
{
    CkksParams params = CkksParams::test_params(128, 4, 2);
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 32);
    SecretKey sk = keygen.secret_key();
    PublicKey pk = keygen.public_key(sk);
    GaloisKeys gk = keygen.galois_keys(sk, {2, 6});
    Encryptor enc(ctx);
    Decryptor dec(ctx, sk, keygen);

    Rng rng(3);
    const size_t slots = ctx.encoder().slot_count();
    std::vector<Complex> z(slots);
    for (auto &x : z)
        x = Complex(2 * rng.uniform_real() - 1, 0);
    Ciphertext ct = enc.encrypt(ctx.encode(z, 4), pk);
    auto rotated = rotate_hoisted(ct, {2, 6}, gk, ctx);
    for (size_t s = 0; s < 2; ++s) {
        const size_t r = s == 0 ? 2 : 6;
        auto got = dec.decrypt_decode(rotated[s]);
        for (size_t i = 0; i < slots; ++i)
            EXPECT_LT(std::abs(got[i] - z[(i + r) % slots]), 1e-4);
    }
}

TEST(Hoisting, MissingKeyRejected)
{
    CkksParams params = CkksParams::test_params(64, 3, 1);
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 33);
    SecretKey sk = keygen.secret_key();
    PublicKey pk = keygen.public_key(sk);
    GaloisKeys gk = keygen.galois_keys(sk, {1});
    Encryptor enc(ctx);
    std::vector<Complex> z(ctx.encoder().slot_count(), Complex(0.5, 0));
    Ciphertext ct = enc.encrypt(ctx.encode(z, 3), pk);
    EXPECT_THROW(rotate_hoisted(ct, {1, 9}, gk, ctx),
                 std::invalid_argument);
}

TEST(MemoryModel, CiphertextAndKeySizesAtPaperScale)
{
    auto p = paper_set('C');
    gpusim::MemoryModel m(p);
    // One ciphertext at L=35: 2 * 36 limbs * 2^16 coeffs * 8 B = 36 MB.
    EXPECT_NEAR(m.ciphertext_bytes(35), 2.0 * 36 * 65536 * 8, 1.0);
    // Hybrid key: 2 * 9 digits * 40 limbs * 0.5 MB = 360 MB-class.
    EXPECT_GT(m.hybrid_key_bytes(), 3e8);
    EXPECT_GT(m.klss_key_bytes(), 0);
}

TEST(MemoryModel, Batch128FitsA100AndIsNearTheLimit)
{
    // §6.3: "due to the limitations of GPGPU memory capacity,
    // BatchSize cannot be increased indefinitely; hence ... 128".
    auto p = paper_set('C');
    gpusim::MemoryModel m(p);
    const auto dev = gpusim::DeviceSpec::a100();
    const size_t max_bs = m.max_batch(dev);
    EXPECT_GE(max_bs, 128u);
    EXPECT_LE(max_bs, 512u);
}

TEST(MemoryModel, WorkingSetGrowsWithBatchAndLevel)
{
    auto p = paper_set('C');
    gpusim::MemoryModel m(p);
    EXPECT_LT(m.keyswitch_working_set(11), m.keyswitch_working_set(35));
    auto p2 = p;
    p2.batch = 256;
    gpusim::MemoryModel m2(p2);
    EXPECT_LT(m.keyswitch_working_set(35), m2.keyswitch_working_set(35));
}

TEST(Security, Table4LambdaColumn)
{
    // Table 4: Sets A-C/F/G claim lambda >= 128 at WordSize 36; D/E at
    // 60-bit words sit lower on our first-order estimator (~105); H is
    // the weak set the paper itself marks lambda >= 98.
    for (char set : {'A', 'B', 'C', 'F', 'G'})
        EXPECT_GE(estimate_security(paper_set(set)), 128.0) << set;
    EXPECT_GE(estimate_security(paper_set('D')), 100.0);
    EXPECT_GE(estimate_security(paper_set('E')), 100.0);
    const double lh = estimate_security(paper_set('H'));
    EXPECT_GE(lh, 80.0);
    EXPECT_LT(lh, 128.0) << "Set-H is explicitly sub-128";
}

TEST(Security, BudgetTableMonotoneInDegree)
{
    double prev = 0;
    for (size_t n = 1024; n <= (1 << 16); n <<= 1) {
        double b = max_modulus_bits_128(n);
        EXPECT_GT(b, prev);
        prev = b;
    }
    EXPECT_DOUBLE_EQ(max_modulus_bits_128(32768), 881.0);
    EXPECT_THROW(max_modulus_bits_128(100), std::invalid_argument);
}

TEST(Int8ColGemm, BitExactAgainstScalar)
{
    auto p1 = generate_ntt_primes(36, 1, 1 << 10);
    auto p2 = generate_ntt_primes(36, 4, 1 << 10, p1);
    std::vector<Modulus> cols(p2.begin(), p2.end());
    Rng rng(9);
    const size_t m = 16, n = 4, k = 8;
    std::vector<u64> a(m * k), b(k * n);
    for (auto &x : a)
        x = rng.uniform(p1[0]);
    for (size_t j = 0; j < n; ++j)
        for (size_t t = 0; t < k; ++t)
            b[t * n + j] = rng.uniform(p2[j]);
    std::vector<u64> ref(m * n), got(m * n);
    scalar_matmul_cols(a.data(), b.data(), ref.data(), m, n, k, cols);
    int8_sliced_matmul_cols(a.data(), b.data(), got.data(), m, n, k,
                            cols);
    EXPECT_EQ(ref, got);
}

} // namespace
} // namespace neo
