/**
 * Hot-path precomputation caches — differential correctness suite.
 *
 * The caches introduced for the steady-state key-switch path
 * (PlaneCache, ckks::KeySwitchPrecomp, the per-key operand
 * caches, and the per-thread Workspace arena) are pure memoization:
 * they must never change a single output bit. These tests pin that
 * down three ways:
 *
 *   1. keyswitch_klss_pipeline with caches cold, warm, and disabled
 *      is bit-identical to the reference ckks::keyswitch_klss across
 *      21 (level, d_num, engine) configurations;
 *   2. the same holds under 1 / 2 / 7 / 16 worker threads, and for
 *      Evaluator::mul / rotate routed through the pipeline;
 *   3. the gemm.plane_cache.{hit,miss} counters prove operand slicing
 *      happens exactly once: a second mul with the same key bundle
 *      records hits and zero misses.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "neo/pipeline.h"
#include "obs/obs.h"
#include "tensor/plane_cache.h"

namespace neo {
namespace {

using namespace ckks;

bool
poly_eq(const RnsPoly &a, const RnsPoly &b)
{
    if (a.n() != b.n() || a.limbs() != b.limbs())
        return false;
    for (size_t i = 0; i < a.limbs(); ++i)
        if (!std::equal(a.limb(i), a.limb(i) + a.n(), b.limb(i)))
            return false;
    return true;
}

bool
ct_eq(const Ciphertext &a, const Ciphertext &b)
{
    return a.level == b.level && poly_eq(a.c0, b.c0) &&
           poly_eq(a.c1, b.c1);
}

RnsPoly
random_eval_poly(const CkksContext &ctx, size_t level, u64 seed)
{
    Rng rng(seed);
    RnsPoly p(ctx.n(), ctx.active_mods(level), PolyForm::eval);
    for (size_t i = 0; i < p.limbs(); ++i)
        for (size_t l = 0; l < p.n(); ++l)
            p.limb(i)[l] = rng.uniform(p.modulus(i).value());
    return p;
}

/// One parameter set with its context and KLSS relinearization key.
struct ParamSet
{
    ParamSet(size_t levels, size_t d_num, u64 seed)
        : params(CkksParams::test_params(256, levels, d_num)),
          ctx(params), keygen(ctx, seed), sk(keygen.secret_key()),
          klss_rlk(keygen.to_klss(keygen.relin_key(sk)))
    {
    }

    CkksParams params;
    CkksContext ctx;
    KeyGenerator keygen;
    SecretKey sk;
    KlssEvalKey klss_rlk;
};

/// One keyswitch configuration of the differential sweep.
struct Config
{
    ParamSet *set;
    size_t level;
    const char *engine;
};

struct PerfCache : public ::testing::Test
{
    static void
    SetUpTestSuite()
    {
        set_a_ = new ParamSet(5, 2, 101);
        set_b_ = new ParamSet(4, 4, 202);
    }

    static void
    TearDownTestSuite()
    {
        delete set_b_;
        delete set_a_;
        set_a_ = nullptr;
        set_b_ = nullptr;
    }

    /// 21 (level, d_num, engine) configurations: 2 parameter sets ×
    /// {4, 3} levels × 3 GEMM engines.
    static std::vector<Config>
    configs()
    {
        std::vector<Config> out;
        for (size_t level : {5u, 4u, 3u, 2u})
            for (const char *eng : {"scalar", "fp64_tcu", "int8_tcu"})
                out.push_back({set_a_, level, eng});
        for (size_t level : {4u, 3u, 1u})
            for (const char *eng : {"scalar", "fp64_tcu", "int8_tcu"})
                out.push_back({set_b_, level, eng});
        return out;
    }

    static ParamSet *set_a_;
    static ParamSet *set_b_;
};

ParamSet *PerfCache::set_a_ = nullptr;
ParamSet *PerfCache::set_b_ = nullptr;

// ---------------------------------------------------------------------
// Keyswitch: cached vs uncached vs reference
// ---------------------------------------------------------------------

TEST_F(PerfCache, KeyswitchCachedAndUncachedMatchReference)
{
    const auto cfgs = configs();
    ASSERT_GE(cfgs.size(), 20u);
    auto &pc = PlaneCache::global();
    for (const auto &cfg : cfgs) {
        SCOPED_TRACE(::testing::Message()
                     << cfg.engine << " d_num="
                     << cfg.set->params.d_num << " level=" << cfg.level);
        const auto policy =
            ExecPolicy::fixed(EngineRegistry::parse(cfg.engine));
        RnsPoly d2 = random_eval_poly(cfg.set->ctx, cfg.level,
                                      1000 + cfg.level);
        const auto ref =
            keyswitch_klss(d2, cfg.set->klss_rlk, cfg.set->ctx);

        // Uncached control: plane cache disabled end to end.
        pc.clear();
        pc.set_enabled(false);
        const auto uncached = keyswitch_klss_pipeline(
            d2, cfg.set->klss_rlk, cfg.set->ctx, policy);
        pc.set_enabled(true);
        EXPECT_TRUE(poly_eq(uncached.first, ref.first));
        EXPECT_TRUE(poly_eq(uncached.second, ref.second));

        // Cold run populates the caches; warm run consumes them.
        const auto cold = keyswitch_klss_pipeline(
            d2, cfg.set->klss_rlk, cfg.set->ctx, policy);
        const auto warm = keyswitch_klss_pipeline(
            d2, cfg.set->klss_rlk, cfg.set->ctx, policy);
        EXPECT_TRUE(poly_eq(cold.first, ref.first));
        EXPECT_TRUE(poly_eq(cold.second, ref.second));
        EXPECT_TRUE(poly_eq(warm.first, ref.first));
        EXPECT_TRUE(poly_eq(warm.second, ref.second));
    }
}

TEST_F(PerfCache, KeyswitchBitExactAcrossThreadCounts)
{
    const auto cfgs = configs();
    // References once, at the default thread count.
    std::vector<std::pair<RnsPoly, RnsPoly>> refs;
    std::vector<RnsPoly> inputs;
    for (const auto &cfg : cfgs) {
        inputs.push_back(random_eval_poly(cfg.set->ctx, cfg.level,
                                          2000 + cfg.level));
        refs.push_back(
            keyswitch_klss(inputs.back(), cfg.set->klss_rlk,
                           cfg.set->ctx));
    }
    for (size_t threads : {1u, 2u, 7u, 16u}) {
        ThreadPool::set_global_threads(threads);
        for (size_t i = 0; i < cfgs.size(); ++i) {
            const auto &cfg = cfgs[i];
            SCOPED_TRACE(::testing::Message()
                         << cfg.engine << " d_num="
                         << cfg.set->params.d_num << " level="
                         << cfg.level << " threads=" << threads);
            const auto got = keyswitch_klss_pipeline(
                inputs[i], cfg.set->klss_rlk, cfg.set->ctx,
                ExecPolicy::fixed(EngineRegistry::parse(cfg.engine)));
            EXPECT_TRUE(poly_eq(got.first, refs[i].first));
            EXPECT_TRUE(poly_eq(got.second, refs[i].second));
        }
    }
    ThreadPool::set_global_threads(0); // back to NEO_NUM_THREADS
}

// ---------------------------------------------------------------------
// Evaluator ops routed through the cached pipeline
// ---------------------------------------------------------------------

TEST_F(PerfCache, MulAndRotateThroughPipelineMatchReference)
{
    auto &s = *set_a_;
    const EvalKeyBundle keys =
        s.keygen.eval_key_bundle(s.sk, {1, 3}, false, true);
    Encryptor enc(s.ctx, 31);
    Rng rng(77);
    std::vector<Complex> slots(s.ctx.encoder().slot_count());
    for (auto &v : slots)
        v = Complex(2.0 * rng.uniform_real() - 1.0,
                    2.0 * rng.uniform_real() - 1.0);
    const Ciphertext ca = enc.encrypt_symmetric(
        s.ctx.encode(slots, s.ctx.max_level()), s.sk, s.keygen);
    std::reverse(slots.begin(), slots.end());
    const Ciphertext cb = enc.encrypt_symmetric(
        s.ctx.encode(slots, s.ctx.max_level()), s.sk, s.keygen);

    const Evaluator ref(s.ctx, KeySwitchMethod::klss);
    const Ciphertext mul_ref = ref.mul(ca, cb, keys);
    const Ciphertext rot1_ref = ref.rotate(ca, 1, keys);
    const Ciphertext rot3_ref = ref.rotate(ca, 3, keys);

    for (const char *name : {"scalar", "fp64_tcu", "int8_tcu"}) {
        SCOPED_TRACE(name);
        Evaluator ev(s.ctx, KeySwitchMethod::klss);
        ev.set_klss_keyswitch(klss_keyswitch_fn(
            ExecPolicy::fixed(EngineRegistry::parse(name))));
        // Twice: the first populates the caches, the second hits them.
        for (int run = 0; run < 2; ++run) {
            EXPECT_TRUE(ct_eq(ev.mul(ca, cb, keys), mul_ref)) << run;
            EXPECT_TRUE(ct_eq(ev.rotate(ca, 1, keys), rot1_ref)) << run;
            EXPECT_TRUE(ct_eq(ev.rotate(ca, 3, keys), rot3_ref)) << run;
        }
    }
}

// ---------------------------------------------------------------------
// Cache-hit counters: slicing happens exactly once per operand
// ---------------------------------------------------------------------

TEST_F(PerfCache, SecondMulHitsPlaneCacheWithoutMisses)
{
    auto &s = *set_b_;
    const EvalKeyBundle keys =
        s.keygen.eval_key_bundle(s.sk, {}, false, true);
    Encryptor enc(s.ctx, 47);
    std::vector<Complex> slots(s.ctx.encoder().slot_count(),
                               Complex(0.5, -0.25));
    const Ciphertext ca = enc.encrypt_symmetric(
        s.ctx.encode(slots, s.ctx.max_level()), s.sk, s.keygen);

    Evaluator ev(s.ctx, KeySwitchMethod::klss);
    ev.set_klss_keyswitch(
        klss_keyswitch_fn(ExecPolicy::fixed(EngineId::fp64_tcu)));

    PlaneCache::global().clear();
    u64 first_hit = 0, first_miss = 0;
    {
        obs::Scope scope;
        (void)ev.mul(ca, ca, keys);
        first_hit = scope.counter("gemm.plane_cache.hit");
        first_miss = scope.counter("gemm.plane_cache.miss");
    }
    // The cold mul slices every pinned static operand once.
    EXPECT_GT(first_miss, 0u);

    obs::Scope scope;
    (void)ev.mul(ca, ca, keys);
    // Steady state: every pinned-operand lookup hits, nothing is
    // re-sliced.
    EXPECT_GT(scope.counter("gemm.plane_cache.hit"), first_hit);
    EXPECT_EQ(scope.counter("gemm.plane_cache.miss"), 0u);
}

} // namespace
} // namespace neo
