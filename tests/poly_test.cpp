#include <gtest/gtest.h>

#include "common/random.h"
#include "poly/matrix_ntt.h"
#include "poly/ntt.h"
#include "poly/rns_poly.h"
#include "rns/primes.h"

namespace neo {
namespace {

Modulus
test_modulus(size_t n, int bits = 36)
{
    return Modulus(generate_ntt_primes(bits, 1, n)[0]);
}

TEST(Ntt, RoundTrip)
{
    for (size_t n : {8u, 64u, 1024u}) {
        Modulus q = test_modulus(n);
        NttTables t(n, q);
        Rng rng(n);
        auto a = rng.uniform_vec(n, q.value());
        auto b = a;
        t.forward(b.data());
        t.inverse(b.data());
        EXPECT_EQ(a, b) << "n=" << n;
    }
}

TEST(Ntt, PointwiseProductMatchesNegacyclicConvolution)
{
    const size_t n = 128;
    Modulus q = test_modulus(n);
    NttTables t(n, q);
    Rng rng(5);
    auto a = rng.uniform_vec(n, q.value());
    auto b = rng.uniform_vec(n, q.value());
    auto expected = negacyclic_convolve(a, b, q);

    t.forward(a.data());
    t.forward(b.data());
    for (size_t i = 0; i < n; ++i)
        a[i] = q.mul(a[i], b[i]);
    t.inverse(a.data());
    EXPECT_EQ(a, expected);
}

TEST(Ntt, XTimesXIsXSquared)
{
    const size_t n = 16;
    Modulus q = test_modulus(n);
    NttTables t(n, q);
    std::vector<u64> x(n, 0);
    x[1] = 1;
    auto y = x;
    t.forward(x.data());
    t.forward(y.data());
    for (size_t i = 0; i < n; ++i)
        x[i] = q.mul(x[i], y[i]);
    t.inverse(x.data());
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(x[i], i == 2 ? 1u : 0u);
}

TEST(Ntt, XPowNMinus1TimesXWrapsNegacyclically)
{
    const size_t n = 16;
    Modulus q = test_modulus(n);
    NttTables t(n, q);
    std::vector<u64> a(n, 0), b(n, 0);
    a[n - 1] = 1; // X^{n-1}
    b[1] = 1;     // X
    t.forward(a.data());
    t.forward(b.data());
    for (size_t i = 0; i < n; ++i)
        a[i] = q.mul(a[i], b[i]);
    t.inverse(a.data());
    // X^n = -1.
    EXPECT_EQ(a[0], q.value() - 1);
    for (size_t i = 1; i < n; ++i)
        EXPECT_EQ(a[i], 0u);
}

class MatrixNttTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(MatrixNttTest, MatchesRadix2Reference)
{
    const auto [n, radix] = GetParam();
    Modulus q = test_modulus(n);
    NttTables t(n, q);
    MatrixNtt mntt(t, radix);
    Rng rng(n + radix);
    auto a = rng.uniform_vec(n, q.value());
    auto ref = a;
    t.forward(ref.data());
    auto got = a;
    mntt.forward(got.data());
    EXPECT_EQ(got, ref);
    mntt.inverse(got.data());
    EXPECT_EQ(got, a);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatrixNttTest,
    ::testing::Values(std::make_tuple(64, 8),    // four-step n1=n2=8
                      std::make_tuple(256, 16),  // four-step 16x16
                      std::make_tuple(1024, 16), // mixed 16,16,4
                      std::make_tuple(4096, 16), // radix-16 ten-step style
                      std::make_tuple(4096, 64), // four-step 64x64
                      std::make_tuple(256, 4),
                      std::make_tuple(32, 2)));

TEST(MatrixNtt, Radix16ComplexityMatchesPaper)
{
    // Paper §4.4: at N = 2^16 the four-step NTT costs 2^25 matmul MACs
    // (2 x 256x256x256... it reports 2^24 per stage) while radix-16
    // costs 2^22 total.
    const size_t n = 1 << 16;
    Modulus q = test_modulus(n);
    NttTables t(n, q);

    MatrixNtt four_step(t, 256);
    EXPECT_EQ(four_step.complexity().matmul_macs, 1ULL << 25);
    EXPECT_EQ(four_step.complexity().matmul_stages, 2u);

    MatrixNtt radix16(t, 16);
    EXPECT_EQ(radix16.complexity().matmul_macs, 1ULL << 22);
    EXPECT_EQ(radix16.complexity().matmul_stages, 4u);
}

TEST(MatrixNtt, FullRingDegreeRoundTrip)
{
    // One sanity run at the paper's production degree N = 2^16.
    const size_t n = 1 << 16;
    Modulus q = test_modulus(n);
    NttTables t(n, q);
    MatrixNtt mntt(t, 16);
    Rng rng(99);
    auto a = rng.uniform_vec(n, q.value());
    auto got = a;
    mntt.forward(got.data());
    auto ref = a;
    t.forward(ref.data());
    EXPECT_EQ(got, ref);
}

TEST(RnsPoly, AddSubNegate)
{
    auto primes = generate_ntt_primes(36, 3, 64);
    std::vector<Modulus> mods(primes.begin(), primes.end());
    RnsPoly a(64, mods), b(64, mods);
    Rng rng(1);
    for (size_t i = 0; i < a.limbs(); ++i)
        for (size_t l = 0; l < 64; ++l) {
            a.limb(i)[l] = rng.uniform(primes[i]);
            b.limb(i)[l] = rng.uniform(primes[i]);
        }
    RnsPoly c = a;
    c.add_inplace(b);
    c.sub_inplace(b);
    EXPECT_TRUE(std::equal(c.data(), c.data() + 3 * 64, a.data()));
    RnsPoly d = a;
    d.negate_inplace();
    d.add_inplace(a);
    for (size_t i = 0; i < 3 * 64; ++i)
        EXPECT_EQ(d.data()[i], 0u);
}

TEST(RnsPoly, NttTableSetRoundTrip)
{
    const size_t n = 256;
    auto primes = generate_ntt_primes(36, 3, n);
    std::vector<Modulus> mods(primes.begin(), primes.end());
    NttTableSet tables(n, mods);
    RnsPoly a(n, mods);
    Rng rng(2);
    for (size_t i = 0; i < a.limbs(); ++i)
        for (size_t l = 0; l < n; ++l)
            a.limb(i)[l] = rng.uniform(primes[i]);
    RnsPoly b = a;
    tables.to_eval(b);
    EXPECT_EQ(b.form(), PolyForm::eval);
    tables.to_coeff(b);
    EXPECT_TRUE(std::equal(a.data(), a.data() + 3 * n, b.data()));
}

TEST(RnsPoly, MulAddProduct)
{
    const size_t n = 64;
    auto primes = generate_ntt_primes(36, 2, n);
    std::vector<Modulus> mods(primes.begin(), primes.end());
    NttTableSet tables(n, mods);
    Rng rng(3);
    RnsPoly a(n, mods), b(n, mods);
    for (size_t i = 0; i < 2; ++i)
        for (size_t l = 0; l < n; ++l) {
            a.limb(i)[l] = rng.uniform(primes[i]);
            b.limb(i)[l] = rng.uniform(primes[i]);
        }
    // Reference negacyclic product on limb 0.
    std::vector<u64> a0(a.limb(0), a.limb(0) + n);
    std::vector<u64> b0(b.limb(0), b.limb(0) + n);
    auto expected = negacyclic_convolve(a0, b0, mods[0]);

    tables.to_eval(a);
    tables.to_eval(b);
    RnsPoly c = a;
    c.mul_inplace(b);
    // add_product: acc += a*b should equal 2*c.
    RnsPoly acc = c;
    acc.add_product(a, b);
    tables.to_coeff(c);
    for (size_t l = 0; l < n; ++l)
        EXPECT_EQ(c.limb(0)[l], expected[l]);
    tables.to_coeff(acc);
    for (size_t l = 0; l < n; ++l)
        EXPECT_EQ(acc.limb(0)[l], mods[0].add(expected[l], expected[l]));
}

TEST(Automorphism, CoeffEvalConsistency)
{
    const size_t n = 128;
    Modulus q = test_modulus(n);
    NttTables t(n, q);
    Rng rng(4);
    auto a = rng.uniform_vec(n, q.value());
    for (u64 g : {u64{3}, u64{5}, u64{25}, u64{2 * n - 1}}) {
        // Path 1: automorphism in coefficient domain, then NTT.
        std::vector<u64> via_coeff(n);
        automorphism_coeff(a.data(), via_coeff.data(), n, g, q);
        t.forward(via_coeff.data());
        // Path 2: NTT, then automorphism in eval domain.
        auto via_eval_in = a;
        t.forward(via_eval_in.data());
        std::vector<u64> via_eval(n);
        automorphism_eval(via_eval_in.data(), via_eval.data(), n, g, q);
        EXPECT_EQ(via_coeff, via_eval) << "g=" << g;
    }
}

TEST(Automorphism, IdentityAndComposition)
{
    const size_t n = 64;
    Modulus q = test_modulus(n);
    Rng rng(6);
    auto a = rng.uniform_vec(n, q.value());
    std::vector<u64> out(n);
    automorphism_coeff(a.data(), out.data(), n, 1, q);
    EXPECT_EQ(out, a);
    // σ_5 ∘ σ_5 == σ_25.
    std::vector<u64> s5(n), s55(n), s25(n);
    automorphism_coeff(a.data(), s5.data(), n, 5, q);
    automorphism_coeff(s5.data(), s55.data(), n, 5, q);
    automorphism_coeff(a.data(), s25.data(), n, 25, q);
    EXPECT_EQ(s55, s25);
}

TEST(Automorphism, RnsPolyWrapper)
{
    const size_t n = 64;
    auto primes = generate_ntt_primes(36, 2, n);
    std::vector<Modulus> mods(primes.begin(), primes.end());
    RnsPoly a(n, mods);
    a.limb(0)[1] = 1;
    a.limb(1)[1] = 1;
    RnsPoly b = automorphism(a, 5); // X -> X^5
    EXPECT_EQ(b.limb(0)[5], 1u);
    EXPECT_EQ(b.limb(1)[5], 1u);
    EXPECT_EQ(b.limb(0)[1], 0u);
}

TEST(NegacyclicConvolveReference, Small)
{
    Modulus q(97);
    // (1 + X) * (1 + X) = 1 + 2X + X^2 in Z97[X]/(X^4+1).
    std::vector<u64> a = {1, 1, 0, 0};
    auto c = negacyclic_convolve(a, a, q);
    EXPECT_EQ(c, (std::vector<u64>{1, 2, 1, 0}));
    // X^3 * X = -1.
    std::vector<u64> x3 = {0, 0, 0, 1}, x1 = {0, 1, 0, 0};
    auto w = negacyclic_convolve(x3, x1, q);
    EXPECT_EQ(w, (std::vector<u64>{96, 0, 0, 0}));
}

} // namespace
} // namespace neo
